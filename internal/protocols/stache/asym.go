package stache

import (
	"strings"

	"teapot/internal/core"
)

// Deliberately asymmetric Stache: the invalidation handler in Cache_RO
// branches on the ORDER of two node ids (src < MyNode()). Both arms are
// behaviorally identical, so the protocol still verifies — but ordering
// node identities is exactly what the static symmetry prover must refute
// (internal/analysis.ProveSymmetry emits an OpBin '<' witness), and the
// model checker must therefore refuse to enable symmetry reduction for
// it. Shipped as the negative fixture for the certificate gate: a checker
// that reduced this protocol anyway would be trusting a heuristic, not a
// proof.
const asymTarget = `  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
    SetState(info, Cache_Inv{});
    AccessChange(id, Blk_Invalidate);
  end;

  -- Voluntary eviction of a clean read-only copy`

const asymReplacement = `  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    -- Asymmetric on purpose: node ids are ordered. The arms are
    -- identical, so behavior is unchanged — only the symmetry proof
    -- breaks.
    if (src < MyNode()) then
      Send(HomeNode(id), PUT_NO_DATA_RESP, id);
      SetState(info, Cache_Inv{});
      AccessChange(id, Blk_Invalidate);
    else
      Send(HomeNode(id), PUT_NO_DATA_RESP, id);
      SetState(info, Cache_Inv{});
      AccessChange(id, Blk_Invalidate);
    endif;
  end;

  -- Voluntary eviction of a clean read-only copy`

// AsymSource is the asymmetric Stache protocol text.
var AsymSource = func() string {
	out := strings.Replace(Source, asymTarget, asymReplacement, 1)
	if out == Source {
		panic("stache-asym: handler marker not found")
	}
	return out
}()

// CompileAsym compiles the asymmetric variant.
func CompileAsym(optimize bool) (*core.Artifacts, error) {
	return compileSource("stache-asym.tea", AsymSource, optimize)
}

// MustCompileAsym panics on compile errors (the embedded source is tested).
func MustCompileAsym(optimize bool) *core.Artifacts {
	a, err := CompileAsym(optimize)
	if err != nil {
		panic(err)
	}
	return a
}

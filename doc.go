// Package teapot is a Go reproduction of "Teapot: Language Support for
// Writing Memory Coherence Protocols" (Chandra, Richards & Larus,
// PLDI 1996): a domain-specific language with continuations for writing
// shared-memory coherence protocols, a compiler that turns suspending
// handlers into atomically executable fragments, dual back-ends (an
// executable protocol and a model-checking target), a Tempest-style
// simulated multiprocessor to run protocols on, and the Stache, LCM, and
// Buffered-write protocols from the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced tables and figures. The public entry
// points are internal/core.Compile, which runs the full pipeline, and
// internal/core.Vet, which runs the static protocol analyses
// (internal/analysis, also available as the teapot-vet command) over a
// compiled protocol; the runnable examples live under examples/.
package teapot

// Package vm interprets compiled Teapot IR. The same interpreter executes
// protocols inside the multiprocessor simulator (internal/runtime) and
// inside the model checker (internal/mc) — the paper's "single source"
// property, realized by construction.
package vm

import (
	"fmt"
	"strings"

	"teapot/internal/ir"
)

// Kind tags a runtime value.
type Kind int

// Value kinds.
const (
	KNil Kind = iota
	KInt
	KBool
	KNode
	KID
	KMsg
	KAccess
	KString
	KState
	KCont
	KAbstract
	KInfo
)

// Value is a Teapot runtime value. Scalars live in Int; strings in Str;
// states, continuations, info handles, and abstract support values in Ref.
type Value struct {
	Kind Kind
	Int  int64
	Str  string
	Ref  any
}

// Convenience constructors.
func IntVal(v int64) Value     { return Value{Kind: KInt, Int: v} }
func BoolVal(b bool) Value     { return Value{Kind: KBool, Int: b2i(b)} }
func NodeVal(n int) Value      { return Value{Kind: KNode, Int: int64(n)} }
func IDVal(id int) Value       { return Value{Kind: KID, Int: int64(id)} }
func MsgVal(m int) Value       { return Value{Kind: KMsg, Int: int64(m)} }
func AccessVal(a int64) Value  { return Value{Kind: KAccess, Int: a} }
func StringVal(s string) Value { return Value{Kind: KString, Str: s} }
func StateValue(s *StateVal) Value {
	return Value{Kind: KState, Ref: s}
}
func ContVal(c *Cont) Value   { return Value{Kind: KCont, Ref: c} }
func AbstractVal(v any) Value { return Value{Kind: KAbstract, Ref: v} }
func InfoVal(h any) Value     { return Value{Kind: KInfo, Ref: h} }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Bool interprets the value as a boolean.
func (v Value) Bool() bool { return v.Int != 0 }

// State returns the state value, or nil.
func (v Value) State() *StateVal {
	s, _ := v.Ref.(*StateVal)
	return s
}

// Cont returns the continuation, or nil.
func (v Value) Cont() *Cont {
	c, _ := v.Ref.(*Cont)
	return c
}

func (v Value) String() string {
	switch v.Kind {
	case KNil:
		return "nil"
	case KInt:
		return fmt.Sprintf("%d", v.Int)
	case KBool:
		return fmt.Sprintf("%t", v.Bool())
	case KNode:
		return fmt.Sprintf("node%d", v.Int)
	case KID:
		return fmt.Sprintf("blk%d", v.Int)
	case KMsg:
		return fmt.Sprintf("msg%d", v.Int)
	case KAccess:
		return fmt.Sprintf("acc%d", v.Int)
	case KString:
		return v.Str
	case KState:
		if s := v.State(); s != nil {
			return s.String()
		}
		return "state<nil>"
	case KCont:
		if c := v.Cont(); c != nil {
			return c.String()
		}
		return "cont<nil>"
	case KAbstract:
		return fmt.Sprintf("abs(%v)", v.Ref)
	case KInfo:
		return "info"
	}
	return "?"
}

// Equal implements Teapot's "=" on values.
func Equal(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KInt, KBool, KNode, KID, KMsg, KAccess:
		return a.Int == b.Int
	case KString:
		return a.Str == b.Str
	case KState:
		sa, sb := a.State(), b.State()
		if sa == nil || sb == nil {
			return sa == sb
		}
		if sa.State != sb.State || len(sa.Args) != len(sb.Args) {
			return false
		}
		for i := range sa.Args {
			if !Equal(sa.Args[i], sb.Args[i]) {
				return false
			}
		}
		return true
	default:
		return a.Ref == b.Ref
	}
}

// StateVal is a state value: a state index plus its arguments (including
// any captured continuations — this is what makes the automaton a
// push-down automaton, per §3 of the paper).
type StateVal struct {
	State int
	Args  []Value
}

func (s *StateVal) String() string {
	if len(s.Args) == 0 {
		return fmt.Sprintf("state%d{}", s.State)
	}
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("state%d{%s}", s.State, strings.Join(parts, ","))
}

// Cont is a continuation record: which handler fragment to resume and the
// saved registers the fragment restores.
type Cont struct {
	Fn    *ir.Func
	Frag  int
	Saved []Value
	Site  int
	// Heap reports whether the record was dynamically allocated (counted
	// in the paper's Table 1 "Allocs" columns).
	Heap bool
}

func (c *Cont) String() string {
	return fmt.Sprintf("cont(%s#%d)", c.Fn.Name, c.Frag)
}

package analysis

import (
	"teapot/internal/source"
)

// runTimeout checks the fault-tolerance contract between a protocol and
// the runtimes' timeout machinery. Both the model checker and the Tempest
// simulator fire the TIMEOUT pseudo-message only for a block whose current
// state declares an *explicit* TIMEOUT handler (a DEFAULT does not count:
// it cannot know which request to retransmit). A transient state waits for
// a network message to make progress, and on a lossy network that message
// may never arrive — so a fault-tolerant protocol must give every reachable
// transient state a TIMEOUT handler, or a single drop stalls the block
// forever with no timer armed.
//
// For protocols that declare TIMEOUT, each uncovered reachable transient
// state is a warning. For protocols that do not, the pass reports one
// advisory (info) finding counting the states that would stall, so the
// bundled fault-intolerant protocols stay actionable-clean while the gap
// is still visible in a full report.
func runTimeout(c *Ctx) {
	var waiting []int
	for si, st := range c.Sema.States {
		if st.Transient && c.facts.reach[si] {
			waiting = append(waiting, si)
		}
	}
	if len(waiting) == 0 {
		return
	}

	tt := c.Proto.MsgIndex("TIMEOUT")
	if tt < 0 {
		pos := source.Pos{}
		if c.Sema.AST != nil && c.Sema.AST.Protocol != nil {
			pos = c.Sema.AST.Protocol.Pos()
		}
		c.Reportf(source.SevInfo, pos,
			"protocol declares no TIMEOUT message: %d transient state(s) block on a message the network may drop (teapot-verify -net drop=1 shows the stall)",
			len(waiting))
		return
	}
	for _, si := range waiting {
		if _, ok := c.IR.HandlerFunc[si][tt]; ok {
			continue
		}
		st := c.Sema.States[si]
		c.Reportf(source.SevWarning, c.statePos(st),
			"transient state %s blocks on a droppable message but has no explicit TIMEOUT handler: timers only arm in states that declare one, so a lost message stalls the block forever",
			st.Name)
	}
}

package stache

import (
	"fmt"

	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/tempest"
)

// HW is the hand-written state-machine implementation of Stache — the
// paper's "C State Machine" baseline in Tables 1 and 2. It is wire-
// compatible with the compiled Teapot version (same message tags, same
// transitions) but encodes every transition with explicit intermediate
// states and per-block pending fields instead of continuations, exactly the
// programming style §2 describes (and whose complexity motivates Teapot).
//
// Costs: it reports handler activations and statement counts like the
// Teapot engine but never allocates continuation or queue records; its
// per-block pending fields are the paper's footnote-1 "flag in the protocol
// state associated with a block".
type HW struct {
	nodes, blocks int
	machine       runtime.Machine
	msg           hwMsgs
	blks          [][]hwBlock // [node][block]
	counters      []tempest.CostCounters
}

// hwMsgs caches message tag indices; using the compiled protocol's indices
// keeps the two implementations wire-compatible.
type hwMsgs struct {
	rdFault, wrFault, wrROFault, evict                   int
	getROReq, getROResp, getRWReq, getRWResp             int
	upgradeReq, upgradeAck                               int
	putDataReq, putDataResp, putNoDataReq, putNoDataResp int
	evictROReq, evictROAck                               int
}

// hwState enumerates the explicit states, including every intermediate
// state the continuation-free style requires.
type hwState int

const (
	hwInv hwState = iota
	hwRO
	hwRW
	hwInvToRO
	hwInvToROP // poisoned fill
	hwInvToRW
	hwROToRW
	hwROEvicting
	hwEvToRO
	hwEvToRW
	hwPEvicting
	hwIdle
	hwRS
	hwExcl
	hwAwaitPut
	hwAwaitAcks
)

var hwStateNames = [...]string{
	"Cache_Inv", "Cache_RO", "Cache_RW", "Cache_Inv_To_RO", "Cache_Inv_To_RO_P",
	"Cache_Inv_To_RW", "Cache_RO_To_RW", "Cache_RO_Evicting", "Cache_Ev_To_RO",
	"Cache_Ev_To_RW", "Cache_P_Evicting", "Home_Idle", "Home_RS", "Home_Excl",
	"Home_AwaitPutData", "Home_AwaitInvAcks",
}

func (s hwState) String() string { return hwStateNames[s] }

// pending actions for the intermediate home states (what a continuation
// would have remembered).
type hwPending int

const (
	pNone      hwPending = iota
	pGrantRO             // after put-data: grant read copy to src
	pGrantRW             // after put-data or acks: grant writable copy to src
	pUpgrade             // after acks: upgrade src (falls back to grant if src lost its copy)
	pHomeRead            // after put-data: satisfy the home's own read
	pHomeWrite           // after put-data or acks: satisfy the home's own write
)

type hwBlock struct {
	state   hwState
	sharers int64
	owner   int
	// Intermediate-state bookkeeping (the flags of §2/footnote 1):
	pending     hwPending
	pendingSrc  int
	pendingAcks int

	deferred     []*runtime.Message
	transitioned bool
}

// NewHW builds the hand-written engine. The protocol argument supplies the
// message tag numbering (wire compatibility with the Teapot build).
func NewHW(p *runtime.Protocol, nodes, blocks int, m runtime.Machine) *HW {
	h := &HW{
		nodes: nodes, blocks: blocks, machine: m,
		msg: hwMsgs{
			rdFault: p.MsgIndex("RD_FAULT"), wrFault: p.MsgIndex("WR_FAULT"),
			wrROFault: p.MsgIndex("WR_RO_FAULT"), evict: p.MsgIndex("EVICT"),
			getROReq: p.MsgIndex("GET_RO_REQ"), getROResp: p.MsgIndex("GET_RO_RESP"),
			getRWReq: p.MsgIndex("GET_RW_REQ"), getRWResp: p.MsgIndex("GET_RW_RESP"),
			upgradeReq: p.MsgIndex("UPGRADE_REQ"), upgradeAck: p.MsgIndex("UPGRADE_ACK"),
			putDataReq: p.MsgIndex("PUT_DATA_REQ"), putDataResp: p.MsgIndex("PUT_DATA_RESP"),
			putNoDataReq: p.MsgIndex("PUT_NO_DATA_REQ"), putNoDataResp: p.MsgIndex("PUT_NO_DATA_RESP"),
			evictROReq: p.MsgIndex("EVICT_RO_REQ"), evictROAck: p.MsgIndex("EVICT_RO_ACK"),
		},
		counters: make([]tempest.CostCounters, nodes),
	}
	h.blks = make([][]hwBlock, nodes)
	for n := range h.blks {
		h.blks[n] = make([]hwBlock, blocks)
		for b := range h.blks[n] {
			if m.HomeNode(b) == n {
				h.blks[n][b].state = hwIdle
			} else {
				h.blks[n][b].state = hwInv
			}
			h.blks[n][b].owner = -1
		}
	}
	return h
}

// StateName reports a block's state (for tests).
func (h *HW) StateName(node, block int) string { return h.blks[node][block].state.String() }

// Counters implements tempest.Engine.
func (h *HW) Counters(node int) tempest.CostCounters { return h.counters[node] }

// Event implements tempest.Engine.
func (h *HW) Event(node int, tag int, id int) error {
	return h.Deliver(node, &runtime.Message{Tag: tag, ID: id, Src: node})
}

// Deliver implements tempest.Engine: dispatch plus deferred-queue retry on
// transitions, mirroring the runtime's discipline.
func (h *HW) Deliver(node int, m *runtime.Message) error {
	b := &h.blks[node][m.ID]
	b.transitioned = false
	if err := h.dispatch(node, b, m); err != nil {
		return err
	}
	for pass := 0; b.transitioned && len(b.deferred) > 0; pass++ {
		if pass > 10000 {
			return fmt.Errorf("stache-hw: deferred queue never drained")
		}
		b.transitioned = false
		q := b.deferred
		b.deferred = nil
		for _, dm := range q {
			if err := h.dispatch(node, b, dm); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---- helpers; ops(n) counts n "statements" for the cost model ----

func (h *HW) ops(node int, n int64) { h.counters[node].Instrs += n }

func (h *HW) send(node, dst int, tag, id int, data bool) {
	h.counters[node].Sends++
	h.ops(node, 1)
	h.machine.Send(node, dst, &runtime.Message{Tag: tag, ID: id, Src: node, Data: data})
}

func (h *HW) setState(node int, b *hwBlock, s hwState) {
	h.ops(node, 1)
	b.state = s
	b.transitioned = true
}

func (h *HW) access(node, id int, mode sema.AccessMode) {
	h.ops(node, 1)
	h.machine.AccessChange(node, id, mode)
}

func (h *HW) enqueue(node int, b *hwBlock, m *runtime.Message) {
	h.ops(node, 2)
	b.deferred = append(b.deferred, m)
}

func (h *HW) home(id int) int { return h.machine.HomeNode(id) }

func (h *HW) errf(node int, b *hwBlock, m *runtime.Message) error {
	return fmt.Errorf("stache-hw: node %d: invalid msg %d to %s (block %d)", node, m.Tag, b.state, m.ID)
}

// invalidateSharers sends PUT_NO_DATA_REQ to every sharer except excl.
func (h *HW) invalidateSharers(node int, b *hwBlock, excl, id int) int {
	count := 0
	for n := 0; n < h.nodes; n++ {
		if b.sharers&(1<<uint(n)) == 0 || n == excl {
			continue
		}
		h.send(node, n, h.msg.putNoDataReq, id, false)
		count++
	}
	h.ops(node, 2)
	return count
}

// completeAcks finishes a Home_AwaitInvAcks transition.
func (h *HW) completeAcks(node int, b *hwBlock, id int) {
	switch b.pending {
	case pUpgrade:
		if b.sharers&(1<<uint(b.pendingSrc)) != 0 {
			h.send(node, b.pendingSrc, h.msg.upgradeAck, id, false)
		} else {
			h.send(node, b.pendingSrc, h.msg.getRWResp, id, true)
		}
		b.sharers = 0
		b.owner = b.pendingSrc
		h.access(node, id, sema.AccInvalid)
		h.setState(node, b, hwExcl)
	case pGrantRW:
		b.sharers = 0
		h.send(node, b.pendingSrc, h.msg.getRWResp, id, true)
		b.owner = b.pendingSrc
		h.access(node, id, sema.AccInvalid)
		h.setState(node, b, hwExcl)
	case pHomeWrite:
		b.sharers = 0
		h.access(node, id, sema.AccReadWrite)
		h.setState(node, b, hwIdle)
		h.machine.WakeUp(node, id)
	}
	b.pending = pNone
	h.ops(node, 3)
}

// completePut finishes a Home_AwaitPutData transition.
func (h *HW) completePut(node int, b *hwBlock, id int) {
	switch b.pending {
	case pGrantRO:
		h.send(node, b.pendingSrc, h.msg.getROResp, id, true)
		b.sharers |= 1 << uint(b.pendingSrc)
		h.access(node, id, sema.AccReadOnly)
		h.setState(node, b, hwRS)
	case pGrantRW, pUpgrade:
		h.send(node, b.pendingSrc, h.msg.getRWResp, id, true)
		b.owner = b.pendingSrc
		h.access(node, id, sema.AccInvalid)
		h.setState(node, b, hwExcl)
	case pHomeRead, pHomeWrite:
		h.access(node, id, sema.AccReadWrite)
		h.setState(node, b, hwIdle)
		h.machine.WakeUp(node, id)
	}
	b.pending = pNone
	h.ops(node, 3)
}

// dispatch runs one handler to completion.
func (h *HW) dispatch(node int, b *hwBlock, m *runtime.Message) error {
	h.counters[node].Handlers++
	h.ops(node, 5) // dispatch table + argument setup
	msg := &h.msg
	id := m.ID
	switch b.state {

	case hwInv:
		switch m.Tag {
		case msg.rdFault:
			h.send(node, h.home(id), msg.getROReq, id, false)
			h.setState(node, b, hwInvToRO)
		case msg.wrFault:
			h.send(node, h.home(id), msg.getRWReq, id, false)
			h.setState(node, b, hwInvToRW)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			return h.errf(node, b, m)
		}

	case hwInvToRO:
		switch m.Tag {
		case msg.getROResp:
			h.machine.RecvData(node, id, sema.AccReadOnly)
			h.ops(node, 1)
			h.setState(node, b, hwRO)
			h.machine.WakeUp(node, id)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
			h.setState(node, b, hwInvToROP)
		default:
			h.enqueue(node, b, m)
		}

	case hwInvToROP:
		switch m.Tag {
		case msg.getROResp:
			h.send(node, h.home(id), msg.evictROReq, id, false)
			h.setState(node, b, hwPEvicting)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwPEvicting:
		switch m.Tag {
		case msg.evictROAck:
			h.send(node, h.home(id), msg.getROReq, id, false)
			h.setState(node, b, hwInvToRO)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwInvToRW:
		switch m.Tag {
		case msg.getRWResp:
			h.machine.RecvData(node, id, sema.AccReadWrite)
			h.ops(node, 1)
			h.setState(node, b, hwRW)
			h.machine.WakeUp(node, id)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwRO:
		switch m.Tag {
		case msg.wrROFault:
			h.send(node, h.home(id), msg.upgradeReq, id, false)
			h.setState(node, b, hwROToRW)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
			h.setState(node, b, hwInv)
			h.access(node, id, sema.AccInvalid)
		case msg.evict:
			h.send(node, h.home(id), msg.evictROReq, id, false)
			h.setState(node, b, hwROEvicting)
			h.access(node, id, sema.AccInvalid)
		default:
			return h.errf(node, b, m)
		}

	case hwROToRW:
		switch m.Tag {
		case msg.upgradeAck:
			h.setState(node, b, hwRW)
			h.access(node, id, sema.AccReadWrite)
			h.machine.WakeUp(node, id)
		case msg.getRWResp:
			h.machine.RecvData(node, id, sema.AccReadWrite)
			h.ops(node, 1)
			h.setState(node, b, hwRW)
			h.machine.WakeUp(node, id)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
			h.access(node, id, sema.AccInvalid)
		default:
			h.enqueue(node, b, m)
		}

	case hwRW:
		switch m.Tag {
		case msg.putDataReq:
			h.send(node, h.home(id), msg.putDataResp, id, true)
			h.setState(node, b, hwInv)
			h.access(node, id, sema.AccInvalid)
		default:
			return h.errf(node, b, m)
		}

	case hwROEvicting:
		switch m.Tag {
		case msg.evictROAck:
			h.setState(node, b, hwInv)
		case msg.rdFault:
			h.setState(node, b, hwEvToRO)
		case msg.wrFault:
			h.setState(node, b, hwEvToRW)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwEvToRO:
		switch m.Tag {
		case msg.evictROAck:
			h.send(node, h.home(id), msg.getROReq, id, false)
			h.setState(node, b, hwInvToRO)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwEvToRW:
		switch m.Tag {
		case msg.evictROAck:
			h.send(node, h.home(id), msg.getRWReq, id, false)
			h.setState(node, b, hwInvToRW)
		case msg.putNoDataReq:
			h.send(node, h.home(id), msg.putNoDataResp, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwIdle:
		switch m.Tag {
		case msg.getROReq:
			h.send(node, m.Src, msg.getROResp, id, true)
			b.sharers |= 1 << uint(m.Src)
			h.access(node, id, sema.AccReadOnly)
			h.setState(node, b, hwRS)
		case msg.getRWReq, msg.upgradeReq:
			h.send(node, m.Src, msg.getRWResp, id, true)
			b.owner = m.Src
			h.access(node, id, sema.AccInvalid)
			h.setState(node, b, hwExcl)
		case msg.evictROReq:
			h.send(node, m.Src, msg.evictROAck, id, false)
		case msg.rdFault, msg.wrFault, msg.wrROFault:
			// Stale deferred fault: the home already has full access.
			h.machine.WakeUp(node, id)
			h.ops(node, 1)
		default:
			return h.errf(node, b, m)
		}

	case hwRS:
		switch m.Tag {
		case msg.getROReq:
			if b.sharers&(1<<uint(m.Src)) != 0 {
				h.enqueue(node, b, m)
			} else {
				h.send(node, m.Src, msg.getROResp, id, true)
				b.sharers |= 1 << uint(m.Src)
				h.ops(node, 1)
			}
		case msg.upgradeReq:
			n := h.invalidateSharers(node, b, m.Src, id)
			if n == 0 {
				b.pending, b.pendingSrc = pUpgrade, m.Src
				h.completeAcks(node, b, id)
			} else {
				b.pending, b.pendingSrc, b.pendingAcks = pUpgrade, m.Src, n
				h.setState(node, b, hwAwaitAcks)
			}
		case msg.getRWReq:
			if b.sharers&(1<<uint(m.Src)) != 0 {
				h.enqueue(node, b, m)
				break
			}
			n := h.invalidateSharers(node, b, m.Src, id)
			if n == 0 {
				b.pending, b.pendingSrc = pGrantRW, m.Src
				h.completeAcks(node, b, id)
			} else {
				b.pending, b.pendingSrc, b.pendingAcks = pGrantRW, m.Src, n
				h.setState(node, b, hwAwaitAcks)
			}
		case msg.wrROFault, msg.wrFault:
			n := h.invalidateSharers(node, b, node, id)
			if n == 0 {
				b.pending = pHomeWrite
				h.completeAcks(node, b, id)
			} else {
				b.pending, b.pendingAcks = pHomeWrite, n
				h.setState(node, b, hwAwaitAcks)
			}
		case msg.rdFault:
			// Stale deferred read fault: shared blocks are home-readable.
			h.machine.WakeUp(node, id)
			h.ops(node, 1)
		case msg.evictROReq:
			b.sharers &^= 1 << uint(m.Src)
			h.send(node, m.Src, msg.evictROAck, id, false)
			if b.sharers == 0 {
				h.access(node, id, sema.AccReadWrite)
				h.setState(node, b, hwIdle)
			} else {
				h.setState(node, b, hwRS) // self-transition: retry deferred
			}
		default:
			return h.errf(node, b, m)
		}

	case hwExcl:
		switch m.Tag {
		case msg.getROReq:
			h.send(node, b.owner, msg.putDataReq, id, false)
			b.pending, b.pendingSrc = pGrantRO, m.Src
			h.setState(node, b, hwAwaitPut)
		case msg.getRWReq, msg.upgradeReq:
			h.send(node, b.owner, msg.putDataReq, id, false)
			b.pending, b.pendingSrc = pGrantRW, m.Src
			h.setState(node, b, hwAwaitPut)
		case msg.rdFault:
			h.send(node, b.owner, msg.putDataReq, id, false)
			b.pending = pHomeRead
			h.setState(node, b, hwAwaitPut)
		case msg.wrFault, msg.wrROFault:
			h.send(node, b.owner, msg.putDataReq, id, false)
			b.pending = pHomeWrite
			h.setState(node, b, hwAwaitPut)
		case msg.evictROReq:
			h.send(node, m.Src, msg.evictROAck, id, false)
		default:
			return h.errf(node, b, m)
		}

	case hwAwaitPut:
		switch m.Tag {
		case msg.putDataResp:
			h.machine.RecvData(node, id, sema.AccReadOnly)
			h.ops(node, 1)
			h.completePut(node, b, id)
		case msg.evictROReq:
			h.send(node, m.Src, msg.evictROAck, id, false)
		default:
			h.enqueue(node, b, m)
		}

	case hwAwaitAcks:
		switch m.Tag {
		case msg.putNoDataResp:
			b.sharers &^= 1 << uint(m.Src)
			b.pendingAcks--
			h.ops(node, 2)
			if b.pendingAcks == 0 {
				h.completeAcks(node, b, id)
			}
		case msg.evictROReq:
			b.sharers &^= 1 << uint(m.Src)
			h.send(node, m.Src, msg.evictROAck, id, false)
		default:
			h.enqueue(node, b, m)
		}

	default:
		return fmt.Errorf("stache-hw: unknown state %d", b.state)
	}
	return nil
}

var _ tempest.Engine = (*HW)(nil)

package sema

import (
	"teapot/internal/ast"
)

// SymKind classifies resolved names.
type SymKind int

// Symbol kinds.
const (
	SymInvalid     SymKind = iota
	SymParam               // handler parameter (register slot)
	SymLocal               // handler local (register slot)
	SymStateParam          // enclosing state's parameter (e.g. the CONT arg)
	SymProtVar             // protocol-level per-block variable
	SymConst               // protocol constant (compile-time int/bool)
	SymModConst            // module abstract constant (runtime-bound)
	SymFunc                // support routine or builtin function/procedure
	SymState               // state name
	SymMessage             // message tag
	SymSuspendCont         // the continuation variable bound by a Suspend
	SymBuiltinVal          // builtin value (MessageTag, MySelf)
)

// Symbol is the result of resolving an identifier.
type Symbol struct {
	Kind  SymKind
	Name  string
	Type  Type
	Index int       // slot/ID meaning depends on Kind
	Sig   *Sig      // for SymFunc
	Const *ConstVal // for SymConst
}

// ConstVal is a compile-time constant value.
type ConstVal struct {
	Type Type
	Int  int64 // also holds bools as 0/1
	Str  string
}

// Message describes a declared message tag. Index is the runtime MsgID.
type Message struct {
	Name    string
	Index   int
	Payload []Type // payload types beyond the standard (id, info, src) triple
	Decl    *ast.MessageDecl
}

// ParamSym is one flattened parameter or local.
type ParamSym struct {
	Name  string
	Type  Type
	ByRef bool
}

// StateSym describes a state. Index is the runtime StateID.
type StateSym struct {
	Name      string
	Index     int
	Params    []ParamSym
	Transient bool
	Body      *ast.State // nil if declared but not defined
	Handlers  []*HandlerSym
	// handlerByMsg maps message index -> handler; -1 keyed entry unused.
	handlerByMsg map[int]*HandlerSym
	Default      *HandlerSym
}

// IsSubroutine reports whether the state takes a continuation parameter
// (i.e. it is entered via Suspend and left via Resume).
func (s *StateSym) IsSubroutine() bool {
	for _, p := range s.Params {
		if p.Type.Kind == TCont {
			return true
		}
	}
	return false
}

// HandlerFor returns the handler for a message index, falling back to the
// DEFAULT handler; nil if neither exists.
func (s *StateSym) HandlerFor(msg int) *HandlerSym {
	if h, ok := s.handlerByMsg[msg]; ok {
		return h
	}
	return s.Default
}

// HandlerSym describes one message handler.
type HandlerSym struct {
	State    *StateSym
	Msg      *Message // nil for DEFAULT
	Params   []ParamSym
	Locals   []ParamSym
	Body     []ast.Stmt
	AST      *ast.Handler
	Suspends int // number of suspend statements (for diagnostics/stats)
}

// Name returns the handled message name or DEFAULT.
func (h *HandlerSym) Name() string {
	if h.Msg == nil {
		return ast.DefaultName
	}
	return h.Msg.Name
}

// VarSym is a protocol-level per-block variable.
type VarSym struct {
	Name  string
	Type  Type
	Index int // slot in the block's info record
}

// FuncSym is a support routine (module-declared) or builtin.
type FuncSym struct {
	Name    string
	Sig     *Sig
	Builtin Builtin // BNone for module routines
}

// Program is the semantic model of a Teapot protocol, the single source for
// all backends.
type Program struct {
	AST       *ast.Program
	ProtoName string

	Types     map[string]Type
	Messages  []*Message
	States    []*StateSym
	ProtVars  []*VarSym
	Consts    map[string]*ConstVal // protocol consts
	ModConsts []*VarSym            // abstract module constants (runtime-bound); Index = slot
	Funcs     map[string]*FuncSym

	msgByName   map[string]*Message
	stateByName map[string]*StateSym

	// Uses records resolution results for every identifier expression,
	// keyed by node identity; consumed by the lowerer and backends.
	Uses map[*ast.Ident]*Symbol
}

// MessageByName returns the message with the given name, or nil.
func (p *Program) MessageByName(name string) *Message { return p.msgByName[name] }

// StateByName returns the state with the given name, or nil.
func (p *Program) StateByName(name string) *StateSym { return p.stateByName[name] }

// NumHandlers returns the total number of handlers across all states.
func (p *Program) NumHandlers() int {
	n := 0
	for _, s := range p.States {
		n += len(s.Handlers)
	}
	return n
}

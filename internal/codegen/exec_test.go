package codegen_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"teapot/internal/codegen"
	"teapot/internal/core"
	"teapot/internal/ir"
	"teapot/internal/protocols/stache"
)

// execProtocol is compiled, generated to Go, then *executed* by a driver
// main with a scripted Host: the generated code must reproduce the
// suspend/resume behaviour (send, transition, wake) of the source.
const execProtocol = `
protocol X begin
  var count : int;
  state S();
  state W(C : CONT) transient;
  message GO;
  message ACK;
end;
state X.S() begin
  message GO (id : ID; var info : INFO; src : NODE)
  var x : int;
  begin
    x := 5;
    count := count + x;
    Send(src, ACK, id);
    Suspend(L, W{L});
    count := count + x * 2;
    SetState(info, S{});
    WakeUp(id);
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
state X.W(C : CONT) begin
  message ACK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
`

const driverMain = `package main

import "fmt"

type host struct {
	vars  map[int]V
	state State
	sent  []int
	woken int
}

func (h *host) Send(dst, tag, blk int, data bool, payload ...V) { h.sent = append(h.sent, tag) }
func (h *host) SetState(s State)                                { h.state = s }
func (h *host) Enqueue()                                        {}
func (h *host) Nack()                                           {}
func (h *host) Drop()                                           {}
func (h *host) Error(msg string, args ...V)                     { panic(msg) }
func (h *host) WakeUp(blk int)                                  { h.woken++ }
func (h *host) AccessChange(blk int, mode int64)                {}
func (h *host) RecvData(blk int, mode int64)                    {}
func (h *host) MyNode() int                                     { return 0 }
func (h *host) HomeNode(blk int) int                            { return 0 }
func (h *host) LoadVar(slot int) V                              { return h.vars[slot] }
func (h *host) StoreVar(slot int, v V)                          { h.vars[slot] = v }
func (h *host) ModConst(slot int) V                             { return V{} }
func (h *host) MessageTag() V                                   { return V{} }
func (h *host) MessageSrc() V                                   { return V{I: 1} }
func (h *host) Call(name string, args []*V) V                   { return V{} }
func (h *host) Print(args ...V)                                 {}
func (h *host) Remat(r []V) {
	r[0] = V{I: 0} // block id
	r[1] = V{}     // info handle
}

func main() {
	h := &host{vars: map[int]V{}}
	params := []V{{I: 0}, {}, {I: 1}}
	// Dispatch GO in state StS.
	Handlers[[2]int{StS, MsgGO}](h, nil, params)
	if h.state.ID != StW {
		panic(fmt.Sprintf("state after GO = %d, want W", h.state.ID))
	}
	if len(h.sent) != 1 || h.sent[0] != MsgACK {
		panic(fmt.Sprintf("sent = %v", h.sent))
	}
	if h.vars[0].I != 5 {
		panic(fmt.Sprintf("count = %d, want 5", h.vars[0].I))
	}
	// Deliver ACK in state W: the handler resumes the suspended GO.
	Handlers[[2]int{StW, MsgACK}](h, h.state.Args, params)
	if h.vars[0].I != 15 {
		panic(fmt.Sprintf("count = %d, want 15 (local x restored across suspend)", h.vars[0].I))
	}
	if h.state.ID != StS || h.woken != 1 {
		panic(fmt.Sprintf("final state=%d woken=%d", h.state.ID, h.woken))
	}
	fmt.Println("GENERATED-CODE-OK")
}
`

// TestGeneratedCodeExecutes builds and runs generated Go, checking that the
// continuation machinery (fragment split, save/restore, resume transfer)
// behaves identically to the interpreted protocol.
func TestGeneratedCodeExecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	for _, optimize := range []bool{false, true} {
		art, err := core.Compile(core.Config{
			Name: "x.tea", Source: execProtocol, Optimize: optimize,
			HomeStart: "S", CacheStart: "S",
		})
		if err != nil {
			t.Fatal(err)
		}
		src := codegen.Generate(art.IR, "main")
		dir := t.TempDir()
		write := func(name, content string) {
			t.Helper()
			if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		write("go.mod", "module gen\n\ngo 1.22\n")
		write("proto.go", src)
		write("main.go", driverMain)
		cmd := exec.Command("go", "run", ".")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("optimize=%v: %v\n%s", optimize, err, out)
		}
		if !strings.Contains(string(out), "GENERATED-CODE-OK") {
			t.Fatalf("optimize=%v: output %q", optimize, out)
		}
	}
}

// TestHandlerTableComplete: the generated dispatch table covers exactly the
// handlers of the semantic model.
func TestHandlerTableComplete(t *testing.T) {
	a := stache.MustCompile(true)
	src := codegen.Generate(a.IR, "proto")
	for si, st := range a.Sema.States {
		for _, h := range st.Handlers {
			if h.Msg == nil {
				continue
			}
			entry := "{" + itoa(si) + ", " + itoa(h.Msg.Index) + "}:"
			if !strings.Contains(src, entry) {
				t.Errorf("dispatch table missing %s.%s (%s)", st.Name, h.Msg.Name, entry)
			}
		}
		if st.Default != nil {
			if !strings.Contains(src, itoa(si)+": h_"+st.Name+"_DEFAULT") {
				t.Errorf("defaults table missing %s", st.Name)
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

var _ = ir.Program{}

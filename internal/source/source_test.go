package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPosFor(t *testing.T) {
	f := NewFile("t", "ab\ncde\n\nf")
	cases := []struct {
		off, line, col int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // "ab" then the newline
		{3, 2, 1}, {5, 2, 3},
		{7, 3, 1},
		{8, 4, 1},
	}
	for _, c := range cases {
		p := f.PosFor(c.off)
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("PosFor(%d) = %v, want %d:%d", c.off, p, c.line, c.col)
		}
	}
	// Clamping.
	if p := f.PosFor(-5); p.Offset != 0 {
		t.Errorf("negative offset not clamped: %v", p)
	}
	if p := f.PosFor(1000); p.Offset != len(f.Text) {
		t.Errorf("overflow offset not clamped: %v", p)
	}
}

// Property: PosFor is consistent with a naive line/column scan.
func TestPosForProperty(t *testing.T) {
	text := "alpha\nbeta gamma\n\ndelta\nepsilon"
	f := NewFile("p", text)
	check := func(off uint8) bool {
		o := int(off) % (len(text) + 1)
		p := f.PosFor(o)
		line, col := 1, 1
		for i := 0; i < o; i++ {
			if text[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		return p.Line == line && p.Col == col
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestLine(t *testing.T) {
	f := NewFile("t", "first\nsecond\r\nthird")
	if got := f.Line(1); got != "first" {
		t.Errorf("Line(1) = %q", got)
	}
	if got := f.Line(2); got != "second" {
		t.Errorf("Line(2) = %q (CR should be trimmed)", got)
	}
	if got := f.Line(3); got != "third" {
		t.Errorf("Line(3) = %q", got)
	}
	if got := f.Line(0); got != "" {
		t.Errorf("Line(0) = %q", got)
	}
	if got := f.Line(99); got != "" {
		t.Errorf("Line(99) = %q", got)
	}
}

func TestErrorList(t *testing.T) {
	var errs ErrorList
	if errs.Err() != nil {
		t.Error("empty list should be nil error")
	}
	errs.Add("b.tea", Pos{Offset: 5, Line: 2, Col: 1}, "second %d", 2)
	errs.Add("a.tea", Pos{Offset: 1, Line: 1, Col: 2}, "first")
	errs.Add("b.tea", Pos{Offset: 1, Line: 1, Col: 2}, "zeroth")
	errs.Sort()
	if errs.List[0].File != "a.tea" {
		t.Errorf("sort order: %v", errs.List)
	}
	msg := errs.Err().Error()
	if !strings.Contains(msg, "first") || !strings.Contains(msg, "second 2") {
		t.Errorf("message = %q", msg)
	}
	if !strings.Contains(msg, "a.tea:1:2") {
		t.Errorf("position formatting: %q", msg)
	}
	if errs.Len() != 3 {
		t.Errorf("len = %d", errs.Len())
	}
}

func TestErrorListTruncation(t *testing.T) {
	var errs ErrorList
	for i := 0; i < 30; i++ {
		errs.Add("x", Pos{Line: i + 1, Col: 1}, "e%d", i)
	}
	msg := errs.Error()
	if !strings.Contains(msg, "more errors") {
		t.Errorf("expected truncation notice: %q", msg)
	}
}

func TestPosString(t *testing.T) {
	if got := (Pos{}).String(); got != "-" {
		t.Errorf("zero pos = %q", got)
	}
	if got := (Pos{Line: 3, Col: 7}).String(); got != "3:7" {
		t.Errorf("pos = %q", got)
	}
	if got := (Span{Start: Pos{Line: 1, Col: 2}}).String(); got != "1:2" {
		t.Errorf("span = %q", got)
	}
}

package core_test

import (
	"strings"
	"testing"

	"teapot/internal/core"
)

const tiny = `
protocol T begin
  state A();
  state B(C : CONT) transient;
  message GO;
  message OK;
end;
state T.A() begin
  message GO (id : ID; var info : INFO; src : NODE)
  begin
    Send(src, OK, id);
    Suspend(L, B{L});
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Drop(); end;
end;
state T.B(C : CONT) begin
  message OK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
`

func TestCompileArtifacts(t *testing.T) {
	art, err := core.Compile(core.Config{
		Name: "tiny.tea", Source: tiny, Optimize: true,
		HomeStart: "A", CacheStart: "A",
	})
	if err != nil {
		t.Fatal(err)
	}
	if art.AST == nil || art.Sema == nil || art.IR == nil || art.Protocol == nil {
		t.Fatal("missing artifacts")
	}
	if art.Stats.Sites != 1 {
		t.Errorf("sites = %d", art.Stats.Sites)
	}
	if art.Protocol.HomeStart != art.Protocol.StateIndex("A") {
		t.Errorf("home start = %d", art.Protocol.HomeStart)
	}
	if art.Protocol.MsgIndex("GO") < 0 || art.Protocol.MsgIndex("NOPE") != -1 {
		t.Error("MsgIndex broken")
	}
	if art.Protocol.StateIndex("B") < 0 || art.Protocol.StateIndex("NOPE") != -1 {
		t.Error("StateIndex broken")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  core.Config
		want string
	}{
		{"parse error", core.Config{Name: "x", Source: "protocol"}, "parse:"},
		{"check error", core.Config{Name: "x", Source: `protocol P begin state S(); message M; end;
state P.S() begin message M (id : ID) begin exit; end; end;`}, "check:"},
		{"bad home start", core.Config{Name: "x", Source: tiny, HomeStart: "Nope"}, "unknown home start"},
		{"bad cache start", core.Config{Name: "x", Source: tiny, CacheStart: "Nope"}, "unknown cache start"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := core.Compile(c.cfg)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestOptionsDerivation(t *testing.T) {
	o := core.Config{Optimize: true}.Options()
	if !o.Liveness || !o.ConstCont {
		t.Errorf("optimized options = %+v", o)
	}
	o = core.Config{NoLiveness: true}.Options()
	if o.Liveness || o.ConstCont {
		t.Errorf("no-liveness options = %+v", o)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	core.MustCompile(core.Config{Name: "bad", Source: "not a protocol"})
}

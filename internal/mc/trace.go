package mc

import "fmt"

// Step is one machine-readable counterexample step. Violation.Trace renders
// the same transitions for humans; Step carries them structurally so tools
// can re-execute a counterexample on an independent substrate (see
// ReplaySteps and the fuzz package's differential harness).
type Step struct {
	// Kind is one of "deliver", "drop", "dup", "corrupt", "timeout",
	// "event", "client".
	Kind string
	// From, To, Idx locate the message for the channel kinds (deliver,
	// drop, dup, corrupt): position Idx within the From->To channel.
	From, To, Idx int
	// Node, Block locate the processor for "timeout", "event", and
	// "client" (a client step is the node's next scripted operation, so
	// Node alone identifies it; Block is informational).
	Node, Block int
	// Event is the event name for Kind "event".
	Event string
	// Msg is the message name for the channel kinds (informational; replay
	// matches on position, which is exact).
	Msg string
}

func (s Step) String() string {
	switch s.Kind {
	case "deliver", "drop", "dup", "corrupt":
		return fmt.Sprintf("%s %s node%d->node%d[%d]", s.Kind, s.Msg, s.From, s.To, s.Idx)
	case "timeout":
		return fmt.Sprintf("timeout blk%d node%d", s.Block, s.Node)
	case "client":
		return fmt.Sprintf("client blk%d node%d", s.Block, s.Node)
	}
	return fmt.Sprintf("event %s blk%d node%d", s.Event, s.Block, s.Node)
}

// step renders an action as a machine-readable Step against the pre-action
// world (needed to name the message still sitting in its channel).
func (w *World) step(a action) Step {
	st := Step{From: a.from, To: a.to, Idx: a.idx, Node: a.node, Block: a.block}
	switch a.kind {
	case actDeliver:
		st.Kind = "deliver"
	case actDrop:
		st.Kind = "drop"
	case actDup:
		st.Kind = "dup"
	case actCorrupt:
		st.Kind = "corrupt"
	case actTimeout:
		st.Kind = "timeout"
		return st
	case actClient:
		st.Kind = "client"
		return st
	default:
		st.Kind = "event"
		st.Event = a.event.Name
		return st
	}
	m := w.channels[a.from*w.cfg.Nodes+a.to][a.idx]
	st.Msg = w.msgName(m.Tag)
	st.Block = m.ID
	return st
}

// resolveStep finds the enabled action matching st, or an error if the
// counterexample has diverged from the world being replayed.
func (w *World) resolveStep(st Step) (action, error) {
	for _, a := range w.actions() {
		cand := w.step(a)
		switch st.Kind {
		case "deliver", "drop", "dup", "corrupt":
			if cand.Kind == st.Kind && cand.From == st.From && cand.To == st.To && cand.Idx == st.Idx {
				return a, nil
			}
		case "timeout":
			if cand.Kind == "timeout" && cand.Node == st.Node && cand.Block == st.Block {
				return a, nil
			}
		case "event":
			if cand.Kind == "event" && cand.Node == st.Node && cand.Block == st.Block && cand.Event == st.Event {
				return a, nil
			}
		case "client":
			if cand.Kind == "client" && cand.Node == st.Node {
				return a, nil
			}
		}
	}
	return action{}, fmt.Errorf("mc: step %v not enabled in replayed world", st)
}

// ReplaySteps re-executes a machine-readable counterexample from the
// initial state. After each step is applied, visit is called with the step
// index, the step, the resolved processor event (non-nil only for Kind
// "event" steps — it carries the payload, which Step does not), the
// post-step world, and the protocol error the step raised (non-nil only on
// the final step of a protocol-error counterexample; replay stops there).
// A visit error aborts the replay.
func ReplaySteps(cfg Config, steps []Step, visit func(i int, st Step, ev *Event, w *World, applyErr error) error) error {
	cfg.normalize()
	if err := cfg.Net.Validate(); err != nil {
		return err
	}
	w := newWorld(&cfg)
	for i, st := range steps {
		a, err := w.resolveStep(st)
		if err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
		var ev *Event
		if a.kind == actEvent {
			e := a.event
			ev = &e
		}
		applyErr := w.apply(a)
		if visit != nil {
			if err := visit(i, st, ev, w, applyErr); err != nil {
				return err
			}
		}
		if applyErr != nil {
			if i != len(steps)-1 {
				return fmt.Errorf("mc: step %d failed mid-trace: %w", i, applyErr)
			}
			return nil
		}
	}
	return nil
}

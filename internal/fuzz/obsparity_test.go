package fuzz

import (
	"testing"

	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/obs"
)

// comparable projects an event onto the fields both replay substrates must
// agree on. Seq/Time are sink-assigned (identical anyway for clockless
// collectors) and excluded to keep the contract on protocol content.
type comparableEvent struct {
	Kind                          obs.Kind
	Node, Block, State, Msg, Peer int32
}

func project(evs []obs.Event) []comparableEvent {
	out := make([]comparableEvent, len(evs))
	for i, ev := range evs {
		out[i] = comparableEvent{ev.Kind, ev.Node, ev.Block, ev.State, ev.Msg, ev.Peer}
	}
	return out
}

// TestReplayObsParity: replaying a checker counterexample through
// mc.ReplaySteps (Config.Obs) and through the independent execMachine
// harness must emit identical event streams — HandlerEnter/Exit, Send,
// Drop, Dup, the lot. This is the "replay emits what a live run emits"
// half of the single-source property: one protocol text, one event stream,
// no matter which substrate executes it.
func TestReplayObsParity(t *testing.T) {
	// The seeded SWMR bug under a drop budget: its counterexample carries
	// deliver, drop, timeout, and event steps.
	f, err := New(Config{Proto: "stache-ft-buggy", Nodes: 2, Blocks: 1,
		Net: netmodel.Model{MaxDrops: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.ConfirmMC(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || len(res.Violation.Steps) == 0 {
		t.Fatal("need a counterexample with steps")
	}

	// Substrate 1: the checker's own replay with Config.Obs attached.
	mcCol := obs.NewCollector(0)
	cfg := f.Spec().MCConfig()
	cfg.Obs = mcCol
	if err := mc.ReplaySteps(cfg, res.Violation.Steps, nil); err != nil {
		t.Fatalf("mc replay: %v", err)
	}

	// Substrate 2: the differential harness with its own sink, driven by a
	// plain ReplaySteps pass (no sink) purely for step resolution.
	xCol := obs.NewCollector(0)
	x := newExecMachine(f.Spec())
	x.setObs(xCol)
	err = mc.ReplaySteps(f.Spec().MCConfig(), res.Violation.Steps,
		func(i int, st mc.Step, ev *mc.Event, w *mc.World, applyErr error) error {
			herr := x.apply(st, ev)
			if (applyErr == nil) != (herr == nil) {
				t.Fatalf("step %d: substrates disagree on failure: %v vs %v", i, applyErr, herr)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("harness replay: %v", err)
	}

	a, b := project(mcCol.Events()), project(xCol.Events())
	if len(a) == 0 {
		t.Fatal("replay emitted no events")
	}
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: checker %d, harness %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d differs: checker %+v, harness %+v", i, a[i], b[i])
		}
	}
	if mcCol.Count(obs.KindDrop) == 0 {
		t.Error("drop counterexample replayed without a Drop event")
	}
}

// TestCampaignCoverage: a fuzz campaign with Config.Coverage accumulates
// dispatch coverage across schedules, and the same campaign re-run
// accumulates the identical report (seeded schedules are deterministic).
func TestCampaignCoverage(t *testing.T) {
	campaign := func() *obs.Coverage {
		cov := obs.NewCoverage()
		f, err := New(Config{Proto: "stache", Nodes: 2, Blocks: 1,
			Schedules: 20, Seed: 7, Coverage: cov})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Fuzz()
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure != nil {
			t.Fatalf("clean protocol failed: %v", res.Failure.Report)
		}
		return cov
	}
	a, b := campaign(), campaign()
	if a.DispatchPairs() == 0 {
		t.Fatal("campaign accumulated no dispatch coverage")
	}
	if a.DispatchPairs() != b.DispatchPairs() || a.TransitionEdges() != b.TransitionEdges() {
		t.Errorf("re-run drifted: %d/%d pairs, %d/%d edges",
			a.DispatchPairs(), b.DispatchPairs(), a.TransitionEdges(), b.TransitionEdges())
	}
}

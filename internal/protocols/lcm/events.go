package lcm

import (
	"teapot/internal/mc"
	"teapot/internal/runtime"
)

// Events is the LCM verification event generator. The paper notes LCM
// event generation is by far the most involved part (~400 lines of
// Murphi): it must express the application's weak-ordering discipline —
// normal (Stache-mode) accesses happen only outside phases — while still
// exercising the phase-entry races, most importantly Figure 11's
// reconciliation chasing another node's activity into a pending home.
//
// Phase entries themselves are *always* enabled from stable states: the
// lazy protocol tolerates entries racing invalidation epochs, and the
// checker proves it.
type Events struct {
	rd, wr, wrro int
	begin, end   int
	phaseTags    map[int]struct{}
}

// NewEvents builds the generator for a compiled LCM protocol.
func NewEvents(p *runtime.Protocol) *Events {
	g := &Events{
		rd:        p.MsgIndex("RD_FAULT"),
		wr:        p.MsgIndex("WR_FAULT"),
		wrro:      p.MsgIndex("WR_RO_FAULT"),
		begin:     p.MsgIndex("BEGIN_LCM_EV"),
		end:       p.MsgIndex("END_LCM_EV"),
		phaseTags: make(map[int]struct{}),
	}
	for _, name := range []string{
		"BEGIN_LCM", "GET_LCM_REQ", "GET_LCM_RESP",
		"PUT_ACCUM", "PUT_ACCUM_ACK", "FWD_LCM_REQ", "FWD_BOUNCE",
		"LCM_UPDATE",
	} {
		if i := p.MsgIndex(name); i >= 0 {
			g.phaseTags[i] = struct{}{}
		}
	}
	return g
}

// phaseActive reports whether any node is inside an LCM phase for the
// block or phase traffic is still draining; the application's barriers
// guarantee no normal accesses happen then.
func (g *Events) phaseActive(w *mc.World, block int) bool {
	for n := 0; n < w.Nodes(); n++ {
		switch w.StateName(n, block) {
		case "Cache_LCM_Idle", "Cache_LCM_Dirty", "Cache_LCM_Wait",
			"Cache_AwaitAccumAck", "Home_LCM", "Home_Await_BEGIN_LCM":
			return true
		}
	}
	return w.AnyMessage(func(m *runtime.Message) bool {
		_, ok := g.phaseTags[m.Tag]
		return ok && m.ID == block
	})
}

// Enabled implements mc.EventGen.
func (g *Events) Enabled(w *mc.World, node, block int) []mc.Event {
	if w.Stalled(node) >= 0 {
		return nil
	}
	active := g.phaseActive(w, block)
	vote := mc.Event{Name: "BEGIN_LCM_EV", Tag: g.begin}
	endEv := mc.Event{Name: "END_LCM_EV", Tag: g.end}
	switch w.StateName(node, block) {
	case "Cache_Inv":
		evs := []mc.Event{vote}
		if !active {
			evs = append(evs,
				mc.Event{Name: "RD_FAULT", Tag: g.rd, Stalls: true},
				mc.Event{Name: "WR_FAULT", Tag: g.wr, Stalls: true})
		}
		return evs
	case "Cache_RO":
		evs := []mc.Event{vote}
		if !active {
			evs = append(evs, mc.Event{Name: "WR_RO_FAULT", Tag: g.wrro, Stalls: true})
		}
		return evs
	case "Cache_RW":
		// Figure 11's race: the owner's reconciliation chases other
		// nodes' phase activity into the home.
		return []mc.Event{vote}
	case "Cache_LCM_Idle":
		return []mc.Event{
			{Name: "RD_FAULT", Tag: g.rd, Stalls: true},
			{Name: "WR_FAULT", Tag: g.wr, Stalls: true},
			endEv,
		}
	case "Cache_LCM_Dirty":
		return []mc.Event{endEv}
	case "Home_RS":
		if !active {
			return []mc.Event{{Name: "WR_RO_FAULT", Tag: g.wrro, Stalls: true}}
		}
	case "Home_Excl":
		if !active {
			return []mc.Event{
				{Name: "RD_FAULT", Tag: g.rd, Stalls: true},
				{Name: "WR_FAULT", Tag: g.wr, Stalls: true},
			}
		}
	}
	return nil
}

// SymmetricEvents implements mc.EquivariantEvents: phase detection scans
// state names and per-block message predicates, never concrete node ids.
func (e *Events) SymmetricEvents() {}

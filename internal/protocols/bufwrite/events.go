package bufwrite

import (
	"teapot/internal/mc"
	"teapot/internal/runtime"
	"teapot/internal/sema"
)

// Events generates loads, stores, and synchronization operations randomly
// interleaved — the paper's buffered-write event loop ("each node must
// handle synchronization operations randomly interleaved with the loads
// and stores", ~100 lines of Murphi).
type Events struct {
	rd, wr, wrro, sync int
	bufferedSlot       int
	// MaxBuffered bounds how many writes may accumulate in the buffer
	// between synchronizations (a bounded write buffer; unbounded
	// counting would make the state space infinite).
	MaxBuffered int64
}

// NewEvents builds the generator.
func NewEvents(p *runtime.Protocol) *Events {
	g := &Events{
		rd:           p.MsgIndex("RD_FAULT"),
		wr:           p.MsgIndex("WR_FAULT"),
		wrro:         p.MsgIndex("WR_RO_FAULT"),
		sync:         p.MsgIndex("SYNC"),
		bufferedSlot: -1,
		MaxBuffered:  2,
	}
	for _, v := range p.Sema().ProtVars {
		if v.Name == "buffered" {
			g.bufferedSlot = v.Index
		}
	}
	return g
}

// Enabled implements mc.EventGen.
func (g *Events) Enabled(w *mc.World, node, block int) []mc.Event {
	if w.Stalled(node) >= 0 {
		return nil
	}
	syncEv := mc.Event{Name: "SYNC", Tag: g.sync, Stalls: true}
	switch w.StateName(node, block) {
	case "Cache_Inv":
		return []mc.Event{
			{Name: "RD_FAULT", Tag: g.rd, Stalls: true},
			{Name: "WR_FAULT", Tag: g.wr, Stalls: true},
			syncEv,
		}
	case "Cache_RO":
		return []mc.Event{
			{Name: "WR_RO_FAULT", Tag: g.wrro, Stalls: true},
			syncEv,
		}
	case "Cache_RW":
		return []mc.Event{syncEv}
	case "Cache_Buf_Fill":
		return []mc.Event{
			{Name: "RD_FAULT", Tag: g.rd, Stalls: true},
			syncEv,
		}
	case "Cache_Buf_Upgrade":
		evs := []mc.Event{syncEv}
		switch w.Access(node, block) {
		case sema.AccReadOnly:
			// Upgrade still pending with the read copy intact: stores
			// fault read-only and accumulate in the buffer (bounded).
			if g.bufferedSlot >= 0 && w.BlockVarInt(node, block, g.bufferedSlot) < g.MaxBuffered {
				evs = append(evs, mc.Event{Name: "WR_RO_FAULT", Tag: g.wrro, Stalls: true})
			}
		case sema.AccBuffered:
			// The copy was recalled mid-upgrade: stores buffer silently,
			// loads fault and stall for the grant.
			evs = append(evs, mc.Event{Name: "RD_FAULT", Tag: g.rd, Stalls: true})
		}
		return evs
	case "Home_RS":
		return []mc.Event{{Name: "WR_RO_FAULT", Tag: g.wrro, Stalls: true}, syncEv}
	case "Home_Excl":
		return []mc.Event{
			{Name: "RD_FAULT", Tag: g.rd, Stalls: true},
			{Name: "WR_FAULT", Tag: g.wr, Stalls: true},
			syncEv,
		}
	case "Home_Idle":
		return []mc.Event{syncEv}
	}
	return nil
}

// SymmetricEvents implements mc.EquivariantEvents: enablement reads state
// names and the per-block buffered counter only.
func (e *Events) SymmetricEvents() {}

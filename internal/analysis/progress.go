package analysis

import (
	"sort"
	"strings"

	"teapot/internal/ir"
	"teapot/internal/source"
)

// Progress checks: the deferred-queue discipline (§2/§3) only retries
// queued messages after the state transitions, and a deferred request is
// only safe to hold if the holder is guaranteed to move on. These passes
// catch the two static failure shapes.

// runQueueStuck flags states that Enqueue (explicitly or via DEFAULT) but
// have no handler that ever transitions (SetState or Suspend, including
// self-transitions, which also retry the queue) and no Resume: the deferred
// queue can never drain, so every enqueued message is lost and its sender
// potentially stuck.
func runQueueStuck(c *Ctx) {
	for si, st := range c.Sema.States {
		if !c.facts.enqueues[si] || !c.facts.reach[si] {
			continue
		}
		if c.facts.transitions[si] || c.facts.hasResume[si] {
			continue
		}
		c.Reportf(source.SevWarning, c.statePos(st),
			"state %s enqueues messages but no handler transitions or resumes: the deferred queue never drains",
			st.Name)
	}
}

// runDeferDeadlock detects the §7 Stache bug class statically: a request
// message that every dedicated handler answers synchronously (each one
// sends the same reply before finishing or suspending), deferred by a state
// on the answering side. While the request sits in the deferred queue the
// requester — suspended in a subroutine state awaiting the reply — cannot
// make progress, and if the deferring state's own exit depends on the
// requester, the protocol deadlocks. The seeded Stache variant's missing
// PUT_NO_DATA_REQ handler in Cache_RO_To_RW is exactly this shape, and the
// model checker's counterexample (home awaiting PUT_NO_DATA_RESP, cache
// awaiting UPGRADE_ACK) is its dynamic witness.
//
// A message M qualifies as a synchronously answered request when:
//   - it has at least two dedicated handlers, all on one side of the
//     protocol (home or cache, per reachability from the start states),
//     and the intersection of the replies those handlers send on every
//     path is non-empty; and
//   - some reply in that intersection really unblocks a suspended peer:
//     an opposite-side subroutine state (CONT parameter) handles it with
//     a Resume.
//
// A same-side state S whose DEFAULT enqueues M is then flagged when both:
//   - some direct predecessor of S has a dedicated M handler, so M can
//     plausibly arrive while the block sits in S (a racing message does
//     not notice the transition); and
//   - S's own unblocking is not already guaranteed: no fragment that
//     sends a message X whose handler suspends into S also always-sends
//     one of S's dedicated messages (if it did, S's wake-up would be in
//     flight before S is ever entered, as with LCM's BEGIN_LCM chasing
//     the PUT_ACCUM).
func runDeferDeadlock(c *Ctx) {
	for mi, msg := range c.Sema.Messages {
		handlers := 0
		handlerSide := sideNone
		var replies map[int]bool // ⊤ as nil before the first handler
		sidesAgree := true
		for si := range c.Sema.States {
			fn, ok := c.IR.HandlerFunc[si][mi]
			if !ok {
				continue
			}
			handlers++
			s := c.facts.sides[si]
			switch {
			case handlerSide == sideNone:
				handlerSide = s
			case handlerSide != s:
				sidesAgree = false
			}
			replies = intersect(replies, c.facts.alwaysSends[fn])
		}
		if handlers < 2 || !sidesAgree || handlerSide == sideBoth || handlerSide == sideNone || len(replies) == 0 {
			continue
		}
		if !replyAwaited(c, replies, handlerSide) {
			continue
		}
		reply := describeTags(c, replies)
		for si, st := range c.Sema.States {
			if c.facts.sides[si] != handlerSide || !c.facts.reach[si] {
				continue
			}
			if c.facts.policies[si][mi] != polDefer {
				continue
			}
			if !predHandles(c, si, mi) || wakeUpInFlight(c, si) {
				continue
			}
			c.Reportf(source.SevWarning, c.statePos(st),
				"state %s defers %s via DEFAULT Enqueue, but all %d dedicated handlers answer it with %s immediately: a peer suspended awaiting the reply can wait forever",
				st.Name, msg.Name, handlers, reply)
		}
	}
}

// replyAwaited reports whether some reply tag is handled, on the opposite
// side, by a subroutine state's dedicated handler containing a Resume —
// the static signature of a requester suspended for the answer.
func replyAwaited(c *Ctx, replies map[int]bool, handlerSide side) bool {
	for si := range c.Sema.States {
		s := c.facts.sides[si]
		if s == handlerSide || s == sideNone || c.facts.contReg[si] == ir.NoReg {
			continue
		}
		for ri := range c.Sema.Messages {
			if !replies[ri] {
				continue
			}
			fn, ok := c.IR.HandlerFunc[si][ri]
			if !ok {
				continue
			}
			for i := range fn.Code {
				if fn.Code[i].Op == ir.OpResume {
					return true
				}
			}
		}
	}
	return false
}

// predHandles reports whether a direct predecessor of state si has a
// dedicated handler for message mi.
func predHandles(c *Ctx, si, mi int) bool {
	for _, p := range c.facts.preds[si] {
		if c.facts.policies[p][mi] == polExplicit {
			return true
		}
	}
	return false
}

// wakeUpInFlight reports whether entering state si guarantees one of its
// dedicated messages is already on the wire: some handler message X
// suspends into si, and some fragment that always-sends X also
// always-sends a message si handles dedicatedly.
func wakeUpInFlight(c *Ctx, si int) bool {
	for _, xi := range c.facts.suspendIn[si] {
		if xi < 0 {
			continue
		}
		for _, fn := range c.IR.Funcs {
			sent := c.facts.alwaysSends[fn]
			if !sent[xi] {
				continue
			}
			for ui := range c.Sema.Messages {
				if sent[ui] && c.facts.policies[si][ui] == polExplicit {
					return true
				}
			}
		}
	}
	return false
}

// describeTags renders a reply-tag set as sorted message names.
func describeTags(c *Ctx, tags map[int]bool) string {
	var names []string
	for t := range tags {
		if t >= 0 && t < len(c.Sema.Messages) {
			names = append(names, c.Sema.Messages[t].Name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

package netmodel

import "testing"

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Model
	}{
		{"", Model{}},
		{"none", Model{}},
		{"drop=1,dup=1,reorder=2", Model{Reorder: 2, MaxDrops: 1, MaxDups: 1}},
		{" drop=2 , corrupt=1 ", Model{MaxDrops: 2, MaxCorrupts: 1}},
		{"delay=1,rate=0.5", Model{Delay: 1, Rate: 0.5}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"drop", "drop=x", "bogus=1", "drop=-1", "rate=2"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, in := range []string{"", "drop=1,dup=1,reorder=2", "corrupt=1,delay=2"} {
		m, err := Parse(in)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(m.String())
		if err != nil {
			t.Fatalf("Parse(%q.String()=%q): %v", in, m.String(), err)
		}
		if back != m {
			t.Errorf("round trip %q -> %q -> %+v, want %+v", in, m.String(), back, m)
		}
	}
}

func TestEffectiveReorder(t *testing.T) {
	m := Model{Reorder: 1, Delay: 2}
	if got := m.EffectiveReorder(); got != 3 {
		t.Errorf("EffectiveReorder = %d, want 3", got)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	m := Model{MaxDrops: 3, MaxDups: 2, Delay: 1, Rate: 0.5}
	a, b := NewInjector(m, 42), NewInjector(m, 42)
	var faultsA, faultsB []Fault
	for i := 0; i < 200; i++ {
		faultsA = append(faultsA, a.Next())
		faultsB = append(faultsB, b.Next())
	}
	for i := range faultsA {
		if faultsA[i] != faultsB[i] {
			t.Fatalf("same seed diverged at send %d: %v vs %v", i, faultsA[i], faultsB[i])
		}
	}
	if a.Drops() > m.MaxDrops || a.Dups() > m.MaxDups {
		t.Errorf("budgets exceeded: drops=%d dups=%d", a.Drops(), a.Dups())
	}
	if a.Drops() == 0 && a.Dups() == 0 && a.Delays() == 0 {
		t.Error("rate=0.5 over 200 sends injected nothing")
	}
}

func TestInjectorInactive(t *testing.T) {
	if inj := NewInjector(Model{Reorder: 3}, 1); inj != nil {
		t.Error("reorder-only model should not build an injector")
	}
	var nilInj *Injector
	if f := nilInj.Next(); f != FaultNone {
		t.Errorf("nil injector Next = %v", f)
	}
}

// Package ir defines the register-based intermediate representation the
// Teapot compiler lowers handlers into.
//
// Each message handler becomes a Func: a linear instruction sequence with
// explicit jumps. Suspend statements terminate a *fragment*; the fragment
// table records where each resumption re-enters the code and which
// registers a continuation must save and restore (filled in by the
// continuation pass after liveness analysis). This mirrors §5 of the paper:
// a handler with Suspends is compiled into atomically executable pieces
// without multiple stacks.
package ir

import (
	"fmt"
	"strings"

	"teapot/internal/sema"
	"teapot/internal/source"
	"teapot/internal/token"
)

// Reg is a virtual register index. NoReg means "none".
type Reg int

// NoReg marks an unused register operand.
const NoReg Reg = -1

// Op is an IR opcode.
type Op int

// Opcodes.
const (
	OpNop        Op = iota
	OpConst         // Dst := Int (with value kind in Kind)
	OpConstStr      // Dst := Str
	OpMove          // Dst := A
	OpBin           // Dst := A Tok B
	OpUn            // Dst := Tok A
	OpLoadVar       // Dst := block info slot Idx (protocol variable)
	OpStoreVar      // block info slot Idx := A
	OpModConst      // Dst := module constant Idx (runtime-bound)
	OpBuiltinVal    // Dst := builtin value (Idx = sema.Builtin)
	OpCall          // Dst := Fn(Args...); Dst may be NoReg
	OpMakeState     // Dst := state value {Idx = state index, Args}
	OpMakeCont      // Dst := continuation resuming fragment Idx, saving Args
	OpSuspend       // transition block to state value A and yield (ends fragment)
	OpResume        // resume continuation A (ends frame). Idx >= 0 marks a
	// constant-continuation site resolved to suspend site Idx.
	OpReturn // finish handler
	OpJump   // to instruction Idx
	OpBranch // if A goto Idx else goto Idx2
	OpPrint  // print Args
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpConstStr: "conststr", OpMove: "move",
	OpBin: "bin", OpUn: "un", OpLoadVar: "loadvar", OpStoreVar: "storevar",
	OpModConst: "modconst", OpBuiltinVal: "builtinval", OpCall: "call",
	OpMakeState: "makestate", OpMakeCont: "makecont", OpSuspend: "suspend",
	OpResume: "resume", OpReturn: "return", OpJump: "jump",
	OpBranch: "branch", OpPrint: "print",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ValueKind tags OpConst immediates so the VM can build typed values.
type ValueKind int

// Immediate kinds.
const (
	KInt ValueKind = iota
	KBool
	KNode
	KID
	KMsg
	KAccess
)

// FuncRef names a call target (support routine or builtin).
type FuncRef struct {
	Name    string
	Builtin sema.Builtin
	Sig     *sema.Sig
}

// Instr is one IR instruction.
type Instr struct {
	Op   Op
	Dst  Reg
	A, B Reg
	Args []Reg
	Idx  int // slot / state index / fragment index / jump target
	Idx2 int // second branch target
	Tok  token.Kind
	Kind ValueKind
	Int  int64
	Str  string
	Fn   *FuncRef
	Pos  source.Pos
}

// Fragment is one atomically executable piece of a handler.
type Fragment struct {
	Start int   // instruction index of the fragment's entry point
	Saved []Reg // registers a continuation entering here restores
	// Site is the global suspend-site ID that creates continuations
	// entering this fragment (-1 for fragment 0).
	Site int
}

// Func is a compiled handler.
type Func struct {
	Name       string // "State.MESSAGE"
	StateIndex int
	MsgIndex   int // -1 for DEFAULT

	NumStateParams int // registers [0, NumStateParams)
	NumParams      int // registers [NumStateParams, +NumParams)
	NumLocals      int
	NumRegs        int

	Code  []Instr
	Frags []Fragment
}

// StateParamReg returns the register holding state parameter i.
func (f *Func) StateParamReg(i int) Reg { return Reg(i) }

// ParamReg returns the register holding handler parameter i.
func (f *Func) ParamReg(i int) Reg { return Reg(f.NumStateParams + i) }

// LocalReg returns the register holding local i.
func (f *Func) LocalReg(i int) Reg { return Reg(f.NumStateParams + f.NumParams + i) }

// SuspendSite describes one Suspend statement in the program.
type SuspendSite struct {
	ID          int
	Func        *Func
	FragIdx     int // fragment entered on resume
	TargetState int
	// Classification filled by the continuation pass:
	Static   bool // no saved registers: record shared, never heap-allocated
	Constant bool // unique site for its target state: resumes are direct
}

// Program is the compiled protocol: all handlers plus metadata shared with
// the semantic model.
type Program struct {
	Sema  *sema.Program
	Funcs []*Func
	// HandlerFunc[stateIndex] maps message index -> *Func; Defaults holds
	// each state's DEFAULT handler (or nil).
	HandlerFunc []map[int]*Func
	Defaults    []*Func
	Sites       []*SuspendSite
}

// FuncFor returns the handler Func for (state, msg), falling back to the
// state's DEFAULT handler; nil if neither exists.
func (p *Program) FuncFor(state, msg int) *Func {
	if f, ok := p.HandlerFunc[state][msg]; ok {
		return f
	}
	return p.Defaults[state]
}

// Disassemble renders a Func for golden tests and debugging.
func (f *Func) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s (state=%d msg=%d) sp=%d p=%d l=%d regs=%d\n",
		f.Name, f.StateIndex, f.MsgIndex, f.NumStateParams, f.NumParams, f.NumLocals, f.NumRegs)
	fragAt := map[int]int{}
	for i, fr := range f.Frags {
		fragAt[fr.Start] = i
	}
	for i, in := range f.Code {
		if fi, ok := fragAt[i]; ok {
			fmt.Fprintf(&b, " frag %d (site=%d saved=%v):\n", fi, f.Frags[fi].Site, regList(f.Frags[fi].Saved))
		}
		fmt.Fprintf(&b, "  %3d: %s\n", i, in.String())
	}
	return b.String()
}

func regList(rs []Reg) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = int(r)
	}
	return out
}

func (in Instr) String() string {
	d := func() string {
		if in.Dst == NoReg {
			return "_"
		}
		return fmt.Sprintf("r%d", in.Dst)
	}
	r := func(x Reg) string { return fmt.Sprintf("r%d", x) }
	args := func() string {
		parts := make([]string, len(in.Args))
		for i, a := range in.Args {
			parts[i] = r(a)
		}
		return strings.Join(parts, ", ")
	}
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%s := const %d (kind %d)", d(), in.Int, in.Kind)
	case OpConstStr:
		return fmt.Sprintf("%s := str %q", d(), in.Str)
	case OpMove:
		return fmt.Sprintf("%s := %s", d(), r(in.A))
	case OpBin:
		return fmt.Sprintf("%s := %s %s %s", d(), r(in.A), in.Tok, r(in.B))
	case OpUn:
		return fmt.Sprintf("%s := %s %s", d(), in.Tok, r(in.A))
	case OpLoadVar:
		return fmt.Sprintf("%s := var[%d]", d(), in.Idx)
	case OpStoreVar:
		return fmt.Sprintf("var[%d] := %s", in.Idx, r(in.A))
	case OpModConst:
		return fmt.Sprintf("%s := modconst[%d]", d(), in.Idx)
	case OpBuiltinVal:
		return fmt.Sprintf("%s := builtin[%d]", d(), in.Idx)
	case OpCall:
		return fmt.Sprintf("%s := %s(%s)", d(), in.Fn.Name, args())
	case OpMakeState:
		return fmt.Sprintf("%s := state[%d]{%s}", d(), in.Idx, args())
	case OpMakeCont:
		return fmt.Sprintf("%s := cont(frag %d, save %s)", d(), in.Idx, args())
	case OpSuspend:
		return fmt.Sprintf("suspend -> %s", r(in.A))
	case OpResume:
		if in.Idx >= 0 {
			return fmt.Sprintf("resume %s [const site %d]", r(in.A), in.Idx)
		}
		return fmt.Sprintf("resume %s", r(in.A))
	case OpReturn:
		return "return"
	case OpJump:
		return fmt.Sprintf("jump %d", in.Idx)
	case OpBranch:
		return fmt.Sprintf("branch %s ? %d : %d", r(in.A), in.Idx, in.Idx2)
	case OpPrint:
		return fmt.Sprintf("print(%s)", args())
	}
	return in.Op.String()
}

// Uses appends the registers the instruction reads to dst and returns it.
func (in *Instr) Uses(dst []Reg) []Reg {
	switch in.Op {
	case OpMove, OpUn, OpStoreVar, OpSuspend:
		dst = append(dst, in.A)
	case OpBin:
		dst = append(dst, in.A, in.B)
	case OpResume:
		dst = append(dst, in.A)
	case OpBranch:
		dst = append(dst, in.A)
	}
	for _, a := range in.Args {
		dst = append(dst, a)
	}
	return dst
}

// Def returns the register the instruction writes, or NoReg.
func (in *Instr) Def() Reg {
	switch in.Op {
	case OpConst, OpConstStr, OpMove, OpBin, OpUn, OpLoadVar, OpModConst,
		OpBuiltinVal, OpCall, OpMakeState, OpMakeCont:
		return in.Dst
	}
	return NoReg
}

// Terminates reports whether control never falls through this instruction.
func (in *Instr) Terminates() bool {
	switch in.Op {
	case OpSuspend, OpResume, OpReturn, OpJump:
		return true
	}
	return false
}

// Succs appends the instruction indices control may flow to from index i.
func (f *Func) Succs(i int, dst []int) []int {
	in := &f.Code[i]
	switch in.Op {
	case OpJump:
		return append(dst, in.Idx)
	case OpBranch:
		return append(dst, in.Idx, in.Idx2)
	case OpReturn, OpResume:
		return dst
	case OpSuspend:
		// Control continues at the fragment entered on resume — for
		// dataflow purposes the suspend flows into the next fragment.
		for fi := range f.Frags {
			if f.Frags[fi].Start == i+1 {
				return append(dst, i+1)
			}
		}
		return dst
	}
	if i+1 < len(f.Code) {
		dst = append(dst, i+1)
	}
	return dst
}

// Teapot-cover compares coverage between run manifests (the -report
// artifacts of teapot-verify, teapot-sim, and teapot-fuzz) and
// cross-checks dynamic coverage against static reachability.
//
// Usage:
//
//	teapot-cover mc.json fuzz.json        # diff: what did fuzz miss vs mc?
//	teapot-cover -static mc.json          # dynamic vs static dispatch universe
//	teapot-cover -static mc.json -allow Home_Idle.NACK
//
// Diff mode treats the first manifest as the reference (typically an
// exhaustive teapot-verify run — 100% of what the fault budget reaches) and
// names every (state, message) pair, transition, and fault action the
// second run missed, by exact key. Informational; always exits 0.
//
// Static mode compiles the manifest's protocol and compares its observed
// dispatch set against internal/analysis reachability: a statically
// reachable handler that even this run never entered is a finding (exit 2)
// unless listed in -allow. On an exhaustive checker manifest this is the
// single-source property made measurable — one protocol text, and the
// static and dynamic views of its surface must agree.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"teapot/internal/analysis"
	"teapot/internal/manifest"
	"teapot/internal/protocols"
)

func main() {
	var (
		static = flag.Bool("static", false, "cross-check one manifest's dispatch coverage against static reachability (exit 2 on undocumented gaps)")
		allow  = flag.String("allow", "", "comma-separated dispatch pairs (State.MESSAGE) excused from the -static check, each with a known reason")
	)
	flag.Parse()

	if *static {
		if flag.NArg() != 1 {
			usage("-static wants exactly one manifest")
		}
		os.Exit(staticCheck(flag.Arg(0), *allow))
	}
	if flag.NArg() != 2 {
		usage("want two manifests to diff (or -static with one)")
	}
	diff(flag.Arg(0), flag.Arg(1))
}

func usage(msg string) {
	fmt.Fprintf(os.Stderr, "teapot-cover: %s\nusage: teapot-cover ref.json other.json | teapot-cover -static run.json [-allow pairs]\n", msg)
	os.Exit(1)
}

// diff prints what other missed relative to ref (and the reverse, since a
// fuzz run can wander where a budgeted checker cannot).
func diff(refPath, otherPath string) {
	ref, other := load(refPath), load(otherPath)
	if ref.Protocol != other.Protocol {
		fmt.Fprintf(os.Stderr, "teapot-cover: warning: comparing different protocols (%s vs %s)\n", ref.Protocol, other.Protocol)
	}
	fmt.Printf("ref:   %s (%s, %d dispatch pairs)\n", refPath, ref.Shape(), covLen(ref))
	fmt.Printf("other: %s (%s, %d dispatch pairs)\n", otherPath, other.Shape(), covLen(other))
	total := 0
	total += section("dispatch pairs missed by other", missing(ref, other, dispatchOf))
	total += section("dispatch pairs only in other", missing(other, ref, dispatchOf))
	total += section("transitions missed by other", missing(ref, other, transOf))
	total += section("transitions only in other", missing(other, ref, transOf))
	total += section("fault actions missed by other", missing(ref, other, faultsOf))
	total += section("fault actions only in other", missing(other, ref, faultsOf))
	if total == 0 {
		fmt.Println("coverage identical: both runs exercised the same protocol surface")
	}
}

func load(path string) *manifest.Manifest {
	m, err := manifest.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teapot-cover:", err)
		os.Exit(1)
	}
	return m
}

func covLen(m *manifest.Manifest) int {
	if m.Coverage == nil {
		return 0
	}
	return len(m.Coverage.Dispatch)
}

func dispatchOf(m *manifest.Manifest) map[string]uint64 {
	if m.Coverage == nil {
		return nil
	}
	return m.Coverage.Dispatch
}

func transOf(m *manifest.Manifest) map[string]uint64 {
	if m.Coverage == nil {
		return nil
	}
	return m.Coverage.Transitions
}

func faultsOf(m *manifest.Manifest) map[string]uint64 {
	if m.Coverage == nil {
		return nil
	}
	return m.Coverage.Faults
}

func missing(ref, other *manifest.Manifest, sel func(*manifest.Manifest) map[string]uint64) []string {
	return manifest.MissingKeys(sel(ref), sel(other))
}

func section(title string, keys []string) int {
	if len(keys) == 0 {
		return 0
	}
	fmt.Printf("%s (%d):\n", title, len(keys))
	for _, k := range keys {
		fmt.Printf("  %s\n", k)
	}
	return len(keys)
}

// staticCheck compares a manifest's observed dispatch set against the
// compiled protocol's statically reachable dispatch universe.
func staticCheck(path, allow string) int {
	m := load(path)
	if m.Coverage == nil {
		fmt.Fprintln(os.Stderr, "teapot-cover: manifest carries no coverage block")
		return 1
	}
	spec, err := protocols.Spec(m.Protocol, m.Nodes, m.Blocks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teapot-cover:", err)
		return 1
	}
	allowed := map[string]bool{}
	for _, p := range strings.Split(allow, ",") {
		if p = strings.TrimSpace(p); p != "" {
			allowed[p] = true
		}
	}
	expected := analysis.ExpectedDispatch(spec.Proto)
	gaps := analysis.CoverageGaps(spec.Proto, m.Coverage.Dispatch)
	fmt.Printf("%s: %d/%d statically reachable dispatch pairs covered\n",
		m.Shape(), len(expected)-len(gaps), len(expected))
	var bad []string
	for _, g := range gaps {
		if allowed[g] {
			fmt.Printf("  allowed gap: %s\n", g)
		} else {
			bad = append(bad, g)
		}
	}
	// The observed-but-not-expected direction is informational: DEFAULT
	// dispatches (defer/nack/drop policies) enter handlers the static
	// explicit-handler universe deliberately excludes.
	extra := manifest.MissingKeys(m.Coverage.Dispatch, toSet(expected))
	if len(extra) > 0 {
		fmt.Printf("  observed beyond the explicit-handler universe (DEFAULT dispatches): %d\n", len(extra))
	}
	if len(bad) > 0 {
		fmt.Printf("UNCOVERED: %d statically reachable pair(s) this run never dispatched:\n", len(bad))
		for _, g := range bad {
			fmt.Printf("  %s\n", g)
		}
		return 2
	}
	fmt.Println("static dispatch universe saturated (modulo allowed gaps)")
	return 0
}

func toSet(keys []string) map[string]uint64 {
	out := make(map[string]uint64, len(keys))
	for _, k := range keys {
		out[k] = 1
	}
	return out
}

package mc_test

import (
	"strings"
	"testing"

	"teapot/internal/mc"
	"teapot/internal/protocols/stache"
)

func stacheConfig(t *testing.T, nodes, blocks, reorder int) mc.Config {
	t.Helper()
	a := stache.MustCompile(true)
	return mc.Config{
		Proto:          a.Protocol,
		Support:        stache.MustSupport(a.Protocol),
		Nodes:          nodes,
		Blocks:         blocks,
		Reorder:        reorder,
		Events:         stache.NewEvents(a.Protocol),
		CheckCoherence: true,
	}
}

func TestStacheTwoNodesOneBlockInOrder(t *testing.T) {
	res, err := mc.Check(stacheConfig(t, 2, 1, 0))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	if res.States < 50 {
		t.Errorf("suspiciously few states: %d", res.States)
	}
	t.Logf("states=%d transitions=%d depth=%d elapsed=%v",
		res.States, res.Transitions, res.MaxDepth, res.Elapsed)
}

func TestStacheThreeNodesOneBlockInOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res, err := mc.Check(stacheConfig(t, 3, 1, 0))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d elapsed=%v",
		res.States, res.Transitions, res.MaxDepth, res.Elapsed)
}

func TestStacheTwoNodesTwoBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res, err := mc.Check(stacheConfig(t, 2, 2, 0))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d elapsed=%v",
		res.States, res.Transitions, res.MaxDepth, res.Elapsed)
}

func TestBuggyStacheDeadlocks(t *testing.T) {
	p, err := stache.CompileBuggy()
	if err != nil {
		t.Fatalf("compile buggy: %v", err)
	}
	cfg := mc.Config{
		Proto:          p,
		Support:        stache.MustSupport(p),
		Nodes:          2,
		Blocks:         1,
		Events:         stache.NewEvents(p),
		CheckCoherence: true,
	}
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation == nil {
		t.Fatal("expected the seeded bug to be found")
	}
	// The upgrade/invalidate race manifests as a deadlock (both parties
	// waiting) or a livelock flagged by a bound; a deadlock is expected.
	if res.Violation.Kind != "deadlock" {
		t.Errorf("violation kind = %s, want deadlock\n%s", res.Violation.Kind, res.Violation)
	}
	if len(res.Violation.Trace) == 0 {
		t.Errorf("violation has no trace")
	}
	// The trace must exhibit the race: an upgrade and an invalidation.
	joined := strings.Join(res.Violation.Trace, "\n")
	if !strings.Contains(joined, "WR_RO_FAULT") || !strings.Contains(joined, "PUT_NO_DATA_REQ") {
		t.Errorf("trace does not show the upgrade/invalidate race:\n%s", joined)
	}
	t.Logf("found after %d states:\n%s", res.States, res.Violation)
}

func TestStateLimit(t *testing.T) {
	cfg := stacheConfig(t, 2, 1, 0)
	cfg.MaxStates = 10
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation == nil || res.Violation.Kind != "state-limit" {
		t.Fatalf("expected state-limit, got %v", res.Violation)
	}
}

func TestDeterministicStateCount(t *testing.T) {
	r1, err := mc.Check(stacheConfig(t, 2, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mc.Check(stacheConfig(t, 2, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r1.States != r2.States || r1.Transitions != r2.Transitions {
		t.Errorf("nondeterministic exploration: (%d,%d) vs (%d,%d)",
			r1.States, r1.Transitions, r2.States, r2.Transitions)
	}
}

// TestStacheReorder1 verifies Stache on a reordering network (the paper's
// "1 reordering max" configuration of Table 3). This configuration is what
// forces the poisoned-fill and acknowledged-eviction machinery.
func TestStacheReorder1(t *testing.T) {
	res, err := mc.Check(stacheConfig(t, 2, 1, 1))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
	}
	if res.States <= 100 {
		t.Errorf("reordering should enlarge the state space, got %d states", res.States)
	}
	t.Logf("states=%d transitions=%d depth=%d", res.States, res.Transitions, res.MaxDepth)
}

// TestStacheReorder2 pushes reordering further than the paper could
// ("unrestricted reordering led to impractical simulation sizes").
func TestStacheReorder2(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res, err := mc.Check(stacheConfig(t, 2, 1, 2))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d", res.States, res.Transitions, res.MaxDepth)
}

package sema

import (
	"teapot/internal/ast"
	"teapot/internal/source"
	"teapot/internal/token"
)

// Check performs semantic analysis on a parsed program. On error it returns
// a partial Program and the accumulated diagnostics.
func Check(prog *ast.Program) (*Program, error) {
	c := &checker{
		p: &Program{
			AST:         prog,
			Types:       make(map[string]Type),
			Consts:      make(map[string]*ConstVal),
			Funcs:       make(map[string]*FuncSym),
			msgByName:   make(map[string]*Message),
			stateByName: make(map[string]*StateSym),
			Uses:        make(map[*ast.Ident]*Symbol),
		},
	}
	if prog.File != nil {
		c.fname = prog.File.Name
	}
	for name, t := range builtinTypes {
		c.p.Types[name] = t
	}
	for _, f := range builtinFuncs {
		c.p.Funcs[f.Name] = f
	}
	c.collectModules(prog.Modules)
	if prog.Protocol != nil {
		c.collectProtocol(prog.Protocol)
	} else {
		c.errs.Add(c.fname, source.Pos{}, "missing protocol declaration")
	}
	c.collectStates(prog.States)
	// Two passes: handler signatures first (they fix message payload
	// types), then bodies (whose Send sites are checked against payloads).
	for _, s := range c.p.States {
		c.collectHandlers(s)
	}
	for _, s := range c.p.States {
		for _, h := range s.Handlers {
			c.checkHandlerBody(h)
		}
	}
	c.errs.Sort()
	return c.p, c.errs.Err()
}

type checker struct {
	p     *Program
	fname string
	errs  source.ErrorList
}

func (c *checker) errorf(pos source.Pos, format string, args ...any) {
	c.errs.Add(c.fname, pos, format, args...)
}

func (c *checker) lookupType(id *ast.Ident) Type {
	if t, ok := c.p.Types[id.Name]; ok {
		return t
	}
	c.errorf(id.Pos(), "unknown type %q", id.Name)
	return Invalid
}

func (c *checker) collectModules(mods []*ast.Module) {
	for _, m := range mods {
		for _, d := range m.Decls {
			switch d := d.(type) {
			case *ast.TypeDecl:
				if _, exists := c.p.Types[d.Name.Name]; exists {
					c.errorf(d.Pos(), "type %q redeclared", d.Name.Name)
					continue
				}
				c.p.Types[d.Name.Name] = Abstract(d.Name.Name)
			case *ast.ModConstDecl:
				t := c.lookupType(d.Type)
				v := &VarSym{Name: d.Name.Name, Type: t, Index: len(c.p.ModConsts)}
				c.p.ModConsts = append(c.p.ModConsts, v)
			case *ast.SubDecl:
				s := &Sig{}
				for _, g := range d.Params {
					t := c.lookupType(g.Type)
					for range g.Names {
						s.Params = append(s.Params, t)
						s.ByRef = append(s.ByRef, g.ByRef)
					}
				}
				s.Result = Invalid
				if d.Result != nil {
					s.Result = c.lookupType(d.Result)
				}
				if prev, exists := c.p.Funcs[d.Name.Name]; exists && prev.Builtin != BNone {
					// A module may re-declare a builtin (the paper's modules
					// declare Send, SetState, etc. as prototypes); the
					// builtin semantics win.
					continue
				} else if exists {
					c.errorf(d.Pos(), "routine %q redeclared", d.Name.Name)
					continue
				}
				c.p.Funcs[d.Name.Name] = &FuncSym{Name: d.Name.Name, Sig: s}
			}
		}
	}
}

func (c *checker) collectProtocol(pr *ast.Protocol) {
	c.p.ProtoName = pr.Name.Name
	for _, d := range pr.Decls {
		switch d := d.(type) {
		case *ast.ProtVarDecl:
			t := c.lookupType(d.Type)
			if !t.Scalar() && t.Kind != TAbstract && t.Kind != TState && t.Kind != TCont {
				c.errorf(d.Pos(), "protocol variable %q has unsupported type %s", d.Name.Name, t)
			}
			if c.findProtVar(d.Name.Name) != nil {
				c.errorf(d.Pos(), "protocol variable %q redeclared", d.Name.Name)
				continue
			}
			c.p.ProtVars = append(c.p.ProtVars, &VarSym{Name: d.Name.Name, Type: t, Index: len(c.p.ProtVars)})
		case *ast.ProtConstDecl:
			cv := c.constExpr(d.Value)
			if cv == nil {
				continue
			}
			if _, exists := c.p.Consts[d.Name.Name]; exists {
				c.errorf(d.Pos(), "constant %q redeclared", d.Name.Name)
				continue
			}
			c.p.Consts[d.Name.Name] = cv
		case *ast.StateDecl:
			if c.p.stateByName[d.Name.Name] != nil {
				c.errorf(d.Pos(), "state %q redeclared", d.Name.Name)
				continue
			}
			st := &StateSym{
				Name:         d.Name.Name,
				Index:        len(c.p.States),
				Transient:    d.Transient,
				handlerByMsg: make(map[int]*HandlerSym),
			}
			for _, g := range d.Params {
				t := c.lookupType(g.Type)
				for _, n := range g.Names {
					st.Params = append(st.Params, ParamSym{Name: n.Name, Type: t, ByRef: g.ByRef})
				}
			}
			c.p.States = append(c.p.States, st)
			c.p.stateByName[st.Name] = st
		case *ast.MessageDecl:
			if c.p.msgByName[d.Name.Name] != nil {
				c.errorf(d.Pos(), "message %q redeclared", d.Name.Name)
				continue
			}
			m := &Message{Name: d.Name.Name, Index: len(c.p.Messages), Decl: d}
			c.p.Messages = append(c.p.Messages, m)
			c.p.msgByName[m.Name] = m
		}
	}
}

func (c *checker) findProtVar(name string) *VarSym {
	for _, v := range c.p.ProtVars {
		if v.Name == name {
			return v
		}
	}
	return nil
}

func (c *checker) findModConst(name string) *VarSym {
	for _, v := range c.p.ModConsts {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// constExpr evaluates a protocol constant initializer.
func (c *checker) constExpr(e ast.Expr) *ConstVal {
	switch e := e.(type) {
	case *ast.IntLit:
		return &ConstVal{Type: Int, Int: e.Value}
	case *ast.BoolLit:
		v := int64(0)
		if e.Value {
			v = 1
		}
		return &ConstVal{Type: Bool, Int: v}
	case *ast.StringLit:
		return &ConstVal{Type: String, Str: e.Value}
	case *ast.Name:
		if cv, ok := c.p.Consts[e.Ident.Name]; ok {
			return cv
		}
		c.errorf(e.Pos(), "constant initializer references unknown constant %q", e.Ident.Name)
		return nil
	case *ast.UnExpr:
		if e.Op == token.MINUS {
			if cv := c.constExpr(e.X); cv != nil && cv.Type.Same(Int) {
				return &ConstVal{Type: Int, Int: -cv.Int}
			}
		}
	}
	c.errorf(e.Pos(), "constant initializer must be a literal or constant name")
	return nil
}

func (c *checker) collectStates(states []*ast.State) {
	for _, s := range states {
		st := c.p.stateByName[s.Name.Name]
		if st == nil {
			// Body without a forward declaration: declare implicitly.
			st = &StateSym{
				Name:         s.Name.Name,
				Index:        len(c.p.States),
				handlerByMsg: make(map[int]*HandlerSym),
			}
			for _, g := range s.Params {
				t := c.lookupType(g.Type)
				for _, n := range g.Names {
					st.Params = append(st.Params, ParamSym{Name: n.Name, Type: t, ByRef: g.ByRef})
				}
			}
			c.p.States = append(c.p.States, st)
			c.p.stateByName[st.Name] = st
		} else if st.Body != nil {
			c.errorf(s.Pos(), "state %q defined twice", s.Name.Name)
			continue
		} else {
			// Body must agree with the forward declaration.
			var bodyParams []ParamSym
			for _, g := range s.Params {
				t := c.lookupType(g.Type)
				for _, n := range g.Names {
					bodyParams = append(bodyParams, ParamSym{Name: n.Name, Type: t, ByRef: g.ByRef})
				}
			}
			if len(bodyParams) != len(st.Params) {
				c.errorf(s.Pos(), "state %q has %d parameters here but %d in its declaration",
					s.Name.Name, len(bodyParams), len(st.Params))
			} else {
				for i := range bodyParams {
					if !bodyParams[i].Type.Same(st.Params[i].Type) {
						c.errorf(s.Pos(), "state %q parameter %d has type %s here but %s in its declaration",
							s.Name.Name, i+1, bodyParams[i].Type, st.Params[i].Type)
					}
				}
				st.Params = bodyParams // body's names are authoritative for handlers
			}
		}
		st.Body = s
		if s.Proto != nil && c.p.ProtoName != "" && s.Proto.Name != c.p.ProtoName {
			c.errorf(s.Proto.Pos(), "state qualifier %q does not match protocol %q", s.Proto.Name, c.p.ProtoName)
		}
	}
	for _, st := range c.p.States {
		if st.IsSubroutine() {
			st.Transient = true
		}
	}
}

func (c *checker) collectHandlers(st *StateSym) {
	if st.Body == nil {
		// Declared but not defined: legal only for non-subroutine states with
		// no handlers? The paper forward-declares all states; require bodies.
		c.errorf(source.Pos{}, "state %q declared but never defined", st.Name)
		return
	}
	for _, h := range st.Body.Handlers {
		hs := &HandlerSym{State: st, Body: h.Body, AST: h}
		if !h.IsDefault() {
			m := c.p.msgByName[h.Name.Name]
			if m == nil {
				c.errorf(h.Name.Pos(), "handler for undeclared message %q in state %q", h.Name.Name, st.Name)
				continue
			}
			hs.Msg = m
			if prev := st.handlerByMsg[m.Index]; prev != nil {
				c.errorf(h.Name.Pos(), "duplicate handler for message %q in state %q", m.Name, st.Name)
				continue
			}
			st.handlerByMsg[m.Index] = hs
		} else {
			if st.Default != nil {
				c.errorf(h.Name.Pos(), "duplicate DEFAULT handler in state %q", st.Name)
				continue
			}
			st.Default = hs
		}
		for _, g := range h.Params {
			t := c.lookupType(g.Type)
			for _, n := range g.Names {
				hs.Params = append(hs.Params, ParamSym{Name: n.Name, Type: t, ByRef: g.ByRef})
			}
		}
		for _, g := range h.Locals {
			t := c.lookupType(g.Type)
			for _, n := range g.Names {
				hs.Locals = append(hs.Locals, ParamSym{Name: n.Name, Type: t, ByRef: false})
			}
		}
		c.checkHandlerSignature(hs)
		st.Handlers = append(st.Handlers, hs)
	}
	if len(st.Handlers) == 0 {
		c.errorf(st.Body.Pos(), "state %q has no handlers", st.Name)
	}
}

// checkHandlerSignature enforces the delivery convention: every handler
// receives (id : ID; var info : INFO; src : NODE) followed by the message's
// declared payload. DEFAULT handlers receive just the standard triple.
func (c *checker) checkHandlerSignature(hs *HandlerSym) {
	pos := hs.AST.Name.Pos()
	std := []Type{ID, Info, Node}
	if len(hs.Params) < len(std) {
		c.errorf(pos, "handler %s.%s must declare at least (id : ID; var info : INFO; src : NODE)",
			hs.State.Name, hs.Name())
		return
	}
	for i, want := range std {
		if !hs.Params[i].Type.Same(want) {
			c.errorf(pos, "handler %s.%s parameter %d has type %s, want %s",
				hs.State.Name, hs.Name(), i+1, hs.Params[i].Type, want)
		}
	}
	payload := hs.Params[len(std):]
	if hs.Msg == nil {
		if len(payload) != 0 {
			c.errorf(pos, "DEFAULT handler in state %q cannot declare payload parameters", hs.State.Name)
		}
		return
	}
	// The first body found for a message fixes its payload types; later
	// handlers must agree. (Message declarations carry no payload syntax in
	// the Appendix A grammar, so payloads are inferred from handlers and
	// checked against Send sites.)
	var ptypes []Type
	for _, p := range payload {
		ptypes = append(ptypes, p.Type)
	}
	if hs.Msg.Payload == nil {
		hs.Msg.Payload = ptypes
		return
	}
	if len(ptypes) != len(hs.Msg.Payload) {
		c.errorf(pos, "handler %s.%s declares %d payload parameters for message %s, other handlers declare %d",
			hs.State.Name, hs.Name(), len(ptypes), hs.Msg.Name, len(hs.Msg.Payload))
		return
	}
	for i := range ptypes {
		if !ptypes[i].Same(hs.Msg.Payload[i]) {
			c.errorf(pos, "handler %s.%s payload parameter %d has type %s, other handlers use %s",
				hs.State.Name, hs.Name(), i+1, ptypes[i], hs.Msg.Payload[i])
		}
	}
}

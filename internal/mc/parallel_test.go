package mc_test

import (
	"testing"

	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
	"teapot/internal/protocols/update"
)

// equivalenceConfigs are the machines the worker-equivalence contract is
// checked on: clean protocols and the seeded-bug Stache variant (whose run
// ends in a violation, exercising the deterministic candidate selection
// and trace replay).
func equivalenceConfigs(t *testing.T) map[string]func() mc.Config {
	t.Helper()
	return map[string]func() mc.Config{
		"stache": func() mc.Config { return stacheConfig(t, 2, 1, 1) },
		"stache-buggy": func() mc.Config {
			p, err := stache.CompileBuggy()
			if err != nil {
				t.Fatalf("compile buggy: %v", err)
			}
			return mc.Config{
				Proto: p, Support: stache.MustSupport(p),
				Nodes: 2, Blocks: 1,
				Events: stache.NewEvents(p), CheckCoherence: true,
			}
		},
		// Fault budgets multiply the action set (drops, dups, timeouts) and
		// thread extra counters through the canonical encoding; the
		// equivalence contract must hold across all of it.
		"stache-ft-faults": func() mc.Config {
			return stacheFTConfig(t, 2, 1, netmodel.Model{MaxDrops: 1, MaxDups: 1})
		},
		"bufwrite": func() mc.Config { return bufwriteConfig(t, 2, 1, 1) },
		"update": func() mc.Config {
			a := update.MustCompile(true)
			return mc.Config{
				Proto: a.Protocol, Support: update.MustSupport(a.Protocol),
				Nodes: 2, Blocks: 1, Reorder: 1,
				Events: update.NewEvents(a.Protocol), CheckCoherence: true,
			}
		},
		"lcm": func() mc.Config { return lcmConfig(t, lcm.Base, 2, 1, 0) },
		// Symmetry-reduced runs at 3 nodes (the smallest shape with a
		// nontrivial group): canonicalization happens inside the workers'
		// claim path, so the determinism contract must hold there too.
		"stache-sym": func() mc.Config {
			cfg := stacheConfig(t, 3, 1, 1)
			cfg.Symmetry = mc.SymmetryOn
			return cfg
		},
		"stache-buggy-sym": func() mc.Config {
			p, err := stache.CompileBuggy()
			if err != nil {
				t.Fatalf("compile buggy: %v", err)
			}
			return mc.Config{
				Proto: p, Support: stache.MustSupport(p),
				Nodes: 3, Blocks: 1,
				Events: stache.NewEvents(p), CheckCoherence: true,
				Symmetry: mc.SymmetryOn,
			}
		},
		"lcm-sym": func() mc.Config {
			cfg := lcmConfig(t, lcm.Base, 3, 1, 0)
			cfg.Symmetry = mc.SymmetryOn
			return cfg
		},
	}
}

// TestWorkerEquivalence is the determinism contract of the parallel
// checker: States, Transitions, MaxDepth, the violation kind, and the
// counterexample trace length must be identical for any worker count.
// Every run has a Progress callback installed — observation must never
// perturb the result — and the snapshots themselves are checked for the
// deterministic shape Check promises (one per layer, depth increasing,
// final totals matching the Result).
func TestWorkerEquivalence(t *testing.T) {
	for name, mk := range equivalenceConfigs(t) {
		t.Run(name, func(t *testing.T) {
			var base *mc.Result
			for _, workers := range []int{1, 2, 8} {
				cfg := mk()
				cfg.Workers = workers
				var snaps []mc.ProgressInfo
				cfg.Progress = func(p mc.ProgressInfo) { snaps = append(snaps, p) }
				res, err := mc.Check(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if len(snaps) != res.MaxDepth+1 {
					t.Errorf("workers=%d: %d progress snapshots, want one per layer (%d)",
						workers, len(snaps), res.MaxDepth+1)
				}
				for i, p := range snaps {
					if p.Depth != i {
						t.Errorf("workers=%d: snapshot %d has depth %d", workers, i, p.Depth)
					}
				}
				if last := snaps[len(snaps)-1]; last.States != res.States ||
					last.Transitions != int64(res.Transitions) {
					t.Errorf("workers=%d: final snapshot (states,transitions) = (%d,%d), result has (%d,%d)",
						workers, last.States, last.Transitions, res.States, res.Transitions)
				}
				if res.Workers != workers {
					t.Errorf("res.Workers = %d, want %d", res.Workers, workers)
				}
				if base == nil {
					base = res
					continue
				}
				if res.States != base.States || res.Transitions != base.Transitions ||
					res.MaxDepth != base.MaxDepth {
					t.Errorf("workers=%d: (states,transitions,depth) = (%d,%d,%d), want (%d,%d,%d)",
						workers, res.States, res.Transitions, res.MaxDepth,
						base.States, base.Transitions, base.MaxDepth)
				}
				switch {
				case (res.Violation == nil) != (base.Violation == nil):
					t.Errorf("workers=%d: violation presence differs", workers)
				case res.Violation != nil:
					if res.Violation.Kind != base.Violation.Kind {
						t.Errorf("workers=%d: violation kind %q, want %q",
							workers, res.Violation.Kind, base.Violation.Kind)
					}
					if len(res.Violation.Trace) != len(base.Violation.Trace) {
						t.Errorf("workers=%d: trace length %d, want %d",
							workers, len(res.Violation.Trace), len(base.Violation.Trace))
					}
				}
			}
		})
	}
}

// TestDecodesPerState asserts the clone-not-decode contract: a clean run
// decodes every visited state exactly once (the seed checker decoded once
// per enabled action on top of once per state).
func TestDecodesPerState(t *testing.T) {
	res, err := mc.Check(stacheConfig(t, 2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %s", res.Violation)
	}
	if res.Decodes != int64(res.States) {
		t.Errorf("decodes = %d, want exactly one per state (%d)", res.Decodes, res.States)
	}
}

// TestSnapshotRestoreCloneRoundTrip pins the exported snapshot API: a
// restored or cloned world re-encodes to the identical canonical key.
func TestSnapshotRestoreCloneRoundTrip(t *testing.T) {
	cfg := stacheConfig(t, 2, 2, 1)
	w := mc.InitialWorld(&cfg)
	key, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rw, err := cfg.Restore(key)
	if err != nil {
		t.Fatal(err)
	}
	rkey, err := rw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if rkey != key {
		t.Error("restore round-trip changed the canonical encoding")
	}
	cw, err := rw.Clone()
	if err != nil {
		t.Fatal(err)
	}
	ckey, err := cw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ckey != key {
		t.Error("clone changed the canonical encoding")
	}
}

// TestBuggyTraceIdenticalAcrossWorkers goes beyond trace length: the
// seeded-bug counterexample must be step-for-step identical for 1 and 8
// workers (the deterministic min-claim merge makes even the chosen parent
// chain worker-count independent).
func TestBuggyTraceIdenticalAcrossWorkers(t *testing.T) {
	// With symmetry on, the trace is additionally de-permuted from canonical
	// orbit representatives back into original coordinates; the result must
	// stay worker-count independent and replay on an unreduced world.
	for _, sym := range []mc.SymmetryMode{mc.SymmetryOff, mc.SymmetryOn} {
		t.Run("symmetry-"+sym.String(), func(t *testing.T) {
			var replayCfg mc.Config
			run := func(workers int) *mc.Result {
				p, err := stache.CompileBuggy()
				if err != nil {
					t.Fatal(err)
				}
				cfg := mc.Config{
					Proto: p, Support: stache.MustSupport(p),
					Nodes: 3, Blocks: 1,
					Events: stache.NewEvents(p), CheckCoherence: true,
					Workers: workers, Symmetry: sym,
				}
				replayCfg = cfg
				res, err := mc.Check(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if res.Violation == nil {
					t.Fatal("seeded bug not found")
				}
				return res
			}
			r1, r8 := run(1), run(8)
			if len(r1.Violation.Trace) != len(r8.Violation.Trace) {
				t.Fatalf("trace lengths differ: %d vs %d",
					len(r1.Violation.Trace), len(r8.Violation.Trace))
			}
			for i := range r1.Violation.Trace {
				if r1.Violation.Trace[i] != r8.Violation.Trace[i] {
					t.Errorf("trace step %d differs:\n  w1: %s\n  w8: %s",
						i, r1.Violation.Trace[i], r8.Violation.Trace[i])
				}
			}
			// The machine-readable steps must replay in original (unreduced)
			// coordinates from the initial state.
			replayCfg.Symmetry = mc.SymmetryOff
			if err := mc.ReplaySteps(replayCfg, r8.Violation.Steps, nil); err != nil {
				t.Errorf("counterexample does not replay: %v", err)
			}
		})
	}
}

// Package bench regenerates the paper's evaluation: Table 1 (Stache
// performance), Table 2 (LCM performance), Table 3 (verification), the
// Figure 1/2/4 state machines, and the §6 code-size comparison. It is
// shared by the repository's testing.B benchmarks (bench_test.go) and the
// teapot-bench command.
package bench

import (
	"fmt"
	goruntime "runtime"
	"strings"
	"time"

	"teapot/internal/codegen"
	"teapot/internal/core"
	"teapot/internal/dot"
	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/protocols/bufwrite"
	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
	"teapot/internal/protocols/update"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// PerfRow is one benchmark line of Table 1 or Table 2.
type PerfRow struct {
	Benchmark   string
	C           int64 // hand-written state machine, cycles
	Unopt       int64 // Teapot unoptimized
	Opt         int64 // Teapot optimized
	AllocsOpt   int64 // continuation + queue records, optimized
	AllocsUnopt int64 // continuation + queue records, unoptimized
	FaultPct    float64
}

// OverheadUnopt returns the unoptimized overhead in percent.
func (r PerfRow) OverheadUnopt() float64 { return 100 * float64(r.Unopt-r.C) / float64(r.C) }

// OverheadOpt returns the optimized overhead in percent.
func (r PerfRow) OverheadOpt() float64 { return 100 * float64(r.Opt-r.C) / float64(r.C) }

// run executes one engine flavor over a workload.
func run(w *sim.Workload, nodes int, tags tempest.EventTags,
	mk func(m runtime.Machine) tempest.Engine) (*tempest.Stats, error) {
	w.Trace.Reset()
	return sim.Run(sim.Config{
		Nodes:      nodes,
		Blocks:     w.Blocks,
		Cost:       tempest.DefaultCost,
		Tags:       tags,
		MakeEngine: mk,
		Program:    w.Trace,
	})
}

func allocs(e *tempest.TeapotEngine, nodes int) int64 {
	var total int64
	for n := 0; n < nodes; n++ {
		c := e.Counters(n)
		total += c.HeapConts + c.QueueRecords
	}
	return total
}

// Table1 regenerates Table 1: Stache on gauss, appbt, shallow, mp3d.
func Table1(nodes, iters int) ([]PerfRow, error) {
	optArt := stache.MustCompile(true)
	unoptArt := stache.MustCompile(false)
	var rows []PerfRow
	for _, w := range sim.Table1Workloads(nodes, iters) {
		row := PerfRow{Benchmark: w.Name}
		tags := tempest.ResolveTags(optArt.Protocol)

		cs, err := run(w, nodes, tags, func(m runtime.Machine) tempest.Engine {
			return stache.NewHW(optArt.Protocol, nodes, w.Blocks, m)
		})
		if err != nil {
			return nil, fmt.Errorf("%s/C: %w", w.Name, err)
		}
		row.C = cs.Cycles
		row.FaultPct = 100 * float64(cs.FaultTime) / float64(cs.Cycles*int64(nodes))

		var optEng, unoptEng *tempest.TeapotEngine
		os, err := run(w, nodes, tags, func(m runtime.Machine) tempest.Engine {
			optEng = tempest.NewTeapotEngine(optArt.Protocol, nodes, w.Blocks, m, stache.MustSupport(optArt.Protocol))
			return optEng
		})
		if err != nil {
			return nil, fmt.Errorf("%s/opt: %w", w.Name, err)
		}
		row.Opt = os.Cycles
		row.AllocsOpt = allocs(optEng, nodes)

		us, err := run(w, nodes, tags, func(m runtime.Machine) tempest.Engine {
			unoptEng = tempest.NewTeapotEngine(unoptArt.Protocol, nodes, w.Blocks, m, stache.MustSupport(unoptArt.Protocol))
			return unoptEng
		})
		if err != nil {
			return nil, fmt.Errorf("%s/unopt: %w", w.Name, err)
		}
		row.Unopt = us.Cycles
		row.AllocsUnopt = allocs(unoptEng, nodes)
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2 regenerates Table 2: LCM on adaptive, stencil, unstruct.
func Table2(nodes, iters int) ([]PerfRow, error) {
	optArt := lcm.MustCompile(lcm.Base, true)
	unoptArt := lcm.MustCompile(lcm.Base, false)
	var rows []PerfRow
	for _, w := range sim.Table2Workloads(nodes, iters) {
		row := PerfRow{Benchmark: w.Name}
		tags := tempest.ResolveTags(optArt.Protocol)

		cs, err := run(w, nodes, tags, func(m runtime.Machine) tempest.Engine {
			return lcm.NewHW(optArt.Protocol, nodes, w.Blocks, m)
		})
		if err != nil {
			return nil, fmt.Errorf("%s/C: %w", w.Name, err)
		}
		row.C = cs.Cycles
		row.FaultPct = 100 * float64(cs.FaultTime) / float64(cs.Cycles*int64(nodes))

		var optEng, unoptEng *tempest.TeapotEngine
		os, err := run(w, nodes, tags, func(m runtime.Machine) tempest.Engine {
			optEng = tempest.NewTeapotEngine(optArt.Protocol, nodes, w.Blocks, m, lcm.MustSupport(optArt.Protocol, nodes))
			return optEng
		})
		if err != nil {
			return nil, fmt.Errorf("%s/opt: %w", w.Name, err)
		}
		row.Opt = os.Cycles
		row.AllocsOpt = allocs(optEng, nodes)

		us, err := run(w, nodes, tags, func(m runtime.Machine) tempest.Engine {
			unoptEng = tempest.NewTeapotEngine(unoptArt.Protocol, nodes, w.Blocks, m, lcm.MustSupport(unoptArt.Protocol, nodes))
			return unoptEng
		})
		if err != nil {
			return nil, fmt.Errorf("%s/unopt: %w", w.Name, err)
		}
		row.Unopt = us.Cycles
		row.AllocsUnopt = allocs(unoptEng, nodes)
		rows = append(rows, row)
	}
	return rows, nil
}

// VerifyRow is one line of Table 3.
type VerifyRow struct {
	Protocol     string
	Nodes        int
	Blocks       int
	Reorder      int
	Workers      int
	States       int
	Transitions  int
	Depth        int
	Elapsed      time.Duration
	VisitedBytes int64
	Violation    string
}

// namedConfig is one Table 3 machine configuration.
type namedConfig struct {
	name string
	cfg  mc.Config
}

// table3Configs builds the Table 3 machines: Stache, Buffered-write, LCM
// simple, and LCM MCC at the paper's configurations (2 nodes, 1 address,
// bounded reordering) plus the larger configurations the paper could not
// complete, and the write-update protocol beyond the paper.
func table3Configs() []namedConfig {
	st := stache.MustCompile(true)
	stCfg := func(nodes, blocks, reorder int) mc.Config {
		return mc.Config{
			Proto: st.Protocol, Support: stache.MustSupport(st.Protocol),
			Nodes: nodes, Blocks: blocks, Reorder: reorder,
			Events: stache.NewEvents(st.Protocol), CheckCoherence: true,
		}
	}
	configs := []namedConfig{
		{"Stache", stCfg(2, 1, 1)},
		{"Stache (2 addresses)", stCfg(2, 2, 0)},
	}

	bw := bufwrite.MustCompile(true)
	configs = append(configs, namedConfig{"Buffered-Write", mc.Config{
		Proto: bw.Protocol, Support: bufwrite.MustSupport(bw.Protocol),
		Nodes: 2, Blocks: 1, Reorder: 1,
		Events: bufwrite.NewEvents(bw.Protocol), CheckCoherence: true,
	}})

	for _, v := range []lcm.Variant{lcm.Base, lcm.MCC} {
		a := lcm.MustCompile(v, true)
		name := "LCM Simple"
		if v == lcm.MCC {
			name = "LCM MCC"
		}
		configs = append(configs, namedConfig{name, mc.Config{
			Proto: a.Protocol, Support: lcm.MustSupport(a.Protocol, 2),
			Nodes: 2, Blocks: 1, Reorder: 1,
			Events: lcm.NewEvents(a.Protocol), CheckCoherence: false,
		}})
	}

	up := update.MustCompile(true)
	configs = append(configs, namedConfig{"Update (extra)", mc.Config{
		Proto: up.Protocol, Support: update.MustSupport(up.Protocol),
		Nodes: 2, Blocks: 1, Reorder: 1,
		Events: update.NewEvents(up.Protocol), CheckCoherence: true,
	}})
	return configs
}

// Table3 regenerates Table 3 with the given checker worker count
// (0 = GOMAXPROCS).
func Table3(workers int) ([]VerifyRow, error) {
	var rows []VerifyRow
	for _, nc := range table3Configs() {
		nc.cfg.Workers = workers
		res, err := mc.Check(nc.cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nc.name, err)
		}
		row := VerifyRow{
			Protocol: nc.name, Nodes: nc.cfg.Nodes, Blocks: nc.cfg.Blocks,
			Reorder: nc.cfg.Reorder, Workers: res.Workers,
			States: res.States, Transitions: res.Transitions, Depth: res.MaxDepth,
			Elapsed: res.Elapsed, VisitedBytes: res.VisitedBytes,
		}
		if res.Violation != nil {
			row.Violation = res.Violation.Kind + ": " + res.Violation.Msg
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MCRow is one BENCH_mc.json record: the model checker's throughput on one
// Table 3 machine at one worker count.
type MCRow struct {
	Protocol          string  `json:"protocol"`
	Workers           int     `json:"workers"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	States            int     `json:"states"`
	Transitions       int     `json:"transitions"`
	WallMS            float64 `json:"wall_ms"`
	StatesPerSec      float64 `json:"states_per_sec"`
	VisitedBytesState float64 `json:"visited_bytes_per_state"`
}

// MCBench measures checker throughput on every Table 3 machine at each
// worker count (typically 1 and GOMAXPROCS), for the committed
// BENCH_mc.json baseline.
func MCBench(workerCounts []int) ([]MCRow, error) {
	var rows []MCRow
	for _, workers := range workerCounts {
		for _, nc := range table3Configs() {
			nc.cfg.Workers = workers
			res, err := mc.Check(nc.cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", nc.name, err)
			}
			row := MCRow{
				Protocol: nc.name, Workers: res.Workers,
				GOMAXPROCS:  goruntime.GOMAXPROCS(0),
				States:      res.States,
				Transitions: res.Transitions,
				WallMS:      float64(res.Elapsed) / float64(time.Millisecond),
			}
			if secs := res.Elapsed.Seconds(); secs > 0 {
				row.StatesPerSec = float64(res.States) / secs
			}
			if res.States > 0 {
				row.VisitedBytesState = float64(res.VisitedBytes) / float64(res.States)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ObsRow is one BENCH_mc.json observability record: the event volume and
// sink-path allocation cost of tracing one Table 1 workload (Stache,
// optimized) under a counting Collector.
type ObsRow struct {
	Workload      string  `json:"workload"`
	Ops           int     `json:"ops"`
	Events        int64   `json:"events"`
	EventsPerOp   float64 `json:"events_per_op"`
	HeapConts     int64   `json:"heap_conts"`
	StaticConts   int64   `json:"static_conts"`
	MaxQueueDepth int64   `json:"max_queue_depth"`
	// SinkAllocsPerEvent is the extra heap objects per emitted event of an
	// observed run versus a bare one (ring growth plus counter maps;
	// expected well under one — the ring amortizes).
	SinkAllocsPerEvent float64 `json:"sink_allocs_per_event"`
}

// ObsBench traces every Table 1 workload and measures what observing
// costs: each workload runs once bare and once under a Collector, and the
// malloc-count delta between the runs is attributed to the sink path.
func ObsBench(nodes, iters int) ([]ObsRow, error) {
	art := stache.MustCompile(true)
	tags := tempest.ResolveTags(art.Protocol)
	sup := stache.MustSupport(art.Protocol)
	var rows []ObsRow
	for _, w := range sim.Table1Workloads(nodes, iters) {
		mk := func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(art.Protocol, nodes, w.Blocks, m, sup)
		}
		var before, mid, after goruntime.MemStats
		goruntime.ReadMemStats(&before)
		if _, err := run(w, nodes, tags, mk); err != nil {
			return nil, fmt.Errorf("%s/bare: %w", w.Name, err)
		}
		goruntime.ReadMemStats(&mid)
		col := obs.NewCollector(0)
		if _, err := sim.Run(sim.Config{
			Nodes: nodes, Blocks: w.Blocks,
			Cost: tempest.DefaultCost, Tags: tags,
			MakeEngine: mk, Program: w.Trace, Obs: col,
		}); err != nil {
			return nil, fmt.Errorf("%s/obs: %w", w.Name, err)
		}
		goruntime.ReadMemStats(&after)

		row := ObsRow{
			Workload:      w.Name,
			Ops:           w.Trace.TotalOps(),
			Events:        col.Total(),
			HeapConts:     col.Count(obs.KindContAlloc),
			MaxQueueDepth: col.MaxQueueDepth(),
		}
		heap, static := int64(0), int64(0)
		for _, s := range col.HeapContSites() {
			h, _ := col.SiteAllocs(s)
			heap += h
		}
		for _, s := range col.StaticContSites() {
			_, st := col.SiteAllocs(s)
			static += st
		}
		row.HeapConts, row.StaticConts = heap, static
		if row.Ops > 0 {
			row.EventsPerOp = float64(row.Events) / float64(row.Ops)
		}
		bare := mid.Mallocs - before.Mallocs
		observed := after.Mallocs - mid.Mallocs
		if observed > bare && row.Events > 0 {
			row.SinkAllocsPerEvent = float64(observed-bare) / float64(row.Events)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MCBaseline is the committed BENCH_mc.json document: checker throughput
// rows plus the observability-layer cost rows.
type MCBaseline struct {
	MC       []MCRow       `json:"mc"`
	Obs      []ObsRow      `json:"obs"`
	Faults   []FaultRow    `json:"faults"`
	Symmetry []SymmetryRow `json:"symmetry"`
	Coverage []CoverageRow `json:"coverage,omitempty"`
}

// FaultRow is one fault-budget verification record in the `faults` series
// of BENCH_mc.json: how the explored state space grows with the network
// fault budget.
type FaultRow struct {
	Protocol    string  `json:"protocol"`
	Net         string  `json:"net"`
	States      int     `json:"states"`
	Transitions int     `json:"transitions"`
	Depth       int     `json:"depth"`
	WallMS      float64 `json:"wall_ms"`
	Violation   string  `json:"violation,omitempty"`
}

// FaultSweep checks the fault-tolerant Stache at 2 nodes / 1 block across
// network fault budgets, plus two deliberate edge rows: dup=2, where the
// recorded violation marks the verified envelope of an epoch-less protocol
// (a second duplicate lets a stale ack substitute for a fresh one — only
// per-message sequence numbers could tell them apart), and the base Stache
// under a single drop, whose recorded violation documents why the TIMEOUT
// machinery exists.
func FaultSweep(workers int) ([]FaultRow, error) {
	type run struct {
		name, proto, net string
	}
	runs := []run{
		{"Stache-FT", "stache-ft", ""},
		{"Stache-FT", "stache-ft", "reorder=1"},
		{"Stache-FT", "stache-ft", "drop=1"},
		{"Stache-FT", "stache-ft", "dup=1"},
		{"Stache-FT", "stache-ft", "drop=1,dup=1"},
		{"Stache-FT", "stache-ft", "drop=2,dup=1"},
		{"Stache-FT", "stache-ft", "dup=2"},
		{"Stache", "stache", "drop=1"},
	}
	var rows []FaultRow
	for _, r := range runs {
		net, err := netmodel.Parse(r.net)
		if err != nil {
			return nil, err
		}
		var cfg mc.Config
		switch r.proto {
		case "stache-ft":
			a := stache.MustCompileFT(true)
			cfg = mc.Config{Proto: a.Protocol, Support: stache.MustFTSupport(a.Protocol, 2),
				Events: stache.NewEvents(a.Protocol)}
		default:
			a := stache.MustCompile(true)
			cfg = mc.Config{Proto: a.Protocol, Support: stache.MustSupport(a.Protocol),
				Events: stache.NewEvents(a.Protocol)}
		}
		cfg.Nodes, cfg.Blocks, cfg.Net, cfg.Workers = 2, 1, net, workers
		cfg.CheckCoherence = true
		res, err := mc.Check(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s net=%q: %w", r.name, r.net, err)
		}
		netLabel := r.net
		if netLabel == "" {
			netLabel = "none"
		}
		row := FaultRow{
			Protocol: r.name, Net: netLabel,
			States: res.States, Transitions: res.Transitions, Depth: res.MaxDepth,
			WallMS: float64(res.Elapsed) / float64(time.Millisecond),
		}
		if res.Violation != nil {
			row.Violation = res.Violation.Kind
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFaults renders the fault sweep as a table.
func FormatFaults(rows []FaultRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep: state-space growth vs. network fault budget (2 nodes, 1 block)\n")
	fmt.Fprintf(&b, "%-10s %-14s %9s %12s %6s  %s\n", "protocol", "net", "states", "transitions", "depth", "result")
	for _, r := range rows {
		result := "verified"
		if r.Violation != "" {
			result = "VIOLATION " + r.Violation
		}
		fmt.Fprintf(&b, "%-10s %-14s %9d %12d %6d  %s\n",
			r.Protocol, r.Net, r.States, r.Transitions, r.Depth, result)
	}
	return b.String()
}

// SymmetryLeg is one half of a symmetry-sweep row: the same verification
// run with reduction either on or off.
type SymmetryLeg struct {
	States        int     `json:"states"`
	Depth         int     `json:"depth"`
	StatesPerSec  float64 `json:"states_per_sec"`
	BytesPerState float64 `json:"bytes_per_state"`
	WallMS        float64 `json:"wall_ms"`
	Violation     string  `json:"violation,omitempty"`
}

// SymmetryRow is one record in the `symmetry` series of BENCH_mc.json:
// the same protocol/shape/network verified with certificate-gated symmetry
// reduction on (Reduced) and off (Full). MaxStates is nonzero on frontier
// probes that deliberately cap exploration instead of exhausting the space
// — on those rows both legs end in a "state-limit" violation and Depth is
// the honest comparison (how deep an equal state budget reaches), while
// Ratio is left zero because neither leg saw the whole space.
type SymmetryRow struct {
	Protocol  string      `json:"protocol"`
	Nodes     int         `json:"nodes"`
	Blocks    int         `json:"blocks"`
	Net       string      `json:"net"`
	Group     int         `json:"group"`
	MaxStates int         `json:"max_states,omitempty"`
	Reduced   SymmetryLeg `json:"reduced"`
	Full      SymmetryLeg `json:"full"`
	Ratio     float64     `json:"ratio,omitempty"`
}

// SymmetrySweep measures certificate-gated symmetry reduction: each shape
// is verified twice, reduction on then off, and the row records states,
// throughput, and per-state memory for both legs. Shapes were sized for a
// single-core container (≈6-30k states/s): everything but the last row is
// exhaustive; Stache-FT at 4 nodes / 2 blocks under a fault budget exceeds
// 3.5M canonical states, so it rides along as an equal-budget frontier
// probe rather than being silently dropped.
func SymmetrySweep(workers int) ([]SymmetryRow, error) {
	type run struct {
		name, proto, net string
		nodes, blocks    int
		maxStates        int
	}
	runs := []run{
		{"Stache", "stache", "reorder=1", 3, 1, 0},
		{"Stache", "stache", "", 4, 1, 0},
		{"Stache-FT", "stache-ft", "drop=1", 3, 1, 0},
		{"Stache-FT", "stache-ft", "", 3, 2, 0},
		{"Stache-FT", "stache-ft", "drop=1", 4, 2, 400000},
	}
	var rows []SymmetryRow
	for _, r := range runs {
		net, err := netmodel.Parse(r.net)
		if err != nil {
			return nil, err
		}
		row := SymmetryRow{
			Protocol: r.name, Nodes: r.nodes, Blocks: r.blocks,
			Net: r.net, MaxStates: r.maxStates,
		}
		if row.Net == "" {
			row.Net = "none"
		}
		for _, mode := range []mc.SymmetryMode{mc.SymmetryOn, mc.SymmetryOff} {
			var cfg mc.Config
			switch r.proto {
			case "stache-ft":
				a := stache.MustCompileFT(true)
				cfg = mc.Config{Proto: a.Protocol, Support: stache.MustFTSupport(a.Protocol, r.nodes),
					Events: stache.NewEvents(a.Protocol)}
			default:
				a := stache.MustCompile(true)
				cfg = mc.Config{Proto: a.Protocol, Support: stache.MustSupport(a.Protocol),
					Events: stache.NewEvents(a.Protocol)}
			}
			cfg.Nodes, cfg.Blocks, cfg.Net, cfg.Workers = r.nodes, r.blocks, net, workers
			cfg.CheckCoherence = true
			cfg.MaxStates = r.maxStates
			cfg.Symmetry = mode
			res, err := mc.Check(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s %dn/%db net=%q symmetry=%s: %w",
					r.name, r.nodes, r.blocks, r.net, mode, err)
			}
			leg := SymmetryLeg{
				States: res.States, Depth: res.MaxDepth,
				WallMS: float64(res.Elapsed) / float64(time.Millisecond),
			}
			if s := res.Elapsed.Seconds(); s > 0 {
				leg.StatesPerSec = float64(res.States) / s
			}
			if res.States > 0 {
				leg.BytesPerState = float64(res.VisitedBytes) / float64(res.States)
			}
			if res.Violation != nil {
				leg.Violation = res.Violation.Kind
			}
			if mode == mc.SymmetryOn {
				row.Group = res.SymmetryGroup
				row.Reduced = leg
			} else {
				row.Full = leg
			}
		}
		if r.maxStates == 0 && row.Reduced.States > 0 {
			row.Ratio = float64(row.Full.States) / float64(row.Reduced.States)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSymmetry renders the symmetry sweep as a table.
func FormatSymmetry(rows []SymmetryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Symmetry sweep: certificate-gated reduction on vs. off\n")
	fmt.Fprintf(&b, "%-10s %5s %-10s %3s %10s %10s %6s %9s %9s  %s\n",
		"protocol", "shape", "net", "|G|", "reduced", "full", "ratio", "red B/st", "full B/st", "note")
	for _, r := range rows {
		ratio := "-"
		note := ""
		if r.Ratio > 0 {
			ratio = fmt.Sprintf("%.2f", r.Ratio)
		}
		if r.MaxStates > 0 {
			note = fmt.Sprintf("capped probe @%d: depth %d vs %d", r.MaxStates, r.Reduced.Depth, r.Full.Depth)
		}
		fmt.Fprintf(&b, "%-10s %2dn/%db %-10s %3d %10d %10d %6s %9.1f %9.1f  %s\n",
			r.Protocol, r.Nodes, r.Blocks, r.Net, r.Group,
			r.Reduced.States, r.Full.States, ratio,
			r.Reduced.BytesPerState, r.Full.BytesPerState, note)
	}
	return b.String()
}

// ReorderSweep verifies Stache across reordering bounds (the paper:
// "unrestricted reordering led to impractical simulation sizes"; it capped
// at 1 — we sweep 0..2).
func ReorderSweep() ([]VerifyRow, error) {
	st := stache.MustCompile(true)
	var rows []VerifyRow
	for reorder := 0; reorder <= 2; reorder++ {
		res, err := mc.Check(mc.Config{
			Proto: st.Protocol, Support: stache.MustSupport(st.Protocol),
			Nodes: 2, Blocks: 1, Reorder: reorder,
			Events: stache.NewEvents(st.Protocol), CheckCoherence: true,
		})
		if err != nil {
			return nil, err
		}
		row := VerifyRow{
			Protocol: "Stache", Nodes: 2, Blocks: 1, Reorder: reorder,
			Workers: res.Workers, States: res.States, Transitions: res.Transitions,
			Depth: res.MaxDepth, Elapsed: res.Elapsed, VisitedBytes: res.VisitedBytes,
		}
		if res.Violation != nil {
			row.Violation = res.Violation.Kind + ": " + res.Violation.Msg
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BugHunt reproduces the §7 story: the model checker finds the seeded
// upgrade/invalidate deadlock and produces an event trace.
func BugHunt() (*mc.Result, error) {
	p, err := stache.CompileBuggy()
	if err != nil {
		return nil, err
	}
	return mc.Check(mc.Config{
		Proto: p, Support: stache.MustSupport(p),
		Nodes: 2, Blocks: 1,
		Events: stache.NewEvents(p), CheckCoherence: true,
	})
}

// FigureRow summarizes one extracted state machine.
type FigureRow struct {
	Figure string
	States int
	Edges  int
	DOT    string
}

// Figures regenerates Figures 1, 2, and 4.
func Figures() []FigureRow {
	a := stache.MustCompile(true)
	mk := func(fig, prefix string, transient bool) FigureRow {
		m := dot.Extract(a.IR, dot.Options{Prefix: prefix, IncludeTransient: transient})
		return FigureRow{Figure: fig, States: len(m.States), Edges: len(m.Edges),
			DOT: dot.Render(m, fig)}
	}
	return []FigureRow{
		mk("figure-1-nonhome-idealized", "Cache_", false),
		mk("figure-2-home-idealized", "Home_", false),
		mk("figure-4-home-with-intermediates", "Home_", true),
		mk("full-machine", "", true),
	}
}

// LoCRow is one line of the §6 code-size comparison.
type LoCRow struct {
	Protocol  string
	Teapot    int // Teapot source lines
	Generated int // generated Go lines (the paper's generated C)
	Hand      int // hand-written state machine lines (where one exists)
}

// LinesOfCode regenerates the §6 comparison (Stache: 600 Teapot → 1000 C,
// hand-written ≈ 1000; LCM: 1500 → 2300, hand-written ≈ 2500).
func LinesOfCode(handStache, handLCM int) []LoCRow {
	count := func(s string) int { return strings.Count(s, "\n") }
	st := stache.MustCompile(true)
	lc := lcm.MustCompile(lcm.Base, true)
	bw := bufwrite.MustCompile(true)
	return []LoCRow{
		{Protocol: "Stache", Teapot: count(stache.Source),
			Generated: count(codegen.Generate(st.IR, "proto")), Hand: handStache},
		{Protocol: "LCM", Teapot: count(lcm.Source(lcm.Base)),
			Generated: count(codegen.Generate(lc.IR, "proto")), Hand: handLCM},
		{Protocol: "Buffered-Write", Teapot: count(bufwrite.Source),
			Generated: count(codegen.Generate(bw.IR, "proto"))},
	}
}

// ProducerConsumerRow compares invalidation (Stache) against write-update
// on the §1 producer-consumer pattern ("invalidating outstanding copies
// forces the consumers to re-request data, which requires up to four
// protocol messages for a small data transfer").
type ProducerConsumerRow struct {
	Protocol string
	Cycles   int64
	Faults   int64
	Messages int64
}

// ProducerConsumer runs the comparison at the given machine size.
func ProducerConsumer(nodes, iters int) ([]ProducerConsumerRow, error) {
	var rows []ProducerConsumerRow
	mk := func() *sim.Workload {
		return sim.ProdCons(sim.WorkloadSpec{Nodes: nodes, Iters: iters, Seed: 77})
	}
	st := stache.MustCompile(true).Protocol
	s1, err := run(mk(), nodes, tempest.ResolveTags(st), func(m runtime.Machine) tempest.Engine {
		return tempest.NewTeapotEngine(st, nodes, mk().Blocks, m, stache.MustSupport(st))
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, ProducerConsumerRow{"Stache (invalidate)", s1.Cycles, s1.Faults, s1.Messages})
	up := update.MustCompile(true).Protocol
	s2, err := run(mk(), nodes, tempest.ResolveTags(up), func(m runtime.Machine) tempest.Engine {
		return tempest.NewTeapotEngine(up, nodes, mk().Blocks, m, update.MustSupport(up))
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, ProducerConsumerRow{"Update (multicast)", s2.Cycles, s2.Faults, s2.Messages})
	return rows, nil
}

// FormatPerf renders Table 1/2 in the paper's layout.
func FormatPerf(title string, rows []PerfRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %12s %22s %22s %18s %10s\n",
		"Benchmark", "C Machine", "Teapot Unoptimized", "Teapot Optimized", "Allocs Opt/Unopt", "Fault time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12d %14d (%4.1f%%) %14d (%4.1f%%) %8d / %-8d %9.0f%%\n",
			r.Benchmark, r.C,
			r.Unopt, r.OverheadUnopt(),
			r.Opt, r.OverheadOpt(),
			r.AllocsOpt, r.AllocsUnopt, r.FaultPct)
	}
	return b.String()
}

// FormatVerify renders Table 3.
func FormatVerify(rows []VerifyRow) string {
	var b strings.Builder
	b.WriteString("Table 3: Protocol verification\n")
	fmt.Fprintf(&b, "%-22s %8s %8s %8s %8s %10s %12s %8s %10s %10s %s\n",
		"Protocol", "Nodes", "Blocks", "Reorder", "Workers", "States",
		"Transitions", "Depth", "Time", "Bytes/st", "Result")
	for _, r := range rows {
		result := "verified"
		if r.Violation != "" {
			result = r.Violation
		}
		bytesPer := "-"
		if r.States > 0 && r.VisitedBytes > 0 {
			bytesPer = fmt.Sprintf("%.0f", float64(r.VisitedBytes)/float64(r.States))
		}
		fmt.Fprintf(&b, "%-22s %8d %8d %8d %8d %10d %12d %8d %10s %10s %s\n",
			r.Protocol, r.Nodes, r.Blocks, r.Reorder, r.Workers, r.States,
			r.Transitions, r.Depth, r.Elapsed.Round(time.Millisecond), bytesPer, result)
	}
	return b.String()
}

// Artifacts compiles everything once (used by commands needing protocols).
func Artifacts() map[string]*core.Artifacts {
	casArt, err := stache.CompileCAS(true)
	if err != nil {
		panic(err)
	}
	return map[string]*core.Artifacts{
		"stache":     stache.MustCompile(true),
		"lcm":        lcm.MustCompile(lcm.Base, true),
		"lcm-update": lcm.MustCompile(lcm.Update, true),
		"lcm-mcc":    lcm.MustCompile(lcm.MCC, true),
		"lcm-both":   lcm.MustCompile(lcm.Both, true),
		"bufwrite":   bufwrite.MustCompile(true),
		"stache-cas": casArt,
		"update":     update.MustCompile(true),
	}
}

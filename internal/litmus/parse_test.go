package litmus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const mpSrc = `
# classic message passing
litmus mp
proto stache
blocks x y

node 0:
  put x 1
  put y 1

node 1:
  get y -> r0
  get x -> r1

forbid stale: r0=1 & r1=0
allow fresh: r0=1 & r1=1
expect data: x=1
`

func TestParseMP(t *testing.T) {
	tt, err := Parse("mp.lit", []byte(mpSrc))
	if err != nil {
		t.Fatal(err)
	}
	if tt.Name != "mp" || tt.Proto != "stache" || tt.Nodes != 2 {
		t.Errorf("header = %q/%q/%d nodes", tt.Name, tt.Proto, tt.Nodes)
	}
	if len(tt.Blocks) != 2 || tt.BlockIndex("y") != 1 || tt.BlockIndex("z") != -1 {
		t.Errorf("blocks = %v", tt.Blocks)
	}
	if got := len(tt.Progs[0]); got != 2 {
		t.Errorf("node 0 has %d ops", got)
	}
	wantOps := []string{"get blk1 -> r0", "get blk0 -> r1"}
	for i, op := range tt.Progs[1] {
		if op.String() != wantOps[i] {
			t.Errorf("node 1 op %d = %q, want %q", i, op, wantOps[i])
		}
	}
	if regs := tt.Regs(); len(regs) != 2 || regs[0] != "r0" || regs[1] != "r1" {
		t.Errorf("regs = %v", regs)
	}
	if len(tt.Conds) != 3 || tt.Conds[0].Sense != Forbid || tt.Conds[1].Sense != Allow || tt.Conds[2].Sense != Expect {
		t.Errorf("conds = %+v", tt.Conds)
	}
	if s := tt.Conds[0].String(tt.Blocks); s != "forbid stale: r0=1 & r1=0" {
		t.Errorf("cond render = %q", s)
	}
}

func TestParseCASAndInit(t *testing.T) {
	src := `
litmus lost-update
proto stache
blocks c
init c=1
node 0:
  cas c 1 2 -> r0
node 1:
  cas c 1 3 -> r1
forbid both: r0=1 & r1=1 & c=3
`
	tt, err := Parse("t.lit", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if tt.Init[0] != 1 {
		t.Errorf("init = %v", tt.Init)
	}
	op := tt.Progs[0][0]
	if op.Kind != CAS || op.Expect != 1 || op.Val != 2 || op.Reg != "r0" {
		t.Errorf("cas op = %+v", op)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown directive", "litmus t\nproto p\nblocks x\nbogus 1\nnode 0:\n get x -> r0\n", "unknown directive"},
		{"op outside script", "litmus t\nproto p\nblocks x\nget x -> r0\n", "outside a node script"},
		{"script after directive ends", "litmus t\nproto p\nblocks x\nnode 0:\ninit x=1\n get x -> r0\n", "outside a node script"},
		{"node scripted twice", "litmus t\nproto p\nblocks x\nnode 0:\n put x 1\nnode 0:\n put x 2\n", "scripted twice"},
		{"unknown block", "litmus t\nproto p\nblocks x\nnode 0:\n put z 1\n", "unknown block z"},
		{"store of zero", "litmus t\nproto p\nblocks x\nnode 0:\n put x 0\n", "out of range"},
		{"store too large", "litmus t\nproto p\nblocks x\nnode 0:\n put x 2147483648\n", "out of range"},
		{"init of unknown block", "litmus t\nproto p\nblocks x\ninit z=1\nnode 0:\n put x 1\n", "unknown block"},
		{"register observed twice", "litmus t\nproto p\nblocks x\nnode 0:\n get x -> r0\n get x -> r0\n", "observed twice"},
		{"block shadows register", "litmus t\nproto p\nblocks r0\nnode 0:\n get r0 -> r0\n", "shadows a register"},
		{"cond unknown register", "litmus t\nproto p\nblocks x\nnode 0:\n put x 1\nforbid f: r9=1\n", "unknown register r9"},
		{"cond declared twice", "litmus t\nproto p\nblocks x\nnode 0:\n get x -> r0\nallow a: r0=1\nforbid a: r0=0\n", "declared twice"},
		{"nodes below scripts", "litmus t\nproto p\nnodes 1\nblocks x\nnode 0:\n put x 1\nnode 1:\n get x -> r0\n", "nodes 1 < 2 scripted nodes"},
		{"missing proto", "litmus t\nblocks x\nnode 0:\n put x 1\n", "missing proto"},
		{"missing blocks", "litmus t\nproto p\nnode 0:\n", "missing blocks"},
		{"no scripts", "litmus t\nproto p\nblocks x\n", "no node scripts"},
		{"empty clause", "litmus t\nproto p\nblocks x\nnode 0:\n put x 1\nforbid f: x=1 &\n", "empty clause"},
		{"bad assignment", "litmus t\nproto p\nblocks x\nnode 0:\n put x 1\nforbid f: x\n", "bad assignment"},
		{"bad cas arity", "litmus t\nproto p\nblocks x\nnode 0:\n cas x 1 -> r0\n", "bad op"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("t.lit", []byte(c.src))
			if err == nil {
				t.Fatalf("parse accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error = %q, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("b.lit", "litmus beta\nproto stache\nblocks x\nnode 0:\n put x 1\n")
	write("a.lit", "litmus alpha\nproto stache\nblocks x\nnode 0:\n put x 1\n")
	// fail/ entries must stay out of the default corpus.
	if err := os.Mkdir(filepath.Join(dir, "fail"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fail", "c.lit"), []byte("litmus gamma\nproto stache\nblocks x\nnode 0:\n put x 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tests, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 2 || tests[0].Name != "alpha" || tests[1].Name != "beta" {
		t.Fatalf("loaded %d tests: %v", len(tests), tests)
	}

	write("dup.lit", "litmus alpha\nproto stache\nblocks x\nnode 0:\n put x 1\n")
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "declared in both") {
		t.Errorf("duplicate name error = %v", err)
	}

	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

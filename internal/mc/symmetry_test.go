package mc_test

import (
	"strings"
	"testing"

	"teapot/internal/fuzz"
	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/protocols"
)

// TestSymmetryEquivalence is the soundness contract of the reduction: for
// every bundled runnable protocol, checking with symmetry reduction must
// reach the same verdict as checking without — same violation kind (or
// none), found at the same BFS depth with a counterexample of the same
// length — while visiting ~|G|× fewer states. Counterexamples from the
// reduced run must be valid in original coordinates: they are replayed
// step-for-step through the fuzz package's independent engine harness.
func TestSymmetryEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		net   netmodel.Model
		group int // expected group order at 3 nodes / 1 block
	}{
		{"stache", netmodel.Model{Reorder: 1}, 2},
		{"stache-ft", netmodel.Model{MaxDrops: 1}, 2},
		// Verifies, but is deliberately not node-symmetric: the certificate
		// gate must refuse reduction and still agree with the full run.
		{"stache-asym", netmodel.Model{}, 1},
		{"stache-buggy", netmodel.Model{}, 2},
		{"stache-ft-buggy", netmodel.Model{MaxDrops: 1}, 2},
		{"lcm", netmodel.Model{}, 2},
		{"lcm-mcc", netmodel.Model{}, 2},
		{"bufwrite", netmodel.Model{}, 2},
		{"update", netmodel.Model{}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && tc.name == "stache-ft" {
				t.Skip("multi-second state space; run without -short")
			}
			spec, err := protocols.Spec(tc.name, 3, 1)
			if err != nil {
				t.Fatal(err)
			}
			spec.Net = tc.net
			full, err := mc.Check(spec.MCConfig())
			if err != nil {
				t.Fatalf("unreduced: %v", err)
			}
			cfg := spec.MCConfig()
			cfg.Symmetry = mc.SymmetryAuto
			red, err := mc.Check(cfg)
			if err != nil {
				t.Fatalf("reduced: %v", err)
			}
			if red.SymmetryGroup != tc.group {
				t.Errorf("group order = %d (note %q), want %d",
					red.SymmetryGroup, red.SymmetryNote, tc.group)
			}
			switch {
			case (full.Violation == nil) != (red.Violation == nil):
				t.Fatalf("verdicts disagree: unreduced %v, reduced %v",
					full.Violation, red.Violation)
			case full.Violation != nil:
				if full.Violation.Kind != red.Violation.Kind {
					t.Errorf("violation kind: unreduced %q, reduced %q",
						full.Violation.Kind, red.Violation.Kind)
				}
				if len(full.Violation.Trace) != len(red.Violation.Trace) {
					t.Errorf("trace length: unreduced %d, reduced %d",
						len(full.Violation.Trace), len(red.Violation.Trace))
				}
				// The reduced trace must hold up in original coordinates on
				// an independent substrate.
				if err := fuzz.DiffReplay(spec, red.Violation); err != nil {
					t.Errorf("reduced counterexample does not replay: %v", err)
				}
			}
			if full.MaxDepth != red.MaxDepth {
				t.Errorf("max depth: unreduced %d, reduced %d", full.MaxDepth, red.MaxDepth)
			}
			if tc.group > 1 && red.States >= full.States {
				t.Errorf("no reduction: %d states reduced vs %d unreduced", red.States, full.States)
			}
			t.Logf("states %d -> %d (group %d, ratio %.3f)",
				full.States, red.States, red.SymmetryGroup,
				float64(full.States)/float64(red.States))
		})
	}
}

// TestSymmetryReductionRatio pins the measured reduction factors. Group
// theory caps the ratio at |G| with equality only when no reachable state
// is a fixed point of any non-identity permutation; the initial state is
// always such a fixed point, so 3 nodes / 1 block (|G| = 2) lands just
// under 2 and 4 nodes / 1 block (|G| = 6) well above it.
func TestSymmetryReductionRatio(t *testing.T) {
	check := func(nodes, blocks, reorder int, wantGroup int, wantRatio float64) {
		t.Helper()
		full, err := mc.Check(stacheConfig(t, nodes, blocks, reorder))
		if err != nil {
			t.Fatal(err)
		}
		cfg := stacheConfig(t, nodes, blocks, reorder)
		cfg.Symmetry = mc.SymmetryOn
		red, err := mc.Check(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if red.SymmetryGroup != wantGroup {
			t.Fatalf("%dn/%db: group order %d, want %d", nodes, blocks, red.SymmetryGroup, wantGroup)
		}
		ratio := float64(full.States) / float64(red.States)
		if ratio < wantRatio {
			t.Errorf("%dn/%db: reduction ratio %.3f < %.2f (states %d -> %d)",
				nodes, blocks, ratio, wantRatio, full.States, red.States)
		}
		if ratio > float64(wantGroup) {
			t.Errorf("%dn/%db: ratio %.3f exceeds group order %d — reduction merged distinct orbits",
				nodes, blocks, ratio, wantGroup)
		}
		t.Logf("%dn/%db reorder=%d: %d -> %d states, ratio %.3f (|G| = %d)",
			nodes, blocks, reorder, full.States, red.States, ratio, wantGroup)
	}
	check(3, 1, 1, 2, 1.5)
	if !testing.Short() {
		check(4, 1, 0, 6, 2.0)
	}
}

// TestSymmetryGate covers the three modes on the asymmetric fixture and a
// trivial-group shape. stache-asym verifies dynamically, so only the static
// certificate separates it from stache; SymmetryOn must fail loudly with
// the refutation witness, SymmetryAuto must fall back to an unreduced run
// and say why.
func TestSymmetryGate(t *testing.T) {
	spec, err := protocols.Spec("stache-asym", 3, 1)
	if err != nil {
		t.Fatal(err)
	}

	cfg := spec.MCConfig()
	cfg.Symmetry = mc.SymmetryOn
	if _, err := mc.Check(cfg); err == nil {
		t.Error("SymmetryOn accepted the asymmetric protocol")
	} else {
		for _, want := range []string{"-symmetry=on", "refutes node symmetry", "Cache_RO.PUT_NO_DATA_REQ"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("refusal %q does not mention %q", err, want)
			}
		}
	}

	cfg = spec.MCConfig()
	cfg.Symmetry = mc.SymmetryAuto
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatalf("SymmetryAuto must fall back, got error: %v", err)
	}
	if res.SymmetryGroup != 1 {
		t.Errorf("asymmetric protocol reduced by group of %d", res.SymmetryGroup)
	}
	if !strings.Contains(res.SymmetryNote, "refutes node symmetry") {
		t.Errorf("SymmetryNote = %q, want the prover's refutation", res.SymmetryNote)
	}
	if res.Violation != nil {
		t.Errorf("stache-asym should verify: %v", res.Violation)
	}

	// 2 nodes / 1 block admits only the identity (every non-home node map
	// must fix the home); SymmetryOn is a no-op there, not an error.
	cfg2 := stacheConfig(t, 2, 1, 1)
	cfg2.Symmetry = mc.SymmetryOn
	res2, err := mc.Check(cfg2)
	if err != nil {
		t.Fatalf("trivial group must be accepted: %v", err)
	}
	if res2.SymmetryGroup != 1 {
		t.Errorf("2n/1b group order = %d, want 1", res2.SymmetryGroup)
	}
	full2, err := mc.Check(stacheConfig(t, 2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res2.States != full2.States {
		t.Errorf("trivial reduction changed the state count: %d vs %d", res2.States, full2.States)
	}
}

// TestSymmetryProgressReportsGroup: the per-layer snapshots carry the group
// order, and the shard-balance statistics keep describing the stored —
// post-canonicalization — fingerprints (their totals must sum to the
// reduced state count, not the full one).
func TestSymmetryProgressReportsGroup(t *testing.T) {
	cfg := stacheConfig(t, 3, 1, 0)
	cfg.Symmetry = mc.SymmetryOn
	var snaps []mc.ProgressInfo
	cfg.Progress = func(p mc.ProgressInfo) { snaps = append(snaps, p) }
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	for _, p := range snaps {
		if p.SymmetryGroup != 2 {
			t.Fatalf("snapshot SymmetryGroup = %d, want 2", p.SymmetryGroup)
		}
	}
	last := snaps[len(snaps)-1]
	if last.States != res.States {
		t.Errorf("final snapshot states %d != result %d", last.States, res.States)
	}
	if last.ShardMax*64 < int64(res.States) {
		t.Errorf("shard stats inconsistent with reduced count: max %d over 64 shards, %d states",
			last.ShardMax, res.States)
	}
}

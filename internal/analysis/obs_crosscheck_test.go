package analysis_test

import (
	"testing"

	"teapot/internal/analysis"
	"teapot/internal/obs"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// TestObsAgreesWithContAllocAnalysis is dynamic evidence for the static
// continuation pass: every continuation-allocation event a real Stache run
// emits must match the compiler's per-site classification (ir.SuspendSite
// Static/Constant), heap allocations must only occur at sites the compiler
// predicted could heap-allocate, and any site the cont-alloc lint flags as
// needlessly heap-allocating must be in that predicted-heap set. On clean
// Stache the lint is expected to stay silent — that too is asserted, so a
// regression in either the optimizer or the lint shows up here.
func TestObsAgreesWithContAllocAnalysis(t *testing.T) {
	art := stache.MustCompile(true)
	p := art.Protocol

	staticSite := map[int]bool{}
	for _, s := range p.IR.Sites {
		staticSite[s.ID] = s.Static
	}

	// Drive enough traffic to hit suspends on multiple sites: a workload
	// with read and write faults from every node.
	const nodes = 8
	w := sim.Mp3d(sim.WorkloadSpec{Nodes: nodes, Iters: 8, Seed: 5})
	col := obs.NewCollector(0)
	_, err := sim.Run(sim.Config{
		Nodes: nodes, Blocks: w.Blocks,
		Cost: tempest.DefaultCost, Tags: tempest.ResolveTags(p),
		MakeEngine: func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(p, nodes, w.Blocks, m, stache.MustSupport(p))
		},
		Program: w.Trace,
		Obs:     col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.Count(obs.KindContAlloc) == 0 {
		t.Fatal("workload produced no continuation allocations; cross-check is vacuous")
	}
	// mp3d's migratory sharing drives Home_RS/Home_Excl through their
	// saving suspends on several distinct paths; a shrunken site set means
	// the workload (or the optimizer) changed out from under this test.
	if got := len(col.HeapContSites()); got < 3 {
		t.Errorf("only %d distinct heap-allocating sites observed, want >= 3 for a meaningful cross-check", got)
	}

	// 1. Every observed allocation agrees with the static classification.
	for _, site := range col.HeapContSites() {
		static, ok := staticSite[site]
		if !ok {
			t.Errorf("heap continuation observed at site %d the compiler does not know", site)
			continue
		}
		if static {
			t.Errorf("site %d heap-allocated at run time but is classified Static", site)
		}
	}
	for _, site := range col.StaticContSites() {
		static, ok := staticSite[site]
		if !ok {
			t.Errorf("static continuation record observed at unknown site %d", site)
			continue
		}
		if !static {
			t.Errorf("site %d produced a static record at run time but is classified heap", site)
		}
	}
	// A site is one or the other, never both.
	for _, site := range col.HeapContSites() {
		if h, s := col.SiteAllocs(site); h > 0 && s > 0 {
			t.Errorf("site %d allocated both heap (%d) and static (%d) records", site, h, s)
		}
	}

	// 2. The lint's findings must be a subset of the predicted-heap sites.
	// Clean optimized Stache saves only live, non-constant state across its
	// suspends, so the lint has nothing to say — pin that.
	if ds := analysis.Analyze(p).ByCheck("cont-alloc"); len(ds) != 0 {
		t.Errorf("cont-alloc lint unexpectedly fired on clean Stache: %v", ds)
	}

	// 3. The static pass actually bought something in this run: at least
	// one site produced static records where the unoptimized compile would
	// have heap-allocated every one.
	if len(col.StaticContSites()) == 0 {
		t.Error("no statically allocated continuation records observed; Table 1's optimization is not visible")
	}
}

package fuzz

import (
	"path/filepath"
	"reflect"
	"testing"

	"teapot/internal/netmodel"
)

// TestCleanProtocolsFuzzClean smokes every judgeable bundled protocol
// through a short campaign inside its verified envelope: no oracle
// violations, no run errors. Duplicate budgets for stache-ft run at 2
// nodes — beyond that an epoch-less protocol genuinely violates (a
// duplicated writeback can straddle two recall epochs; see ft.go), and
// the fuzzer finds it.
func TestCleanProtocolsFuzzClean(t *testing.T) {
	for _, tc := range []struct {
		proto string
		nodes int
		net   netmodel.Model
	}{
		{"stache", 0, netmodel.Model{}},
		{"stache", 0, netmodel.Model{Reorder: 1}},
		{"stache-ft", 0, netmodel.Model{MaxDrops: 1}},
		{"stache-ft", 2, netmodel.Model{MaxDrops: 1, MaxDups: 1}},
		{"update", 0, netmodel.Model{}},
		{"bufwrite", 0, netmodel.Model{Reorder: 1}},
	} {
		f, err := New(Config{Proto: tc.proto, Nodes: tc.nodes, Net: tc.net, Schedules: 30, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", tc.proto, err)
		}
		res, err := f.Fuzz()
		if err != nil {
			t.Fatalf("%s: %v", tc.proto, err)
		}
		if res.Failure != nil {
			t.Errorf("%s net=%s: unexpected failure after %d schedule(s): %s",
				tc.proto, tc.net, res.Ran, verdictString(res.Failure.Report))
		}
	}
}

// TestFindsSeededBug is the tentpole acceptance path: the fuzzer must find
// the stache-ft-buggy coherence bug under a single-drop budget within a
// bounded campaign, shrink it to a handful of decisions, and the shrunk
// schedule must still fail as a coherence violation (not some other way).
func TestFindsSeededBug(t *testing.T) {
	f, err := New(Config{Proto: "stache-ft-buggy", Net: netmodel.Model{MaxDrops: 1}, Schedules: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Fuzz()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil {
		t.Fatalf("no failure in %d schedules", res.Ran)
	}
	if res.Failure.Report.Violation == nil {
		t.Fatalf("wanted an oracle violation, got: %v", res.Failure.Report.RunErr)
	}
	small, tries := f.Shrink(res.Failure.Schedule)
	if len(small.Decisions) > 10 {
		t.Errorf("shrunk reproducer has %d decisions, want <= 10", len(small.Decisions))
	}
	rep := f.Replay(small)
	if rep.Violation == nil {
		t.Fatalf("shrunk schedule no longer violates (RunErr: %v)", rep.RunErr)
	}
	t.Logf("found at schedule %d, shrunk %d -> %d decision(s) in %d replays: %v",
		res.Ran, len(res.Failure.Schedule.Decisions), len(small.Decisions), tries, rep.Violation)
}

// TestScheduleRoundTrip serializes a failing schedule to disk, loads it
// back, and replays it — the artifact path teapot-fuzz ships failures on.
func TestScheduleRoundTrip(t *testing.T) {
	f, res := fuzzSeededBug(t)
	sched := res.Failure.Schedule

	path := filepath.Join(t.TempDir(), "repro.json")
	if err := sched.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched, loaded) {
		t.Fatalf("round trip changed the schedule:\n  saved:  %+v\n  loaded: %+v", sched, loaded)
	}

	rep, err := ReplaySchedule(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatalf("loaded schedule did not reproduce the violation (RunErr: %v)", rep.RunErr)
	}
	direct := f.Replay(sched)
	if direct.Violation.Error() != rep.Violation.Error() {
		t.Errorf("disk replay verdict differs:\n  direct: %v\n  loaded: %v", direct.Violation, rep.Violation)
	}
}

// TestReplayDeterminism replays the same schedule twice and demands
// bit-identical verdicts and identical choice-point counts.
func TestReplayDeterminism(t *testing.T) {
	f, res := fuzzSeededBug(t)
	sched := res.Failure.Schedule
	a, b := f.Replay(sched), f.Replay(sched)
	if a.Steps != b.Steps {
		t.Errorf("choice points differ across replays: %d vs %d", a.Steps, b.Steps)
	}
	if (a.Violation == nil) != (b.Violation == nil) {
		t.Fatalf("verdicts differ across replays: %v vs %v", a.Violation, b.Violation)
	}
	if a.Violation != nil && a.Violation.Error() != b.Violation.Error() {
		t.Errorf("violations differ across replays:\n  %v\n  %v", a.Violation, b.Violation)
	}
	// The original recorded run and its replay must agree too.
	if want := res.Failure.Report.Violation; want != nil && a.Violation != nil &&
		want.Error() != a.Violation.Error() {
		t.Errorf("replay disagrees with the recorded run:\n  recorded: %v\n  replayed: %v", want, a.Violation)
	}
}

// TestReplayerTotality replays every single-decision subset of a failing
// schedule: subsets must always be valid schedules (some pass, some fail,
// none crash) — the property delta debugging relies on.
func TestReplayerTotality(t *testing.T) {
	f, res := fuzzSeededBug(t)
	sched := res.Failure.Schedule
	for i := range sched.Decisions {
		sub := *sched
		sub.Decisions = sched.Decisions[i : i+1]
		rep := f.Replay(&sub)
		if rep.Stats == nil && rep.RunErr == nil {
			t.Errorf("subset %d produced neither stats nor an error", i)
		}
	}
	empty := *sched
	empty.Decisions = nil
	if rep := f.Replay(&empty); rep.Violation != nil {
		t.Errorf("the benign (empty) schedule violated coherence: %v", rep.Violation)
	}
}

// TestProfileFor pins the judgeability boundary.
func TestProfileFor(t *testing.T) {
	for _, name := range []string{"stache", "stache-ft", "stache-buggy", "stache-ft-buggy", "update", "bufwrite"} {
		if _, err := ProfileFor(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for _, name := range []string{"lcm", "lcm-mcc", "nonsense"} {
		if _, err := ProfileFor(name); err == nil {
			t.Errorf("%s: want an error (not judgeable)", name)
		}
	}
}

// fuzzSeededBug runs the canonical failing campaign the schedule tests
// share: stache-ft-buggy under a one-drop budget, master seed 2.
func fuzzSeededBug(t *testing.T) (*Fuzzer, *Result) {
	t.Helper()
	f, err := New(Config{Proto: "stache-ft-buggy", Net: netmodel.Model{MaxDrops: 1}, Schedules: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Fuzz()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure == nil || res.Failure.Report.Violation == nil {
		t.Fatalf("campaign did not produce an oracle violation (failure: %+v)", res.Failure)
	}
	return f, res
}

func verdictString(r *Report) string {
	switch {
	case r.Violation != nil:
		return r.Violation.Error()
	case r.RunErr != nil:
		return r.RunErr.Error()
	}
	return "clean"
}

package tempest

import (
	"container/heap"

	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/runtime"
	"teapot/internal/sema"
)

// Schedule control: with Config.Sched installed, every nondeterministic
// decision the machine would otherwise draw from its seeded fault RNG — plus
// two sources of nondeterminism the plain simulator fixes by convention
// (same-cycle event order, bounded channel reordering) — is delegated to a
// Chooser. internal/fuzz supplies choosers that record each decision into a
// replayable Schedule and play recorded schedules back; option 0 is always
// the benign choice, so the empty schedule reproduces the deterministic
// fault-free run bit-for-bit.

// ChoiceKind classifies one nondeterministic decision point.
type ChoiceKind uint8

// Decision points the machine exposes.
const (
	// ChooseFault picks the fate of a message send. Option 0 is "deliver
	// normally"; the rest are the fault kinds currently inside budget, in
	// fixed order drop, dup, delay (absent options are skipped).
	ChooseFault ChoiceKind = iota
	// ChooseHold picks how many later arrivals on the same channel may
	// overtake an arriving message: option 0 delivers now, option d holds
	// the message until d subsequent deliveries on the channel have passed
	// it. d is capped at min(Net.Reorder, messages in flight behind it), so
	// a schedule can never exceed the model's reorder bound or hold a
	// message forever.
	ChooseHold
	// ChooseTie picks among events scheduled for the same cycle. Candidates
	// that would reorder a channel (a second delivery from the same sender)
	// are excluded — channel order is ChooseHold's job, under the reorder
	// bound.
	ChooseTie
	numChoiceKinds
)

var choiceKindNames = [numChoiceKinds]string{"fault", "hold", "tie"}

func (k ChoiceKind) String() string {
	if int(k) < len(choiceKindNames) {
		return choiceKindNames[k]
	}
	return "choice?"
}

// Chooser resolves nondeterministic decisions. Choose returns an option in
// [0, n); n is always >= 2 (the machine never asks about forced moves) and
// option 0 is always the benign default.
type Chooser interface {
	Choose(kind ChoiceKind, n int) int
}

// heldMsg is a delivery deferred by a ChooseHold decision: it re-enters the
// channel after wait subsequent deliveries have overtaken it.
type heldMsg struct {
	msg  *runtime.Message
	wait int
}

// netFault decides the fate of one send: the seeded injector when no
// chooser is installed, otherwise an explicit choice over the fault kinds
// still inside budget (the chooser sees exactly the options the checker
// would branch on, so a recorded schedule maps onto mc's action space).
func (m *Machine) netFault() netmodel.Fault {
	if m.sched == nil {
		return m.inj.Next()
	}
	if !m.cfg.Net.Active() {
		return netmodel.FaultNone
	}
	var opts [4]netmodel.Fault
	n := 1 // opts[0] = FaultNone
	if m.stats.Drops < int64(m.cfg.Net.MaxDrops) {
		opts[n] = netmodel.FaultDrop
		n++
	}
	if m.stats.Dups < int64(m.cfg.Net.MaxDups) {
		opts[n] = netmodel.FaultDup
		n++
	}
	if m.cfg.Net.Delay > 0 {
		opts[n] = netmodel.FaultDelay
		n++
	}
	if n == 1 {
		return netmodel.FaultNone
	}
	return opts[m.sched.Choose(ChooseFault, n)]
}

// chanIndex identifies the ordered channel src→dst.
func (m *Machine) chanIndex(src, dst int) int { return src*m.cfg.Nodes + dst }

// arrive handles a delivery event under schedule control with a reorder
// budget: the chooser may hold the message so later traffic on the same
// channel overtakes it, bounded by Net.Reorder and by what is actually in
// flight (the last in-flight message on a channel can never hold, which
// guarantees every held message is eventually released).
func (m *Machine) arrive(node int, msg *runtime.Message) {
	ch := m.chanIndex(msg.Src, node)
	m.inflight[ch]--
	d := m.cfg.Net.Reorder
	if infl := m.inflight[ch]; infl < d {
		d = infl
	}
	if d > 0 {
		pick := m.sched.Choose(ChooseHold, d+1)
		if pick > d {
			pick = d // tolerate schedules recorded under a larger bound
		}
		if pick > 0 {
			m.held[ch] = append(m.held[ch], heldMsg{msg: msg, wait: pick})
			return
		}
	}
	m.deliverOn(ch, node, msg)
}

// deliverOn delivers msg on channel ch, then releases any held messages
// whose overtake count is spent. Each release is itself a delivery on the
// channel, so the loop keeps decrementing until no held entry is due.
func (m *Machine) deliverOn(ch, node int, msg *runtime.Message) {
	m.deliverMsg(node, msg)
	for m.err == nil {
		q := m.held[ch]
		due := -1
		for i := range q {
			q[i].wait--
			if q[i].wait <= 0 && due < 0 {
				due = i
			}
		}
		if due < 0 {
			return
		}
		rel := q[due].msg
		m.held[ch] = append(q[:due:due], q[due+1:]...)
		m.deliverMsg(node, rel)
	}
}

// pickTie resolves a same-cycle tie among pending events. The first-popped
// event is the machine's conventional order (option 0); the chooser may run
// any other candidate first, except a delivery that would overtake an
// earlier delivery on its own channel.
const maxTieCandidates = 8

func (m *Machine) pickTie(first *event) *event {
	cand := []*event{first}
	for m.queue.Len() > 0 && len(cand) < maxTieCandidates && m.queue[0].at == first.at {
		cand = append(cand, heap.Pop(&m.queue).(*event))
	}
	if len(cand) == 1 {
		return first
	}
	var eligible []int
	seenCh := make(map[int]bool, len(cand))
	for i, e := range cand {
		if e.kind == 0 {
			ch := m.chanIndex(e.msg.Src, e.node)
			if seenCh[ch] {
				continue
			}
			seenCh[ch] = true
		}
		eligible = append(eligible, i)
	}
	pick := 0
	if len(eligible) > 1 {
		pick = m.sched.Choose(ChooseTie, len(eligible))
		if pick < 0 || pick >= len(eligible) {
			pick = 0
		}
	}
	chosen := cand[eligible[pick]]
	for _, e := range cand {
		if e != chosen {
			heap.Push(&m.queue, e)
		}
	}
	return chosen
}

// ---- data-version model (Config.ObsMemory) ----
//
// The machine models block contents as versions: a completed store creates
// a fresh global version of its block, data-carrying messages transport the
// sender's current version, and RecvData installs it. internal/oracle
// checks the resulting Read/Write/Data/Access event stream for coherence —
// reads must observe the latest version, completed writes must never be
// lost — independently of the protocol under test.

// RecvDataMsg implements runtime.DataMachine: the access change RecvData
// would make, plus installing the message's transported version. Versions
// only ever move forward at a node: fault-tolerant protocols retransmit
// data-carrying messages, and a retransmitted (or overtaken) copy can
// arrive after the node already holds newer data. Real implementations tag
// block data with epochs and discard the stale copy — the ft variants'
// documented assumption — so the model does the same, keeping the access
// change but not regressing the data.
func (m *Machine) RecvDataMsg(node, id int, mode sema.AccessMode, msg *runtime.Message) {
	m.setAccess(node, id, mode)
	if m.mem == nil {
		return
	}
	if cur := m.mem[node*m.cfg.Blocks+id]; msg.Val > cur {
		m.mem[node*m.cfg.Blocks+id] = msg.Val
	}
	if m.obs != nil {
		m.obs.Emit(obs.Event{Kind: obs.KindData, Node: int32(node), Block: int32(id),
			State: -1, Msg: int32(msg.Tag), Peer: int32(msg.Src), Site: -1, Arg: msg.Val})
	}
}

// setAccess applies an access-mode change, emitting the memory-model event
// when the run is being judged.
func (m *Machine) setAccess(node, id int, mode sema.AccessMode) {
	m.access[node*m.cfg.Blocks+id] = mode
	if m.mem != nil && m.obs != nil {
		m.obs.Emit(obs.Event{Kind: obs.KindAccess, Node: int32(node), Block: int32(id),
			State: -1, Msg: -1, Peer: -1, Site: -1, Arg: int64(mode)})
	}
}

// noteRead records a completed load: the node observed its copy's version.
func (m *Machine) noteRead(node, addr int) {
	if m.mem == nil {
		return
	}
	if m.obs != nil {
		m.obs.Emit(obs.Event{Kind: obs.KindRead, Node: int32(node), Block: int32(addr),
			State: -1, Msg: -1, Peer: -1, Site: -1, Arg: m.mem[node*m.cfg.Blocks+addr]})
	}
}

// noteWrite records a completed store: a fresh version of the block now
// lives in the node's copy. protocolPerformed marks stores the protocol
// made on the processor's behalf (a faulted write completing with
// read-only access — the write-through discipline). val, when nonzero, is
// the value the store wrote (litmus workloads): it rides in the low bits
// of the version word (PackVal), so the monotone stale-discard comparison
// in RecvDataMsg keeps ordering by version.
func (m *Machine) noteWrite(node, addr int, protocolPerformed bool, val int64) {
	if m.mem == nil {
		return
	}
	m.version[addr]++
	v := m.version[addr]
	if val != 0 {
		v = PackVal(v, val)
	}
	m.mem[node*m.cfg.Blocks+addr] = v
	if m.obs != nil {
		site := int32(0)
		if protocolPerformed {
			site = 1
		}
		m.obs.Emit(obs.Event{Kind: obs.KindWrite, Node: int32(node), Block: int32(addr),
			State: -1, Msg: -1, Peer: -1, Site: site, Arg: v})
	}
}

// noteOp records a completed read, write, or compare-and-swap access. A
// CAS first observes the node's copy (emitted as a read, like any load),
// then stores only if the observed value matches op.Expect.
func (m *Machine) noteOp(node int, op *Op, protocolPerformed bool) {
	if m.mem == nil {
		return
	}
	switch op.Kind {
	case OpRead:
		m.noteRead(node, op.Addr)
	case OpWrite:
		m.noteWrite(node, op.Addr, protocolPerformed, op.Val)
	case OpCAS:
		observed := m.mem[node*m.cfg.Blocks+op.Addr]
		m.noteRead(node, op.Addr)
		if ValueOf(observed) == op.Expect {
			m.noteWrite(node, op.Addr, protocolPerformed, op.Val)
		}
	}
}

// ---- value packing (litmus workloads) ----
//
// The version model orders block copies by a monotonically increasing
// version number. Litmus workloads additionally need concrete values; they
// ride in the low 32 bits of the same word with the version above them, so
// every monotone version comparison (stale-data discard, oracle checks)
// keeps working unchanged while the value stays recoverable at the end.

// PackVal packs a version and a 32-bit value into one version word.
func PackVal(version, val int64) int64 { return version<<32 | (val & 0xffffffff) }

// ValueOf extracts the value from a packed version word.
func ValueOf(packed int64) int64 { return packed & 0xffffffff }

// VersionOf extracts the version from a packed version word.
func VersionOf(packed int64) int64 { return packed >> 32 }

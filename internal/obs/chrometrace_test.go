package obs

import (
	"strings"
	"testing"
)

// script runs a small two-node exchange through a collector: node 0 faults,
// sends a request; node 1 handles it, suspends, enqueues a message, NACKs;
// later resumes and replies.
func script(t *testing.T, capacity int) *Collector {
	t.Helper()
	c := NewCollector(capacity)
	emit := func(evs ...Event) {
		for _, ev := range evs {
			c.Emit(ev)
		}
	}
	emit(
		Event{Kind: KindHandlerEnter, Node: 0, Block: 0, State: 0, Msg: 0},
		Event{Kind: KindSend, Node: 0, Block: 0, Msg: 1, Peer: 1, Flow: 0x10001},
		Event{Kind: KindSuspend, Node: 0, Block: 0, State: 2},
		Event{Kind: KindContAlloc, Node: 0, Block: 0, Site: 1, Arg: 0},
		Event{Kind: KindHandlerExit, Node: 0, Block: 0, State: 2, Msg: 0},

		Event{Kind: KindDeliver, Node: 1, Block: 0, Msg: 1, Peer: 0, Flow: 0x10001},
		Event{Kind: KindHandlerEnter, Node: 1, Block: 0, State: 3, Msg: 1, Peer: 0},
		Event{Kind: KindEnqueue, Node: 1, Block: 0, Msg: 1, Peer: 0, Arg: 1},
		Event{Kind: KindNACK, Node: 1, Block: 0, Msg: 1, Peer: 0},
		Event{Kind: KindSend, Node: 1, Block: 0, Msg: 2, Peer: 0, Flow: 0x20001},
		Event{Kind: KindHandlerExit, Node: 1, Block: 0, State: 3, Msg: 1},

		Event{Kind: KindDeliver, Node: 0, Block: 0, Msg: 2, Peer: 1, Flow: 0x20001},
		Event{Kind: KindHandlerEnter, Node: 0, Block: 0, State: 2, Msg: 2, Peer: 1},
		Event{Kind: KindResume, Node: 0, Block: 0, State: 2, Site: 1, Arg: 1},
		Event{Kind: KindDequeue, Node: 0, Block: 0, Msg: 2, Arg: 0},
		Event{Kind: KindHandlerExit, Node: 0, Block: 0, State: 0, Msg: 2},
	)
	return c
}

func TestChromeTraceRoundTrip(t *testing.T) {
	c := script(t, 0)
	names := Names{
		States:   []string{"Cache_Inv", "Cache_RO", "Cache_Wait", "Home_Idle"},
		Messages: []string{"RD_FAULT", "GET_RO_REQ", "PUT_DATA"},
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, c.Events(), names); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := ValidateChromeTrace(strings.NewReader(out)); err != nil {
		t.Fatalf("emitted trace fails its own schema check: %v\n%s", err, out)
	}
	for _, want := range []string{
		`"name":"Cache_Inv.RD_FAULT"`, // handler slice named state.msg
		`"name":"node 0"`,             // thread metadata
		`"name":"node 1"`,
		`"ph":"s"`, `"ph":"f"`, // flow arrows
		`"name":"Suspend"`, `"name":"Resume"`, `"name":"ContAlloc"`,
		`"name":"NACK GET_RO_REQ"`,
		`"wait_state":"Cache_Wait"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

// TestChromeTraceTruncatedWindow exercises the ring-wrap degradations: exits
// without enters are dropped, flow ends without starts are dropped, and the
// result still validates.
func TestChromeTraceTruncatedWindow(t *testing.T) {
	c := script(t, 6) // keeps only the last 6 of 16 events
	var b strings.Builder
	if err := WriteChromeTrace(&b, c.Events(), Names{}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(strings.NewReader(b.String())); err != nil {
		t.Fatalf("truncated trace fails validation: %v\n%s", err, b.String())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents":[`,
		"empty":         `{"traceEvents":[]}`,
		"unknown phase": `{"traceEvents":[{"ph":"Z"}]}`,
		"unbalanced":    `{"traceEvents":[{"ph":"B","name":"x","tid":1}]}`,
		"E without B":   `{"traceEvents":[{"ph":"E","tid":1}]}`,
		"flow no start": `{"traceEvents":[{"ph":"B","name":"x"},{"ph":"f","id":9},{"ph":"E"}]}`,
		"no slices":     `{"traceEvents":[{"ph":"M","name":"process_name"}]}`,
	}
	for name, doc := range cases {
		if err := ValidateChromeTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: the event stream becomes a JSON document
// loadable in about:tracing or https://ui.perfetto.dev. One track (tid) per
// node, B/E slices for handler activations, instants for Suspend / Resume /
// ContAlloc / Enqueue / Dequeue / NACK, and flow arrows (s/f pairs keyed by
// the per-message flow id) from each Send to the handler activation its
// delivery triggered. Virtual cycles are written as microseconds — the
// absolute unit is a documented fiction, but relative widths are exactly
// the simulator's cost model.

type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders events (in emission order, as returned by
// Collector.Events) as Chrome trace JSON. Unbalanced HandlerExit events
// (their HandlerEnter fell out of the ring) are dropped; unclosed
// HandlerEnter slices are closed at the final timestamp.
func WriteChromeTrace(w io.Writer, events []Event, names Names) error {
	enc := &traceEncoder{w: w}
	enc.head()

	enc.meta("process_name", 0, map[string]any{"name": "teapot"})
	seen := map[int32]bool{}
	for _, ev := range events {
		if !seen[ev.Node] {
			seen[ev.Node] = true
			enc.meta("thread_name", ev.Node, map[string]any{"name": fmt.Sprintf("node %d", ev.Node)})
		}
	}

	depth := map[int32]int{}           // open handler slices per node
	pendingFlow := map[int32][]Event{} // Deliver flow ends awaiting their slice
	started := map[int64]bool{}        // flow ids whose start made it into the window
	var lastTS int64
	for _, ev := range events {
		if ev.Time > lastTS {
			lastTS = ev.Time
		}
		switch ev.Kind {
		case KindHandlerEnter:
			enc.emit(traceEvent{
				Name: names.State(ev.State) + "." + names.Message(ev.Msg),
				Cat:  "handler", Ph: "B", Ts: ev.Time, Tid: ev.Node,
				Args: map[string]any{"block": ev.Block, "src": ev.Peer, "state": names.State(ev.State)},
			})
			depth[ev.Node]++
			// Flow arrows terminate on the slice the delivery started.
			for _, fe := range pendingFlow[ev.Node] {
				if !started[fe.Flow] {
					continue // the Send fell out of the ring window
				}
				enc.emit(traceEvent{
					Name: names.Message(fe.Msg), Cat: "msg", Ph: "f", BP: "e",
					Ts: ev.Time, Tid: ev.Node, ID: fe.Flow,
				})
			}
			pendingFlow[ev.Node] = pendingFlow[ev.Node][:0]
		case KindHandlerExit:
			if depth[ev.Node] == 0 {
				continue // its Enter fell out of the ring window
			}
			depth[ev.Node]--
			enc.emit(traceEvent{Ph: "E", Ts: ev.Time, Tid: ev.Node})
		case KindSend:
			if ev.Flow != 0 {
				started[ev.Flow] = true
				enc.emit(traceEvent{
					Name: names.Message(ev.Msg), Cat: "msg", Ph: "s",
					Ts: ev.Time, Tid: ev.Node, ID: ev.Flow,
					Args: map[string]any{"block": ev.Block, "dst": ev.Peer},
				})
			}
		case KindDeliver:
			if ev.Flow != 0 {
				pendingFlow[ev.Node] = append(pendingFlow[ev.Node], ev)
			}
		case KindSuspend:
			enc.instant(ev, "Suspend", "cont", map[string]any{
				"block": ev.Block, "wait_state": names.State(ev.State)})
		case KindResume:
			kind := "indirect"
			if ev.Arg != 0 {
				kind = "direct"
			}
			enc.instant(ev, "Resume", "cont", map[string]any{
				"block": ev.Block, "site": ev.Site, "kind": kind})
		case KindContAlloc:
			alloc := "static"
			if ev.Arg != 0 {
				alloc = "heap"
			}
			enc.instant(ev, "ContAlloc", "cont", map[string]any{
				"block": ev.Block, "site": ev.Site, "alloc": alloc})
		case KindEnqueue:
			enc.instant(ev, "Enqueue "+names.Message(ev.Msg), "queue", map[string]any{
				"block": ev.Block, "depth": ev.Arg})
		case KindDequeue:
			enc.instant(ev, "Dequeue "+names.Message(ev.Msg), "queue", map[string]any{
				"block": ev.Block, "depth": ev.Arg})
		case KindNACK:
			enc.instant(ev, "NACK "+names.Message(ev.Msg), "queue", map[string]any{
				"block": ev.Block, "dst": ev.Peer})
		case KindDrop:
			// The Send's flow arrow (if any) is left dangling on purpose:
			// a started flow with no Deliver end is how a lost message
			// reads in the trace viewer.
			enc.instant(ev, "Drop "+names.Message(ev.Msg), "fault", map[string]any{
				"block": ev.Block, "dst": ev.Peer, "flow": ev.Flow})
		case KindDup:
			enc.instant(ev, "Dup "+names.Message(ev.Msg), "fault", map[string]any{
				"block": ev.Block, "dst": ev.Peer, "flow": ev.Flow})
		case KindAccess:
			enc.instant(ev, "Access", "mem", map[string]any{
				"block": ev.Block, "mode": ev.Arg})
		case KindData:
			enc.instant(ev, "Data "+names.Message(ev.Msg), "mem", map[string]any{
				"block": ev.Block, "src": ev.Peer, "version": ev.Arg})
		case KindRead:
			enc.instant(ev, "Read", "mem", map[string]any{
				"block": ev.Block, "version": ev.Arg})
		case KindWrite:
			enc.instant(ev, "Write", "mem", map[string]any{
				"block": ev.Block, "version": ev.Arg})
		}
		if enc.err != nil {
			return enc.err
		}
	}
	for tid, d := range depth {
		for ; d > 0; d-- {
			enc.emit(traceEvent{Ph: "E", Ts: lastTS, Tid: tid})
		}
	}
	enc.tail()
	return enc.err
}

type traceEncoder struct {
	w     io.Writer
	err   error
	first bool
}

func (e *traceEncoder) head() {
	e.first = true
	e.write([]byte(`{"traceEvents":[`))
}

func (e *traceEncoder) tail() { e.write([]byte("\n]}\n")) }

func (e *traceEncoder) meta(name string, tid int32, args map[string]any) {
	e.emit(traceEvent{Name: name, Ph: "M", Tid: tid, Args: args})
}

func (e *traceEncoder) instant(ev Event, name, cat string, args map[string]any) {
	e.emit(traceEvent{Name: name, Cat: cat, Ph: "i", S: "t", Ts: ev.Time, Tid: ev.Node, Args: args})
}

func (e *traceEncoder) emit(ev traceEvent) {
	if e.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		e.err = err
		return
	}
	if e.first {
		e.first = false
		e.write([]byte("\n"))
	} else {
		e.write([]byte(",\n"))
	}
	e.write(data)
}

func (e *traceEncoder) write(b []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(b)
	}
}

// ValidateChromeTrace is the tiny schema check scripts/check.sh (and the
// package tests) run over emitted traces: the document must be a
// {"traceEvents": [...]} object whose events carry a known phase, named
// begin/instant/flow events, per-track balanced B/E slices, and an "s"
// flow start for every "f" flow end.
func ValidateChromeTrace(r io.Reader) error {
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace: no traceEvents")
	}
	depth := map[int32]int{}
	flows := map[int64]bool{}
	slices := 0
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "" {
				return fmt.Errorf("trace: event %d: metadata without name", i)
			}
		case "B":
			if ev.Name == "" {
				return fmt.Errorf("trace: event %d: B slice without name", i)
			}
			depth[ev.Tid]++
			slices++
		case "E":
			depth[ev.Tid]--
			if depth[ev.Tid] < 0 {
				return fmt.Errorf("trace: event %d: E without open B on tid %d", i, ev.Tid)
			}
		case "i":
			if ev.Name == "" {
				return fmt.Errorf("trace: event %d: instant without name", i)
			}
		case "s":
			flows[ev.ID] = true
		case "f":
			if !flows[ev.ID] {
				return fmt.Errorf("trace: event %d: flow end %d without start", i, ev.ID)
			}
		default:
			return fmt.Errorf("trace: event %d: unknown phase %q", i, ev.Ph)
		}
	}
	for tid, d := range depth {
		if d != 0 {
			return fmt.Errorf("trace: %d unclosed slice(s) on tid %d", d, tid)
		}
	}
	if slices == 0 {
		return fmt.Errorf("trace: no handler slices")
	}
	return nil
}

package runtime

// SymmetryDecl is implemented by Support modules that vouch for the
// node/block-permutation equivariance of their routines. The static
// symmetry prover (internal/analysis.ProveSymmetry) proves handler IR
// equivariant but cannot see through support calls; it emits each called
// routine as a proof obligation, and the model checker enables symmetry
// reduction only when every obligation appears in EquivariantRoutines().
//
// A routine is equivariant when permuting node ids (π) and block ids (σ)
// in its arguments and in the protocol variables it reads yields the
// π/σ-image of its original effects: the same sends to π-mapped
// destinations, the same variable updates with node bitmasks re-indexed
// by π. Integer-typed protocol variables that encode node bitmasks (bit n
// ↦ node n) must be listed in NodeMaskSlots so the checker's
// canonicalization re-indexes them; every other variable is permuted by
// its value kind alone.
//
// The declaration is a vouch, not a proof: it shifts trust from a checker
// heuristic to the support author, mirroring how the paper's protocols
// trust their hand-written support modules for functional correctness.
type SymmetryDecl interface {
	// NodeMaskSlots lists protocol-variable slots holding node bitmasks.
	NodeMaskSlots() []int
	// EquivariantRoutines lists routine names (as called from protocol
	// text) whose behavior commutes with node/block permutation.
	EquivariantRoutines() []string
}

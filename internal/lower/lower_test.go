package lower_test

import (
	"strings"
	"testing"

	"teapot/internal/ir"
	"teapot/internal/lower"
	"teapot/internal/parser"
	"teapot/internal/sema"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("t.tea", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return lower.Lower(sp)
}

const fixture = `
module M begin
  function F(x : int) : int;
  procedure G(var y : int);
end;
protocol P begin
  var pv : int;
  state S();
  state W(C : CONT) transient;
  message GO;
  message ACK;
end;
state P.S() begin
  message GO (id : ID; var info : INFO; src : NODE)
  var a : int;
  begin
    a := F(pv);
    G(pv);
    if (a > 0) then
      Suspend(L, W{L});
    endif;
    pv := a;
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
state P.W(C : CONT) begin
  message ACK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
`

func find(p *ir.Program, name string) *ir.Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

func TestLoweringStructure(t *testing.T) {
	p := compile(t, fixture)
	f := find(p, "S.GO")
	if f == nil {
		t.Fatal("S.GO not found")
	}
	if f.NumStateParams != 0 || f.NumParams != 3 || f.NumLocals != 1 {
		t.Errorf("layout: sp=%d p=%d l=%d", f.NumStateParams, f.NumParams, f.NumLocals)
	}
	// Handler tables.
	sp := p.Sema
	go_ := sp.MessageByName("GO").Index
	sIdx := sp.StateByName("S").Index
	if p.FuncFor(sIdx, go_) != f {
		t.Error("FuncFor(S, GO) wrong")
	}
	ack := sp.MessageByName("ACK").Index
	if d := p.FuncFor(sIdx, ack); d == nil || d.MsgIndex != -1 {
		t.Errorf("FuncFor(S, ACK) should be the DEFAULT handler, got %v", d)
	}
	// Every handler ends with a terminator, and fragment starts are valid.
	for _, fn := range p.Funcs {
		if len(fn.Code) == 0 {
			t.Fatalf("%s: empty body", fn.Name)
		}
		last := fn.Code[len(fn.Code)-1]
		if !last.Terminates() {
			t.Errorf("%s: last instruction %v does not terminate", fn.Name, last.Op)
		}
		for i, fr := range fn.Frags {
			if fr.Start < 0 || fr.Start >= len(fn.Code) {
				t.Errorf("%s: fragment %d start %d out of range", fn.Name, i, fr.Start)
			}
		}
		// All jump targets in range.
		for i, in := range fn.Code {
			switch in.Op {
			case ir.OpJump:
				if in.Idx < 0 || in.Idx >= len(fn.Code) {
					t.Errorf("%s@%d: jump to %d out of range", fn.Name, i, in.Idx)
				}
			case ir.OpBranch:
				if in.Idx >= len(fn.Code) || in.Idx2 >= len(fn.Code) {
					t.Errorf("%s@%d: branch targets out of range", fn.Name, i)
				}
			}
		}
	}
}

func TestByRefProtVarWriteback(t *testing.T) {
	p := compile(t, fixture)
	f := find(p, "S.GO")
	d := f.Disassemble()
	// G(pv) must load the var, call, and store it back.
	callAt := strings.Index(d, "G(")
	if callAt < 0 {
		t.Fatalf("no call to G:\n%s", d)
	}
	rest := d[callAt:]
	if !strings.Contains(rest, "var[0] :=") {
		t.Errorf("no writeback after by-ref call:\n%s", d)
	}
}

func TestSuspendInsideConditional(t *testing.T) {
	p := compile(t, fixture)
	f := find(p, "S.GO")
	if len(f.Frags) != 2 {
		t.Fatalf("frags = %d, want 2\n%s", len(f.Frags), f.Disassemble())
	}
	if len(p.Sites) != 1 || p.Sites[0].Func != f || p.Sites[0].FragIdx != 1 {
		t.Errorf("sites = %+v", p.Sites[0])
	}
	// The post-suspend code ("pv := a") is reachable both from the
	// fall-through (a <= 0) and the resumption; the fragment entry must
	// coincide with or precede the store.
	start := f.Frags[1].Start
	foundStore := false
	for i := start; i < len(f.Code); i++ {
		if f.Code[i].Op == ir.OpStoreVar {
			foundStore = true
		}
	}
	if !foundStore {
		t.Errorf("fragment 1 lost the trailing assignment:\n%s", f.Disassemble())
	}
}

func TestEnqueueIgnoresArguments(t *testing.T) {
	p := compile(t, `
protocol P begin state S(); message M; end;
state P.S() begin
  message M (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;
`)
	f := find(p, "S.M")
	for _, in := range f.Code {
		if in.Op == ir.OpCall && in.Fn.Name == "Enqueue" && len(in.Args) != 0 {
			t.Errorf("Enqueue lowered with %d args", len(in.Args))
		}
	}
}

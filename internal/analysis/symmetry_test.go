package analysis_test

import (
	"strings"
	"testing"

	"teapot/internal/analysis"
	"teapot/internal/core"
	"teapot/internal/protocols"
	"teapot/internal/source"
)

// TestProveSymmetryBundled: every bundled protocol except the deliberate
// asymmetric fixture carries a clean certificate — the static prover finds
// no instruction that distinguishes concrete node or block ids.
func TestProveSymmetryBundled(t *testing.T) {
	for _, e := range protocols.All() {
		if e.Name == "stache-asym" {
			continue
		}
		cert := analysis.ProveSymmetry(core.MustCompile(e.Config).Protocol)
		if !cert.Holds() {
			t.Errorf("%s: certificate refuted; node witnesses %v, block witnesses %v",
				e.Name, cert.Node.Witnesses, cert.Block.Witnesses)
		}
	}
}

// TestProveSymmetryAsym: the fixture must be refuted on the node dimension
// with a concrete witness instruction, while the block dimension stays
// equivariant (the handler compares node ids, never block ids).
func TestProveSymmetryAsym(t *testing.T) {
	e, ok := protocols.Lookup("stache-asym")
	if !ok {
		t.Fatal("stache-asym not registered")
	}
	p := core.MustCompile(e.Config).Protocol
	cert := analysis.ProveSymmetry(p)
	if cert.Holds() {
		t.Fatal("asymmetric fixture certified symmetric")
	}
	if cert.Node.Equivariant || len(cert.Node.Witnesses) == 0 {
		t.Fatalf("node dimension not refuted: %+v", cert.Node)
	}
	w := cert.Node.Witnesses[0]
	if w.Handler != "Cache_RO.PUT_NO_DATA_REQ" {
		t.Errorf("witness handler = %q", w.Handler)
	}
	if !strings.Contains(w.Reason, "ordering compares node ids") {
		t.Errorf("witness reason = %q", w.Reason)
	}
	if !cert.Block.Equivariant {
		t.Errorf("block dimension spuriously refuted: %v", cert.Block.Witnesses)
	}

	// The same refutation surfaces as an advisory vet finding.
	rep := analysis.Analyze(p)
	ds := rep.ByCheck("symmetry")
	if len(ds) == 0 {
		t.Fatal("no vet:symmetry findings for the asymmetric fixture")
	}
	if ds[0].Severity != source.SevInfo {
		t.Errorf("severity = %v, want info (advisory)", ds[0].Severity)
	}
	if !strings.Contains(ds[0].Msg, "symmetry reduction disabled") {
		t.Errorf("finding msg = %q", ds[0].Msg)
	}
}

// TestSymmetryWitnessClasses exercises the refutation classes on minimal
// protocols: ordering on node ids, ordering on block ids, and the
// obligations emitted for support-module calls.
func TestSymmetryWitnessClasses(t *testing.T) {
	nodeCmp := compile(t, `
protocol P begin state A(); message GO; end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin
    if (src < MyNode()) then Drop(); else Drop(); endif;
  end;
`+defaultDrop+`end;
`, true)
	cert := analysis.ProveSymmetry(nodeCmp)
	if cert.Node.Equivariant {
		t.Error("node ordering not refuted")
	} else if r := cert.Node.Witnesses[0].Reason; !strings.Contains(r, "ordering compares node ids") {
		t.Errorf("node witness reason = %q", r)
	}
	if !cert.Block.Equivariant {
		t.Errorf("block dimension spuriously refuted: %v", cert.Block.Witnesses)
	}

	blockCmp := compile(t, `
protocol P begin state A(); message GO; end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin
    if (id <= id) then Drop(); else Drop(); endif;
  end;
`+defaultDrop+`end;
`, true)
	cert = analysis.ProveSymmetry(blockCmp)
	if cert.Block.Equivariant {
		t.Error("block ordering not refuted")
	} else if r := cert.Block.Witnesses[0].Reason; !strings.Contains(r, "ordering compares block ids") {
		t.Errorf("block witness reason = %q", r)
	}
	if !cert.Node.Equivariant {
		t.Errorf("node dimension spuriously refuted: %v", cert.Node.Witnesses)
	}

	withCall := compile(t, `
module M begin
  procedure Tick(var info : INFO; n : NODE);
end;
protocol P begin state A(); message GO; end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin
    Tick(info, src);
  end;
`+defaultDrop+`end;
`, true)
	cert = analysis.ProveSymmetry(withCall)
	if !cert.Holds() {
		t.Errorf("support call refuted the IR dimensions: %+v", cert)
	}
	if len(cert.Obligations) != 1 || cert.Obligations[0].Routine != "Tick" {
		t.Errorf("obligations = %+v, want exactly [Tick]", cert.Obligations)
	}
}

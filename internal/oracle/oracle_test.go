package oracle

import (
	"strings"
	"testing"

	"teapot/internal/obs"
	"teapot/internal/sema"
)

// feed pushes a synthetic event stream through a fresh checker.
func feed(t *testing.T, inv Invariants, evs []obs.Event) *Violation {
	t.Helper()
	c := New(Config{Nodes: 3, Blocks: 2, Inv: inv})
	for _, ev := range evs {
		c.Emit(ev)
	}
	return c.Finish()
}

func acc(node, block int, mode sema.AccessMode) obs.Event {
	return obs.Event{Kind: obs.KindAccess, Node: int32(node), Block: int32(block), Arg: int64(mode)}
}

func data(node, block int, val int64) obs.Event {
	return obs.Event{Kind: obs.KindData, Node: int32(node), Block: int32(block), Arg: val}
}

func deliver(node, block int) obs.Event {
	return obs.Event{Kind: obs.KindDeliver, Node: int32(node), Block: int32(block)}
}

func read(node, block int, val int64) obs.Event {
	return obs.Event{Kind: obs.KindRead, Node: int32(node), Block: int32(block), Arg: val}
}

func write(node, block int, val int64) obs.Event {
	return obs.Event{Kind: obs.KindWrite, Node: int32(node), Block: int32(block), Arg: val}
}

func TestCleanRunPasses(t *testing.T) {
	// Home of block 1 is node 1. Node 0 fetches RO, then upgrades with the
	// home's copy invalidated first — a textbook invalidation sequence.
	v := feed(t, AllInvariants(), []obs.Event{
		acc(1, 1, sema.AccReadOnly),  // home downgrades itself
		data(0, 1, 0), acc(0, 1, sema.AccReadOnly), // fill
		deliver(0, 1),
		read(0, 1, 0),
		acc(1, 1, sema.AccInvalid), // home invalidated for the upgrade
		acc(0, 1, sema.AccReadWrite),
		deliver(0, 1),
		write(0, 1, 1),
		read(0, 1, 1),
	})
	if v != nil {
		t.Fatalf("clean run flagged: %v", v)
	}
}

func TestSWMRTwoWriters(t *testing.T) {
	v := feed(t, AllInvariants(), []obs.Event{
		acc(0, 0, sema.AccReadWrite), // home of block 0 is node 0 and already RW
		acc(1, 0, sema.AccReadWrite),
		deliver(1, 0), // boundary triggers the check
	})
	if v == nil || v.Invariant != "swmr" {
		t.Fatalf("want swmr violation, got %v", v)
	}
	if v.Block != 0 {
		t.Fatalf("violation block = %d, want 0", v.Block)
	}
}

func TestSWMRWriterPlusReader(t *testing.T) {
	v := feed(t, AllInvariants(), []obs.Event{
		acc(2, 0, sema.AccReadOnly), // node 0 (home) still ReadWrite
		deliver(2, 0),
	})
	if v == nil || v.Invariant != "swmr" {
		t.Fatalf("want swmr violation, got %v", v)
	}
}

func TestMidHandlerTransientTolerated(t *testing.T) {
	// Within one handler the access map passes through a bad state but is
	// consistent again by the next boundary: not a violation.
	v := feed(t, AllInvariants(), []obs.Event{
		acc(1, 0, sema.AccReadWrite), // transient: two writers...
		acc(0, 0, sema.AccInvalid),   // ...but home drops its copy before the boundary
		data(1, 0, 0),
		deliver(1, 0),
		write(1, 0, 1),
	})
	if v != nil {
		t.Fatalf("transient flagged: %v", v)
	}
}

func TestReadLatest(t *testing.T) {
	v := feed(t, AllInvariants(), []obs.Event{
		acc(0, 0, sema.AccInvalid),
		data(1, 0, 0), acc(1, 0, sema.AccReadWrite),
		deliver(1, 0),
		write(1, 0, 1),
		// Node 2 is served a stale copy (version 0) and reads it.
		data(2, 0, 0), acc(2, 0, sema.AccReadOnly),
		acc(1, 0, sema.AccReadOnly),
		deliver(2, 0),
		read(2, 0, 0),
	})
	if v == nil || v.Invariant != "read-latest" {
		t.Fatalf("want read-latest violation, got %v", v)
	}
	if !strings.Contains(v.Detail, "version 0") || !strings.Contains(v.Detail, "version 1") {
		t.Fatalf("detail %q lacks versions", v.Detail)
	}
}

func TestReadUnderInvalidAccess(t *testing.T) {
	v := feed(t, AllInvariants(), []obs.Event{
		read(2, 0, 0), // node 2 never acquired the block
	})
	if v == nil || v.Invariant != "swmr" {
		t.Fatalf("want access violation, got %v", v)
	}
}

func TestNoLostWrites(t *testing.T) {
	// Node 1 writes version 1, then every copy of it disappears: node 1 is
	// invalidated without the data reaching home (node 0 keeps version 0).
	v := feed(t, AllInvariants(), []obs.Event{
		acc(0, 0, sema.AccInvalid),
		data(1, 0, 0), acc(1, 0, sema.AccReadWrite),
		deliver(1, 0),
		write(1, 0, 1),
		acc(1, 0, sema.AccInvalid),
		deliver(1, 0),
	})
	if v == nil || v.Invariant != "no-lost-writes" {
		t.Fatalf("want no-lost-writes violation, got %v", v)
	}
}

func TestLatestAtHomeSurvives(t *testing.T) {
	// The writeback reaches home before the writer is invalidated: fine,
	// even though home's access mode is Invalid at end of run.
	v := feed(t, AllInvariants(), []obs.Event{
		acc(0, 0, sema.AccInvalid),
		data(1, 0, 0), acc(1, 0, sema.AccReadWrite),
		deliver(1, 0),
		write(1, 0, 1),
		data(0, 0, 1), // writeback payload lands at home
		acc(1, 0, sema.AccInvalid),
		deliver(0, 0),
	})
	if v != nil {
		t.Fatalf("writeback run flagged: %v", v)
	}
}

func TestSWMROnlySkipsDataChecks(t *testing.T) {
	v := feed(t, SWMROnly(), []obs.Event{
		data(1, 0, 0), acc(1, 0, sema.AccReadOnly),
		acc(0, 0, sema.AccReadOnly),
		deliver(1, 0),
		read(1, 0, 99), // wrong version: ignored without ReadLatest
	})
	if v != nil {
		t.Fatalf("SWMR-only run flagged: %v", v)
	}
}

func TestBufferedWritersExempt(t *testing.T) {
	// Buffered-mode writers coexisting with readers is the whole point of
	// weak ordering; SWMR must not flag it.
	v := feed(t, SWMROnly(), []obs.Event{
		acc(0, 0, sema.AccReadOnly),
		acc(1, 0, sema.AccBuffered),
		acc(2, 0, sema.AccBuffered),
		deliver(0, 0),
		write(1, 0, 1),
		write(2, 0, 2),
	})
	if v != nil {
		t.Fatalf("buffered run flagged: %v", v)
	}
}

func TestViolationContext(t *testing.T) {
	c := New(Config{Nodes: 3, Blocks: 2, Inv: AllInvariants()})
	evs := []obs.Event{
		acc(1, 0, sema.AccReadWrite),
		deliver(1, 0),
	}
	for _, ev := range evs {
		c.Emit(ev)
	}
	v := c.Finish()
	if v == nil {
		t.Fatal("no violation")
	}
	if len(v.Context) != 2 {
		t.Fatalf("context has %d events, want 2", len(v.Context))
	}
	if v.Context[0].Seq != 0 || v.Context[1].Seq != 1 {
		t.Fatalf("context seqs = %d,%d", v.Context[0].Seq, v.Context[1].Seq)
	}
	s := v.ContextString(obs.Names{})
	if !strings.Contains(s, "Access") || !strings.Contains(s, "ReadWrite") {
		t.Fatalf("context render:\n%s", s)
	}
	if !strings.Contains(v.Error(), "swmr") {
		t.Fatalf("error: %s", v.Error())
	}
}

func TestFirstViolationLatched(t *testing.T) {
	c := New(Config{Nodes: 3, Blocks: 2, Inv: AllInvariants()})
	c.Emit(acc(1, 0, sema.AccReadWrite))
	c.Emit(deliver(1, 0)) // first: swmr
	c.Emit(read(2, 1, 5)) // would be another violation
	v := c.Finish()
	if v == nil || v.Invariant != "swmr" || v.Seq != 1 {
		t.Fatalf("latched violation = %+v", v)
	}
}

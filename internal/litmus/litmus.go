// Package litmus is the cross-substrate litmus-test harness: it parses a
// tiny workload DSL (.lit files — per-node scripts of gets, puts, and
// compare-and-swaps over named blocks, plus expected / allowed / forbidden
// final-state conditions), runs each test differentially under the
// simulator (seeded stochastic schedules), the fuzzer (recorded schedule
// search with delta-debugged reproducers), and the model checker
// (exhaustive outcome enumeration via the scripted-client plane), and
// diffs the three outcome sets.
//
// An outcome is the test's terminal observation: every value a get or CAS
// observed (the register file, in per-node program order) plus the final
// value of every named block. The checker enumerates the complete
// reachable outcome set, so it is the reference: any outcome the
// simulator or fuzzer produced that the checker never reached is a
// harness bug, while checker-only outcomes are the expected coverage gap
// of sampling. A condition names a subset of outcomes:
//
//   - forbid: no substrate may reach a satisfying outcome — one doing so
//     is a named coherence failure with a replayable counterexample
//     (checker trace via mc.ReplaySteps, fuzzer schedule via ddmin).
//   - allow: the checker must reach at least one satisfying outcome
//     (guards tests against being vacuously forbidden-free because the
//     interesting interleaving is unreachable).
//   - expect: every checker-reachable outcome must satisfy it.
//
// Values use the tempest packed-word data model (tempest.PackVal): each
// store creates a fresh global version with the stored 32-bit value
// packed in, so the monotone stale-discard rule orders data identically
// in all three substrates and the oracle judges them with one profile.
package litmus

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind classifies a scripted operation.
type OpKind uint8

// Scripted operations.
const (
	Get OpKind = iota // load; observed value lands in a named register
	Put               // store of Val
	CAS               // compare-and-swap: observe, store Val if observed == Expect
)

func (k OpKind) String() string {
	switch k {
	case Get:
		return "get"
	case Put:
		return "put"
	case CAS:
		return "cas"
	}
	return "op?"
}

// Op is one scripted operation. Block indexes Test.Blocks; Reg names the
// register a Get or CAS observation lands in (the parser guarantees every
// observing op has one, unique across the test).
type Op struct {
	Kind   OpKind
	Block  int
	Val    int64  // Put/CAS store value (1..2^31-1)
	Expect int64  // CAS comparison value (0..2^31-1)
	Reg    string // Get/CAS destination register
}

func (o Op) String() string {
	switch o.Kind {
	case Get:
		return fmt.Sprintf("get blk%d -> %s", o.Block, o.Reg)
	case Put:
		return fmt.Sprintf("put blk%d %d", o.Block, o.Val)
	case CAS:
		return fmt.Sprintf("cas blk%d %d %d -> %s", o.Block, o.Expect, o.Val, o.Reg)
	}
	return "op?"
}

// Sense is a condition's polarity.
type Sense uint8

// Condition senses.
const (
	Forbid Sense = iota // no reachable outcome may satisfy
	Allow               // the checker must reach a satisfying outcome
	Expect              // every checker-reachable outcome must satisfy
)

func (s Sense) String() string {
	switch s {
	case Forbid:
		return "forbid"
	case Allow:
		return "allow"
	case Expect:
		return "expect"
	}
	return "sense?"
}

// Clause is one conjunct of a condition: register Reg (when IsReg) or
// block Block has final value Val.
type Clause struct {
	IsReg bool
	Reg   string // register name (IsReg)
	Block int    // block index (!IsReg)
	Val   int64
}

// Cond is a named final-state condition: the conjunction of its clauses.
type Cond struct {
	Sense   Sense
	Name    string
	Clauses []Clause
}

// String renders the condition in DSL syntax.
func (c Cond) String(blocks []string) string {
	parts := make([]string, len(c.Clauses))
	for i, cl := range c.Clauses {
		name := cl.Reg
		if !cl.IsReg {
			name = blocks[cl.Block]
		}
		parts[i] = fmt.Sprintf("%s=%d", name, cl.Val)
	}
	return fmt.Sprintf("%s %s: %s", c.Sense, c.Name, strings.Join(parts, " & "))
}

// Test is one parsed litmus test.
type Test struct {
	Name   string
	Proto  string   // bundled-protocol registry name
	Nodes  int      // machine size (>= number of scripted nodes)
	Blocks []string // block names, declaration order = block index
	Net    string   // netmodel flag syntax ("" = perfect network)
	Init   []int64  // initial value per block (0 = uninitialized)
	Progs  [][]Op   // per-node scripts (index = node id)
	Conds  []Cond
	// MustFail marks a negative-path corpus entry: running the test is
	// expected to fail with this class ("violation", "error", or
	// "forbidden:<name>"). The harness still just runs the test; suites
	// assert the failure matches.
	MustFail string
	Path     string // source file (diagnostics)
}

// BlockIndex resolves a block name (-1 when unknown).
func (t *Test) BlockIndex(name string) int {
	for i, b := range t.Blocks {
		if b == name {
			return i
		}
	}
	return -1
}

// Regs returns the test's register names in canonical order: node order,
// then program order within the node — the order outcome keys list them.
func (t *Test) Regs() []string {
	var regs []string
	for _, prog := range t.Progs {
		for _, op := range prog {
			if op.Reg != "" {
				regs = append(regs, op.Reg)
			}
		}
	}
	return regs
}

// obsCount returns the number of observing ops (gets and CASes) in node
// n's script — the register-file length a clean run must produce.
func (t *Test) obsCount(n int) int {
	if n >= len(t.Progs) {
		return 0
	}
	c := 0
	for _, op := range t.Progs[n] {
		if op.Reg != "" {
			c++
		}
	}
	return c
}

// validate checks cross-references after parsing.
func (t *Test) validate() error {
	if t.Name == "" {
		return fmt.Errorf("missing litmus header")
	}
	if t.Proto == "" {
		return fmt.Errorf("missing proto")
	}
	if len(t.Blocks) == 0 {
		return fmt.Errorf("missing blocks")
	}
	if len(t.Progs) == 0 {
		return fmt.Errorf("no node scripts")
	}
	if t.Nodes < len(t.Progs) {
		return fmt.Errorf("nodes %d < %d scripted nodes", t.Nodes, len(t.Progs))
	}
	seen := map[string]bool{}
	for _, r := range t.Regs() {
		if seen[r] {
			return fmt.Errorf("register %s observed twice", r)
		}
		seen[r] = true
	}
	for _, b := range t.Blocks {
		if seen[b] {
			return fmt.Errorf("block %s shadows a register", b)
		}
	}
	condNames := map[string]bool{}
	for _, c := range t.Conds {
		if condNames[c.Name] {
			return fmt.Errorf("condition %s declared twice", c.Name)
		}
		condNames[c.Name] = true
		for _, cl := range c.Clauses {
			if cl.IsReg && !seen[cl.Reg] {
				return fmt.Errorf("condition %s references unknown register %s", c.Name, cl.Reg)
			}
		}
	}
	return nil
}

// Outcome is one terminal observation: every observed value (the register
// file, unpacked, in canonical register order) and every block's final
// value (unpacked, in declaration order).
type Outcome struct {
	Regs []int64
	Mem  []int64
}

// Key renders the outcome's canonical string form, e.g.
// "r0=1 r1=0 | x=1 y=2". Keys are the identity outcome sets diff by.
func (t *Test) Key(o Outcome) string {
	var b strings.Builder
	for i, r := range t.Regs() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", r, o.Regs[i])
	}
	b.WriteString(" | ")
	for i, name := range t.Blocks {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, o.Mem[i])
	}
	return b.String()
}

// Satisfies reports whether the outcome satisfies the condition (the
// conjunction of its clauses).
func (t *Test) Satisfies(o Outcome, c Cond) bool {
	regIdx := map[string]int{}
	for i, r := range t.Regs() {
		regIdx[r] = i
	}
	for _, cl := range c.Clauses {
		if cl.IsReg {
			if o.Regs[regIdx[cl.Reg]] != cl.Val {
				return false
			}
		} else if o.Mem[cl.Block] != cl.Val {
			return false
		}
	}
	return true
}

// ForbiddenBy returns the name of the first forbid condition the outcome
// satisfies ("" when none).
func (t *Test) ForbiddenBy(o Outcome) string {
	for _, c := range t.Conds {
		if c.Sense == Forbid && t.Satisfies(o, c) {
			return c.Name
		}
	}
	return ""
}

// SortedKeys renders an outcome set as sorted canonical keys.
func (t *Test) SortedKeys(set map[string]Outcome) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Package runtime executes compiled Teapot protocols: it owns per-block
// protocol state on one node, dispatches protocol events (access faults and
// incoming messages) to handlers, implements the Suspend/Resume and
// deferred-queue disciplines, and routes Tempest-style effects to the
// machine substrate (the simulator or the model checker).
package runtime

import (
	"fmt"

	"teapot/internal/cont"
	"teapot/internal/ir"
	"teapot/internal/obs"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

// Message is a protocol message (or a locally generated protocol event such
// as an access fault, which the paper also treats as a protocol event
// dispatched through the same automaton).
type Message struct {
	Tag     int // message index in the protocol
	ID      int // block the message concerns
	Src     int // sending node
	Payload []vm.Value
	Data    bool // message carries the block's data

	// Val is the modeled data value a data-carrying message transports
	// (stamped by machines that model block contents — the Tempest machine
	// under sim.Config.ObsMemory, and the checker's World when a scripted
	// litmus client is attached). Never read by protocol code, but part of
	// the canonical encoding: two checker states whose in-flight data
	// messages carry different values are different states.
	Val int64

	// flow correlates a Send event with the Deliver of the same message in
	// an observability trace. Assigned only while a sink is attached; not
	// part of the canonical encoding.
	flow int64
}

// Flow returns the message's observability flow id (0 when no sink was
// attached at send time). Machines that inject network faults use it to
// emit Drop/Dup events that correlate with the original Send.
func (m *Message) Flow() int64 { return m.flow }

// Protocol is a compiled protocol plus execution options, shared by all
// engines (one per node).
type Protocol struct {
	IR   *ir.Program
	Opts cont.Options

	// Initial states for blocks on their home node and elsewhere.
	HomeStart  int
	CacheStart int
}

// Sema returns the semantic model.
func (p *Protocol) Sema() *sema.Program { return p.IR.Sema }

// MsgIndex resolves a message name, or -1.
func (p *Protocol) MsgIndex(name string) int {
	if m := p.IR.Sema.MessageByName(name); m != nil {
		return m.Index
	}
	return -1
}

// StateIndex resolves a state name, or -1.
func (p *Protocol) StateIndex(name string) int {
	if s := p.IR.Sema.StateByName(name); s != nil {
		return s.Index
	}
	return -1
}

// Machine is the substrate an engine runs against.
type Machine interface {
	// Send transmits a message from this node.
	Send(from int, dst int, m *Message)
	// AccessChange updates fine-grain access control for (node, block).
	AccessChange(node, id int, mode sema.AccessMode)
	// RecvData installs the current message's data into local memory.
	RecvData(node, id int, mode sema.AccessMode)
	// WakeUp unstalls the processor waiting on block id.
	WakeUp(node, id int)
	// HomeNode returns the home node of a block.
	HomeNode(id int) int
	// Print emits protocol debug output.
	Print(node int, s string)
}

// TimeoutArmer is the optional machine extension behind runtime timeouts.
// A protocol opts into timeout recovery by declaring a TIMEOUT message and
// handling it explicitly in the states that wait on droppable replies; the
// engine then keeps a per-block timer armed exactly while the block sits in
// such a state. When the timer fires, the machine delivers TIMEOUT as an
// ordinary protocol event — the handler dispatch, VM, and continuation
// machinery are untouched. Machines that never lose messages (the model
// checker's World injects timeouts itself, nondeterministically) simply
// don't implement the interface.
type TimeoutArmer interface {
	// ArmTimeout (re)starts the timer for (node, block); a later Arm or
	// Cancel supersedes it.
	ArmTimeout(node, id int)
	// CancelTimeout invalidates any pending timer for (node, block).
	CancelTimeout(node, id int)
}

// DataMachine is the optional machine extension for substrates that model
// block *contents*, not just access modes. When the machine implements it,
// the engine routes RecvData through RecvDataMsg with the actual message so
// the machine can install the transported data version — the plain
// Machine.RecvData signature cannot see which message is being processed
// (a deferred-queue drain makes "the current message" engine-internal
// state). Implementations must apply the same access-mode change
// Machine.RecvData would.
type DataMachine interface {
	RecvDataMsg(node, id int, mode sema.AccessMode, m *Message)
}

// Support supplies the implementations of module routines and abstract
// constants. Implementations keep their own per-(node, block) data.
type Support interface {
	// Call invokes routine name. args are by-reference; var parameters may
	// be mutated in place.
	Call(ctx *Ctx, name string, args []*vm.Value) (vm.Value, error)
	// ModConst resolves an abstract module constant.
	ModConst(ctx *Ctx, name string) vm.Value
}

// Ctx is passed to support routines: which engine, block, and message are
// currently being processed.
type Ctx struct {
	Engine *Engine
	Block  *Block
	Msg    *Message
}

// Block is the per-block protocol state on one node.
type Block struct {
	ID       int
	State    *vm.StateVal
	Vars     []vm.Value
	Deferred []*Message

	transitioned bool
}

// StateName returns the block's current state name.
func (b *Block) StateName(p *Protocol) string {
	return p.IR.Sema.States[b.State.State].Name
}

// ProtocolError is a protocol-level failure (the Error builtin, an
// unhandled message, a runaway handler); the model checker treats it as an
// invariant violation.
type ProtocolError struct {
	Node  int
	Block int
	State string
	Msg   string
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("protocol error on node %d, block %d (state %s): %s", e.Node, e.Block, e.State, e.Msg)
}

// Engine executes one node's share of the protocol.
type Engine struct {
	Proto   *Protocol
	Node    int
	Machine Machine
	Support Support
	Exec    vm.Exec

	Blocks []*Block

	// QueueRecords counts deferred-queue record allocations (included in
	// the paper's Table 1/2 "Allocs" columns alongside continuations).
	QueueRecords int64
	// Sends counts messages sent by this engine (for cost accounting).
	Sends int64

	// cur is the in-flight dispatch context.
	cur struct {
		msg   *Message
		block *Block
		enq   bool // current message was enqueued
		drop  bool
	}

	// obs is the optional event sink (see SetObs). Every emission below is
	// guarded by one nil check so the hot path is untouched when tracing is
	// off; BenchmarkEngineDispatch asserts this costs nothing measurable.
	obs     obs.Sink
	flowSeq int64

	// timeoutTag is the protocol's TIMEOUT message index (-1 when the
	// protocol declares none) and armer the machine's timer extension (nil
	// when the machine has no timers). Both nil-ish states make the timer
	// hook in Deliver a no-op.
	timeoutTag int
	armer      TimeoutArmer
	// timerFor[id] is the state the block's timer was armed in (-1 =
	// unarmed). The timer is armed on *entry* into a TIMEOUT-declaring
	// state and re-armed after a TIMEOUT fires — never reset by other
	// deliveries, or a steady drip of incoming retries (each under the
	// timeout interval apart) would postpone recovery forever.
	timerFor []int32

	// dataMachine is the machine's optional data-modeling extension (see
	// DataMachine); nil when the machine tracks access modes only.
	dataMachine DataMachine
}

// NewEngine builds an engine for a node managing numBlocks blocks.
func NewEngine(p *Protocol, node, numBlocks int, m Machine, sup Support) *Engine {
	e := &Engine{Proto: p, Node: node, Machine: m, Support: sup}
	e.Exec = vm.Exec{Prog: p.IR, ConstCont: p.Opts.ConstCont}
	e.timeoutTag = p.MsgIndex("TIMEOUT")
	if e.timeoutTag >= 0 {
		e.armer, _ = m.(TimeoutArmer)
	}
	if e.armer != nil {
		e.timerFor = make([]int32, numBlocks)
		for i := range e.timerFor {
			e.timerFor[i] = -1
		}
	}
	e.dataMachine, _ = m.(DataMachine)
	e.Blocks = make([]*Block, numBlocks)
	for i := range e.Blocks {
		e.Blocks[i] = e.newBlock(i)
	}
	return e
}

func (e *Engine) newBlock(id int) *Block {
	start := e.Proto.CacheStart
	if e.Machine.HomeNode(id) == e.Node {
		start = e.Proto.HomeStart
	}
	b := &Block{
		ID:    id,
		State: &vm.StateVal{State: start},
		Vars:  make([]vm.Value, len(e.Proto.IR.Sema.ProtVars)),
	}
	for i, v := range e.Proto.IR.Sema.ProtVars {
		b.Vars[i] = zeroValue(v.Type)
	}
	return b
}

func zeroValue(t sema.Type) vm.Value {
	switch t.Kind {
	case sema.TInt:
		return vm.IntVal(0)
	case sema.TBool:
		return vm.BoolVal(false)
	case sema.TNode:
		return vm.NodeVal(-1)
	case sema.TID:
		return vm.IDVal(-1)
	case sema.TMsg:
		return vm.MsgVal(-1)
	case sema.TAccess:
		return vm.AccessVal(0)
	case sema.TState, sema.TCont, sema.TAbstract:
		return vm.Value{} // nil until assigned
	}
	return vm.Value{}
}

// Counters exposes accumulated VM counters.
func (e *Engine) Counters() vm.Counters { return e.Exec.Counters }

// Deliver dispatches a message to its block's current state, then drains
// the block's deferred queue as long as transitions keep occurring (the
// queued-unexpected-messages discipline from §2/§3: deferred messages are
// retried after a transition out of the state).
func (e *Engine) Deliver(m *Message) error {
	b := e.Blocks[m.ID]
	if e.obs != nil {
		e.obs.Emit(obs.Event{Kind: obs.KindDeliver, Node: int32(e.Node), Block: int32(b.ID),
			State: int32(b.State.State), Msg: int32(m.Tag), Peer: int32(m.Src), Flow: m.flow})
	}
	b.transitioned = false // retries are triggered by *this* delivery's transitions
	if err := e.dispatch(b, m); err != nil {
		return err
	}
	if err := e.drain(b); err != nil {
		return err
	}
	e.updateTimer(b, m.Tag == e.timeoutTag)
	return nil
}

// updateTimer keeps the machine's per-block timer in sync with the block's
// state after a completed delivery: armed while the state declares an
// explicit TIMEOUT handler (DEFAULT does not count — a defaulted TIMEOUT
// would hit the state's Enqueue/Error policy, which is never what a timer
// means). The timer is (re)armed only on entry into such a state, or after
// a TIMEOUT fired while remaining in one — an ordinary delivery that leaves
// the state unchanged must not reset it, or a steady drip of peer retries
// would postpone the timeout forever (the checker's nondeterministic
// TIMEOUT has no such starvation, and the simulator must not either).
// No-op unless both the protocol declares TIMEOUT and the machine
// implements TimeoutArmer.
func (e *Engine) updateTimer(b *Block, fired bool) {
	if e.armer == nil {
		return
	}
	state := int32(b.State.State)
	if _, ok := e.Proto.IR.HandlerFunc[b.State.State][e.timeoutTag]; ok {
		if e.timerFor[b.ID] != state || fired {
			e.armer.ArmTimeout(e.Node, b.ID)
			e.timerFor[b.ID] = state
		}
	} else if e.timerFor[b.ID] >= 0 {
		e.armer.CancelTimeout(e.Node, b.ID)
		e.timerFor[b.ID] = -1
	}
}

const maxDrainPasses = 10000

func (e *Engine) drain(b *Block) error {
	for pass := 0; b.transitioned && len(b.Deferred) > 0; pass++ {
		if pass > maxDrainPasses {
			return e.errf(b, "deferred queue never drained (livelock)")
		}
		b.transitioned = false
		q := b.Deferred
		b.Deferred = nil
		for i, m := range q {
			if e.obs != nil {
				e.obs.Emit(obs.Event{Kind: obs.KindDequeue, Node: int32(e.Node), Block: int32(b.ID),
					State: int32(b.State.State), Msg: int32(m.Tag), Peer: int32(m.Src),
					Arg: int64(len(q) - 1 - i)})
			}
			if err := e.dispatch(b, m); err != nil {
				return err
			}
			// If the handler transitioned, newer queue order still holds:
			// remaining messages stay in arrival order after any the
			// handler re-enqueued.
			_ = i
		}
	}
	return nil
}

func (e *Engine) dispatch(b *Block, m *Message) error {
	f := e.Proto.IR.FuncFor(b.State.State, m.Tag)
	if f == nil {
		return e.errf(b, "no handler for message %s in state %s",
			e.msgName(m.Tag), b.StateName(e.Proto))
	}
	prevMsg, prevBlock := e.cur.msg, e.cur.block
	e.cur.msg, e.cur.block = m, b
	defer func() { e.cur.msg, e.cur.block = prevMsg, prevBlock }()

	params := make([]vm.Value, 0, f.NumParams)
	params = append(params, vm.IDVal(m.ID), vm.InfoVal(b), vm.NodeVal(m.Src))
	params = append(params, m.Payload...)
	if len(params) != f.NumParams {
		return e.errf(b, "message %s delivered with %d payload values, handler %s expects %d",
			e.msgName(m.Tag), len(m.Payload), f.Name, f.NumParams-3)
	}
	if e.obs == nil {
		return e.Exec.RunHandler(e, f, b.State.Args, params)
	}
	e.obs.Emit(obs.Event{Kind: obs.KindHandlerEnter, Node: int32(e.Node), Block: int32(b.ID),
		State: int32(b.State.State), Msg: int32(m.Tag), Peer: int32(m.Src)})
	err := e.Exec.RunHandler(e, f, b.State.Args, params)
	e.obs.Emit(obs.Event{Kind: obs.KindHandlerExit, Node: int32(e.Node), Block: int32(b.ID),
		State: int32(b.State.State), Msg: int32(m.Tag), Peer: int32(m.Src)})
	return err
}

// InjectEvent synthesizes a locally generated protocol event (access fault,
// synchronization, phase boundary) as a message from this node.
func (e *Engine) InjectEvent(tag, id int, payload ...vm.Value) error {
	return e.Deliver(&Message{Tag: tag, ID: id, Src: e.Node, Payload: payload})
}

func (e *Engine) msgName(tag int) string {
	if tag >= 0 && tag < len(e.Proto.IR.Sema.Messages) {
		return e.Proto.IR.Sema.Messages[tag].Name
	}
	return fmt.Sprintf("msg%d", tag)
}

func (e *Engine) errf(b *Block, format string, args ...any) error {
	return &ProtocolError{
		Node:  e.Node,
		Block: b.ID,
		State: b.StateName(e.Proto),
		Msg:   fmt.Sprintf(format, args...),
	}
}

// ---- vm.Host implementation ----

var _ vm.Host = (*Engine)(nil)

// LoadVar implements vm.Host.
func (e *Engine) LoadVar(slot int) vm.Value { return e.cur.block.Vars[slot] }

// StoreVar implements vm.Host.
func (e *Engine) StoreVar(slot int, v vm.Value) { e.cur.block.Vars[slot] = v }

// ModConst implements vm.Host.
func (e *Engine) ModConst(slot int) vm.Value {
	name := e.Proto.IR.Sema.ModConsts[slot].Name
	return e.Support.ModConst(&Ctx{Engine: e, Block: e.cur.block, Msg: e.cur.msg}, name)
}

// MessageTag implements vm.Host.
func (e *Engine) MessageTag() vm.Value { return vm.MsgVal(e.cur.msg.Tag) }

// MessageSrc implements vm.Host.
func (e *Engine) MessageSrc() vm.Value { return vm.NodeVal(e.cur.msg.Src) }

// Send implements vm.Host.
func (e *Engine) Send(data bool, dst, tag, id vm.Value, payload []vm.Value) error {
	m := &Message{
		Tag:     int(tag.Int),
		ID:      int(id.Int),
		Src:     e.Node,
		Payload: payload,
		Data:    data,
	}
	e.Sends++
	if e.obs != nil {
		e.emitSend(m, int(dst.Int))
	}
	e.Machine.Send(e.Node, int(dst.Int), m)
	return nil
}

// SetState implements vm.Host: transition the current block. Every
// transition (including Suspend's implicit one and self-transitions) makes
// deferred messages eligible for retry.
func (e *Engine) SetState(sv *vm.StateVal) error {
	e.cur.block.State = sv
	e.cur.block.transitioned = true
	return nil
}

// Enqueue implements vm.Host: defer the current message.
func (e *Engine) Enqueue() error {
	e.cur.block.Deferred = append(e.cur.block.Deferred, e.cur.msg)
	e.QueueRecords++
	if e.obs != nil {
		e.obs.Emit(obs.Event{Kind: obs.KindEnqueue, Node: int32(e.Node), Block: int32(e.cur.block.ID),
			State: int32(e.cur.block.State.State), Msg: int32(e.cur.msg.Tag), Peer: int32(e.cur.msg.Src),
			Arg: int64(len(e.cur.block.Deferred))})
	}
	return nil
}

// Nack implements vm.Host: send a NACK back to the sender carrying the
// original tag. The protocol must declare a NACK message to use this.
func (e *Engine) Nack() error {
	nack := e.Proto.MsgIndex("NACK")
	if nack < 0 {
		return e.errf(e.cur.block, "Nack() on message %s: protocol declares no NACK message",
			e.msgName(e.cur.msg.Tag))
	}
	m := &Message{
		Tag:     nack,
		ID:      e.cur.msg.ID,
		Src:     e.Node,
		Payload: []vm.Value{vm.MsgVal(e.cur.msg.Tag)},
	}
	if e.obs != nil {
		e.obs.Emit(obs.Event{Kind: obs.KindNACK, Node: int32(e.Node), Block: int32(e.cur.block.ID),
			State: int32(e.cur.block.State.State), Msg: int32(e.cur.msg.Tag), Peer: int32(e.cur.msg.Src)})
		e.emitSend(m, e.cur.msg.Src)
	}
	e.Machine.Send(e.Node, e.cur.msg.Src, m)
	return nil
}

// Drop implements vm.Host: discard the current message.
func (e *Engine) Drop() error { return nil }

// WakeUp implements vm.Host.
func (e *Engine) WakeUp(id vm.Value) error {
	e.Machine.WakeUp(e.Node, int(id.Int))
	return nil
}

// AccessChange implements vm.Host.
func (e *Engine) AccessChange(id vm.Value, mode sema.AccessMode) error {
	e.Machine.AccessChange(e.Node, int(id.Int), mode)
	return nil
}

// RecvData implements vm.Host.
func (e *Engine) RecvData(id vm.Value, mode sema.AccessMode) error {
	if !e.cur.msg.Data {
		return e.errf(e.cur.block, "RecvData on message %s which carries no data", e.msgName(e.cur.msg.Tag))
	}
	if e.dataMachine != nil {
		e.dataMachine.RecvDataMsg(e.Node, int(id.Int), mode, e.cur.msg)
		return nil
	}
	e.Machine.RecvData(e.Node, int(id.Int), mode)
	return nil
}

// MyNode implements vm.Host.
func (e *Engine) MyNode() vm.Value { return vm.NodeVal(e.Node) }

// HomeNode implements vm.Host.
func (e *Engine) HomeNode(id vm.Value) vm.Value {
	return vm.NodeVal(e.Machine.HomeNode(int(id.Int)))
}

// BlockID implements vm.Host.
func (e *Engine) BlockID() vm.Value { return vm.IDVal(e.cur.block.ID) }

// BlockInfo implements vm.Host.
func (e *Engine) BlockInfo() vm.Value { return vm.InfoVal(e.cur.block) }

// CallSupport implements vm.Host.
func (e *Engine) CallSupport(name string, args []*vm.Value) (vm.Value, error) {
	return e.Support.Call(&Ctx{Engine: e, Block: e.cur.block, Msg: e.cur.msg}, name, args)
}

// ProtocolError implements vm.Host.
func (e *Engine) ProtocolError(msg string) error {
	return e.errf(e.cur.block, "%s", msg)
}

// Print implements vm.Host.
func (e *Engine) Print(s string) { e.Machine.Print(e.Node, s) }

package sim

import "teapot/internal/tempest"

// The four Table-1 workloads. Each reproduces the *sharing pattern* of the
// paper's benchmark (gauss, appbt, shallow, mp3d); the numerics are
// replaced by Compute operations. Blocks are homed round-robin (block b at
// node b % nodes), matching the runner's default.

// WorkloadSpec sizes a workload.
type WorkloadSpec struct {
	Nodes int
	Iters int
	Scale int // workload-specific size knob
	Seed  uint64
}

// Workload couples a trace with the block count it addresses.
type Workload struct {
	Name   string
	Blocks int
	Trace  *Trace
}

func compute(c int64) tempest.Op { return tempest.Op{Kind: tempest.OpCompute, Cycles: c} }
func read(b int) tempest.Op      { return tempest.Op{Kind: tempest.OpRead, Addr: b} }
func write(b int) tempest.Op     { return tempest.Op{Kind: tempest.OpWrite, Addr: b} }

// Gauss models Gaussian elimination: in iteration k the pivot row's owner
// updates it, then every node reads the pivot row (broadcast,
// producer-consumer sharing) and updates its own rows. This is the pattern
// §1 cites as expensive for invalidation protocols.
func Gauss(spec WorkloadSpec) *Workload {
	rows := spec.Scale // one block per matrix row
	if rows == 0 {
		rows = 4 * spec.Nodes
	}
	ops := make([][]tempest.Op, spec.Nodes)
	for k := 0; k < rows-1 && k < spec.Iters*spec.Nodes; k++ {
		owner := k % spec.Nodes
		// The pivot owner normalizes the pivot row; the iteration barrier
		// (present in the real program's data dependences) separates the
		// production of the pivot row from its broadcast consumption.
		ops[owner] = append(ops[owner], read(k), compute(200), write(k), write(k))
		for n := 0; n < spec.Nodes; n++ {
			ops[n] = append(ops[n], barrier())
			// Everyone reads the pivot row and updates its own rows below k.
			ops[n] = append(ops[n], read(k), compute(60))
			for r := k + 1; r < rows; r++ {
				if r%spec.Nodes == n {
					ops[n] = append(ops[n], read(r), compute(40), write(r))
				}
			}
			ops[n] = append(ops[n], barrier())
		}
	}
	return &Workload{Name: "gauss", Blocks: rows, Trace: NewTrace(ops)}
}

// Appbt models the NAS BT kernel: a 3-D block decomposition where each
// iteration writes the node's own sub-blocks and reads face blocks from
// six neighbors (nearest-neighbor sharing).
func Appbt(spec WorkloadSpec) *Workload {
	per := spec.Scale // blocks per node
	if per < 5 {
		per = 6
	}
	blocks := per * spec.Nodes
	ops := make([][]tempest.Op, spec.Nodes)
	neighbor := func(n, d int) int { return ((n+d)%spec.Nodes + spec.Nodes) % spec.Nodes }
	for it := 0; it < spec.Iters; it++ {
		for n := 0; n < spec.Nodes; n++ {
			// Read one face block from each of six 3-D neighbors.
			for _, d := range []int{1, -1, 2, -2, 4, -4} {
				nb := neighbor(n, d)
				face := nb*per + (it+d+per)%per
				if face < 0 {
					face += blocks
				}
				ops[n] = append(ops[n], read(face%blocks), compute(80))
			}
			// Update own blocks.
			for b := 0; b < per; b++ {
				blk := n*per + b
				ops[n] = append(ops[n], read(blk), compute(150), write(blk))
			}
		}
	}
	w := &Workload{Name: "appbt", Blocks: blocks, Trace: NewTrace(ops)}
	return remapBlocks(w, spec.Nodes, per)
}

// Shallow models the shallow-water stencil: each node owns a band of rows
// and per iteration reads the adjacent boundary rows of its north and
// south neighbors, then rewrites its own band.
func Shallow(spec WorkloadSpec) *Workload {
	band := spec.Scale // rows per node
	if band == 0 {
		band = 8
	}
	blocks := band * spec.Nodes
	ops := make([][]tempest.Op, spec.Nodes)
	for it := 0; it < spec.Iters; it++ {
		for n := 0; n < spec.Nodes; n++ {
			north := ((n-1+spec.Nodes)%spec.Nodes)*band + band - 1
			south := ((n + 1) % spec.Nodes) * band
			ops[n] = append(ops[n], read(north), read(south), compute(120))
			for r := 0; r < band; r++ {
				row := n*band + r
				ops[n] = append(ops[n], read(row), compute(50), write(row))
			}
		}
	}
	w := &Workload{Name: "shallow", Blocks: blocks, Trace: NewTrace(ops)}
	return remapBlocks(w, spec.Nodes, band)
}

// Mp3d models the MP3D particle code: migratory read-modify-write of
// pseudo-randomly chosen space cells, the pattern that stresses ownership
// migration (and the protocol's Excl-to-Excl transitions).
func Mp3d(spec WorkloadSpec) *Workload {
	cells := spec.Scale
	if cells == 0 {
		cells = 3 * spec.Nodes
	}
	r := newRNG(spec.Seed | 1)
	ops := make([][]tempest.Op, spec.Nodes)
	for it := 0; it < spec.Iters; it++ {
		for n := 0; n < spec.Nodes; n++ {
			for p := 0; p < 8; p++ {
				cell := r.intn(cells)
				ops[n] = append(ops[n], read(cell), compute(30), write(cell), compute(90))
			}
		}
	}
	return &Workload{Name: "mp3d", Blocks: cells, Trace: NewTrace(ops)}
}

// remapBlocks renumbers "node n owns blocks [n*per, n*per+per)" into the
// runner's round-robin homing (block b homed at b % nodes) so a node's own
// blocks really are homed at it.
func remapBlocks(w *Workload, nodes, per int) *Workload {
	// block n*per+b  ->  b*nodes + n
	for _, ops := range w.Trace.Ops {
		for i := range ops {
			op := &ops[i]
			if op.Kind == tempest.OpRead || op.Kind == tempest.OpWrite || op.Kind == tempest.OpEvict {
				n := op.Addr / per
				b := op.Addr % per
				op.Addr = b*nodes + n
			}
		}
	}
	return w
}

// Table1Workloads builds the four Stache benchmarks at the given machine
// size.
func Table1Workloads(nodes, iters int) []*Workload {
	return []*Workload{
		Gauss(WorkloadSpec{Nodes: nodes, Iters: iters, Seed: 11}),
		Appbt(WorkloadSpec{Nodes: nodes, Iters: iters, Seed: 22}),
		Shallow(WorkloadSpec{Nodes: nodes, Iters: iters, Seed: 33}),
		Mp3d(WorkloadSpec{Nodes: nodes, Iters: iters * 4, Seed: 44}),
	}
}

// ProdCons is the §1 producer-consumer pattern in its pure form: one
// producer repeatedly updates a block that a set of consumers re-reads
// every round. Under an invalidation protocol each round costs the
// producer an invalidation/ack pair per consumer plus a re-request/response
// pair per consumer ("up to four protocol messages for a small data
// transfer"); under a write-update protocol it costs one UPDATE per
// consumer.
func ProdCons(spec WorkloadSpec) *Workload {
	ops := make([][]tempest.Op, spec.Nodes)
	for it := 0; it < spec.Iters; it++ {
		for n := 0; n < spec.Nodes; n++ {
			ops[n] = append(ops[n], barrier())
			if n == 0 {
				ops[n] = append(ops[n], compute(50), write(0))
			}
			ops[n] = append(ops[n], barrier())
			if n != 0 {
				ops[n] = append(ops[n], read(0), compute(30))
			}
		}
	}
	return &Workload{Name: "prodcons", Blocks: 1, Trace: NewTrace(ops)}
}

// LCM-phases: run the same phase-structured stencil workload under the
// general-purpose Stache protocol and under LCM, the paper's custom
// protocol for copy-in/copy-out parallel loops — showing why one would
// bother writing a custom protocol at all (§1: "Custom protocols have been
// used to achieve message-passing performance").
//
//	go run ./examples/lcm-phases
package main

import (
	"fmt"
	"log"

	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

func main() {
	const nodes = 16
	const iters = 4

	// An unstructured sweep with a small, heavily shared cell set: the
	// access pattern that makes invalidation protocols thrash (every
	// write invalidates and recalls) and that LCM was designed for.
	mkWorkload := func() *sim.Workload {
		return sim.Unstruct(sim.WorkloadSpec{Nodes: nodes, Iters: iters, Seed: 1, Scale: 8})
	}

	runWith := func(name string, p *runtime.Protocol, sup runtime.Support) *tempest.Stats {
		w := mkWorkload()
		stats, err := sim.Run(sim.Config{
			Nodes: nodes, Blocks: w.Blocks,
			Cost: tempest.DefaultCost, Tags: tempest.ResolveTags(p),
			MakeEngine: func(m runtime.Machine) tempest.Engine {
				return tempest.NewTeapotEngine(p, nodes, w.Blocks, m, sup)
			},
			Program: w.Trace,
		})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		return stats
	}

	st := stache.MustCompile(true).Protocol
	stacheStats := runWith("stache", st, stache.MustSupport(st))

	lc := lcm.MustCompile(lcm.Base, true).Protocol
	lcmStats := runWith("lcm", lc, lcm.MustSupport(lc, nodes))

	fmt.Printf("unstructured sweep on %d nodes, %d phases, 8 shared cells:\n\n", nodes, iters)
	fmt.Printf("%-22s %14s %10s %10s %12s\n", "protocol", "cycles", "faults", "messages", "fault time")
	show := func(name string, s *tempest.Stats) {
		fmt.Printf("%-22s %14d %10d %10d %11.0f%%\n", name, s.Cycles, s.Faults, s.Messages,
			100*float64(s.FaultTime)/float64(s.Cycles*int64(nodes)))
	}
	show("Stache (invalidation)", stacheStats)
	show("LCM (phase copies)", lcmStats)

	fmt.Printf("\nLCM avoids the per-write invalidation storms: %.1f%% fewer faults,\n",
		100*float64(stacheStats.Faults-lcmStats.Faults)/float64(stacheStats.Faults))
	if lcmStats.Cycles < stacheStats.Cycles {
		fmt.Printf("and runs the phase workload %.1f%% faster.\n",
			100*float64(stacheStats.Cycles-lcmStats.Cycles)/float64(stacheStats.Cycles))
	} else {
		fmt.Printf("at %.1f%% the execution time of Stache on this configuration.\n",
			100*float64(lcmStats.Cycles)/float64(stacheStats.Cycles))
	}
}

package dot_test

import (
	"strings"
	"testing"

	"teapot/internal/dot"
	"teapot/internal/protocols/stache"
)

func TestFigure1NonHomeIdealized(t *testing.T) {
	a := stache.MustCompile(true)
	m := dot.Extract(a.IR, dot.Options{Prefix: "Cache_", IncludeTransient: false})
	// Figure 1's idealized non-home machine: Invalid, Readable, Writable.
	want := map[string]bool{"Cache_Inv": true, "Cache_RO": true, "Cache_RW": true}
	for _, s := range m.States {
		if !want[s] {
			t.Errorf("unexpected state %q in idealized non-home machine", s)
		}
		delete(want, s)
	}
	for s := range want {
		t.Errorf("missing state %q", s)
	}
	// Read fault takes Invalid to Readable (through the contracted
	// transient).
	found := false
	for _, e := range m.Edges {
		if e.From == "Cache_Inv" && e.To == "Cache_RO" && e.Label == "RD_FAULT" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing Inv --RD_FAULT--> RO edge; edges: %v", m.Edges)
	}
}

func TestFigure2HomeIdealized(t *testing.T) {
	a := stache.MustCompile(true)
	m := dot.Extract(a.IR, dot.Options{Prefix: "Home_", IncludeTransient: false})
	// Figure 2: Idle, ReadShared, Exclusive.
	if len(m.States) != 3 {
		t.Errorf("idealized home machine has %d states, want 3 (%v)", len(m.States), m.States)
	}
}

func TestFigure4HomeWithIntermediates(t *testing.T) {
	a := stache.MustCompile(true)
	ideal := dot.Count(a.IR, dot.Options{Prefix: "Home_", IncludeTransient: false})
	full := dot.Count(a.IR, dot.Options{Prefix: "Home_", IncludeTransient: true})
	if full.States <= ideal.States {
		t.Errorf("intermediate states did not grow the machine: %d vs %d", full.States, ideal.States)
	}
	t.Logf("home machine: %d conceptual states -> %d with intermediates (paper: 3 -> 8)",
		ideal.States, full.States)
}

func TestRenderDOT(t *testing.T) {
	a := stache.MustCompile(true)
	m := dot.Extract(a.IR, dot.Options{Prefix: "Cache_", IncludeTransient: true})
	out := dot.Render(m, "stache-cache")
	for _, want := range []string{"digraph", "rankdir=LR", "Cache_Inv", "->", "style=dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	if out != dot.Render(m, "stache-cache") {
		t.Error("rendering not deterministic")
	}
}

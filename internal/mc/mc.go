// Package mc is a Murphi-style explicit-state model checker for compiled
// Teapot protocols (§7 of the paper). It explores, breadth-first, every
// interleaving of message deliveries (with bounded network reordering) and
// nondeterministically generated processor events, checking:
//
//   - no protocol errors (the Error builtin, unhandled messages, runaway
//     handlers) — the paper's "does not receive a message that is not
//     anticipated in a given state";
//   - no deadlock (a processor stalled with an empty network and no
//     deliverable messages);
//   - the single-writer/multiple-readers coherence invariant on the
//     fine-grain access-control state;
//   - bounded channels and deferred queues (a flood indicates livelock).
//
// Unlike the paper, which generates Murphi text and runs Dill et al.'s
// checker, this package explores the *same compiled IR* the simulator
// executes, so verified and executable protocols agree by construction.
// internal/murphi still renders Murphi source for the dual-target property.
package mc

import (
	"fmt"
	goruntime "runtime"
	"strings"
	"time"

	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

// Config parameterizes a verification run.
type Config struct {
	Proto   *runtime.Protocol
	Support runtime.Support
	Codec   runtime.AbstractCodec // nil unless the protocol snapshots abstract values

	Nodes  int
	Blocks int
	HomeOf func(id int) int // default: id % Nodes

	// Net is the network fault model. The checker explores its faults
	// nondeterministically: every in-flight message is a drop / duplicate /
	// corrupt candidate while the corresponding budget lasts, and delivery
	// may overtake up to Net.EffectiveReorder() earlier messages. The spent
	// budgets are part of the canonical state, so exploration stays finite
	// and deterministic for any worker count.
	Net netmodel.Model

	// Reorder bounds network reordering: a delivery may overtake at most
	// Reorder earlier messages in its channel (0 = in-order, the paper
	// verified with "1 reordering max").
	//
	// Deprecated: this is an alias for Net.Reorder, kept for one release so
	// existing callers compile. normalize merges the two (the larger wins).
	Reorder int

	Events EventGen

	// Client, when non-nil, attaches a scripted litmus workload: each node
	// runs its Client program as enumerated client actions (see client.go)
	// instead of — or alongside — Events-generated processor events. Client
	// state (program counters, observed values, block contents) joins the
	// canonical encoding, so two worlds whose clients have diverged are
	// distinct states.
	Client *Client

	// Terminal, when non-nil (requires Client), is called on every state
	// where all scripts have finished, no processor is stalled, and the
	// network is drained. A non-empty return is reported as a violation of
	// kind "litmus" with the returned message and the trace leading to the
	// terminal state — the hook litmus harnesses judge forbidden final
	// states with. With Workers > 1 it must be safe for concurrent use.
	Terminal func(*World) string

	MaxStates  int // 0 = unlimited
	ChannelCap int // default 12
	QueueCap   int // default 8

	// Workers is the number of goroutines expanding each BFS layer
	// (0 = GOMAXPROCS). Results are identical for any worker count; see
	// Check. With Workers > 1, Support and Events implementations must be
	// safe for concurrent use (the bundled protocol modules are).
	Workers int

	CheckCoherence bool

	// Symmetry selects certificate-gated symmetry reduction: canonicalize
	// every successor to the lexicographically smallest member of its orbit
	// under the admissible node/block permutation group before visited-set
	// lookup. SymmetryOff (the zero value) explores the full state space;
	// SymmetryAuto enables reduction when the static prover certifies the
	// protocol and the support/event modules vouch for their routines
	// (falling back to Off, with the reason in Result.SymmetryNote);
	// SymmetryOn makes any refusal a hard error naming the first witness.
	// Verdicts are identical either way — only the state count shrinks.
	Symmetry SymmetryMode

	// Progress, when non-nil, is invoked from the driver goroutine at every
	// layer barrier with a snapshot of the exploration. It must not call
	// back into the checker. Installing it never changes what the run
	// computes: every Result figure stays bit-identical.
	Progress func(ProgressInfo)

	// Coverage, when non-nil, accumulates the dispatch / transition /
	// fault-action coverage of the exploration (see obs.Coverage). An
	// exhaustive run defines the 100% dynamic reference for the coverage
	// plane: every enabled action of every reachable state is applied
	// exactly once, so the accumulated sets are identical for any worker
	// count (workers accumulate privately and merge at layer barriers).
	// Installing it never changes what the run computes.
	Coverage *obs.Coverage

	// Obs, when non-nil, is attached to the engines of worlds built by
	// InitialWorld and ReplaySteps, and the World-level fault actions
	// (drop, dup) emit the same Drop/Dup events the simulator's machine
	// emits — so a counterexample replay produces the event stream a live
	// run of the same schedule would, and the oracle or a Coverage sink
	// judges replayed traces identically. Check ignores it: exploration
	// never attaches sinks to the worlds it expands.
	Obs obs.Sink

	// Resolved by normalize: message tags for the TIMEOUT pseudo-message and
	// NACK (-1 when the protocol does not declare them).
	timeoutTag int
	nackTag    int
}

// ProgressInfo is one layer-barrier snapshot handed to Config.Progress.
// All fields except Elapsed are deterministic.
type ProgressInfo struct {
	Depth       int           // BFS depth just expanded
	Frontier    int           // states discovered for the next layer
	States      int           // visited states committed so far
	Transitions int64         // transitions taken so far
	Elapsed     time.Duration // wall time since Check started
	// VisitedBytes approximates the retained size of the visited set
	// (canonical keys plus per-state bookkeeping).
	VisitedBytes int64
	// ShardMin and ShardMax are the smallest and largest committed-state
	// counts over the visited table's shards — a fingerprint-balance
	// indicator (ShardMax >> ShardMin means the hash is clumping). When
	// symmetry reduction is active these count post-canonicalization
	// fingerprints: each shard holds canonical orbit representatives, so the
	// balance read-out describes the reduced space actually stored.
	ShardMin, ShardMax int64
	// SymmetryGroup is the order of the permutation group the run reduces
	// by (1 when reduction is off or trivial).
	SymmetryGroup int
}

// StatesPerSec returns the average exploration rate so far.
func (p ProgressInfo) StatesPerSec() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return float64(p.States) / p.Elapsed.Seconds()
}

// DedupRatio returns transitions per committed state — how many arrows hit
// states that were already visited (1.0 means no sharing in the graph).
func (p ProgressInfo) DedupRatio() float64 {
	if p.States == 0 {
		return 0
	}
	return float64(p.Transitions) / float64(p.States)
}

// normalize fills configuration defaults in place.
func (cfg *Config) normalize() {
	if cfg.HomeOf == nil {
		nodes := cfg.Nodes
		cfg.HomeOf = func(id int) int { return id % nodes }
	}
	// Merge the deprecated Reorder alias into the fault model (larger wins),
	// then keep the alias in sync so old readers see the effective value.
	if cfg.Reorder > cfg.Net.Reorder {
		cfg.Net.Reorder = cfg.Reorder
	}
	cfg.Reorder = cfg.Net.Reorder
	cfg.timeoutTag = -1
	cfg.nackTag = -1
	if cfg.Proto != nil {
		cfg.timeoutTag = cfg.Proto.MsgIndex("TIMEOUT")
		cfg.nackTag = cfg.Proto.MsgIndex("NACK")
	}
	if cfg.ChannelCap == 0 {
		cfg.ChannelCap = 12
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 8
	}
	if cfg.Workers <= 0 {
		cfg.Workers = goruntime.GOMAXPROCS(0)
	}
}

// EventGen enumerates the protocol events a processor may spontaneously
// issue in a given global state (the paper's hand-written "event generation
// loop", §7). When Config.Workers > 1 the checker calls Enabled from
// multiple goroutines (on distinct worlds), so implementations must not
// mutate shared state without synchronization.
type EventGen interface {
	Enabled(w *World, node, block int) []Event
}

// Event is one processor-issued protocol event.
type Event struct {
	Name    string
	Tag     int
	Stalls  bool // the processor stalls until WakeUp on this block
	Payload []vm.Value
}

// Result summarizes a run. Every figure except Elapsed is deterministic:
// identical for any Workers setting and across repeated runs.
type Result struct {
	States      int
	Transitions int
	MaxDepth    int
	Violation   *Violation
	Elapsed     time.Duration

	// Workers is the worker count the run actually used.
	Workers int
	// PeakFrontier is the largest BFS layer encountered — the high-water
	// mark for per-layer memory.
	PeakFrontier int
	// Decodes counts full state decodes — exactly one per expanded state
	// (successors are derived by cloning, not re-decoding).
	Decodes int64
	// VisitedBytes approximates the retained size of the visited set.
	VisitedBytes int64
	// SymmetryGroup is the order of the node/block permutation group the
	// run canonicalized by; 1 means no reduction (off, refused, or trivial).
	SymmetryGroup int
	// SymmetryNote explains why SymmetryAuto fell back to no reduction
	// ("" when reduction ran or was off).
	SymmetryNote string
}

// Violation describes a found bug with its event trace from the initial
// state (the paper: "Murphi produces a trace of events leading to the
// erroneous state").
type Violation struct {
	Kind  string
	Msg   string
	Trace []string
	// Steps is the same trace in machine-readable form, replayable with
	// ReplaySteps. Its final entry is the violating transition itself
	// (absent for deadlocks, which are a property of the last state, not
	// of a transition).
	Steps []Step
}

func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", v.Kind, v.Msg)
	for i, step := range v.Trace {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, step)
	}
	return b.String()
}

// World is one reachable global state, materialized for expansion. Event
// generators read it through the accessor methods.
type World struct {
	cfg      *Config
	engines  []*runtime.Engine
	channels [][]*runtime.Message // [from*Nodes+to]
	access   []sema.AccessMode    // [node*Blocks+block]
	stalled  []int                // per node: block stalled on, or -1

	// Spent fault budgets (Config.Net). Part of the canonical encoding:
	// two worlds that differ only in how many faults it took to reach them
	// are different states, which keeps the search finite under budgets and
	// the trace replay exact. With all budgets 0 they stay constant and the
	// state count matches a fault-free run.
	drops    int
	dups     int
	corrupts int

	// Scripted-client plane (Config.Client; see client.go). nil without a
	// client, in which case none of it is encoded. pcs is each node's next
	// script position, regs the values its completed gets/CASes observed,
	// cver the per-block store counter, cmem each node's packed copy of
	// each block ([node*Blocks+block], tempest.PackVal words).
	pcs  []int
	regs [][]int64
	cver []int64
	cmem []int64

	// obsSink, when non-nil, receives the world's fault events (Drop/Dup,
	// in the simulator's emission shape) and is attached to every engine.
	// Set from Config.Obs for replay worlds, or per-clone by the checker's
	// coverage accounting. Never part of the canonical encoding.
	obsSink obs.Sink

	sendErr error
}

// setObs attaches a sink to the world and all its engines (nil detaches).
func (w *World) setObs(s obs.Sink) {
	w.obsSink = s
	for _, e := range w.engines {
		e.SetObs(s)
	}
}

// emitFault mirrors the tempest machine's fault emission: the event is
// attributed to the sending node with the in-flight message's flow id, so
// a replayed counterexample and a live simulator run of the same schedule
// produce the same Drop/Dup stream.
func (w *World) emitFault(kind obs.Kind, from, to int, m *runtime.Message) {
	if w.obsSink == nil {
		return
	}
	w.obsSink.Emit(obs.Event{Kind: kind, Node: int32(from), Block: int32(m.ID),
		State: -1, Msg: int32(m.Tag), Peer: int32(to), Site: -1, Flow: m.Flow()})
}

// Drops returns how many messages have been dropped on the path to this
// world (the deadlock reporter uses it to tell a lost-message stall from a
// genuine protocol deadlock).
func (w *World) Drops() int { return w.drops }

// StateName returns the protocol state name of (node, block).
func (w *World) StateName(node, block int) string {
	return w.engines[node].Blocks[block].StateName(w.cfg.Proto)
}

// Access returns the access mode of (node, block).
func (w *World) Access(node, block int) sema.AccessMode {
	return w.access[node*w.cfg.Blocks+block]
}

// Stalled returns the block node is stalled on, or -1.
func (w *World) Stalled(node int) int { return w.stalled[node] }

// IsHome reports whether node is block's home.
func (w *World) IsHome(node, block int) bool { return w.cfg.HomeOf(block) == node }

// Engine exposes a node's engine (for invariant helpers).
func (w *World) Engine(node int) *runtime.Engine { return w.engines[node] }

// BlockVarInt reads a per-block protocol variable's integer payload (event
// generators use this to observe protocol bookkeeping such as phase votes).
func (w *World) BlockVarInt(node, block, slot int) int64 {
	return w.engines[node].Blocks[block].Vars[slot].Int
}

// Nodes returns the machine size.
func (w *World) Nodes() int { return w.cfg.Nodes }

// AnyMessage reports whether any in-flight or deferred message satisfies
// pred (event generators use this to model application barriers: "the
// network is quiet for this block").
func (w *World) AnyMessage(pred func(m *runtime.Message) bool) bool {
	for _, ch := range w.channels {
		for _, m := range ch {
			if pred(m) {
				return true
			}
		}
	}
	for _, e := range w.engines {
		for _, b := range e.Blocks {
			for _, m := range b.Deferred {
				if pred(m) {
					return true
				}
			}
		}
	}
	return false
}

// Proto returns the protocol under check.
func (w *World) Proto() *runtime.Protocol { return w.cfg.Proto }

// ---- runtime.Machine implementation ----

func (w *World) Send(from, dst int, m *runtime.Message) {
	if dst < 0 || dst >= w.cfg.Nodes {
		w.sendErr = fmt.Errorf("send to invalid node %d", dst)
		return
	}
	if w.cmem != nil && m.Data && m.ID >= 0 && m.ID < w.cfg.Blocks {
		m.Val = w.cmem[from*w.cfg.Blocks+m.ID]
	}
	ch := from*w.cfg.Nodes + dst
	w.channels[ch] = append(w.channels[ch], m)
}

func (w *World) AccessChange(node, id int, mode sema.AccessMode) {
	w.access[node*w.cfg.Blocks+id] = mode
}

func (w *World) RecvData(node, id int, mode sema.AccessMode) {
	w.access[node*w.cfg.Blocks+id] = mode
}

// RecvDataMsg implements runtime.DataMachine: the access change RecvData
// would make, plus — with a scripted client attached — installing the
// message's transported block value under the same monotone stale-discard
// rule the tempest machine applies. Without a client it is exactly
// RecvData.
func (w *World) RecvDataMsg(node, id int, mode sema.AccessMode, msg *runtime.Message) {
	w.access[node*w.cfg.Blocks+id] = mode
	if w.cmem == nil || id < 0 || id >= w.cfg.Blocks {
		return
	}
	if cur := w.cmem[node*w.cfg.Blocks+id]; msg.Val > cur {
		w.cmem[node*w.cfg.Blocks+id] = msg.Val
	}
}

func (w *World) WakeUp(node, id int) {
	if w.stalled[node] == id {
		w.stalled[node] = -1
		w.clientWake(node, id)
	}
}

func (w *World) HomeNode(id int) int { return w.cfg.HomeOf(id) }

func (w *World) Print(node int, s string) {}

// newWorld builds the initial state.
func newWorld(cfg *Config) *World {
	w := &World{
		cfg:      cfg,
		channels: make([][]*runtime.Message, cfg.Nodes*cfg.Nodes),
		access:   make([]sema.AccessMode, cfg.Nodes*cfg.Blocks),
		stalled:  make([]int, cfg.Nodes),
	}
	for n := 0; n < cfg.Nodes; n++ {
		w.stalled[n] = -1
		w.engines = append(w.engines, runtime.NewEngine(cfg.Proto, n, cfg.Blocks, w, cfg.Support))
	}
	for b := 0; b < cfg.Blocks; b++ {
		w.access[cfg.HomeOf(b)*cfg.Blocks+b] = sema.AccReadWrite
	}
	if cfg.Client != nil {
		w.initClient(cfg.Client)
	}
	if cfg.Obs != nil {
		w.setObs(cfg.Obs)
	}
	return w
}

// encode canonically serializes the whole world.
func (w *World) encode() (string, error) {
	enc := &runtime.Encoder{}
	for _, e := range w.engines {
		if err := e.EncodeState(enc, w.cfg.Codec); err != nil {
			return "", err
		}
	}
	for ch, msgs := range w.channels {
		enc.Int(int64(len(msgs)))
		for _, m := range msgs {
			// Channel messages may belong to any engine's blocks; use the
			// destination engine for info-handle reconstruction symmetry.
			if err := w.engines[ch%w.cfg.Nodes].EncodeMessage(enc, m, w.cfg.Codec); err != nil {
				return "", err
			}
		}
	}
	for _, a := range w.access {
		enc.Byte(byte(a))
	}
	for _, s := range w.stalled {
		enc.Int(int64(s))
	}
	enc.Int(int64(w.drops))
	enc.Int(int64(w.dups))
	enc.Int(int64(w.corrupts))
	if w.pcs != nil {
		for _, pc := range w.pcs {
			enc.Int(int64(pc))
		}
		for _, r := range w.regs {
			enc.Int(int64(len(r)))
			for _, v := range r {
				enc.Int(v)
			}
		}
		for _, v := range w.cver {
			enc.Int(v)
		}
		for _, v := range w.cmem {
			enc.Int(v)
		}
	}
	return string(enc.Bytes()), nil
}

// decode restores a world from its canonical form.
func (cfg *Config) decode(key string) (*World, error) {
	w := newWorld(cfg)
	d := runtime.NewDecoder([]byte(key))
	for _, e := range w.engines {
		if err := e.DecodeState(d, cfg.Codec); err != nil {
			return nil, err
		}
	}
	for ch := range w.channels {
		n := int(d.Int())
		w.channels[ch] = nil
		for i := 0; i < n; i++ {
			m, err := w.engines[ch%cfg.Nodes].DecodeMessage(d, cfg.Codec)
			if err != nil {
				return nil, err
			}
			w.channels[ch] = append(w.channels[ch], m)
		}
	}
	for i := range w.access {
		w.access[i] = sema.AccessMode(d.Byte())
	}
	for i := range w.stalled {
		w.stalled[i] = int(d.Int())
	}
	w.drops = int(d.Int())
	w.dups = int(d.Int())
	w.corrupts = int(d.Int())
	if w.pcs != nil {
		for i := range w.pcs {
			w.pcs[i] = int(d.Int())
		}
		for n := range w.regs {
			cnt := int(d.Int())
			w.regs[n] = nil
			for i := 0; i < cnt; i++ {
				w.regs[n] = append(w.regs[n], d.Int())
			}
		}
		for i := range w.cver {
			w.cver[i] = d.Int()
		}
		for i := range w.cmem {
			w.cmem[i] = d.Int()
		}
	}
	return w, nil
}

// actKind classifies an action. Deliveries and faults act on a channel
// position; events and timeouts act on a (node, block).
type actKind uint8

const (
	actDeliver actKind = iota
	actDrop            // remove the message — lost by the network
	actDup             // insert a copy right behind the original
	actCorrupt         // bounce back to the sender as a NACK
	actEvent
	actClient // the node's scripted client attempts its next operation
	actTimeout
)

// action is one outgoing transition from a state.
type action struct {
	kind     actKind
	from, to int
	idx      int // position within the channel (≤ EffectiveReorder for deliveries)
	node     int
	block    int
	event    Event
}

func (w *World) msgName(tag int) string {
	if sm := w.cfg.Proto.Sema(); tag >= 0 && tag < len(sm.Messages) {
		return sm.Messages[tag].Name
	}
	return fmt.Sprintf("msg%d", tag)
}

func (w *World) describe(a action) string {
	switch a.kind {
	case actDeliver:
		m := w.channels[a.from*w.cfg.Nodes+a.to][a.idx]
		pos := ""
		if a.idx > 0 {
			pos = fmt.Sprintf(" (overtaking %d)", a.idx)
		}
		return fmt.Sprintf("deliver %s blk%d node%d->node%d%s [dst state %s]",
			w.msgName(m.Tag), m.ID, a.from, a.to, pos, w.StateName(a.to, m.ID))
	case actDrop:
		m := w.channels[a.from*w.cfg.Nodes+a.to][a.idx]
		return fmt.Sprintf("DROP %s blk%d node%d->node%d (lost by network)",
			w.msgName(m.Tag), m.ID, a.from, a.to)
	case actDup:
		m := w.channels[a.from*w.cfg.Nodes+a.to][a.idx]
		return fmt.Sprintf("DUPLICATE %s blk%d node%d->node%d",
			w.msgName(m.Tag), m.ID, a.from, a.to)
	case actCorrupt:
		m := w.channels[a.from*w.cfg.Nodes+a.to][a.idx]
		return fmt.Sprintf("CORRUPT %s blk%d node%d->node%d (bounced to sender as NACK)",
			w.msgName(m.Tag), m.ID, a.from, a.to)
	case actTimeout:
		return fmt.Sprintf("TIMEOUT blk%d at node%d [state %s]",
			a.block, a.node, w.StateName(a.node, a.block))
	case actClient:
		op := w.cfg.Client.program(a.node)[w.pcs[a.node]]
		return fmt.Sprintf("client %v blk%d at node%d [access %v]",
			op.Kind, op.Block, a.node, w.Access(a.node, op.Block))
	}
	return fmt.Sprintf("event %s blk%d at node%d [state %s]",
		a.event.Name, a.block, a.node, w.StateName(a.node, a.block))
}

// actions enumerates every transition enabled in w. Order is a pure
// function of the world state: deliveries, then drops / dups / corrupts
// (while their budgets last), then processor events, then timeouts — the
// determinism contract (worker-count-independent traces) depends on it.
func (w *World) actions() []action {
	var out []action
	for from := 0; from < w.cfg.Nodes; from++ {
		for to := 0; to < w.cfg.Nodes; to++ {
			ch := w.channels[from*w.cfg.Nodes+to]
			limit := w.cfg.Net.EffectiveReorder()
			if limit > len(ch)-1 {
				limit = len(ch) - 1
			}
			for i := 0; i <= limit; i++ {
				out = append(out, action{kind: actDeliver, from: from, to: to, idx: i})
			}
		}
	}
	// Faults target any in-flight position, not just the reorder window:
	// loss, duplication and corruption are independent of delivery order.
	// Fixed enumeration order (drop, dup, corrupt) — action ordinals must be
	// a pure function of the world state.
	for _, f := range [...]struct {
		kind   actKind
		budget bool
	}{
		{actDrop, w.drops < w.cfg.Net.MaxDrops},
		{actDup, w.dups < w.cfg.Net.MaxDups},
		{actCorrupt, w.corrupts < w.cfg.Net.MaxCorrupts},
	} {
		if !f.budget {
			continue
		}
		kind := f.kind
		for from := 0; from < w.cfg.Nodes; from++ {
			for to := 0; to < w.cfg.Nodes; to++ {
				for i := range w.channels[from*w.cfg.Nodes+to] {
					out = append(out, action{kind: kind, from: from, to: to, idx: i})
				}
			}
		}
	}
	if w.cfg.Events != nil {
		for n := 0; n < w.cfg.Nodes; n++ {
			for b := 0; b < w.cfg.Blocks; b++ {
				for _, ev := range w.cfg.Events.Enabled(w, n, b) {
					out = append(out, action{kind: actEvent, node: n, block: b, event: ev})
				}
			}
		}
	}
	if w.cfg.Client != nil {
		for n := 0; n < w.cfg.Nodes; n++ {
			if w.stalled[n] < 0 && w.pcs[n] < len(w.cfg.Client.program(n)) {
				out = append(out, action{kind: actClient, node: n,
					block: w.cfg.Client.program(n)[w.pcs[n]].Block})
			}
		}
	}
	if w.cfg.timeoutTag >= 0 && w.cfg.Net.Active() {
		for n := 0; n < w.cfg.Nodes; n++ {
			for b := 0; b < w.cfg.Blocks; b++ {
				if w.timeoutEnabled(n, b) {
					out = append(out, action{kind: actTimeout, node: n, block: b})
				}
			}
		}
	}
	return out
}

// timeoutEnabled reports whether the TIMEOUT pseudo-message may fire for
// (node, block): the block's current state declares an *explicit* TIMEOUT
// handler (a DEFAULT fallback is not a timer), and firing now cannot race
// progress that is already guaranteed — no message for this block is
// inbound to the node, and none of the node's own traffic for it is still
// in flight or parked in a deferred queue. In a fault-free run those
// conditions never hold simultaneously in a waiting state, so timeouts add
// zero transitions unless something was actually lost.
func (w *World) timeoutEnabled(node, block int) bool {
	st := w.engines[node].Blocks[block].State.State
	if w.cfg.Proto.IR.HandlerFunc[st][w.cfg.timeoutTag] == nil {
		return false
	}
	for ch, msgs := range w.channels {
		to := ch % w.cfg.Nodes
		for _, m := range msgs {
			if m.ID == block && (to == node || m.Src == node) {
				return false
			}
		}
	}
	for _, e := range w.engines {
		for _, b := range e.Blocks {
			if b.ID != block {
				continue
			}
			for _, m := range b.Deferred {
				if m.Src == node {
					return false
				}
			}
		}
	}
	return true
}

// removeAt pops the message at idx from a channel without aliasing either
// side of the split.
func (w *World) removeAt(ch, idx int) *runtime.Message {
	m := w.channels[ch][idx]
	w.channels[ch] = append(append([]*runtime.Message{}, w.channels[ch][:idx]...), w.channels[ch][idx+1:]...)
	return m
}

// apply executes the action, returning a protocol error if one occurred.
func (w *World) apply(a action) error {
	switch a.kind {
	case actDeliver:
		m := w.removeAt(a.from*w.cfg.Nodes+a.to, a.idx)
		if err := w.engines[a.to].Deliver(m); err != nil {
			return err
		}
		return w.sendErr
	case actDrop:
		m := w.removeAt(a.from*w.cfg.Nodes+a.to, a.idx)
		w.emitFault(obs.KindDrop, a.from, a.to, m)
		w.drops++
		return nil
	case actDup:
		ch := a.from*w.cfg.Nodes + a.to
		m := w.channels[ch][a.idx]
		cm, err := w.engines[ch%w.cfg.Nodes].CloneMessage(m, w.cfg.Codec)
		if err != nil {
			return fmt.Errorf("mc: duplicate message: %w", err)
		}
		// The copy goes immediately behind the original: duplication alone
		// must not reorder the channel. Appending at the tail instead would
		// let the copy arrive behind arbitrarily many later messages —
		// unbounded reordering smuggled in through the dup budget, which no
		// protocol without per-message epochs can survive. Combining dup
		// with a reorder credit still lets the copy drift that far.
		w.channels[ch] = append(w.channels[ch], nil)
		copy(w.channels[ch][a.idx+2:], w.channels[ch][a.idx+1:])
		w.channels[ch][a.idx+1] = cm
		w.emitFault(obs.KindDup, a.from, a.to, m)
		w.dups++
		return nil
	case actCorrupt:
		m := w.removeAt(a.from*w.cfg.Nodes+a.to, a.idx)
		// The receiving interface detects the corruption and bounces the
		// tag back to the sender, exactly like the engine's Nack() builtin.
		w.channels[a.to*w.cfg.Nodes+a.from] = append(w.channels[a.to*w.cfg.Nodes+a.from], &runtime.Message{
			Tag:     w.cfg.nackTag,
			ID:      m.ID,
			Src:     a.to,
			Payload: []vm.Value{vm.MsgVal(m.Tag)},
		})
		w.corrupts++
		return nil
	case actTimeout:
		if err := w.engines[a.node].InjectEvent(w.cfg.timeoutTag, a.block); err != nil {
			return err
		}
		return w.sendErr
	case actClient:
		return w.clientStep(a.node)
	}
	if a.event.Stalls {
		w.stalled[a.node] = a.block
	}
	if err := w.engines[a.node].InjectEvent(a.event.Tag, a.block, a.event.Payload...); err != nil {
		return err
	}
	return w.sendErr
}

// checkInvariants returns a violation message, or "".
func (w *World) checkInvariants() string {
	if w.cfg.CheckCoherence {
		for b := 0; b < w.cfg.Blocks; b++ {
			writers, readers := 0, 0
			for n := 0; n < w.cfg.Nodes; n++ {
				switch w.Access(n, b) {
				case sema.AccReadWrite:
					writers++
				case sema.AccReadOnly:
					readers++
				}
			}
			if writers > 1 || (writers == 1 && readers > 0) {
				return fmt.Sprintf("coherence violated on block %d: %d writers, %d readers", b, writers, readers)
			}
		}
	}
	for ch, msgs := range w.channels {
		if len(msgs) > w.cfg.ChannelCap {
			return fmt.Sprintf("channel %d->%d exceeds %d messages",
				ch/w.cfg.Nodes, ch%w.cfg.Nodes, w.cfg.ChannelCap)
		}
	}
	for n, e := range w.engines {
		for _, b := range e.Blocks {
			if len(b.Deferred) > w.cfg.QueueCap {
				return fmt.Sprintf("deferred queue for block %d on node %d exceeds %d", b.ID, n, w.cfg.QueueCap)
			}
		}
	}
	return ""
}

// anyStalled reports whether some processor is stalled.
func (w *World) anyStalled() bool {
	for _, s := range w.stalled {
		if s >= 0 {
			return true
		}
	}
	return false
}

// networkEmpty reports whether no messages are in flight.
func (w *World) networkEmpty() bool {
	for _, ch := range w.channels {
		if len(ch) > 0 {
			return false
		}
	}
	return true
}

// clone returns a deep copy of the world that can be mutated independently.
// Immutable structure (messages, state values, continuation records) is
// shared; mutable containers are copied with exact capacity so appends on
// either side reallocate instead of aliasing.
func (w *World) clone() (*World, error) {
	nw := &World{
		cfg:      w.cfg,
		access:   append([]sema.AccessMode(nil), w.access...),
		stalled:  append([]int(nil), w.stalled...),
		drops:    w.drops,
		dups:     w.dups,
		corrupts: w.corrupts,
	}
	if w.pcs != nil {
		nw.pcs = append([]int(nil), w.pcs...)
		nw.cver = append([]int64(nil), w.cver...)
		nw.cmem = append([]int64(nil), w.cmem...)
		nw.regs = make([][]int64, len(w.regs))
		for n, r := range w.regs {
			nw.regs[n] = append([]int64(nil), r...)
		}
	}
	nw.engines = make([]*runtime.Engine, len(w.engines))
	for i, e := range w.engines {
		ne, err := e.Clone(nw, w.cfg.Codec)
		if err != nil {
			return nil, err
		}
		nw.engines[i] = ne
	}
	nw.channels = make([][]*runtime.Message, len(w.channels))
	for ch, msgs := range w.channels {
		if len(msgs) == 0 {
			continue
		}
		eng := nw.engines[ch%w.cfg.Nodes]
		dst := make([]*runtime.Message, len(msgs))
		for i, m := range msgs {
			cm, err := eng.CloneMessage(m, w.cfg.Codec)
			if err != nil {
				return nil, err
			}
			dst[i] = cm
		}
		nw.channels[ch] = dst
	}
	return nw, nil
}

// InitialWorld builds the machine's initial state (exported for benchmarks
// and tooling; Check builds its own). cfg defaults are filled in place.
func InitialWorld(cfg *Config) *World {
	cfg.normalize()
	return newWorld(cfg)
}

// Snapshot returns the world's canonical encoding — the visited-set key.
func (w *World) Snapshot() (string, error) { return w.encode() }

// Restore materializes a world from a Snapshot encoding.
func (cfg *Config) Restore(key string) (*World, error) {
	cfg.normalize()
	return cfg.decode(key)
}

// Clone returns a deep copy of the world (see the checker's
// clone-not-decode successor generation).
func (w *World) Clone() (*World, error) { return w.clone() }

package mc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Check runs the breadth-first exploration.
//
// The search is layer-synchronous: all states at depth d are expanded —
// concurrently, by cfg.Workers goroutines — before any state at depth d+1,
// which preserves the BFS invariant (counterexample traces are
// shortest-path) and makes every reported figure deterministic. Expanding a
// state decodes its canonical encoding exactly once; each successor is a
// structural clone plus one action (the final action is applied to the
// decoded world in place), never a re-decode. Violations found while a
// layer expands are collected, the layer is finished, and the one the
// sequential scan would have hit first — smallest (frontier position,
// action ordinal) — is reported, with its trace re-derived by replaying the
// compact parent chain from the initial state. States, Transitions,
// MaxDepth, the violation kind, and the trace are identical for any worker
// count.
func Check(cfg Config) (*Result, error) {
	cfg.normalize()
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.Net.MaxCorrupts > 0 && cfg.nackTag < 0 {
		return nil, fmt.Errorf("mc: Net corrupt=%d but the protocol declares no NACK message to bounce corrupted tags with", cfg.Net.MaxCorrupts)
	}
	start := time.Now()
	res := &Result{Workers: cfg.Workers}

	init := newWorld(&cfg)
	initKey, err := init.encode()
	if err != nil {
		return nil, err
	}
	vt := newVisited()
	layer := []int32{vt.addRoot(initKey)}
	res.PeakFrontier = 1

	for depth := 0; len(layer) > 0; depth++ {
		res.MaxDepth = depth
		out, err := expandLayer(&cfg, vt, layer)
		if err != nil {
			return nil, err
		}
		res.Transitions += int(out.transitions)
		res.Decodes += out.decodes
		next := vt.commit(layer)
		if len(next) > res.PeakFrontier {
			res.PeakFrontier = len(next)
		}
		if cfg.Progress != nil {
			// Reported from the driver goroutine, after the barrier: the
			// snapshot reads no state a worker could still be touching.
			min, max := vt.shardStats()
			cfg.Progress(ProgressInfo{
				Depth:        depth,
				Frontier:     len(next),
				States:       len(vt.arena),
				Transitions:  int64(res.Transitions),
				Elapsed:      time.Since(start),
				VisitedBytes: vt.bytes(),
				ShardMin:     min,
				ShardMax:     max,
			})
		}
		if out.cand != nil {
			v, err := buildViolation(&cfg, vt, layer, out.cand)
			if err != nil {
				return nil, err
			}
			res.Violation = v
			break
		}
		layer = next
		if cfg.MaxStates > 0 && len(vt.arena) >= cfg.MaxStates {
			res.Violation = &Violation{Kind: "state-limit",
				Msg: fmt.Sprintf("exploration stopped at %d states", len(vt.arena))}
			break
		}
	}

	res.States = len(vt.arena)
	res.VisitedBytes = vt.bytes()
	res.Elapsed = time.Since(start)
	return res, nil
}

// candidate is a violation observed during layer expansion, positioned so
// the deterministic minimum can be selected at the barrier.
type candidate struct {
	kind string
	msg  string
	pos  int32 // position of the expanded state within its layer
	ord  int32 // ordinal of the violating action, -1 for deadlock
}

func (c *candidate) before(o *candidate) bool {
	if c.pos != o.pos {
		return c.pos < o.pos
	}
	return c.ord < o.ord
}

// workerOut accumulates one worker's per-layer results; outputs are merged
// at the barrier so workers share nothing while expanding.
type workerOut struct {
	cand        *candidate
	transitions int64
	decodes     int64
	err         error
}

func (o *workerOut) take(c *candidate) {
	if o.cand == nil || c.before(o.cand) {
		o.cand = c
	}
}

// expandLayer expands every state of the layer, fanning out over
// cfg.Workers goroutines pulling positions from a shared cursor.
func expandLayer(cfg *Config, vt *visitedTable, layer []int32) (*workerOut, error) {
	workers := cfg.Workers
	if workers > len(layer) {
		workers = len(layer)
	}

	merged := &workerOut{}
	if workers <= 1 {
		for pos := range layer {
			if err := expandState(cfg, vt, layer, int32(pos), merged); err != nil {
				return nil, err
			}
		}
		return merged, nil
	}

	outs := make([]workerOut, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(out *workerOut) {
			defer wg.Done()
			for {
				pos := cursor.Add(1) - 1
				if pos >= int64(len(layer)) {
					return
				}
				if err := expandState(cfg, vt, layer, int32(pos), out); err != nil {
					out.err = err
					return
				}
			}
		}(&outs[i])
	}
	wg.Wait()
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return nil, o.err
		}
		merged.transitions += o.transitions
		merged.decodes += o.decodes
		if o.cand != nil {
			merged.take(o.cand)
		}
	}
	return merged, nil
}

// expandState decodes one state (once), enumerates its actions, and claims
// every successor, deriving each from a clone of the decoded world — the
// last from the decoded world itself.
func expandState(cfg *Config, vt *visitedTable, layer []int32, pos int32, out *workerOut) error {
	w, err := cfg.decode(vt.arena[layer[pos]].key)
	if err != nil {
		return fmt.Errorf("mc: decode: %w", err)
	}
	out.decodes++
	acts := w.actions()
	if len(acts) == 0 {
		if w.anyStalled() && w.networkEmpty() {
			out.take(&candidate{kind: "deadlock", msg: describeStall(w), pos: pos, ord: -1})
		}
		return nil
	}
	for i, a := range acts {
		wa := w
		if i < len(acts)-1 {
			if wa, err = w.clone(); err != nil {
				return fmt.Errorf("mc: clone: %w", err)
			}
		}
		out.transitions++
		if err := wa.apply(a); err != nil {
			out.take(&candidate{kind: "protocol-error", msg: err.Error(), pos: pos, ord: int32(i)})
			continue
		}
		if msg := wa.checkInvariants(); msg != "" {
			out.take(&candidate{kind: "invariant", msg: msg, pos: pos, ord: int32(i)})
			continue
		}
		succ, err := wa.encode()
		if err != nil {
			return fmt.Errorf("mc: encode: %w", err)
		}
		vt.claim(succ, pos, int32(i))
	}
	return nil
}

// buildViolation re-derives the counterexample trace for the selected
// candidate by replaying the parent chain's action ordinals from the
// initial state. Descriptions are rendered against the pre-action world,
// exactly as the transitions were originally taken.
func buildViolation(cfg *Config, vt *visitedTable, layer []int32, c *candidate) (*Violation, error) {
	var ords []int32
	for idx := layer[c.pos]; idx >= 0; {
		rec := &vt.arena[idx]
		if rec.action >= 0 {
			ords = append(ords, rec.action)
		}
		idx = rec.parent
	}
	for i, j := 0, len(ords)-1; i < j; i, j = i+1, j-1 {
		ords[i], ords[j] = ords[j], ords[i]
	}
	if c.ord >= 0 {
		ords = append(ords, c.ord)
	}

	w := newWorld(cfg)
	steps := make([]string, 0, len(ords))
	machineSteps := make([]Step, 0, len(ords))
	for n, ord := range ords {
		acts := w.actions()
		if int(ord) >= len(acts) {
			return nil, fmt.Errorf("mc: trace replay diverged at step %d", n)
		}
		a := acts[ord]
		steps = append(steps, w.describe(a))
		machineSteps = append(machineSteps, w.step(a))
		if n == len(ords)-1 && c.ord >= 0 {
			break // the final action is the violation itself
		}
		if err := w.apply(a); err != nil {
			return nil, fmt.Errorf("mc: trace replay diverged at step %d: %w", n, err)
		}
	}
	return &Violation{Kind: c.kind, Msg: c.msg, Trace: steps, Steps: machineSteps}, nil
}

// describeStall renders a deadlock. When messages were dropped on the path
// here it says so: a stall behind an empty network with spent drop budget
// is (almost always) a lost message the protocol has no TIMEOUT recovery
// for, which deserves a different diagnosis than a genuine protocol
// deadlock reachable on a perfect network.
func describeStall(w *World) string {
	var stuck []string
	for n, b := range w.stalled {
		if b >= 0 {
			stuck = append(stuck, fmt.Sprintf("node %d stalled on block %d (state %s)",
				n, b, w.StateName(n, b)))
		}
	}
	sort.Strings(stuck)
	prefix := "network empty, "
	if w.drops > 0 {
		prefix = fmt.Sprintf("network empty after %d dropped message(s) — a lost message with no TIMEOUT recovery, not a fault-free protocol deadlock; ", w.drops)
	}
	return prefix + strings.Join(stuck, "; ")
}

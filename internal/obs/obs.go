// Package obs is the protocol event-tracing and metrics layer. The paper's
// whole argument is that coherence protocols are illegible when their
// suspend/resume control flow is hidden inside hand-written handler code;
// this package makes the reproduced stack legible at run time: the runtime
// engine (and, through it, the simulator) emits typed events — handler
// dispatch, Suspend/Resume, continuation allocation, deferred-queue and
// NACK traffic, message sends and deliveries — into a Sink, and exporters
// turn the stream into counters, a plain-text summary, or a Chrome
// trace_event JSON loadable in about:tracing / Perfetto.
//
// Tracing is strictly opt-in and zero-cost when disabled: every emission
// site in the runtime is guarded by a single nil check
// (runtime.BenchmarkEngineDispatch asserts the disabled path allocates
// nothing extra), and the rare-op hooks inside the VM (Suspend, Resume,
// MakeCont) fire only when a tracer was installed alongside the sink.
//
// The package is a leaf: it knows nothing of the runtime, simulator, or
// checker. Names (state and message tables for rendering) are supplied by
// the caller; runtime.ObsNames builds them from a compiled protocol.
package obs

import "fmt"

// Kind classifies an event.
type Kind uint8

// Event kinds. HandlerEnter/HandlerExit bracket one handler activation
// (they become slices in the Chrome trace); the rest are instants.
const (
	KindHandlerEnter Kind = iota
	KindHandlerExit
	KindSuspend
	KindResume
	KindContAlloc
	KindEnqueue
	KindDequeue
	KindNACK
	KindSend
	KindDeliver
	KindDrop
	KindDup
	KindAccess
	KindData
	KindRead
	KindWrite
	KindDelay
	numKinds
)

var kindNames = [numKinds]string{
	"HandlerEnter", "HandlerExit", "Suspend", "Resume", "ContAlloc",
	"Enqueue", "Dequeue", "NACK", "Send", "Deliver", "Drop", "Dup",
	"Access", "Data", "Read", "Write", "Delay",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one observed protocol occurrence. Fields beyond Kind and Node
// are kind-specific; unused ones are -1 (indices) or 0 (Arg, Flow).
//
//	Kind          Block  State      Msg        Peer      Site  Arg            Flow
//	HandlerEnter  block  pre-state  tag        src       -     -              -
//	HandlerExit   block  post-state tag        src       -     -              -
//	Suspend       block  wait-state -          -         -     -              -
//	Resume        block  cur-state  -          -         site  1 if direct    -
//	ContAlloc     block  cur-state  -          -         site  1 if heap      -
//	Enqueue       block  cur-state  tag        src       -     queue depth    -
//	Dequeue       block  cur-state  tag        src       -     queue depth    -
//	NACK          block  cur-state  orig tag   dst       -     -              -
//	Send          block  -          tag        dst       -     1 if data      flow id
//	Deliver       block  pre-state  tag        src       -     -              flow id
//	Drop          block  -          tag        dst       -     -              flow id
//	Dup           block  -          tag        dst       -     -              flow id
//	Delay         block  -          tag        dst       -     -              flow id
//	Access        block  -          -          -         -     new AccessMode -
//	Data          block  -          tag        src       -     data version   -
//	Read          block  -          -          -         -     version read   -
//	Write         block  -          -          -         site  version made   -
//
// Drop, Dup, and Delay are network fault injections (internal/netmodel):
// the event is emitted at the *sending* node at send time. A Drop's flow id
// starts an arrow that never ends — the lost message is visible in the
// Chrome trace as a dangling flow; a Dup's flow id gains a second Deliver
// end; a Delay marks a message held back extra latencies (the simulator's
// reordering mechanism).
//
// Access/Data/Read/Write are the memory-model events the Tempest machine
// emits when sim.Config.ObsMemory is set; internal/oracle consumes them to
// check coherence invariants independently of the protocol under test.
// Access records a block-permission change (Arg = new sema.AccessMode).
// Data records a data-carrying delivery installing a block version. Read
// and Write are *completed* workload accesses: Read's Arg is the version
// the node observed, Write's Arg the fresh version it created (Site is 1
// when the store was performed by the protocol on the node's behalf — a
// write-through completion that leaves the node's access read-only).
//
// Time is the virtual time stamped by the sink's clock (simulated cycles
// under the Tempest machine) and Seq a strictly increasing sequence number;
// both are assigned by the sink, not the emitter.
type Event struct {
	Kind  Kind
	Node  int32
	Block int32
	State int32
	Msg   int32
	Peer  int32
	Site  int32
	Arg   int64
	Flow  int64
	Time  int64
	Seq   int64
}

// Sink receives events. Implementations are not required to be safe for
// concurrent use: the deterministic simulator emits from one goroutine, and
// the model checker never installs sinks on the worlds it explores.
type Sink interface {
	Emit(ev Event)
}

// Attacher is implemented by engines that can carry a sink (the runtime
// engine and the tempest adapter); sim.Run uses it to wire Config.Obs
// without the tempest Engine interface having to know about tracing.
type Attacher interface {
	SetObs(s Sink)
}

// ClockSetter is implemented by sinks that can timestamp events from a
// virtual clock; sim.Run points it at the machine's cycle counter.
type ClockSetter interface {
	SetClock(now func() int64)
}

// Names are the render tables for states and messages, indexed by the
// State/Msg event fields. Either slice may be nil; lookups fall back to
// numeric forms.
type Names struct {
	States   []string
	Messages []string
}

// State renders a state index.
func (n Names) State(i int32) string {
	if i >= 0 && int(i) < len(n.States) {
		return n.States[i]
	}
	return fmt.Sprintf("state%d", i)
}

// Message renders a message tag.
func (n Names) Message(i int32) string {
	if i >= 0 && int(i) < len(n.Messages) {
		return n.Messages[i]
	}
	return fmt.Sprintf("msg%d", i)
}

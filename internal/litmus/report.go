package litmus

// The -json report: the machine-readable outcome-set record of one harness
// run. Deterministic — outcome keys are sorted, substrate lists are in
// execution order, and encoding mirrors the manifest conventions (HTML
// escaping off, two-space indent) — so the schema can be golden-pinned.

import (
	"bytes"
	"encoding/json"
)

// Report is the top-level -json document.
type Report struct {
	Tool   string       `json:"tool"` // "teapot-litmus"
	Corpus string       `json:"corpus"`
	Mode   string       `json:"mode"`
	Tests  []TestReport `json:"tests"`
}

// TestReport is one test's differential record.
type TestReport struct {
	Name     string `json:"name"`
	Proto    string `json:"proto"`
	Nodes    int    `json:"nodes"`
	Blocks   int    `json:"blocks"`
	Net      string `json:"net,omitempty"`
	MustFail string `json:"must_fail,omitempty"`

	Modes    []string `json:"modes"`
	MCStates int      `json:"mc_states,omitempty"`

	// Outcome sets as sorted canonical keys (absent when the substrate did
	// not run; note an empty set and a skipped substrate both encode as
	// absent — Modes says which ran).
	MC   []string `json:"mc,omitempty"`
	Sim  []string `json:"sim,omitempty"`
	Fuzz []string `json:"fuzz,omitempty"`

	// MCOnly is the sampling coverage gap; SimOnly/FuzzOnly are outcomes
	// the exhaustive checker never reached (harness bugs, also reported as
	// failures).
	MCOnly   []string `json:"mc_only,omitempty"`
	SimOnly  []string `json:"sim_only,omitempty"`
	FuzzOnly []string `json:"fuzz_only,omitempty"`

	Verdict  string          `json:"verdict"` // "ok" | primary failure class
	Failures []FailureReport `json:"failures,omitempty"`
}

// FailureReport is one substrate failure in report form.
type FailureReport struct {
	Mode  string `json:"mode"`
	Class string `json:"class"`
	Msg   string `json:"msg"`
	// ShrunkDecisions is the fuzz reproducer's length after delta
	// debugging; Steps the mc counterexample's length.
	ShrunkDecisions int `json:"shrunk_decisions,omitempty"`
	Steps           int `json:"steps,omitempty"`
}

// NewReport lowers results into the report document.
func NewReport(corpus, mode string, results []*Result) *Report {
	rep := &Report{Tool: "teapot-litmus", Corpus: corpus, Mode: mode}
	for _, res := range results {
		t := res.Test
		tr := TestReport{
			Name:     t.Name,
			Proto:    t.Proto,
			Nodes:    t.Nodes,
			Blocks:   len(t.Blocks),
			Net:      t.Net,
			MustFail: t.MustFail,
			Modes:    res.Modes,
			MCStates: res.MCStates,
			MC:       t.SortedKeys(res.MC),
			Sim:      t.SortedKeys(res.Sim),
			Fuzz:     t.SortedKeys(res.Fuzz),
			MCOnly:   res.MCOnly(),
			SimOnly:  res.ExtraVsMC(res.Sim),
			FuzzOnly: res.ExtraVsMC(res.Fuzz),
			Verdict:  "ok",
		}
		if f := res.Failure(); f != nil {
			tr.Verdict = f.Class
		}
		for _, f := range res.Failures {
			fr := FailureReport{Mode: f.Mode, Class: f.Class, Msg: f.Msg,
				ShrunkDecisions: f.ShrunkDecisions}
			if f.MCViolation != nil {
				fr.Steps = len(f.MCViolation.Steps)
			}
			tr.Failures = append(tr.Failures, fr)
		}
		rep.Tests = append(rep.Tests, tr)
	}
	return rep
}

// Encode renders the report as deterministic, indented JSON (HTML escaping
// off, trailing newline — the manifest conventions).
func (r *Report) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

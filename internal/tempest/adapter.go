package tempest

import (
	"teapot/internal/obs"
	"teapot/internal/runtime"
)

// TeapotEngine adapts a set of per-node runtime engines (executing a
// compiled Teapot protocol) to the machine's Engine interface.
type TeapotEngine struct {
	Engines []*runtime.Engine
}

// NewTeapotEngine builds one runtime engine per node against machine m.
// Support may be shared across nodes (the bundled support modules keep
// their state in block variables or keyed by node).
func NewTeapotEngine(p *runtime.Protocol, nodes, blocks int, m runtime.Machine, sup runtime.Support) *TeapotEngine {
	te := &TeapotEngine{}
	for n := 0; n < nodes; n++ {
		te.Engines = append(te.Engines, runtime.NewEngine(p, n, blocks, m, sup))
	}
	return te
}

// SetObs implements obs.Attacher by attaching s to every node's engine.
func (te *TeapotEngine) SetObs(s obs.Sink) {
	for _, e := range te.Engines {
		e.SetObs(s)
	}
}

// Deliver implements Engine.
func (te *TeapotEngine) Deliver(dst int, m *runtime.Message) error {
	return te.Engines[dst].Deliver(m)
}

// Event implements Engine.
func (te *TeapotEngine) Event(node int, tag int, id int) error {
	return te.Engines[node].InjectEvent(tag, id)
}

// Counters implements Engine.
func (te *TeapotEngine) Counters(node int) CostCounters {
	e := te.Engines[node]
	c := e.Counters()
	return CostCounters{
		Instrs:       c.Instrs,
		Handlers:     c.Handlers,
		HeapConts:    c.HeapConts,
		StaticConts:  c.StaticConts,
		Resumes:      c.Resumes,
		ConstResumes: c.ConstResumes,
		QueueRecords: e.QueueRecords,
		Sends:        e.Sends,
		Calls:        c.Calls,
	}
}

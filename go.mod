module teapot

go 1.22

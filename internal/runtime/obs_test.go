package runtime_test

import (
	"strings"
	"testing"

	"teapot/internal/obs"
	"teapot/internal/runtime"
)

// TestObsEventStream runs the toy fetch round trip (with a deferred PING)
// under a collector and checks the emitted event stream end to end:
// handler brackets balance, sends correlate with delivers through flow
// ids, and the continuation machinery (suspend, alloc, resume) and the
// deferred queue (enqueue, dequeue) all surface.
func TestObsEventStream(t *testing.T) {
	m, p := buildToy(t, true)
	c := obs.NewCollector(0)
	for _, e := range m.engines {
		e.SetObs(c)
	}
	cache := m.engines[1]
	if err := cache.InjectEvent(p.MsgIndex("RD_FAULT"), 0); err != nil {
		t.Fatalf("fault: %v", err)
	}
	// PING while suspended: deferred, replayed after the transition.
	if err := cache.Deliver(&runtime.Message{Tag: p.MsgIndex("PING"), ID: 0, Src: 0}); err != nil {
		t.Fatalf("ping: %v", err)
	}
	m.pump(t)

	if enter, exit := c.Count(obs.KindHandlerEnter), c.Count(obs.KindHandlerExit); enter == 0 || enter != exit {
		t.Errorf("handler brackets unbalanced: %d enters, %d exits", enter, exit)
	}
	for kind, want := range map[obs.Kind]int64{
		obs.KindSuspend:   1, // RD_FAULT handler suspends once
		obs.KindContAlloc: 1,
		obs.KindResume:    1, // GET_RESP resumes it
		obs.KindEnqueue:   1, // the deferred PING
		obs.KindDequeue:   1, // replayed after the transition
		obs.KindSend:      2, // GET_REQ and GET_RESP
		obs.KindDeliver:   4, // the two sends, the injected RD_FAULT, the direct PING
	} {
		if got := c.Count(kind); got != want {
			t.Errorf("Count(%v) = %d, want %d", kind, got, want)
		}
	}
	// Every send's flow id must be seen again on exactly one deliver, and
	// the injected PING (never sent) must carry no flow.
	sent := make(map[int64]int)
	for _, ev := range c.Events() {
		switch ev.Kind {
		case obs.KindSend:
			if ev.Flow == 0 {
				t.Errorf("send event without flow id: %+v", ev)
			}
			sent[ev.Flow]++
		case obs.KindDeliver:
			if ev.Flow == 0 {
				names := obs.Names{Messages: msgNames(p)}
				if name := names.Message(ev.Msg); name != "PING" && name != "RD_FAULT" {
					t.Errorf("flowless deliver of %s", name)
				}
				continue
			}
			if sent[ev.Flow] != 1 {
				t.Errorf("deliver flow %#x not matched by one send", ev.Flow)
			}
			sent[ev.Flow] = 0
		}
	}
	for flow, n := range sent {
		if n != 0 {
			t.Errorf("send flow %#x never delivered", flow)
		}
	}
	// The dispatch table names real transitions.
	names := runtime.ObsNames(p)
	if got := c.DispatchCount(p.StateIndex("H_Idle"), p.MsgIndex("GET_REQ")); got != 1 {
		t.Errorf("DispatchCount(H_Idle, GET_REQ) = %d, want 1", got)
	}
	if names.State(int32(p.StateIndex("C_Wait"))) != "C_Wait" {
		t.Errorf("ObsNames missing C_Wait")
	}
}

func msgNames(p *runtime.Protocol) []string {
	sm := p.Sema()
	out := make([]string, len(sm.Messages))
	for i, m := range sm.Messages {
		out[i] = m.Name
	}
	return out
}

// TestObsDetach checks that SetObs(nil) fully disarms tracing and that a
// cloned engine never inherits the parent's sink or tracer.
func TestObsDetach(t *testing.T) {
	m, p := buildToy(t, true)
	c := obs.NewCollector(0)
	cache := m.engines[1]
	cache.SetObs(c)
	cache.SetObs(nil)
	if err := cache.InjectEvent(p.MsgIndex("RD_FAULT"), 0); err != nil {
		t.Fatalf("fault: %v", err)
	}
	m.pump(t)
	if c.Total() != 0 {
		t.Errorf("detached sink still saw %d events", c.Total())
	}

	cache.SetObs(c)
	clone, err := cache.Clone(m, nil)
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	if clone.Exec.Tracer != nil {
		t.Error("clone inherited the VM tracer")
	}
	before := c.Total()
	if err := clone.Deliver(&runtime.Message{Tag: p.MsgIndex("PING"), ID: 0, Src: 0}); err != nil {
		t.Fatalf("clone deliver: %v", err)
	}
	if c.Total() != before {
		t.Errorf("clone dispatch leaked %d events into the parent's sink", c.Total()-before)
	}
}

// TestObsChromeTraceFromEngine drives the toy protocol and round-trips the
// resulting event window through the Chrome trace writer and validator.
func TestObsChromeTraceFromEngine(t *testing.T) {
	m, p := buildToy(t, true)
	c := obs.NewCollector(0)
	for _, e := range m.engines {
		e.SetObs(c)
	}
	if err := m.engines[1].InjectEvent(p.MsgIndex("RD_FAULT"), 0); err != nil {
		t.Fatalf("fault: %v", err)
	}
	m.pump(t)
	var sb strings.Builder
	if err := obs.WriteChromeTrace(&sb, c.Events(), runtime.ObsNames(p)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := obs.ValidateChromeTrace(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("engine-produced trace fails validation: %v\n%s", err, sb.String())
	}
}

// BenchmarkEngineDispatch measures one full message dispatch (a PING into
// C_Valid, the cheapest real handler). The NoSink variant is the
// zero-cost-when-disabled claim: it must match the pre-obs baseline in
// allocs/op exactly and ns/op within noise.
func BenchmarkEngineDispatch(b *testing.B) {
	run := func(b *testing.B, sink obs.Sink) {
		m, p := buildToy(b, true)
		cache := m.engines[1]
		if sink != nil {
			cache.SetObs(sink)
		}
		ping := &runtime.Message{Tag: p.MsgIndex("PING"), ID: 0, Src: 0}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cache.Deliver(ping); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("NoSink", func(b *testing.B) { run(b, nil) })
	b.Run("Collector", func(b *testing.B) { run(b, obs.NewCollector(1<<16)) })
}

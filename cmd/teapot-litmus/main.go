// Teapot-litmus runs a corpus of coherence litmus tests (tiny per-node
// scripts of gets, puts, and CASes with expected / allowed / forbidden
// final-state conditions) differentially across the three substrates: the
// model checker enumerates the complete reachable outcome set via the
// scripted-client plane, the simulator and fuzzer sample it through the
// Tempest machine, and the harness diffs the three sets. Forbidden
// outcomes become named counterexamples: a shortest checker trace
// (replay-confirmed with mc.ReplaySteps) and a delta-debugged fuzz
// schedule saved as a disk-replayable reproducer.
//
// Usage:
//
//	teapot-litmus -corpus testdata/litmus
//	teapot-litmus -corpus testdata/litmus/fail -mode all     # seeded bugs
//	teapot-litmus -only mp -mode mc -json                    # outcome sets
//	teapot-litmus -replay mp-litmus-repro.json               # re-judge
//
// Exit status: 0 when every selected test passed, 2 when any test failed
// (or a replayed reproducer still fails), 1 on usage/internal errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"teapot/internal/cliflags"
	"teapot/internal/fuzz"
	"teapot/internal/litmus"
	"teapot/internal/manifest"
	"teapot/internal/obs"
	"teapot/internal/protocols"
	"teapot/internal/runtime"
)

func main() {
	lf := cliflags.AddLitmus(flag.CommandLine, filepath.Join("testdata", "litmus"))
	var (
		seed    = flag.Uint64("seed", 1, "simulator/fuzzer master seed (0 = derive per test from its run shape)")
		workers = flag.Int("workers", 0, "model-checker BFS worker goroutines (0 = GOMAXPROCS)")
		only    = flag.String("only", "", "run only tests whose name contains this substring")
		jsonOut = flag.Bool("json", false, "print the machine-readable outcome-set report to stdout (human output moves to stderr)")
		out     = flag.String("out", "", "write fuzz reproducers to this file (default <test>-litmus-repro.json)")
		replay  = flag.String("replay", "", "replay a saved litmus schedule instead of running the corpus (its test is looked up in -corpus)")
		report  = cliflags.AddReport(flag.CommandLine)
	)
	flag.Parse()
	if !lf.ModeOK() {
		fmt.Fprintln(os.Stderr, cliflags.BadFlag("teapot-litmus", "mode", *lf.Mode, "sim | fuzz | mc | all"))
		os.Exit(1)
	}

	if *replay != "" {
		os.Exit(replayFile(*replay, *lf.Corpus))
	}

	tests, err := litmus.LoadDir(*lf.Corpus)
	if err != nil {
		fatal(err)
	}
	if *only != "" {
		var sel []*litmus.Test
		for _, t := range tests {
			if strings.Contains(t.Name, *only) {
				sel = append(sel, t)
			}
		}
		if len(sel) == 0 {
			fatal(fmt.Errorf("no test in %s matches -only %q", *lf.Corpus, *only))
		}
		tests = sel
	}

	var cov *obs.Coverage
	if *report != "" {
		for _, t := range tests[1:] {
			if t.Proto != tests[0].Proto {
				fatal(fmt.Errorf("-report needs a single-protocol selection, corpus mixes %s and %s (narrow with -only)",
					tests[0].Proto, t.Proto))
			}
		}
		cov = obs.NewCoverage()
	}

	// With -json, stdout is reserved for the report document.
	hout := os.Stdout
	if *jsonOut {
		hout = os.Stderr
	}

	opt := litmus.Options{Mode: *lf.Mode, Budget: *lf.Budget, Seed: *seed, Workers: *workers, Coverage: cov}
	var results []*litmus.Result
	failed := 0
	for _, t := range tests {
		res, err := litmus.Run(t, opt)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
		printResult(hout, res)
		if f := res.Failure(); f != nil {
			failed++
			saveReproducers(hout, res, *out)
		}
	}
	fmt.Fprintf(hout, "corpus %s: %d test(s), %d failed\n", *lf.Corpus, len(tests), failed)

	if *jsonOut {
		rep := litmus.NewReport(*lf.Corpus, *lf.Mode, results)
		data, err := rep.Encode()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
	}
	if *report != "" {
		writeManifest(*report, *lf.Corpus, *lf.Mode, tests, results, cov, *seed)
	}
	if failed > 0 {
		os.Exit(2)
	}
}

// printResult renders one test's differential verdict.
func printResult(w *os.File, res *litmus.Result) {
	t := res.Test
	shape := fmt.Sprintf("%s %dx%d", t.Proto, t.Nodes, len(t.Blocks))
	if t.Net != "" {
		shape += " net=" + t.Net
	}
	sets := ""
	for _, m := range res.Modes {
		switch m {
		case "mc":
			sets += fmt.Sprintf(" mc=%d", len(res.MC))
		case "sim":
			sets += fmt.Sprintf(" sim=%d", len(res.Sim))
		case "fuzz":
			sets += fmt.Sprintf(" fuzz=%d", len(res.Fuzz))
		}
	}
	verdict := "ok"
	if f := res.Failure(); f != nil {
		verdict = f.Class
	}
	fmt.Fprintf(w, "%-16s (%s): modes %s, %d mc states, outcomes%s, mc-only=%d — %s\n",
		t.Name, shape, strings.Join(res.Modes, "+"), res.MCStates, sets, len(res.MCOnly()), verdict)
	for _, k := range res.MCOnly() {
		fmt.Fprintf(w, "  mc-only outcome (sampling gap): %s\n", k)
	}
	for _, f := range res.Failures {
		fmt.Fprintf(w, "  FAILURE %s: %s\n", t.Name, f)
	}
}

// saveReproducers writes each fuzz failure's shrunk schedule next to the
// run (or at -out) and re-judges it from disk: the reproducer must carry
// everything needed to fail again, independent of this process.
func saveReproducers(w *os.File, res *litmus.Result, outPath string) {
	for _, f := range res.Failures {
		if f.Schedule == nil {
			continue
		}
		fmt.Fprintf(w, "  minimal reproducer: %d decision(s)\n", len(f.Schedule.Decisions))
		path := outPath
		if path == "" {
			path = res.Test.Name + "-litmus-repro.json"
		}
		if err := f.Schedule.Save(path); err != nil {
			fatal(err)
		}
		loaded, err := fuzz.Load(path)
		if err != nil {
			fatal(err)
		}
		class, desc, err := litmus.Replay(res.Test, loaded, litmus.Options{})
		if err != nil {
			fatal(err)
		}
		if class != f.Class {
			fatal(fmt.Errorf("saved reproducer %s replays as %q (%s), want %q", path, class, desc, f.Class))
		}
		fmt.Fprintf(w, "  reproducer written to %s and replays from disk (replay with: teapot-litmus -replay %s)\n", path, path)
	}
}

// replayFile re-judges a saved litmus schedule against its test. Exit code
// mirrors the corpus path: 2 when the failure reproduces, 0 when clean.
func replayFile(path, corpus string) int {
	s, err := fuzz.Load(path)
	if err != nil {
		fatal(err)
	}
	if s.Litmus == "" {
		fatal(fmt.Errorf("%s is not a litmus schedule (replay it with teapot-fuzz -replay)", path))
	}
	t, err := findTest(corpus, s.Litmus)
	if err != nil {
		fatal(err)
	}
	class, desc, err := litmus.Replay(t, s, litmus.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying %s against litmus %s\n", path, t.Name)
	if class == "" {
		fmt.Println("schedule ran clean: no violation")
		return 0
	}
	fmt.Printf("reproduced: %s: %s\n", class, desc)
	if s.Expect != "" && class != s.Expect {
		fmt.Printf("note: schedule expected class %q\n", s.Expect)
	}
	return 2
}

// findTest resolves a test name in the corpus directory, falling back to
// its fail/ subdirectory (negative-path reproducers reference those).
func findTest(corpus, name string) (*litmus.Test, error) {
	for _, dir := range []string{corpus, filepath.Join(corpus, "fail")} {
		tests, err := litmus.LoadDir(dir)
		if err != nil {
			continue
		}
		for _, t := range tests {
			if t.Name == name {
				return t, nil
			}
		}
	}
	return nil, fmt.Errorf("test %q not found in %s (or its fail/ subdirectory); point -corpus at its corpus", name, corpus)
}

// writeManifest lowers the corpus run into the shared run-manifest schema:
// one manifest per run, carrying the aggregate litmus stats and the
// coverage union of every substrate of every test.
func writeManifest(path, corpus, mode string, tests []*litmus.Test, results []*litmus.Result, cov *obs.Coverage, seed uint64) {
	nodes, blocks := 0, 0
	net := tests[0].Net
	for _, t := range tests {
		if t.Nodes > nodes {
			nodes = t.Nodes
		}
		if len(t.Blocks) > blocks {
			blocks = len(t.Blocks)
		}
		if t.Net != net {
			net = "" // mixed fault models: the per-test record is in -json
		}
	}
	ls := &manifest.LitmusStats{Corpus: corpus, Mode: mode, Tests: len(results)}
	for _, res := range results {
		ls.MCStates += res.MCStates
		if f := res.Failure(); f != nil {
			ls.Failed++
			if ls.Verdict == "" {
				ls.Verdict = fmt.Sprintf("%s: %s", res.Test.Name, f)
			}
		}
	}
	spec, err := protocols.Spec(tests[0].Proto, nodes, blocks)
	if err != nil {
		fatal(err)
	}
	man := &manifest.Manifest{
		ManifestVersion: manifest.Version,
		Tool:            "teapot-litmus",
		Protocol:        tests[0].Proto,
		Nodes:           nodes,
		Blocks:          blocks,
		Net:             net,
		Seed:            seed,
		Coverage:        cov.Report(runtime.ObsNames(spec.Proto)),
		Litmus:          ls,
	}
	if err := manifest.Write(path, man); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teapot-litmus:", err)
	os.Exit(1)
}

package ir

import (
	"strings"
	"testing"

	"teapot/internal/token"
)

func TestUsesAndDef(t *testing.T) {
	cases := []struct {
		in   Instr
		uses []Reg
		def  Reg
	}{
		{Instr{Op: OpConst, Dst: 1}, nil, 1},
		{Instr{Op: OpMove, Dst: 1, A: 2}, []Reg{2}, 1},
		{Instr{Op: OpBin, Dst: 1, A: 2, B: 3}, []Reg{2, 3}, 1},
		{Instr{Op: OpUn, Dst: 1, A: 2}, []Reg{2}, 1},
		{Instr{Op: OpStoreVar, A: 2}, []Reg{2}, NoReg},
		{Instr{Op: OpLoadVar, Dst: 4}, nil, 4},
		{Instr{Op: OpCall, Dst: 1, Args: []Reg{5, 6}}, []Reg{5, 6}, 1},
		{Instr{Op: OpCall, Dst: NoReg, Args: []Reg{5}}, []Reg{5}, NoReg},
		{Instr{Op: OpMakeState, Dst: 1, Args: []Reg{2}}, []Reg{2}, 1},
		{Instr{Op: OpMakeCont, Dst: 1, Args: []Reg{3}}, []Reg{3}, 1},
		{Instr{Op: OpSuspend, A: 2}, []Reg{2}, NoReg},
		{Instr{Op: OpResume, A: 2}, []Reg{2}, NoReg},
		{Instr{Op: OpBranch, A: 2}, []Reg{2}, NoReg},
		{Instr{Op: OpReturn}, nil, NoReg},
		{Instr{Op: OpPrint, Args: []Reg{7}}, []Reg{7}, NoReg},
	}
	for i, c := range cases {
		var got []Reg
		got = c.in.Uses(got)
		if len(got) != len(c.uses) {
			t.Errorf("case %d (%v): uses = %v, want %v", i, c.in.Op, got, c.uses)
			continue
		}
		for j := range got {
			if got[j] != c.uses[j] {
				t.Errorf("case %d: uses[%d] = %v, want %v", i, j, got[j], c.uses[j])
			}
		}
		if d := c.in.Def(); d != c.def {
			t.Errorf("case %d (%v): def = %v, want %v", i, c.in.Op, d, c.def)
		}
	}
}

func TestTerminates(t *testing.T) {
	term := []Op{OpSuspend, OpResume, OpReturn, OpJump}
	nonterm := []Op{OpNop, OpConst, OpMove, OpBin, OpCall, OpBranch, OpMakeCont}
	for _, op := range term {
		if !(&Instr{Op: op}).Terminates() {
			t.Errorf("%v should terminate", op)
		}
	}
	for _, op := range nonterm {
		if (&Instr{Op: op}).Terminates() {
			t.Errorf("%v should not terminate", op)
		}
	}
}

func TestSuccs(t *testing.T) {
	f := &Func{
		NumRegs: 4,
		Code: []Instr{
			{Op: OpBranch, A: 0, Idx: 2, Idx2: 3}, // 0
			{Op: OpNop},                           // 1 (unreachable filler)
			{Op: OpJump, Idx: 5},                  // 2
			{Op: OpSuspend, A: 1},                 // 3
			{Op: OpResume, A: 2},                  // 4 (fragment 1 start)
			{Op: OpReturn},                        // 5
		},
		Frags: []Fragment{{Start: 0, Site: -1}, {Start: 4, Site: 0}},
	}
	check := func(i int, want ...int) {
		t.Helper()
		var got []int
		got = f.Succs(i, got)
		if len(got) != len(want) {
			t.Fatalf("Succs(%d) = %v, want %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("Succs(%d) = %v, want %v", i, got, want)
			}
		}
	}
	check(0, 2, 3)
	check(1, 2)
	check(2, 5)
	check(3, 4) // suspend flows into the following fragment
	check(4)    // resume: no intra-handler successor
	check(5)    // return
}

func TestParamRegisterLayout(t *testing.T) {
	f := &Func{NumStateParams: 2, NumParams: 3, NumLocals: 2, NumRegs: 10}
	if f.StateParamReg(1) != 1 {
		t.Error("state param layout")
	}
	if f.ParamReg(0) != 2 || f.ParamReg(2) != 4 {
		t.Error("param layout")
	}
	if f.LocalReg(0) != 5 || f.LocalReg(1) != 6 {
		t.Error("local layout")
	}
}

func TestInstrStrings(t *testing.T) {
	fn := &FuncRef{Name: "Frob"}
	cases := map[string]Instr{
		"r1 := const 5 (kind 0)":      {Op: OpConst, Dst: 1, Int: 5},
		"r1 := r2":                    {Op: OpMove, Dst: 1, A: 2},
		"r3 := r1 + r2":               {Op: OpBin, Dst: 3, A: 1, B: 2, Tok: token.PLUS},
		"var[2] := r1":                {Op: OpStoreVar, Idx: 2, A: 1},
		"r1 := Frob(r2)":              {Op: OpCall, Dst: 1, Fn: fn, Args: []Reg{2}},
		"suspend -> r1":               {Op: OpSuspend, A: 1},
		"resume r1":                   {Op: OpResume, A: 1, Idx: -1},
		"resume r1 [const site 3]":    {Op: OpResume, A: 1, Idx: 3},
		"return":                      {Op: OpReturn},
		"jump 7":                      {Op: OpJump, Idx: 7},
		"branch r1 ? 2 : 3":           {Op: OpBranch, A: 1, Idx: 2, Idx2: 3},
		"r1 := state[4]{r2}":          {Op: OpMakeState, Dst: 1, Idx: 4, Args: []Reg{2}},
		"r1 := cont(frag 2, save r3)": {Op: OpMakeCont, Dst: 1, Idx: 2, Args: []Reg{3}},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", in.Op, got, want)
		}
	}
}

func TestDisassembleContainsFragments(t *testing.T) {
	f := &Func{
		Name: "S.M", StateIndex: 1, MsgIndex: 2,
		NumStateParams: 1, NumParams: 3, NumLocals: 0, NumRegs: 6,
		Code: []Instr{
			{Op: OpMakeCont, Dst: 4, Idx: 1},
			{Op: OpMakeState, Dst: 5, Idx: 0, Args: []Reg{4}},
			{Op: OpSuspend, A: 5},
			{Op: OpReturn},
		},
		Frags: []Fragment{{Start: 0, Site: -1}, {Start: 3, Site: 9, Saved: []Reg{1}}},
	}
	d := f.Disassemble()
	for _, want := range []string{"func S.M", "frag 0", "frag 1 (site=9 saved=[1])", "suspend"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

// Package protocols registers the bundled protocol sources under the
// names the command-line drivers accept (teapotc -builtin, teapot-vet),
// so every tool resolves the same name to the same source text and
// start-state configuration.
package protocols

import (
	"teapot/internal/core"
	"teapot/internal/protocols/bufwrite"
	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
	"teapot/internal/protocols/update"
)

// Entry is one bundled protocol.
type Entry struct {
	// Name is the driver-facing name ("stache", "lcm-update", ...).
	Name string
	// Config compiles the protocol (Optimize is on; callers may flip it).
	Config core.Config
	// Buggy marks the seeded-bug fixtures: protocols expected to FAIL
	// verification, shipped as negative test material. Drivers that sweep
	// "all bundled protocols" skip them unless named explicitly.
	Buggy bool
}

// All returns the bundled protocols in a fixed order.
func All() []Entry {
	cfg := func(name, src, home string) core.Config {
		return core.Config{
			Name: name + ".tea", Source: src, Optimize: true,
			HomeStart: home, CacheStart: "Cache_Inv",
		}
	}
	return []Entry{
		{Name: "stache", Config: cfg("stache", stache.Source, "Home_Idle")},
		{Name: "stache-ft", Config: cfg("stache-ft", stache.FTSource, "Home_Idle")},
		{Name: "stache-cas", Config: cfg("stache-cas", stache.CASSource, "Home_Idle")},
		// Not buggy — it verifies — but deliberately NOT node-symmetric:
		// the negative fixture for the model checker's certificate-gated
		// symmetry reduction (see internal/analysis.ProveSymmetry).
		{Name: "stache-asym", Config: cfg("stache-asym", stache.AsymSource, "Home_Idle")},
		{Name: "stache-buggy", Config: cfg("stache-buggy", stache.BuggySource, "Home_Idle"), Buggy: true},
		{Name: "stache-ft-buggy", Config: cfg("stache-ft-buggy", stache.FTBuggySource, "Home_Idle"), Buggy: true},
		{Name: "lcm", Config: cfg("lcm", lcm.Source(lcm.Base), "Home_Idle")},
		{Name: "lcm-update", Config: cfg("lcm-update", lcm.Source(lcm.Update), "Home_Idle")},
		{Name: "lcm-mcc", Config: cfg("lcm-mcc", lcm.Source(lcm.MCC), "Home_Idle")},
		{Name: "lcm-both", Config: cfg("lcm-both", lcm.Source(lcm.Both), "Home_Idle")},
		{Name: "bufwrite", Config: cfg("bufwrite", bufwrite.Source, "Home_Idle")},
		{Name: "update", Config: cfg("update", update.Source, "Home")},
	}
}

// Lookup finds a bundled protocol by name.
func Lookup(name string) (Entry, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Names lists the registered names in registry order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name
	}
	return names
}

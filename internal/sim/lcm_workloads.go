package sim

import "teapot/internal/tempest"

// The three Table-2 workloads (adaptive, stencil, unstruct). All are
// phase-structured: a barrier, phase entry, a burst of reads and writes on
// private LCM copies, phase exit, and another barrier — the copy-in/
// copy-out discipline LCM was built for.

func barrier() tempest.Op { return tempest.Op{Kind: tempest.OpBarrier} }

// beginPhase/endPhase announce phase entry/exit for one block the node
// will touch (Addr -1 would sweep all blocks; the workloads know their
// touch sets, as real LCM programs do).
func beginPhase(b int) tempest.Op { return tempest.Op{Kind: tempest.OpBeginPhase, Addr: b} }
func endPhase(b int) tempest.Op   { return tempest.Op{Kind: tempest.OpEndPhase, Addr: b} }

// Stencil is a regular 2-D relaxation run through LCM phases: every phase
// each node pulls copies of its own band and the adjacent boundary rows,
// updates privately, and reconciles at the end of the phase.
func Stencil(spec WorkloadSpec) *Workload {
	band := spec.Scale
	if band == 0 {
		band = 4
	}
	blocks := band * spec.Nodes
	ops := make([][]tempest.Op, spec.Nodes)
	for it := 0; it < spec.Iters; it++ {
		for n := 0; n < spec.Nodes; n++ {
			north := ((n-1+spec.Nodes)%spec.Nodes)*band + band - 1
			south := ((n + 1) % spec.Nodes) * band
			touched := []int{north, south}
			for r := 0; r < band; r++ {
				touched = append(touched, n*band+r)
			}
			ops[n] = append(ops[n], barrier())
			for _, b := range touched {
				ops[n] = append(ops[n], beginPhase(b))
			}
			ops[n] = append(ops[n], read(north), read(south), compute(100))
			for r := 0; r < band; r++ {
				row := n*band + r
				ops[n] = append(ops[n], read(row), compute(60), write(row))
			}
			for _, b := range touched {
				ops[n] = append(ops[n], endPhase(b))
			}
			ops[n] = append(ops[n], barrier())
		}
	}
	w := &Workload{Name: "stencil", Blocks: blocks, Trace: NewTrace(ops)}
	return remapBlocks(w, spec.Nodes, band)
}

// Adaptive models an adaptively refined mesh: the set of blocks a node
// touches drifts between phases, so consumers change and copies migrate.
func Adaptive(spec WorkloadSpec) *Workload {
	cells := spec.Scale
	if cells == 0 {
		cells = 2 * spec.Nodes
	}
	r := newRNG(spec.Seed | 1)
	ops := make([][]tempest.Op, spec.Nodes)
	for it := 0; it < spec.Iters; it++ {
		for n := 0; n < spec.Nodes; n++ {
			// A drifting working set: a base region plus refined cells.
			base := (n + it) % cells
			touched := []int{}
			for k := 0; k < 3; k++ {
				touched = append(touched, (base+k)%cells)
			}
			if r.intn(2) == 0 { // refinement touches an extra random cell
				touched = append(touched, r.intn(cells))
			}
			touched = dedupe(touched)
			ops[n] = append(ops[n], barrier())
			for _, c := range touched {
				ops[n] = append(ops[n], beginPhase(c))
			}
			for _, c := range touched {
				ops[n] = append(ops[n], read(c), compute(70), write(c))
			}
			for _, c := range touched {
				ops[n] = append(ops[n], endPhase(c))
			}
			ops[n] = append(ops[n], barrier())
		}
	}
	return &Workload{Name: "adaptive", Blocks: cells, Trace: NewTrace(ops)}
}

// Unstruct models an unstructured-mesh sweep: a fixed random graph decides
// which blocks each node reads and updates every phase.
func Unstruct(spec WorkloadSpec) *Workload {
	cells := spec.Scale
	if cells == 0 {
		cells = 3 * spec.Nodes
	}
	r := newRNG(spec.Seed | 1)
	// Fixed sparse structure: each node touches the same 4 cells each phase.
	touch := make([][]int, spec.Nodes)
	for n := range touch {
		for k := 0; k < 4; k++ {
			touch[n] = append(touch[n], r.intn(cells))
		}
		touch[n] = dedupe(touch[n])
	}
	ops := make([][]tempest.Op, spec.Nodes)
	for it := 0; it < spec.Iters; it++ {
		for n := 0; n < spec.Nodes; n++ {
			ops[n] = append(ops[n], barrier())
			for _, c := range touch[n] {
				ops[n] = append(ops[n], beginPhase(c))
			}
			for _, c := range touch[n] {
				ops[n] = append(ops[n], read(c), compute(50), write(c), compute(30))
			}
			for _, c := range touch[n] {
				ops[n] = append(ops[n], endPhase(c))
			}
			ops[n] = append(ops[n], barrier())
		}
	}
	return &Workload{Name: "unstruct", Blocks: cells, Trace: NewTrace(ops)}
}

// Table2Workloads builds the three LCM benchmarks.
func Table2Workloads(nodes, iters int) []*Workload {
	return []*Workload{
		Adaptive(WorkloadSpec{Nodes: nodes, Iters: iters, Seed: 55}),
		Stencil(WorkloadSpec{Nodes: nodes, Iters: iters, Seed: 66}),
		Unstruct(WorkloadSpec{Nodes: nodes, Iters: iters, Seed: 77}),
	}
}

// dedupe removes duplicates while preserving order.
func dedupe(xs []int) []int {
	seen := map[int]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

package mc

import (
	"sort"
	"sync"
)

// The visited set is the checker's dominant memory consumer, so it is kept
// compact and concurrent:
//
//   - Every discovered state lives once in an append-only arena holding its
//     canonical encoding plus eight bytes of metadata (parent arena index
//     and the ordinal of the action that produced it) — the counterexample
//     trace is re-derived by replaying that chain, instead of storing a
//     description string per state as the first checker did.
//   - Membership is a table of numShards shards, each a mutex-protected map
//     keyed by a 64-bit FNV-1a fingerprint of the encoding. A fingerprint
//     hit is confirmed against the full key in the arena, so hash
//     collisions can never merge distinct states (unlike Murphi's lossy
//     hash compaction, exactness is preserved).
//   - Discoveries made while a BFS layer is expanding are buffered as
//     per-shard "claims" and folded into the arena only at the layer
//     barrier, ordered by (parent position, action ordinal). Concurrent
//     workers may race to claim the same successor, but the merge keeps the
//     smallest claim — the transition a sequential scan would have taken —
//     so arena order, recorded parents, and therefore every result the
//     checker reports are identical for any worker count.

const (
	numShards = 64
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fingerprint is 64-bit FNV-1a over the canonical encoding.
func fingerprint(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// stateRec is one visited state: its canonical encoding and the compact
// parent chain used to rebuild counterexample traces.
type stateRec struct {
	key    string
	parent int32 // arena index of the parent state, -1 for the root
	action int32 // ordinal into the parent's action list, -1 for the root
	// perm is the index (into the run's permutation group) of the
	// permutation that mapped the concretely-reached successor onto key.
	// Always 0 (identity) when symmetry reduction is off; buildViolation
	// composes these down the parent chain to rebuild traces in the
	// original, unpermuted coordinates.
	perm int32
}

// claim is a tentative intra-layer discovery: state key was reached from
// the state at layer position pos via its ord-th action, permuted onto its
// canonical representative by group element perm.
type claim struct {
	key  string
	fp   uint64
	pos  int32
	ord  int32
	perm int32
	next *claim // chain of distinct pending keys sharing a fingerprint
}

type shard struct {
	mu      sync.Mutex
	seen    map[uint64][]int32 // fingerprint -> committed arena indices
	pending map[uint64]*claim  // fingerprint -> claims made this layer
}

// visitedTable is the sharded visited set plus the state arena.
type visitedTable struct {
	hash   func(string) uint64 // fingerprint; replaceable in tests
	shards [numShards]shard
	arena  []stateRec

	// keyBytes and counts are running totals maintained at addRoot/commit
	// (never while workers hold shard locks), so progress snapshots are
	// O(shards), not O(states).
	keyBytes int64
	counts   [numShards]int64 // committed states per shard
}

func newVisited() *visitedTable {
	t := &visitedTable{hash: fingerprint}
	for i := range t.shards {
		t.shards[i].seen = make(map[uint64][]int32)
		t.shards[i].pending = make(map[uint64]*claim)
	}
	return t
}

// addRoot installs the initial state and returns its arena index. perm is
// the group element that canonicalized the initial world (0 when symmetry
// reduction is off).
func (t *visitedTable) addRoot(key string, perm int32) int32 {
	fp := t.hash(key)
	t.arena = append(t.arena, stateRec{key: key, parent: -1, action: -1, perm: perm})
	s := &t.shards[fp%numShards]
	s.seen[fp] = append(s.seen[fp], 0)
	t.keyBytes += int64(len(key))
	t.counts[fp%numShards]++
	return 0
}

// claim records that key was reached from layer position pos via action
// ord. Already-committed states are ignored; claims for the same key made
// during one layer are merged keeping the smallest (pos, ord). Safe for
// concurrent use while a layer expands.
func (t *visitedTable) claim(key string, pos, ord, perm int32) {
	fp := t.hash(key)
	s := &t.shards[fp%numShards]
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, idx := range s.seen[fp] {
		// The arena is only appended to at layer barriers, never while
		// workers hold shard locks, so reading it here is race-free.
		if t.arena[idx].key == key {
			return
		}
	}
	for c := s.pending[fp]; c != nil; c = c.next {
		if c.key == key {
			if pos < c.pos || (pos == c.pos && ord < c.ord) {
				c.pos, c.ord, c.perm = pos, ord, perm
			}
			return
		}
	}
	s.pending[fp] = &claim{key: key, fp: fp, pos: pos, ord: ord, perm: perm, next: s.pending[fp]}
}

// commit folds the layer's claims into the arena in deterministic
// (parent position, action ordinal) order and returns the next layer as
// arena indices. layer maps claim positions back to arena indices. Called
// at the barrier only — never concurrently with claim.
func (t *visitedTable) commit(layer []int32) []int32 {
	var claims []*claim
	for i := range t.shards {
		s := &t.shards[i]
		for _, c := range s.pending {
			for ; c != nil; c = c.next {
				claims = append(claims, c)
			}
		}
		clear(s.pending)
	}
	// (pos, ord) pairs are unique — one transition yields one successor,
	// and duplicate keys were merged in claim — so this order is total.
	sort.Slice(claims, func(i, j int) bool {
		a, b := claims[i], claims[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.ord < b.ord
	})
	next := make([]int32, 0, len(claims))
	for _, c := range claims {
		idx := int32(len(t.arena))
		t.arena = append(t.arena, stateRec{key: c.key, parent: layer[c.pos], action: c.ord, perm: c.perm})
		s := &t.shards[c.fp%numShards]
		s.seen[c.fp] = append(s.seen[c.fp], idx)
		t.keyBytes += int64(len(c.key))
		t.counts[c.fp%numShards]++
		next = append(next, idx)
	}
	return next
}

// bytes estimates the retained size of the visited set: key bytes plus
// per-state bookkeeping (string header, parent/action, shard index entry).
func (t *visitedTable) bytes() int64 {
	return t.keyBytes + int64(len(t.arena))*32
}

// shardStats returns the smallest and largest committed-state count across
// the shards — a balance indicator for the fingerprint distribution.
func (t *visitedTable) shardStats() (min, max int64) {
	min = t.counts[0]
	for _, n := range t.counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	return min, max
}

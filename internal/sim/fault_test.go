package sim_test

import (
	"reflect"
	"testing"

	"teapot/internal/netmodel"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

func runStacheFT(t *testing.T, w *sim.Workload, nodes int, net netmodel.Model, seed uint64) *tempest.Stats {
	t.Helper()
	proto := stache.MustCompileFT(true).Protocol
	stats, err := sim.Run(sim.Config{
		Nodes:  nodes,
		Blocks: w.Blocks,
		Cost:   tempest.DefaultCost,
		Tags:   tempest.ResolveTags(proto),
		MakeEngine: func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(proto, nodes, w.Blocks, m, stache.MustFTSupport(proto, nodes))
		},
		Program: w.Trace,
		Net:     net,
		Seed:    seed,
	})
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return stats
}

// TestSimFaultInjectionDeterministic: the same (Config, Seed) must
// reproduce the identical run — every statistic, including the injected
// fault counts — and a different seed must still complete.
func TestSimFaultInjectionDeterministic(t *testing.T) {
	const nodes = 4
	net := netmodel.Model{MaxDrops: 8, MaxDups: 8, Delay: 2}
	w := sim.Table1Workloads(nodes, 2)[0]
	a := runStacheFT(t, w, nodes, net, 42)
	b := runStacheFT(t, w, nodes, net, 42)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different runs:\n%+v\n%+v", a, b)
	}
	if a.Drops+a.Dups+a.Delays == 0 {
		t.Errorf("no faults injected: %+v", a)
	}
	if a.Drops > 0 && a.Timeouts == 0 {
		t.Errorf("%d drops but no timeout recovery fired: %+v", a.Drops, a)
	}
	if a.Cycles <= 0 || a.Faults == 0 {
		t.Errorf("run did not do real work: %+v", a)
	}
	c := runStacheFT(t, w, nodes, net, 7)
	if c.Cycles <= 0 {
		t.Errorf("seed 7 run did not complete: %+v", c)
	}
}

// TestSimCleanNetUnchanged: a zero NetModel must not perturb a run — the
// injector is nil and no fault or timeout machinery engages.
func TestSimCleanNetUnchanged(t *testing.T) {
	const nodes = 4
	w := sim.Table1Workloads(nodes, 2)[0]
	a := runStacheFT(t, w, nodes, netmodel.Model{}, 1)
	if a.Drops+a.Dups+a.Delays+a.Timeouts != 0 {
		t.Errorf("faults on a clean network: %+v", a)
	}
	b := runStacheFT(t, w, nodes, netmodel.Model{}, 99)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("seed changed a clean-network run:\n%+v\n%+v", a, b)
	}
}

// TestSimCorruptRejected: corruption is a checker-only fault.
func TestSimCorruptRejected(t *testing.T) {
	w := sim.Table1Workloads(2, 1)[0]
	proto := stache.MustCompile(true).Protocol
	_, err := sim.Run(sim.Config{
		Nodes:  2,
		Blocks: w.Blocks,
		Cost:   tempest.DefaultCost,
		Tags:   tempest.ResolveTags(proto),
		MakeEngine: func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(proto, 2, w.Blocks, m, stache.MustSupport(proto))
		},
		Program: w.Trace,
		Net:     netmodel.Model{MaxCorrupts: 1},
	})
	if err == nil {
		t.Fatal("corrupt budget accepted by the simulator")
	}
}

// Package oracle judges executed protocol runs for memory coherence,
// independently of the protocol under test. It consumes the obs event
// stream a Tempest run emits under sim.Config.ObsMemory — access-mode
// changes, data installs, and completed reads/writes, each carrying the
// machine's modeled data versions — and checks per-block invariants:
//
//   - SWMR: at every handler boundary, a block has at most one read-write
//     copy, and never a read-write copy alongside read-only copies
//     (buffered-mode copies are exempt: weak-ordering protocols share
//     buffered writers with readers by design).
//   - ReadLatest: every completed read observes the version created by the
//     most recent completed write of that block — the "reads return the
//     value of the most recent write" half of coherence under the
//     simulator's single linearization (its virtual-time event order).
//   - NoLostWrites: at end of run, the latest version of every written
//     block survives somewhere a future read could legally be served from
//     (a node with a valid copy, or the block's home).
//
// The oracle knows nothing about the protocol's states or messages; it
// trusts only the machine-level event stream. That makes it the executable
// counterpart of the model checker's coherence invariant: mc proves SWMR
// over all schedules of a small configuration, the oracle checks the full
// data-value property on whichever schedules actually ran.
package oracle

import (
	"fmt"
	"strings"

	"teapot/internal/obs"
	"teapot/internal/sema"
)

// Invariants selects which checks run. Data-value checks (ReadLatest,
// NoLostWrites) assume an invalidation-style protocol where a completed
// write makes every other copy unreadable; write-through and buffered
// protocols (update, bufwrite) propagate values asynchronously and are
// judged on SWMR only.
type Invariants struct {
	SWMR         bool
	ReadLatest   bool
	NoLostWrites bool
}

// AllInvariants enables every check.
func AllInvariants() Invariants {
	return Invariants{SWMR: true, ReadLatest: true, NoLostWrites: true}
}

// SWMROnly checks the access-control invariant alone.
func SWMROnly() Invariants { return Invariants{SWMR: true} }

// Config describes the run being judged.
type Config struct {
	Nodes  int
	Blocks int
	// HomeOf gives each block's home node (default id % Nodes), mirroring
	// the machine's initial access map: the home starts read-write.
	HomeOf func(id int) int
	Inv    Invariants

	// InitMem mirrors the machine's initial block values (litmus runs;
	// see tempest.Config.InitMem): InitMem[b] is version 0 of block b, so
	// a read completing before any write legally observes it instead of
	// tripping ReadLatest. Values are version-0 packed words — for 32-bit
	// values those are the values themselves (tempest.PackVal(0, v) == v).
	InitMem []int64

	// TrackReads records every completed read's observed value per node,
	// in completion order — the litmus harness reads them back as the
	// scripted workload's register file (Reads) and judges the final state
	// (FinalValue) as its expected/forbidden-outcome invariant profile.
	TrackReads bool
}

// Violation is the first invariant failure observed, with the violating
// event's position and the events leading up to it.
type Violation struct {
	Invariant string // "swmr" | "read-latest" | "no-lost-writes"
	Node      int    // node whose access/copy violated (or -1)
	Block     int
	Detail    string
	Seq       int64       // oracle sequence number of the violating event
	Context   []obs.Event // up to the last contextSize events, oldest first
}

func (v *Violation) Error() string {
	return fmt.Sprintf("coherence violation (%s) at event %d, node %d, block %d: %s",
		v.Invariant, v.Seq, v.Node, v.Block, v.Detail)
}

// ContextString renders the violation's event context one line per event.
func (v *Violation) ContextString(names obs.Names) string {
	var b strings.Builder
	for _, ev := range v.Context {
		fmt.Fprintf(&b, "  [%6d] t=%-8d node %d blk %d %s", ev.Seq, ev.Time, ev.Node, ev.Block, ev.Kind)
		switch ev.Kind {
		case obs.KindAccess:
			fmt.Fprintf(&b, " -> %s", accName(sema.AccessMode(ev.Arg)))
		case obs.KindData:
			fmt.Fprintf(&b, " %s from node %d (v%d)", names.Message(ev.Msg), ev.Peer, ev.Arg)
		case obs.KindRead, obs.KindWrite:
			fmt.Fprintf(&b, " v%d", ev.Arg)
		case obs.KindDeliver, obs.KindSend, obs.KindDrop, obs.KindDup:
			fmt.Fprintf(&b, " %s peer %d", names.Message(ev.Msg), ev.Peer)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func accName(m sema.AccessMode) string {
	switch m {
	case sema.AccInvalid:
		return "Invalid"
	case sema.AccReadOnly:
		return "ReadOnly"
	case sema.AccReadWrite:
		return "ReadWrite"
	case sema.AccBuffered:
		return "Buffered"
	}
	return fmt.Sprintf("Access(%d)", int(m))
}

const contextSize = 16

// Checker is a streaming oracle: wire it as (part of) the run's obs sink,
// then call Finish. The first violation is latched; later events are
// still consumed (cheaply) but never overwrite it.
type Checker struct {
	cfg Config
	now func() int64

	access  []sema.AccessMode // node×block current mode
	mem     []int64           // node×block installed version
	version []int64           // per block: latest completed write
	writer  []int32           // per block: node of latest write (-1 none)
	dirty   []bool            // per block: access map changed since last SWMR eval
	reads   [][]int64         // per node: observed read values (Config.TrackReads)

	ring []obs.Event
	seq  int64
	v    *Violation
}

// New builds a checker for a run over nodes×blocks.
func New(cfg Config) *Checker {
	if cfg.HomeOf == nil {
		nodes := cfg.Nodes
		cfg.HomeOf = func(id int) int { return id % nodes }
	}
	c := &Checker{
		cfg:     cfg,
		access:  make([]sema.AccessMode, cfg.Nodes*cfg.Blocks),
		mem:     make([]int64, cfg.Nodes*cfg.Blocks),
		version: make([]int64, cfg.Blocks),
		writer:  make([]int32, cfg.Blocks),
		dirty:   make([]bool, cfg.Blocks),
	}
	for b := 0; b < cfg.Blocks; b++ {
		c.access[cfg.HomeOf(b)*cfg.Blocks+b] = sema.AccReadWrite
		c.writer[b] = -1
	}
	for b, v := range cfg.InitMem {
		if b >= cfg.Blocks {
			break
		}
		// Version 0 of the block: the latest "write" until a real one, held
		// by every node's copy (mirroring the machine's InitMem install).
		c.version[b] = v
		for n := 0; n < cfg.Nodes; n++ {
			c.mem[n*cfg.Blocks+b] = v
		}
	}
	if cfg.TrackReads {
		c.reads = make([][]int64, cfg.Nodes)
	}
	return c
}

// SetClock implements obs.ClockSetter; timestamps make the violation
// context line up with Chrome traces of the same run.
func (c *Checker) SetClock(now func() int64) { c.now = now }

// Violation returns the first latched violation, or nil.
func (c *Checker) Violation() *Violation { return c.v }

// Emit implements obs.Sink.
func (c *Checker) Emit(ev obs.Event) {
	ev.Seq = c.seq
	c.seq++
	if c.now != nil {
		ev.Time = c.now()
	}
	if len(c.ring) < contextSize {
		c.ring = append(c.ring, ev)
	} else {
		copy(c.ring, c.ring[1:])
		c.ring[contextSize-1] = ev
	}
	if c.v != nil {
		return
	}
	switch ev.Kind {
	case obs.KindAccess:
		c.setAccess(int(ev.Node), int(ev.Block), sema.AccessMode(ev.Arg))
	case obs.KindData:
		c.mem[int(ev.Node)*c.cfg.Blocks+int(ev.Block)] = ev.Arg
	case obs.KindDeliver, obs.KindDequeue:
		// Handler boundary: transient mid-handler access states have
		// settled, so the dirty blocks are judged now (mirroring mc, which
		// checks invariants on post-handler states only).
		c.evalDirty(ev)
	case obs.KindRead:
		c.evalDirty(ev)
		if c.v != nil {
			return
		}
		c.checkRead(ev)
	case obs.KindWrite:
		c.evalDirty(ev)
		if c.v != nil {
			return
		}
		c.checkWrite(ev)
	}
}

func (c *Checker) setAccess(node, block int, mode sema.AccessMode) {
	slot := node*c.cfg.Blocks + block
	if c.access[slot] != mode {
		c.access[slot] = mode
		c.dirty[block] = true
	}
}

// evalDirty re-checks SWMR on every block whose access map changed.
func (c *Checker) evalDirty(at obs.Event) {
	if !c.cfg.Inv.SWMR {
		for b := range c.dirty {
			c.dirty[b] = false
		}
		return
	}
	for b := 0; b < c.cfg.Blocks; b++ {
		if !c.dirty[b] {
			continue
		}
		c.dirty[b] = false
		if c.v == nil {
			c.checkSWMR(b, at)
		}
	}
}

func (c *Checker) checkSWMR(block int, at obs.Event) {
	writers, readers := 0, 0
	writerNode, readerNode := -1, -1
	for n := 0; n < c.cfg.Nodes; n++ {
		switch c.access[n*c.cfg.Blocks+block] {
		case sema.AccReadWrite:
			if writers == 0 {
				writerNode = n
			} else {
				readerNode = n // second writer, for the report
			}
			writers++
		case sema.AccReadOnly:
			if readers == 0 {
				readerNode = n
			}
			readers++
		}
	}
	if writers > 1 {
		c.fail("swmr", writerNode, block, at,
			fmt.Sprintf("two read-write copies (nodes %d and %d)", writerNode, readerNode))
	} else if writers == 1 && readers > 0 {
		c.fail("swmr", writerNode, block, at,
			fmt.Sprintf("read-write copy on node %d alongside %d read-only cop(y/ies) (e.g. node %d)",
				writerNode, readers, readerNode))
	}
}

func (c *Checker) checkRead(ev obs.Event) {
	node, block := int(ev.Node), int(ev.Block)
	if c.reads != nil {
		c.reads[node] = append(c.reads[node], ev.Arg)
	}
	mode := c.access[node*c.cfg.Blocks+block]
	if mode != sema.AccReadOnly && mode != sema.AccReadWrite {
		c.fail("swmr", node, block, ev,
			fmt.Sprintf("read completed under %s access", accName(mode)))
		return
	}
	if c.cfg.Inv.ReadLatest && ev.Arg != c.version[block] {
		c.fail("read-latest", node, block, ev,
			fmt.Sprintf("read observed version %d, latest write is version %d (by node %d)",
				ev.Arg, c.version[block], c.writer[block]))
	}
}

func (c *Checker) checkWrite(ev obs.Event) {
	node, block := int(ev.Node), int(ev.Block)
	mode := c.access[node*c.cfg.Blocks+block]
	protocolPerformed := ev.Site != 0
	writable := mode == sema.AccReadWrite || mode == sema.AccBuffered ||
		(protocolPerformed && mode == sema.AccReadOnly)
	if !writable {
		c.fail("swmr", node, block, ev,
			fmt.Sprintf("write completed under %s access", accName(mode)))
		return
	}
	c.version[block] = ev.Arg
	c.writer[block] = ev.Node
	c.mem[node*c.cfg.Blocks+block] = ev.Arg
}

// Finish runs the end-of-run checks and returns the first violation seen
// anywhere in the run (nil = coherent).
func (c *Checker) Finish() *Violation {
	end := obs.Event{Kind: obs.KindDeliver, Node: -1, Block: -1, Seq: c.seq}
	if c.v == nil {
		c.evalDirty(end)
	}
	if c.v == nil && c.cfg.Inv.NoLostWrites {
		for b := 0; b < c.cfg.Blocks; b++ {
			if c.version[b] == 0 {
				continue // never written
			}
			if !c.survives(b) {
				c.fail("no-lost-writes", int(c.writer[b]), b, end,
					fmt.Sprintf("latest write (version %d by node %d) survives on no valid copy and not at home node %d",
						c.version[b], c.writer[b], c.cfg.HomeOf(b)))
			}
			if c.v != nil {
				break
			}
		}
	}
	return c.v
}

// survives reports whether block b's latest version could still serve a
// future read: held by a node with a valid (readable) copy, or present at
// the block's home — the fallback server every directory protocol refills
// from.
func (c *Checker) survives(b int) bool {
	for n := 0; n < c.cfg.Nodes; n++ {
		if c.mem[n*c.cfg.Blocks+b] != c.version[b] {
			continue
		}
		mode := c.access[n*c.cfg.Blocks+b]
		if mode == sema.AccReadOnly || mode == sema.AccReadWrite || n == c.cfg.HomeOf(b) {
			return true
		}
	}
	return false
}

// Reads returns the values node's completed reads observed, in completion
// order (Config.TrackReads; nil otherwise). The returned slice is the
// checker's own — callers must not mutate it.
func (c *Checker) Reads(node int) []int64 {
	if c.reads == nil {
		return nil
	}
	return c.reads[node]
}

// FinalValue returns the packed value of block b's latest completed write
// (the initial value if b was never written) — the run's final memory
// image for litmus outcome judging.
func (c *Checker) FinalValue(b int) int64 { return c.version[b] }

func (c *Checker) fail(inv string, node, block int, at obs.Event, detail string) {
	ctx := make([]obs.Event, len(c.ring))
	copy(ctx, c.ring)
	c.v = &Violation{
		Invariant: inv,
		Node:      node,
		Block:     block,
		Detail:    detail,
		Seq:       at.Seq,
		Context:   ctx,
	}
}

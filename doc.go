// Package teapot is a Go reproduction of "Teapot: Language Support for
// Writing Memory Coherence Protocols" (Chandra, Richards & Larus,
// PLDI 1996): a domain-specific language with continuations for writing
// shared-memory coherence protocols, a compiler that turns suspending
// handlers into atomically executable fragments, dual back-ends (an
// executable protocol and a model-checking target), a Tempest-style
// simulated multiprocessor to run protocols on, and the Stache, LCM, and
// Buffered-write protocols from the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced tables and figures. The public entry
// point is internal/core.Compile; the runnable examples live under
// examples/.
package teapot

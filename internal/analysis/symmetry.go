package analysis

import (
	"sort"

	"teapot/internal/ir"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/source"
	"teapot/internal/token"
)

// Symmetry certificates.
//
// A Teapot protocol compiled for N nodes and B blocks is *node-symmetric*
// when every handler treats concrete node identities opaquely: node values
// may be stored, passed, compared for (in)equality, and fed to the
// sanctioned accessors (MyNode, HomeNode, MessageSrc), but never
// hard-coded, ordered, or mixed into arithmetic. Block symmetry is the
// same property over block/address identities. When both hold, permuting
// the non-home node ids (respectively the block ids, with the home map
// carried along) maps reachable states to reachable states and violations
// to violations — the classical scalarset argument — so the model checker
// may soundly canonicalize each world to a permutation-orbit
// representative before fingerprinting.
//
// ProveSymmetry decides the property per dimension with a flow-insensitive
// tag dataflow over the compiled IR and emits a machine-checkable
// SymmetryCert. Refutations carry a concrete witness instruction. Support
// routines are opaque to the IR, so every non-builtin call becomes a proof
// obligation the runtime support must vouch for (see runtime.SymmetryDecl);
// the checker refuses reduction unless every obligation is covered.

// SymmetryCert is the machine-checkable result of the symmetry prover for
// one compiled protocol.
type SymmetryCert struct {
	Protocol    string               `json:"protocol"`
	Node        SymmetryDim          `json:"node"`
	Block       SymmetryDim          `json:"block"`
	Obligations []SymmetryObligation `json:"obligations,omitempty"`
}

// SymmetryDim is the verdict for one permutation dimension.
type SymmetryDim struct {
	Equivariant bool              `json:"equivariant"`
	Witnesses   []SymmetryWitness `json:"witnesses,omitempty"`
}

// SymmetryWitness pins a refutation to a concrete IR instruction. Line and
// Col mirror Pos for the JSON schema (findings use the same flat shape).
type SymmetryWitness struct {
	Handler string     `json:"handler"`
	Index   int        `json:"index"`
	Instr   string     `json:"instr"`
	Pos     source.Pos `json:"-"`
	Line    int        `json:"line"`
	Col     int        `json:"col"`
	Reason  string     `json:"reason"`
}

// SymmetryObligation names a support routine the IR proof cannot see
// through; the runtime support must declare it equivariant before the
// model checker may consume the certificate.
type SymmetryObligation struct {
	Routine string `json:"routine"`
}

// Holds reports whether both dimensions are statically equivariant.
// Obligations still gate reduction: they must be discharged by the
// support's SymmetryDecl at mc configuration time.
func (c *SymmetryCert) Holds() bool {
	return c.Node.Equivariant && c.Block.Equivariant
}

// symTag marks registers that may carry identity-sensitive values.
type symTag uint8

const (
	tagNode symTag = 1 << iota
	tagID
)

func typeTag(t sema.Type) symTag {
	switch t.Kind {
	case sema.TNode:
		return tagNode
	case sema.TID:
		return tagID
	}
	return 0
}

// ProveSymmetry runs the symmetry prover over a compiled protocol.
func ProveSymmetry(p *runtime.Protocol) *SymmetryCert {
	sp := p.IR.Sema
	cert := &SymmetryCert{
		Protocol: sp.ProtoName,
		Node:     SymmetryDim{Equivariant: true},
		Block:    SymmetryDim{Equivariant: true},
	}
	obligations := map[string]bool{}
	for _, f := range p.IR.Funcs {
		proveFunc(sp, f, cert, obligations)
	}
	names := make([]string, 0, len(obligations))
	for n := range obligations {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cert.Obligations = append(cert.Obligations, SymmetryObligation{Routine: n})
	}
	cert.Node.Equivariant = len(cert.Node.Witnesses) == 0
	cert.Block.Equivariant = len(cert.Block.Witnesses) == 0
	return cert
}

// seedTags assigns the declared types of state parameters, handler
// parameters, and locals to their registers; temporaries start untagged.
func seedTags(sp *sema.Program, f *ir.Func) []symTag {
	tags := make([]symTag, f.NumRegs)
	st := sp.States[f.StateIndex]
	for i, p := range st.Params {
		if i < f.NumStateParams {
			tags[f.StateParamReg(i)] |= typeTag(p.Type)
		}
	}
	for _, h := range st.Handlers {
		if (h.Msg == nil && f.MsgIndex >= 0) || (h.Msg != nil && h.Msg.Index != f.MsgIndex) {
			continue
		}
		for i, p := range h.Params {
			if i < f.NumParams {
				tags[f.ParamReg(i)] |= typeTag(p.Type)
			}
		}
		for i, v := range h.Locals {
			if i < f.NumLocals {
				tags[f.LocalReg(i)] |= typeTag(v.Type)
			}
		}
		break
	}
	return tags
}

func isArith(t token.Kind) bool {
	switch t {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT:
		return true
	}
	return false
}

func isOrdering(t token.Kind) bool {
	switch t {
	case token.LT, token.LE, token.GT, token.GE:
		return true
	}
	return false
}

func proveFunc(sp *sema.Program, f *ir.Func, cert *SymmetryCert, obligations map[string]bool) {
	tags := seedTags(sp, f)

	// Flow-insensitive fixpoint: a register is tagged if any instruction
	// anywhere in the handler may put an identity-derived value into it.
	for changed := true; changed; {
		changed = false
		set := func(dst ir.Reg, t symTag) {
			if t != 0 && tags[dst]&t != t {
				tags[dst] |= t
				changed = true
			}
		}
		for i := range f.Code {
			in := &f.Code[i]
			switch in.Op {
			case ir.OpConst:
				switch in.Kind {
				case ir.KNode:
					set(in.Dst, tagNode)
				case ir.KID:
					set(in.Dst, tagID)
				}
			case ir.OpMove:
				set(in.Dst, tags[in.A])
			case ir.OpBin:
				if isArith(in.Tok) {
					set(in.Dst, tags[in.A]|tags[in.B])
				}
			case ir.OpUn:
				if in.Tok == token.MINUS {
					set(in.Dst, tags[in.A])
				}
			case ir.OpLoadVar:
				set(in.Dst, typeTag(sp.ProtVars[in.Idx].Type))
			case ir.OpModConst:
				set(in.Dst, typeTag(sp.ModConsts[in.Idx].Type))
			case ir.OpBuiltinVal:
				if sema.Builtin(in.Idx) == sema.BMessageSrc {
					set(in.Dst, tagNode)
				}
			case ir.OpCall:
				if in.Fn.Sig != nil && in.Dst != ir.NoReg {
					set(in.Dst, typeTag(in.Fn.Sig.Result))
				}
			}
		}
	}

	// One witness/obligation collection scan over the fixpoint.
	witness := func(dim *SymmetryDim, i int, reason string) {
		dim.Witnesses = append(dim.Witnesses, SymmetryWitness{
			Handler: f.Name,
			Index:   i,
			Instr:   f.Code[i].String(),
			Pos:     f.Code[i].Pos,
			Line:    f.Code[i].Pos.Line,
			Col:     f.Code[i].Pos.Col,
			Reason:  reason,
		})
	}
	both := func(i int, t symTag, nodeReason, blockReason string) {
		if t&tagNode != 0 {
			witness(&cert.Node, i, nodeReason)
		}
		if t&tagID != 0 {
			witness(&cert.Block, i, blockReason)
		}
	}
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case ir.OpConst:
			// -1 is the sanctioned "no node"/"no block" sentinel and is a
			// fixed point of every permutation.
			if in.Int >= 0 {
				switch in.Kind {
				case ir.KNode:
					witness(&cert.Node, i, "hard-coded concrete node id")
				case ir.KID:
					witness(&cert.Block, i, "hard-coded concrete block id")
				}
			}
		case ir.OpBin:
			switch {
			case isArith(in.Tok):
				both(i, tags[in.A]|tags[in.B],
					"arithmetic mixes a node id", "arithmetic mixes a block id")
			case isOrdering(in.Tok):
				both(i, tags[in.A]|tags[in.B],
					"ordering compares node ids", "ordering compares block ids")
			}
		case ir.OpUn:
			if in.Tok == token.MINUS {
				both(i, tags[in.A],
					"arithmetic mixes a node id", "arithmetic mixes a block id")
			}
		case ir.OpModConst:
			// Runtime-bound constants do not permute with the world, so an
			// identity-typed one pins a concrete identity.
			both(i, typeTag(sp.ModConsts[in.Idx].Type),
				"runtime-bound node constant pins a concrete node id",
				"runtime-bound block constant pins a concrete block id")
		case ir.OpCall:
			if in.Fn.Builtin == sema.BNone {
				obligations[in.Fn.Name] = true
			}
		}
	}
}

// runSymmetry is the vet surface of the prover: advisory (info) findings
// for each refutation witness, silent when the certificate holds. The
// model checker consumes the certificate itself, not these findings.
func runSymmetry(c *Ctx) {
	cert := ProveSymmetry(c.Proto)
	report := func(dim string, ws []SymmetryWitness) {
		for _, w := range ws {
			c.Reportf(source.SevInfo, w.Pos,
				"handler %s is not %s-symmetric: %s (instr %d: %s); symmetry reduction disabled",
				w.Handler, dim, w.Reason, w.Index, w.Instr)
		}
	}
	report("node", cert.Node.Witnesses)
	report("block", cert.Block.Witnesses)
}

// Teapot-fuzz drives the simulated Tempest machine through seeded
// randomized schedules (delivery order, node interleaving, network faults),
// judges every run with the coherence oracle, shrinks the first failure to
// a minimal replayable reproducer by delta debugging, and can cross-check
// the result against the model checker.
//
// Usage:
//
//	teapot-fuzz -proto stache-ft -net drop=1 -schedules 500
//	teapot-fuzz -proto stache-ft-buggy -net drop=1 -seed 6 -out repro.json
//	teapot-fuzz -replay repro.json          # re-judge a saved reproducer
//
// Exit status: 0 when every schedule ran clean, 2 when a violation (or
// protocol failure) was found or reproduced, 1 on usage/internal errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"teapot/internal/cliflags"
	"teapot/internal/fuzz"
	"teapot/internal/manifest"
	"teapot/internal/obs"
	"teapot/internal/runtime"
)

func main() {
	run := cliflags.AddRun(flag.CommandLine, "stache", 3, 2)
	var (
		schedules = flag.Int("schedules", 500, "schedules to run (campaign stops at the first failure)")
		ops       = flag.Int("ops", 40, "workload operations per node per schedule")
		rate      = flag.Float64("rate", 0, fmt.Sprintf("per-choice deviation probability (0 = default %.2f)", fuzz.DefaultRate))
		out       = flag.String("out", "", "write the shrunk reproducer schedule to this file (default <proto>-repro.json next to the violation)")
		replay    = flag.String("replay", "", "replay a saved schedule instead of fuzzing; all run-shape flags are taken from the file")
		noShrink  = flag.Bool("no-shrink", false, "keep the first failing schedule as-is instead of delta-debugging it")
		mcConfirm = flag.Bool("mc-confirm", false, "after a failure, cross-check with the model checker and differentially replay its counterexample")
		mcStates  = flag.Int("mc-states", 5_000_000, "state budget for -mc-confirm (0 = unlimited)")
		report    = cliflags.AddReport(flag.CommandLine)
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(replayFile(*replay))
	}

	var cov *obs.Coverage
	if *report != "" {
		cov = obs.NewCoverage()
	}
	f, err := fuzz.New(fuzz.Config{
		Proto: *run.Proto, Nodes: *run.Nodes, Blocks: *run.Blocks,
		Net: run.Net.Model, Schedules: *schedules, OpsPerNode: *ops,
		Seed: *run.Seed, Rate: *rate, Coverage: cov,
	})
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	res, err := f.Fuzz()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	rps := float64(res.Ran) / elapsed.Seconds()
	fmt.Printf("protocol %s (%d nodes, %d blocks, net %s): %d schedule(s), %d choice points, %s (%.0f sched/s)\n",
		*run.Proto, *run.Nodes, *run.Blocks, nameNet(run.Net.Model.String()), res.Ran, res.Steps, elapsed.Round(time.Millisecond), rps)

	if res.Failure == nil {
		fmt.Println("no violations: every schedule ran to completion coherently")
		if *report != "" {
			writeManifest(*report, f, *run.Proto, *run.Nodes, *run.Blocks,
				cov, res, elapsed, "", 0, nil)
		}
		return
	}

	sched := res.Failure.Schedule
	fmt.Printf("FAILURE at schedule %d (%d decision(s)): %s\n", res.Ran, len(sched.Decisions), verdict(res.Failure.Report))
	if !*noShrink {
		small, tries := f.Shrink(sched)
		fmt.Printf("shrunk %d -> %d decision(s) in %d replay(s)\n", len(sched.Decisions), len(small.Decisions), tries)
		sched = small
	}
	fmt.Printf("minimal reproducer: %d decision(s)\n", len(sched.Decisions))

	path := *out
	if path == "" {
		path = *run.Proto + "-repro.json"
	}
	if err := sched.Save(path); err != nil {
		fatal(err)
	}
	fmt.Printf("reproducer written to %s (replay with: teapot-fuzz -replay %s)\n", path, path)

	if *report != "" {
		// Replay the minimal reproducer with a flight recorder teed in, so
		// the manifest (and stderr) carry the event tail leading into the
		// violation.
		fr := obs.NewFlightRecorder(0)
		f.ReplayObserved(sched, fr)
		frLines := fr.TailLines(0, runtime.ObsNames(f.Spec().Proto))
		fmt.Fprintln(os.Stderr, "flight recorder (failing schedule tail):")
		for _, l := range frLines {
			fmt.Fprintln(os.Stderr, "  "+l)
		}
		writeManifest(*report, f, *run.Proto, *run.Nodes, *run.Blocks,
			cov, res, elapsed, verdict(res.Failure.Report), len(sched.Decisions), frLines)
	}

	// Re-judge from the on-disk artifact: the reproducer must carry
	// everything needed to fail again, independent of this process.
	loaded, err := fuzz.Load(path)
	if err != nil {
		fatal(err)
	}
	rep, err := fuzz.ReplaySchedule(loaded)
	if err != nil {
		fatal(err)
	}
	if !rep.Failed() {
		fatal(fmt.Errorf("saved reproducer did not reproduce the failure (schedule %s)", loaded))
	}
	fmt.Printf("reproducer replays from disk: %s\n", verdict(rep))

	if *mcConfirm {
		mcres, err := f.ConfirmMC(*mcStates)
		if err != nil {
			fatal(err)
		}
		if mcres.Violation == nil {
			fmt.Printf("mc-confirm: checker found NO violation in %d states — fuzz failure not confirmed\n", mcres.States)
		} else {
			fmt.Printf("mc-confirm: checker agrees (%s in %d states, %d-step counterexample)\n",
				mcres.Violation.Kind, mcres.States, len(mcres.Violation.Steps))
			if err := fuzz.DiffReplay(f.Spec(), mcres.Violation); err != nil {
				fatal(fmt.Errorf("differential replay of checker counterexample: %w", err))
			}
			fmt.Println("mc-confirm: counterexample replays through the runtime engine with per-step state agreement")
		}
	}
	os.Exit(2)
}

// writeManifest assembles and writes the campaign's run manifest.
func writeManifest(path string, f *fuzz.Fuzzer, proto string, nodes, blocks int,
	cov *obs.Coverage, res *fuzz.Result, elapsed time.Duration,
	verdictStr string, shrunk int, frLines []string) {
	fs := &manifest.FuzzStats{
		Schedules:       res.Ran,
		ChoicePoints:    res.Steps,
		ElapsedSec:      elapsed.Seconds(),
		Failed:          res.Failure != nil,
		Verdict:         verdictStr,
		ShrunkDecisions: shrunk,
	}
	if s := elapsed.Seconds(); s > 0 {
		fs.SchedPerSec = float64(res.Ran) / s
	}
	man := &manifest.Manifest{
		ManifestVersion: manifest.Version,
		Tool:            "teapot-fuzz",
		Protocol:        proto,
		Nodes:           nodes,
		Blocks:          blocks,
		Net:             f.Spec().Net.String(),
		Seed:            f.Seed(),
		Coverage:        cov.Report(runtime.ObsNames(f.Spec().Proto)),
		Fuzz:            fs,
		FlightRecorder:  frLines,
	}
	if err := manifest.Write(path, man); err != nil {
		fatal(err)
	}
}

// replayFile re-judges a saved schedule. Exit code mirrors the campaign
// path: 2 when the failure reproduces, 0 when the schedule runs clean.
func replayFile(path string) int {
	s, err := fuzz.Load(path)
	if err != nil {
		fatal(err)
	}
	rep, err := fuzz.ReplaySchedule(s)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replaying %s\n", s)
	if !rep.Failed() {
		fmt.Println("schedule ran clean: no violation")
		return 0
	}
	fmt.Printf("reproduced: %s\n", verdict(rep))
	return 2
}

func verdict(r *fuzz.Report) string {
	switch {
	case r.Violation != nil:
		return r.Violation.Error()
	case r.RunErr != nil:
		return r.RunErr.Error()
	}
	return "clean"
}

func nameNet(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teapot-fuzz:", err)
	os.Exit(1)
}

// Package source provides source positions, spans, and diagnostics for the
// Teapot compiler. Every token and AST node carries a Pos so that semantic
// errors and verification counterexamples can point back into protocol text.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position in a source file: 1-based line and column plus the byte
// offset. The zero Pos is "no position".
type Pos struct {
	Offset int // byte offset, 0-based
	Line   int // 1-based
	Col    int // 1-based, in bytes
}

// IsValid reports whether the position carries real location information.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Span is a half-open range of source text.
type Span struct {
	Start Pos
	End   Pos
}

func (s Span) String() string { return s.Start.String() }

// File wraps a named chunk of Teapot source text and can convert byte
// offsets to positions.
type File struct {
	Name string
	Text string

	lineStarts []int // byte offset of each line start
}

// NewFile builds a File and indexes its line starts.
func NewFile(name, text string) *File {
	f := &File{Name: name, Text: text}
	f.lineStarts = append(f.lineStarts, 0)
	for i := 0; i < len(text); i++ {
		if text[i] == '\n' {
			f.lineStarts = append(f.lineStarts, i+1)
		}
	}
	return f
}

// PosFor converts a byte offset into a Pos.
func (f *File) PosFor(offset int) Pos {
	if offset < 0 {
		offset = 0
	}
	if offset > len(f.Text) {
		offset = len(f.Text)
	}
	line := sort.Search(len(f.lineStarts), func(i int) bool { return f.lineStarts[i] > offset }) - 1
	return Pos{Offset: offset, Line: line + 1, Col: offset - f.lineStarts[line] + 1}
}

// Line returns the text of the 1-based line number, without the newline.
func (f *File) Line(n int) string {
	if n < 1 || n > len(f.lineStarts) {
		return ""
	}
	start := f.lineStarts[n-1]
	end := len(f.Text)
	if n < len(f.lineStarts) {
		end = f.lineStarts[n] - 1
	}
	return strings.TrimRight(f.Text[start:end], "\r")
}

// Severity grades a diagnostic. The zero value is SevError so that layers
// that predate severities (the semantic checker) keep reporting errors.
type Severity int

// Severities, most severe first.
const (
	SevError Severity = iota
	SevWarning
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevInfo:
		return "info"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic is a single compiler message. Analyses additionally tag each
// diagnostic with a severity and a stable check ID (e.g. "vet:coverage") so
// reports can be filtered and compared across runs; both are optional and
// default to an untagged error, which is how the front end reports.
type Diagnostic struct {
	File     string
	Pos      Pos
	Msg      string
	Check    string   // stable check ID, "" for front-end errors
	Severity Severity // SevError unless set
}

func (d Diagnostic) Error() string {
	tag := ""
	if d.Check != "" {
		tag = fmt.Sprintf(" [%s]", d.Check)
	}
	if d.File == "" {
		return fmt.Sprintf("%s: %s%s", d.Pos, d.Msg, tag)
	}
	return fmt.Sprintf("%s:%s: %s%s", d.File, d.Pos, d.Msg, tag)
}

// ErrorList accumulates diagnostics; it implements error when non-empty.
type ErrorList struct {
	List []Diagnostic
}

// Add appends a diagnostic.
func (e *ErrorList) Add(file string, pos Pos, format string, args ...any) {
	e.List = append(e.List, Diagnostic{File: file, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Len returns the number of accumulated diagnostics.
func (e *ErrorList) Len() int { return len(e.List) }

// Err returns the list as an error, or nil if empty.
func (e *ErrorList) Err() error {
	if len(e.List) == 0 {
		return nil
	}
	return e
}

func (e *ErrorList) Error() string {
	switch len(e.List) {
	case 0:
		return "no errors"
	case 1:
		return e.List[0].Error()
	}
	const max = 20
	var b strings.Builder
	for i, d := range e.List {
		if i == max {
			fmt.Fprintf(&b, "\n(and %d more errors)", len(e.List)-max)
			break
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	return b.String()
}

// Sort orders diagnostics by file, position, check ID, and finally message,
// so that multi-error output from any mix of layers (front end, analyses) is
// byte-identical across runs.
func (e *ErrorList) Sort() {
	SortDiagnostics(e.List)
}

// SortDiagnostics orders a diagnostic slice by file, position, check ID,
// and message (the stable report order shared by all layers).
func SortDiagnostics(list []Diagnostic) {
	sort.SliceStable(list, func(i, j int) bool {
		a, b := list[i], list[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Offset != b.Pos.Offset {
			return a.Pos.Offset < b.Pos.Offset
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

package cont_test

import (
	"strings"
	"testing"

	"teapot/internal/cont"
	"teapot/internal/ir"
	"teapot/internal/lower"
	"teapot/internal/parser"
	"teapot/internal/sema"
)

func compile(t *testing.T, src string, opts cont.Options) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("t.tea", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p := lower.Lower(sp)
	cont.Transform(p, opts)
	return p
}

// twoSuspends has a handler with a local live across the first suspend
// only, and a subroutine state with two entry sites (not constant).
const twoSuspends = `
protocol P begin
  var acc : int;
  state S();
  state W(C : CONT) transient;
  message GO;
  message STEP;
  message ACK;
end;
state P.S() begin
  message GO (id : ID; var info : INFO; src : NODE)
  var x : int; y : int;
  begin
    x := 7;
    y := 9;
    Send(src, STEP, id);
    Suspend(L, W{L});
    acc := acc + x;
    Send(src, STEP, id);
    Suspend(L2, W{L2});
    acc := acc + 1;
    SetState(info, S{});
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
state P.W(C : CONT) begin
  message ACK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message STEP (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
  message GO (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
`

func findFunc(p *ir.Program, name string) *ir.Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

func TestFragmentSplitting(t *testing.T) {
	p := compile(t, twoSuspends, cont.Unoptimized)
	f := findFunc(p, "S.GO")
	if f == nil {
		t.Fatal("S.GO not found")
	}
	if len(f.Frags) != 3 {
		t.Fatalf("fragments = %d, want 3\n%s", len(f.Frags), f.Disassemble())
	}
	if len(p.Sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(p.Sites))
	}
}

func TestLivenessTrimsSaves(t *testing.T) {
	p := compile(t, twoSuspends, cont.Unoptimized)
	f := findFunc(p, "S.GO")
	// Fragment 1 uses: x (local 0), acc (protvar, not a register), src, id,
	// info. y is dead after the first suspend. Fragment 2 uses id, info,
	// src but not x or y.
	saved1 := f.Frags[1].Saved
	saved2 := f.Frags[2].Saved
	has := func(saved []ir.Reg, r ir.Reg) bool {
		for _, s := range saved {
			if s == r {
				return true
			}
		}
		return false
	}
	xReg := f.LocalReg(0)
	yReg := f.LocalReg(1)
	if !has(saved1, xReg) {
		t.Errorf("fragment 1 should save x (r%d); saved %v\n%s", xReg, saved1, f.Disassemble())
	}
	if has(saved1, yReg) {
		t.Errorf("fragment 1 should not save dead y (r%d); saved %v", yReg, saved1)
	}
	if has(saved2, xReg) || has(saved2, yReg) {
		t.Errorf("fragment 2 should save neither local; saved %v", saved2)
	}
	// Without liveness, all named registers are saved except the
	// rematerialized id/info parameters.
	p2 := compile(t, twoSuspends, cont.Options{Liveness: false})
	f2 := findFunc(p2, "S.GO")
	named := f2.NumStateParams + f2.NumParams + f2.NumLocals - 2
	if len(f2.Frags[1].Saved) != named {
		t.Errorf("no-liveness saved = %d, want %d (named minus remat)", len(f2.Frags[1].Saved), named)
	}
}

func TestNonConstantSites(t *testing.T) {
	p := compile(t, twoSuspends, cont.Optimized)
	for _, s := range p.Sites {
		if s.Constant {
			t.Errorf("site %d marked constant although W has two suspend sites", s.ID)
		}
	}
	// Resume in W.ACK stays dynamic.
	f := findFunc(p, "W.ACK")
	for _, in := range f.Code {
		if in.Op == ir.OpResume && in.Idx >= 0 {
			t.Errorf("resume rewritten to constant site %d", in.Idx)
		}
	}
}

// uniqueSite has exactly one suspend site targeting W, with nothing saved.
const uniqueSite = `
protocol P begin
  state S();
  state W(C : CONT) transient;
  message GO;
  message ACK;
end;
state P.S() begin
  message GO (id : ID; var info : INFO; src : NODE)
  begin
    Send(src, GO, id);
    Suspend(L, W{L});
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
state P.W(C : CONT) begin
  message ACK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
`

func TestConstantContinuation(t *testing.T) {
	p := compile(t, uniqueSite, cont.Optimized)
	if len(p.Sites) != 1 {
		t.Fatalf("sites = %d", len(p.Sites))
	}
	s := p.Sites[0]
	if !s.Constant {
		t.Errorf("unique site not marked constant")
	}
	if !s.Static {
		t.Errorf("site with empty save set not marked static; saved=%v",
			s.Func.Frags[s.FragIdx].Saved)
	}
	f := findFunc(p, "W.ACK")
	rewritten := false
	for _, in := range f.Code {
		if in.Op == ir.OpResume && in.Idx == s.ID {
			rewritten = true
		}
	}
	if !rewritten {
		t.Errorf("resume not rewritten to constant site:\n%s", f.Disassemble())
	}
	// Unoptimized: no constant marking, no rewrite.
	p2 := compile(t, uniqueSite, cont.Unoptimized)
	if p2.Sites[0].Constant {
		t.Errorf("unoptimized site marked constant")
	}
	st := cont.Summarize(p)
	if st.Sites != 1 || st.Static != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// suspendInLoop exercises a Suspend inside a while loop: the loop counter
// must be saved across the suspension.
const suspendInLoop = `
protocol P begin
  var total : int;
  state S();
  state W(C : CONT) transient;
  message GO;
  message ACK;
end;
state P.S() begin
  message GO (id : ID; var info : INFO; src : NODE)
  var i : int;
  begin
    i := 0;
    while (i < 3) do
      Send(src, GO, id);
      Suspend(L, W{L});
      i := i + 1;
    end;
    total := i;
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
state P.W(C : CONT) begin
  message ACK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
`

func TestSuspendInLoopSavesCounter(t *testing.T) {
	p := compile(t, suspendInLoop, cont.Optimized)
	f := findFunc(p, "S.GO")
	if len(f.Frags) != 2 {
		t.Fatalf("frags = %d, want 2", len(f.Frags))
	}
	iReg := f.LocalReg(0)
	found := false
	for _, r := range f.Frags[1].Saved {
		if r == iReg {
			found = true
		}
	}
	if !found {
		t.Errorf("loop counter not saved across suspend: saved=%v\n%s", f.Frags[1].Saved, f.Disassemble())
	}
	if p.Sites[0].Static {
		t.Errorf("site with live counter should not be static")
	}
	if !p.Sites[0].Constant {
		t.Errorf("unique site should still be constant")
	}
}

func TestDisassembleStable(t *testing.T) {
	p := compile(t, uniqueSite, cont.Optimized)
	f := findFunc(p, "S.GO")
	d := f.Disassemble()
	for _, want := range []string{"func S.GO", "cont(frag", "suspend", "frag 1"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

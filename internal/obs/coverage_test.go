package obs

import (
	"reflect"
	"strings"
	"testing"
)

func testNames() Names {
	return Names{
		States:   []string{"Idle", "Busy", "Done"},
		Messages: []string{"REQ", "RESP", "TIMEOUT"},
	}
}

func TestCoverageDispatchAndTransitions(t *testing.T) {
	c := NewCoverage()
	// Two paired activations on the same (node, block) and one on another.
	c.Emit(Event{Kind: KindHandlerEnter, Node: 0, Block: 0, State: 0, Msg: 0})
	c.Emit(Event{Kind: KindHandlerExit, Node: 0, Block: 0, State: 1, Msg: 0})
	c.Emit(Event{Kind: KindHandlerEnter, Node: 1, Block: 0, State: 1, Msg: 1})
	c.Emit(Event{Kind: KindHandlerExit, Node: 1, Block: 0, State: 2, Msg: 1})
	c.Emit(Event{Kind: KindHandlerEnter, Node: 0, Block: 0, State: 0, Msg: 0})
	c.Emit(Event{Kind: KindHandlerExit, Node: 0, Block: 0, State: 1, Msg: 0})

	if got := c.DispatchPairs(); got != 2 {
		t.Errorf("DispatchPairs = %d, want 2", got)
	}
	if got := c.DispatchCount(0, 0); got != 2 {
		t.Errorf("DispatchCount(0,0) = %d, want 2", got)
	}
	if got := c.TransitionEdges(); got != 2 {
		t.Errorf("TransitionEdges = %d, want 2", got)
	}
	r := c.Report(testNames())
	if got := r.Dispatch["Idle.REQ"]; got != 2 {
		t.Errorf("Dispatch[Idle.REQ] = %d, want 2", got)
	}
	if got := r.Transitions["Idle.REQ->Busy"]; got != 2 {
		t.Errorf("Transitions[Idle.REQ->Busy] = %d, want 2", got)
	}
	if got := r.Transitions["Busy.RESP->Done"]; got != 1 {
		t.Errorf("Transitions[Busy.RESP->Done] = %d, want 1", got)
	}
	if r.Deferred != nil || r.Faults != nil {
		t.Errorf("empty deferred/faults should be omitted, got %v / %v", r.Deferred, r.Faults)
	}
}

// TestCoverageExitWithoutEnter: an exit with no pending enter on that
// (node, block) must not invent a transition.
func TestCoverageExitWithoutEnter(t *testing.T) {
	c := NewCoverage()
	c.Emit(Event{Kind: KindHandlerExit, Node: 0, Block: 0, State: 1, Msg: 0})
	if got := c.TransitionEdges(); got != 0 {
		t.Errorf("TransitionEdges = %d, want 0", got)
	}
}

func TestCoverageFaultsAndDeferred(t *testing.T) {
	c := NewCoverage()
	c.Emit(Event{Kind: KindDrop, Node: 0, Msg: 1})
	c.Emit(Event{Kind: KindDup, Node: 0, Msg: 1})
	c.Emit(Event{Kind: KindDelay, Node: 0, Msg: 2})
	c.Emit(Event{Kind: KindEnqueue, Node: 0, State: 1, Msg: 0})
	c.FaultSite(FaultActionReorder, 1)
	c.FaultSite(FaultActionCorrupt, 0)
	r := c.Report(testNames())
	want := map[string]uint64{
		"drop:RESP": 1, "dup:RESP": 1, "delay:TIMEOUT": 1,
		"reorder:RESP": 1, "corrupt:REQ": 1,
	}
	if !reflect.DeepEqual(r.Faults, want) {
		t.Errorf("Faults = %v, want %v", r.Faults, want)
	}
	if got := r.Deferred["Busy.REQ"]; got != 1 {
		t.Errorf("Deferred[Busy.REQ] = %d, want 1", got)
	}
}

// TestCoverageMergeCommutes: merging per-worker instances in either order
// yields the same totals — the property the parallel checker's layer
// barrier relies on.
func TestCoverageMergeCommutes(t *testing.T) {
	mk := func(msgs ...int32) *Coverage {
		c := NewCoverage()
		for _, m := range msgs {
			c.Emit(Event{Kind: KindHandlerEnter, Node: 0, Block: 0, State: 0, Msg: m})
			c.Emit(Event{Kind: KindHandlerExit, Node: 0, Block: 0, State: 1, Msg: m})
			c.Emit(Event{Kind: KindDrop, Msg: m})
		}
		return c
	}
	ab := NewCoverage()
	ab.Merge(mk(0, 1))
	ab.Merge(mk(1, 2))
	ba := NewCoverage()
	ba.Merge(mk(1, 2))
	ba.Merge(mk(0, 1))
	ra, rb := ab.Report(testNames()), ba.Report(testNames())
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("merge order changed the report:\n%v\nvs\n%v", ra, rb)
	}
	if got := ab.DispatchCount(0, 1); got != 2 {
		t.Errorf("merged DispatchCount(0,1) = %d, want 2", got)
	}
	ab.Merge(nil) // must be a no-op
	if got := ab.DispatchPairs(); got != 3 {
		t.Errorf("DispatchPairs after nil merge = %d, want 3", got)
	}
}

func TestCoverageKeysSorted(t *testing.T) {
	got := Keys(map[string]uint64{"b": 1, "a": 2, "c": 3})
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Keys = %v, want sorted", got)
	}
}

func TestFlightRecorderTail(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Emit(Event{Kind: KindSend, Node: int32(i), Block: 0, State: -1, Msg: 1, Peer: 1, Site: -1})
	}
	lines := fr.TailLines(0, testNames())
	if len(lines) != 4 {
		t.Fatalf("tail has %d lines, want 4 (the ring cap)", len(lines))
	}
	// Oldest retained first; the last line is the newest event.
	if !strings.Contains(lines[3], "node9") {
		t.Errorf("last tail line %q should be the newest event (node9)", lines[3])
	}
	if !strings.Contains(lines[0], "node6") {
		t.Errorf("first tail line %q should be the oldest retained (node6)", lines[0])
	}
	if got := fr.TailLines(2, testNames()); len(got) != 2 {
		t.Errorf("TailLines(2) returned %d lines", len(got))
	}
	// Counters still span the whole run.
	if fr.Total() != 10 {
		t.Errorf("Total = %d, want 10", fr.Total())
	}
	if got := fr.KindCounts(); got["Send"] != 10 || len(got) != 1 {
		t.Errorf("KindCounts = %v, want {Send: 10}", got)
	}
}

func TestFormatEvent(t *testing.T) {
	ev := Event{Kind: KindHandlerEnter, Node: 1, Block: 2, State: 0, Msg: 1,
		Peer: 0, Site: -1, Seq: 7, Time: 42}
	got := FormatEvent(ev, testNames())
	want := "#7 @42 HandlerEnter node1 blk2 state=Idle msg=RESP peer=node0"
	if got != want {
		t.Errorf("FormatEvent = %q, want %q", got, want)
	}
	// Negative sentinel fields stay silent; flow renders in hex.
	ev2 := Event{Kind: KindDrop, Node: 0, Block: 0, State: -1, Msg: 2,
		Peer: 1, Site: -1, Flow: 0x100000002, Seq: 1, Time: 1}
	got2 := FormatEvent(ev2, testNames())
	if strings.Contains(got2, "state=") || !strings.Contains(got2, "flow=100000002") {
		t.Errorf("FormatEvent = %q: want no state, hex flow", got2)
	}
}

package mc_test

import (
	"testing"

	"teapot/internal/mc"
	"teapot/internal/protocols/bufwrite"
	"teapot/internal/protocols/lcm"
)

func lcmConfig(t *testing.T, v lcm.Variant, nodes, blocks, reorder int) mc.Config {
	t.Helper()
	a := lcm.MustCompile(v, true)
	return mc.Config{
		Proto:          a.Protocol,
		Support:        lcm.MustSupport(a.Protocol, nodes),
		Nodes:          nodes,
		Blocks:         blocks,
		Reorder:        reorder,
		Events:         lcm.NewEvents(a.Protocol),
		CheckCoherence: false, // LCM phases are deliberately inconsistent
	}
}

func TestLCMSimpleTwoNodes(t *testing.T) {
	res, err := mc.Check(lcmConfig(t, lcm.Base, 2, 1, 0))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d", res.States, res.Transitions, res.MaxDepth)
}

func TestLCMMCCTwoNodes(t *testing.T) {
	res, err := mc.Check(lcmConfig(t, lcm.MCC, 2, 1, 0))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d", res.States, res.Transitions, res.MaxDepth)
}

func TestLCMReorder1(t *testing.T) {
	res, err := mc.Check(lcmConfig(t, lcm.Base, 2, 1, 1))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d", res.States, res.Transitions, res.MaxDepth)
}

func bufwriteConfig(t *testing.T, nodes, blocks, reorder int) mc.Config {
	t.Helper()
	a := bufwrite.MustCompile(true)
	return mc.Config{
		Proto:          a.Protocol,
		Support:        bufwrite.MustSupport(a.Protocol),
		Nodes:          nodes,
		Blocks:         blocks,
		Reorder:        reorder,
		Events:         bufwrite.NewEvents(a.Protocol),
		CheckCoherence: true, // buffered mode is not counted as a writer
	}
}

func TestBufferedWriteTwoNodes(t *testing.T) {
	res, err := mc.Check(bufwriteConfig(t, 2, 1, 0))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d", res.States, res.Transitions, res.MaxDepth)
}

func TestBufferedWriteReorder1(t *testing.T) {
	res, err := mc.Check(bufwriteConfig(t, 2, 1, 1))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d", res.States, res.Transitions, res.MaxDepth)
}

// Larger configurations, beyond the paper's completed runs.

func TestLCMTwoBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res, err := mc.Check(lcmConfig(t, lcm.Base, 2, 2, 0))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d", res.States, res.Transitions, res.MaxDepth)
}

func TestLCMThreeNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res, err := mc.Check(lcmConfig(t, lcm.Base, 3, 1, 0))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d", res.States, res.Transitions, res.MaxDepth)
}

func TestBufferedWriteTwoBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	res, err := mc.Check(bufwriteConfig(t, 2, 2, 0))
	if err != nil {
		t.Fatalf("mc: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
	}
	t.Logf("states=%d transitions=%d depth=%d", res.States, res.Transitions, res.MaxDepth)
}

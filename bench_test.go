// Benchmarks regenerating every table and figure of the paper's
// evaluation. Simulated cycles and overhead percentages are reported as
// custom metrics (sim_cycles, overhead_pct); wall-clock time measures this
// implementation, not the simulated machine.
//
// Run: go test -bench=. -benchmem
package teapot_test

import (
	"fmt"
	goruntime "runtime"
	"testing"

	"teapot/internal/bench"
	"teapot/internal/core"
	"teapot/internal/mc"
	"teapot/internal/protocols/bufwrite"
	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// benchNodes/benchIters size the benchmark machine. The paper used a
// 32-node CM-5; 32 nodes is the default here too.
const (
	benchNodes = 32
	benchIters = 4
)

// --- Table 1: Stache performance (one benchmark per paper row) ---

func benchStacheWorkload(b *testing.B, mkWorkload func() *sim.Workload) {
	flavors := []struct {
		name string
		mk   func(p *runtime.Protocol, w *sim.Workload, m runtime.Machine) tempest.Engine
		opt  bool
	}{
		{"CStateMachine", func(p *runtime.Protocol, w *sim.Workload, m runtime.Machine) tempest.Engine {
			return stache.NewHW(p, benchNodes, w.Blocks, m)
		}, true},
		{"TeapotUnopt", func(p *runtime.Protocol, w *sim.Workload, m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(p, benchNodes, w.Blocks, m, stache.MustSupport(p))
		}, false},
		{"TeapotOpt", func(p *runtime.Protocol, w *sim.Workload, m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(p, benchNodes, w.Blocks, m, stache.MustSupport(p))
		}, true},
	}
	var baseline int64
	for _, f := range flavors {
		f := f
		b.Run(f.name, func(b *testing.B) {
			p := stache.MustCompile(f.opt).Protocol
			var cycles int64
			for i := 0; i < b.N; i++ {
				w := mkWorkload()
				stats, err := sim.Run(sim.Config{
					Nodes: benchNodes, Blocks: w.Blocks,
					Cost: tempest.DefaultCost, Tags: tempest.ResolveTags(p),
					MakeEngine: func(m runtime.Machine) tempest.Engine { return f.mk(p, w, m) },
					Program:    w.Trace,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles = stats.Cycles
			}
			b.ReportMetric(float64(cycles), "sim_cycles")
			if f.name == "CStateMachine" {
				baseline = cycles
			} else if baseline > 0 {
				b.ReportMetric(100*float64(cycles-baseline)/float64(baseline), "overhead_pct")
			}
		})
	}
}

func BenchmarkTable1Gauss(b *testing.B) {
	benchStacheWorkload(b, func() *sim.Workload {
		return sim.Gauss(sim.WorkloadSpec{Nodes: benchNodes, Iters: benchIters, Seed: 11})
	})
}

func BenchmarkTable1Appbt(b *testing.B) {
	benchStacheWorkload(b, func() *sim.Workload {
		return sim.Appbt(sim.WorkloadSpec{Nodes: benchNodes, Iters: benchIters, Seed: 22})
	})
}

func BenchmarkTable1Shallow(b *testing.B) {
	benchStacheWorkload(b, func() *sim.Workload {
		return sim.Shallow(sim.WorkloadSpec{Nodes: benchNodes, Iters: benchIters, Seed: 33})
	})
}

func BenchmarkTable1Mp3d(b *testing.B) {
	benchStacheWorkload(b, func() *sim.Workload {
		return sim.Mp3d(sim.WorkloadSpec{Nodes: benchNodes, Iters: benchIters * 4, Seed: 44})
	})
}

// --- Table 2: LCM performance ---

func benchLCMWorkload(b *testing.B, mkWorkload func() *sim.Workload) {
	flavors := []struct {
		name string
		hw   bool
		opt  bool
	}{
		{"CStateMachine", true, true},
		{"TeapotUnopt", false, false},
		{"TeapotOpt", false, true},
	}
	var baseline int64
	for _, f := range flavors {
		f := f
		b.Run(f.name, func(b *testing.B) {
			p := lcm.MustCompile(lcm.Base, f.opt).Protocol
			var cycles int64
			for i := 0; i < b.N; i++ {
				w := mkWorkload()
				stats, err := sim.Run(sim.Config{
					Nodes: benchNodes, Blocks: w.Blocks,
					Cost: tempest.DefaultCost, Tags: tempest.ResolveTags(p),
					MakeEngine: func(m runtime.Machine) tempest.Engine {
						if f.hw {
							return lcm.NewHW(p, benchNodes, w.Blocks, m)
						}
						return tempest.NewTeapotEngine(p, benchNodes, w.Blocks, m, lcm.MustSupport(p, benchNodes))
					},
					Program: w.Trace,
				})
				if err != nil {
					b.Fatal(err)
				}
				cycles = stats.Cycles
			}
			b.ReportMetric(float64(cycles), "sim_cycles")
			if f.name == "CStateMachine" {
				baseline = cycles
			} else if baseline > 0 {
				b.ReportMetric(100*float64(cycles-baseline)/float64(baseline), "overhead_pct")
			}
		})
	}
}

func BenchmarkTable2Adaptive(b *testing.B) {
	benchLCMWorkload(b, func() *sim.Workload {
		return sim.Adaptive(sim.WorkloadSpec{Nodes: benchNodes, Iters: benchIters, Seed: 55})
	})
}

func BenchmarkTable2Stencil(b *testing.B) {
	benchLCMWorkload(b, func() *sim.Workload {
		return sim.Stencil(sim.WorkloadSpec{Nodes: benchNodes, Iters: benchIters, Seed: 66})
	})
}

func BenchmarkTable2Unstruct(b *testing.B) {
	benchLCMWorkload(b, func() *sim.Workload {
		return sim.Unstruct(sim.WorkloadSpec{Nodes: benchNodes, Iters: benchIters, Seed: 77})
	})
}

// --- Table 3: verification times ---

// benchVerify runs the checker at workers=1 and workers=GOMAXPROCS as
// sub-benchmarks, so the committed baseline captures both the serial cost
// and the parallel layer expansion.
func benchVerify(b *testing.B, cfg func() mc.Config) {
	counts := []int{1}
	if n := goruntime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var res *mc.Result
			for i := 0; i < b.N; i++ {
				c := cfg()
				c.Workers = workers
				var err error
				res, err = mc.Check(c)
				if err != nil {
					b.Fatal(err)
				}
				if res.Violation != nil {
					b.Fatalf("violation: %s", res.Violation)
				}
			}
			b.ReportMetric(float64(res.States), "states")
			b.ReportMetric(float64(res.States)/b.Elapsed().Seconds()*float64(b.N), "states/sec")
		})
	}
}

func BenchmarkTable3Stache(b *testing.B) {
	benchVerify(b, func() mc.Config {
		a := stache.MustCompile(true)
		return mc.Config{Proto: a.Protocol, Support: stache.MustSupport(a.Protocol),
			Nodes: 2, Blocks: 1, Reorder: 1,
			Events: stache.NewEvents(a.Protocol), CheckCoherence: true}
	})
}

func BenchmarkTable3StacheTwoBlocks(b *testing.B) {
	benchVerify(b, func() mc.Config {
		a := stache.MustCompile(true)
		return mc.Config{Proto: a.Protocol, Support: stache.MustSupport(a.Protocol),
			Nodes: 2, Blocks: 2,
			Events: stache.NewEvents(a.Protocol), CheckCoherence: true}
	})
}

func BenchmarkTable3BufferedWrite(b *testing.B) {
	benchVerify(b, func() mc.Config {
		a := bufwrite.MustCompile(true)
		return mc.Config{Proto: a.Protocol, Support: bufwrite.MustSupport(a.Protocol),
			Nodes: 2, Blocks: 1, Reorder: 1,
			Events: bufwrite.NewEvents(a.Protocol), CheckCoherence: true}
	})
}

func BenchmarkTable3LCMSimple(b *testing.B) {
	benchVerify(b, func() mc.Config {
		a := lcm.MustCompile(lcm.Base, true)
		return mc.Config{Proto: a.Protocol, Support: lcm.MustSupport(a.Protocol, 2),
			Nodes: 2, Blocks: 1, Reorder: 1,
			Events: lcm.NewEvents(a.Protocol)}
	})
}

func BenchmarkTable3LCMMCC(b *testing.B) {
	benchVerify(b, func() mc.Config {
		a := lcm.MustCompile(lcm.MCC, true)
		return mc.Config{Proto: a.Protocol, Support: lcm.MustSupport(a.Protocol, 2),
			Nodes: 2, Blocks: 1, Reorder: 1,
			Events: lcm.NewEvents(a.Protocol)}
	})
}

// BenchmarkMCEncodeDecode measures the canonical snapshot round trip —
// the seed checker's per-action cost for every enabled action.
func BenchmarkMCEncodeDecode(b *testing.B) {
	a := stache.MustCompile(true)
	cfg := mc.Config{Proto: a.Protocol, Support: stache.MustSupport(a.Protocol),
		Nodes: 2, Blocks: 2,
		Events: stache.NewEvents(a.Protocol), CheckCoherence: true}
	w := mc.InitialWorld(&cfg)
	key, err := w.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw, err := cfg.Restore(key)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rw.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMCClone measures the structural clone that replaced the decode
// on the checker's successor path.
func BenchmarkMCClone(b *testing.B) {
	a := stache.MustCompile(true)
	cfg := mc.Config{Proto: a.Protocol, Support: stache.MustSupport(a.Protocol),
		Nodes: 2, Blocks: 2,
		Events: stache.NewEvents(a.Protocol), CheckCoherence: true}
	w := mc.InitialWorld(&cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Clone(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3BugHunt measures finding the seeded §7 deadlock.
func BenchmarkTable3BugHunt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.BugHunt()
		if err != nil {
			b.Fatal(err)
		}
		if res.Violation == nil {
			b.Fatal("bug not found")
		}
	}
}

// --- Figures 1, 2, 4: state machine extraction ---

func BenchmarkFigures(b *testing.B) {
	var figs []bench.FigureRow
	for i := 0; i < b.N; i++ {
		figs = bench.Figures()
	}
	b.ReportMetric(float64(figs[0].States), "fig1_states")
	b.ReportMetric(float64(figs[1].States), "fig2_states")
	b.ReportMetric(float64(figs[2].States), "fig4_states")
}

// --- Compiler and VM micro-benchmarks ---

func BenchmarkCompileStache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := stache.Compile(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileLCM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lcm.Compile(lcm.Base, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHandlerDispatch measures one fault-to-completion protocol
// round trip through the interpreter (compare the paper's handler-cost
// discussion in §6).
func BenchmarkHandlerDispatch(b *testing.B) {
	a := stache.MustCompile(true)
	w := sim.Gauss(sim.WorkloadSpec{Nodes: 4, Iters: 1, Seed: 1})
	for i := 0; i < b.N; i++ {
		w.Trace.Reset()
		_, err := sim.Run(sim.Config{
			Nodes: 4, Blocks: w.Blocks,
			Cost: tempest.DefaultCost, Tags: tempest.ResolveTags(a.Protocol),
			MakeEngine: func(m runtime.Machine) tempest.Engine {
				return tempest.NewTeapotEngine(a.Protocol, 4, w.Blocks, m, stache.MustSupport(a.Protocol))
			},
			Program: w.Trace,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: liveness analysis off (continuations save every register) ---

func BenchmarkAblationNoLiveness(b *testing.B) {
	art, err := core.Compile(core.Config{
		Name: "stache.tea", Source: stache.Source,
		NoLiveness: true,
		HomeStart:  "Home_Idle", CacheStart: "Cache_Inv",
	})
	if err != nil {
		b.Fatal(err)
	}
	w := sim.Gauss(sim.WorkloadSpec{Nodes: benchNodes, Iters: benchIters, Seed: 11})
	var cycles int64
	for i := 0; i < b.N; i++ {
		w.Trace.Reset()
		stats, err := sim.Run(sim.Config{
			Nodes: benchNodes, Blocks: w.Blocks,
			Cost: tempest.DefaultCost, Tags: tempest.ResolveTags(art.Protocol),
			MakeEngine: func(m runtime.Machine) tempest.Engine {
				return tempest.NewTeapotEngine(art.Protocol, benchNodes, w.Blocks, m, stache.MustSupport(art.Protocol))
			},
			Program: w.Trace,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles = stats.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkProducerConsumer reproduces §1's motivation with the extra
// write-update protocol.
func BenchmarkProducerConsumer(b *testing.B) {
	var rows []bench.ProducerConsumerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ProducerConsumer(benchNodes, benchIters)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Messages), "invalidate_msgs")
	b.ReportMetric(float64(rows[1].Messages), "update_msgs")
}

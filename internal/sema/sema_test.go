package sema

import (
	"strings"
	"testing"

	"teapot/internal/parser"
)

// miniProtocol is a small but complete protocol exercising most language
// features: subroutine states, suspends, protocol vars, module routines.
const miniProtocol = `
module Support begin
  type COUNTER;
  const Zero : COUNTER;
  function CountNonZero(c : COUNTER) : bool;
  procedure Bump(var c : COUNTER);
end;

protocol Mini begin
  var owner : NODE;
  var pending : int;
  const Limit := 4;
  state Idle();
  state Busy();
  state AwaitAck(C : CONT) transient;
  message REQ;
  message ACK;
  message REL;
end;

state Mini.Idle()
begin
  message REQ (id : ID; var info : INFO; src : NODE)
  begin
    owner := src;
    pending := pending + 1;
    if (pending > Limit) then
      Error("too many: %s", Msg_To_Str(MessageTag));
    endif;
    Send(src, ACK, id);
    Suspend(L, AwaitAck{L});
    SetState(info, Busy{});
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Mini.Busy()
begin
  message REL (id : ID; var info : INFO; src : NODE)
  begin
    pending := pending - 1;
    SetState(info, Idle{});
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue();
  end;
end;

state Mini.AwaitAck(C : CONT)
begin
  message ACK (id : ID; var info : INFO; src : NODE)
  begin
    Resume(C);
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue();
  end;
end;
`

func checkSrc(t *testing.T, src string) (*Program, error) {
	t.Helper()
	prog, err := parser.Parse("test.tea", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func TestCheckMiniProtocol(t *testing.T) {
	p, err := checkSrc(t, miniProtocol)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if p.ProtoName != "Mini" {
		t.Errorf("proto = %q", p.ProtoName)
	}
	if len(p.States) != 3 || len(p.Messages) != 3 {
		t.Fatalf("states=%d messages=%d", len(p.States), len(p.Messages))
	}
	idle := p.StateByName("Idle")
	if idle == nil || idle.IsSubroutine() {
		t.Fatalf("Idle = %+v", idle)
	}
	await := p.StateByName("AwaitAck")
	if await == nil || !await.IsSubroutine() || !await.Transient {
		t.Fatalf("AwaitAck = %+v", await)
	}
	req := p.MessageByName("REQ")
	if req == nil || len(req.Payload) != 0 {
		t.Fatalf("REQ = %+v", req)
	}
	h := idle.HandlerFor(req.Index)
	if h == nil || h.Name() != "REQ" {
		t.Fatalf("Idle handler for REQ = %v", h)
	}
	if h.Suspends != 1 {
		t.Errorf("suspends = %d, want 1", h.Suspends)
	}
	// Unknown message falls back to DEFAULT.
	ack := p.MessageByName("ACK")
	if d := idle.HandlerFor(ack.Index); d == nil || d.Msg != nil {
		t.Errorf("Idle handler for ACK should be DEFAULT, got %v", d)
	}
	if len(p.ProtVars) != 2 {
		t.Errorf("protvars = %d", len(p.ProtVars))
	}
	if cv := p.Consts["Limit"]; cv == nil || cv.Int != 4 {
		t.Errorf("Limit = %+v", cv)
	}
	if len(p.ModConsts) != 1 || p.ModConsts[0].Name != "Zero" {
		t.Errorf("modconsts = %+v", p.ModConsts)
	}
	if f := p.Funcs["CountNonZero"]; f == nil || !f.Sig.Result.Same(Bool) {
		t.Errorf("CountNonZero = %+v", f)
	}
}

// errCase builds a protocol around a single handler body and asserts the
// checker reports a message containing want.
func errCase(t *testing.T, body, want string) {
	t.Helper()
	src := `
protocol P begin
  var n : int;
  state S();
  state W(C : CONT) transient;
  message M;
end;
state P.S() begin
  message M (id : ID; var info : INFO; src : NODE)
  var x : int; b : bool;
  begin
` + body + `
  end;
end;
state P.W(C : CONT) begin
  message M (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
end;
`
	_, err := checkSrc(t, src)
	if want == "" {
		if err != nil {
			t.Errorf("body %q: unexpected error %v", body, err)
		}
		return
	}
	if err == nil {
		t.Errorf("body %q: expected error containing %q, got none", body, want)
		return
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("body %q: error %q does not contain %q", body, err.Error(), want)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ name, body, want string }{
		{"ok assign", `x := 1;`, ""},
		{"ok if", `if (x < 3 and b) then x := x + 1; endif;`, ""},
		{"ok suspend", `Suspend(L, W{L});`, ""},
		{"ok setstate", `SetState(info, S{});`, ""},
		{"ok send", `Send(src, M, id);`, ""},
		{"ok protvar", `n := n + 2;`, ""},
		{"undefined var", `y := 1;`, "undefined: y"},
		{"type mismatch assign", `x := true;`, "cannot assign bool"},
		{"assign to const", `M := 1;`, "cannot assign"},
		{"bad if cond", `if (x + 1) then x := 0; endif;`, "must have type bool"},
		{"bad while cond", `while (src) do x := 0; end;`, "must have type bool"},
		{"arith on bool", `x := b + 1;`, "arithmetic requires int"},
		{"cmp mismatch", `b := x = b;`, "mismatched types"},
		{"unknown routine", `Frob(x);`, "unknown routine"},
		{"proc in expr", `x := WakeUp(id);`, "used in an expression"},
		{"suspend unknown state", `Suspend(L, Nowhere{L});`, "is not a state"},
		{"suspend non-subroutine", `Suspend(L, S{});`, "no CONT parameter"},
		{"suspend cont unused", `Suspend(L, W{NilCont()});`, "unknown routine"},
		{"resume non-cont", `Resume(x);`, "must have type CONT"},
		{"return value", `return 3;`, "do not return values"},
		{"state arg count", `SetState(info, W{});`, "takes 1 arguments, got 0"},
		{"send bad dst", `Send(id, M, id);`, "argument 1 has type ID, want NODE"},
		{"setstate non-var", `SetState(MessageTag, S{});`, "argument 1 has type MSG"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { errCase(t, c.body, c.want) })
	}
}

func TestContNotPassed(t *testing.T) {
	src := `
protocol P begin
  state S();
  state W(C : CONT) transient;
  state W2(C : CONT; n : int) transient;
  message M;
end;
state P.S() begin
  message M (id : ID; var info : INFO; src : NODE) begin
    Suspend(L, W2{NoCont(), 3});
  end;
end;
state P.W(C : CONT) begin
  message M (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
end;
state P.W2(C : CONT; n : int) begin
  message M (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
end;
`
	_, err := checkSrc(t, src)
	if err == nil || !strings.Contains(err.Error(), "unknown routine") {
		t.Fatalf("err = %v", err)
	}
}

func TestPayloadInference(t *testing.T) {
	src := `
protocol P begin
  state S();
  message CAS;
  message OTHER;
end;
state P.S() begin
  message CAS (id : ID; var info : INFO; src : NODE; old : int; new : int)
  begin
    if (old = new) then
      Send(src, OTHER, id);
    else
      Send(src, CAS, id, old, new);
    endif;
  end;
  message OTHER (id : ID; var info : INFO; src : NODE) begin exit; end;
end;
`
	p, err := checkSrc(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	cas := p.MessageByName("CAS")
	if len(cas.Payload) != 2 || !cas.Payload[0].Same(Int) {
		t.Fatalf("payload = %v", cas.Payload)
	}
}

func TestPayloadMismatch(t *testing.T) {
	src := `
protocol P begin
  state S();
  message CAS;
end;
state P.S() begin
  message CAS (id : ID; var info : INFO; src : NODE; old : int)
  begin
    Send(src, CAS, id, true);
  end;
end;
`
	_, err := checkSrc(t, src)
	if err == nil || !strings.Contains(err.Error(), "payload 1 has type bool") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateHandler(t *testing.T) {
	src := `
protocol P begin state S(); message M; end;
state P.S() begin
  message M (id : ID; var info : INFO; src : NODE) begin exit; end;
  message M (id : ID; var info : INFO; src : NODE) begin exit; end;
end;
`
	_, err := checkSrc(t, src)
	if err == nil || !strings.Contains(err.Error(), "duplicate handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestStateDeclaredNotDefined(t *testing.T) {
	src := `
protocol P begin state S(); state Ghost(); message M; end;
state P.S() begin
  message M (id : ID; var info : INFO; src : NODE) begin exit; end;
end;
`
	_, err := checkSrc(t, src)
	if err == nil || !strings.Contains(err.Error(), "never defined") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadSignature(t *testing.T) {
	src := `
protocol P begin state S(); message M; end;
state P.S() begin
  message M (id : ID) begin exit; end;
end;
`
	_, err := checkSrc(t, src)
	if err == nil || !strings.Contains(err.Error(), "must declare at least") {
		t.Fatalf("err = %v", err)
	}
}

func TestStateBodyDeclMismatch(t *testing.T) {
	src := `
protocol P begin state W(C : CONT) transient; state S(); message M; end;
state P.S() begin
  message M (id : ID; var info : INFO; src : NODE) begin exit; end;
end;
state P.W(C : CONT; n : int) begin
  message M (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
end;
`
	_, err := checkSrc(t, src)
	if err == nil || !strings.Contains(err.Error(), "parameters here") {
		t.Fatalf("err = %v", err)
	}
}

func TestMoreCheckErrors(t *testing.T) {
	cases := []struct{ name, body, want string }{
		{"assign state param not allowed via resume-cont", `Resume(C2);`, "undefined: C2"},
		{"while non-bool", `while (1) do x := 0; end;`, "must have type bool"},
		{"ordering on bools", `b := b < b;`, "ordering requires int"},
		{"not on int", `b := not x;`, "operand of not must be bool"},
		{"unary minus on bool", `x := -b;`, "operand of unary - must be int"},
		{"state value comparison ok", `b := W{NilC()} = W{NilC()};`, "unknown routine"},
		{"msg comparison ok", `b := MessageTag = M;`, ""},
		{"node comparison ok", `b := src = MyNode();`, ""},
		{"access const ok", `AccessChange(id, Blk_ReadOnly);`, ""},
		{"enqueue ignores args", `Enqueue(1, true, MessageTag);`, ""},
		{"send data ok", `SendData(src, M, id);`, ""},
		{"homenode ok", `Send(HomeNode(id), M, id);`, ""},
		{"print anything", `print(id, info, src, MessageTag, 3, true);`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { errCase(t, c.body, c.want) })
	}
}

func TestDuplicateDeclarations(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"dup message", `protocol P begin message M; message M; state S(); end;
state P.S() begin message M (id : ID; var info : INFO; src : NODE) begin exit; end; end;`,
			`message "M" redeclared`},
		{"dup state", `protocol P begin state S(); state S(); message M; end;
state P.S() begin message M (id : ID; var info : INFO; src : NODE) begin exit; end; end;`,
			`state "S" redeclared`},
		{"dup protvar", `protocol P begin var n : int; var n : int; state S(); message M; end;
state P.S() begin message M (id : ID; var info : INFO; src : NODE) begin exit; end; end;`,
			`protocol variable "n" redeclared`},
		{"dup const", `protocol P begin const K := 1; const K := 2; state S(); message M; end;
state P.S() begin message M (id : ID; var info : INFO; src : NODE) begin exit; end; end;`,
			`constant "K" redeclared`},
		{"dup state body", `protocol P begin state S(); message M; end;
state P.S() begin message M (id : ID; var info : INFO; src : NODE) begin exit; end; end;
state P.S() begin message M (id : ID; var info : INFO; src : NODE) begin exit; end; end;`,
			`state "S" defined twice`},
		{"dup default", `protocol P begin state S(); message M; end;
state P.S() begin
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin exit; end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin exit; end;
end;`,
			`duplicate DEFAULT`},
		{"undeclared handler msg", `protocol P begin state S(); message M; end;
state P.S() begin message NOPE (id : ID; var info : INFO; src : NODE) begin exit; end; end;`,
			`undeclared message`},
		{"default with payload", `protocol P begin state S(); message M; end;
state P.S() begin message DEFAULT (id : ID; var info : INFO; src : NODE; x : int) begin exit; end; end;`,
			`cannot declare payload`},
		{"wrong proto qualifier", `protocol P begin state S(); message M; end;
state Q.S() begin message M (id : ID; var info : INFO; src : NODE) begin exit; end; end;`,
			`does not match protocol`},
		{"empty state", `protocol P begin state S(); message M; end;
state P.S() begin end;`, `no handlers`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := checkSrc(t, c.src)
			if err == nil {
				t.Fatalf("no error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q missing %q", err.Error(), c.want)
			}
		})
	}
}

// TestParserReportsMultipleErrors: recovery keeps going after the first
// failure.
func TestParserReportsMultipleErrors(t *testing.T) {
	src := `
protocol P begin
  state S();
  message M;
end;
state P.S() begin
  message M (id : ID; var info : INFO; src : NODE)
  begin
    x := ;
    y 5;
    Frob(;
  end;
end;
`
	_, err := parser.Parse("multi.tea", src)
	if err == nil {
		t.Fatal("expected errors")
	}
	if n := strings.Count(err.Error(), "\n") + 1; n < 2 {
		t.Errorf("only %d error lines reported:\n%s", n, err.Error())
	}
}

// Package sim assembles benchmark runs: a workload program, a protocol
// engine (compiled Teapot or hand-written baseline), and the Tempest
// machine, and reports the statistics Tables 1 and 2 are built from.
package sim

import (
	"fmt"

	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/runtime"
	"teapot/internal/tempest"
)

// Config describes one run.
type Config struct {
	Nodes  int
	Blocks int
	Cost   tempest.CostModel
	Tags   tempest.EventTags
	// MakeEngine builds the protocol engine against the machine (which
	// implements runtime.Machine).
	MakeEngine func(m runtime.Machine) tempest.Engine
	Program    tempest.Program
	HomeOf     func(id int) int
	// Obs, when non-nil, is attached to the engine (if it implements
	// obs.Attacher) for the duration of the run. Sinks that implement
	// obs.ClockSetter are driven by the machine's virtual clock.
	Obs obs.Sink

	// Net injects network faults stochastically from a RNG seeded with
	// Seed; the same (Config, Seed) always reproduces the same run. Message
	// corruption is a checker-only fault (the simulator has no per-message
	// NACK bounce path), so Net.MaxCorrupts must be 0 here.
	Net  netmodel.Model
	Seed uint64

	// Sched, when set, replaces the seeded stochastic injection with
	// explicit schedule control: every nondeterministic decision (fault
	// fate, bounded reordering, same-cycle ties) is delegated to the
	// chooser. internal/fuzz records and replays these as Schedules.
	Sched tempest.Chooser

	// ObsMemory turns on the tempest data-version model so the run emits
	// the memory events internal/oracle judges.
	ObsMemory bool

	// InitMem gives blocks initial values under ObsMemory (litmus
	// workloads; see tempest.Config.InitMem).
	InitMem []int64

	// MaxEvents caps the run's event budget (0 = tempest's default). The
	// fuzzer sets a small budget so a livelocked schedule returns an error
	// instead of spinning toward the 100M-event safety net.
	MaxEvents int64
}

// Run executes the workload to completion.
func Run(cfg Config) (*tempest.Stats, error) {
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.Net.MaxCorrupts > 0 {
		return nil, fmt.Errorf("sim: Net corrupt=%d is checker-only (the simulator injects drop/dup/delay)", cfg.Net.MaxCorrupts)
	}
	prog := cfg.Program
	if t, ok := prog.(*Trace); ok {
		// Replay through a private cursor so a shared Workload trace is
		// never consumed by one run and left mid-stream for the next.
		prog = t.NewCursor()
	}
	tc := tempest.Config{
		Nodes:   cfg.Nodes,
		Blocks:  cfg.Blocks,
		HomeOf:  cfg.HomeOf,
		Cost:    cfg.Cost,
		Tags:    cfg.Tags,
		Program: prog,
		Net:     cfg.Net,
		Seed:    cfg.Seed,

		Sched:     cfg.Sched,
		ObsMemory: cfg.ObsMemory,
		InitMem:   cfg.InitMem,
		MaxEvents: cfg.MaxEvents,
	}
	m := tempest.New(tc)
	eng := cfg.MakeEngine(m)
	m.SetEngine(eng)
	if cfg.Obs != nil {
		if cs, ok := cfg.Obs.(obs.ClockSetter); ok {
			cs.SetClock(m.Now)
		}
		m.SetObs(cfg.Obs)
		defer m.SetObs(nil)
		if a, ok := eng.(obs.Attacher); ok {
			a.SetObs(cfg.Obs)
			defer a.SetObs(nil)
		}
	}
	return m.Run()
}

// Trace is a precomputed per-node operation stream; all bundled workloads
// are Traces so every engine flavor replays the identical instruction
// stream.
type Trace struct {
	Ops [][]tempest.Op
	pos []int
}

// NewTrace wraps per-node op slices.
func NewTrace(ops [][]tempest.Op) *Trace {
	return &Trace{Ops: ops, pos: make([]int, len(ops))}
}

// Next implements tempest.Program. It advances the trace's own cursor;
// callers that share one Trace across runs should prefer NewCursor.
func (t *Trace) Next(node int) (tempest.Op, bool) {
	if t.pos[node] >= len(t.Ops[node]) {
		return tempest.Op{}, false
	}
	op := t.Ops[node][t.pos[node]]
	t.pos[node]++
	return op, true
}

// NewCursor returns an independent replay cursor over the trace. Cursors
// share the immutable op streams but keep private positions, so
// concurrent or back-to-back runs over one Workload never interfere.
func (t *Trace) NewCursor() *TraceCursor {
	return &TraceCursor{t: t, pos: make([]int, len(t.Ops))}
}

// TraceCursor is a private replay position over a shared Trace.
type TraceCursor struct {
	t   *Trace
	pos []int
}

// Next implements tempest.Program.
func (c *TraceCursor) Next(node int) (tempest.Op, bool) {
	if c.pos[node] >= len(c.t.Ops[node]) {
		return tempest.Op{}, false
	}
	op := c.t.Ops[node][c.pos[node]]
	c.pos[node]++
	return op, true
}

// Reset rewinds the trace so another engine can replay it.
func (t *Trace) Reset() {
	for i := range t.pos {
		t.pos[i] = 0
	}
}

// TotalOps returns the total operation count.
func (t *Trace) TotalOps() int {
	n := 0
	for _, ops := range t.Ops {
		n += len(ops)
	}
	return n
}

// rng is a small deterministic PRNG (splitmix-style) so workload
// construction never depends on the library's math/rand defaults.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

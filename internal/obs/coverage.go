package obs

import (
	"fmt"
	"sort"
)

// Coverage is the sink behind the coverage plane: it folds an event stream
// into the protocol-surface sets a run actually exercised, so runs on
// different substrates (simulator schedules, fuzz campaigns, exhaustive
// model checking) become comparable artifacts. Three sets are kept:
//
//   - dispatch coverage: the (state, message) pairs a handler activation was
//     entered for, keyed exactly like the compiled IR's handler table. The
//     TIMEOUT pseudo-message, NACK bounces, and deferred-queue redeliveries
//     all arrive through the same dispatch site, so they count like any
//     other pair.
//   - transition coverage: (pre-state, message, post-state) triples observed
//     by pairing each HandlerEnter with its HandlerExit — the dynamic edges
//     of the state graph the static analysis extracts.
//   - fault-action coverage: which network fault actions (drop, dup,
//     reorder, corrupt, delay) were actually taken, per message tag. The
//     simulator feeds these from its Drop/Dup/Delay events; the checker
//     records its budgeted fault actions directly via FaultSite.
//
// Deferred-queue pressure is tracked separately: Enqueue events record
// which (state, message) pairs were parked, the defer-path complement of
// dispatch coverage.
//
// Coverage is value-oriented: Merge folds another instance in (the parallel
// checker gives each worker its own and merges at layer barriers — set
// union and count addition commute, so the result is identical for any
// worker count). Like every Sink it is single-goroutine.
type Coverage struct {
	dispatch map[dispatchKey]uint64
	deferred map[dispatchKey]uint64
	trans    map[transKey]uint64
	faults   map[faultKey]uint64
	open     map[openKey]dispatchKey // pending HandlerEnter per (node, block)
}

type transKey struct {
	From int32
	Msg  int32
	To   int32
}

type openKey struct {
	Node  int32
	Block int32
}

type faultKey struct {
	Action FaultAction
	Msg    int32
}

// FaultAction names one network fault the coverage plane distinguishes.
type FaultAction uint8

const (
	FaultActionDrop FaultAction = iota
	FaultActionDup
	FaultActionCorrupt
	FaultActionReorder
	FaultActionDelay
)

var faultActionNames = [...]string{"drop", "dup", "corrupt", "reorder", "delay"}

func (a FaultAction) String() string {
	if int(a) < len(faultActionNames) {
		return faultActionNames[a]
	}
	return fmt.Sprintf("fault%d", int(a))
}

// NewCoverage builds an empty coverage accumulator.
func NewCoverage() *Coverage {
	return &Coverage{
		dispatch: make(map[dispatchKey]uint64),
		deferred: make(map[dispatchKey]uint64),
		trans:    make(map[transKey]uint64),
		faults:   make(map[faultKey]uint64),
		open:     make(map[openKey]dispatchKey),
	}
}

// Emit implements Sink.
func (c *Coverage) Emit(ev Event) {
	switch ev.Kind {
	case KindHandlerEnter:
		c.dispatch[dispatchKey{ev.State, ev.Msg}]++
		c.open[openKey{ev.Node, ev.Block}] = dispatchKey{ev.State, ev.Msg}
	case KindHandlerExit:
		k := openKey{ev.Node, ev.Block}
		if enter, ok := c.open[k]; ok {
			c.trans[transKey{enter.State, enter.Msg, ev.State}]++
			delete(c.open, k)
		}
	case KindEnqueue:
		c.deferred[dispatchKey{ev.State, ev.Msg}]++
	case KindDrop:
		c.faults[faultKey{FaultActionDrop, ev.Msg}]++
	case KindDup:
		c.faults[faultKey{FaultActionDup, ev.Msg}]++
	case KindDelay:
		c.faults[faultKey{FaultActionDelay, ev.Msg}]++
	}
}

// FaultSite records one fault action taken on a message tag directly —
// the model checker's path: its drop/dup/corrupt budget actions and
// reordered deliveries happen at the World level, outside any engine, so
// no event stream carries them.
func (c *Coverage) FaultSite(a FaultAction, msg int32) {
	c.faults[faultKey{a, msg}]++
}

// Merge folds o's coverage into c. Union with count addition: commutative
// and associative, so a parallel run merging per-worker instances in any
// order accumulates identical totals.
func (c *Coverage) Merge(o *Coverage) {
	if o == nil {
		return
	}
	for k, n := range o.dispatch {
		c.dispatch[k] += n
	}
	for k, n := range o.deferred {
		c.deferred[k] += n
	}
	for k, n := range o.trans {
		c.trans[k] += n
	}
	for k, n := range o.faults {
		c.faults[k] += n
	}
}

// DispatchPairs returns how many distinct (state, message) pairs were
// dispatched.
func (c *Coverage) DispatchPairs() int { return len(c.dispatch) }

// TransitionEdges returns how many distinct (pre, message, post) triples
// were observed.
func (c *Coverage) TransitionEdges() int { return len(c.trans) }

// DispatchCount returns how often one (state, message) pair dispatched.
func (c *Coverage) DispatchCount(state, msg int) uint64 {
	return c.dispatch[dispatchKey{int32(state), int32(msg)}]
}

// PairName renders a dispatch pair in the canonical "State.MESSAGE" form
// every consumer of the coverage plane keys by (run manifests, the static
// cross-check in internal/analysis, teapot-cover diffs).
func PairName(names Names, state, msg int32) string {
	return names.State(state) + "." + names.Message(msg)
}

// CoverageReport is the JSON-ready rendering of a Coverage accumulator.
// Every map is keyed by a canonical string (PairName for dispatch and
// deferred, "pre.MSG->post" for transitions, "action:MSG" for faults) and
// valued by its hit count; encoding/json sorts map keys, so the rendered
// bytes are deterministic.
type CoverageReport struct {
	Dispatch    map[string]uint64 `json:"dispatch"`
	Transitions map[string]uint64 `json:"transitions"`
	Deferred    map[string]uint64 `json:"deferred,omitempty"`
	Faults      map[string]uint64 `json:"faults,omitempty"`
}

// Report renders the accumulated coverage with names resolved.
func (c *Coverage) Report(names Names) *CoverageReport {
	r := &CoverageReport{
		Dispatch:    make(map[string]uint64, len(c.dispatch)),
		Transitions: make(map[string]uint64, len(c.trans)),
	}
	for k, n := range c.dispatch {
		r.Dispatch[PairName(names, k.State, k.Msg)] += n
	}
	for k, n := range c.trans {
		r.Transitions[PairName(names, k.From, k.Msg)+"->"+names.State(k.To)] += n
	}
	if len(c.deferred) > 0 {
		r.Deferred = make(map[string]uint64, len(c.deferred))
		for k, n := range c.deferred {
			r.Deferred[PairName(names, k.State, k.Msg)] += n
		}
	}
	if len(c.faults) > 0 {
		r.Faults = make(map[string]uint64, len(c.faults))
		for k, n := range c.faults {
			r.Faults[k.Action.String()+":"+names.Message(k.Msg)] += n
		}
	}
	return r
}

// Keys returns a map's keys sorted — the canonical order for printing
// coverage sets and diffing them.
func Keys(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

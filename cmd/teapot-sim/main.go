// Teapot-sim runs one benchmark workload on the simulated Tempest machine
// under a chosen protocol engine and prints the run statistics.
//
// Usage:
//
//	teapot-sim -workload gauss -nodes 32 -engine opt
//	teapot-sim -workload stencil -engine hw      # hand-written LCM baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

func main() {
	var (
		workload = flag.String("workload", "gauss", "gauss | appbt | shallow | mp3d | adaptive | stencil | unstruct | prodcons")
		nodes    = flag.Int("nodes", 32, "number of nodes")
		iters    = flag.Int("iters", 4, "workload iterations")
		engine   = flag.String("engine", "opt", "hw (hand-written) | unopt | opt")
	)
	flag.Parse()

	spec := sim.WorkloadSpec{Nodes: *nodes, Iters: *iters, Seed: 99}
	var w *sim.Workload
	isLCM := false
	switch *workload {
	case "gauss":
		w = sim.Gauss(spec)
	case "appbt":
		w = sim.Appbt(spec)
	case "shallow":
		w = sim.Shallow(spec)
	case "mp3d":
		spec.Iters *= 4
		w = sim.Mp3d(spec)
	case "prodcons":
		w = sim.ProdCons(spec)
	case "adaptive":
		w, isLCM = sim.Adaptive(spec), true
	case "stencil":
		w, isLCM = sim.Stencil(spec), true
	case "unstruct":
		w, isLCM = sim.Unstruct(spec), true
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}

	optimize := *engine != "unopt"
	var mk func(m runtime.Machine) tempest.Engine
	var tags tempest.EventTags
	if isLCM {
		p := lcm.MustCompile(lcm.Base, optimize).Protocol
		tags = tempest.ResolveTags(p)
		mk = func(m runtime.Machine) tempest.Engine {
			if *engine == "hw" {
				return lcm.NewHW(p, *nodes, w.Blocks, m)
			}
			return tempest.NewTeapotEngine(p, *nodes, w.Blocks, m, lcm.MustSupport(p, *nodes))
		}
	} else {
		p := stache.MustCompile(optimize).Protocol
		tags = tempest.ResolveTags(p)
		mk = func(m runtime.Machine) tempest.Engine {
			if *engine == "hw" {
				return stache.NewHW(p, *nodes, w.Blocks, m)
			}
			return tempest.NewTeapotEngine(p, *nodes, w.Blocks, m, stache.MustSupport(p))
		}
	}

	stats, err := sim.Run(sim.Config{
		Nodes: *nodes, Blocks: w.Blocks,
		Cost: tempest.DefaultCost, Tags: tags,
		MakeEngine: mk, Program: w.Trace,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s (%d nodes, %d blocks, engine %s)\n", w.Name, *nodes, w.Blocks, *engine)
	fmt.Printf("  execution time: %d cycles\n", stats.Cycles)
	fmt.Printf("  accesses: %d   faults: %d   messages: %d\n", stats.Accesses, stats.Faults, stats.Messages)
	fmt.Printf("  fault time: %d cycles (%.0f%% of node-cycles)\n", stats.FaultTime,
		100*float64(stats.FaultTime)/float64(stats.Cycles*int64(*nodes)))
	fmt.Printf("  protocol: %d handlers, %d statements, %d cycles\n",
		stats.Protocol.Handlers, stats.Protocol.Instrs, stats.ProtoTime)
	fmt.Printf("  continuations: %d heap, %d static; queue records: %d\n",
		stats.Protocol.HeapConts, stats.Protocol.StaticConts, stats.Protocol.QueueRecords)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teapot-sim:", err)
	os.Exit(1)
}

package stache

import (
	"testing"

	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

func TestCASCompiles(t *testing.T) {
	a, err := CompileCAS(true)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cns := a.Sema.MessageByName("CNS_REQ")
	if cns == nil || len(cns.Payload) != 2 {
		t.Fatalf("CNS_REQ payload = %v", cns)
	}
	resp := a.Sema.MessageByName("CNS_RESP")
	if resp == nil || len(resp.Payload) != 1 {
		t.Fatalf("CNS_RESP payload = %v", resp)
	}
}

// casMachine reuses the stache test machine with the CAS protocol.
func newCASMachine(t *testing.T, nodes, blocks int) (*machine, *CASSupport) {
	t.Helper()
	a, err := CompileCAS(true)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sup, err := NewCASSupport(a.Protocol)
	if err != nil {
		t.Fatalf("support: %v", err)
	}
	m := &machine{t: t, access: make(map[[2]int]sema.AccessMode), woken: make(map[[2]int]int)}
	for n := 0; n < nodes; n++ {
		m.engines = append(m.engines, runtime.NewEngine(a.Protocol, n, blocks, m, sup))
	}
	return m, sup
}

func (m *machine) cas(node, id int, old, new int64) {
	m.t.Helper()
	p := m.engines[node].Proto
	err := m.engines[node].InjectEvent(p.MsgIndex("CAS_EV"), id,
		vm.IntVal(old), vm.IntVal(new))
	if err != nil {
		m.t.Fatalf("cas: %v", err)
	}
	m.pump()
}

func TestCASFromIdle(t *testing.T) {
	m, sup := newCASMachine(t, 3, 1)
	sup.Words[0] = 10
	m.cas(1, 0, 10, 20) // succeeds
	if sup.Words[0] != 20 {
		t.Errorf("word = %d, want 20", sup.Words[0])
	}
	if !sup.Results[[2]int{1, 0}] {
		t.Error("node 1 should see success")
	}
	m.cas(2, 0, 10, 30) // fails (word is 20)
	if sup.Words[0] != 20 {
		t.Errorf("word = %d after failed CAS", sup.Words[0])
	}
	if sup.Results[[2]int{2, 0}] {
		t.Error("node 2 should see failure")
	}
}

func TestCASForcesIdleFromShared(t *testing.T) {
	m, sup := newCASMachine(t, 3, 1)
	sup.Words[0] = 1
	// Two readers share the block; a CAS must invalidate them first.
	m.event(1, "RD_FAULT", 0)
	m.event(2, "RD_FAULT", 0)
	if got := m.stateOf(0, 0); got != "Home_RS" {
		t.Fatalf("home = %s", got)
	}
	m.cas(1, 0, 1, 2)
	if got := m.stateOf(0, 0); got != "Home_Idle" {
		t.Errorf("home = %s, want Home_Idle after CAS", got)
	}
	if got := m.stateOf(2, 0); got != "Cache_Inv" {
		t.Errorf("other sharer = %s, want Cache_Inv", got)
	}
	if sup.Words[0] != 2 {
		t.Errorf("word = %d, want 2", sup.Words[0])
	}
}

func TestCASRecallsOwner(t *testing.T) {
	m, sup := newCASMachine(t, 3, 1)
	sup.Words[0] = 5
	m.event(1, "WR_FAULT", 0) // node 1 owns the block
	m.cas(2, 0, 5, 6)
	if got := m.stateOf(1, 0); got != "Cache_Inv" {
		t.Errorf("old owner = %s, want Cache_Inv", got)
	}
	if got := m.stateOf(0, 0); got != "Home_Idle" {
		t.Errorf("home = %s, want Home_Idle", got)
	}
	if sup.Words[0] != 6 || !sup.Results[[2]int{2, 0}] {
		t.Errorf("word = %d, result = %v", sup.Words[0], sup.Results[[2]int{2, 0}])
	}
}

func TestCASWhileOwnerIssuesCAS(t *testing.T) {
	// The owner itself issues a CAS: the home recalls the owner's copy
	// while the owner waits in Cache_AwaitCNS — the PUT_DATA_REQ handler
	// there keeps the protocol live.
	m, sup := newCASMachine(t, 2, 1)
	sup.Words[0] = 7
	m.event(1, "WR_FAULT", 0)
	m.cas(1, 0, 7, 8)
	if sup.Words[0] != 8 {
		t.Errorf("word = %d, want 8", sup.Words[0])
	}
	if got := m.stateOf(1, 0); got != "Cache_Inv" {
		t.Errorf("node 1 = %s, want Cache_Inv", got)
	}
}

// Package fuzz drives the simulator through randomized schedules and
// judges every run with the coherence oracle. Schedules are first-class
// artifacts: each nondeterministic decision the Tempest machine delegates
// (fault fate, bounded channel reordering, same-cycle ties) is recorded as
// a (step, kind, pick) triple, so any run — including a failing one — can
// be replayed bit-for-bit, shrunk by delta debugging to a minimal
// reproducer, and cross-checked against the model checker.
package fuzz

import (
	"encoding/json"
	"fmt"
	"os"

	"teapot/internal/netmodel"
	"teapot/internal/tempest"
)

// Decision is one recorded nondeterministic pick. Step is the global index
// of the choice point in the run (every Choose call increments it, asked
// or not recorded); Kind names the tempest.ChoiceKind; Pick is the chosen
// option. Option 0 — the benign default — is never recorded, so a schedule
// is sparse: the empty decision list is exactly the deterministic
// fault-free run.
type Decision struct {
	Step uint64 `json:"step"`
	Kind string `json:"kind"`
	Pick int    `json:"pick"`
}

// Schedule is a complete, replayable description of one fuzzed run: the
// run shape (protocol, machine size, fault model, workload) plus the
// decision list. Serialized schedules are the fuzzer's failure artifacts.
type Schedule struct {
	Proto        string     `json:"proto"`
	Nodes        int        `json:"nodes"`
	Blocks       int        `json:"blocks"`
	Net          string     `json:"net"` // netmodel flag syntax
	WorkloadSeed uint64     `json:"workload_seed"`
	OpsPerNode   int        `json:"ops_per_node"`
	RecordSeed   uint64     `json:"record_seed,omitempty"` // provenance: the recorder RNG that found it
	Decisions    []Decision `json:"decisions"`

	// Litmus names the litmus test the schedule drives (teapot-litmus
	// artifacts). Litmus schedules replay through the litmus harness —
	// their workload is the test's script, not a RandomProgram — so the
	// fuzzer's own replay refuses them.
	Litmus string `json:"litmus,omitempty"`
	// Expect classifies what replaying the schedule should produce
	// ("violation", "error", "forbidden:<name>", or "clean" for regression
	// artifacts pinning a fixed bug); informational for humans, asserted by
	// the testdata/repro regression suite.
	Expect string `json:"expect,omitempty"`
	// Note is a human-readable provenance line ("found by ...", "pins the
	// PR 5 ack-counting bug", ...).
	Note string `json:"note,omitempty"`
}

// NetModel parses the schedule's fault model.
func (s *Schedule) NetModel() (netmodel.Model, error) { return netmodel.Parse(s.Net) }

func (s *Schedule) String() string {
	return fmt.Sprintf("%s %dn/%db net=%s workload=%d×%d: %d decision(s)",
		s.Proto, s.Nodes, s.Blocks, s.Net, s.WorkloadSeed, s.OpsPerNode, len(s.Decisions))
}

// Save writes the schedule as indented JSON.
func (s *Schedule) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a schedule written by Save.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("fuzz: %s: %w", path, err)
	}
	if s.Proto == "" || s.Nodes <= 0 || s.Blocks <= 0 {
		return nil, fmt.Errorf("fuzz: %s: incomplete schedule (proto/nodes/blocks)", path)
	}
	return &s, nil
}

// kindName maps a tempest choice kind to its schedule encoding.
func kindName(k tempest.ChoiceKind) string { return k.String() }

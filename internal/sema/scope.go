package sema

import (
	"teapot/internal/ast"
	"teapot/internal/source"
	"teapot/internal/token"
)

// handlerScope resolves names inside one handler. Lookup order: handler
// locals and parameters, the enclosing state's parameters (the CONT
// argument), protocol variables, protocol constants, module constants,
// builtin values, messages, routines.
type handlerScope struct {
	c  *checker
	hs *HandlerSym
	// suspendConts maps continuation names bound by enclosing Suspend
	// statements (visible only inside the suspend target expression).
	suspendCont *Symbol
}

func (sc *handlerScope) lookup(id *ast.Ident) *Symbol {
	name := id.Name
	if sc.suspendCont != nil && sc.suspendCont.Name == name {
		return sc.suspendCont
	}
	for i, l := range sc.hs.Locals {
		if l.Name == name {
			return &Symbol{Kind: SymLocal, Name: name, Type: l.Type, Index: i}
		}
	}
	for i, p := range sc.hs.Params {
		if p.Name == name {
			return &Symbol{Kind: SymParam, Name: name, Type: p.Type, Index: i}
		}
	}
	for i, p := range sc.hs.State.Params {
		if p.Name == name {
			return &Symbol{Kind: SymStateParam, Name: name, Type: p.Type, Index: i}
		}
	}
	if v := sc.c.findProtVar(name); v != nil {
		return &Symbol{Kind: SymProtVar, Name: name, Type: v.Type, Index: v.Index}
	}
	if cv, ok := sc.c.p.Consts[name]; ok {
		return &Symbol{Kind: SymConst, Name: name, Type: cv.Type, Const: cv}
	}
	if v := sc.c.findModConst(name); v != nil {
		return &Symbol{Kind: SymModConst, Name: name, Type: v.Type, Index: v.Index}
	}
	if mode, ok := builtinAccessConsts[name]; ok {
		return &Symbol{Kind: SymConst, Name: name, Type: Access,
			Const: &ConstVal{Type: Access, Int: int64(mode)}}
	}
	if bv, ok := builtinValues[name]; ok {
		return &Symbol{Kind: SymBuiltinVal, Name: name, Type: bv.Type, Index: int(bv.Builtin)}
	}
	if m := sc.c.p.msgByName[name]; m != nil {
		return &Symbol{Kind: SymMessage, Name: name, Type: Msg, Index: m.Index}
	}
	if st := sc.c.p.stateByName[name]; st != nil {
		return &Symbol{Kind: SymState, Name: name, Type: State, Index: st.Index}
	}
	if f, ok := sc.c.p.Funcs[name]; ok {
		return &Symbol{Kind: SymFunc, Name: name, Type: f.Sig.Result, Sig: f.Sig}
	}
	return nil
}

func (c *checker) checkHandlerBody(hs *HandlerSym) {
	sc := &handlerScope{c: c, hs: hs}
	sc.stmts(hs.Body)
}

func (sc *handlerScope) stmts(list []ast.Stmt) {
	for _, s := range list {
		sc.stmt(s)
	}
}

func (sc *handlerScope) stmt(s ast.Stmt) {
	c := sc.c
	switch s := s.(type) {
	case *ast.IfStmt:
		sc.exprExpect(s.Cond, Bool, "if condition")
		sc.stmts(s.Then)
		sc.stmts(s.Else)
	case *ast.WhileStmt:
		sc.exprExpect(s.Cond, Bool, "while condition")
		sc.stmts(s.Body)
	case *ast.CallStmt:
		sc.call(s.Call, true)
	case *ast.AssignStmt:
		sym := sc.lookup(s.LHS)
		if sym == nil {
			c.errorf(s.LHS.Pos(), "undefined: %s", s.LHS.Name)
			return
		}
		c.p.Uses[s.LHS] = sym
		switch sym.Kind {
		case SymLocal, SymParam, SymProtVar:
			// assignable
		default:
			c.errorf(s.LHS.Pos(), "cannot assign to %s", s.LHS.Name)
			return
		}
		t := sc.expr(s.RHS)
		if !t.Same(sym.Type) && t.Kind != TInvalid && sym.Type.Kind != TInvalid {
			c.errorf(s.LHS.Pos(), "cannot assign %s to %s (type %s)", t, s.LHS.Name, sym.Type)
		}
	case *ast.SuspendStmt:
		hs := sc.hs
		hs.Suspends++
		target := c.p.stateByName[s.Target.Name.Name]
		if target == nil {
			c.errorf(s.Target.Pos(), "suspend target %q is not a state", s.Target.Name.Name)
			return
		}
		c.p.Uses[s.Target.Name] = &Symbol{Kind: SymState, Name: target.Name, Type: State, Index: target.Index}
		if !target.IsSubroutine() {
			c.errorf(s.Target.Pos(), "suspend target state %q has no CONT parameter", target.Name)
		}
		// The continuation variable is in scope only within the target's
		// argument list.
		if prev := sc.lookup(s.Cont); prev != nil {
			c.errorf(s.Cont.Pos(), "continuation name %q shadows an existing name", s.Cont.Name)
		}
		contSym := &Symbol{Kind: SymSuspendCont, Name: s.Cont.Name, Type: Cont}
		c.p.Uses[s.Cont] = contSym
		outer := sc.suspendCont
		sc.suspendCont = contSym
		used := sc.stateArgs(s.Target, target)
		sc.suspendCont = outer
		if !used {
			c.errorf(s.SuspendPos, "continuation %q is not passed to state %q (it could never be resumed)",
				s.Cont.Name, target.Name)
		}
	case *ast.ResumeStmt:
		sc.exprExpect(s.Cont, Cont, "resume argument")
	case *ast.ReturnStmt:
		if s.Value != nil {
			c.errorf(s.Pos(), "handlers do not return values")
			sc.expr(s.Value)
		}
	case *ast.PrintStmt:
		for _, a := range s.Args {
			sc.expr(a)
		}
	}
}

// stateArgs type-checks a state constructor's arguments against the state's
// parameters and reports whether the current suspend continuation (if any)
// was mentioned.
func (sc *handlerScope) stateArgs(se *ast.StateExpr, st *StateSym) bool {
	c := sc.c
	if len(se.Args) != len(st.Params) {
		c.errorf(se.Pos(), "state %s takes %d arguments, got %d", st.Name, len(st.Params), len(se.Args))
	}
	contUsed := false
	for i, a := range se.Args {
		t := sc.expr(a)
		if i < len(st.Params) && !t.Same(st.Params[i].Type) && t.Kind != TInvalid {
			c.errorf(a.Pos(), "state %s argument %d has type %s, want %s", st.Name, i+1, t, st.Params[i].Type)
		}
		ast.WalkExprs(a, func(e ast.Expr) {
			if n, ok := e.(*ast.Name); ok && sc.suspendCont != nil && n.Ident.Name == sc.suspendCont.Name {
				contUsed = true
			}
		})
	}
	return contUsed
}

func (sc *handlerScope) exprExpect(e ast.Expr, want Type, what string) {
	t := sc.expr(e)
	if !t.Same(want) && t.Kind != TInvalid {
		sc.c.errorf(e.Pos(), "%s must have type %s, got %s", what, want, t)
	}
}

// expr type-checks an expression and returns its type.
func (sc *handlerScope) expr(e ast.Expr) Type {
	c := sc.c
	switch e := e.(type) {
	case *ast.IntLit:
		return Int
	case *ast.BoolLit:
		return Bool
	case *ast.StringLit:
		return String
	case *ast.Name:
		sym := sc.lookup(e.Ident)
		if sym == nil {
			c.errorf(e.Pos(), "undefined: %s", e.Ident.Name)
			return Invalid
		}
		c.p.Uses[e.Ident] = sym
		if sym.Kind == SymFunc {
			c.errorf(e.Pos(), "routine %s used as a value", e.Ident.Name)
			return Invalid
		}
		return sym.Type
	case *ast.CallExpr:
		return sc.call(e, false)
	case *ast.StateExpr:
		st := c.p.stateByName[e.Name.Name]
		if st == nil {
			c.errorf(e.Pos(), "unknown state %q", e.Name.Name)
			return Invalid
		}
		c.p.Uses[e.Name] = &Symbol{Kind: SymState, Name: st.Name, Type: State, Index: st.Index}
		sc.stateArgs(e, st)
		return State
	case *ast.BinExpr:
		return sc.binary(e)
	case *ast.UnExpr:
		t := sc.expr(e.X)
		switch e.Op {
		case token.KWNOT, token.NOT:
			if !t.Same(Bool) && t.Kind != TInvalid {
				c.errorf(e.Pos(), "operand of not must be bool, got %s", t)
			}
			return Bool
		case token.MINUS:
			if !t.Same(Int) && t.Kind != TInvalid {
				c.errorf(e.Pos(), "operand of unary - must be int, got %s", t)
			}
			return Int
		}
		return Invalid
	case *ast.ParenExpr:
		return sc.expr(e.X)
	}
	return Invalid
}

func (sc *handlerScope) binary(e *ast.BinExpr) Type {
	c := sc.c
	xt := sc.expr(e.X)
	yt := sc.expr(e.Y)
	bad := xt.Kind == TInvalid || yt.Kind == TInvalid
	switch e.Op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT:
		if !bad && (!xt.Same(Int) || !yt.Same(Int)) {
			c.errorf(e.OpPos, "arithmetic requires int operands, got %s and %s", xt, yt)
		}
		return Int
	case token.EQ, token.NEQ:
		if !bad && !xt.Same(yt) {
			c.errorf(e.OpPos, "comparison of mismatched types %s and %s", xt, yt)
		}
		if !bad && !xt.Scalar() && xt.Kind != TState && xt.Kind != TAbstract {
			c.errorf(e.OpPos, "type %s is not comparable", xt)
		}
		return Bool
	case token.LT, token.LE, token.GT, token.GE:
		// Ints order naturally; NODE/NODE and ID/ID order by identity (the
		// symmetry prover refutes equivariance for protocols that do this,
		// so the model checker's scalarset reduction stays sound).
		ordered := (xt.Same(Int) && yt.Same(Int)) ||
			(xt.Same(yt) && (xt.Kind == TNode || xt.Kind == TID))
		if !bad && !ordered {
			c.errorf(e.OpPos, "ordering requires int operands (or two NODEs, or two IDs), got %s and %s", xt, yt)
		}
		return Bool
	case token.AND, token.KWAND, token.OR, token.KWOR:
		if !bad && (!xt.Same(Bool) || !yt.Same(Bool)) {
			c.errorf(e.OpPos, "logical operator requires bool operands, got %s and %s", xt, yt)
		}
		return Bool
	}
	c.errorf(e.OpPos, "unknown operator")
	return Invalid
}

// call type-checks a routine application. asStmt permits discarding a
// function result.
func (sc *handlerScope) call(e *ast.CallExpr, asStmt bool) Type {
	c := sc.c
	f, ok := c.p.Funcs[e.Func.Name]
	if !ok {
		c.errorf(e.Func.Pos(), "unknown routine %q", e.Func.Name)
		for _, a := range e.Args {
			sc.expr(a)
		}
		return Invalid
	}
	c.p.Uses[e.Func] = &Symbol{Kind: SymFunc, Name: f.Name, Type: f.Sig.Result, Sig: f.Sig}
	if !asStmt && f.Sig.Result.Kind == TInvalid {
		c.errorf(e.Pos(), "procedure %s used in an expression", f.Name)
	}
	sig := f.Sig
	if len(e.Args) < sig.NumFixed() || (!sig.Variadic && len(e.Args) > sig.NumFixed()) {
		c.errorf(e.Pos(), "%s expects %s, got %d arguments", f.Name, sig, len(e.Args))
	}
	var argTypes []Type
	for i, a := range e.Args {
		t := sc.expr(a)
		argTypes = append(argTypes, t)
		if i < sig.NumFixed() {
			want := sig.Params[i]
			if !t.Same(want) && t.Kind != TInvalid && want.Kind != TInvalid {
				c.errorf(a.Pos(), "%s argument %d has type %s, want %s", f.Name, i+1, t, want)
			}
			if sig.ByRef[i] {
				if _, isName := a.(*ast.Name); !isName {
					c.errorf(a.Pos(), "%s argument %d must be a variable (var parameter)", f.Name, i+1)
				}
			}
		}
	}
	// Send/SendData payload checking: if the tag is a literal message name,
	// the trailing arguments must match the message's inferred payload.
	if (f.Builtin == BSend || f.Builtin == BSendData) && len(e.Args) >= 3 {
		if n, ok := e.Args[1].(*ast.Name); ok {
			if m := c.p.msgByName[n.Ident.Name]; m != nil && m.Payload != nil {
				payload := argTypes[3:]
				if len(payload) != len(m.Payload) {
					c.errorf(e.Pos(), "%s of %s carries %d payload values, handlers declare %d",
						f.Name, m.Name, len(payload), len(m.Payload))
				} else {
					for i := range payload {
						if !payload[i].Same(m.Payload[i]) && payload[i].Kind != TInvalid {
							c.errorf(e.Args[3+i].Pos(), "%s payload %d has type %s, handlers declare %s",
								m.Name, i+1, payload[i], m.Payload[i])
						}
					}
				}
			}
		}
	}
	return sig.Result
}

var _ = source.Pos{} // silence potential unused import during refactors

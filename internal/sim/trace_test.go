package sim_test

import (
	"testing"

	"teapot/internal/obs"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// TestRunDoesNotConsumeSharedTrace is the regression test for the shared
// trace-cursor bug: Workload.Trace carries a mutable position, so a second
// Run over the same Workload used to replay an empty stream and report a
// trivially short (and wrong) run. Run must give each invocation its own
// cursor.
func TestRunDoesNotConsumeSharedTrace(t *testing.T) {
	const nodes = 4
	w := sim.Gauss(sim.WorkloadSpec{Nodes: nodes, Iters: 2, Seed: 7})
	// Deliberately no w.Trace.Reset() between these runs.
	s1 := runStache(t, w, nodes, "opt")
	s2 := runStache(t, w, nodes, "opt")
	if s1.Cycles != s2.Cycles || s1.Messages != s2.Messages || s1.Accesses != s2.Accesses {
		t.Errorf("second run over a shared Workload diverged: (%d,%d,%d) vs (%d,%d,%d)",
			s1.Cycles, s1.Messages, s1.Accesses, s2.Cycles, s2.Messages, s2.Accesses)
	}
	if s2.Accesses == 0 {
		t.Error("second run saw an already-consumed trace")
	}
}

// TestTraceCursorIndependence checks cursors do not share position state
// with each other or with the trace's own cursor.
func TestTraceCursorIndependence(t *testing.T) {
	tr := sim.NewTrace([][]tempest.Op{{
		{Kind: tempest.OpRead, Addr: 0},
		{Kind: tempest.OpWrite, Addr: 0},
	}})
	c1, c2 := tr.NewCursor(), tr.NewCursor()
	op1, ok := c1.Next(0)
	if !ok || op1.Kind != tempest.OpRead {
		t.Fatalf("c1 first op = %+v, %v", op1, ok)
	}
	op2, ok := c2.Next(0)
	if !ok || op2.Kind != tempest.OpRead {
		t.Errorf("c2 saw c1's position: %+v, %v", op2, ok)
	}
	if op, ok := tr.Next(0); !ok || op.Kind != tempest.OpRead {
		t.Errorf("trace's own cursor moved by cursor reads: %+v, %v", op, ok)
	}
}

// TestRunWithObsSink wires a collector through sim.Run and checks the
// plumbing end to end: events arrive, timestamps follow the machine's
// virtual clock, and observation does not change the simulation.
func TestRunWithObsSink(t *testing.T) {
	const nodes = 4
	w := sim.Gauss(sim.WorkloadSpec{Nodes: nodes, Iters: 2, Seed: 7})
	bare := runStache(t, w, nodes, "opt")

	c := obs.NewCollector(0)
	observed := runStacheObs(t, w, nodes, c)
	if observed.Cycles != bare.Cycles || observed.Messages != bare.Messages {
		t.Errorf("observation changed the run: (%d,%d) vs (%d,%d)",
			observed.Cycles, observed.Messages, bare.Cycles, bare.Messages)
	}
	if c.Total() == 0 {
		t.Fatal("sink saw no events")
	}
	if got := c.Count(obs.KindSend); got != bare.Messages {
		t.Errorf("Send events = %d, machine counted %d messages", got, bare.Messages)
	}
	var lastTime int64 = -1
	timed := false
	for _, ev := range c.Events() {
		if ev.Time < lastTime {
			t.Fatalf("virtual time went backwards: %d after %d", ev.Time, lastTime)
		}
		lastTime = ev.Time
		if ev.Time > 0 {
			timed = true
		}
	}
	if !timed {
		t.Error("no event carries a nonzero virtual timestamp; clock not wired")
	}
}

func runStacheObs(t *testing.T, w *sim.Workload, nodes int, sink obs.Sink) *tempest.Stats {
	t.Helper()
	proto := stache.MustCompile(true).Protocol
	stats, err := sim.Run(sim.Config{
		Nodes:  nodes,
		Blocks: w.Blocks,
		Cost:   tempest.DefaultCost,
		Tags:   tempest.ResolveTags(proto),
		MakeEngine: func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(proto, nodes, w.Blocks, m, stache.MustSupport(proto))
		},
		Program: w.Trace,
		Obs:     sink,
	})
	if err != nil {
		t.Fatalf("%s/obs: %v", w.Name, err)
	}
	return stats
}

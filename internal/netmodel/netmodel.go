// Package netmodel is the network fault model shared by every Teapot
// backend. One Model value describes what the network may do to in-flight
// messages — reorder, delay, drop, duplicate, corrupt — and both execution
// substrates consume it:
//
//   - the model checker (internal/mc) explores faults *nondeterministically*
//     under bounded budgets (MaxDrops/MaxDups/MaxCorrupts per run), keeping
//     the state space finite and the parallel-BFS determinism contract
//     intact;
//   - the simulator (internal/tempest, via internal/sim) injects faults
//     *stochastically* from a seeded deterministic RNG (Injector), recording
//     each as an obs event so Chrome traces show the lost arrows.
//
// The textual form accepted by Parse is the -net flag syntax used by every
// CLI: "drop=1,dup=1,reorder=2".
package netmodel

import (
	"fmt"
	"sort"
	"strings"
)

// Model is a network fault model. The zero value is a perfect in-order
// network (the seed repo's default).
type Model struct {
	// Reorder bounds network reordering: a delivery may overtake at most
	// Reorder earlier messages in its channel (0 = in-order, the paper
	// verified with "1 reordering max").
	Reorder int

	// Delay models messages held back by the fabric. The checker treats it
	// as extra reorder credit (a delayed message is overtaken by up to
	// Delay additional messages); the simulator stretches an affected
	// message's transit time by Delay extra network latencies.
	Delay int

	// MaxDrops bounds how many in-flight messages may be lost per run.
	MaxDrops int

	// MaxDups bounds how many in-flight messages may be duplicated per run.
	MaxDups int

	// MaxCorrupts bounds how many messages may be corrupted per run. A
	// corrupted message is detected by the receiving interface and bounced
	// back to its sender as a NACK carrying the original tag, so the
	// protocol must declare a NACK message to be checked under corruption.
	MaxCorrupts int

	// Rate is the per-message fault probability for stochastic injection
	// (the simulator only; the checker branches on every opportunity).
	// 0 means DefaultRate whenever any fault budget is set.
	Rate float64
}

// DefaultRate is the stochastic injection probability used when a fault
// budget is configured but Rate is left 0.
const DefaultRate = 0.25

// Active reports whether the model injects any faults (reordering alone is
// not a fault: it needs no budget and no recovery).
func (m Model) Active() bool {
	return m.MaxDrops > 0 || m.MaxDups > 0 || m.MaxCorrupts > 0 || m.Delay > 0
}

// EffectiveReorder is the reorder credit the checker grants a delivery:
// the configured reorder bound plus the delay credit.
func (m Model) EffectiveReorder() int { return m.Reorder + m.Delay }

// Validate rejects malformed models.
func (m Model) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"reorder", m.Reorder}, {"delay", m.Delay},
		{"drop", m.MaxDrops}, {"dup", m.MaxDups}, {"corrupt", m.MaxCorrupts},
	} {
		if f.v < 0 {
			return fmt.Errorf("netmodel: %s must be >= 0 (got %d)", f.name, f.v)
		}
	}
	if m.Rate < 0 || m.Rate > 1 {
		return fmt.Errorf("netmodel: rate must be in [0,1] (got %g)", m.Rate)
	}
	return nil
}

// rate returns the stochastic injection probability with the default
// applied.
func (m Model) rate() float64 {
	if m.Rate > 0 {
		return m.Rate
	}
	return DefaultRate
}

// Parse reads the -net flag syntax: a comma-separated list of key=value
// pairs. Keys: reorder, delay, drop, dup, corrupt, rate. The empty string
// is the zero Model.
func Parse(s string) (Model, error) {
	var m Model
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("netmodel: %q is not key=value (want e.g. drop=1,dup=1,reorder=2)", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if key == "rate" {
			if _, err := fmt.Sscanf(val, "%g", &m.Rate); err != nil {
				return m, fmt.Errorf("netmodel: bad rate %q", val)
			}
			continue
		}
		var n int
		if _, err := fmt.Sscanf(val, "%d", &n); err != nil {
			return m, fmt.Errorf("netmodel: bad value %q for %s", val, key)
		}
		switch key {
		case "reorder":
			m.Reorder = n
		case "delay":
			m.Delay = n
		case "drop":
			m.MaxDrops = n
		case "dup":
			m.MaxDups = n
		case "corrupt":
			m.MaxCorrupts = n
		default:
			return m, fmt.Errorf("netmodel: unknown key %q (known: reorder, delay, drop, dup, corrupt, rate)", key)
		}
	}
	return m, m.Validate()
}

// String renders the model in Parse's syntax (Parse(m.String()) == m).
func (m Model) String() string {
	var parts []string
	add := func(k string, v int) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, v))
		}
	}
	add("reorder", m.Reorder)
	add("delay", m.Delay)
	add("drop", m.MaxDrops)
	add("dup", m.MaxDups)
	add("corrupt", m.MaxCorrupts)
	if m.Rate != 0 {
		parts = append(parts, fmt.Sprintf("rate=%g", m.Rate))
	}
	if len(parts) == 0 {
		return "none"
	}
	sort.Strings(parts) // fixed rendering order independent of field order
	return strings.Join(parts, ",")
}

// Fault is one stochastic injection decision.
type Fault int

// Injection outcomes.
const (
	FaultNone Fault = iota
	FaultDrop
	FaultDup
	FaultDelay
)

func (f Fault) String() string {
	switch f {
	case FaultDrop:
		return "drop"
	case FaultDup:
		return "dup"
	case FaultDelay:
		return "delay"
	}
	return "none"
}

// Injector draws per-message fault decisions from a seeded deterministic
// RNG (splitmix64, the same generator the workload builders use), honoring
// the model's budgets: the same seed over the same send sequence always
// yields the same faults, so simulator runs stay reproducible bit-for-bit.
type Injector struct {
	m     Model
	s     uint64
	drops int
	dups  int
	delay int
}

// NewInjector builds an injector for the model. A nil return means the
// model injects nothing and the caller can skip the per-send check.
func NewInjector(m Model, seed uint64) *Injector {
	if !m.Active() {
		return nil
	}
	return &Injector{m: m, s: seed}
}

func (i *Injector) next() uint64 {
	i.s += 0x9e3779b97f4a7c15
	z := i.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Next decides the fate of the next message send. Budgeted faults (drop,
// dup) stop once spent; delay is per-message and unbudgeted.
func (i *Injector) Next() Fault {
	if i == nil {
		return FaultNone
	}
	if float64(i.next()>>11)/(1<<53) >= i.m.rate() {
		return FaultNone
	}
	var opts []Fault
	if i.drops < i.m.MaxDrops {
		opts = append(opts, FaultDrop)
	}
	if i.dups < i.m.MaxDups {
		opts = append(opts, FaultDup)
	}
	if i.m.Delay > 0 {
		opts = append(opts, FaultDelay)
	}
	if len(opts) == 0 {
		return FaultNone
	}
	f := opts[i.next()%uint64(len(opts))]
	switch f {
	case FaultDrop:
		i.drops++
	case FaultDup:
		i.dups++
	case FaultDelay:
		i.delay++
	}
	return f
}

// Drops returns how many messages the injector has dropped so far.
func (i *Injector) Drops() int {
	if i == nil {
		return 0
	}
	return i.drops
}

// Dups returns how many messages the injector has duplicated so far.
func (i *Injector) Dups() int {
	if i == nil {
		return 0
	}
	return i.dups
}

// Delays returns how many messages the injector has delayed so far.
func (i *Injector) Delays() int {
	if i == nil {
		return 0
	}
	return i.delay
}

// Teapotc is the Teapot compiler driver: it parses and checks a protocol
// specification and emits any of the back-end artifacts — executable Go
// (the paper's C target), a Murphi verification model (§7), a Graphviz
// state-machine rendering, the IR listing, or a reformatted source.
//
// Usage:
//
//	teapotc [flags] file.tea
//	teapotc -builtin stache -emit go
//
// Flags:
//
//	-builtin name   use a bundled protocol (stache, stache-cas, stache-buggy,
//	                lcm, lcm-update, lcm-mcc, lcm-both, bufwrite, update)
//	-emit kind      go | murphi | dot | ir | fmt | stats | sites (default stats)
//	                sites prints the suspend-site classification table; its
//	                site ids are the ones ContAlloc/Resume trace events carry
//	                (teapot-sim -trace), so a trace can be read against it
//	-O              enable the constant-continuation optimization (default on)
//	-pkg name       package name for -emit go (default "proto")
//	-dot-prefix s   state-name filter for -emit dot ("Cache_", "Home_")
//	-dot-ideal      elide transient states (Figures 1 and 2)
//	-o file         output file (default stdout)
package main

import (
	"flag"
	"fmt"
	"os"

	"strings"

	"teapot/internal/analysis"
	"teapot/internal/ast"
	"teapot/internal/codegen"
	"teapot/internal/cont"
	"teapot/internal/core"
	"teapot/internal/dot"
	"teapot/internal/murphi"
	"teapot/internal/protocols"
)

func main() {
	var (
		builtin    = flag.String("builtin", "", "use a bundled protocol instead of a source file")
		emit       = flag.String("emit", "stats", "artifact to emit: go|murphi|dot|ir|fmt|stats|sites")
		optimize   = flag.Bool("O", true, "enable the constant-continuation optimization")
		pkg        = flag.String("pkg", "proto", "package name for -emit go")
		dotPrefix  = flag.String("dot-prefix", "", "state-name prefix filter for -emit dot")
		dotIdeal   = flag.Bool("dot-ideal", false, "elide transient states in -emit dot")
		outFile    = flag.String("o", "", "output file (default stdout)")
		homeStart  = flag.String("home-start", "Home_Idle", "initial home-side state")
		cacheStart = flag.String("cache-start", "Cache_Inv", "initial cache-side state")
		vet        = flag.Bool("vet", false, "run the static protocol analyses and report findings")
	)
	flag.Parse()

	cfg, err := loadSource(*builtin, flag.Args())
	if err != nil {
		fatal(err)
	}
	cfg.Optimize = *optimize
	// Start-state flags apply to source files; for builtins the registry
	// knows the right states unless the flags are given explicitly.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if cfg.HomeStart == "" || explicit["home-start"] {
		cfg.HomeStart = *homeStart
	}
	if cfg.CacheStart == "" || explicit["cache-start"] {
		cfg.CacheStart = *cacheStart
	}
	name := cfg.Name
	art, err := core.Compile(cfg)
	if err != nil {
		fatal(err)
	}

	if *vet {
		rep := analysis.Analyze(art.Protocol)
		fmt.Print(rep)
		if len(rep.Actionable()) > 0 {
			os.Exit(1)
		}
		return
	}

	var out string
	switch *emit {
	case "go":
		out = codegen.Generate(art.IR, *pkg)
	case "murphi":
		out = murphi.Generate(art.IR, murphi.Options{})
	case "dot":
		m := dot.Extract(art.IR, dot.Options{Prefix: *dotPrefix, IncludeTransient: !*dotIdeal})
		out = dot.Render(m, name)
	case "ir":
		for _, f := range art.IR.Funcs {
			out += f.Disassemble() + "\n"
		}
	case "fmt":
		out = ast.Print(art.AST)
	case "stats":
		out = stats(art)
	case "sites":
		out = sites(art)
	default:
		fatal(fmt.Errorf("unknown -emit kind %q", *emit))
	}

	if *outFile == "" {
		fmt.Print(out)
		return
	}
	if err := os.WriteFile(*outFile, []byte(out), 0o644); err != nil {
		fatal(err)
	}
}

func loadSource(builtin string, args []string) (cfg core.Config, err error) {
	if builtin != "" {
		e, ok := protocols.Lookup(builtin)
		if !ok {
			return cfg, fmt.Errorf("unknown builtin %q (bundled: %s)",
				builtin, strings.Join(protocols.Names(), ", "))
		}
		return e.Config, nil
	}
	if len(args) != 1 {
		return cfg, fmt.Errorf("usage: teapotc [flags] file.tea (or -builtin name)")
	}
	b, err := os.ReadFile(args[0])
	if err != nil {
		return cfg, err
	}
	return core.Config{Name: args[0], Source: string(b)}, nil
}

func stats(art *core.Artifacts) string {
	sp := art.Sema
	st := art.Stats
	out := fmt.Sprintf("protocol %s\n", sp.ProtoName)
	out += fmt.Sprintf("  states:    %d (%d transient)\n", len(sp.States), countTransient(art))
	out += fmt.Sprintf("  messages:  %d\n", len(sp.Messages))
	out += fmt.Sprintf("  handlers:  %d\n", sp.NumHandlers())
	out += fmt.Sprintf("  suspend sites: %d (static %d, constant %d, dynamic %d, max saved %d)\n",
		st.Sites, st.Static, st.Constant, st.Dynamic, st.MaxSaved)
	out += fmt.Sprintf("  options:   %+v\n", cont.Options{Liveness: true, ConstCont: art.Protocol.Opts.ConstCont})
	return out
}

// sites renders the suspend-site classification table. The ids in the
// first column are the Site values ContAlloc and Resume events carry in
// teapot-sim -trace output, so a Chrome trace reads directly against this
// table.
func sites(art *core.Artifacts) string {
	out := fmt.Sprintf("suspend sites for %s\n", art.Sema.ProtoName)
	out += fmt.Sprintf("  %4s  %-34s %-22s %-9s %s\n", "site", "handler", "target state", "class", "saved regs")
	for _, s := range art.IR.Sites {
		class := "heap"
		switch {
		case s.Static && s.Constant:
			class = "constant"
		case s.Static:
			class = "static"
		}
		out += fmt.Sprintf("  %4d  %-34s %-22s %-9s %d\n",
			s.ID, s.Func.Name, art.Sema.States[s.TargetState].Name, class,
			len(s.Func.Frags[s.FragIdx].Saved))
	}
	return out
}

func countTransient(art *core.Artifacts) int {
	n := 0
	for _, s := range art.Sema.States {
		if s.Transient {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teapotc:", err)
	os.Exit(1)
}

package murphi_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"teapot/internal/core"
	"teapot/internal/murphi"
	"teapot/internal/protocols"
)

var update = flag.Bool("update", false, "rewrite the golden Murphi files under testdata/")

// TestGoldenEmission pins the generated Murphi text for every bundled
// protocol, byte for byte. The emission is an interchange artifact — the
// paper's dual-target property rests on "a single source produces both
// verification and executable code" — so unintended churn in it is a bug,
// not cosmetics. Regenerate intentionally with:
//
//	go test ./internal/murphi/ -run TestGoldenEmission -update
func TestGoldenEmission(t *testing.T) {
	for _, e := range protocols.All() {
		t.Run(e.Name, func(t *testing.T) {
			a, err := core.Compile(e.Config)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			got := murphi.Generate(a.IR, murphi.Options{Nodes: 2, Blocks: 1, Reorder: 1})
			path := filepath.Join("testdata", e.Name+".m")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Error(firstDiff(string(want), got))
			}
		})
	}
}

// firstDiff locates the first divergent line of two texts.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("emission diverges from golden file at line %d:\n  want: %s\n  got:  %s\n(regenerate intentionally with -update)",
				i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("emission length changed: golden %d lines, got %d lines (regenerate intentionally with -update)",
		len(wl), len(gl))
}

package mc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"teapot/internal/obs"
)

// Check runs the breadth-first exploration.
//
// The search is layer-synchronous: all states at depth d are expanded —
// concurrently, by cfg.Workers goroutines — before any state at depth d+1,
// which preserves the BFS invariant (counterexample traces are
// shortest-path) and makes every reported figure deterministic. Expanding a
// state decodes its canonical encoding exactly once; each successor is a
// structural clone plus one action (the final action is applied to the
// decoded world in place), never a re-decode. Violations found while a
// layer expands are collected, the layer is finished, and the one the
// sequential scan would have hit first — smallest (frontier position,
// action ordinal) — is reported, with its trace re-derived by replaying the
// compact parent chain from the initial state. States, Transitions,
// MaxDepth, the violation kind, and the trace are identical for any worker
// count.
func Check(cfg Config) (*Result, error) {
	cfg.normalize()
	// Exploration never attaches Config.Obs to the worlds it expands: that
	// sink is the replay path's (see ReplaySteps). Coverage accounting has
	// its own per-worker wiring below.
	cfg.Obs = nil
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.Net.MaxCorrupts > 0 && cfg.nackTag < 0 {
		return nil, fmt.Errorf("mc: Net corrupt=%d but the protocol declares no NACK message to bounce corrupted tags with", cfg.Net.MaxCorrupts)
	}
	red, note, err := buildReduction(&cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Workers: cfg.Workers, SymmetryGroup: 1, SymmetryNote: note}
	if red != nil {
		res.SymmetryGroup = len(red.group)
	}

	init := newWorld(&cfg)
	var initKey string
	var initPerm int32
	if red != nil {
		initKey, initPerm, err = red.canonicalize(init)
	} else {
		initKey, err = init.encode()
	}
	if err != nil {
		return nil, err
	}
	vt := newVisited()
	layer := []int32{vt.addRoot(initKey, initPerm)}
	res.PeakFrontier = 1

	for depth := 0; len(layer) > 0; depth++ {
		res.MaxDepth = depth
		out, err := expandLayer(&cfg, vt, red, layer)
		if err != nil {
			return nil, err
		}
		res.Transitions += int(out.transitions)
		res.Decodes += out.decodes
		next := vt.commit(layer)
		if len(next) > res.PeakFrontier {
			res.PeakFrontier = len(next)
		}
		if cfg.Progress != nil {
			// Reported from the driver goroutine, after the barrier: the
			// snapshot reads no state a worker could still be touching.
			min, max := vt.shardStats()
			cfg.Progress(ProgressInfo{
				Depth:         depth,
				Frontier:      len(next),
				States:        len(vt.arena),
				Transitions:   int64(res.Transitions),
				Elapsed:       time.Since(start),
				VisitedBytes:  vt.bytes(),
				ShardMin:      min,
				ShardMax:      max,
				SymmetryGroup: res.SymmetryGroup,
			})
		}
		if out.cand != nil {
			v, err := buildViolation(&cfg, vt, red, layer, out.cand)
			if err != nil {
				return nil, err
			}
			res.Violation = v
			break
		}
		layer = next
		if cfg.MaxStates > 0 && len(vt.arena) >= cfg.MaxStates {
			res.Violation = &Violation{Kind: "state-limit",
				Msg: fmt.Sprintf("exploration stopped at %d states", len(vt.arena))}
			break
		}
	}

	res.States = len(vt.arena)
	res.VisitedBytes = vt.bytes()
	res.Elapsed = time.Since(start)
	return res, nil
}

// candidate is a violation observed during layer expansion, positioned so
// the deterministic minimum can be selected at the barrier.
type candidate struct {
	kind string
	msg  string
	pos  int32 // position of the expanded state within its layer
	ord  int32 // ordinal of the violating action, -1 for deadlock
}

func (c *candidate) before(o *candidate) bool {
	if c.pos != o.pos {
		return c.pos < o.pos
	}
	return c.ord < o.ord
}

// workerOut accumulates one worker's per-layer results; outputs are merged
// at the barrier so workers share nothing while expanding.
type workerOut struct {
	cand        *candidate
	transitions int64
	decodes     int64
	cov         *obs.Coverage // per-worker coverage, merged at the barrier
	err         error
}

func (o *workerOut) take(c *candidate) {
	if o.cand == nil || c.before(o.cand) {
		o.cand = c
	}
}

// expandLayer expands every state of the layer, fanning out over
// cfg.Workers goroutines pulling positions from a shared cursor.
func expandLayer(cfg *Config, vt *visitedTable, red *reduction, layer []int32) (*workerOut, error) {
	workers := cfg.Workers
	if workers > len(layer) {
		workers = len(layer)
	}

	merged := &workerOut{}
	if workers <= 1 {
		merged.cov = cfg.Coverage // accumulate in place, nothing to merge
		for pos := range layer {
			if err := expandState(cfg, vt, red, layer, int32(pos), merged); err != nil {
				return nil, err
			}
		}
		return merged, nil
	}

	outs := make([]workerOut, workers)
	if cfg.Coverage != nil {
		for i := range outs {
			outs[i].cov = obs.NewCoverage()
		}
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(out *workerOut) {
			defer wg.Done()
			for {
				pos := cursor.Add(1) - 1
				if pos >= int64(len(layer)) {
					return
				}
				if err := expandState(cfg, vt, red, layer, int32(pos), out); err != nil {
					out.err = err
					return
				}
			}
		}(&outs[i])
	}
	wg.Wait()
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return nil, o.err
		}
		merged.transitions += o.transitions
		merged.decodes += o.decodes
		if cfg.Coverage != nil {
			// Set union with count addition commutes, so merging in worker
			// order (or any order) accumulates identical coverage.
			cfg.Coverage.Merge(o.cov)
		}
		if o.cand != nil {
			merged.take(o.cand)
		}
	}
	return merged, nil
}

// expandState decodes one state (once), enumerates its actions, and claims
// every successor, deriving each from a clone of the decoded world — the
// last from the decoded world itself. With symmetry reduction active every
// successor is canonicalized before the claim, so the visited table (and
// its per-shard balance statistics) sees only post-canonicalization keys.
func expandState(cfg *Config, vt *visitedTable, red *reduction, layer []int32, pos int32, out *workerOut) error {
	w, err := cfg.decode(vt.arena[layer[pos]].key)
	if err != nil {
		return fmt.Errorf("mc: decode: %w", err)
	}
	out.decodes++
	// Terminal-state judgment (litmus runs): a state where every script has
	// finished, nothing is stalled, and the network has drained is a final
	// outcome; a judging hook that rejects it makes the state itself the
	// violation (ord -1, like deadlocks — the trace leads to the state).
	if cfg.Terminal != nil && w.networkEmpty() && !w.anyStalled() && w.ClientDone() {
		if msg := cfg.Terminal(w); msg != "" {
			out.take(&candidate{kind: "litmus", msg: msg, pos: pos, ord: -1})
		}
	}
	acts := w.actions()
	if len(acts) == 0 {
		if w.anyStalled() && w.networkEmpty() {
			out.take(&candidate{kind: "deadlock", msg: describeStall(w), pos: pos, ord: -1})
		}
		return nil
	}
	for i, a := range acts {
		wa := w
		if i < len(acts)-1 {
			if wa, err = w.clone(); err != nil {
				return fmt.Errorf("mc: clone: %w", err)
			}
		}
		out.transitions++
		if out.cov != nil {
			// Handler-level coverage flows from the engines' event stream;
			// the two fault actions no event kind exists for (reordered
			// deliveries, corrupt bounces) are recorded at the action level.
			wa.setObs(out.cov)
			switch a.kind {
			case actDeliver:
				if a.idx > 0 {
					out.cov.FaultSite(obs.FaultActionReorder,
						int32(wa.channels[a.from*cfg.Nodes+a.to][a.idx].Tag))
				}
			case actCorrupt:
				out.cov.FaultSite(obs.FaultActionCorrupt,
					int32(wa.channels[a.from*cfg.Nodes+a.to][a.idx].Tag))
			}
		}
		if err := wa.apply(a); err != nil {
			out.take(&candidate{kind: "protocol-error", msg: err.Error(), pos: pos, ord: int32(i)})
			continue
		}
		if msg := wa.checkInvariants(); msg != "" {
			out.take(&candidate{kind: "invariant", msg: msg, pos: pos, ord: int32(i)})
			continue
		}
		var succ string
		var permIdx int32
		if red != nil {
			succ, permIdx, err = red.canonicalize(wa)
		} else {
			succ, err = wa.encode()
		}
		if err != nil {
			return fmt.Errorf("mc: encode: %w", err)
		}
		vt.claim(succ, pos, int32(i), permIdx)
	}
	return nil
}

// buildViolation re-derives the counterexample trace for the selected
// candidate by replaying the parent chain's action ordinals from the
// initial state. Descriptions are rendered against the pre-action world,
// exactly as the transitions were originally taken.
//
// With symmetry reduction active, the arena stores canonical orbit
// representatives and the recorded ordinals index the *canonical* worlds'
// action lists, so the trace is rebuilt by de-permuting: g tracks the
// accumulated group element mapping the original-coordinate world onto the
// canonical chain (g_{k+1} = perm_of(child) ∘ g_k), each ordinal is looked
// up in the decoded canonical world and mapped back through g⁻¹, and the
// violation message itself is re-derived in original coordinates so users
// never see a permuted node or block id.
func buildViolation(cfg *Config, vt *visitedTable, red *reduction, layer []int32, c *candidate) (*Violation, error) {
	// Arena indices from the root to the violating state, root first.
	var chain []int32
	for idx := layer[c.pos]; idx >= 0; idx = vt.arena[idx].parent {
		chain = append(chain, idx)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	// One (pre-state arena index, ordinal) pair per transition, plus the
	// violating action itself when the violation is a transition.
	type traceStep struct{ pre, ord int32 }
	steps := make([]traceStep, 0, len(chain))
	for k := 1; k < len(chain); k++ {
		steps = append(steps, traceStep{pre: chain[k-1], ord: vt.arena[chain[k]].action})
	}
	if c.ord >= 0 {
		steps = append(steps, traceStep{pre: chain[len(chain)-1], ord: c.ord})
	}

	w := newWorld(cfg)
	var g *perm
	if red != nil {
		g = red.group[vt.arena[chain[0]].perm]
	}
	msg := c.msg
	trace := make([]string, 0, len(steps))
	machineSteps := make([]Step, 0, len(steps))
	for n, t := range steps {
		final := n == len(steps)-1 && c.ord >= 0
		var a action
		if red == nil {
			acts := w.actions()
			if int(t.ord) >= len(acts) {
				return nil, fmt.Errorf("mc: trace replay diverged at step %d", n)
			}
			a = acts[t.ord]
		} else {
			// The ordinal indexes the action list expandState enumerated —
			// the decoded canonical world's, not w's — so look it up there
			// and map it back into original coordinates.
			cw, err := cfg.decode(vt.arena[t.pre].key)
			if err != nil {
				return nil, fmt.Errorf("mc: decode: %w", err)
			}
			acts := cw.actions()
			if int(t.ord) >= len(acts) {
				return nil, fmt.Errorf("mc: trace replay diverged at step %d", n)
			}
			a = red.permAction(acts[t.ord], g.inverse())
		}
		trace = append(trace, w.describe(a))
		machineSteps = append(machineSteps, w.step(a))
		if final {
			if red != nil {
				// Re-derive the violation message in original coordinates.
				wf, err := w.clone()
				if err != nil {
					return nil, fmt.Errorf("mc: clone: %w", err)
				}
				if err := wf.apply(a); err != nil {
					msg = err.Error()
				} else if im := wf.checkInvariants(); im != "" {
					msg = im
				}
			}
			break // the final action is the violation itself
		}
		if err := w.apply(a); err != nil {
			return nil, fmt.Errorf("mc: trace replay diverged at step %d: %w", n, err)
		}
		if red != nil {
			g = compose(red.group[vt.arena[chain[n+1]].perm], g)
		}
	}
	if c.kind == "deadlock" && red != nil {
		// Deadlocks are a property of the final state; re-describe the
		// stall against the original-coordinate world. (Litmus terminal
		// judgments are also ord -1 but carry their own message — and never
		// coexist with reduction, which refuses scripted clients.)
		msg = describeStall(w)
	}
	return &Violation{Kind: c.kind, Msg: msg, Trace: trace, Steps: machineSteps}, nil
}

// describeStall renders a deadlock. When messages were dropped on the path
// here it says so: a stall behind an empty network with spent drop budget
// is (almost always) a lost message the protocol has no TIMEOUT recovery
// for, which deserves a different diagnosis than a genuine protocol
// deadlock reachable on a perfect network.
func describeStall(w *World) string {
	var stuck []string
	for n, b := range w.stalled {
		if b >= 0 {
			stuck = append(stuck, fmt.Sprintf("node %d stalled on block %d (state %s)",
				n, b, w.StateName(n, b)))
		}
	}
	sort.Strings(stuck)
	prefix := "network empty, "
	if w.drops > 0 {
		prefix = fmt.Sprintf("network empty after %d dropped message(s) — a lost message with no TIMEOUT recovery, not a fault-free protocol deadlock; ", w.drops)
	}
	return prefix + strings.Join(stuck, "; ")
}

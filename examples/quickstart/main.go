// Quickstart: write a tiny MSI-style coherence protocol in Teapot, compile
// it, and run it on a three-node loopback machine.
//
//	go run ./examples/quickstart
//
// The protocol demonstrates the language's core idea: the read-miss
// handler *suspends* mid-handler while the home node replies, instead of
// being split into hand-managed intermediate states.
package main

import (
	"fmt"
	"log"

	"teapot/internal/core"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

const protocol = `
protocol MSI begin
  var readers : int;

  state C_Invalid();
  state C_Shared();
  state C_Fill(K : CONT) transient;
  state H_Idle();
  state H_Shared();

  message RD_FAULT;
  message GET_REQ;
  message GET_RESP;
end;

state MSI.C_Invalid()
begin
  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_REQ, id);
    Suspend(L, C_Fill{L});      -- wait for the data, right here
    WakeUp(id);                 -- ...and continue after it arrives
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected %s in C_Invalid", Msg_To_Str(MessageTag));
  end;
end;

state MSI.C_Fill(K : CONT)
begin
  message GET_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    SetState(info, C_Shared{});
    Resume(K);
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state MSI.C_Shared()
begin
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected %s in C_Shared", Msg_To_Str(MessageTag));
  end;
end;

state MSI.H_Idle()
begin
  message GET_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(src, GET_RESP, id);
    readers := readers + 1;
    SetState(info, H_Shared{});
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected %s in H_Idle", Msg_To_Str(MessageTag));
  end;
end;

state MSI.H_Shared()
begin
  message GET_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(src, GET_RESP, id);
    readers := readers + 1;
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected %s in H_Shared", Msg_To_Str(MessageTag));
  end;
end;
`

// loopback is a minimal runtime.Machine: messages go into a FIFO the main
// loop pumps.
type loopback struct {
	engines []*runtime.Engine
	queue   []func() error
}

func (m *loopback) Send(from, dst int, msg *runtime.Message) {
	e := m.engines[dst]
	m.queue = append(m.queue, func() error { return e.Deliver(msg) })
}
func (m *loopback) AccessChange(node, id int, mode sema.AccessMode) {
	fmt.Printf("    [tempest] node %d block %d access -> %s\n", node, id, mode)
}
func (m *loopback) RecvData(node, id int, mode sema.AccessMode) {
	fmt.Printf("    [tempest] node %d block %d data installed (%s)\n", node, id, mode)
}
func (m *loopback) WakeUp(node, id int) {
	fmt.Printf("    [tempest] node %d resumes after fault on block %d\n", node, id)
}
func (m *loopback) HomeNode(id int) int      { return 0 }
func (m *loopback) Print(node int, s string) { fmt.Printf("    [print %d] %s\n", node, s) }
func (m *loopback) pump() error {
	for len(m.queue) > 0 {
		next := m.queue[0]
		m.queue = m.queue[1:]
		if err := next(); err != nil {
			return err
		}
	}
	return nil
}

type noSupport struct{}

func (noSupport) Call(*runtime.Ctx, string, []*vm.Value) (vm.Value, error) {
	return vm.Value{}, fmt.Errorf("no support routines in this protocol")
}
func (noSupport) ModConst(*runtime.Ctx, string) vm.Value { return vm.Value{} }

func main() {
	art, err := core.Compile(core.Config{
		Name:       "msi.tea",
		Source:     protocol,
		Optimize:   true,
		HomeStart:  "H_Idle",
		CacheStart: "C_Invalid",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %s: %d states, %d handlers, %d suspend site(s)\n\n",
		art.Sema.ProtoName, len(art.Sema.States), art.Sema.NumHandlers(), art.Stats.Sites)

	m := &loopback{}
	for n := 0; n < 3; n++ {
		m.engines = append(m.engines, runtime.NewEngine(art.Protocol, n, 1, m, noSupport{}))
	}

	for _, reader := range []int{1, 2} {
		fmt.Printf("node %d reads block 0 (faults):\n", reader)
		if err := m.engines[reader].InjectEvent(art.Protocol.MsgIndex("RD_FAULT"), 0); err != nil {
			log.Fatal(err)
		}
		if err := m.pump(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nfinal states:")
	for n, e := range m.engines {
		fmt.Printf("  node %d: %s\n", n, e.Blocks[0].StateName(art.Protocol))
	}
	readersSlot := -1
	for _, v := range art.Sema.ProtVars {
		if v.Name == "readers" {
			readersSlot = v.Index
		}
	}
	fmt.Printf("  home counted %d readers\n", m.engines[0].Blocks[0].Vars[readersSlot].Int)
	c := m.engines[1].Counters()
	fmt.Printf("\nnode 1 protocol work: %d handlers, %d instructions, %d static + %d heap continuations\n",
		c.Handlers, c.Instrs, c.StaticConts, c.HeapConts)
}

// Package dot extracts protocol state machines from compiled Teapot
// protocols and renders them as Graphviz DOT — the tool behind the
// reproduction of the paper's Figures 1 and 2 (the idealized non-home and
// home machines, with transient states elided) and Figure 4 (the home
// machine once the intermediate states forced by non-atomic transitions
// are included).
package dot

import (
	"fmt"
	"sort"
	"strings"

	"teapot/internal/ir"
	"teapot/internal/sema"
)

// Options select which part of the machine to render.
type Options struct {
	// Prefix filters states by name prefix ("Cache_" for the non-home
	// side, "Home_" for the home side; empty renders everything).
	Prefix string
	// IncludeTransient keeps the intermediate/subroutine states
	// (Figure 4); when false they are elided and transitions through them
	// are contracted to their eventual targets (Figures 1 and 2).
	IncludeTransient bool
}

// Edge is one transition of the extracted machine.
type Edge struct {
	From, To string
	Label    string // triggering message
}

// Machine is an extracted state machine.
type Machine struct {
	States []string
	Edges  []Edge
}

// Extract walks every handler's IR and records (state, message) → possible
// successor states (targets of SetState and Suspend).
func Extract(p *ir.Program, opts Options) *Machine {
	sp := p.Sema
	include := func(name string) bool {
		if opts.Prefix != "" && !strings.HasPrefix(name, opts.Prefix) {
			return false
		}
		return true
	}
	transient := func(idx int) bool { return sp.States[idx].Transient }

	// Raw edges: state --msg--> target.
	type key struct{ from, to, label string }
	seen := map[key]bool{}
	var edges []Edge
	states := map[string]bool{}

	// contractTargets follows transient states to their eventual
	// non-transient successors (for the idealized figures).
	var reachable func(stateIdx int, depth int) []int
	reachable = func(stateIdx int, depth int) []int {
		if depth > 8 {
			return nil
		}
		var out []int
		for _, f := range p.Funcs {
			if f.StateIndex != stateIdx {
				continue
			}
			for i := range f.Code {
				in := &f.Code[i]
				if in.Op != ir.OpMakeState || !stateIsSet(f, i) {
					continue
				}
				if transient(in.Idx) {
					out = append(out, reachable(in.Idx, depth+1)...)
				} else {
					out = append(out, in.Idx)
				}
			}
		}
		return out
	}

	for _, f := range p.Funcs {
		from := sp.States[f.StateIndex]
		if !include(from.Name) {
			continue
		}
		if !opts.IncludeTransient && from.Transient {
			continue
		}
		states[from.Name] = true
		label := "DEFAULT"
		if f.MsgIndex >= 0 {
			label = sp.Messages[f.MsgIndex].Name
		}
		for i := range f.Code {
			in := &f.Code[i]
			if in.Op != ir.OpMakeState || !stateIsSet(f, i) {
				continue
			}
			targets := []int{in.Idx}
			if !opts.IncludeTransient && transient(in.Idx) {
				targets = reachable(in.Idx, 0)
			}
			for _, tgt := range targets {
				name := sp.States[tgt].Name
				if !include(name) {
					continue
				}
				k := key{from.Name, name, label}
				if seen[k] || name == from.Name {
					continue
				}
				seen[k] = true
				states[name] = true
				edges = append(edges, Edge{From: from.Name, To: name, Label: label})
			}
		}
	}

	m := &Machine{Edges: edges}
	for s := range states {
		m.States = append(m.States, s)
	}
	sort.Strings(m.States)
	sort.Slice(m.Edges, func(i, j int) bool {
		a, b := m.Edges[i], m.Edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Label < b.Label
	})
	return m
}

// stateIsSet reports whether the MakeState at index i feeds a SetState
// call or a Suspend (i.e., it actually transitions the block, as opposed
// to a state value used in a comparison).
func stateIsSet(f *ir.Func, i int) bool {
	dst := f.Code[i].Dst
	for j := i + 1; j < len(f.Code); j++ {
		in := &f.Code[j]
		if in.Op == ir.OpSuspend && in.A == dst {
			return true
		}
		if in.Op == ir.OpCall && in.Fn.Builtin == sema.BSetState &&
			len(in.Args) == 2 && in.Args[1] == dst {
			return true
		}
		if in.Def() == dst {
			return false
		}
	}
	return false
}

// Render emits Graphviz DOT for the machine.
func Render(m *Machine, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=LR;\n  node [shape=ellipse, fontname=\"Helvetica\"];\n")
	for _, s := range m.States {
		shape := ""
		if strings.Contains(s, "_To_") || strings.Contains(s, "Await") ||
			strings.Contains(s, "Wait") || strings.Contains(s, "Gather") {
			shape = ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q [label=%q%s];\n", s, s, shape)
	}
	for _, e := range m.Edges {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, e.Label)
	}
	b.WriteString("}\n")
	return b.String()
}

// Counts summarizes a machine for the Figure 4 comparison ("the new, more
// complex state machine which is still a simplification of the actual
// protocol").
type Counts struct {
	States int
	Edges  int
}

// Count extracts and counts in one step.
func Count(p *ir.Program, opts Options) Counts {
	m := Extract(p, opts)
	return Counts{States: len(m.States), Edges: len(m.Edges)}
}

package lcm

import "testing"

func TestVariantsCompile(t *testing.T) {
	for _, v := range []Variant{Base, Update, MCC, Both} {
		if _, err := Compile(v, true); err != nil {
			t.Errorf("%s: %v", v, err)
		}
	}
}

package analysis

import (
	"fmt"
	"strings"

	"teapot/internal/source"
)

// runCoverage checks the (state, message) handler matrix: every pair must
// be covered by a dedicated handler, a DEFAULT handler, or an explicit
// queue/nack/drop/error policy. The model checker discovers missing cells
// one counterexample at a time ("no handler for message M in state S");
// this pass reports the whole matrix row at once.
//
// Only reachable states are reported as errors — an unreachable state's
// holes are subsumed by vet:unreachable.
func runCoverage(c *Ctx) {
	for si, st := range c.Sema.States {
		var missing []string
		for mi, m := range c.Sema.Messages {
			if c.facts.policies[si][mi] == polMissing {
				missing = append(missing, m.Name)
			}
		}
		if len(missing) == 0 {
			continue
		}
		sev := source.SevError
		if !c.facts.reach[si] {
			sev = source.SevInfo
		}
		c.Reportf(sev, c.statePos(st),
			"state %s has no handler, DEFAULT, or queue/nack/drop policy for %s",
			st.Name, describeList(missing))
	}
}

// describeList renders a message list compactly: all names up to four, then
// a count.
func describeList(names []string) string {
	if len(names) == 1 {
		return "message " + names[0]
	}
	if len(names) <= 4 {
		return fmt.Sprintf("%d messages (%s)", len(names), strings.Join(names, ", "))
	}
	return fmt.Sprintf("%d messages (%s, ...)", len(names), strings.Join(names[:4], ", "))
}

// runReachability reports states that no static SetState/Suspend path
// reaches from the configured start states (dead states: either vestigial
// declarations or a missing transition elsewhere).
func runReachability(c *Ctx) {
	for si, st := range c.Sema.States {
		if c.facts.reach[si] {
			continue
		}
		c.Reportf(source.SevWarning, c.statePos(st),
			"state %s is unreachable from the start states (%s, %s)",
			st.Name,
			c.Sema.States[c.Proto.HomeStart].Name,
			c.Sema.States[c.Proto.CacheStart].Name)
	}
}

// runNoExit reports transient (intermediate/subroutine) states with no
// outgoing transition and no Resume: a block entering one can never leave,
// which the model checker reports as a deadlock after exploring every
// interleaving that reaches the state. Stable states may legitimately be
// terminal, so only transient states are flagged.
func runNoExit(c *Ctx) {
	for si, st := range c.Sema.States {
		if !st.Transient || !c.facts.reach[si] {
			continue
		}
		if len(c.facts.succ[si]) > 0 || c.facts.hasResume[si] {
			continue
		}
		c.Reportf(source.SevWarning, c.statePos(st),
			"transient state %s has no outgoing transition or Resume: blocks that enter it never leave",
			st.Name)
	}
}

// Package manifest defines the versioned run manifest: the machine-readable
// artifact every protocol-running tool can leave behind (-report out.json,
// teapot-verify -json). A manifest names the run (protocol, geometry,
// network fault model, seed), carries the coverage sets the run exercised
// (internal/obs.Coverage), an obs counter summary, per-substrate resource
// accounting, and — after a violation — the flight-recorder tail of the
// counterexample replay. Manifests from different substrates are diffable:
// teapot-cover names fuzz-vs-mc coverage gaps by exact (state, message)
// pair, and the static cross-check compares a manifest against
// internal/analysis reachability.
//
// The package is almost a leaf: it knows obs (for CoverageReport) and
// nothing of mc, sim, or fuzz — those layers lower their results into the
// plain structs here, so one schema serves every tool.
package manifest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"teapot/internal/obs"
)

// Version is the manifest schema version. Bump on any incompatible change
// to the structs below; loaders reject versions they do not know.
const Version = 1

// Manifest is one run's machine-readable record.
type Manifest struct {
	ManifestVersion int    `json:"manifest_version"`
	Tool            string `json:"tool"`     // "teapot-verify" | "teapot-sim" | "teapot-fuzz"
	Protocol        string `json:"protocol"` // bundled-protocol registry name
	Nodes           int    `json:"nodes"`
	Blocks          int    `json:"blocks"`
	Net             string `json:"net,omitempty"`  // netmodel string, "" = perfect network
	Seed            uint64 `json:"seed,omitempty"` // sim/fuzz RNG seed; 0 for the checker

	Coverage *obs.CoverageReport `json:"coverage,omitempty"`
	Obs      *ObsSummary         `json:"obs,omitempty"`

	MC     *MCStats     `json:"mc,omitempty"`
	Sim    *SimStats    `json:"sim,omitempty"`
	Fuzz   *FuzzStats   `json:"fuzz,omitempty"`
	Litmus *LitmusStats `json:"litmus,omitempty"`

	// FlightRecorder is the last-N-events tail of a violating run (or of
	// the counterexample replay), one obs.FormatEvent line per event.
	FlightRecorder []string `json:"flight_recorder,omitempty"`
}

// ObsSummary condenses a Collector's counters.
type ObsSummary struct {
	Events        int64            `json:"events"`
	ByKind        map[string]int64 `json:"by_kind,omitempty"`
	MaxQueueDepth int64            `json:"max_queue_depth"`
}

// MCStats is the model checker's resource accounting: everything except
// ElapsedSec and StatesPerSec is deterministic for any worker count.
type MCStats struct {
	States        int     `json:"states"`
	Transitions   int     `json:"transitions"`
	MaxDepth      int     `json:"max_depth"`
	Workers       int     `json:"workers"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	StatesPerSec  float64 `json:"states_per_sec"`
	PeakFrontier  int     `json:"peak_frontier"`
	Decodes       int64   `json:"decodes"`
	VisitedBytes  int64   `json:"visited_bytes"`
	BytesPerState float64 `json:"bytes_per_state"`
	DedupRatio    float64 `json:"dedup_ratio"`
	// ShardMin/ShardMax are the visited table's final shard balance, taken
	// from the last progress-stream snapshot (0 when no layer completed).
	ShardMin      int64      `json:"shard_min"`
	ShardMax      int64      `json:"shard_max"`
	SymmetryGroup int        `json:"symmetry_group"`
	SymmetryNote  string     `json:"symmetry_note,omitempty"`
	Violation     *Violation `json:"violation,omitempty"`
}

// Violation is a checker counterexample in manifest form (mirrors
// mc.Violation; Steps replay with mc.ReplaySteps after conversion).
type Violation struct {
	Kind  string   `json:"kind"`
	Msg   string   `json:"msg"`
	Trace []string `json:"trace,omitempty"`
	Steps []Step   `json:"steps,omitempty"`
}

// Step is one machine-readable counterexample step (mirrors mc.Step).
type Step struct {
	Kind  string `json:"kind"`
	From  int    `json:"from"`
	To    int    `json:"to"`
	Idx   int    `json:"idx"`
	Node  int    `json:"node"`
	Block int    `json:"block"`
	Event string `json:"event,omitempty"`
	Msg   string `json:"msg,omitempty"`
}

// SimStats is the simulator's accounting for one run.
type SimStats struct {
	Cycles       int64   `json:"cycles"`
	Events       int64   `json:"events"` // obs events emitted
	ElapsedSec   float64 `json:"elapsed_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	Accesses     int64   `json:"accesses"`
	Faults       int64   `json:"faults"`
	Messages     int64   `json:"messages"`
	Drops        int64   `json:"drops"`
	Dups         int64   `json:"dups"`
	Delays       int64   `json:"delays"`
	Timeouts     int64   `json:"timeouts"`
}

// FuzzStats is a fuzzing campaign's accounting.
type FuzzStats struct {
	Schedules    int     `json:"schedules"` // schedules executed
	ChoicePoints uint64  `json:"choice_points"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	SchedPerSec  float64 `json:"sched_per_sec"`
	Failed       bool    `json:"failed"`
	Verdict      string  `json:"verdict,omitempty"` // failure description, "" when clean
	// ShrunkDecisions is the minimal reproducer's length after delta
	// debugging (0 when the campaign ran clean or shrinking was off).
	ShrunkDecisions int `json:"shrunk_decisions,omitempty"`
}

// LitmusStats is a litmus-harness run's accounting. One manifest covers
// the whole corpus run (Protocol/Nodes/Blocks name the corpus's single
// protocol and its largest geometry): litmus tests are small and numerous,
// so the per-test record lives in the -json report, and the manifest
// carries the aggregate the coverage plane diffs.
type LitmusStats struct {
	Corpus   string `json:"corpus"` // corpus directory
	Mode     string `json:"mode"`   // substrate selection the run used
	Tests    int    `json:"tests"`
	Failed   int    `json:"failed"`
	MCStates int    `json:"mc_states"` // states summed over every test's exploration
	// Verdict is "" when the corpus ran clean, else the first failure in
	// corpus order, "<test>: [<mode>] <class>: <msg>".
	Verdict string `json:"verdict,omitempty"`
}

// Encode renders the manifest as deterministic, indented JSON. Mirrors
// teapot-vet -json conventions: HTML escaping off (state names like
// "Home_RO->..." in transition keys must survive readably), two-space
// indent, trailing newline.
func (m *Manifest) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Write validates and writes the manifest to path.
func Write(path string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads and validates a manifest.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", path, err)
	}
	return m, nil
}

// Validate checks the schema invariants every consumer relies on.
func (m *Manifest) Validate() error {
	if m.ManifestVersion != Version {
		return fmt.Errorf("manifest_version %d, want %d", m.ManifestVersion, Version)
	}
	if m.Tool == "" {
		return fmt.Errorf("missing tool")
	}
	if m.Protocol == "" {
		return fmt.Errorf("missing protocol")
	}
	if m.Nodes <= 0 || m.Blocks <= 0 {
		return fmt.Errorf("bad geometry %dx%d", m.Nodes, m.Blocks)
	}
	n := 0
	if m.MC != nil {
		n++
	}
	if m.Sim != nil {
		n++
	}
	if m.Fuzz != nil {
		n++
	}
	if m.Litmus != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("want exactly one of mc/sim/fuzz/litmus stats, have %d", n)
	}
	if m.Coverage != nil && m.Coverage.Dispatch == nil {
		return fmt.Errorf("coverage block without dispatch set")
	}
	return nil
}

// Shape renders the run shape for messages: "proto 2x1 net=drop=1".
func (m *Manifest) Shape() string {
	s := fmt.Sprintf("%s %dx%d", m.Protocol, m.Nodes, m.Blocks)
	if m.Net != "" {
		s += " net=" + m.Net
	}
	return s
}

// MissingKeys returns the keys present in ref but absent from other,
// sorted — the core of every coverage diff.
func MissingKeys(ref, other map[string]uint64) []string {
	var out []string
	for k := range ref {
		if _, ok := other[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Integration tests driving the command-line tools end to end via the Go
// toolchain. Skipped with -short.
package teapot_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"teapot/internal/manifest"
)

func runTool(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestTeapotcStats(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	out, err := runTool(t, "./cmd/teapotc", "-builtin", "stache", "-emit", "stats")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"protocol Stache", "states:", "suspend sites:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTeapotcEmitsAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	cases := map[string]string{
		"go":     "package proto",
		"murphi": "Murphi specification",
		"dot":    "digraph",
		"ir":     "func ",
		"fmt":    "protocol Stache begin",
	}
	for emit, want := range cases {
		out, err := runTool(t, "./cmd/teapotc", "-builtin", "stache", "-emit", emit)
		if err != nil {
			t.Fatalf("-emit %s: %v\n%s", emit, err, out)
		}
		if !strings.Contains(out, want) {
			t.Errorf("-emit %s missing %q", emit, want)
		}
	}
}

func TestTeapotcCompilesAFile(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	dir := t.TempDir()
	src := `
protocol Mini begin
  state A();
  message M;
end;
state Mini.A() begin
  message M (id : ID; var info : INFO; src : NODE) begin Drop(); end;
end;
`
	path := filepath.Join(dir, "mini.tea")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runTool(t, "./cmd/teapotc", "-home-start", "A", "-cache-start", "A", path)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "protocol Mini") {
		t.Errorf("output:\n%s", out)
	}
}

func TestTeapotcRejectsBadSource(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.tea")
	if err := os.WriteFile(path, []byte("protocol P begin end"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runTool(t, "./cmd/teapotc", path)
	if err == nil {
		t.Fatalf("expected failure, got:\n%s", out)
	}
	if !strings.Contains(out, "teapotc:") {
		t.Errorf("no diagnostic:\n%s", out)
	}
}

func TestVerifyCleanAndBuggy(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	out, err := runTool(t, "./cmd/teapot-verify", "-protocol", "stache", "-reorder", "1")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "verified") {
		t.Errorf("output:\n%s", out)
	}
	out, err = runTool(t, "./cmd/teapot-verify", "-protocol", "stache-buggy")
	if err == nil {
		t.Fatalf("buggy protocol should exit non-zero:\n%s", out)
	}
	if !strings.Contains(out, "VIOLATION") || !strings.Contains(out, "deadlock") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSimTool(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	out, err := runTool(t, "./cmd/teapot-sim", "-workload", "shallow", "-nodes", "8", "-iters", "2", "-engine", "opt")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"execution time:", "faults:", "continuations:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchToolTables(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	out, err := runTool(t, "./cmd/teapot-bench", "-table", "3")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"Table 3", "Stache", "LCM MCC", "verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFuzzTool(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	// A clean protocol runs a short campaign without violations (exit 0).
	out, err := runTool(t, "./cmd/teapot-fuzz", "-proto", "stache", "-schedules", "25", "-seed", "7")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "no violations") {
		t.Errorf("output:\n%s", out)
	}

	// The seeded-bug fixture under a one-drop budget: found, shrunk,
	// written to disk, and the artifact replays to the same failure.
	repro := filepath.Join(t.TempDir(), "repro.json")
	out, err = runTool(t, "./cmd/teapot-fuzz", "-proto", "stache-ft-buggy", "-net", "drop=1",
		"-seed", "2", "-schedules", "100", "-out", repro)
	if err == nil {
		t.Fatalf("seeded bug should exit non-zero:\n%s", out)
	}
	for _, want := range []string{"FAILURE", "coherence violation", "minimal reproducer:", "reproducer replays from disk"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The saved artifact alone reproduces the failure.
	out, err = runTool(t, "./cmd/teapot-fuzz", "-replay", repro)
	if err == nil {
		t.Fatalf("replay of a failing schedule should exit non-zero:\n%s", out)
	}
	if !strings.Contains(out, "reproduced:") || !strings.Contains(out, "coherence violation") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	cases := map[string]string{
		"./examples/quickstart":      "final states:",
		"./examples/custom-protocol": "outcome = true",
		"./examples/verification":    "verified",
		"./examples/lcm-phases":      "LCM",
	}
	for dir, want := range cases {
		out, err := runTool(t, dir)
		if err != nil {
			t.Fatalf("%s: %v\n%s", dir, err, out)
		}
		if !strings.Contains(out, want) {
			t.Errorf("%s output missing %q", dir, want)
		}
	}
}

// TestVerifyJSONManifest: `teapot-verify -json` must write a valid,
// machine-readable run manifest to stdout — the golden schema the
// coverage tooling (teapot-cover, check.sh) keys on.
func TestVerifyJSONManifest(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	out, err := runTool(t, "./cmd/teapot-verify", "-proto", "stache", "-reorder", "1", "-json")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatalf("stdout is not a JSON manifest: %v\n%s", err, out)
	}
	for _, key := range []string{"manifest_version", "tool", "protocol", "nodes", "blocks", "coverage", "mc"} {
		if _, ok := m[key]; !ok {
			t.Errorf("manifest missing key %q", key)
		}
	}
	var mc struct {
		States        int     `json:"states"`
		Transitions   int     `json:"transitions"`
		StatesPerSec  float64 `json:"states_per_sec"`
		PeakFrontier  int     `json:"peak_frontier"`
		SymmetryGroup int     `json:"symmetry_group"`
	}
	if err := json.Unmarshal(m["mc"], &mc); err != nil {
		t.Fatal(err)
	}
	if mc.States == 0 || mc.Transitions == 0 || mc.PeakFrontier == 0 {
		t.Errorf("mc stats not populated: %+v", mc)
	}
	var cov struct {
		Dispatch map[string]uint64 `json:"dispatch"`
	}
	if err := json.Unmarshal(m["coverage"], &cov); err != nil {
		t.Fatal(err)
	}
	if cov.Dispatch["Home_Idle.GET_RO_REQ"] == 0 {
		t.Errorf("coverage lacks the always-exercised pair: %v", cov.Dispatch)
	}

	// A violating run still emits the manifest (with the counterexample and
	// flight-recorder tail inside) and exits 2. Stdout alone must be the
	// manifest — the flight-recorder dump goes to stderr.
	cmd := exec.Command("go", "run", "./cmd/teapot-verify", "-proto", "stache", "-net", "drop=1", "-json")
	cmd.Env = os.Environ()
	stdout, err := cmd.Output()
	if err == nil {
		t.Fatalf("violating -json run should exit non-zero:\n%s", stdout)
	}
	var man map[string]json.RawMessage
	if err := json.Unmarshal(stdout, &man); err != nil {
		t.Fatalf("stdout of a violating run is not a manifest: %v\n%s", err, stdout)
	}
	var stats struct {
		Violation *struct {
			Kind  string            `json:"kind"`
			Steps []json.RawMessage `json:"steps"`
		} `json:"violation"`
	}
	if err := json.Unmarshal(man["mc"], &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Violation == nil || stats.Violation.Kind == "" || len(stats.Violation.Steps) == 0 {
		t.Errorf("violating manifest lacks a counterexample: %s", man["mc"])
	}
	if _, ok := man["flight_recorder"]; !ok {
		t.Error("violating manifest lacks the flight-recorder tail")
	}
}

// TestLitmusGoldenJSON: `teapot-litmus -mode mc -json` is fully
// deterministic — the exhaustive checker enumerates outcome sets and the
// report sorts every list — so the mp-family report is pinned
// byte-for-byte against the committed golden file. A schema or outcome
// change must be deliberate: regenerate with
//
//	go run ./cmd/teapot-litmus -corpus testdata/litmus -only mp -mode mc -json \
//	  2>/dev/null > testdata/golden/teapot-litmus-mp-mc.json
func TestLitmusGoldenJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	cmd := exec.Command("go", "run", "./cmd/teapot-litmus",
		"-corpus", "testdata/litmus", "-only", "mp", "-mode", "mc", "-json")
	cmd.Env = os.Environ()
	stdout, err := cmd.Output()
	if err != nil {
		t.Fatalf("%v\n%s", err, stdout)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden", "teapot-litmus-mp-mc.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout, golden) {
		t.Errorf("report drifted from the golden file (see regeneration note above)\n--- got ---\n%s\n--- want ---\n%s", stdout, golden)
	}

	// The run manifest rides the shared schema: tool litmus, exactly one
	// stats block, aggregate per-corpus accounting. -report requires a
	// single-protocol selection, so narrow to the stache-ft pair
	// (mp-drop-ft, mp-dup-ft).
	report := filepath.Join(t.TempDir(), "litmus-man.json")
	cmd = exec.Command("go", "run", "./cmd/teapot-litmus",
		"-corpus", "testdata/litmus", "-only", "mp-d", "-mode", "mc", "-report", report)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	man, err := manifest.Load(report)
	if err != nil {
		t.Fatal(err)
	}
	if man.Tool != "teapot-litmus" || man.Litmus == nil {
		t.Fatalf("manifest tool/stats = %q/%v", man.Tool, man.Litmus)
	}
	if man.Litmus.Tests != 2 || man.Litmus.Failed != 0 || man.Litmus.MCStates == 0 {
		t.Errorf("litmus stats = %+v", man.Litmus)
	}
	if man.Coverage == nil || len(man.Coverage.Dispatch) == 0 {
		t.Error("litmus manifest lacks dispatch coverage")
	}
}

// TestLitmusFailCorpus: the negative-path corpus entries must FAIL with
// their pinned classes — that is what proves the harness can still see
// seeded bugs.
func TestLitmusFailCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	dir := t.TempDir() // reproducers land here, not in the repo
	cmd := exec.Command("go", "run", "./cmd/teapot-litmus",
		"-corpus", filepath.Join("testdata", "litmus", "fail"), "-mode", "all",
		"-out", filepath.Join(dir, "repro.json"))
	cmd.Dir = "."
	abs, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd.Dir = abs
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("fail corpus ran clean:\n%s", out)
	}
	for _, want := range []string{"swmr", "deadlock", "minimal reproducer:"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("fail-corpus output missing %q:\n%s", want, out)
		}
	}
}

package mc_test

import (
	"reflect"
	"testing"

	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/runtime"
)

// coverageRun explores cfg with a coverage sink attached and returns the
// rendered report plus the checker result.
func coverageRun(t *testing.T, cfg mc.Config, workers int) (*obs.CoverageReport, *mc.Result) {
	t.Helper()
	cov := obs.NewCoverage()
	cfg.Coverage = cov
	cfg.Workers = workers
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatalf("mc (workers=%d): %v", workers, err)
	}
	return cov.Report(runtime.ObsNames(cfg.Proto)), res
}

// TestCoverageWorkerEquivalence: coverage accumulates per worker and merges
// at layer barriers; the totals (not just the sets) must be identical for
// any worker count, on clean and fault-budgeted machines alike.
func TestCoverageWorkerEquivalence(t *testing.T) {
	cfgs := map[string]func() mc.Config{
		"stache-reorder": func() mc.Config { return stacheConfig(t, 2, 1, 1) },
		"stache-ft-faults": func() mc.Config {
			return stacheFTConfig(t, 2, 1, netmodel.Model{MaxDrops: 1, MaxDups: 1})
		},
	}
	for name, mk := range cfgs {
		t.Run(name, func(t *testing.T) {
			ref, refRes := coverageRun(t, mk(), 1)
			if len(ref.Dispatch) == 0 || len(ref.Transitions) == 0 {
				t.Fatalf("empty coverage from an exhaustive run: %+v", ref)
			}
			for _, workers := range []int{2, 4} {
				got, gotRes := coverageRun(t, mk(), workers)
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("workers=%d: coverage differs from workers=1:\n%+v\nvs\n%+v",
						workers, got, ref)
				}
				if gotRes.States != refRes.States || gotRes.Transitions != refRes.Transitions {
					t.Errorf("workers=%d: result drifted: %d/%d states, want %d/%d",
						workers, gotRes.States, gotRes.Transitions, refRes.States, refRes.Transitions)
				}
			}
		})
	}
}

// TestCoverageDoesNotPerturbExploration: the same run with and without a
// coverage sink must visit the identical state space.
func TestCoverageDoesNotPerturbExploration(t *testing.T) {
	plain, err := mc.Check(stacheConfig(t, 2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, covered := coverageRun(t, stacheConfig(t, 2, 1, 1), 1)
	if plain.States != covered.States || plain.Transitions != covered.Transitions ||
		plain.MaxDepth != covered.MaxDepth {
		t.Errorf("coverage changed exploration: %d/%d/%d vs %d/%d/%d",
			covered.States, covered.Transitions, covered.MaxDepth,
			plain.States, plain.Transitions, plain.MaxDepth)
	}
}

// TestCoverageFaultActions: a budgeted run must record the drop and dup
// actions it explored, keyed by message tag.
func TestCoverageFaultActions(t *testing.T) {
	rep, _ := coverageRun(t, stacheFTConfig(t, 2, 1, netmodel.Model{MaxDrops: 1, MaxDups: 1}), 1)
	var drops, dups uint64
	for k, n := range rep.Faults {
		switch {
		case len(k) > 5 && k[:5] == "drop:":
			drops += n
		case len(k) > 4 && k[:4] == "dup:":
			dups += n
		}
	}
	if drops == 0 || dups == 0 {
		t.Errorf("fault budget spent but not recorded: faults=%v", rep.Faults)
	}
}

// TestCoverageViolationRun: coverage accumulates up to (and including) the
// layer where a violation is found; the buggy protocol must still produce
// a usable report.
func TestCoverageViolationRun(t *testing.T) {
	cfg := stacheConfig(t, 2, 1, 0)
	cfg.Net = netmodel.Model{MaxDrops: 1} // base stache stalls under a drop
	cov := obs.NewCoverage()
	cfg.Coverage = cov
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected the lost-message stall")
	}
	if cov.DispatchPairs() == 0 {
		t.Error("no coverage accumulated before the violation")
	}
}

// TestReplayStepsObsParity: replaying a counterexample with Config.Obs
// attached must emit the handler and fault events of the violating
// schedule — including the Drop event for the dropped message.
func TestReplayStepsObsParity(t *testing.T) {
	cfg := stacheConfig(t, 2, 1, 0)
	cfg.Net = netmodel.Model{MaxDrops: 1}
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || len(res.Violation.Steps) == 0 {
		t.Fatal("need a counterexample with steps")
	}
	col := obs.NewCollector(0)
	rcfg := stacheConfig(t, 2, 1, 0)
	rcfg.Net = netmodel.Model{MaxDrops: 1}
	rcfg.Obs = col
	if err := mc.ReplaySteps(rcfg, res.Violation.Steps, nil); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if col.Count(obs.KindDrop) == 0 {
		t.Error("replay emitted no Drop event for a drop counterexample")
	}
	if col.Count(obs.KindHandlerEnter) == 0 {
		t.Error("replay emitted no handler events")
	}
}

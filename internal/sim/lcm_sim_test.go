package sim_test

import (
	"testing"

	"teapot/internal/protocols/lcm"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

func runLCM(t *testing.T, w *sim.Workload, nodes int, v lcm.Variant, optimize bool) *tempest.Stats {
	t.Helper()
	w.Trace.Reset()
	p := lcm.MustCompile(v, optimize).Protocol
	stats, err := sim.Run(sim.Config{
		Nodes:  nodes,
		Blocks: w.Blocks,
		Cost:   tempest.DefaultCost,
		Tags:   tempest.ResolveTags(p),
		MakeEngine: func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(p, nodes, w.Blocks, m, lcm.MustSupport(p, nodes))
		},
		Program: w.Trace,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", w.Name, v, err)
	}
	return stats
}

func TestLCMWorkloads(t *testing.T) {
	const nodes = 8
	for _, w := range sim.Table2Workloads(nodes, 3) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			s := runLCM(t, w, nodes, lcm.Base, true)
			t.Logf("%s: cycles=%d faults=%d msgs=%d", w.Name, s.Cycles, s.Faults, s.Messages)
		})
	}
}

func TestLCMVariantsRun(t *testing.T) {
	const nodes = 4
	for _, v := range []lcm.Variant{lcm.Base, lcm.Update, lcm.MCC, lcm.Both} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			w := sim.Stencil(sim.WorkloadSpec{Nodes: nodes, Iters: 2, Seed: 9})
			s := runLCM(t, w, nodes, v, true)
			t.Logf("%s: cycles=%d msgs=%d", v, s.Cycles, s.Messages)
		})
	}
}

func runLCMHW(t *testing.T, w *sim.Workload, nodes int, cost tempest.CostModel) *tempest.Stats {
	t.Helper()
	w.Trace.Reset()
	p := lcm.MustCompile(lcm.Base, true).Protocol
	stats, err := sim.Run(sim.Config{
		Nodes:  nodes,
		Blocks: w.Blocks,
		Cost:   cost,
		Tags:   tempest.ResolveTags(p),
		MakeEngine: func(m runtime.Machine) tempest.Engine {
			return lcm.NewHW(p, nodes, w.Blocks, m)
		},
		Program: w.Trace,
	})
	if err != nil {
		t.Fatalf("%s/hw: %v", w.Name, err)
	}
	return stats
}

func runLCMCost(t *testing.T, w *sim.Workload, nodes int, v lcm.Variant, optimize bool, cost tempest.CostModel) *tempest.Stats {
	t.Helper()
	w.Trace.Reset()
	p := lcm.MustCompile(v, optimize).Protocol
	stats, err := sim.Run(sim.Config{
		Nodes:  nodes,
		Blocks: w.Blocks,
		Cost:   cost,
		Tags:   tempest.ResolveTags(p),
		MakeEngine: func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(p, nodes, w.Blocks, m, lcm.MustSupport(p, nodes))
		},
		Program: w.Trace,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", w.Name, v, err)
	}
	return stats
}

var zeroCost = tempest.CostModel{MemAccess: 1, NetLatency: 120}

// TestLCMHandwrittenEquivalence: the hand-written LCM replays identical
// traces with identical wire behavior under a protocol-cost-free model.
func TestLCMHandwrittenEquivalence(t *testing.T) {
	const nodes = 8
	for _, w := range sim.Table2Workloads(nodes, 2) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			hw := runLCMHW(t, w, nodes, zeroCost)
			tp := runLCMCost(t, w, nodes, lcm.Base, true, zeroCost)
			if hw.Faults != tp.Faults {
				t.Errorf("faults differ: hw=%d teapot=%d", hw.Faults, tp.Faults)
			}
			if hw.Messages != tp.Messages {
				t.Errorf("messages differ: hw=%d teapot=%d", hw.Messages, tp.Messages)
			}
		})
	}
}

// TestLCMOverheadOrdering checks the Table 2 shape.
func TestLCMOverheadOrdering(t *testing.T) {
	const nodes = 8
	for _, w := range sim.Table2Workloads(nodes, 3) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			hw := runLCMHW(t, w, nodes, tempest.DefaultCost)
			opt := runLCMCost(t, w, nodes, lcm.Base, true, tempest.DefaultCost)
			unopt := runLCMCost(t, w, nodes, lcm.Base, false, tempest.DefaultCost)
			if hw.Cycles > opt.Cycles {
				t.Errorf("hand-written (%d) slower than optimized (%d)", hw.Cycles, opt.Cycles)
			}
			if opt.Cycles > unopt.Cycles {
				t.Errorf("optimized (%d) slower than unoptimized (%d)", opt.Cycles, unopt.Cycles)
			}
			t.Logf("%s: C=%d opt=%d (+%.1f%%) unopt=%d (+%.1f%%)", w.Name,
				hw.Cycles,
				opt.Cycles, 100*float64(opt.Cycles-hw.Cycles)/float64(hw.Cycles),
				unopt.Cycles, 100*float64(unopt.Cycles-hw.Cycles)/float64(hw.Cycles))
		})
	}
}

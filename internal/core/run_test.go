package core_test

import (
	"testing"

	"teapot/internal/core"
	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/protocols"
	"teapot/internal/tempest"
)

// stubProgram is an identity-comparable workload stand-in.
type stubProgram struct{}

func (*stubProgram) Next(node int) (tempest.Op, bool) { return tempest.Op{}, false }

// specFixture builds a fully-populated RunSpec over a real compiled
// protocol, with every lowering-relevant knob set to a distinctive value.
func specFixture(t *testing.T) core.RunSpec {
	t.Helper()
	spec, err := protocols.Spec("stache-ft", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec.Net = netmodel.Model{Reorder: 2, MaxDrops: 3, MaxDups: 4, MaxCorrupts: 5, Delay: 6, Rate: 0.5}
	spec.HomeOf = func(id int) int { return (id + 1) % 3 }
	spec.Workers = 7
	spec.MaxStates = 123456
	spec.Progress = func(mc.ProgressInfo) {}
	spec.Seed = 42
	spec.Program = &stubProgram{}
	spec.Cost = tempest.CostModel{Dispatch: 99}
	spec.Obs = obs.NewCollector(0)
	spec.MaxEvents = 777
	return spec
}

// TestMCConfigLowering: every checker-relevant RunSpec field must survive
// the lowering, including the full set of -net fault budgets.
func TestMCConfigLowering(t *testing.T) {
	spec := specFixture(t)
	cfg := spec.MCConfig()

	if cfg.Proto != spec.Proto || cfg.Support == nil || cfg.Events == nil {
		t.Error("protocol wiring not threaded")
	}
	if cfg.Nodes != 3 || cfg.Blocks != 2 {
		t.Errorf("machine shape: %d nodes, %d blocks", cfg.Nodes, cfg.Blocks)
	}
	if cfg.Net != spec.Net {
		t.Errorf("net model: %+v, want %+v", cfg.Net, spec.Net)
	}
	if cfg.Workers != 7 || cfg.MaxStates != 123456 {
		t.Errorf("checker knobs: workers %d, max-states %d", cfg.Workers, cfg.MaxStates)
	}
	if !cfg.CheckCoherence {
		t.Error("CheckCoherence dropped")
	}
	if cfg.Progress == nil {
		t.Error("Progress dropped")
	}
	if cfg.HomeOf == nil || cfg.HomeOf(0) != 1 {
		t.Error("HomeOf not threaded")
	}
}

// TestSimConfigLowering: every simulator-relevant RunSpec field must
// survive the lowering — Net budgets, seed resolution, cost model, event
// budget, observability sink, workload, and engine wiring.
func TestSimConfigLowering(t *testing.T) {
	spec := specFixture(t)
	cfg := spec.SimConfig()

	if cfg.Nodes != 3 || cfg.Blocks != 2 {
		t.Errorf("machine shape: %d nodes, %d blocks", cfg.Nodes, cfg.Blocks)
	}
	if cfg.Net != spec.Net {
		t.Errorf("net model: %+v, want %+v", cfg.Net, spec.Net)
	}
	if cfg.Seed != 42 {
		t.Errorf("seed %d, want the verbatim nonzero seed 42", cfg.Seed)
	}
	if cfg.Cost.Dispatch != 99 {
		t.Errorf("cost model not threaded: %+v", cfg.Cost)
	}
	if cfg.MaxEvents != 777 {
		t.Errorf("event budget %d, want 777", cfg.MaxEvents)
	}
	if cfg.Obs != spec.Obs {
		t.Error("observability sink dropped")
	}
	if cfg.Program != spec.Program {
		t.Error("program not threaded")
	}
	if cfg.HomeOf == nil || cfg.HomeOf(0) != 1 {
		t.Error("HomeOf not threaded")
	}
	if cfg.MakeEngine == nil {
		t.Fatal("MakeEngine missing")
	}
	if cfg.Tags.ReadFault < 0 && cfg.Tags.WriteFault < 0 {
		t.Error("event tags unresolved")
	}

	// The zero Cost falls back to the default cost model.
	spec.Cost = tempest.CostModel{}
	if got := spec.SimConfig().Cost; got != tempest.DefaultCost {
		t.Errorf("zero cost lowered to %+v, want tempest.DefaultCost", got)
	}
}

// TestEffectiveSeed pins the -seed 0 contract: nonzero seeds pass through
// verbatim; seed 0 derives a stable nonzero seed from the run shape, and
// different shapes give different seeds.
func TestEffectiveSeed(t *testing.T) {
	spec := specFixture(t)
	if got := spec.EffectiveSeed(); got != 42 {
		t.Errorf("nonzero seed rewritten: %d", got)
	}

	spec.Seed = 0
	derived := spec.EffectiveSeed()
	if derived == 0 {
		t.Fatal("derived seed is 0 (reserved for 'derive')")
	}
	if derived != spec.EffectiveSeed() {
		t.Error("derivation not stable")
	}

	other := spec
	other.Nodes = 4
	if other.EffectiveSeed() == derived {
		t.Error("different machine size derived the same seed")
	}
	other = spec
	other.Net = netmodel.Model{MaxDrops: 1}
	if other.EffectiveSeed() == derived {
		t.Error("different net model derived the same seed")
	}

	// SimConfig resolves the seed, so a seed-0 spec lowers deterministically.
	if got := spec.SimConfig().Seed; got != derived {
		t.Errorf("SimConfig seed %d, want derived %d", got, derived)
	}
}

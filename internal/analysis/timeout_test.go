package analysis_test

import (
	"strings"
	"testing"

	"teapot/internal/source"
)

// A protocol declaring TIMEOUT must give every reachable transient state an
// explicit TIMEOUT handler; B has one, D does not.
func TestTimeoutUncoveredTransient(t *testing.T) {
	rep := vet(t, `
protocol P begin
  state A(); state B(C : CONT) transient; state D(C : CONT) transient;
  message GO; message GO2; message OK; message TIMEOUT;
end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Suspend(L, B{L}); end;
  message GO2 (id : ID; var info : INFO; src : NODE) begin Suspend(L, D{L}); end;
`+defaultDrop+`end;
state P.B(C : CONT) begin
  message OK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message TIMEOUT (id : ID; var info : INFO; src : NODE) begin Send(src, GO, id); end;
`+defaultDrop+`end;
state P.D(C : CONT) begin
  message OK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
`+defaultDrop+`end;
`)
	ds := rep.ByCheck("timeout")
	if len(ds) != 1 {
		t.Fatalf("timeout findings = %d, report:\n%s", len(ds), rep)
	}
	if d := ds[0]; d.Severity != source.SevWarning || !strings.Contains(d.Msg, "D") {
		t.Errorf("finding = %v", d)
	}
}

// Without a TIMEOUT declaration the pass is advisory: one info finding
// counting the transient states, never a warning.
func TestTimeoutAdvisoryWithoutDeclaration(t *testing.T) {
	rep := vet(t, `
protocol P begin
  state A(); state B(C : CONT) transient;
  message GO; message OK;
end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Suspend(L, B{L}); end;
`+defaultDrop+`end;
state P.B(C : CONT) begin
  message OK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
`+defaultDrop+`end;
`)
	ds := rep.ByCheck("timeout")
	if len(ds) != 1 {
		t.Fatalf("timeout findings = %d, report:\n%s", len(ds), rep)
	}
	if d := ds[0]; d.Severity != source.SevInfo || !strings.Contains(d.Msg, "1 transient state") {
		t.Errorf("finding = %v", d)
	}
	if len(rep.Actionable()) != 0 {
		t.Errorf("advisory finding must not be actionable, report:\n%s", rep)
	}
}

// A protocol with no transient states has nothing to time out: no finding
// either way.
func TestTimeoutNoTransientStates(t *testing.T) {
	rep := vet(t, `
protocol P begin state A(); message GO; end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Drop(); end;
`+defaultDrop+`end;
`)
	if ds := rep.ByCheck("timeout"); len(ds) != 0 {
		t.Fatalf("timeout findings = %v, report:\n%s", ds, rep)
	}
}

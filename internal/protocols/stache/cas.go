package stache

import (
	"strings"

	"teapot/internal/core"
	"teapot/internal/runtime"
	"teapot/internal/vm"
)

// Compare&Swap extension (§3, Figure 6). The paper uses it to show how
// continuations simplify adding a primitive that must execute at the home
// node once the block becomes Idle: "The state machine-based
// implementation needs to test for this condition at 14 different places";
// with Teapot each home state forces the transition with a subroutine-like
// mechanism, and a CNS_REQ arriving in any other state is queued
// automatically.

// casDecls extends the protocol declaration block.
const casDecls = `
  state Cache_AwaitCNS(C : CONT) transient;
  message CAS_EV;
  message CNS_REQ;
  message CNS_RESP;
`

// casModule declares the support routine executing the swap on the home's
// word.
const casModule = `
module CASSupport begin
  function CASApply(var info : INFO; old : int; new : int) : bool;
end;
`

// Home-side handlers (Figure 6's shape: ReadShared and Exclusive force the
// transition to Idle before performing the operation).
const casHomeIdle = `
  message CNS_REQ (id : ID; var info : INFO; src : NODE; old : int; new : int)
  var ok : bool;
  begin
    ok := CASApply(info, old, new);
    Send(src, CNS_RESP, id, ok);
  end;
`

const casHomeRS = `
  -- Figure 6: invalidate outstanding copies, complete the transition to
  -- Idle, then perform the compare-and-swap.
  message CNS_REQ (id : ID; var info : INFO; src : NODE; old : int; new : int)
  var pending : int; ok : bool;
  begin
    pending := InvalidateSharers(info, MyNode(), id);
    while (pending > 0) do
      Suspend(L, Home_AwaitInvAcks{L});
      pending := pending - 1;
    end;
    ClearSharers(info);
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_Idle{});
    ok := CASApply(info, old, new);
    Send(src, CNS_RESP, id, ok);
  end;
`

const casHomeExcl = `
  message CNS_REQ (id : ID; var info : INFO; src : NODE; old : int; new : int)
  var ok : bool;
  begin
    Send(owner, PUT_DATA_REQ, id);
    Suspend(L, Home_AwaitPutData{L});
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_Idle{});
    ok := CASApply(info, old, new);
    Send(src, CNS_RESP, id, ok);
  end;
`

// Cache-side: issue the operation and wait for the outcome.
const casIssue = `
  -- By the time the outcome arrives, the home has forced the block Idle,
  -- which invalidated any copy we held: resume into Cache_Inv.
  message CAS_EV (id : ID; var info : INFO; src : NODE; old : int; new : int)
  begin
    Send(HomeNode(id), CNS_REQ, id, old, new);
    Suspend(L, Cache_AwaitCNS{L});
    SetState(info, Cache_Inv{});
    WakeUp(id);
  end;
`

const casAwaitState = `
state Stache.Cache_AwaitCNS(C : CONT)
begin
  message CNS_RESP (id : ID; var info : INFO; src : NODE; ok : bool)
  begin
    SetCNSResult(info, ok);
    Resume(C);
  end;

  -- The home may reclaim our copy while the operation is pending.
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
    AccessChange(id, Blk_Invalidate);
  end;

  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_DATA_RESP, id);
    AccessChange(id, Blk_Invalidate);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;
`

const casResultModule = `
module CASResult begin
  procedure SetCNSResult(var info : INFO; ok : bool);
end;
`

// CASSource is Stache extended with the Compare&Swap primitive. Note the
// paper's count: the hand-written version needs pending-operation tests at
// 14 places; here the extension is three home handlers, one issue handler
// per stable cache state, and one subroutine state.
var CASSource = func() string {
	src := Source
	src = strings.Replace(src, "  message EVICT_RO_ACK;\nend;", "  message EVICT_RO_ACK;\n"+casDecls+"end;", 1)
	insert := func(stateMarker, handlers string) {
		at := strings.Index(src, stateMarker)
		if at < 0 {
			panic("cas: marker not found: " + stateMarker)
		}
		j := strings.Index(src[at:], "begin")
		pos := at + j + len("begin")
		src = src[:pos] + "\n" + handlers + src[pos:]
	}
	insert("state Stache.Home_Idle(", casHomeIdle)
	insert("state Stache.Home_RS(", casHomeRS)
	insert("state Stache.Home_Excl(", casHomeExcl)
	insert("state Stache.Cache_Inv(", casIssue)
	insert("state Stache.Cache_RO(", casIssue)
	insert("state Stache.Cache_RW(", casIssue)
	return casModule + casResultModule + src + casAwaitState
}()

// CompileCAS compiles the Compare&Swap extension.
func CompileCAS(optimize bool) (*core.Artifacts, error) {
	return core.Compile(core.Config{
		Name:       "stache-cas.tea",
		Source:     CASSource,
		Optimize:   optimize,
		HomeStart:  "Home_Idle",
		CacheStart: "Cache_Inv",
	})
}

// CASSupport wraps the Stache support module with the word storage the
// compare-and-swap operates on and per-node result recording.
type CASSupport struct {
	*Support
	Words   map[int]int64 // block -> current word value at its home
	Results map[[2]int]bool
}

// NewCASSupport builds the extended support module.
func NewCASSupport(p *runtime.Protocol) (*CASSupport, error) {
	s, err := NewSupport(p)
	if err != nil {
		return nil, err
	}
	return &CASSupport{
		Support: s,
		Words:   make(map[int]int64),
		Results: make(map[[2]int]bool),
	}, nil
}

// Call implements runtime.Support.
func (s *CASSupport) Call(ctx *runtime.Ctx, name string, args []*vm.Value) (vm.Value, error) {
	switch name {
	case "CASApply":
		old, new := args[1].Int, args[2].Int
		blk := ctx.Block.ID
		if s.Words[blk] == old {
			s.Words[blk] = new
			return vm.BoolVal(true), nil
		}
		return vm.BoolVal(false), nil
	case "SetCNSResult":
		s.Results[[2]int{ctx.Engine.Node, ctx.Block.ID}] = args[1].Bool()
		return vm.Value{}, nil
	}
	return s.Support.Call(ctx, name, args)
}

package tempest_test

import (
	"testing"

	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// fixedProgram feeds predetermined per-node op slices.
type fixedProgram struct {
	ops [][]tempest.Op
	pos []int
}

func newProgram(ops ...[]tempest.Op) *fixedProgram {
	return &fixedProgram{ops: ops, pos: make([]int, len(ops))}
}

func (p *fixedProgram) Next(node int) (tempest.Op, bool) {
	if p.pos[node] >= len(p.ops[node]) {
		return tempest.Op{}, false
	}
	op := p.ops[node][p.pos[node]]
	p.pos[node]++
	return op, true
}

func stacheMachine(t *testing.T, nodes, blocks int, prog tempest.Program, cost tempest.CostModel) (*tempest.Machine, *tempest.TeapotEngine) {
	t.Helper()
	p := stache.MustCompile(true).Protocol
	m := tempest.New(tempest.Config{
		Nodes: nodes, Blocks: blocks,
		Cost: cost, Tags: tempest.ResolveTags(p),
		Program: prog,
	})
	te := tempest.NewTeapotEngine(p, nodes, blocks, m, stache.MustSupport(p))
	m.SetEngine(te)
	return m, te
}

func compute(c int64) tempest.Op { return tempest.Op{Kind: tempest.OpCompute, Cycles: c} }
func read(b int) tempest.Op      { return tempest.Op{Kind: tempest.OpRead, Addr: b} }
func write(b int) tempest.Op     { return tempest.Op{Kind: tempest.OpWrite, Addr: b} }
func barrierOp() tempest.Op      { return tempest.Op{Kind: tempest.OpBarrier} }

func TestComputeOnlyTiming(t *testing.T) {
	m, _ := stacheMachine(t, 2, 1,
		newProgram(
			[]tempest.Op{compute(100), compute(50)},
			[]tempest.Op{compute(30)},
		), tempest.DefaultCost)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 150 {
		t.Errorf("cycles = %d, want 150 (max node time)", stats.Cycles)
	}
	if stats.NodeCycles[0] != 150 || stats.NodeCycles[1] != 30 {
		t.Errorf("node cycles = %v", stats.NodeCycles)
	}
	if stats.Faults != 0 || stats.Messages != 0 {
		t.Errorf("unexpected protocol activity: %+v", stats)
	}
}

func TestLocalAccessIsCheap(t *testing.T) {
	// Node 0 is home of block 0: its accesses hit without faults.
	m, _ := stacheMachine(t, 2, 1,
		newProgram(
			[]tempest.Op{read(0), write(0), read(0)},
			nil,
		), tempest.DefaultCost)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Faults != 0 {
		t.Errorf("faults = %d, want 0", stats.Faults)
	}
	if stats.Accesses != 3 {
		t.Errorf("accesses = %d, want 3", stats.Accesses)
	}
	if stats.Cycles != 3*tempest.DefaultCost.MemAccess {
		t.Errorf("cycles = %d", stats.Cycles)
	}
}

func TestRemoteReadFaultsOnceThenHits(t *testing.T) {
	m, _ := stacheMachine(t, 2, 1,
		newProgram(
			nil,
			[]tempest.Op{read(0), read(0), read(0)},
		), tempest.DefaultCost)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Faults != 1 {
		t.Errorf("faults = %d, want 1 (subsequent reads hit)", stats.Faults)
	}
	if stats.Messages != 2 { // GET_RO_REQ + GET_RO_RESP
		t.Errorf("messages = %d, want 2", stats.Messages)
	}
	// The fault costs at least trap + 2 network hops.
	min := tempest.DefaultCost.FaultTrap + 2*tempest.DefaultCost.NetLatency
	if stats.Cycles < min {
		t.Errorf("cycles = %d, want >= %d", stats.Cycles, min)
	}
	if stats.FaultTime <= 0 {
		t.Errorf("fault time = %d", stats.FaultTime)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	m, _ := stacheMachine(t, 3, 1,
		newProgram(
			[]tempest.Op{compute(500), barrierOp(), compute(10)},
			[]tempest.Op{compute(10), barrierOp(), compute(10)},
			[]tempest.Op{barrierOp(), compute(10)},
		), tempest.DefaultCost)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Everyone leaves the barrier at 500 and finishes at 510.
	for n, c := range stats.NodeCycles {
		if c != 510 {
			t.Errorf("node %d = %d cycles, want 510", n, c)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	// A node that reaches a barrier no one else ever reaches: the run
	// fails (node never finished) rather than hanging.
	m, _ := stacheMachine(t, 2, 1,
		newProgram(
			[]tempest.Op{barrierOp()},
			nil,
		), tempest.DefaultCost)
	if _, err := m.Run(); err == nil {
		t.Fatal("expected an error for the unmatched barrier")
	}
}

func TestWriteInvalidatesAndFaultTimeAccrues(t *testing.T) {
	m, _ := stacheMachine(t, 3, 1,
		newProgram(
			nil,
			[]tempest.Op{read(0), compute(10)},
			[]tempest.Op{compute(1000), write(0), compute(10)},
		), tempest.DefaultCost)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Faults != 2 { // node1 read, node2 write
		t.Errorf("faults = %d, want 2", stats.Faults)
	}
	if stats.Protocol.Handlers == 0 || stats.ProtoTime == 0 {
		t.Errorf("protocol work not recorded: %+v", stats.Protocol)
	}
}

func TestCostModelCycles(t *testing.T) {
	cm := tempest.CostModel{
		Dispatch: 10, PerInstr: 2, HeapCont: 50, StaticCont: 5,
		Resume: 20, ConstResume: 3, QueueRecord: 30, SendOverhead: 7,
		SupportCall: 4,
	}
	d := tempest.CostCounters{
		Handlers: 2, Instrs: 10, HeapConts: 1, StaticConts: 2,
		Resumes: 1, ConstResumes: 3, QueueRecords: 1, Sends: 4, Calls: 5,
	}
	want := int64(2*10 + 10*2 + 1*50 + 2*5 + 1*20 + 3*3 + 1*30 + 4*7 + 5*4)
	if got := cm.Cycles(d); got != want {
		t.Errorf("Cycles = %d, want %d", got, want)
	}
	// Sub/Add are inverses.
	e := d.Add(d).Sub(d)
	if e != d {
		t.Errorf("Add/Sub not inverse: %+v", e)
	}
}

func TestResolveTags(t *testing.T) {
	p := stache.MustCompile(true).Protocol
	tags := tempest.ResolveTags(p)
	if tags.ReadFault < 0 || tags.WriteFault < 0 || tags.WriteRO < 0 || tags.Evict < 0 {
		t.Errorf("stache tags = %+v", tags)
	}
	if tags.Sync >= 0 || tags.BeginPhase >= 0 {
		t.Errorf("stache should not resolve SYNC/phase tags: %+v", tags)
	}
}

func TestEvictOpOnlyFiresOnRemoteReadOnly(t *testing.T) {
	evict := func(b int) tempest.Op { return tempest.Op{Kind: tempest.OpEvict, Addr: b} }
	m, te := stacheMachine(t, 2, 1,
		newProgram(
			[]tempest.Op{evict(0)}, // home: must be a no-op
			[]tempest.Op{read(0), evict(0)},
		), tempest.DefaultCost)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The remote eviction generates the handshake (EVICT_RO_REQ/ACK) on
	// top of the fill pair.
	if stats.Messages != 4 {
		t.Errorf("messages = %d, want 4", stats.Messages)
	}
	if got := te.Engines[1].Blocks[0].StateName(te.Engines[1].Proto); got != "Cache_Inv" {
		t.Errorf("node1 block state = %s, want Cache_Inv", got)
	}
}

// TestZeroCostModelStillRuns guards the wire-equivalence configuration.
func TestZeroCostModelStillRuns(t *testing.T) {
	w := sim.Gauss(sim.WorkloadSpec{Nodes: 4, Iters: 1, Seed: 5})
	p := stache.MustCompile(true).Protocol
	stats, err := sim.Run(sim.Config{
		Nodes: 4, Blocks: w.Blocks,
		Cost: tempest.CostModel{MemAccess: 1, NetLatency: 1},
		Tags: tempest.ResolveTags(p),
		MakeEngine: func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(p, 4, w.Blocks, m, stache.MustSupport(p))
		},
		Program: w.Trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ProtoTime != 0 {
		t.Errorf("zero-cost model charged %d protocol cycles", stats.ProtoTime)
	}
}

var _ = sema.AccReadOnly // keep sema imported for future assertions

package bench_test

import (
	"strings"
	"testing"

	"teapot/internal/bench"
)

func TestTable1Shape(t *testing.T) {
	rows, err := bench.Table1(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OverheadOpt() < 0 || r.OverheadOpt() > r.OverheadUnopt()+0.01 {
			t.Errorf("%s: overheads out of order: opt %.1f%% unopt %.1f%%",
				r.Benchmark, r.OverheadOpt(), r.OverheadUnopt())
		}
		if r.OverheadUnopt() > 30 {
			t.Errorf("%s: unopt overhead %.1f%% implausible", r.Benchmark, r.OverheadUnopt())
		}
		if r.AllocsOpt >= r.AllocsUnopt {
			t.Errorf("%s: opt allocs %d not below unopt %d", r.Benchmark, r.AllocsOpt, r.AllocsUnopt)
		}
	}
	t.Logf("\n%s", bench.FormatPerf("Table 1", rows))
}

func TestTable2Shape(t *testing.T) {
	rows, err := bench.Table2(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OverheadOpt() > r.OverheadUnopt()+0.01 {
			t.Errorf("%s: opt slower than unopt", r.Benchmark)
		}
	}
	t.Logf("\n%s", bench.FormatPerf("Table 2", rows))
}

func TestTable3AllVerified(t *testing.T) {
	rows, err := bench.Table3(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Violation != "" {
			t.Errorf("%s: %s", r.Protocol, r.Violation)
		}
		if r.States == 0 {
			t.Errorf("%s: no states explored", r.Protocol)
		}
		if r.Workers < 1 {
			t.Errorf("%s: workers = %d", r.Protocol, r.Workers)
		}
		if r.VisitedBytes <= 0 {
			t.Errorf("%s: visited bytes = %d", r.Protocol, r.VisitedBytes)
		}
	}
	t.Logf("\n%s", bench.FormatVerify(rows))
}

func TestMCBenchRows(t *testing.T) {
	rows, err := bench.MCBench([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Workers != 1 {
			t.Errorf("%s: workers = %d, want 1", r.Protocol, r.Workers)
		}
		if r.States == 0 || r.StatesPerSec <= 0 || r.VisitedBytesState <= 0 {
			t.Errorf("%s: degenerate throughput row: %+v", r.Protocol, r)
		}
	}
}

func TestBugHunt(t *testing.T) {
	res, err := bench.BugHunt()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Kind != "deadlock" {
		t.Fatalf("seeded bug not found: %v", res.Violation)
	}
}

func TestFigures(t *testing.T) {
	figs := bench.Figures()
	if len(figs) != 4 {
		t.Fatalf("figures = %d", len(figs))
	}
	if figs[0].States != 3 || figs[1].States != 3 {
		t.Errorf("idealized machines: %d / %d states, want 3 / 3",
			figs[0].States, figs[1].States)
	}
	if figs[2].States <= figs[1].States {
		t.Errorf("figure 4 (%d states) should exceed figure 2 (%d)",
			figs[2].States, figs[1].States)
	}
	for _, f := range figs {
		if !strings.Contains(f.DOT, "digraph") {
			t.Errorf("%s: bad DOT", f.Figure)
		}
	}
}

func TestLinesOfCode(t *testing.T) {
	rows := bench.LinesOfCode(0, 0)
	for _, r := range rows {
		if r.Generated <= r.Teapot {
			t.Errorf("%s: generated (%d) should exceed Teapot source (%d)",
				r.Protocol, r.Generated, r.Teapot)
		}
		t.Logf("%s: %d Teapot -> %d generated Go", r.Protocol, r.Teapot, r.Generated)
	}
}

func TestArtifactsCompile(t *testing.T) {
	arts := bench.Artifacts()
	if len(arts) != 8 {
		t.Errorf("artifacts = %d", len(arts))
	}
}

// TestProducerConsumerComparison reproduces §1's motivation: on the
// broadcast-heavy gauss pattern the write-update protocol needs fewer
// messages and faults than invalidation.
func TestProducerConsumerComparison(t *testing.T) {
	rows, err := bench.ProducerConsumer(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	st, up := rows[0], rows[1]
	if up.Faults >= st.Faults {
		t.Errorf("update faults (%d) should be below invalidation's (%d)", up.Faults, st.Faults)
	}
	t.Logf("%-22s cycles=%-8d faults=%-5d messages=%d", st.Protocol, st.Cycles, st.Faults, st.Messages)
	t.Logf("%-22s cycles=%-8d faults=%-5d messages=%d", up.Protocol, up.Cycles, up.Faults, up.Messages)
}

func TestReorderSweep(t *testing.T) {
	rows, err := bench.ReorderSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Violation != "" {
			t.Errorf("reorder=%d: %s", r.Reorder, r.Violation)
		}
		if i > 0 && r.States < rows[i-1].States {
			t.Errorf("state count should not shrink with more reordering: %d -> %d",
				rows[i-1].States, r.States)
		}
	}
}

// TestCoverageBench: the coverage-cost series must produce a row per
// substrate shape, with a nonzero unit volume and a nonempty dispatch set
// on every row — an empty covered run would make the committed overhead
// numbers meaningless.
func TestCoverageBench(t *testing.T) {
	rows, err := bench.CoverageBench(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sims, mcs int
	for _, r := range rows {
		switch r.Kind {
		case "sim":
			sims++
		case "mc":
			mcs++
		default:
			t.Errorf("unknown row kind %q", r.Kind)
		}
		if r.Units == 0 {
			t.Errorf("%s %s: covered run processed no units", r.Kind, r.Name)
		}
		if r.DispatchPairs == 0 {
			t.Errorf("%s %s: no dispatch coverage accumulated", r.Kind, r.Name)
		}
	}
	if sims == 0 || mcs == 0 {
		t.Errorf("want rows from both substrates, got %d sim / %d mc", sims, mcs)
	}
}

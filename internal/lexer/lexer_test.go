package lexer

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"teapot/internal/source"
	"teapot/internal/token"
)

func scan(t *testing.T, src string) []Token {
	t.Helper()
	var errs source.ErrorList
	toks := ScanAll(source.NewFile("test.tea", src), &errs)
	if err := errs.Err(); err != nil {
		t.Fatalf("scan %q: %v", src, err)
	}
	return toks
}

func kinds(toks []Token) []token.Kind {
	var ks []token.Kind
	for _, t := range toks {
		ks = append(ks, t.Kind)
	}
	return ks
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	for _, src := range []string{"begin", "Begin", "BEGIN", "bEgIn"} {
		toks := scan(t, src)
		if toks[0].Kind != token.BEGIN {
			t.Errorf("%q scanned as %v, want begin", src, toks[0].Kind)
		}
	}
}

func TestIdentifiers(t *testing.T) {
	toks := scan(t, "Cache_RO_To_RW GET_RO_RESP x1 _tmp")
	want := []string{"Cache_RO_To_RW", "GET_RO_RESP", "x1", "_tmp"}
	for i, w := range want {
		if toks[i].Kind != token.IDENT || toks[i].Lit != w {
			t.Errorf("token %d = %v %q, want IDENT %q", i, toks[i].Kind, toks[i].Lit, w)
		}
	}
}

func TestPunctuationAndOperators(t *testing.T) {
	src := "( ) { } ; : , . := + - * / % = <> < <= > >= && || ! != =="
	toks := scan(t, src)
	want := []token.Kind{
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.SEMICOLON, token.COLON, token.COMMA, token.DOT, token.ASSIGN,
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE,
		token.AND, token.OR, token.NOT, token.NEQ, token.EQ, token.EOF,
	}
	if !reflect.DeepEqual(kinds(toks), want) {
		t.Errorf("kinds = %v, want %v", kinds(toks), want)
	}
}

func TestComments(t *testing.T) {
	src := `x -- line comment
y // other comment
(* block (* nested *) comment *) z`
	toks := scan(t, src)
	want := []string{"x", "y", "z"}
	for i, w := range want {
		if toks[i].Lit != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Lit, w)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks := scan(t, `"Invalid msg %s to Cache_RO" "a\nb\"c"`)
	if toks[0].Kind != token.STRING || toks[0].Lit != "Invalid msg %s to Cache_RO" {
		t.Errorf("string 0 = %v %q", toks[0].Kind, toks[0].Lit)
	}
	if toks[1].Lit != "a\nb\"c" {
		t.Errorf("string 1 = %q", toks[1].Lit)
	}
}

func TestUnterminatedString(t *testing.T) {
	var errs source.ErrorList
	ScanAll(source.NewFile("t", `"abc`), &errs)
	if errs.Len() == 0 {
		t.Fatal("expected error for unterminated string")
	}
}

func TestIllegalCharacter(t *testing.T) {
	var errs source.ErrorList
	toks := ScanAll(source.NewFile("t", "a @ b"), &errs)
	if errs.Len() == 0 {
		t.Fatal("expected error for @")
	}
	if toks[1].Kind != token.ILLEGAL {
		t.Errorf("token 1 = %v, want ILLEGAL", toks[1].Kind)
	}
}

func TestPositions(t *testing.T) {
	toks := scan(t, "a\n  bb\nccc")
	checks := []struct{ i, line, col int }{{0, 1, 1}, {1, 2, 3}, {2, 3, 1}}
	for _, c := range checks {
		if toks[c.i].Pos.Line != c.line || toks[c.i].Pos.Col != c.col {
			t.Errorf("token %d at %v, want %d:%d", c.i, toks[c.i].Pos, c.line, c.col)
		}
	}
}

func TestIntLiterals(t *testing.T) {
	toks := scan(t, "0 42 100000")
	for i, w := range []string{"0", "42", "100000"} {
		if toks[i].Kind != token.INT || toks[i].Lit != w {
			t.Errorf("token %d = %v %q, want INT %q", i, toks[i].Kind, toks[i].Lit, w)
		}
	}
}

func TestSuspendResumeKeywords(t *testing.T) {
	toks := scan(t, "Suspend(L, S{L}); Resume(C);")
	want := []token.Kind{
		token.SUSPEND, token.LPAREN, token.IDENT, token.COMMA, token.IDENT,
		token.LBRACE, token.IDENT, token.RBRACE, token.RPAREN, token.SEMICOLON,
		token.RESUME, token.LPAREN, token.IDENT, token.RPAREN, token.SEMICOLON,
		token.EOF,
	}
	if !reflect.DeepEqual(kinds(toks), want) {
		t.Errorf("kinds = %v\nwant    %v", kinds(toks), want)
	}
}

// TestEOFAlwaysLast checks every scan ends in exactly one EOF.
func TestEOFAlwaysLast(t *testing.T) {
	for _, src := range []string{"", " ", "-- only comment", "a b c", "begin end"} {
		toks := scan(t, src)
		if toks[len(toks)-1].Kind != token.EOF {
			t.Errorf("scan(%q) last token %v", src, toks[len(toks)-1].Kind)
		}
		for _, tk := range toks[:len(toks)-1] {
			if tk.Kind == token.EOF {
				t.Errorf("scan(%q): interior EOF", src)
			}
		}
	}
}

// Property: scanning the joined spellings of scanned identifier/keyword/int
// tokens reproduces the same token sequence (lexer idempotence on its own
// output for whitespace-insensitive token classes).
func TestRescanProperty(t *testing.T) {
	alphabet := []string{"begin", "end", "state", "42", "x", "Cache_RO", "(", ")", ";", ":=", "+", "<=", "{", "}", `"s"`}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var parts []string
		for i := 0; i < int(n%32); i++ {
			parts = append(parts, alphabet[rng.Intn(len(alphabet))])
		}
		src := strings.Join(parts, " ")
		var errs1, errs2 source.ErrorList
		t1 := ScanAll(source.NewFile("a", src), &errs1)
		// Re-render and re-scan.
		var sb strings.Builder
		for _, tk := range t1 {
			if tk.Kind == token.EOF {
				break
			}
			sb.WriteString(tk.String())
			sb.WriteByte(' ')
		}
		t2 := ScanAll(source.NewFile("b", sb.String()), &errs2)
		if len(t1) != len(t2) {
			return false
		}
		for i := range t1 {
			if t1[i].Kind != t2[i].Kind || t1[i].Lit != t2[i].Lit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

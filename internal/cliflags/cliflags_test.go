package cliflags

import (
	"flag"
	"reflect"
	"testing"

	"teapot/internal/netmodel"
	"teapot/internal/protocols"
)

// TestRunnableNamesInSync: the static help list must be exactly the set of
// registry entries protocols.Spec accepts, in registry order.
func TestRunnableNamesInSync(t *testing.T) {
	var want []string
	for _, e := range protocols.All() {
		if _, err := protocols.Spec(e.Name, 2, 1); err == nil {
			want = append(want, e.Name)
		}
	}
	if got := RunnableNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("RunnableNames() = %v, want %v", got, want)
	}
}

func TestNetFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	n := AddNet(fs)
	if err := fs.Parse([]string{"-net", "drop=1,dup=2,reorder=1"}); err != nil {
		t.Fatal(err)
	}
	want := netmodel.Model{MaxDrops: 1, MaxDups: 2, Reorder: 1}
	if n.Model != want {
		t.Errorf("parsed %+v, want %+v", n.Model, want)
	}
	if err := fs.Parse([]string{"-net", "bogus=1"}); err == nil {
		t.Error("bad -net value accepted")
	}
}

func TestRunSpec(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	r := AddRun(fs, "stache", 2, 1)
	if err := fs.Parse([]string{"-proto", "stache-ft", "-net", "drop=1", "-workers", "3", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	spec, err := r.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Proto == nil || spec.Support == nil || spec.Events == nil {
		t.Fatal("spec missing protocol wiring")
	}
	if spec.Net.MaxDrops != 1 || spec.Workers != 3 || spec.Seed != 9 {
		t.Errorf("flags not threaded: %+v", spec)
	}
	*r.Proto = "no-such-proto"
	if _, err := r.Spec(); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// TestSeedZeroDerives: -seed 0 must resolve to a stable derived seed, not
// the literal zero, and the derivation must depend on the run shape.
func TestSeedZeroDerives(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	r := AddRun(fs, "stache", 2, 1)
	if err := fs.Parse([]string{"-seed", "0", "-net", "drop=1"}); err != nil {
		t.Fatal(err)
	}
	spec, err := r.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 0 {
		t.Fatalf("Spec rewrote the sentinel seed to %d; EffectiveSeed owns the derivation", spec.Seed)
	}
	derived := spec.EffectiveSeed()
	if derived == 0 {
		t.Fatal("derived seed is 0")
	}
	other := spec
	other.Net.MaxDrops = 2
	if other.EffectiveSeed() == derived {
		t.Error("different net model derived the same seed")
	}
}

// TestDeprecatedAliases: -protocol overrides -proto, and the larger of
// -reorder and -net's reorder field wins.
func TestDeprecatedAliases(t *testing.T) {
	for _, tc := range []struct {
		args        []string
		wantProto   string
		wantReorder int
	}{
		{[]string{"-protocol", "stache-ft"}, "stache-ft", 0},
		{[]string{"-proto", "update", "-protocol", "stache-ft"}, "stache-ft", 0},
		{[]string{"-reorder", "2"}, "stache", 2},
		{[]string{"-reorder", "2", "-net", "reorder=3"}, "stache", 3},
		{[]string{"-reorder", "3", "-net", "reorder=2,drop=1"}, "stache", 3},
		{[]string{}, "stache", 0},
	} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		r := AddRun(fs, "stache", 2, 1)
		d := AddDeprecated(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatal(err)
		}
		d.Apply(r)
		if *r.Proto != tc.wantProto {
			t.Errorf("%v: proto %q, want %q", tc.args, *r.Proto, tc.wantProto)
		}
		if r.Net.Model.Reorder != tc.wantReorder {
			t.Errorf("%v: reorder %d, want %d", tc.args, r.Net.Model.Reorder, tc.wantReorder)
		}
	}
}

// Teapot-verify model-checks a bundled protocol by exhaustive state-space
// exploration (§7 of the paper), reporting the number of states explored
// and, on a violation, the event trace leading to it.
//
// Usage:
//
//	teapot-verify -protocol stache -nodes 2 -blocks 1 -reorder 1
//	teapot-verify -protocol stache-buggy        # finds the seeded deadlock
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"teapot/internal/mc"
	"teapot/internal/protocols/bufwrite"
	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
	"teapot/internal/protocols/update"
)

func main() {
	var (
		protocol = flag.String("protocol", "stache", "stache | stache-buggy | bufwrite | lcm | lcm-mcc | update")
		nodes    = flag.Int("nodes", 2, "number of nodes")
		blocks   = flag.Int("blocks", 1, "number of shared blocks")
		reorder  = flag.Int("reorder", 1, "network reordering bound")
		maxState = flag.Int("max-states", 0, "abort after exploring this many states (0 = unlimited)")
		workers  = flag.Int("workers", 0, "BFS worker goroutines (0 = GOMAXPROCS)")
		progress = flag.String("progress", "auto", "live per-layer progress on stderr: auto (only when stderr is a terminal) | always | never")
		stats    = flag.Bool("stats", false, "print a final exploration stats block")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file after the run")
	)
	flag.Parse()

	cfg, err := configFor(*protocol, *nodes, *blocks, *reorder)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teapot-verify:", err)
		os.Exit(1)
	}
	cfg.MaxStates = *maxState
	cfg.Workers = *workers

	switch *progress {
	case "always", "auto", "never":
	default:
		fmt.Fprintf(os.Stderr, "teapot-verify: -progress must be auto, always, or never (got %q)\n", *progress)
		os.Exit(1)
	}
	if *progress == "always" || (*progress == "auto" && stderrIsTerminal()) {
		pw := &mc.ProgressWriter{W: os.Stderr}
		cfg.Progress = pw.Report
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
	}

	res, err := mc.Check(cfg)
	if *cpuProf != "" {
		// Stopped explicitly: the violation path exits with a nonzero
		// status, which would skip a deferred stop.
		pprof.StopCPUProfile()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "teapot-verify:", err)
		os.Exit(1)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
		f.Close()
	}

	fmt.Printf("protocol %s: %d states, %d transitions, depth %d, %d workers, %s\n",
		*protocol, res.States, res.Transitions, res.MaxDepth, res.Workers, res.Elapsed)
	if *stats {
		rate := 0.0
		if s := res.Elapsed.Seconds(); s > 0 {
			rate = float64(res.States) / s
		}
		dedup := 0.0
		if res.States > 0 {
			dedup = float64(res.Transitions) / float64(res.States)
		}
		fmt.Printf("  peak frontier:  %d states\n", res.PeakFrontier)
		fmt.Printf("  decodes:        %d (one per expanded state)\n", res.Decodes)
		fmt.Printf("  visited set:    %s\n", mc.FormatBytes(res.VisitedBytes))
		fmt.Printf("  rate:           %.0f states/s\n", rate)
		fmt.Printf("  dedup ratio:    %.2f transitions/state\n", dedup)
	}
	if res.Violation == nil {
		fmt.Println("verified: no deadlock, no unexpected messages, coherence holds")
		return
	}
	fmt.Printf("VIOLATION %s\n", res.Violation)
	os.Exit(2)
}

// stderrIsTerminal reports whether stderr is attached to a character
// device. The -progress auto gate: live lines are for humans watching a
// terminal, not for logs captured by redirection or CI.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

func configFor(name string, nodes, blocks, reorder int) (mc.Config, error) {
	base := mc.Config{Nodes: nodes, Blocks: blocks, Reorder: reorder, CheckCoherence: true}
	switch name {
	case "stache":
		a := stache.MustCompile(true)
		base.Proto = a.Protocol
		base.Support = stache.MustSupport(a.Protocol)
		base.Events = stache.NewEvents(a.Protocol)
	case "stache-buggy":
		p, err := stache.CompileBuggy()
		if err != nil {
			return base, err
		}
		base.Proto = p
		base.Support = stache.MustSupport(p)
		base.Events = stache.NewEvents(p)
	case "bufwrite":
		a := bufwrite.MustCompile(true)
		base.Proto = a.Protocol
		base.Support = bufwrite.MustSupport(a.Protocol)
		base.Events = bufwrite.NewEvents(a.Protocol)
	case "lcm":
		a := lcm.MustCompile(lcm.Base, true)
		base.Proto = a.Protocol
		base.Support = lcm.MustSupport(a.Protocol, nodes)
		base.Events = lcm.NewEvents(a.Protocol)
		base.CheckCoherence = false // LCM phases are deliberately inconsistent
	case "update":
		a := update.MustCompile(true)
		base.Proto = a.Protocol
		base.Support = update.MustSupport(a.Protocol)
		base.Events = update.NewEvents(a.Protocol)
	case "lcm-mcc":
		a := lcm.MustCompile(lcm.MCC, true)
		base.Proto = a.Protocol
		base.Support = lcm.MustSupport(a.Protocol, nodes)
		base.Events = lcm.NewEvents(a.Protocol)
		base.CheckCoherence = false
	default:
		return base, fmt.Errorf("unknown protocol %q", name)
	}
	return base, nil
}

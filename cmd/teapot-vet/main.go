// Teapot-vet runs the static protocol analyses (internal/analysis) over
// Teapot sources and reports findings the compiler itself does not reject:
// unhandled state/message pairs, unreachable and dead-end states, leaked
// or stuck continuations, deferred-queue progress hazards, IR hygiene
// problems, and avoidable continuation allocations.
//
// Usage:
//
//	teapot-vet [flags] [target ...]
//
// A target is a bundled protocol name (stache, stache-cas, lcm, ...), a
// .tea source file, or a Go-style path into the bundled protocol tree
// (e.g. ./internal/protocols/...), which — like no targets at all — vets
// every bundled protocol except the seeded-bug fixtures.
//
// Flags:
//
//	-all           also print info-level findings (advisory, never affect
//	               the exit)
//	-json          print one machine-readable JSON array instead of text:
//	               per target, every finding (all severities) plus the
//	               static symmetry certificate (internal/analysis, schema
//	               pinned by TestJSONReportGolden)
//	-O             vet the optimized build (default true)
//	-home-start s  initial home-side state for .tea targets
//	-cache-start s initial cache-side state for .tea targets
//
// Exit status is 0 when no target has findings at warning level or above,
// 1 when some target does, and 2 on usage or compile errors.
//
// The cont-alloc findings name suspend sites by id; the same ids appear in
// `teapotc -emit sites` tables and on the ContAlloc/Resume events of
// `teapot-sim -trace` output, so a static finding can be confirmed (or
// weighed) against a real run's allocation counts — see the cross-check
// test in internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"teapot/internal/analysis"
	"teapot/internal/core"
	"teapot/internal/protocols"
	"teapot/internal/source"
)

func main() {
	var (
		all        = flag.Bool("all", false, "also print info-level findings")
		jsonOut    = flag.Bool("json", false, "print machine-readable JSON (findings + symmetry certificate) instead of text")
		optimize   = flag.Bool("O", true, "vet the optimized build")
		homeStart  = flag.String("home-start", "Home_Idle", "initial home-side state for .tea targets")
		cacheStart = flag.String("cache-start", "Cache_Inv", "initial cache-side state for .tea targets")
	)
	flag.Parse()

	targets, err := resolve(flag.Args(), *homeStart, *cacheStart)
	if err != nil {
		fmt.Fprintln(os.Stderr, "teapot-vet:", err)
		os.Exit(2)
	}

	dirty := false
	var reports []*analysis.JSONReport
	for _, tgt := range targets {
		cfg := tgt.Config
		cfg.Optimize = *optimize
		art, err := core.Compile(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "teapot-vet: %s: %v\n", cfg.Name, err)
			os.Exit(2)
		}
		rep := analysis.Analyze(art.Protocol)
		if *jsonOut {
			reports = append(reports, rep.JSON(tgt.Name, analysis.ProveSymmetry(art.Protocol)))
		} else {
			for _, d := range rep.Findings {
				if d.Severity > source.SevWarning && !*all {
					continue
				}
				fmt.Println(analysis.Format(d))
			}
		}
		if len(rep.Actionable()) > 0 {
			dirty = true
		}
	}
	if *jsonOut {
		b, err := analysis.MarshalJSONReports(reports)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teapot-vet:", err)
			os.Exit(2)
		}
		os.Stdout.Write(b)
	}
	if dirty {
		os.Exit(1)
	}
}

// resolve expands the command-line targets into compile configurations.
func resolve(args []string, homeStart, cacheStart string) ([]protocols.Entry, error) {
	if len(args) == 0 {
		return bundled(), nil
	}
	var out []protocols.Entry
	for _, a := range args {
		switch {
		case strings.Contains(a, "internal/protocols"):
			// A Go-style package path: sweep the bundled set.
			out = append(out, bundled()...)
		case strings.HasSuffix(a, ".tea"):
			b, err := os.ReadFile(a)
			if err != nil {
				return nil, err
			}
			out = append(out, protocols.Entry{
				Name: a,
				Config: core.Config{
					Name: a, Source: string(b), Optimize: true,
					HomeStart: homeStart, CacheStart: cacheStart,
				},
			})
		default:
			e, ok := protocols.Lookup(a)
			if !ok {
				return nil, fmt.Errorf("unknown protocol %q (bundled: %s)",
					a, strings.Join(protocols.Names(), ", "))
			}
			out = append(out, e)
		}
	}
	return out, nil
}

// bundled returns every registered protocol except the seeded-bug
// fixtures, which are negative test material and fail by design.
func bundled() []protocols.Entry {
	var out []protocols.Entry
	for _, e := range protocols.All() {
		if !e.Buggy {
			out = append(out, e)
		}
	}
	return out
}

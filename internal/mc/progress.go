package mc

import (
	"fmt"
	"io"
	"time"
)

// DefaultProgressInterval is the minimum spacing between ProgressWriter
// lines unless overridden.
const DefaultProgressInterval = 500 * time.Millisecond

// ProgressWriter renders ProgressInfo snapshots as rate-limited plain-text
// lines (teapot-verify -progress attaches one to stderr). The zero
// Interval means DefaultProgressInterval; Now is a test hook for the rate
// limiter's clock. Report is the Config.Progress callback.
type ProgressWriter struct {
	W        io.Writer
	Interval time.Duration
	Now      func() time.Time

	last  time.Time
	lines int
}

// Report writes one progress line unless the previous line was written
// less than Interval ago. Layers are frequent early in a search (small
// frontiers expand in microseconds), so without the limiter a run would
// emit thousands of lines before the interesting depths.
func (pw *ProgressWriter) Report(p ProgressInfo) {
	now := time.Now
	if pw.Now != nil {
		now = pw.Now
	}
	interval := pw.Interval
	if interval == 0 {
		interval = DefaultProgressInterval
	}
	t := now()
	if pw.lines > 0 && t.Sub(pw.last) < interval {
		return
	}
	pw.last = t
	pw.lines++
	fmt.Fprintf(pw.W, "mc: depth %d  frontier %d  states %d (%s)  %.0f st/s  dedup %.2f  shards %d..%d\n",
		p.Depth, p.Frontier, p.States, FormatBytes(p.VisitedBytes),
		p.StatesPerSec(), p.DedupRatio(), p.ShardMin, p.ShardMax)
}

// Lines returns how many lines have been written (rate-limited ones
// excluded).
func (pw *ProgressWriter) Lines() int { return pw.lines }

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

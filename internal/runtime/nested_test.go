package runtime_test

import (
	"strings"
	"testing"

	"teapot/internal/core"
	"teapot/internal/runtime"
	"teapot/internal/vm"
)

// nestedProtocol exercises §3's nested-suspension feature: "a subroutine
// called from a Suspend can itself invoke another Suspend ... in the
// Stanford DASH coherence protocol, a home node returns a WriteResponse
// that requires the writer to wait for Invalidation-Acks from the current
// readers. With this mechanism, the handler processing the response can
// directly Suspend to wait for the next acknowledgment."
//
// Here the GO handler waits for M1; the M1 handler, while holding GO's
// continuation, suspends again for M2; M2 resumes into M1's remainder,
// which resumes GO's remainder. Locals at each level must survive.
const nestedProtocol = `
protocol Nest begin
  var result : int;
  state S();
  state W1(C : CONT) transient;
  state W2(C : CONT; inner : int) transient;
  message GO;
  message M1;
  message M2;
end;

state Nest.S()
begin
  message GO (id : ID; var info : INFO; src : NODE)
  var x : int;
  begin
    x := 100;
    Suspend(L, W1{L});
    result := result + x + 1;   -- runs last; x restored from GO's record
    SetState(info, S{});
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Nest.W1(C : CONT)
begin
  message M1 (id : ID; var info : INFO; src : NODE)
  var y : int;
  begin
    y := 20;
    Suspend(L2, W2{L2, y});
    result := result + y;       -- y restored from M1's record
    Resume(C);                  -- then continue the original GO handler
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Nest.W2(C : CONT; inner : int)
begin
  message M2 (id : ID; var info : INFO; src : NODE)
  begin
    result := inner * 1000;     -- the state argument carried across
    Resume(C);
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;
`

func TestNestedSuspensions(t *testing.T) {
	for _, optimize := range []bool{false, true} {
		art := core.MustCompile(core.Config{
			Name: "nest.tea", Source: nestedProtocol, Optimize: optimize,
			HomeStart: "S", CacheStart: "S",
		})
		m := newTestMachine()
		e := runtime.NewEngine(art.Protocol, 0, 1, m, nullSupport{})
		m.engines = append(m.engines, e)

		deliver := func(name string) {
			t.Helper()
			if err := e.Deliver(&runtime.Message{Tag: art.Protocol.MsgIndex(name), ID: 0, Src: 0}); err != nil {
				t.Fatalf("deliver %s (optimize=%v): %v", name, optimize, err)
			}
		}
		deliver("GO")
		if got := e.Blocks[0].StateName(art.Protocol); got != "W1" {
			t.Fatalf("state after GO = %s", got)
		}
		deliver("M1")
		if got := e.Blocks[0].StateName(art.Protocol); got != "W2" {
			t.Fatalf("state after M1 = %s", got)
		}
		// The W2 state value carries the inner local as an argument.
		if args := e.Blocks[0].State.Args; len(args) != 2 || args[1].Int != 20 {
			t.Fatalf("W2 args = %v", args)
		}
		deliver("M2")
		// result = 20*1000 (M2) + 20 (M1 remainder) + 101 (GO remainder).
		slot := art.Sema.ProtVars[0].Index
		if got := e.Blocks[0].Vars[slot].Int; got != 20121 {
			t.Errorf("optimize=%v: result = %d, want 20121", optimize, got)
		}
		if got := e.Blocks[0].StateName(art.Protocol); got != "S" {
			t.Errorf("final state = %s", got)
		}
		m.engines = nil
	}
}

func TestNestedSuspensionCountersDifferByMode(t *testing.T) {
	run := func(optimize bool) vm.Counters {
		art := core.MustCompile(core.Config{
			Name: "nest.tea", Source: nestedProtocol, Optimize: optimize,
			HomeStart: "S", CacheStart: "S",
		})
		m := newTestMachine()
		e := runtime.NewEngine(art.Protocol, 0, 1, m, nullSupport{})
		m.engines = append(m.engines, e)
		for _, name := range []string{"GO", "M1", "M2"} {
			if err := e.Deliver(&runtime.Message{Tag: art.Protocol.MsgIndex(name), ID: 0, Src: 0}); err != nil {
				panic(err)
			}
		}
		return e.Counters()
	}
	unopt := run(false)
	opt := run(true)
	if unopt.HeapConts != 2 {
		t.Errorf("unopt heap conts = %d, want 2 (one per suspend)", unopt.HeapConts)
	}
	// Both sites are unique for their states: the optimizer makes them
	// constant (but not static — each saves a live local).
	if opt.HeapConts != 0 || opt.StaticConts != 2 {
		t.Errorf("opt conts = heap %d / static %d, want 0 / 2", opt.HeapConts, opt.StaticConts)
	}
	if opt.ConstResumes != 2 || unopt.ConstResumes != 0 {
		t.Errorf("const resumes: opt=%d unopt=%d", opt.ConstResumes, unopt.ConstResumes)
	}
}

// nackProtocol exercises the negative-acknowledgement option the paper
// lists alongside queuing and dropping.
const nackProtocol = `
protocol Nacky begin
  var nacked : int;
  state S();
  state B();
  message PING;
  message NACK;
end;

state Nacky.S()
begin
  message PING (id : ID; var info : INFO; src : NODE)
  begin
    SetState(info, B{});
  end;
  message NACK (id : ID; var info : INFO; src : NODE; orig : MSG)
  begin
    nacked := nacked + 1;
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
end;

state Nacky.B()
begin
  message PING (id : ID; var info : INFO; src : NODE)
  begin
    Nack();
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
end;
`

func TestNackBuiltin(t *testing.T) {
	art := core.MustCompile(core.Config{
		Name: "nack.tea", Source: nackProtocol, Optimize: true,
		HomeStart: "S", CacheStart: "S",
	})
	m := newTestMachine()
	for n := 0; n < 2; n++ {
		m.engines = append(m.engines, runtime.NewEngine(art.Protocol, n, 1, m, nullSupport{}))
	}
	ping := art.Protocol.MsgIndex("PING")
	// First PING moves node 0 to B; second gets nacked back to node 1.
	if err := m.engines[0].Deliver(&runtime.Message{Tag: ping, ID: 0, Src: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.engines[0].Deliver(&runtime.Message{Tag: ping, ID: 0, Src: 1}); err != nil {
		t.Fatal(err)
	}
	m.pump(t)
	slot := art.Sema.ProtVars[0].Index
	if got := m.engines[1].Blocks[0].Vars[slot].Int; got != 1 {
		t.Errorf("nacked = %d, want 1", got)
	}
}

func TestNackWithoutDeclaredMessage(t *testing.T) {
	src := strings.Replace(nackProtocol, "protocol Nacky begin", "protocol Nacky begin", 1)
	src = strings.Replace(src, "  message NACK;\n", "", 1)
	// Remove the NACK declaration and its handler.
	src = strings.Replace(src, `  message NACK (id : ID; var info : INFO; src : NODE; orig : MSG)
  begin
    nacked := nacked + 1;
  end;
`, "", 1)
	src = strings.Replace(src, "message NACK;", "", 1)
	art, err := core.Compile(core.Config{
		Name: "nack2.tea", Source: src, Optimize: true,
		HomeStart: "S", CacheStart: "S",
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := newTestMachine()
	e := runtime.NewEngine(art.Protocol, 0, 1, m, nullSupport{})
	m.engines = append(m.engines, e)
	ping := art.Protocol.MsgIndex("PING")
	if err := e.Deliver(&runtime.Message{Tag: ping, ID: 0, Src: 0}); err != nil {
		t.Fatal(err)
	}
	err = e.Deliver(&runtime.Message{Tag: ping, ID: 0, Src: 0})
	if err == nil || !strings.Contains(err.Error(), "no NACK message") {
		t.Fatalf("err = %v", err)
	}
}

package fuzz

// The testdata/repro regression suite: every committed schedule artifact
// must keep replaying to exactly the verdict its "expect" field pins —
// seeded-bug reproducers must still fail, fixed-bug twins must still run
// clean — and replay must be deterministic down to the byte-identical obs
// event stream. Failing entries are additionally cross-checked against
// the model checker, whose counterexample must replay step-for-step
// through the independent runtime engine (mc.ReplaySteps parity inside
// DiffReplay).

import (
	"path/filepath"
	"strings"
	"testing"

	"teapot/internal/obs"
	"teapot/internal/runtime"
)

// reproDir is the committed reproducer corpus, relative to this package.
const reproDir = "../../testdata/repro"

// streamSink renders every event line the way the flight recorder would,
// so two replays can be compared byte for byte.
type streamSink struct {
	names obs.Names
	lines []string
}

func (s *streamSink) Emit(ev obs.Event) {
	s.lines = append(s.lines, obs.FormatEvent(ev, s.names))
}

func TestReproCorpusReplays(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(reproDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no committed reproducers in %s", reproDir)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if s.Expect == "" {
				t.Fatalf("%s: committed reproducers must pin a verdict in \"expect\"", path)
			}
			rep, err := ReplaySchedule(s)
			if err != nil {
				t.Fatal(err)
			}
			class := rep.class()
			if class == "" {
				class = "clean"
			}
			if class != s.Expect {
				t.Fatalf("replays as %q, expect pins %q (violation=%v runErr=%v)",
					class, s.Expect, rep.Violation, rep.RunErr)
			}

			// Replay determinism: two observed replays of the same artifact
			// must produce byte-identical event streams.
			net, err := s.NetModel()
			if err != nil {
				t.Fatal(err)
			}
			f, err := New(Config{Proto: s.Proto, Nodes: s.Nodes, Blocks: s.Blocks,
				Net: net, OpsPerNode: s.OpsPerNode})
			if err != nil {
				t.Fatal(err)
			}
			names := runtime.ObsNames(f.Spec().Proto)
			var streams [2]string
			for i := range streams {
				sink := &streamSink{names: names}
				f.ReplayObserved(s, sink)
				streams[i] = strings.Join(sink.lines, "\n")
			}
			if streams[0] != streams[1] {
				t.Fatal("two replays of the same schedule produced different event streams")
			}
			if len(streams[0]) == 0 {
				t.Fatal("replay emitted no events")
			}

			// A still-failing reproducer must agree with the model checker,
			// and the checker's counterexample must replay step-for-step
			// through the independent runtime engine.
			if s.Expect == "violation" {
				mcres, err := f.ConfirmMC(500_000)
				if err != nil {
					t.Fatal(err)
				}
				if mcres.Violation == nil {
					t.Fatalf("checker found no violation in %d states for a failing reproducer", mcres.States)
				}
				if err := DiffReplay(f.Spec(), mcres.Violation); err != nil {
					t.Fatalf("differential replay of checker counterexample: %v", err)
				}
			}
		})
	}
}

package mc

import (
	"fmt"

	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/tempest"
)

// Scripted-client plane: litmus workloads drive the checker with the same
// per-node operation scripts the simulator runs, so one .lit scenario is
// explored exhaustively (every interleaving of client steps, deliveries,
// and faults) and its terminal states are judged against the simulator's
// observed outcomes. The plane mirrors internal/tempest's processor model
// op for op: an operation that the node's current access mode satisfies
// completes immediately; otherwise it raises the matching fault event and
// stalls the node until the protocol's WakeUp, which re-attempts the
// completion exactly as the tempest machine does. Block contents use the
// same packed version words (tempest.PackVal), so data messages, the
// monotone stale-discard rule, and the oracle all behave identically.
//
// Everything here is gated on Config.Client: without one, worlds carry no
// client state, encodings are byte-identical to previous releases, and
// RecvDataMsg degrades to the plain access change RecvData makes.

// ClientOpKind classifies a scripted client operation.
type ClientOpKind uint8

// Scripted client operations.
const (
	ClientGet ClientOpKind = iota // load; the observed value is recorded
	ClientPut                     // store of Val
	ClientCAS                     // compare-and-swap: record observed, store Val if it equals Expect
)

func (k ClientOpKind) String() string {
	switch k {
	case ClientGet:
		return "get"
	case ClientPut:
		return "put"
	case ClientCAS:
		return "cas"
	}
	return "op?"
}

// ClientOp is one scripted operation.
type ClientOp struct {
	Kind   ClientOpKind
	Block  int
	Val    int64 // Put/CAS store value (32-bit)
	Expect int64 // CAS comparison value
}

// Client is a scripted workload for the checker: one operation sequence
// per node, plus initial block values. Build with NewClient, which
// resolves the protocol's fault events once.
type Client struct {
	Programs [][]ClientOp
	InitMem  []int64 // raw initial value per block (version 0)

	rdTag, wrTag, wrroTag int
}

// NewClient builds a Client for proto. The protocol must declare the
// processor-fault events a script could raise (RD_FAULT for gets, WR_FAULT
// for puts and CASes; WR_RO_FAULT is used when declared and the faulting
// node holds the block read-only).
func NewClient(proto *runtime.Protocol, programs [][]ClientOp, initMem []int64) (*Client, error) {
	c := &Client{
		Programs: programs,
		InitMem:  initMem,
		rdTag:    proto.MsgIndex("RD_FAULT"),
		wrTag:    proto.MsgIndex("WR_FAULT"),
		wrroTag:  proto.MsgIndex("WR_RO_FAULT"),
	}
	for _, prog := range programs {
		for _, op := range prog {
			if op.Kind == ClientGet && c.rdTag < 0 {
				return nil, fmt.Errorf("mc: client script reads but protocol declares no RD_FAULT")
			}
			if op.Kind != ClientGet && c.wrTag < 0 {
				return nil, fmt.Errorf("mc: client script writes but protocol declares no WR_FAULT")
			}
		}
	}
	return c, nil
}

// program returns node's script (empty when the script declares fewer
// nodes than the machine has).
func (c *Client) program(node int) []ClientOp {
	if node >= len(c.Programs) {
		return nil
	}
	return c.Programs[node]
}

// initClient installs the client plane on a fresh world.
func (w *World) initClient(c *Client) {
	nodes, blocks := w.cfg.Nodes, w.cfg.Blocks
	w.pcs = make([]int, nodes)
	w.regs = make([][]int64, nodes)
	w.cver = make([]int64, blocks)
	w.cmem = make([]int64, nodes*blocks)
	for b, v := range c.InitMem {
		if b >= blocks {
			break
		}
		for n := 0; n < nodes; n++ {
			w.cmem[n*blocks+b] = tempest.PackVal(0, v)
		}
	}
}

// clientAccessOK mirrors tempest's accessOK for client operations.
func clientAccessOK(kind ClientOpKind, acc sema.AccessMode) bool {
	switch acc {
	case sema.AccReadWrite:
		return true
	case sema.AccReadOnly:
		return kind == ClientGet
	case sema.AccBuffered:
		return kind == ClientPut
	}
	return false
}

// clientFaultTag mirrors tempest's faultTag.
func (c *Client) clientFaultTag(kind ClientOpKind, acc sema.AccessMode) int {
	if kind == ClientGet {
		return c.rdTag
	}
	if acc == sema.AccReadOnly && c.wrroTag >= 0 {
		return c.wrroTag
	}
	return c.wrTag
}

// clientComplete performs node's current operation (the access mode has
// already been checked) and advances its program counter.
func (w *World) clientComplete(node int, op ClientOp) {
	blocks := w.cfg.Blocks
	switch op.Kind {
	case ClientGet:
		w.regs[node] = append(w.regs[node], w.cmem[node*blocks+op.Block])
	case ClientPut:
		w.clientStore(node, op)
	case ClientCAS:
		observed := w.cmem[node*blocks+op.Block]
		w.regs[node] = append(w.regs[node], observed)
		if tempest.ValueOf(observed) == op.Expect {
			w.clientStore(node, op)
		}
	}
	w.pcs[node]++
}

// clientStore commits a store: a fresh global version of the block with
// the operation's value packed in, installed in the node's copy.
func (w *World) clientStore(node int, op ClientOp) {
	w.cver[op.Block]++
	w.cmem[node*w.cfg.Blocks+op.Block] = tempest.PackVal(w.cver[op.Block], op.Val)
}

// clientStep attempts node's next scripted operation: complete it if the
// node's access mode allows, otherwise raise the matching fault event and
// stall the node (the protocol's WakeUp resumes it via clientWake).
func (w *World) clientStep(node int) error {
	c := w.cfg.Client
	op := c.program(node)[w.pcs[node]]
	acc := w.Access(node, op.Block)
	if clientAccessOK(op.Kind, acc) {
		w.clientComplete(node, op)
		return nil
	}
	tag := c.clientFaultTag(op.Kind, acc)
	if tag < 0 {
		return fmt.Errorf("mc: no fault event for client op %v under access %v", op.Kind, acc)
	}
	w.stalled[node] = op.Block
	if err := w.engines[node].InjectEvent(tag, op.Block); err != nil {
		return err
	}
	return w.sendErr
}

// clientWake re-attempts the faulted operation when the protocol wakes the
// stalled node, mirroring tempest's WakeUp: the access is satisfied
// atomically with the wakeup when the granted permission allows it, and a
// faulted put completing with read-only access counts as performed by the
// protocol (the write-through discipline). A CAS gets no such exception —
// if the wakeup leaves the block below read-write the program counter
// stays put and the operation refaults on its next client action.
func (w *World) clientWake(node, id int) {
	if w.pcs == nil {
		return
	}
	prog := w.cfg.Client.program(node)
	if w.pcs[node] >= len(prog) {
		return
	}
	op := prog[w.pcs[node]]
	if op.Block != id {
		return
	}
	acc := w.Access(node, op.Block)
	if clientAccessOK(op.Kind, acc) ||
		(op.Kind == ClientPut && acc == sema.AccReadOnly) {
		w.clientComplete(node, op)
	}
}

// ClientDone reports whether every node has finished its script (false
// when no client is attached).
func (w *World) ClientDone() bool {
	if w.pcs == nil {
		return false
	}
	for n, pc := range w.pcs {
		if pc < len(w.cfg.Client.program(n)) {
			return false
		}
	}
	return true
}

// ClientRegs returns each node's observed values (gets and CASes, in
// program order), as packed version words.
func (w *World) ClientRegs() [][]int64 {
	out := make([][]int64, len(w.regs))
	for n, r := range w.regs {
		out[n] = append([]int64(nil), r...)
	}
	return out
}

// ClientFinal returns the final packed value of each block: the newest
// copy any node holds, which is the value of the block's latest completed
// store (copies only ever move forward, so the writer's own copy is the
// maximum until newer data displaces it).
func (w *World) ClientFinal() []int64 {
	out := make([]int64, w.cfg.Blocks)
	for b := 0; b < w.cfg.Blocks; b++ {
		max := int64(0)
		for n := 0; n < w.cfg.Nodes; n++ {
			if v := w.cmem[n*w.cfg.Blocks+b]; v > max {
				max = v
			}
		}
		out[b] = max
	}
	return out
}

// Package bufwrite implements the paper's Buffered-write variant of Stache
// (§6): "a variant of the Stache protocol that attempts to overlap the
// latency of acquiring a writable copy of a cache block with future
// computation by buffering writes until a synchronization point. The
// modification to Stache code involved adding 4 new states, 4 new message
// types, and some support routines. This protocol requires an application
// to have the synchronization needed by the weakly consistent memory
// model."
//
// Here a write fault does not stall the processor: the write completes
// into a local buffer (Tempest access mode Blk_Buffered) while the
// writable copy is acquired in the background; a SYNC event per block
// flushes — stalling only on blocks whose acquisition is still in flight.
// Like the paper's version, it is composed from the Stache source.
package bufwrite

import (
	"strings"

	"teapot/internal/core"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
)

// decls extends the protocol declaration block: one new event message and
// the paper's four new states.
const decls = `
  var buffered : int;  -- outstanding buffered writes (merged on grant)

  state Cache_Buf_Fill();
  state Cache_Buf_Upgrade();
  state Cache_SyncFill(C : CONT) transient;
  state Cache_SyncUpgrade(C : CONT) transient;

  message SYNC;
`

// newStates are the buffered acquisition and flush states.
const newStates = `
----------------------------------------------------------------------
-- Buffered-write states
----------------------------------------------------------------------

-- A writable copy is being acquired while the processor keeps running;
-- its stores land in the write buffer.
state BufWrite.Cache_Buf_Fill()
begin
  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadWrite);
    buffered := 0;
    SetState(info, Cache_RW{});
  end;

  -- A read cannot be buffered: wait for the fill.
  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Suspend(L, Cache_SyncFill{L});
    WakeUp(id);
  end;

  message SYNC (id : ID; var info : INFO; src : NODE)
  begin
    Suspend(L, Cache_SyncFill{L});
    WakeUp(id);
  end;

  -- Invalidation addressed to a previous tenure.
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

-- An upgrade is in flight; the old read-only copy still serves loads and
-- new stores are buffered (they re-fault and accumulate).
state BufWrite.Cache_Buf_Upgrade()
begin
  message UPGRADE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    AccessChange(id, Blk_ReadWrite);
    buffered := 0;
    SetState(info, Cache_RW{});
  end;

  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadWrite);
    buffered := 0;
    SetState(info, Cache_RW{});
  end;

  -- More stores while upgrading: buffer them too.
  message WR_RO_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    buffered := buffered + 1;
    WakeUp(id);
  end;

  -- We lost the race: the read copy is gone, but new stores keep landing
  -- in the write buffer while the full grant is fetched. Dropping to
  -- Blk_Invalidate here would let a store fault as WR_FAULT, which no
  -- state on this path handles — the deferred fault would resurface in
  -- Cache_RW after the grant and kill the run.
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
    AccessChange(id, Blk_Buffered);
  end;

  -- A load after the lost race (the old copy no longer serves reads):
  -- stall until the full grant arrives.
  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Suspend(L, Cache_SyncUpgrade{L});
    WakeUp(id);
  end;

  message SYNC (id : ID; var info : INFO; src : NODE)
  begin
    Suspend(L, Cache_SyncUpgrade{L});
    WakeUp(id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

-- Stalled at a synchronization point (or on a read) until the buffered
-- fill completes.
state BufWrite.Cache_SyncFill(C : CONT)
begin
  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadWrite);
    buffered := 0;
    SetState(info, Cache_RW{});
    Resume(C);
  end;

  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state BufWrite.Cache_SyncUpgrade(C : CONT)
begin
  message UPGRADE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    AccessChange(id, Blk_ReadWrite);
    buffered := 0;
    SetState(info, Cache_RW{});
    Resume(C);
  end;

  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadWrite);
    buffered := 0;
    SetState(info, Cache_RW{});
    Resume(C);
  end;

  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
    AccessChange(id, Blk_Invalidate);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;
`

// syncNop is the SYNC handler for states with nothing pending.
const syncNop = `
  message SYNC (id : ID; var info : INFO; src : NODE)
  begin
    WakeUp(id);
  end;
`

// bufferedWrFault replaces Cache_Inv's blocking write fault.
const bufferedWrFault = `  message WR_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RW_REQ, id);
    buffered := buffered + 1;
    AccessChange(id, Blk_Buffered);
    SetState(info, Cache_Buf_Fill{});
    WakeUp(id);
  end;
`

// bufferedUpgrade replaces Cache_RO's blocking upgrade fault.
const bufferedUpgrade = `  message WR_RO_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), UPGRADE_REQ, id);
    buffered := buffered + 1;
    SetState(info, Cache_Buf_Upgrade{});
    WakeUp(id);
  end;
`

// Source is the assembled Buffered-write protocol.
var Source = func() string {
	src := stache.Source
	src = replace1(src, "protocol Stache begin", "protocol BufWrite begin")
	src = strings.ReplaceAll(src, "state Stache.", "state BufWrite.")
	src = replace1(src, "  message EVICT_RO_ACK;\nend;", "  message EVICT_RO_ACK;\n"+decls+"end;")
	// Replace the blocking write-fault handlers with buffering ones.
	src = replace1(src, `  message WR_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RW_REQ, id);
    Suspend(L, Cache_Inv_To_RW{L});
    WakeUp(id);
  end;
`, bufferedWrFault)
	src = replace1(src, `  message WR_RO_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), UPGRADE_REQ, id);
    Suspend(L, Cache_RO_To_RW{L});
    WakeUp(id);
  end;
`, bufferedUpgrade)
	// SYNC completes immediately in the stable states.
	for _, marker := range []string{
		`Error("invalid msg %s to Cache_Inv"`,
		`Error("invalid msg %s to Cache_RO"`,
		`Error("invalid msg %s to Cache_RW"`,
		`Error("invalid msg %s to Home_Idle"`,
		`Error("invalid msg %s to Home_RS"`,
		`Error("invalid msg %s to Home_Excl"`,
	} {
		at := strings.Index(src, marker)
		if at < 0 {
			panic("bufwrite: marker not found: " + marker)
		}
		// Insert before the "message DEFAULT" that contains the marker.
		def := strings.LastIndex(src[:at], "  message DEFAULT")
		src = src[:def] + syncNop + "\n" + src[def:]
	}
	// The buffered upgrade no longer suspends into Cache_RO_To_RW, leaving
	// the state unreachable: drop its declaration and body.
	src = replace1(src, "  state Cache_RO_To_RW(C : CONT) transient;\n", "")
	src = dropState(src, "Cache_RO_To_RW")
	return src + newStates
}()

// dropState removes a whole state body (header through the column-zero
// "end;" closing it).
func dropState(src, state string) string {
	i := strings.Index(src, "state BufWrite."+state+"(")
	if i < 0 {
		panic("bufwrite: state not found: " + state)
	}
	j := strings.Index(src[i:], "\nend;\n")
	if j < 0 {
		panic("bufwrite: end of state not found: " + state)
	}
	return src[:i] + src[i+j+len("\nend;\n"):]
}

func replace1(src, old, new string) string {
	out := strings.Replace(src, old, new, 1)
	if out == src {
		panic("bufwrite: marker not found: " + old)
	}
	return out
}

// Compile compiles the Buffered-write protocol.
func Compile(optimize bool) (*core.Artifacts, error) {
	return core.Compile(core.Config{
		Name:       "bufwrite.tea",
		Source:     Source,
		Optimize:   optimize,
		HomeStart:  "Home_Idle",
		CacheStart: "Cache_Inv",
	})
}

// MustCompile panics on error.
func MustCompile(optimize bool) *core.Artifacts {
	a, err := Compile(optimize)
	if err != nil {
		panic(err)
	}
	return a
}

// MustSupport builds the (Stache) support module — Buffered-write adds no
// routines, only the buffered counter variable.
func MustSupport(p *runtime.Protocol) *stache.Support {
	return stache.MustSupport(p)
}

package litmus

import (
	"strings"
	"testing"

	"teapot/internal/fuzz"
)

// testOptions keeps budgets small so the differential runs stay fast under
// -race; mp-shaped tests explore only tens of checker states.
func testOptions(mode string) Options {
	return Options{Mode: mode, Budget: 50_000, Seed: 7}
}

func mustParse(t *testing.T, src string) *Test {
	t.Helper()
	tt, err := Parse("inline.lit", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return tt
}

func TestRunMPAllSubstratesAgree(t *testing.T) {
	tt := mustParse(t, mpSrc)
	res, err := Run(tt, testOptions("all"))
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Failure(); f != nil {
		t.Fatalf("mp failed: %v", f)
	}
	if len(res.Modes) != 3 || res.MCStates == 0 {
		t.Fatalf("modes = %v, states = %d", res.Modes, res.MCStates)
	}
	// The checker is exhaustive: exactly the three coherent outcomes, the
	// forbidden stale read (r0=1, r1=0) absent.
	want := []string{
		"r0=0 r1=0 | x=1 y=1",
		"r0=0 r1=1 | x=1 y=1",
		"r0=1 r1=1 | x=1 y=1",
	}
	got := tt.SortedKeys(res.MC)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("mc outcomes = %v, want %v", got, want)
	}
	// Sampling substrates stay within the reference set.
	for name, set := range map[string]map[string]Outcome{"sim": res.Sim, "fuzz": res.Fuzz} {
		if len(set) == 0 {
			t.Errorf("%s produced no outcomes", name)
		}
		if extra := res.ExtraVsMC(set); len(extra) > 0 {
			t.Errorf("%s reached outcomes mc did not: %v", name, extra)
		}
	}
	// With yield jitter the samplers should see real interleaving variety.
	if len(res.Sim) < 2 {
		t.Errorf("sim sampled only %v", tt.SortedKeys(res.Sim))
	}
}

func TestRunForbiddenReachable(t *testing.T) {
	// Forbidding a genuinely reachable outcome must fail in every
	// substrate, with replayable counterexamples on the mc and fuzz sides.
	src := strings.Replace(mpSrc, "forbid stale: r0=1 & r1=0", "forbid fresh2: r0=1 & r1=1", 1)
	src = strings.Replace(src, "allow fresh: r0=1 & r1=1", "", 1)
	tt := mustParse(t, src)
	res, err := Run(tt, testOptions("all"))
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]*Failure{}
	for _, f := range res.Failures {
		if byMode[f.Mode] == nil {
			byMode[f.Mode] = f
		}
	}
	mcf := byMode["mc"]
	if mcf == nil || mcf.Class != "forbidden:fresh2" {
		t.Fatalf("mc failure = %+v", mcf)
	}
	if mcf.MCViolation == nil || len(mcf.MCViolation.Steps) == 0 {
		t.Error("mc counterexample carries no steps")
	}
	if !strings.Contains(mcf.Msg, "replay-confirmed") {
		t.Errorf("mc failure not replay-confirmed: %s", mcf.Msg)
	}

	ff := byMode["fuzz"]
	if ff == nil || ff.Class != "forbidden:fresh2" {
		t.Fatalf("fuzz failure = %+v", ff)
	}
	if ff.Schedule == nil || ff.Schedule.Litmus != tt.Name || ff.Schedule.Expect != ff.Class {
		t.Fatalf("fuzz schedule = %+v", ff.Schedule)
	}
	// The shrunk reproducer must still reproduce through the public replay
	// path (the -replay round trip, minus the disk).
	class, desc, err := Replay(tt, ff.Schedule, testOptions(""))
	if err != nil {
		t.Fatal(err)
	}
	if class != ff.Class {
		t.Errorf("replayed class = %q (%s), want %q", class, desc, ff.Class)
	}
}

func TestRunAllowUnreachable(t *testing.T) {
	src := strings.Replace(mpSrc, "allow fresh: r0=1 & r1=1", "allow never: r0=9", 1)
	tt := mustParse(t, src)
	res, err := Run(tt, testOptions("mc"))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Failure()
	if f == nil || f.Mode != "mc" || f.Class != "error" || !strings.Contains(f.Msg, `"never" is unreachable`) {
		t.Fatalf("failure = %+v", f)
	}
}

func TestRunExpectViolated(t *testing.T) {
	src := strings.Replace(mpSrc, "expect data: x=1", "expect done: r0=1", 1)
	tt := mustParse(t, src)
	res, err := Run(tt, testOptions("mc"))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Failure()
	if f == nil || f.Class != "error" || !strings.Contains(f.Msg, `expected condition "done" violated`) {
		t.Fatalf("failure = %+v", f)
	}
}

func TestReplayRejectsMismatch(t *testing.T) {
	tt := mustParse(t, mpSrc)
	s := &fuzz.Schedule{Proto: tt.Proto, Nodes: tt.Nodes, Blocks: len(tt.Blocks), Litmus: "other"}
	if _, _, err := Replay(tt, s, Options{}); err == nil || !strings.Contains(err.Error(), "drives test") {
		t.Errorf("mismatched test name accepted: %v", err)
	}
	s = &fuzz.Schedule{Proto: tt.Proto, Nodes: 4, Blocks: len(tt.Blocks), Litmus: tt.Name}
	if _, _, err := Replay(tt, s, Options{}); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Errorf("mismatched shape accepted: %v", err)
	}
}

func TestReportDeterministic(t *testing.T) {
	tt := mustParse(t, mpSrc)
	res, err := Run(tt, testOptions("mc"))
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport("corpus", "mc", []*Result{res})
	a, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewReport("corpus", "mc", []*Result{res}).Encode()
	if string(a) != string(b) {
		t.Error("report encoding is not deterministic")
	}
	for _, want := range []string{`"tool": "teapot-litmus"`, `"verdict": "ok"`, `"r0=0 r1=0 | x=1 y=1"`} {
		if !strings.Contains(string(a), want) {
			t.Errorf("report missing %s:\n%s", want, a)
		}
	}
}

package stache

import (
	"fmt"

	"teapot/internal/core"
	"teapot/internal/runtime"
	"teapot/internal/vm"
)

// Compile compiles the Stache protocol with the given optimization level.
func Compile(optimize bool) (*core.Artifacts, error) {
	return compileSource("stache.tea", Source, optimize)
}

func compileSource(name, src string, optimize bool) (*core.Artifacts, error) {
	return core.Compile(core.Config{
		Name:       name,
		Source:     src,
		Optimize:   optimize,
		HomeStart:  "Home_Idle",
		CacheStart: "Cache_Inv",
	})
}

// MustCompile panics on compile errors (the embedded source is tested).
func MustCompile(optimize bool) *core.Artifacts {
	a, err := Compile(optimize)
	if err != nil {
		panic(err)
	}
	return a
}

// Support implements the StacheSupport module: the sharer set is a bitmask
// kept in the per-block protocol variable "sharers", so it participates in
// model-checker state snapshots automatically.
type Support struct {
	sharersSlot int
	invReq      int // PUT_NO_DATA_REQ message index
}

// NewSupport builds the support module for a compiled Stache protocol (or
// any extension of it that keeps the same variable and message names).
func NewSupport(p *runtime.Protocol) (*Support, error) {
	s := &Support{sharersSlot: -1, invReq: p.MsgIndex("PUT_NO_DATA_REQ")}
	for _, v := range p.Sema().ProtVars {
		if v.Name == "sharers" {
			s.sharersSlot = v.Index
		}
	}
	if s.sharersSlot < 0 {
		return nil, fmt.Errorf("stache support: protocol lacks a 'sharers' variable")
	}
	if s.invReq < 0 {
		return nil, fmt.Errorf("stache support: protocol lacks PUT_NO_DATA_REQ")
	}
	return s, nil
}

// MustSupport panics on error.
func MustSupport(p *runtime.Protocol) *Support {
	s, err := NewSupport(p)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Support) mask(ctx *runtime.Ctx) int64 {
	return ctx.Block.Vars[s.sharersSlot].Int
}

func (s *Support) setMask(ctx *runtime.Ctx, m int64) {
	ctx.Block.Vars[s.sharersSlot] = vm.IntVal(m)
}

// Call implements runtime.Support.
func (s *Support) Call(ctx *runtime.Ctx, name string, args []*vm.Value) (vm.Value, error) {
	switch name {
	case "AddSharer":
		n := args[1].Int
		s.setMask(ctx, s.mask(ctx)|1<<uint(n))
		return vm.Value{}, nil
	case "RemoveSharer":
		n := args[1].Int
		s.setMask(ctx, s.mask(ctx)&^(1<<uint(n)))
		return vm.Value{}, nil
	case "ClearSharers":
		s.setMask(ctx, 0)
		return vm.Value{}, nil
	case "IsSharer":
		n := args[1].Int
		return vm.BoolVal(s.mask(ctx)&(1<<uint(n)) != 0), nil
	case "NumSharers":
		m := s.mask(ctx)
		count := int64(0)
		for ; m != 0; m &= m - 1 {
			count++
		}
		return vm.IntVal(count), nil
	case "InvalidateSharers":
		excl := args[1].Int
		id := int(args[2].Int)
		m := s.mask(ctx)
		count := int64(0)
		for n := 0; n < 64; n++ {
			if m&(1<<uint(n)) == 0 || int64(n) == excl {
				continue
			}
			ctx.Engine.Sends++
			ctx.Engine.Machine.Send(ctx.Engine.Node, n, &runtime.Message{
				Tag: s.invReq,
				ID:  id,
				Src: ctx.Engine.Node,
			})
			count++
		}
		return vm.IntVal(count), nil
	}
	return vm.Value{}, fmt.Errorf("stache support: unknown routine %q", name)
}

// ModConst implements runtime.Support (Stache declares no module constants).
func (s *Support) ModConst(ctx *runtime.Ctx, name string) vm.Value {
	return vm.Value{}
}

// NodeMaskSlots implements runtime.SymmetryDecl: 'sharers' is a node
// bitmask (bit n ↦ node n) and must be re-indexed under node permutation.
func (s *Support) NodeMaskSlots() []int { return []int{s.sharersSlot} }

// EquivariantRoutines implements runtime.SymmetryDecl. Every routine
// either tests/sets the argument node's bit in the sharer mask or
// multicasts to the mask's members — effects that commute with node and
// block permutation once the mask is re-indexed.
func (s *Support) EquivariantRoutines() []string {
	return []string{"AddSharer", "RemoveSharer", "ClearSharers", "IsSharer", "NumSharers", "InvalidateSharers"}
}

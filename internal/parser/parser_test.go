package parser

import (
	"strings"
	"testing"

	"teapot/internal/ast"
	"teapot/internal/token"
)

// figure7 is (lightly normalized) the paper's Figure 7/8 Stache fragment.
const figure7 = `
module StacheSupport begin
  type INFO;
  type ACCESS;
  const Blk_Invalidate : ACCESS;
  const Blk_Upgrade_RW : ACCESS;
  procedure Send(dst : NODE; tag : MSG; id : ID);
  procedure SetState(var info : INFO; s : STATE);
  procedure AccessChange(id : ID; a : ACCESS);
  procedure WakeUp(id : ID);
  procedure Enqueue(tag : MSG; id : ID; var info : INFO; home : NODE);
  procedure RecvData(id : ID; a : ACCESS);
  procedure Error(fmt : string; arg : string);
  function Msg_To_Str(tag : MSG) : string;
end;

protocol Stache begin
  state Cache_ReadOnly();
  state Cache_RO_To_RW(C : CONT) transient;
  state Cache_Inv();
  state Cache_RW();
  message WR_RO_FAULT;
  message PUT_NO_DATA_REQ;
  message PUT_NO_DATA_RESP;
  message UPGRADE_REQ;
  message UPGRADE_ACK;
  message GET_RW_RESP;
end;

State Stache.Cache_ReadOnly{ }
Begin
  Message WR_RO_FAULT (id: ID; Var info: INFO; home: NODE)
  Begin
    Send(home, UPGRADE_REQ, id);
    Suspend(L, Cache_RO_To_RW{L});
    WakeUp(id);
  End;
  Message PUT_NO_DATA_REQ (id: ID; Var info: INFO; home: NODE)
  Begin
    Send(home, PUT_NO_DATA_RESP, id);
    SetState(info, Cache_Inv{});
    AccessChange(id, Blk_Invalidate);
  End;
  Message DEFAULT (id: ID; Var info: INFO; home: NODE)
  Begin
    Error("Invalid msg %s to Cache_RO", Msg_To_Str(MessageTag));
  End;
End;

State Stache.Cache_RO_To_RW{C : CONT}
Begin
  Message UPGRADE_ACK (id: ID; Var info: INFO; home: NODE)
  Begin
    SetState(info, Cache_RW{});
    AccessChange(id, Blk_Upgrade_RW);
    Resume(C);
  End;
  Message GET_RW_RESP (id: ID; Var info: INFO; home: NODE)
  Begin
    RecvData(id, Blk_Upgrade_RW);
    SetState(info, Cache_RW{});
    Resume(C);
  End;
  Message DEFAULT (id: ID; Var info: INFO; home: NODE)
  Begin
    Enqueue(MessageTag, id, info, home);
  End;
End;
`

func TestParseFigure7(t *testing.T) {
	prog, err := Parse("fig7.tea", figure7)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if len(prog.Modules) != 1 {
		t.Fatalf("modules = %d, want 1", len(prog.Modules))
	}
	if got := len(prog.Modules[0].Decls); got != 12 {
		t.Errorf("module decls = %d, want 12", got)
	}
	if prog.Protocol == nil || prog.Protocol.Name.Name != "Stache" {
		t.Fatalf("protocol = %v", prog.Protocol)
	}
	if len(prog.States) != 2 {
		t.Fatalf("states = %d, want 2", len(prog.States))
	}
	ro := prog.States[0]
	if ro.Proto.Name != "Stache" || ro.Name.Name != "Cache_ReadOnly" {
		t.Errorf("state 0 = %s.%s", ro.Proto, ro.Name)
	}
	if len(ro.Handlers) != 3 {
		t.Fatalf("Cache_ReadOnly handlers = %d, want 3", len(ro.Handlers))
	}
	if !ro.Handlers[2].IsDefault() {
		t.Errorf("handler 2 should be DEFAULT, got %s", ro.Handlers[2].Name)
	}
	// WR_RO_FAULT: Send; Suspend; WakeUp.
	h := ro.Handlers[0]
	if len(h.Body) != 3 {
		t.Fatalf("WR_RO_FAULT body = %d stmts, want 3", len(h.Body))
	}
	sus, ok := h.Body[1].(*ast.SuspendStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T, want SuspendStmt", h.Body[1])
	}
	if sus.Cont.Name != "L" || sus.Target.Name.Name != "Cache_RO_To_RW" {
		t.Errorf("suspend = (%s, %s)", sus.Cont, sus.Target.Name)
	}
	if len(sus.Target.Args) != 1 {
		t.Errorf("suspend target args = %d, want 1", len(sus.Target.Args))
	}
	// Subroutine state has a CONT parameter.
	sub := prog.States[1]
	if len(sub.Params) != 1 || sub.Params[0].Type.Name != "CONT" {
		t.Errorf("subroutine params = %v", sub.Params)
	}
	// Resume statements present.
	var resumes int
	for _, h := range sub.Handlers {
		ast.Walk(h.Body, func(s ast.Stmt) {
			if _, ok := s.(*ast.ResumeStmt); ok {
				resumes++
			}
		})
	}
	if resumes != 2 {
		t.Errorf("resumes = %d, want 2", resumes)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
protocol P begin
  state S();
  message M;
end;
state P.S()
begin
  message M (id : ID; n : NODE; a : int)
  var x, y : int;
  begin
    x := 1;
    if (a = 1) then
      x := x + 2 * 3;
    else
      while (x < 10) do
        x := x + 1;
      end;
    endif;
    if (x >= 4 and not (y <> 0)) then
      print(x, y);
    endif;
    return;
  end;
end;
`
	prog, err := Parse("cf.tea", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	h := prog.States[0].Handlers[0]
	if len(h.Locals) != 1 || len(h.Locals[0].Names) != 2 {
		t.Fatalf("locals = %v", h.Locals)
	}
	if len(h.Body) != 4 {
		t.Fatalf("body = %d stmts, want 4", len(h.Body))
	}
	ifs, ok := h.Body[1].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", h.Body[1])
	}
	if len(ifs.Else) != 1 {
		t.Fatalf("else = %d stmts", len(ifs.Else))
	}
	if _, ok := ifs.Else[0].(*ast.WhileStmt); !ok {
		t.Errorf("else[0] = %T, want WhileStmt", ifs.Else[0])
	}
	// Precedence: x + 2 * 3 parses as x + (2*3).
	as := ifs.Then[0].(*ast.AssignStmt)
	bin := as.RHS.(*ast.BinExpr)
	if bin.Op != token.PLUS {
		t.Errorf("top op = %v, want +", bin.Op)
	}
	if inner, ok := bin.Y.(*ast.BinExpr); !ok || inner.Op != token.STAR {
		t.Errorf("rhs = %s", ast.ExprString(bin.Y))
	}
}

func TestExitIsReturn(t *testing.T) {
	src := `
protocol P begin state S(); message M; end;
state P.S() begin
  message M (id : ID) begin
    exit;
  end;
end;
`
	prog, err := Parse("exit.tea", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if _, ok := prog.States[0].Handlers[0].Body[0].(*ast.ReturnStmt); !ok {
		t.Errorf("exit did not parse as return: %T", prog.States[0].Handlers[0].Body[0])
	}
}

func TestSuspendBareTarget(t *testing.T) {
	src := `
protocol P begin state S(); state W(C : CONT) transient; message M; end;
state P.S() begin
  message M (id : ID) begin
    suspend(L, W);
  end;
end;
state P.W(C : CONT) begin
  message M (id : ID) begin resume(C); end;
end;
`
	prog, err := Parse("bare.tea", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	sus := prog.States[0].Handlers[0].Body[0].(*ast.SuspendStmt)
	if sus.Target.Name.Name != "W" || len(sus.Target.Args) != 0 {
		t.Errorf("suspend target = %s{%d args}", sus.Target.Name, len(sus.Target.Args))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing protocol", `state P.S() begin end;`, "expected protocol"},
		{"bad stmt", `protocol P begin end; state P.S() begin message M() begin 42; end; end;`, "expected statement"},
		{"suspend bad target", `protocol P begin end; state P.S() begin message M() begin suspend(L, 3+4); end; end;`, "suspend target"},
		{"missing semicolon", `protocol P begin end; state P.S() begin message M() begin x := 1 y := 2; end; end;`, `expected ";"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse("e.tea", c.src)
			if err == nil {
				t.Fatalf("no error for %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err.Error(), c.want)
			}
		})
	}
}

// TestPrintRoundTrip: parse → print → parse yields an identical printed form
// (fixed point of the formatter).
func TestPrintRoundTrip(t *testing.T) {
	for _, src := range []string{figure7} {
		p1, err := Parse("rt1.tea", src)
		if err != nil {
			t.Fatalf("parse 1: %v", err)
		}
		out1 := ast.Print(p1)
		p2, err := Parse("rt2.tea", out1)
		if err != nil {
			t.Fatalf("parse 2: %v\nsource:\n%s", err, out1)
		}
		out2 := ast.Print(p2)
		if out1 != out2 {
			t.Errorf("print not a fixed point:\n--- first\n%s\n--- second\n%s", out1, out2)
		}
	}
}

func TestParseEmptyProtocol(t *testing.T) {
	prog, err := Parse("empty.tea", "protocol Nil begin end;")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if prog.Protocol.Name.Name != "Nil" || len(prog.States) != 0 {
		t.Errorf("prog = %+v", prog)
	}
}

func TestStateExprInCall(t *testing.T) {
	src := `
protocol P begin state S(); state T(); message M; end;
state P.S() begin
  message M (id : ID; var info : INFO) begin
    SetState(info, T{});
  end;
end;
`
	prog, err := Parse("se.tea", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	call := prog.States[0].Handlers[0].Body[0].(*ast.CallStmt).Call
	if len(call.Args) != 2 {
		t.Fatalf("args = %d", len(call.Args))
	}
	if se, ok := call.Args[1].(*ast.StateExpr); !ok || se.Name.Name != "T" {
		t.Errorf("arg 1 = %s", ast.ExprString(call.Args[1]))
	}
}

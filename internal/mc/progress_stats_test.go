package mc_test

import (
	"testing"

	"teapot/internal/mc"
	"teapot/internal/netmodel"
)

// progressTrace captures every layer-barrier snapshot with the
// nondeterministic field (Elapsed) zeroed, so whole traces compare with ==.
func progressTrace(t *testing.T, cfg mc.Config, workers int) ([]mc.ProgressInfo, *mc.Result) {
	t.Helper()
	var snaps []mc.ProgressInfo
	cfg.Workers = workers
	cfg.Progress = func(p mc.ProgressInfo) {
		p.Elapsed = 0
		snaps = append(snaps, p)
	}
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatalf("mc (workers=%d): %v", workers, err)
	}
	return snaps, res
}

// TestProgressStatsDeterminism: every ProgressInfo field except Elapsed is
// deterministic for any worker count — depth sequence, frontier sizes,
// visited-set bytes, shard balance, and symmetry group — under fault
// budgets and symmetry reduction alike.
func TestProgressStatsDeterminism(t *testing.T) {
	cfgs := map[string]func() mc.Config{
		"stache-ft-faults": func() mc.Config {
			return stacheFTConfig(t, 2, 1, netmodel.Model{MaxDrops: 1, MaxDups: 1})
		},
		"stache-symmetry": func() mc.Config {
			cfg := stacheConfig(t, 3, 1, 1)
			cfg.Symmetry = mc.SymmetryOn
			return cfg
		},
	}
	for name, mk := range cfgs {
		t.Run(name, func(t *testing.T) {
			ref, refRes := progressTrace(t, mk(), 1)
			if len(ref) == 0 {
				t.Fatal("no progress snapshots")
			}
			for _, workers := range []int{2, 4} {
				got, _ := progressTrace(t, mk(), workers)
				if len(got) != len(ref) {
					t.Fatalf("workers=%d: %d snapshots, want %d", workers, len(got), len(ref))
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Errorf("workers=%d snapshot %d:\n%+v\nwant\n%+v", workers, i, got[i], ref[i])
					}
				}
			}
			last := ref[len(ref)-1]
			// The final snapshot must agree with the result's figures.
			if last.States != refRes.States {
				t.Errorf("final snapshot states %d != result %d", last.States, refRes.States)
			}
			if int64(last.Transitions) != int64(refRes.Transitions) {
				t.Errorf("final snapshot transitions %d != result %d", last.Transitions, refRes.Transitions)
			}
			if last.SymmetryGroup != refRes.SymmetryGroup {
				t.Errorf("final snapshot symmetry group %d != result %d", last.SymmetryGroup, refRes.SymmetryGroup)
			}
			if last.ShardMin > last.ShardMax {
				t.Errorf("shard balance inverted: %d..%d", last.ShardMin, last.ShardMax)
			}
			if last.ShardMax <= 0 {
				t.Errorf("no shard ever committed a state: %d..%d", last.ShardMin, last.ShardMax)
			}
		})
	}
}

// TestProgressPeakFrontier: the result's PeakFrontier must equal the
// largest frontier any snapshot reported — the figure the run manifest
// records as peak per-layer memory.
func TestProgressPeakFrontier(t *testing.T) {
	snaps, res := progressTrace(t, stacheFTConfig(t, 2, 1, netmodel.Model{MaxDrops: 1}), 2)
	peak := 0
	for _, p := range snaps {
		if p.Frontier > peak {
			peak = p.Frontier
		}
	}
	if res.PeakFrontier != peak {
		t.Errorf("Result.PeakFrontier = %d, snapshots peak at %d", res.PeakFrontier, peak)
	}
	if peak == 0 {
		t.Error("peak frontier never rose above zero")
	}
}

// Package lcm implements the LCM protocol (Larus, Richards & Viswanathan,
// ASPLOS '94) in Teapot, plus the three variants §6 of the Teapot paper
// reports building "easily" once the base protocol existed: LCM-Update
// (eagerly pushes reconciled data to consumers at the end of a phase),
// LCM-MCC (serves phase copies from other copy-holders), and LCM-Both.
//
// LCM exploits controlled inconsistency: inside an LCM phase every node
// may obtain a private, writable copy of a block that is *not* kept
// coherent; at the end of the phase each node reconciles its modifications
// with the home node (PUT_ACCUM), restoring consistency. Outside phases
// the protocol behaves exactly like Stache, so the source here is composed
// from the Stache source text — the same "most new protocols will be
// variants of existing ones" workflow the paper advocates.
//
// Phase bookkeeping is lazy, per the application's weak-ordering
// discipline (barriers around phases): a node entering a phase notifies
// the home only if it holds a copy (its BEGIN_LCM doubles as the eviction
// notice, and an owner reconciles with PUT_ACCUM first — Figure 11's
// FlushCopy/EnterLCM pair); the home enters phase mode on the first
// GET_LCM_REQ and leaves it when every granted copy has been reconciled.
//
// The composition reproduces Figure 11 literally: a home node in Home_Excl
// that receives PUT_ACCUM acknowledges it and suspends into
// Home_Await_BEGIN_LCM; a GET_RO_REQ arriving meanwhile is queued; the
// BEGIN_LCM resumes the suspended transition.
package lcm

import (
	"fmt"
	"strings"

	"teapot/internal/protocols/stache"
)

// Variant selects an LCM flavor.
type Variant int

// LCM variants.
const (
	Base Variant = iota
	Update
	MCC
	Both
)

func (v Variant) String() string {
	switch v {
	case Base:
		return "lcm"
	case Update:
		return "lcm-update"
	case MCC:
		return "lcm-mcc"
	case Both:
		return "lcm-both"
	}
	return "lcm-?"
}

// lcmDecls extends the protocol declaration block.
const lcmDecls = `
  -- LCM phase bookkeeping.
  var copies : int;    -- private copies granted and not yet reconciled
  var holder : NODE;   -- a recent copy-holder (MCC forwarding)

  -- LCM phase states.
  state Cache_LCM_Idle();
  state Cache_LCM_Dirty();
  state Cache_LCM_Wait(C : CONT) transient;
  state Cache_AwaitAccumAck(C : CONT) transient;
  state Home_LCM();
  state Home_Await_BEGIN_LCM(C : CONT) transient;

  -- LCM events and messages.
  message BEGIN_LCM_EV;
  message END_LCM_EV;
  message BEGIN_LCM;
  message GET_LCM_REQ;
  message GET_LCM_RESP;
  message PUT_ACCUM;
  message PUT_ACCUM_ACK;
  message FWD_LCM_REQ;
  message FWD_BOUNCE;
  message LCM_UPDATE;
`

// phase-entry handlers inserted into the Stache cache states.
const cacheInvEntry = `
  -- LCM phase entry with no local copy is purely local: the home learns
  -- of our participation lazily, from our first GET_LCM_REQ.
  message BEGIN_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    SetState(info, Cache_LCM_Idle{});
  end;

  -- An eager update for a consumer of the previous phase: install a
  -- read-only copy.
  message LCM_UPDATE (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    SetState(info, Cache_RO{});
  end;

  -- A recall that crossed our phase-entry reconciliation and arrived
  -- after the whole phase ended: the flush already returned the data.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

const cacheROEntry = `
  -- LCM phase entry while holding a clean shared copy: the BEGIN_LCM
  -- doubles as the eviction notice. Wait until the home confirms (by
  -- processing it and any racing invalidation) before using phase copies.
  message BEGIN_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), BEGIN_LCM, id);
    AccessChange(id, Blk_Invalidate);
    SetState(info, Cache_LCM_Idle{});
  end;
`

const cacheRWEntry = `
  -- LCM phase entry while owning the block: reconcile first (Figure 11's
  -- FlushCopy), then announce the phase entry; the home acknowledges the
  -- flush once it has installed the data.
  message BEGIN_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_ACCUM, id);
    Send(HomeNode(id), BEGIN_LCM, id);
    AccessChange(id, Blk_Invalidate);
    Suspend(L, Cache_AwaitAccumAck{L});
    SetState(info, Cache_LCM_Idle{});
  end;
`

// home-side handlers inserted into the Stache home states.
const homeIdleEntry = `
  -- First phase request reaching an idle home: enter phase mode.
  message GET_LCM_REQ (id : ID; var info : INFO; src : NODE)
  begin
    copies := copies + 1;
    RecordConsumer(info, src);
    holder := src;
    SendData(src, GET_LCM_RESP, id);
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_LCM{});
  end;

  -- A reconciliation whose copy was granted in a phase that already
  -- drained here (possible only under reordering): merge it late.
  message PUT_ACCUM (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadWrite);
    Merge(info, src);
  end;

  -- A stale eviction-style phase entry from a node we no longer track.
  message BEGIN_LCM (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  -- The home processor's own phase entry needs no protocol action: it
  -- reads and writes the master copy directly.
  message BEGIN_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message END_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

const homeRSEntry = `
  -- A phase request while stale read copies linger (their holders may not
  -- participate in this phase at all): invalidate them, then serve the
  -- private copy.
  message GET_LCM_REQ (id : ID; var info : INFO; src : NODE)
  var pending : int;
  begin
    pending := InvalidateSharers(info, src, id);
    while (pending > 0) do
      Suspend(L, Home_AwaitInvAcks{L});
      pending := pending - 1;
    end;
    ClearSharers(info);
    copies := copies + 1;
    RecordConsumer(info, src);
    holder := src;
    SendData(src, GET_LCM_RESP, id);
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_LCM{});
  end;

  -- A sharer enters the phase: its vote is its eviction.
  message BEGIN_LCM (id : ID; var info : INFO; src : NODE)
  begin
    RemoveSharer(info, src);
    if (NumSharers(info) = 0) then
      AccessChange(id, Blk_ReadWrite);
      SetState(info, Home_Idle{});
    else
      SetState(info, Home_RS{});
    endif;
  end;

  message BEGIN_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message END_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

const homeExclEntry = `
  -- Figure 11: the owner reconciles its copy on phase entry. Acknowledge,
  -- then wait for the (possibly queued-behind) BEGIN_LCM; a GET_RO_REQ or
  -- other message arriving meanwhile is queued by Home_Await_BEGIN_LCM.
  message PUT_ACCUM (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    Merge(info, src);
    Send(src, PUT_ACCUM_ACK, id);
    Suspend(L, Home_Await_BEGIN_LCM{L});
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_Idle{});
  end;

  -- A phase request while a (possibly non-participating) owner holds the
  -- block: recall it, then serve the private copy. If the owner is
  -- entering the phase itself, its PUT_ACCUM satisfies the recall (see
  -- Home_AwaitPutData).
  message GET_LCM_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(owner, PUT_DATA_REQ, id);
    Suspend(L, Home_AwaitPutData{L});
    copies := copies + 1;
    RecordConsumer(info, src);
    holder := src;
    SendData(src, GET_LCM_RESP, id);
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_LCM{});
  end;

  -- From the owner, a phase entry that overtook its own reconciliation:
  -- hold it for the PUT_ACCUM (whose handler suspends awaiting exactly
  -- this message). From anyone else it is stale: the sender was
  -- invalidated mid-entry and its acknowledgement already removed it
  -- from the sharer set.
  message BEGIN_LCM (id : ID; var info : INFO; src : NODE)
  begin
    if (src = owner) then
      Enqueue(MessageTag, id, info, src);
    else
      Drop();
    endif;
  end;

  message BEGIN_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message END_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

// staleRecallEntry drops a recall that a phase-entry reconciliation
// already satisfied (it can chase the node into any post-phase state on a
// reordering network).
const staleRecallEntry = `
  -- LCM: a stale recall, already satisfied by a phase-entry
  -- reconciliation that crossed it in the network.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

// homeExclGiveBack lets the home accept a voluntary data return from an
// owner that answered a stale recall with real data (reordering can hand
// the stale recall to a re-acquired owner, which cannot tell it is stale).
const homeExclGiveBack = `
  message PUT_DATA_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_Idle{});
  end;
`

// awaitPutDataEntry handles the Figure-11 flush crossing a recall.
const awaitPutDataEntry = `
  -- The owner reconciled instead of answering the recall (it is entering
  -- an LCM phase): the reconciliation returns the data, so it satisfies
  -- the recall; acknowledge the flush and continue.
  message PUT_ACCUM (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    Merge(info, src);
    Send(src, PUT_ACCUM_ACK, id);
    Resume(C);
  end;
`

// lcmStates are the new state bodies. The GET_LCM_REQ handler in Home_LCM
// and the phase-completion code differ per variant (markers below).
const lcmStates = `
----------------------------------------------------------------------
-- LCM phase states
----------------------------------------------------------------------

state LCM.Cache_LCM_Idle()
begin
  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_LCM_REQ, id);
    Suspend(L, Cache_LCM_Wait{L});
    WakeUp(id);
  end;

  message WR_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_LCM_REQ, id);
    Suspend(L, Cache_LCM_Wait{L});
    WakeUp(id);
  end;

  -- Never fetched a copy: leaving the phase is purely local.
  message END_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    SetState(info, Cache_Inv{});
  end;

  -- Idempotent re-entry (the application may announce a block twice).
  message BEGIN_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  -- An invalidation addressed to the copy we gave up on phase entry.
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  -- A recall that crossed our (already acknowledged) reconciliation.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  -- MCC forwarding aimed at a copy we no longer hold: bounce to home.
  message FWD_LCM_REQ (id : ID; var info : INFO; src : NODE; req : NODE)
  begin
    Send(HomeNode(id), FWD_BOUNCE, id, req);
  end;

  -- A stale eager update from the previous phase.
  message LCM_UPDATE (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Cache_LCM_Idle", Msg_To_Str(MessageTag));
  end;
end;

state LCM.Cache_LCM_Wait(C : CONT)
begin
  message GET_LCM_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadWrite);
    SetState(info, Cache_LCM_Dirty{});
    Resume(C);
  end;

  message FWD_LCM_REQ (id : ID; var info : INFO; src : NODE; req : NODE)
  begin
    Send(HomeNode(id), FWD_BOUNCE, id, req);
  end;

  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  -- A stale recall, already satisfied by our phase-entry reconciliation.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message LCM_UPDATE (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state LCM.Cache_LCM_Dirty()
begin
  -- Reconcile the private copy; the home counts it back in.
  message END_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_ACCUM, id);
    AccessChange(id, Blk_Invalidate);
    SetState(info, Cache_Inv{});
  end;

  -- MCC: serve a peer's request from our private copy. LCM tolerates the
  -- inconsistency by construction.
  message FWD_LCM_REQ (id : ID; var info : INFO; src : NODE; req : NODE)
  begin
    SendData(req, GET_LCM_RESP, id);
  end;

  -- A stale recall, already satisfied by our phase-entry reconciliation.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message LCM_UPDATE (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Cache_LCM_Dirty", Msg_To_Str(MessageTag));
  end;
end;

-- An owner's phase-entry flush awaiting its acknowledgement (Figure 11's
-- cache side).
state LCM.Cache_AwaitAccumAck(C : CONT)
begin
  message PUT_ACCUM_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Resume(C);
  end;

  -- A recall that crossed our reconciliation: the flush already returned
  -- the data.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state LCM.Home_LCM()
begin
  message GET_LCM_REQ (id : ID; var info : INFO; src : NODE)
  begin
--GET_LCM_BODY--
  end;

  message FWD_BOUNCE (id : ID; var info : INFO; src : NODE; req : NODE)
  begin
    SendData(req, GET_LCM_RESP, id);
    holder := req;
  end;

  -- A copy comes back reconciled; the last one ends the phase here.
  message PUT_ACCUM (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadWrite);
    Merge(info, src);
    copies := copies - 1;
    if (copies = 0) then
--PHASE_END_BODY--
    endif;
  end;

  -- Next-phase activity while this phase drains: hold it.
  message GET_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;

  message GET_RW_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;

  message UPGRADE_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;

  message BEGIN_LCM (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message EVICT_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(src, EVICT_RO_ACK, id);
  end;

  message BEGIN_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message END_LCM_EV (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Home_LCM", Msg_To_Str(MessageTag));
  end;
end;

-- Figure 11's home side: the entry flush was acknowledged; the BEGIN_LCM
-- chasing it completes the transition, and anything else waits.
state LCM.Home_Await_BEGIN_LCM(C : CONT)
begin
  message BEGIN_LCM (id : ID; var info : INFO; src : NODE)
  begin
    Resume(C);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;
`

// Per-variant bodies for Home_LCM.GET_LCM_REQ.
const getLCMPlain = `    copies := copies + 1;
    RecordConsumer(info, src);
    holder := src;
    SendData(src, GET_LCM_RESP, id);`

const getLCMMCC = `    copies := copies + 1;
    RecordConsumer(info, src);
    if (HasHolder(info) and not (holder = src)) then
      Send(holder, FWD_LCM_REQ, id, src);
    else
      SendData(src, GET_LCM_RESP, id);
      holder := src;
    endif;`

// Per-variant phase-completion bodies (inside "if copies = 0 then ...").
const phaseEndPlain = `      ClearConsumers(info);
      ClearHolder(info);
      SetState(info, Home_Idle{});`

const phaseEndUpdate = `      PushUpdates(info, id);
      ClearHolder(info);
      if (NumSharers(info) = 0) then
        SetState(info, Home_Idle{});
      else
        AccessChange(id, Blk_ReadOnly);
        SetState(info, Home_RS{});
      endif;`

// supportDecls declares the LCM support module.
const supportDecls = `
module LCMSupport begin
  -- Merge reconciles a PUT_ACCUM into the master copy.
  procedure Merge(var info : INFO; src : NODE);
  -- Consumer tracking for LCM-Update (reuses the sharer bitmask).
  procedure RecordConsumer(var info : INFO; n : NODE);
  procedure ClearConsumers(var info : INFO);
  -- PushUpdates sends LCM_UPDATE with the reconciled data to every
  -- consumer and records them as sharers.
  procedure PushUpdates(var info : INFO; id : ID);
  -- MCC copy-holder tracking.
  function HasHolder(info : INFO) : bool;
  procedure ClearHolder(var info : INFO);
end;
`

// Source assembles the Teapot source for a variant.
func Source(v Variant) string {
	src := stache.Source
	// Rename the protocol.
	src = mustReplace(src, "protocol Stache begin", "protocol LCM begin")
	src = strings.ReplaceAll(src, "state Stache.", "state LCM.")
	// Prepend the support module.
	src = supportDecls + src
	// Extend the declaration block.
	src = mustReplace(src, "  message EVICT_RO_ACK;\nend;", "  message EVICT_RO_ACK;\n"+lcmDecls+"end;")
	// Insert phase-entry handlers into the Stache states.
	src = insertHandlers(src, "Cache_Inv", cacheInvEntry)
	src = insertHandlers(src, "Cache_RO", cacheROEntry)
	src = insertHandlers(src, "Cache_RW", cacheRWEntry)
	src = insertHandlers(src, "Home_Idle", homeIdleEntry)
	src = insertHandlers(src, "Home_RS", homeRSEntry)
	src = insertHandlers(src, "Home_Excl", homeExclEntry)
	src = insertHandlers(src, "Home_AwaitPutData", awaitPutDataEntry)
	src = insertHandlers(src, "Home_Excl", homeExclGiveBack)
	for _, st := range []string{"Cache_RO", "Cache_Inv_To_RO", "Cache_Inv_To_RW", "Cache_RO_To_RW"} {
		src = insertHandlers(src, st, staleRecallEntry)
	}
	// Append the LCM states with variant-specific bodies.
	states := lcmStates
	switch v {
	case Base:
		states = mustReplace(states, "--GET_LCM_BODY--", getLCMPlain)
		states = strings.ReplaceAll(states, "--PHASE_END_BODY--", phaseEndPlain)
	case Update:
		states = mustReplace(states, "--GET_LCM_BODY--", getLCMPlain)
		states = strings.ReplaceAll(states, "--PHASE_END_BODY--", phaseEndUpdate)
	case MCC:
		states = mustReplace(states, "--GET_LCM_BODY--", getLCMMCC)
		states = strings.ReplaceAll(states, "--PHASE_END_BODY--", phaseEndPlain)
	case Both:
		states = mustReplace(states, "--GET_LCM_BODY--", getLCMMCC)
		states = strings.ReplaceAll(states, "--PHASE_END_BODY--", phaseEndUpdate)
	}
	return src + states
}

// insertHandlers adds handler text at the top of the named state's body.
func insertHandlers(src, state, handlers string) string {
	marker := "state LCM." + state + "("
	i := strings.Index(src, marker)
	if i < 0 {
		panic(fmt.Sprintf("lcm: state %s not found", state))
	}
	j := strings.Index(src[i:], "begin")
	if j < 0 {
		panic(fmt.Sprintf("lcm: begin of state %s not found", state))
	}
	at := i + j + len("begin")
	return src[:at] + "\n" + handlers + src[at:]
}

func mustReplace(src, old, new string) string {
	out := strings.Replace(src, old, new, 1)
	if out == src {
		panic(fmt.Sprintf("lcm: marker %q not found", old))
	}
	return out
}

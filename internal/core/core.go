// Package core is the public facade of the Teapot system: it compiles a
// protocol specification into an executable protocol (run by
// internal/runtime on a simulated machine, or explored by internal/mc) and
// exposes the compilation artifacts the other backends (Murphi text, Go
// source, DOT state machines) consume.
//
// A typical use:
//
//	proto, err := core.Compile(core.Config{
//		Name:       "stache.tea",
//		Source:     src,
//		Optimize:   true,
//		HomeStart:  "Home_Idle",
//		CacheStart: "Cache_Inv",
//	})
//
// Vet runs the static protocol analyses over the compiled protocol —
// cheaper than model checking and able to name the offending state and
// message directly:
//
//	for _, d := range core.Vet(proto.Protocol) { fmt.Println(d) }
package core

import (
	"fmt"

	"teapot/internal/analysis"
	"teapot/internal/ast"
	"teapot/internal/cont"
	"teapot/internal/ir"
	"teapot/internal/lower"
	"teapot/internal/parser"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/source"
)

// Config controls a compilation.
type Config struct {
	Name   string // source name for diagnostics
	Source string // Teapot program text

	// Optimize enables the constant-continuation optimization (the
	// paper's "Teapot Optimized" configuration). Live-variable analysis
	// runs in both configurations, as in the paper.
	Optimize bool
	// NoLiveness disables live-variable analysis (an ablation mode the
	// paper does not measure; every named register is then saved).
	NoLiveness bool

	// HomeStart and CacheStart name the initial states for blocks on
	// their home node and on other nodes.
	HomeStart  string
	CacheStart string
}

// Options derives the continuation-pass options.
func (c Config) Options() cont.Options {
	return cont.Options{Liveness: !c.NoLiveness, ConstCont: c.Optimize}
}

// Artifacts bundles every compilation product.
type Artifacts struct {
	AST      *ast.Program
	Sema     *sema.Program
	IR       *ir.Program
	Protocol *runtime.Protocol
	Stats    cont.Stats
}

// Compile runs the full pipeline: parse, check, lower, continuation
// transform, and protocol assembly.
func Compile(cfg Config) (*Artifacts, error) {
	prog, err := parser.Parse(cfg.Name, cfg.Source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	sp, err := sema.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	irp := lower.Lower(sp)
	opts := cfg.Options()
	cont.Transform(irp, opts)

	p := &runtime.Protocol{IR: irp, Opts: opts}
	if cfg.HomeStart != "" {
		p.HomeStart = p.StateIndex(cfg.HomeStart)
		if p.HomeStart < 0 {
			return nil, fmt.Errorf("unknown home start state %q", cfg.HomeStart)
		}
	}
	if cfg.CacheStart != "" {
		p.CacheStart = p.StateIndex(cfg.CacheStart)
		if p.CacheStart < 0 {
			return nil, fmt.Errorf("unknown cache start state %q", cfg.CacheStart)
		}
	}
	return &Artifacts{
		AST:      prog,
		Sema:     sp,
		IR:       irp,
		Protocol: p,
		Stats:    cont.Summarize(irp),
	}, nil
}

// MustCompile is Compile for tests and embedded protocol sources that are
// known to be valid; it panics on error.
func MustCompile(cfg Config) *Artifacts {
	a, err := Compile(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Vet runs the static protocol analyses (internal/analysis) over a
// compiled protocol and returns the findings, sorted by position and
// check ID. An empty slice means the protocol is clean; findings of
// warning severity or worse indicate likely protocol bugs worth fixing
// before handing the protocol to the model checker.
func Vet(p *runtime.Protocol) []source.Diagnostic {
	return analysis.Analyze(p).Findings
}

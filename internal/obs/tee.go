package obs

// Tee fans an event stream out to several sinks (e.g. a Collector for
// rendering plus an oracle for judging). Each sink sees every event;
// SetClock is forwarded to the sinks that take a clock.
type Tee struct {
	sinks []Sink
}

// NewTee builds a tee over the non-nil sinks; returns nil if none remain
// (so the result can be compared against nil like any optional sink).
func NewTee(sinks ...Sink) *Tee {
	t := &Tee{}
	for _, s := range sinks {
		if s != nil {
			t.sinks = append(t.sinks, s)
		}
	}
	if len(t.sinks) == 0 {
		return nil
	}
	return t
}

// Emit implements Sink.
func (t *Tee) Emit(ev Event) {
	for _, s := range t.sinks {
		s.Emit(ev)
	}
}

// SetClock implements ClockSetter.
func (t *Tee) SetClock(now func() int64) {
	for _, s := range t.sinks {
		if cs, ok := s.(ClockSetter); ok {
			cs.SetClock(now)
		}
	}
}

#!/usr/bin/env bash
# Full local check: build, go vet, tests under the race detector, and a
# teapot-vet sweep over the bundled protocols (which must stay clean).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
# The parallel checker's determinism contract and the sharded visited
# table, hammered explicitly under the race detector.
go test -race -count=1 -run 'TestWorkerEquivalence|TestBuggyTraceIdenticalAcrossWorkers|TestShardedVisitedRace' ./internal/mc/
go run ./cmd/teapot-vet ./internal/protocols/...
# Observability smoke test: a traced sim run must produce a Chrome trace
# that passes the schema check, and the checker must run with live
# progress enabled.
go vet ./internal/obs/ ./scripts/tracecheck/
tmptrace="$(mktemp -t teapot-trace.XXXXXX.json)"
trap 'rm -f "$tmptrace"' EXIT
go run ./cmd/teapot-sim -workload gauss -nodes 4 -iters 2 -trace "$tmptrace" -stats >/dev/null
go run ./scripts/tracecheck "$tmptrace"
go run ./cmd/teapot-verify -protocol stache -progress=always >/dev/null

// Package cliflags holds the flag plumbing shared by the protocol-running
// drivers (teapot-verify, teapot-sim, teapot-bench), so "-proto stache-ft
// -net drop=1,dup=1 -workers 4" parses — and means — exactly the same
// thing in each of them.
package cliflags

import (
	"flag"
	"fmt"
	"strings"

	"teapot/internal/core"
	"teapot/internal/netmodel"
	"teapot/internal/protocols"
)

// Net adapts netmodel.Parse to the flag.Value interface:
//
//	-net drop=1,dup=1,reorder=2
//
// Keys: reorder, delay, drop, dup, corrupt, rate; "" and "none" mean a
// perfect network.
type Net struct {
	Model netmodel.Model
}

// String implements flag.Value.
func (n *Net) String() string {
	if n == nil {
		return ""
	}
	return n.Model.String()
}

// Set implements flag.Value.
func (n *Net) Set(s string) error {
	m, err := netmodel.Parse(s)
	if err != nil {
		return err
	}
	n.Model = m
	return nil
}

// AddNet registers the -net flag on fs.
func AddNet(fs *flag.FlagSet) *Net {
	n := &Net{}
	fs.Var(n, "net", `network fault model, e.g. "drop=1,dup=1,reorder=2" (keys: reorder, delay, drop, dup, corrupt, rate; default: perfect network)`)
	return n
}

// Run bundles the shared run-shape flags.
type Run struct {
	Proto   *string
	Nodes   *int
	Blocks  *int
	Workers *int
	Seed    *uint64
	Net     *Net
}

// AddRun registers the shared flags on fs with the given defaults.
func AddRun(fs *flag.FlagSet, defProto string, defNodes, defBlocks int) *Run {
	return &Run{
		Proto:   fs.String("proto", defProto, "bundled protocol: "+strings.Join(RunnableNames(), " | ")),
		Nodes:   fs.Int("nodes", defNodes, "number of nodes"),
		Blocks:  fs.Int("blocks", defBlocks, "number of shared blocks"),
		Workers: fs.Int("workers", 0, "model-checker BFS worker goroutines (0 = GOMAXPROCS)"),
		Seed:    fs.Uint64("seed", 1, "simulator/fuzzer RNG seed (0 = derive a stable seed from the run shape, so -seed 0 names the same run to every tool)"),
		Net:     AddNet(fs),
	}
}

// Litmus bundles the litmus-harness flags (teapot-litmus).
type Litmus struct {
	Corpus *string
	Mode   *string
	Budget *int
}

// AddLitmus registers the litmus-harness flags on fs. Mode is validated by
// ModeOK at use time (flag parsing stays declarative).
func AddLitmus(fs *flag.FlagSet, defCorpus string) *Litmus {
	return &Litmus{
		Corpus: fs.String("corpus", defCorpus, "directory of .lit litmus tests (non-recursive)"),
		Mode:   fs.String("mode", "all", "substrates to run: sim | fuzz | mc | all"),
		Budget: fs.Int("budget", 0, "model-checker state budget per test (0 = the harness default); fuzz schedule counts scale with it"),
	}
}

// ModeOK reports whether a -mode value is valid.
func (l *Litmus) ModeOK() bool {
	switch *l.Mode {
	case "sim", "fuzz", "mc", "all":
		return true
	}
	return false
}

// AddReport registers the shared -report flag on fs: the path of the
// versioned run manifest (coverage sets plus resource accounting, see
// internal/manifest) the tool writes after the run; "" writes nothing.
// Shared so "-report out.json" means the same artifact in teapot-verify,
// teapot-sim, and teapot-fuzz — that is what makes manifests diffable with
// teapot-cover.
func AddReport(fs *flag.FlagSet) *string {
	return fs.String("report", "", "write a run manifest (coverage + resource accounting) to this JSON file")
}

// Deprecated bundles the flag aliases kept for one release: -protocol for
// -proto, and -reorder for -net reorder=N.
type Deprecated struct {
	Protocol *string
	Reorder  *int
}

// AddDeprecated registers the deprecated aliases on fs.
func AddDeprecated(fs *flag.FlagSet) *Deprecated {
	return &Deprecated{
		Protocol: fs.String("protocol", "", "deprecated alias for -proto"),
		Reorder:  fs.Int("reorder", 0, "deprecated alias for -net reorder=N (the larger wins)"),
	}
}

// Apply merges the parsed aliases into the canonical flags: a non-empty
// -protocol overrides -proto, and the larger of -reorder and -net's
// reorder field wins.
func (d *Deprecated) Apply(r *Run) {
	if *d.Protocol != "" {
		*r.Proto = *d.Protocol
	}
	if *d.Reorder > r.Net.Model.Reorder {
		r.Net.Model.Reorder = *d.Reorder
	}
}

// Spec resolves the parsed flags into a runnable spec.
func (r *Run) Spec() (core.RunSpec, error) {
	spec, err := protocols.Spec(*r.Proto, *r.Nodes, *r.Blocks)
	if err != nil {
		return spec, err
	}
	spec.Net = r.Net.Model
	spec.Workers = *r.Workers
	spec.Seed = *r.Seed
	return spec, nil
}

// RunnableNames lists the bundled protocols Spec can run (the registry
// minus compile-only fixtures), in registry order. Static so that
// registering flags never compiles a protocol; a cliflags test keeps it
// in sync with protocols.Spec.
func RunnableNames() []string {
	return []string{"stache", "stache-ft", "stache-asym", "stache-buggy", "stache-ft-buggy", "lcm", "lcm-mcc", "bufwrite", "update"}
}

// BadFlag formats a consistent usage error.
func BadFlag(tool, flagName, val, want string) error {
	return fmt.Errorf("%s: -%s %q: want %s", tool, flagName, val, want)
}

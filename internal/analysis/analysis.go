// Package analysis is teapot-vet: a static protocol-analysis pass suite
// over compiled Teapot protocols that catches coherence-protocol bugs
// before the model checker runs.
//
// The paper's §7 workflow discovers protocol bugs only by exhaustive Murφ
// exploration. Many of those bugs — unhandled (state, message) pairs,
// unreachable states, continuations that suspend but can never resume,
// deferred queues that never drain, requests deferred while a peer is
// suspended awaiting the reply — are decidable statically from the IR and
// metadata that internal/sema, internal/lower, and internal/cont already
// produce. Each pass here emits structured source.Diagnostics with a
// position, a severity, and a stable check ID, and the whole report is
// deterministic: the same protocol always yields a byte-identical report
// (the repo's bit-for-bit reproducibility rule).
//
// The passes:
//
//	vet:coverage       (state, message) pairs with no handler, DEFAULT, or
//	                   explicit queue/nack/drop policy — the matrix the model
//	                   checker would otherwise discover one cell at a time
//	vet:unreachable    states no SetState/Suspend path reaches from the
//	                   configured start states
//	vet:no-exit        transient states with no outgoing transition or Resume
//	vet:cont-leak      handler paths in a subroutine state that transition
//	                   away without resuming or forwarding the continuation
//	vet:cont-stuck     subroutine states that can never resume or forward
//	                   their continuation at all
//	vet:queue-stuck    states that Enqueue but have no transitioning handler,
//	                   so the deferred queue can never drain
//	vet:defer-deadlock request messages every peer answers synchronously,
//	                   deferred by a state on the answering side (the class
//	                   of bug §7's Stache counterexample exhibits)
//	vet:dead-store     pure IR instructions whose result is never used
//	vet:unassigned     reads of registers no path ever writes
//	vet:cont-alloc     heap-allocated continuation records that save only
//	                   compile-time constants (Table 1's allocation-count
//	                   optimization, surfaced as an actionable diagnostic)
//	vet:timeout        transient states that block on a droppable message
//	                   without the explicit TIMEOUT handler the runtimes
//	                   require to arm a recovery timer (advisory when the
//	                   protocol declares no TIMEOUT at all)
//	vet:symmetry       advisory witnesses when a handler is not equivariant
//	                   under node/block permutations (the machine-checkable
//	                   SymmetryCert behind the model checker's certificate-
//	                   gated symmetry reduction; see ProveSymmetry)
//	vet:dup-idempotence advisory: handlers of TIMEOUT-declaring (i.e.
//	                   fault-tolerant) protocols whose effects are visibly
//	                   non-idempotent under duplicated delivery — unguarded
//	                   continuation resumes and counter read-modify-writes
package analysis

import (
	"fmt"
	"strings"

	"teapot/internal/ast"
	"teapot/internal/ir"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/source"
)

// Pass is one static analysis. Run inspects the compiled protocol through
// the Ctx and reports findings; it must be deterministic.
type Pass struct {
	ID  string // stable check ID without the "vet:" prefix
	Doc string // one-line description
	Run func(*Ctx)
}

// Passes is the registered suite, in a fixed order.
var Passes = []*Pass{
	{ID: "coverage", Doc: "every (state, message) pair has a handler or an explicit policy", Run: runCoverage},
	{ID: "unreachable", Doc: "every state is reachable from the configured start states", Run: runReachability},
	{ID: "no-exit", Doc: "transient states have an outgoing transition or Resume", Run: runNoExit},
	{ID: "cont-leak", Doc: "subroutine states never drop their continuation on a transition", Run: runContLeak},
	{ID: "cont-stuck", Doc: "subroutine states can resume or forward their continuation", Run: runContStuck},
	{ID: "queue-stuck", Doc: "states that Enqueue have a handler that transitions", Run: runQueueStuck},
	{ID: "defer-deadlock", Doc: "synchronously answered requests are not deferred on the answering side", Run: runDeferDeadlock},
	{ID: "dead-store", Doc: "no pure instruction computes a value that is never used", Run: runDeadStore},
	{ID: "unassigned", Doc: "no register is read before any path writes it", Run: runUnassigned},
	{ID: "cont-alloc", Doc: "heap continuation records do not save only rematerializable constants", Run: runCostLint},
	{ID: "timeout", Doc: "transient states of a TIMEOUT-declaring protocol have explicit TIMEOUT handlers", Run: runTimeout},
	{ID: "symmetry", Doc: "handlers are equivariant under node and block permutations (refutations, advisory)", Run: runSymmetry},
	{ID: "dup-idempotence", Doc: "handlers of droppable protocols are idempotent under duplicated delivery (advisory)", Run: runDupIdempotence},
}

// Report is the outcome of a vet run: findings sorted by file, position,
// check ID, and message.
type Report struct {
	Findings []source.Diagnostic
}

// Analyze runs every registered pass over a compiled protocol and returns
// the sorted report.
func Analyze(p *runtime.Protocol) *Report {
	r, err := Run(p, nil)
	if err != nil {
		panic(err) // unreachable: nil selection never fails
	}
	return r
}

// Run executes the selected passes (nil or empty = all) and returns the
// sorted report. Unknown pass IDs are an error.
func Run(p *runtime.Protocol, ids []string) (*Report, error) {
	selected := Passes
	if len(ids) > 0 {
		byID := make(map[string]*Pass, len(Passes))
		for _, ps := range Passes {
			byID[ps.ID] = ps
		}
		selected = nil
		for _, id := range ids {
			ps, ok := byID[strings.TrimPrefix(id, "vet:")]
			if !ok {
				return nil, fmt.Errorf("unknown vet pass %q", id)
			}
			selected = append(selected, ps)
		}
	}
	c := newCtx(p)
	for _, ps := range selected {
		c.pass = ps
		ps.Run(c)
	}
	source.SortDiagnostics(c.report.Findings)
	return c.report, nil
}

// Max returns the most severe finding level, or (SevInfo, false) when the
// report is empty.
func (r *Report) Max() (source.Severity, bool) {
	if len(r.Findings) == 0 {
		return source.SevInfo, false
	}
	max := source.SevInfo
	for _, d := range r.Findings {
		if d.Severity < max {
			max = d.Severity
		}
	}
	return max, true
}

// Actionable returns the findings of warning severity or worse — the set
// the drivers gate on (info findings are advisory).
func (r *Report) Actionable() []source.Diagnostic {
	var out []source.Diagnostic
	for _, d := range r.Findings {
		if d.Severity <= source.SevWarning {
			out = append(out, d)
		}
	}
	return out
}

// ByCheck returns the findings carrying the given check ID (with or without
// the "vet:" prefix).
func (r *Report) ByCheck(id string) []source.Diagnostic {
	id = strings.TrimPrefix(id, "vet:")
	var out []source.Diagnostic
	for _, d := range r.Findings {
		if strings.TrimPrefix(d.Check, "vet:") == id {
			out = append(out, d)
		}
	}
	return out
}

// String renders the report, one finding per line:
//
//	file:line:col: severity: message [vet:check]
//
// An empty report renders as "ok: no findings\n".
func (r *Report) String() string {
	if len(r.Findings) == 0 {
		return "ok: no findings\n"
	}
	var b strings.Builder
	for _, d := range r.Findings {
		b.WriteString(Format(d))
		b.WriteByte('\n')
	}
	return b.String()
}

// Format renders one finding in the report's line format.
func Format(d source.Diagnostic) string {
	return fmt.Sprintf("%s:%s: %s: %s [%s]", d.File, d.Pos, d.Severity, d.Msg, d.Check)
}

// Ctx gives passes access to the compiled protocol and the shared facts,
// and collects findings.
type Ctx struct {
	Proto *runtime.Protocol
	IR    *ir.Program
	Sema  *sema.Program

	facts  *facts
	pass   *Pass
	report *Report
}

func newCtx(p *runtime.Protocol) *Ctx {
	return &Ctx{
		Proto:  p,
		IR:     p.IR,
		Sema:   p.IR.Sema,
		facts:  computeFacts(p),
		report: &Report{},
	}
}

// Reportf records one finding for the running pass.
func (c *Ctx) Reportf(sev source.Severity, pos source.Pos, format string, args ...any) {
	c.report.Findings = append(c.report.Findings, source.Diagnostic{
		File:     c.facts.file,
		Pos:      pos,
		Msg:      fmt.Sprintf(format, args...),
		Check:    "vet:" + c.pass.ID,
		Severity: sev,
	})
}

// statePos returns the best source position for a state: its body, or its
// declaration in the protocol header, or the protocol itself.
func (c *Ctx) statePos(st *sema.StateSym) source.Pos {
	if st.Body != nil {
		return st.Body.Pos()
	}
	if c.Sema.AST != nil && c.Sema.AST.Protocol != nil {
		for _, d := range c.Sema.AST.Protocol.Decls {
			if sd, ok := d.(*ast.StateDecl); ok && sd.Name.Name == st.Name {
				return sd.Pos()
			}
		}
		return c.Sema.AST.Protocol.Pos()
	}
	return source.Pos{}
}

// handlerPos returns the position of a handler's declaration (falling back
// to its first positioned instruction).
func handlerPos(st *sema.StateSym, f *ir.Func) source.Pos {
	for _, h := range st.Handlers {
		if (h.Msg == nil && f.MsgIndex < 0) || (h.Msg != nil && h.Msg.Index == f.MsgIndex) {
			return h.AST.Pos()
		}
	}
	for i := range f.Code {
		if f.Code[i].Pos.IsValid() {
			return f.Code[i].Pos
		}
	}
	return source.Pos{}
}

package fuzz

import (
	"fmt"

	"teapot/internal/core"
	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/oracle"
	"teapot/internal/protocols"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// Profile is how a protocol is fuzzed and judged. Invalidation protocols
// get the full oracle; write-through and buffered protocols propagate
// values asynchronously, so only the access-control invariant applies.
type Profile struct {
	Inv   oracle.Invariants
	Evict bool // workload includes voluntary evictions
	Sync  bool // workload ends with a SYNC sweep
}

// ProfileFor returns the fuzzing profile for a bundled protocol. LCM
// protocols are not judgeable: their phases are deliberately inconsistent
// (that is the protocol's point), so no oracle profile exists.
func ProfileFor(proto string) (Profile, error) {
	switch proto {
	case "stache", "stache-buggy", "stache-ft", "stache-ft-buggy":
		return Profile{Inv: oracle.AllInvariants(), Evict: true}, nil
	case "update":
		return Profile{Inv: oracle.SWMROnly()}, nil
	case "bufwrite":
		return Profile{Inv: oracle.SWMROnly(), Sync: true}, nil
	}
	return Profile{}, fmt.Errorf("fuzz: no oracle profile for protocol %q (judgeable: stache, stache-ft, stache-buggy, stache-ft-buggy, update, bufwrite)", proto)
}

// Config shapes a fuzzing campaign.
type Config struct {
	Proto  string
	Nodes  int // default 3
	Blocks int // default 2
	Net    netmodel.Model

	Schedules  int     // schedules per campaign (default 100)
	OpsPerNode int     // workload length (default 40)
	Seed       uint64  // master seed; 0 derives one from the run shape
	Rate       float64 // deviation probability (default DefaultRate)

	// Coverage, when set, accumulates dispatch/transition/fault coverage
	// across every schedule in the campaign (teed behind the oracle, so the
	// judging path is unchanged).
	Coverage *obs.Coverage
	// Obs, when set, is teed into each run's event stream alongside the
	// oracle (e.g. a flight recorder for the failing schedule's tail).
	Obs obs.Sink
}

// maxRunEvents caps each scheduled run. Clean fuzz workloads finish in a
// few thousand events; a run that burns a million is stuck in a resend
// storm and should come back as an error, not spin toward tempest's
// 100M-event safety net.
const maxRunEvents = 1_000_000

// Fuzzer runs seeded schedules of one protocol. The compiled protocol and
// support module are built once and shared across runs (they are
// stateless; all per-run state lives in the engines each run rebuilds).
type Fuzzer struct {
	cfg  Config
	spec core.RunSpec
	prof Profile
}

// New builds a fuzzer, compiling the protocol.
func New(cfg Config) (*Fuzzer, error) {
	if cfg.Proto == "" {
		return nil, fmt.Errorf("fuzz: no protocol")
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 3
	}
	if cfg.Blocks == 0 {
		cfg.Blocks = 2
	}
	if cfg.Schedules == 0 {
		cfg.Schedules = 100
	}
	if cfg.OpsPerNode == 0 {
		cfg.OpsPerNode = 40
	}
	prof, err := ProfileFor(cfg.Proto)
	if err != nil {
		return nil, err
	}
	spec, err := protocols.Spec(cfg.Proto, cfg.Nodes, cfg.Blocks)
	if err != nil {
		return nil, err
	}
	spec.Net = cfg.Net
	if err := spec.Net.Validate(); err != nil {
		return nil, err
	}
	if spec.Net.MaxCorrupts > 0 {
		return nil, fmt.Errorf("fuzz: corrupt faults are checker-only (the simulator has no NACK bounce path)")
	}
	if cfg.Seed == 0 {
		cfg.Seed = spec.EffectiveSeed()
	}
	return &Fuzzer{cfg: cfg, spec: spec, prof: prof}, nil
}

// Spec exposes the underlying run spec (for mc cross-checking).
func (f *Fuzzer) Spec() core.RunSpec { return f.spec }

// Profile exposes the active oracle profile.
func (f *Fuzzer) Profile() Profile { return f.prof }

// Report is the outcome of one scheduled run.
type Report struct {
	Violation *oracle.Violation // oracle verdict (nil = coherent)
	RunErr    error             // simulator/protocol failure (deadlock, protocol error)
	Stats     *tempest.Stats
	Steps     uint64 // choice points the run exposed
}

// Failed reports whether the run is a fuzzing failure.
func (r *Report) Failed() bool { return r.Violation != nil || r.RunErr != nil }

// class buckets a report for shrink-predicate purposes: shrinking must
// preserve the failure class, not the exact message.
func (r *Report) class() string {
	switch {
	case r.Violation != nil:
		return "violation"
	case r.RunErr != nil:
		return "error"
	}
	return ""
}

// Failure is a failing schedule plus its verdict.
type Failure struct {
	Schedule *Schedule
	Report   *Report
}

// Result summarizes a campaign.
type Result struct {
	Ran     int    // schedules executed
	Steps   uint64 // total choice points exposed
	Failure *Failure
}

// Fuzz runs up to cfg.Schedules seeded schedules, stopping at the first
// failure. Each schedule gets its own recorder and workload seed derived
// from the master seed, so a campaign is reproducible as a whole and every
// individual failure is reproducible from its Schedule alone.
func (f *Fuzzer) Fuzz() (*Result, error) {
	res := &Result{}
	for i := 0; i < f.cfg.Schedules; i++ {
		recSeed := subSeed(f.cfg.Seed, uint64(2*i))
		wSeed := subSeed(f.cfg.Seed, uint64(2*i+1))
		rec := NewRecorder(recSeed, f.cfg.Rate)
		rep := f.runWith(rec, wSeed)
		rep.Steps = rec.Steps()
		res.Ran++
		res.Steps += rec.Steps()
		if rep.Failed() {
			res.Failure = &Failure{Schedule: f.schedule(rec.Decisions(), wSeed, recSeed), Report: rep}
			return res, nil
		}
	}
	return res, nil
}

// Seed exposes the campaign's effective master seed (after derivation
// from the run shape when Config.Seed was 0).
func (f *Fuzzer) Seed() uint64 { return f.cfg.Seed }

// ReplayObserved replays one schedule with an extra sink teed into the
// run's event stream — how a failing schedule gets a flight-recorder pass
// after the campaign stops.
func (f *Fuzzer) ReplayObserved(s *Schedule, sink obs.Sink) *Report {
	saved := f.cfg.Obs
	f.cfg.Obs = sink
	defer func() { f.cfg.Obs = saved }()
	return f.Replay(s)
}

// Replay runs one schedule through the fuzzer's compiled protocol.
func (f *Fuzzer) Replay(s *Schedule) *Report {
	rp := NewReplayer(s)
	rep := f.runWith(rp, s.WorkloadSeed)
	rep.Steps = rp.Steps()
	return rep
}

// ReplaySchedule reconstructs a fuzzer from a serialized schedule and
// replays it: the path from artifact on disk back to a verdict.
func ReplaySchedule(s *Schedule) (*Report, error) {
	if s.Litmus != "" {
		return nil, fmt.Errorf("fuzz: schedule drives litmus test %q — replay it with teapot-litmus -replay", s.Litmus)
	}
	net, err := s.NetModel()
	if err != nil {
		return nil, err
	}
	f, err := New(Config{
		Proto: s.Proto, Nodes: s.Nodes, Blocks: s.Blocks, Net: net,
		OpsPerNode: s.OpsPerNode,
	})
	if err != nil {
		return nil, err
	}
	return f.Replay(s), nil
}

// runWith executes one run under the given chooser and workload seed,
// judged by a fresh oracle.
func (f *Fuzzer) runWith(ch tempest.Chooser, wSeed uint64) *Report {
	checker := oracle.New(oracle.Config{
		Nodes: f.cfg.Nodes, Blocks: f.cfg.Blocks,
		HomeOf: f.spec.HomeOf, Inv: f.prof.Inv,
	})
	simCfg := f.spec.SimConfig()
	simCfg.Program = RandomProgram(WorkloadOpts{
		Nodes: f.cfg.Nodes, Blocks: f.cfg.Blocks, OpsPerNode: f.cfg.OpsPerNode,
		Seed: wSeed, Evict: f.prof.Evict, Sync: f.prof.Sync,
	})
	// Build the sink set explicitly: a nil *Coverage wrapped in the Sink
	// interface would slip past NewTee's nil filter (typed nil).
	sinks := []obs.Sink{checker}
	if f.cfg.Coverage != nil {
		sinks = append(sinks, f.cfg.Coverage)
	}
	if f.cfg.Obs != nil {
		sinks = append(sinks, f.cfg.Obs)
	}
	simCfg.Obs = obs.NewTee(sinks...)
	simCfg.Sched = ch
	simCfg.ObsMemory = true
	simCfg.MaxEvents = maxRunEvents
	stats, err := sim.Run(simCfg)
	return &Report{
		Violation: checker.Finish(),
		RunErr:    err,
		Stats:     stats,
	}
}

func (f *Fuzzer) schedule(dec []Decision, wSeed, recSeed uint64) *Schedule {
	return &Schedule{
		Proto: f.cfg.Proto, Nodes: f.cfg.Nodes, Blocks: f.cfg.Blocks,
		Net:          f.cfg.Net.String(),
		WorkloadSeed: wSeed,
		OpsPerNode:   f.cfg.OpsPerNode,
		RecordSeed:   recSeed,
		Decisions:    dec,
	}
}

// subSeed derives the i-th stream seed from the master seed.
func subSeed(seed, i uint64) uint64 {
	r := rng{s: seed ^ (i+1)*0x9e3779b97f4a7c15}
	return r.next()
}

var _ obs.Sink = (*oracle.Checker)(nil)

package stache

import (
	"fmt"
	"strings"

	"teapot/internal/core"
	"teapot/internal/runtime"
	"teapot/internal/vm"
)

// Fault-tolerant Stache: the base protocol extended to survive a lossy,
// duplicating network (internal/netmodel). Three ingredients:
//
//  1. a TIMEOUT pseudo-message: the runtime arms a per-block timer whenever
//     the block sits in a state that declares an explicit TIMEOUT handler
//     (every transient wait state below), and each handler retransmits the
//     request whose answer the state is waiting for;
//  2. idempotent request handling on the home side: a re-sent GET_RO_REQ /
//     GET_RW_REQ / UPGRADE_REQ from a node the home already granted to is
//     answered again instead of deadlocking or double-recalling;
//  3. stale-message tolerance: duplicates of grants and acknowledgements
//     from exchanges that already completed are explicitly dropped in every
//     state they can reach, so they can never substitute for a live answer
//     or trip a DEFAULT Error.
//
// Scope: the variant is verified at 2 nodes (the scale the paper's §6
// verification runs use) for any drop budget the sweeps exercise (up to
// drop=3), for reorder=1, and for at most ONE duplicate (dup=1, drop=1,dup=1,
// drop=2,dup=1 all verify); and at 3 nodes for drop budgets up to 3 and for
// reorder=1. The 3-node drop envelope is owed to two acknowledgement guards
// the schedule fuzzer forced: ack collection is gated on the 'awaiting'
// bitmask (see ftAwaitInvAcksAck) and writebacks on the recalled owner (see
// ftAwaitPutDataResp) — without them a bystander node's volunteered answer
// substitutes for a lost one and the checker finds an SWMR violation at
// three nodes within 2112 states. Duplicate budgets do NOT verify at 3
// nodes, and 2-node combos beyond the list above (e.g.
// drop=1,dup=1,reorder=1) also fail: a duplicated grant or writeback from
// the SAME node can straddle two recall epochs, and without per-message
// sequence numbers the receiver cannot tell the copies apart — the
// documented envelope of any epoch-less protocol. Block data movement is
// abstract (SendData/RecvData move permissions, not bytes), which lets
// Cache_Inv re-answer a writeback recall after its response was lost; a real
// implementation would retain the dirty copy until the writeback is
// acknowledged, and would tag messages with epochs (sequence numbers) to
// lift the duplicate limits.

// ftDecls extends the protocol declaration block.
const ftDecls = `
  -- Injected by the runtime (a timer in simulation, a nondeterministic
  -- choice in the checker) while a block waits in a state declaring an
  -- explicit handler for it; never crosses the network.
  message TIMEOUT;
  -- Write-miss wait poisoned by a recall we answered without the block
  -- (the grant was lost): the next grant to arrive may predate that
  -- recall and must be discarded, not installed.
  state Cache_Inv_To_RW_P(C : CONT) transient;
`

// ftModule declares the retransmission support routines.
const ftModule = `
module StacheFTSupport begin
  -- Re-sends PUT_NO_DATA_REQ to exactly the nodes still owing an
  -- acknowledgement (the 'awaiting' bitmask InvalidateSharers recorded);
  -- every cache state answers the request idempotently, so a node whose
  -- first invalidation or ack was lost re-answers from wherever it is.
  procedure ResendInvalidates(var info : INFO; id : ID);
  -- True iff 'src' still owes an invalidation ack; clears its bit. Gating
  -- Home_AwaitInvAcks on this is what makes ack collection sound beyond
  -- two nodes: a volunteered answer from a node that owes nothing (or a
  -- duplicate of an ack already counted) must not substitute for the one
  -- still outstanding.
  function TakeAwaiting(var info : INFO; src : NODE) : bool;
end;
`

// Cache side ------------------------------------------------------------

const ftCacheInv = `
  -- FT: a re-sent writeback recall after our PUT_DATA_RESP was lost. Block
  -- data is not modeled, so the re-answer is a permission-level no-op; a
  -- real implementation would retain the dirty copy until acknowledged.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_DATA_RESP, id);
  end;

  -- FT: stale duplicates from exchanges that already completed.
  message GET_RO_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message UPGRADE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message EVICT_RO_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

const ftCacheRO = `
  -- FT: stale duplicates; in Cache_RO every grant/ack is from a finished
  -- exchange (a fresh RW grant only ever arrives in a _To_RW state).
  message GET_RO_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message UPGRADE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message EVICT_RO_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

const ftCacheRW = `
  -- FT: a duplicated invalidation from a previous read-shared epoch; the
  -- original was answered from the state it found us in, and the home
  -- cannot be collecting acks while we hold the only writable copy.
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message GET_RO_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message UPGRADE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message EVICT_RO_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

// ftStaleInTransient drops messages that can only be stale duplicates while
// a cache waits for a specific answer; anything else still defers.
const ftStaleAcks = `
  message EVICT_RO_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message UPGRADE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

const ftCacheInvToRO = `
  -- FT: the request or its grant was lost; ask again.
  message TIMEOUT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RO_REQ, id);
  end;

  -- FT: the home re-recalls our previous (written-back) tenure because
  -- the writeback response was lost; re-answer it. Deferring instead
  -- deadlocks: the copy pins the home's timer while the home's suspension
  -- pins our read request.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_DATA_RESP, id);
  end;

  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
` + ftStaleAcks

const ftCacheInvToROP = `
  -- FT: the grant this state was poisoned against was lost in the network:
  -- there is nothing left to discard, so restart the read miss.
  message TIMEOUT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RO_REQ, id);
    SetState(info, Cache_Inv_To_RO{C});
  end;

  -- FT: the home re-recalled because the PUT_DATA_RESP that put us in this
  -- poisoned state was lost. Re-answer instead of deferring: the home is
  -- suspended awaiting the response and a deferred recall would hold both
  -- sides forever.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_DATA_RESP, id);
  end;
` + ftStaleAcks

const ftCacheInvToRW = `
  message TIMEOUT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RW_REQ, id);
  end;

  -- FT: the home made us owner but the grant was lost, and it is now
  -- recalling a block we never received. Answer so the home can move on,
  -- and poison the pending fill (mirroring the base Cache_Inv_To_RO_P
  -- pattern): a grant still in flight predates the recall.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_DATA_RESP, id);
    SetState(info, Cache_Inv_To_RW_P{C});
  end;

  message GET_RO_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
` + ftStaleAcks

// ftCacheInvToRWP is the poisoned write-miss wait, appended as a whole new
// state (the base protocol has no RW analog of Cache_Inv_To_RO_P because
// without message loss a recall can never reach Cache_Inv_To_RW).
const ftCacheInvToRWP = `
state Stache.Cache_Inv_To_RW_P(C : CONT)
begin
  -- Discard the (possibly stale) grant and ask again: the home records
  -- us as owner, so the re-request is answered by the idempotent
  -- re-grant branch in Home_Excl.
  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RW_REQ, id);
    SetState(info, Cache_Inv_To_RW{C});
  end;

  -- Both the poisoning recall and the grant were lost; restart the miss.
  message TIMEOUT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RW_REQ, id);
    SetState(info, Cache_Inv_To_RW{C});
  end;

  -- Duplicated recall; re-answer it.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_DATA_RESP, id);
  end;

  -- Stale invalidation aimed at an earlier tenure; answer it.
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  -- An upgrade answer that the poisoning recall overtook: like a full
  -- grant, bounce it and ask again (message-driven, because on a pure
  -- reordering network there are no timeouts to fall back on).
  message UPGRADE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RW_REQ, id);
    SetState(info, Cache_Inv_To_RW{C});
  end;

  message GET_RO_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message EVICT_RO_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;
`

const ftCacheROToRW = `
  message TIMEOUT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), UPGRADE_REQ, id);
  end;

  -- FT: the home made us owner but the UPGRADE_ACK was lost — or, on a
  -- reordering network, this recall overtook it. Surrender the read copy
  -- and poison the pending fill: a grant or ack still in flight predates
  -- the recall and must be bounced, not installed.
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_DATA_RESP, id);
    AccessChange(id, Blk_Invalidate);
    SetState(info, Cache_Inv_To_RW_P{C});
  end;

  message GET_RO_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message EVICT_RO_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

// ftEvictRetry re-issues the eviction handshake; the home acknowledges
// EVICT_RO_REQ idempotently in every state.
const ftEvictRetry = `
  message TIMEOUT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), EVICT_RO_REQ, id);
  end;

  message GET_RO_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message UPGRADE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

// ftPutDataReanswer answers a writeback re-recall in Cache_P_Evicting: the
// home resent PUT_DATA_REQ because the response that poisoned this path was
// lost, and it is suspended until one arrives — deferring the recall while
// our own EVICT_RO_REQ waits for that same home would hold both sides.
const ftPutDataReanswer = `
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_DATA_RESP, id);
  end;
`

// Home side -------------------------------------------------------------

// ftHomeStale drops duplicated responses arriving after the wait that
// wanted them already resumed.
const ftHomeStale = `
  message PUT_DATA_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message PUT_NO_DATA_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
`

const ftHomeAwaitPutData = `
  -- FT: the recall or the writeback response was lost; recall again (the
  -- old owner re-answers from Cache_Inv if it already gave the block up).
  message TIMEOUT (id : ID; var info : INFO; src : NODE)
  begin
    Send(owner, PUT_DATA_REQ, id);
  end;
`

// baseAwaitPutDataResp is the writeback handler ftAwaitPutDataResp
// replaces (must match source.go verbatim). The base resumes on any
// PUT_DATA_RESP, which is sound while only one recall can be in flight;
// with duplication and a third node, a copied writeback from the previous
// owner's epoch can arrive while the home is recalling from the *next*
// owner and substitute for that node's surrender — the home proceeds
// while the recalled node still holds read-write (two writers).
const baseAwaitPutDataResp = `  message PUT_DATA_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    Resume(C);
  end;
`

// ftAwaitPutDataResp accepts a writeback only from the node being
// recalled: every PUT_DATA_REQ is addressed to 'owner', and owner is not
// reassigned until the wait resumes, so the expected responder is always
// the current owner. Anything else is a stale duplicate.
const ftAwaitPutDataResp = `  message PUT_DATA_RESP (id : ID; var info : INFO; src : NODE)
  begin
    if (src = owner) then
      RecvData(id, Blk_ReadOnly);
      Resume(C);
    else
      -- FT: a duplicated writeback from a former owner's epoch.
      Drop();
    endif;
  end;
`

const ftHomeAwaitInvAcks = `
  -- FT: an invalidation or its acknowledgement was lost; re-invalidate
  -- the nodes still owing an ack (see StacheFTSupport.ResendInvalidates).
  message TIMEOUT (id : ID; var info : INFO; src : NODE)
  begin
    ResendInvalidates(info, id);
  end;
`

// baseAwaitInvAcksAck is the ack handler ftAwaitInvAcksAck replaces (must
// match source.go verbatim). The base counts acknowledgements blindly —
// one Resume per message — which is sound on a perfect network where only
// solicited acks exist, but unsound once TIMEOUT retransmission makes
// caches answer invalidations they were never sent: at three or more
// nodes a bystander's volunteered PUT_NO_DATA_RESP can substitute for the
// lost ack of a node still holding a read-only copy, and the home
// upgrades to read-write alongside it (the fuzzer found exactly this, and
// the checker confirmed it with an 8-step counterexample).
const baseAwaitInvAcksAck = `  message PUT_NO_DATA_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RemoveSharer(info, src);
    Resume(C);
  end;
`

// ftAwaitInvAcksAck counts an ack only from a node recorded as owing one.
const ftAwaitInvAcksAck = `  message PUT_NO_DATA_RESP (id : ID; var info : INFO; src : NODE)
  begin
    if (TakeAwaiting(info, src)) then
      RemoveSharer(info, src);
      Resume(C);
    else
      -- FT: a duplicate of an ack this wait already counted, or a
      -- volunteered answer from a node that owes nothing.
      Drop();
    endif;
  end;
`

// ftHomeRSGetRO replaces Home_RS's GET_RO_REQ handler: with the
// acknowledged eviction handshake a node re-requests only after its
// eviction was confirmed, so a GET_RO_REQ from a recorded sharer means the
// grant was lost — re-grant idempotently instead of queueing for an
// eviction notice that will never come.
const ftHomeRSGetRO = `  message GET_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(src, GET_RO_RESP, id);
    AddSharer(info, src);
  end;
`

// baseHomeRSGetRO is the handler ftHomeRSGetRO replaces (must match
// source.go verbatim).
const baseHomeRSGetRO = `  message GET_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    if (IsSharer(info, src)) then
      -- The request passed the node's eviction notice in the network
      -- (the paper's reordering scenario): hold it until the notice
      -- arrives and this state transitions.
      Enqueue(MessageTag, id, info, src);
    else
      SendData(src, GET_RO_RESP, id);
      AddSharer(info, src);
    endif;
  end;
`

// ftHomeExclRegrant guards Home_Excl's GET_RW_REQ and UPGRADE_REQ: a
// request from the current owner is a retransmission after a lost grant —
// answer it again rather than recalling the block from its own requester.
const ftHomeExclGetRW = `  message GET_RW_REQ (id : ID; var info : INFO; src : NODE)
  begin
    if (src = owner) then
      -- FT: the grant was lost; re-grant to the owner-to-be.
      SendData(src, GET_RW_RESP, id);
    else
      Send(owner, PUT_DATA_REQ, id);
      Suspend(L, Home_AwaitPutData{L});
      SendData(src, GET_RW_RESP, id);
      owner := src;
      AccessChange(id, Blk_Invalidate);
      SetState(info, Home_Excl{});
    endif;
  end;
`

const baseHomeExclGetRW = `  message GET_RW_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(owner, PUT_DATA_REQ, id);
    Suspend(L, Home_AwaitPutData{L});
    SendData(src, GET_RW_RESP, id);
    owner := src;
    AccessChange(id, Blk_Invalidate);
    SetState(info, Home_Excl{});
  end;

  message UPGRADE_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(owner, PUT_DATA_REQ, id);
    Suspend(L, Home_AwaitPutData{L});
    SendData(src, GET_RW_RESP, id);
    owner := src;
    AccessChange(id, Blk_Invalidate);
    SetState(info, Home_Excl{});
  end;
`

const ftHomeExclUpgrade = `
  message UPGRADE_REQ (id : ID; var info : INFO; src : NODE)
  begin
    if (src = owner) then
      -- FT: the upgrade answer was lost; the waiter accepts a full grant.
      SendData(src, GET_RW_RESP, id);
    else
      Send(owner, PUT_DATA_REQ, id);
      Suspend(L, Home_AwaitPutData{L});
      SendData(src, GET_RW_RESP, id);
      owner := src;
      AccessChange(id, Blk_Invalidate);
      SetState(info, Home_Excl{});
    endif;
  end;
`

// FTSource is the fault-tolerant Stache protocol text.
var FTSource = func() string {
	src := Source
	src = strings.Replace(src, "  message EVICT_RO_ACK;\nend;", "  message EVICT_RO_ACK;\n"+ftDecls+"end;", 1)
	replace := func(old, new string) {
		out := strings.Replace(src, old, new, 1)
		if out == src {
			panic("stache-ft: replacement target not found")
		}
		src = out
	}
	replace("  var sharers : int;    -- sharer bitmask, managed by the support module",
		"  var sharers : int;    -- sharer bitmask, managed by the support module\n"+
			"  var awaiting : int;   -- FT: nodes owing an invalidation ack, managed by the support module")
	replace(baseHomeRSGetRO, ftHomeRSGetRO)
	replace(baseHomeExclGetRW, ftHomeExclGetRW+ftHomeExclUpgrade)
	replace(baseAwaitInvAcksAck, ftAwaitInvAcksAck)
	replace(baseAwaitPutDataResp, ftAwaitPutDataResp)
	insert := func(stateMarker, handlers string) {
		at := strings.Index(src, stateMarker)
		if at < 0 {
			panic("stache-ft: marker not found: " + stateMarker)
		}
		j := strings.Index(src[at:], "begin")
		pos := at + j + len("begin")
		src = src[:pos] + "\n" + handlers + src[pos:]
	}
	insert("state Stache.Cache_Inv(", ftCacheInv)
	insert("state Stache.Cache_RO(", ftCacheRO)
	insert("state Stache.Cache_RW(", ftCacheRW)
	insert("state Stache.Cache_Inv_To_RO(", ftCacheInvToRO)
	insert("state Stache.Cache_Inv_To_RO_P(", ftCacheInvToROP)
	insert("state Stache.Cache_Inv_To_RW(", ftCacheInvToRW)
	insert("state Stache.Cache_RO_To_RW(", ftCacheROToRW)
	insert("state Stache.Cache_RO_Evicting(", ftEvictRetry)
	insert("state Stache.Cache_Ev_To_RO(", ftEvictRetry)
	insert("state Stache.Cache_Ev_To_RW(", ftEvictRetry)
	insert("state Stache.Cache_P_Evicting(", ftEvictRetry+ftPutDataReanswer)
	insert("state Stache.Home_Idle(", ftHomeStale)
	insert("state Stache.Home_RS(", ftHomeStale)
	insert("state Stache.Home_Excl(", ftHomeStale)
	insert("state Stache.Home_AwaitPutData(", ftHomeAwaitPutData)
	insert("state Stache.Home_AwaitInvAcks(", ftHomeAwaitInvAcks)
	return ftModule + src + ftCacheInvToRWP
}()

// ftBuggyTarget is the recall-during-upgrade handler body whose
// invalidation FTBuggySource removes (must match ftCacheROToRW verbatim).
const ftBuggyTarget = `    SendData(HomeNode(id), PUT_DATA_RESP, id);
    AccessChange(id, Blk_Invalidate);
    SetState(info, Cache_Inv_To_RW_P{C});`

// FTBuggySource is stache-ft with the invalidation dropped from the
// recall-during-upgrade handler: the cache surrenders ownership (answers
// PUT_DATA_RESP and poisons its pending fill) but keeps its read
// mapping. The omission is silent on a perfect network — the handler only
// runs after a recall overtakes or replaces a lost UPGRADE_ACK — and then
// lets this node read stale data while the recall's beneficiary writes: a
// single-writer-multiple-reader violation only a faulted schedule can
// surface, shipped as the fuzzer's seeded-bug fixture.
var FTBuggySource = func() string {
	buggy := `    SendData(HomeNode(id), PUT_DATA_RESP, id);
    SetState(info, Cache_Inv_To_RW_P{C});`
	out := strings.Replace(FTSource, ftBuggyTarget, buggy, 1)
	if out == FTSource {
		panic("stache-ft-buggy: handler marker not found")
	}
	return out
}()

// CompileFT compiles the fault-tolerant variant.
func CompileFT(optimize bool) (*core.Artifacts, error) {
	return compileSource("stache-ft.tea", FTSource, optimize)
}

// CompileFTBuggy compiles the seeded-bug fault-tolerant variant.
func CompileFTBuggy() (*core.Artifacts, error) {
	return compileSource("stache-ft-buggy.tea", FTBuggySource, true)
}

// MustCompileFT panics on compile errors (the embedded source is tested).
func MustCompileFT(optimize bool) *core.Artifacts {
	a, err := CompileFT(optimize)
	if err != nil {
		panic(err)
	}
	return a
}

// FTSupport extends the Stache support module with precise retransmission
// bookkeeping: the per-block 'awaiting' variable records exactly which
// nodes were sent an invalidation and have not been counted yet, so
// ResendInvalidates re-targets only them and TakeAwaiting keeps a
// volunteered or duplicated ack from substituting for an outstanding one
// (see ftModule).
type FTSupport struct {
	*Support
	nodes        int
	awaitingSlot int
}

// NewFTSupport builds the fault-tolerant support module.
func NewFTSupport(p *runtime.Protocol, nodes int) (*FTSupport, error) {
	s, err := NewSupport(p)
	if err != nil {
		return nil, err
	}
	ft := &FTSupport{Support: s, nodes: nodes, awaitingSlot: -1}
	for _, v := range p.Sema().ProtVars {
		if v.Name == "awaiting" {
			ft.awaitingSlot = v.Index
		}
	}
	if ft.awaitingSlot < 0 {
		return nil, fmt.Errorf("stache-ft support: protocol lacks an 'awaiting' variable")
	}
	return ft, nil
}

// MustFTSupport panics on error.
func MustFTSupport(p *runtime.Protocol, nodes int) *FTSupport {
	s, err := NewFTSupport(p, nodes)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *FTSupport) awaiting(ctx *runtime.Ctx) int64 {
	return ctx.Block.Vars[s.awaitingSlot].Int
}

func (s *FTSupport) setAwaiting(ctx *runtime.Ctx, m int64) {
	ctx.Block.Vars[s.awaitingSlot] = vm.IntVal(m)
}

// Call implements runtime.Support.
func (s *FTSupport) Call(ctx *runtime.Ctx, name string, args []*vm.Value) (vm.Value, error) {
	switch name {
	case "InvalidateSharers":
		// Record exactly the set the base routine is about to invalidate:
		// every current sharer except the excluded requester. These are
		// the nodes whose acks the wait loop may count.
		excl := args[1].Int
		s.setAwaiting(ctx, s.mask(ctx)&^(1<<uint(excl)))
		return s.Support.Call(ctx, name, args)
	case "TakeAwaiting":
		n := args[1].Int
		m := s.awaiting(ctx)
		if m&(1<<uint(n)) == 0 {
			return vm.BoolVal(false), nil
		}
		s.setAwaiting(ctx, m&^(1<<uint(n)))
		return vm.BoolVal(true), nil
	case "ResendInvalidates":
		id := int(args[1].Int)
		m := s.awaiting(ctx)
		for n := 0; n < s.nodes; n++ {
			if m&(1<<uint(n)) == 0 {
				continue
			}
			ctx.Engine.Sends++
			ctx.Engine.Machine.Send(ctx.Engine.Node, n, &runtime.Message{
				Tag: s.invReq,
				ID:  id,
				Src: ctx.Engine.Node,
			})
		}
		return vm.Value{}, nil
	}
	return s.Support.Call(ctx, name, args)
}

// NodeMaskSlots implements runtime.SymmetryDecl: both 'sharers' and the
// fault-tolerant 'awaiting' set are node bitmasks.
func (s *FTSupport) NodeMaskSlots() []int { return []int{s.Support.sharersSlot, s.awaitingSlot} }

// EquivariantRoutines implements runtime.SymmetryDecl: the base Stache
// routines plus the retransmission pair, which read/clear the awaiting
// mask and re-multicast to its members.
func (s *FTSupport) EquivariantRoutines() []string {
	return append(s.Support.EquivariantRoutines(), "TakeAwaiting", "ResendInvalidates")
}

package analysis

import (
	"teapot/internal/dot"
	"teapot/internal/ir"
	"teapot/internal/runtime"
	"teapot/internal/sema"
)

// policy classifies how a state treats a message that reaches it.
type policy int

const (
	polMissing  policy = iota // no handler and no DEFAULT
	polExplicit               // dedicated handler
	polDefer                  // DEFAULT enqueues
	polReject                 // DEFAULT calls Error (an explicit "cannot happen")
	polNack                   // DEFAULT nacks
	polDrop                   // DEFAULT drops (or does nothing)
)

// side labels which half of the protocol a state belongs to, derived from
// reachability from the configured start states.
type side int

const (
	sideNone side = iota // unreachable from either start
	sideHome
	sideCache
	sideBoth
)

// facts holds the protocol-wide structures the passes share. Everything is
// indexed by sema state/message indices, so iteration order is fixed.
type facts struct {
	file string

	// succ is the static state graph: for each state, the dedup'd sorted
	// set of successor states over SetState and Suspend targets (extracted
	// by internal/dot, including transient states; self-loops excluded).
	succ [][]int
	// preds is succ inverted.
	preds [][]int
	// suspendIn[s] lists the message indices of handlers containing a
	// Suspend whose sub-state is s (-1 for a DEFAULT handler), dedup'd.
	suspendIn [][]int
	// reach marks states reachable from {HomeStart, CacheStart}.
	reach []bool
	// sides classifies states by which start state reaches them.
	sides []side
	// hasResume marks states one of whose handlers contains a Resume.
	hasResume []bool
	// transitions marks states one of whose handlers contains a SetState
	// or Suspend (including self-transitions, which retry the deferred
	// queue).
	transitions []bool
	// enqueues marks states one of whose handlers contains an Enqueue.
	enqueues []bool
	// contReg is the register of each state's unique CONT parameter, or
	// NoReg for non-subroutine states.
	contReg []ir.Reg
	// policies[state][msg] classifies the (state, message) matrix.
	policies [][]policy
	// alwaysSends[func] is the set of message tags the handler sends on
	// every path from entry to a terminator of its first fragment.
	alwaysSends map[*ir.Func]map[int]bool
}

func computeFacts(p *runtime.Protocol) *facts {
	irp := p.IR
	sp := irp.Sema
	n := len(sp.States)
	f := &facts{
		succ:        make([][]int, n),
		preds:       make([][]int, n),
		suspendIn:   make([][]int, n),
		reach:       make([]bool, n),
		sides:       make([]side, n),
		hasResume:   make([]bool, n),
		transitions: make([]bool, n),
		enqueues:    make([]bool, n),
		contReg:     make([]ir.Reg, n),
		policies:    make([][]policy, n),
		alwaysSends: make(map[*ir.Func]map[int]bool, len(irp.Funcs)),
	}
	if sp.AST != nil && sp.AST.File != nil {
		f.file = sp.AST.File.Name
	}

	// State graph, via the extraction the DOT backend already implements.
	m := dot.Extract(irp, dot.Options{IncludeTransient: true})
	for _, e := range m.Edges {
		from, to := sp.StateByName(e.From), sp.StateByName(e.To)
		if from == nil || to == nil || from.Index == to.Index {
			continue
		}
		f.succ[from.Index] = appendUnique(f.succ[from.Index], to.Index)
		f.preds[to.Index] = appendUnique(f.preds[to.Index], from.Index)
	}

	// Sides and reachability.
	markSide := func(start int, s side) {
		if start < 0 || start >= n {
			return
		}
		seen := make([]bool, n)
		stack := []int{start}
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[i] {
				continue
			}
			seen[i] = true
			f.reach[i] = true
			switch {
			case f.sides[i] == sideNone:
				f.sides[i] = s
			case f.sides[i] != s:
				f.sides[i] = sideBoth
			}
			stack = append(stack, f.succ[i]...)
		}
	}
	markSide(p.HomeStart, sideHome)
	markSide(p.CacheStart, sideCache)

	// Per-state instruction facts.
	for si, st := range sp.States {
		f.contReg[si] = contParamReg(st)
	}
	for _, fn := range irp.Funcs {
		si := fn.StateIndex
		for i := range fn.Code {
			in := &fn.Code[i]
			switch in.Op {
			case ir.OpResume:
				f.hasResume[si] = true
			case ir.OpSuspend:
				f.transitions[si] = true
				if tgt := suspendSubState(fn, i); tgt >= 0 && tgt < n {
					f.suspendIn[tgt] = appendUnique(f.suspendIn[tgt], fn.MsgIndex)
				}
			case ir.OpCall:
				switch in.Fn.Builtin {
				case sema.BSetState:
					f.transitions[si] = true
				case sema.BEnqueue:
					f.enqueues[si] = true
				}
			}
		}
		f.alwaysSends[fn] = alwaysSends(fn)
	}

	// Policy matrix.
	for si := range sp.States {
		row := make([]policy, len(sp.Messages))
		def := polMissing
		if d := irp.Defaults[si]; d != nil {
			def = classifyDefault(d)
		}
		for mi := range sp.Messages {
			if _, ok := irp.HandlerFunc[si][mi]; ok {
				row[mi] = polExplicit
			} else {
				row[mi] = def
			}
		}
		f.policies[si] = row
	}
	return f
}

// suspendSubState resolves the sub-state entered by the Suspend at index
// i: the nearest preceding MakeState defining the suspend's state operand.
// Returns -1 when the operand is not a constant state (e.g. a parameter).
func suspendSubState(fn *ir.Func, i int) int {
	st := fn.Code[i].A
	for j := i - 1; j >= 0; j-- {
		in := &fn.Code[j]
		if in.Def() != st {
			continue
		}
		if in.Op == ir.OpMakeState {
			return in.Idx
		}
		return -1
	}
	return -1
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// contParamReg returns the register of the state's unique CONT parameter,
// or NoReg (state parameters occupy the first registers, in order).
func contParamReg(st *sema.StateSym) ir.Reg {
	reg := ir.NoReg
	for i, prm := range st.Params {
		if prm.Type.Kind == sema.TCont {
			if reg != ir.NoReg {
				return ir.NoReg // several CONT params: treated as opaque
			}
			reg = ir.Reg(i)
		}
	}
	return reg
}

// classifyDefault inspects a DEFAULT handler's body for its policy. Enqueue
// dominates (a defer on any path can hold the message indefinitely), then
// Error, then Nack; otherwise the handler drops the message.
func classifyDefault(fn *ir.Func) policy {
	p := polDrop
	for i := range fn.Code {
		in := &fn.Code[i]
		if in.Op != ir.OpCall {
			continue
		}
		switch in.Fn.Builtin {
		case sema.BEnqueue:
			return polDefer
		case sema.BError:
			p = polReject
		case sema.BNack:
			if p == polDrop {
				p = polNack
			}
		}
	}
	return p
}

// constMsgTag resolves the message tag held by reg at any point in fn, if
// the register has exactly one definition and it is a message constant.
func constMsgTag(fn *ir.Func, reg ir.Reg) (int, bool) {
	tag, defs := -1, 0
	for i := range fn.Code {
		in := &fn.Code[i]
		if in.Def() != reg {
			continue
		}
		defs++
		if defs > 1 || in.Op != ir.OpConst || in.Kind != ir.KMsg {
			return -1, false
		}
		tag = int(in.Int)
	}
	return tag, defs == 1
}

// alwaysSends computes the set of message tags fn sends on every path from
// entry to a terminator of its first atomic fragment (Return, Resume, or
// Suspend — a handler that suspends before answering has not answered).
// Forward dataflow with set intersection at joins.
func alwaysSends(fn *ir.Func) map[int]bool {
	n := len(fn.Code)
	if n == 0 {
		return nil
	}
	// sent[i] is the set of tags definitely sent before executing i;
	// nil means "not yet reached" (⊤).
	sent := make([]map[int]bool, n)
	sent[0] = map[int]bool{}
	var exit map[int]bool // intersection over all exits; nil = ⊤
	work := []int{0}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		in := &fn.Code[i]
		out := sent[i]
		if in.Op == ir.OpCall && (in.Fn.Builtin == sema.BSend || in.Fn.Builtin == sema.BSendData) && len(in.Args) >= 2 {
			if tag, ok := constMsgTag(fn, in.Args[1]); ok {
				out = cloneSet(out)
				out[tag] = true
			}
		}
		var succs []int
		switch in.Op {
		case ir.OpReturn, ir.OpResume, ir.OpSuspend:
			exit = intersect(exit, out)
		case ir.OpJump:
			succs = []int{in.Idx}
		case ir.OpBranch:
			succs = []int{in.Idx, in.Idx2}
		default:
			if i+1 < n {
				succs = []int{i + 1}
			} else {
				exit = intersect(exit, out)
			}
		}
		for _, s := range succs {
			merged := intersect(sent[s], out)
			if sent[s] == nil || len(merged) != len(sent[s]) {
				sent[s] = merged
				work = append(work, s)
			}
		}
	}
	if exit == nil {
		return map[int]bool{}
	}
	return exit
}

func cloneSet(s map[int]bool) map[int]bool {
	c := make(map[int]bool, len(s)+1)
	for k := range s {
		c[k] = true
	}
	return c
}

// intersect meets two sets where nil is ⊤ (everything).
func intersect(a, b map[int]bool) map[int]bool {
	if a == nil {
		return cloneSet(b)
	}
	if b == nil {
		return cloneSet(a)
	}
	out := map[int]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// stateIsSet reports whether the MakeState at index i actually transitions
// the block: it feeds a Suspend or a SetState call (as opposed to a state
// value used in a comparison). Mirrors the DOT extractor's rule.
func stateIsSet(fn *ir.Func, i int) bool {
	dst := fn.Code[i].Dst
	for j := i + 1; j < len(fn.Code); j++ {
		in := &fn.Code[j]
		if in.Op == ir.OpSuspend && in.A == dst {
			return true
		}
		if in.Op == ir.OpCall && in.Fn.Builtin == sema.BSetState &&
			len(in.Args) == 2 && in.Args[1] == dst {
			return true
		}
		if in.Def() == dst {
			return false
		}
	}
	return false
}

// argsContain reports whether reg appears in the instruction's Args.
func argsContain(in *ir.Instr, reg ir.Reg) bool {
	for _, a := range in.Args {
		if a == reg {
			return true
		}
	}
	return false
}

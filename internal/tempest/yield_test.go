package tempest_test

import (
	"testing"

	"teapot/internal/obs"
	"teapot/internal/protocols/stache"
	"teapot/internal/tempest"
)

// memSink records the data-version model's completed accesses.
type memSink struct {
	reads  map[int][]int64 // node -> observed packed values, completion order
	writes int
}

func newMemSink() *memSink { return &memSink{reads: map[int][]int64{}} }

func (s *memSink) Emit(ev obs.Event) {
	switch ev.Kind {
	case obs.KindRead:
		s.reads[int(ev.Node)] = append(s.reads[int(ev.Node)], ev.Arg)
	case obs.KindWrite:
		s.writes++
	}
}

// memMachine is stacheMachine with the data-version model on.
func memMachine(t *testing.T, nodes, blocks int, prog tempest.Program, initMem []int64) (*tempest.Machine, *memSink) {
	t.Helper()
	p := stache.MustCompile(true).Protocol
	m := tempest.New(tempest.Config{
		Nodes: nodes, Blocks: blocks,
		Cost: tempest.DefaultCost, Tags: tempest.ResolveTags(p),
		Program:   prog,
		ObsMemory: true,
		InitMem:   initMem,
	})
	te := tempest.NewTeapotEngine(p, nodes, blocks, m, stache.MustSupport(p))
	m.SetEngine(te)
	sink := newMemSink()
	m.SetObs(sink)
	return m, sink
}

func yield(c int64) tempest.Op { return tempest.Op{Kind: tempest.OpYield, Cycles: c} }

func TestYieldAdvancesClock(t *testing.T) {
	m, _ := stacheMachine(t, 2, 1,
		newProgram(
			[]tempest.Op{yield(100), yield(50)},
			[]tempest.Op{yield(0), compute(30)},
		), tempest.DefaultCost)
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodeCycles[0] != 150 || stats.NodeCycles[1] != 30 {
		t.Errorf("node cycles = %v, want [150 30]", stats.NodeCycles)
	}
	if stats.Faults != 0 || stats.Messages != 0 {
		t.Errorf("unexpected protocol activity: %+v", stats)
	}
}

// TestYieldReleasesEventLoop pins the OpCompute/OpYield distinction the
// litmus jitter depends on. Node 0 (home of block 0, valid initial copy)
// delays, then reads; node 1 stores 7 concurrently. A compute delay never
// leaves step()'s tight loop, so the read runs before node 1's write
// traffic no matter how long the delay is and observes the initial value.
// A yield of the same length re-enters the event queue, the store and its
// ownership transfer happen first, and the read faults and observes 7.
func TestYieldReleasesEventLoop(t *testing.T) {
	const long = 100_000 // ≫ a write fault's full round trip
	run := func(prefix tempest.Op) int64 {
		m, sink := memMachine(t, 2, 1,
			newProgram(
				[]tempest.Op{prefix, read(0)},
				[]tempest.Op{{Kind: tempest.OpWrite, Addr: 0, Val: 7}},
			), []int64{5})
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		reads := sink.reads[0]
		if len(reads) != 1 {
			t.Fatalf("node 0 completed %d reads, want 1", len(reads))
		}
		return tempest.ValueOf(reads[0])
	}
	if got := run(compute(long)); got != 5 {
		t.Errorf("read after compute(%d) = %d, want 5 (initial value)", long, got)
	}
	if got := run(yield(long)); got != 7 {
		t.Errorf("read after yield(%d) = %d, want 7 (node 1's store)", long, got)
	}
}

func TestCASObservesAndStoresConditionally(t *testing.T) {
	cas := func(expect, val int64) tempest.Op {
		return tempest.Op{Kind: tempest.OpCAS, Addr: 0, Expect: expect, Val: val}
	}
	m, sink := memMachine(t, 1, 1,
		newProgram(
			// Succeeds (observes the initial 5), then fails (observes 9).
			[]tempest.Op{cas(5, 9), cas(5, 11)},
		), []int64{5})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	reads := sink.reads[0]
	if len(reads) != 2 {
		t.Fatalf("completed %d observations, want 2", len(reads))
	}
	if v := tempest.ValueOf(reads[0]); v != 5 {
		t.Errorf("first CAS observed %d, want 5", v)
	}
	if v := tempest.ValueOf(reads[1]); v != 9 {
		t.Errorf("second CAS observed %d, want 9 (first CAS's store)", v)
	}
	if sink.writes != 1 {
		t.Errorf("stores = %d, want 1 (second CAS must not store)", sink.writes)
	}
}

package mc

import (
	"fmt"

	"teapot/internal/analysis"
	"teapot/internal/runtime"
	"teapot/internal/vm"
)

// Certificate-gated symmetry reduction.
//
// A symmetric protocol cannot tell node 1 from node 2 (or block 0 from
// block 1), so the reachable graph decomposes into permutation orbits and
// the checker only needs one representative per orbit. Soundness never
// rests on an mc heuristic: reduction turns on only when
//
//   - the static prover (internal/analysis.ProveSymmetry) certifies both
//     dimensions over the compiled IR,
//   - every support routine the IR calls is vouched equivariant by the
//     support module itself (runtime.SymmetryDecl), with its node-bitmask
//     variable slots declared so canonicalization can re-index them,
//   - the event generator declares equivariance (EquivariantEvents), and
//   - no abstract codec is in play (opaque values cannot be permuted).
//
// The admissible group is {(π over nodes, σ over blocks) : π(home(b)) =
// home(σ(b)) for all b} — home bindings are configuration, not state, so a
// permutation must map homes onto homes. Canonicalization encodes the
// world under every group element and keeps the lexicographically smallest
// key; the winning permutation index is stored alongside the int32
// parent/action arena so counterexample traces can be rebuilt in original
// coordinates (see buildViolation).

// SymmetryMode selects the reduction policy for a run.
type SymmetryMode int

// Symmetry modes. The zero value is off so existing configurations are
// untouched byte for byte.
const (
	// SymmetryOff never reduces.
	SymmetryOff SymmetryMode = iota
	// SymmetryAuto reduces when the certificate and vouches allow it and
	// silently runs unreduced otherwise (Result.SymmetryNote says why).
	SymmetryAuto
	// SymmetryOn requires reduction: configuration fails with an error
	// naming the first refutation witness or missing vouch otherwise.
	SymmetryOn
)

func (m SymmetryMode) String() string {
	switch m {
	case SymmetryOff:
		return "off"
	case SymmetryAuto:
		return "auto"
	case SymmetryOn:
		return "on"
	}
	return fmt.Sprintf("symmetry(%d)", int(m))
}

// ParseSymmetryMode parses the -symmetry flag values.
func ParseSymmetryMode(s string) (SymmetryMode, error) {
	switch s {
	case "off":
		return SymmetryOff, nil
	case "auto":
		return SymmetryAuto, nil
	case "on":
		return SymmetryOn, nil
	}
	return SymmetryOff, fmt.Errorf("unknown symmetry mode %q (want auto, off, or on)", s)
}

// EquivariantEvents marks event generators whose Enabled output commutes
// with node/block permutation of the world: permuting the world permutes
// the enabled events and changes nothing else. All bundled generators
// qualify (they observe only state names, access modes, per-block
// counters, and message predicates); the marker makes that an explicit
// promise the reduction gate can check.
type EquivariantEvents interface {
	SymmetricEvents()
}

// maxSymmetryDim bounds permutation-group enumeration (dim! each way).
const maxSymmetryDim = 8

// perm is one admissible group element.
type perm struct {
	node []int // node n appears as node[n] in the permuted world
	blk  []int // block b appears as blk[b]
}

func (g *perm) identity() bool {
	for i, v := range g.node {
		if v != i {
			return false
		}
	}
	for i, v := range g.blk {
		if v != i {
			return false
		}
	}
	return true
}

// inverse returns the inverse permutation.
func (g *perm) inverse() *perm {
	inv := &perm{node: make([]int, len(g.node)), blk: make([]int, len(g.blk))}
	for i, v := range g.node {
		inv.node[v] = i
	}
	for i, v := range g.blk {
		inv.blk[v] = i
	}
	return inv
}

// compose returns h∘g: first apply g, then h.
func compose(h, g *perm) *perm {
	out := &perm{node: make([]int, len(g.node)), blk: make([]int, len(g.blk))}
	for i, v := range g.node {
		out.node[i] = h.node[v]
	}
	for i, v := range g.blk {
		out.blk[i] = h.blk[v]
	}
	return out
}

// reduction is the active symmetry machinery for one run.
type reduction struct {
	group     []*perm // identity first, then enumeration order
	maskSlots []int   // protocol-variable slots holding node bitmasks
}

// buildReduction decides whether reduction is enabled for this
// configuration. It returns (nil, reason, nil) to run unreduced — always
// fine under SymmetryAuto — and an error under SymmetryOn, which demands
// reduction or an explanation loud enough to stop the run.
func buildReduction(cfg *Config) (*reduction, string, error) {
	refuse := func(format string, args ...any) (*reduction, string, error) {
		reason := fmt.Sprintf(format, args...)
		if cfg.Symmetry == SymmetryOn {
			return nil, "", fmt.Errorf("mc: -symmetry=on but %s", reason)
		}
		return nil, reason, nil
	}
	if cfg.Symmetry == SymmetryOff {
		return nil, "", nil
	}
	if cfg.Codec != nil {
		return refuse("the protocol snapshots abstract values the checker cannot permute")
	}
	if cfg.Client != nil {
		return refuse("a scripted litmus client pins node and block identities")
	}
	if cfg.Nodes > maxSymmetryDim || cfg.Blocks > maxSymmetryDim {
		return refuse("%d nodes / %d blocks exceeds the permutation enumeration bound (%d)",
			cfg.Nodes, cfg.Blocks, maxSymmetryDim)
	}
	cert := analysis.ProveSymmetry(cfg.Proto)
	for _, dim := range []struct {
		name string
		d    *analysis.SymmetryDim
	}{{"node", &cert.Node}, {"block", &cert.Block}} {
		if !dim.d.Equivariant {
			w := dim.d.Witnesses[0]
			return refuse("the static prover refutes %s symmetry: handler %s, %s (instr %d: %s)",
				dim.name, w.Handler, w.Reason, w.Index, w.Instr)
		}
	}
	var maskSlots []int
	if len(cert.Obligations) > 0 {
		decl, ok := cfg.Support.(runtime.SymmetryDecl)
		if !ok {
			return refuse("support module does not declare routine equivariance (runtime.SymmetryDecl)")
		}
		vouched := map[string]bool{}
		for _, r := range decl.EquivariantRoutines() {
			vouched[r] = true
		}
		for _, ob := range cert.Obligations {
			if !vouched[ob.Routine] {
				return refuse("support routine %s is not vouched equivariant", ob.Routine)
			}
		}
		maskSlots = decl.NodeMaskSlots()
	}
	if cfg.Events != nil {
		if _, ok := cfg.Events.(EquivariantEvents); !ok {
			return refuse("event generator does not declare equivariance (mc.EquivariantEvents)")
		}
	}
	group := enumerateGroup(cfg)
	return &reduction{group: group, maskSlots: maskSlots}, "", nil
}

// enumerateGroup lists the admissible (node, block) permutation pairs,
// identity first: every (π, σ) with π(home(b)) = home(σ(b)) for all b.
func enumerateGroup(cfg *Config) []*perm {
	var group []*perm
	for _, sigma := range permutations(cfg.Blocks) {
		for _, pi := range permutations(cfg.Nodes) {
			ok := true
			for b := 0; b < cfg.Blocks; b++ {
				if pi[cfg.HomeOf(b)] != cfg.HomeOf(sigma[b]) {
					ok = false
					break
				}
			}
			if ok {
				group = append(group, &perm{node: pi, blk: sigma})
			}
		}
	}
	// Lexicographic enumeration puts the identity pair first already;
	// assert rather than assume, since canonicalize short-circuits on it.
	if len(group) == 0 || !group[0].identity() {
		panic("mc: symmetry group enumeration lost the identity")
	}
	return group
}

// permutations returns all permutations of 0..n-1 in lexicographic order.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		// Pick the k-th element from the remaining values in ascending
		// order by swapping each candidate into place and sorting the tail
		// back afterwards (the tail stays sorted between picks).
		for i := k; i < n; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			tail := append([]int(nil), cur[k+1:]...)
			sortInts(cur[k+1:])
			rec(k + 1)
			copy(cur[k+1:], tail)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// canonicalize returns the lexicographically smallest encoding of w over
// the group, plus the index of the permutation that produced it.
func (r *reduction) canonicalize(w *World) (string, int32, error) {
	best, err := w.encode()
	if err != nil {
		return "", 0, err
	}
	bestIdx := int32(0)
	for i := 1; i < len(r.group); i++ {
		k, err := r.permuteWorld(w, r.group[i]).encode()
		if err != nil {
			return "", 0, err
		}
		if k < best {
			best, bestIdx = k, int32(i)
		}
	}
	return best, bestIdx, nil
}

// permValue maps identity-typed scalars through g and deep-copies value
// containers (state values, continuations) so the permuted world never
// aliases mutable structure with the original. Info handles are untouched:
// the encoder writes only their kind (the handle is reconstructed from the
// receiving block on decode), so their referent is irrelevant to the key.
func (r *reduction) permValue(v vm.Value, g *perm) vm.Value {
	switch v.Kind {
	case vm.KNode:
		if v.Int >= 0 && int(v.Int) < len(g.node) {
			v.Int = int64(g.node[v.Int])
		}
	case vm.KID:
		if v.Int >= 0 && int(v.Int) < len(g.blk) {
			v.Int = int64(g.blk[v.Int])
		}
	case vm.KState:
		if s := v.State(); s != nil {
			v.Ref = r.permStateVal(s, g)
		}
	case vm.KCont:
		if c := v.Cont(); c != nil {
			nc := &vm.Cont{Fn: c.Fn, Frag: c.Frag, Site: c.Site, Heap: c.Heap}
			if len(c.Saved) > 0 {
				nc.Saved = make([]vm.Value, len(c.Saved))
				for i, a := range c.Saved {
					nc.Saved[i] = r.permValue(a, g)
				}
			}
			v.Ref = nc
		}
	}
	return v
}

func (r *reduction) permStateVal(s *vm.StateVal, g *perm) *vm.StateVal {
	ns := &vm.StateVal{State: s.State}
	if len(s.Args) > 0 {
		ns.Args = make([]vm.Value, len(s.Args))
		for i, a := range s.Args {
			ns.Args[i] = r.permValue(a, g)
		}
	}
	return ns
}

// permVars maps a block's protocol variables: element-wise by value kind,
// then bit-wise re-indexing for the declared node-bitmask slots.
func (r *reduction) permVars(vars []vm.Value, g *perm) []vm.Value {
	out := make([]vm.Value, len(vars))
	for i, v := range vars {
		out[i] = r.permValue(v, g)
	}
	for _, slot := range r.maskSlots {
		v := vars[slot]
		var mask int64
		for bit := 0; bit < 64; bit++ {
			if v.Int&(1<<bit) == 0 {
				continue
			}
			if bit < len(g.node) {
				mask |= 1 << g.node[bit]
			} else {
				mask |= 1 << bit
			}
		}
		v.Int = mask
		out[slot] = v
	}
	return out
}

func (r *reduction) permMessage(m *runtime.Message, g *perm) *runtime.Message {
	nm := &runtime.Message{Tag: m.Tag, ID: m.ID, Src: m.Src, Data: m.Data, Val: m.Val}
	if nm.ID >= 0 && nm.ID < len(g.blk) {
		nm.ID = g.blk[nm.ID]
	}
	if nm.Src >= 0 && nm.Src < len(g.node) {
		nm.Src = g.node[nm.Src]
	}
	if len(m.Payload) > 0 {
		nm.Payload = make([]vm.Value, len(m.Payload))
		for i, v := range m.Payload {
			nm.Payload[i] = r.permValue(v, g)
		}
	}
	return nm
}

// permEvent maps an event's payload through g (name, tag, and stall flag
// are identity-independent).
func (r *reduction) permEvent(ev Event, g *perm) Event {
	if len(ev.Payload) > 0 {
		payload := make([]vm.Value, len(ev.Payload))
		for i, v := range ev.Payload {
			payload[i] = r.permValue(v, g)
		}
		ev.Payload = payload
	}
	return ev
}

// permAction maps an action on world w to the corresponding action on
// permuteWorld(w, g). Channel positions are preserved: permuteWorld keeps
// per-channel message order.
func (r *reduction) permAction(a action, g *perm) action {
	switch a.kind {
	case actDeliver, actDrop, actDup, actCorrupt:
		a.from = g.node[a.from]
		a.to = g.node[a.to]
	case actEvent:
		a.node = g.node[a.node]
		a.block = g.blk[a.block]
		a.event = r.permEvent(a.event, g)
	case actTimeout:
		a.node = g.node[a.node]
		a.block = g.blk[a.block]
	}
	return a
}

// permuteWorld builds the image of w under g: node n's engine state moves
// to node g.node[n], block b's to slot g.blk[b], channels move end-to-end
// with message order preserved, and every embedded identity value is
// mapped. Fault budgets are permutation-invariant and copy through. The
// result shares no mutable structure with w.
func (r *reduction) permuteWorld(w *World, g *perm) *World {
	cfg := w.cfg
	pw := newWorld(cfg)
	for n := 0; n < cfg.Nodes; n++ {
		for b := 0; b < cfg.Blocks; b++ {
			src := w.engines[n].Blocks[b]
			dst := pw.engines[g.node[n]].Blocks[g.blk[b]]
			dst.State = r.permStateVal(src.State, g)
			dst.Vars = r.permVars(src.Vars, g)
			dst.Deferred = nil
			if len(src.Deferred) > 0 {
				dst.Deferred = make([]*runtime.Message, len(src.Deferred))
				for i, m := range src.Deferred {
					dst.Deferred[i] = r.permMessage(m, g)
				}
			}
			pw.access[g.node[n]*cfg.Blocks+g.blk[b]] = w.access[n*cfg.Blocks+b]
		}
	}
	for from := 0; from < cfg.Nodes; from++ {
		for to := 0; to < cfg.Nodes; to++ {
			msgs := w.channels[from*cfg.Nodes+to]
			if len(msgs) == 0 {
				continue // newWorld channels start empty
			}
			out := make([]*runtime.Message, len(msgs))
			for i, m := range msgs {
				out[i] = r.permMessage(m, g)
			}
			pw.channels[g.node[from]*cfg.Nodes+g.node[to]] = out
		}
	}
	for n := 0; n < cfg.Nodes; n++ {
		s := w.stalled[n]
		if s >= 0 {
			s = g.blk[s]
		}
		pw.stalled[g.node[n]] = s
	}
	pw.drops, pw.dups, pw.corrupts = w.drops, w.dups, w.corrupts
	pw.sendErr = w.sendErr
	return pw
}

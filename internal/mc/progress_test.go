package mc_test

import (
	"strings"
	"testing"
	"time"

	"teapot/internal/mc"
)

// TestProgressWriterRateLimit drives the plain-writer path with a fake
// clock: the first snapshot always prints, snapshots inside the interval
// are suppressed, and the cadence recovers once the clock advances.
func TestProgressWriterRateLimit(t *testing.T) {
	var b strings.Builder
	now := time.Unix(0, 0)
	pw := &mc.ProgressWriter{
		W:        &b,
		Interval: 100 * time.Millisecond,
		Now:      func() time.Time { return now },
	}
	snap := func(depth int) mc.ProgressInfo {
		return mc.ProgressInfo{Depth: depth, Frontier: 10 * depth, States: 100 * depth,
			Transitions: int64(300 * depth), Elapsed: time.Second,
			VisitedBytes: 2048, ShardMin: 1, ShardMax: 4}
	}
	pw.Report(snap(0)) // first line always prints
	pw.Report(snap(1)) // same instant: suppressed
	now = now.Add(50 * time.Millisecond)
	pw.Report(snap(2)) // inside the interval: suppressed
	now = now.Add(60 * time.Millisecond)
	pw.Report(snap(3)) // 110ms since last line: prints
	if pw.Lines() != 2 {
		t.Fatalf("Lines() = %d, want 2\n%s", pw.Lines(), b.String())
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", len(lines), b.String())
	}
	if want := "mc: depth 0  frontier 0  states 0 (2.0 KiB)  0 st/s  dedup 0.00  shards 1..4"; lines[0] != want {
		t.Errorf("line 0 = %q, want %q", lines[0], want)
	}
	if want := "mc: depth 3  frontier 30  states 300 (2.0 KiB)  300 st/s  dedup 3.00  shards 1..4"; lines[1] != want {
		t.Errorf("line 1 = %q, want %q", lines[1], want)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.0 KiB",
		5 << 20: "5.0 MiB",
		3 << 30: "3.0 GiB",
		1536:    "1.5 KiB",
	}
	for n, want := range cases {
		if got := mc.FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

// TestProgressSnapshotInvariants checks the per-snapshot bookkeeping on a
// real run: states/transitions/bytes are nondecreasing across layers,
// frontier matches the next layer's growth, and the shard counts sum to
// the committed-state total.
func TestProgressSnapshotInvariants(t *testing.T) {
	cfg := stacheConfig(t, 2, 1, 1)
	var snaps []mc.ProgressInfo
	cfg.Progress = func(p mc.ProgressInfo) { snaps = append(snaps, p) }
	res, err := mc.Check(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %s", res.Violation)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	prev := mc.ProgressInfo{States: 1} // the root is committed before depth 0
	peak := 1
	for i, p := range snaps {
		if p.States < prev.States || p.Transitions < prev.Transitions ||
			p.VisitedBytes < prev.VisitedBytes {
			t.Errorf("snapshot %d went backwards: %+v after %+v", i, p, prev)
		}
		if p.States != prev.States+p.Frontier {
			t.Errorf("snapshot %d: states %d != previous %d + frontier %d",
				i, p.States, prev.States, p.Frontier)
		}
		if p.ShardMin > p.ShardMax {
			t.Errorf("snapshot %d: shard min %d > max %d", i, p.ShardMin, p.ShardMax)
		}
		if p.Frontier > peak {
			peak = p.Frontier
		}
		prev = p
	}
	if res.PeakFrontier != peak {
		t.Errorf("PeakFrontier = %d, snapshots say %d", res.PeakFrontier, peak)
	}
	if last := snaps[len(snaps)-1]; last.Frontier != 0 {
		t.Errorf("final snapshot frontier = %d, want 0 (search exhausted)", last.Frontier)
	}
	if res.VisitedBytes != snaps[len(snaps)-1].VisitedBytes {
		t.Errorf("Result.VisitedBytes %d != final snapshot %d",
			res.VisitedBytes, snaps[len(snaps)-1].VisitedBytes)
	}
}

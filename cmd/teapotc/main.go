// Teapotc is the Teapot compiler driver: it parses and checks a protocol
// specification and emits any of the back-end artifacts — executable Go
// (the paper's C target), a Murphi verification model (§7), a Graphviz
// state-machine rendering, the IR listing, or a reformatted source.
//
// Usage:
//
//	teapotc [flags] file.tea
//	teapotc -builtin stache -emit go
//
// Flags:
//
//	-builtin name   use a bundled protocol (stache, stache-cas, stache-buggy,
//	                lcm, lcm-update, lcm-mcc, lcm-both, bufwrite, update)
//	-emit kind      go | murphi | dot | ir | fmt | stats (default stats)
//	-O              enable the constant-continuation optimization (default on)
//	-pkg name       package name for -emit go (default "proto")
//	-dot-prefix s   state-name filter for -emit dot ("Cache_", "Home_")
//	-dot-ideal      elide transient states (Figures 1 and 2)
//	-o file         output file (default stdout)
package main

import (
	"flag"
	"fmt"
	"os"

	"teapot/internal/ast"
	"teapot/internal/codegen"
	"teapot/internal/cont"
	"teapot/internal/core"
	"teapot/internal/dot"
	"teapot/internal/murphi"
	"teapot/internal/protocols/bufwrite"
	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
	"teapot/internal/protocols/update"
)

func main() {
	var (
		builtin    = flag.String("builtin", "", "use a bundled protocol instead of a source file")
		emit       = flag.String("emit", "stats", "artifact to emit: go|murphi|dot|ir|fmt|stats")
		optimize   = flag.Bool("O", true, "enable the constant-continuation optimization")
		pkg        = flag.String("pkg", "proto", "package name for -emit go")
		dotPrefix  = flag.String("dot-prefix", "", "state-name prefix filter for -emit dot")
		dotIdeal   = flag.Bool("dot-ideal", false, "elide transient states in -emit dot")
		outFile    = flag.String("o", "", "output file (default stdout)")
		homeStart  = flag.String("home-start", "Home_Idle", "initial home-side state")
		cacheStart = flag.String("cache-start", "Cache_Inv", "initial cache-side state")
	)
	flag.Parse()

	src, name, err := loadSource(*builtin, flag.Args())
	if err != nil {
		fatal(err)
	}
	art, err := core.Compile(core.Config{
		Name: name, Source: src, Optimize: *optimize,
		HomeStart: *homeStart, CacheStart: *cacheStart,
	})
	if err != nil {
		fatal(err)
	}

	var out string
	switch *emit {
	case "go":
		out = codegen.Generate(art.IR, *pkg)
	case "murphi":
		out = murphi.Generate(art.IR, murphi.Options{})
	case "dot":
		m := dot.Extract(art.IR, dot.Options{Prefix: *dotPrefix, IncludeTransient: !*dotIdeal})
		out = dot.Render(m, name)
	case "ir":
		for _, f := range art.IR.Funcs {
			out += f.Disassemble() + "\n"
		}
	case "fmt":
		out = ast.Print(art.AST)
	case "stats":
		out = stats(art)
	default:
		fatal(fmt.Errorf("unknown -emit kind %q", *emit))
	}

	if *outFile == "" {
		fmt.Print(out)
		return
	}
	if err := os.WriteFile(*outFile, []byte(out), 0o644); err != nil {
		fatal(err)
	}
}

func loadSource(builtin string, args []string) (src, name string, err error) {
	switch builtin {
	case "stache":
		return stache.Source, "stache.tea", nil
	case "stache-cas":
		return stache.CASSource, "stache-cas.tea", nil
	case "stache-buggy":
		return stache.BuggySource, "stache-buggy.tea", nil
	case "lcm":
		return lcm.Source(lcm.Base), "lcm.tea", nil
	case "lcm-update":
		return lcm.Source(lcm.Update), "lcm-update.tea", nil
	case "lcm-mcc":
		return lcm.Source(lcm.MCC), "lcm-mcc.tea", nil
	case "lcm-both":
		return lcm.Source(lcm.Both), "lcm-both.tea", nil
	case "bufwrite":
		return bufwrite.Source, "bufwrite.tea", nil
	case "update":
		return update.Source, "update.tea", nil
	case "":
		if len(args) != 1 {
			return "", "", fmt.Errorf("usage: teapotc [flags] file.tea (or -builtin name)")
		}
		b, err := os.ReadFile(args[0])
		if err != nil {
			return "", "", err
		}
		return string(b), args[0], nil
	}
	return "", "", fmt.Errorf("unknown builtin %q", builtin)
}

func stats(art *core.Artifacts) string {
	sp := art.Sema
	st := art.Stats
	out := fmt.Sprintf("protocol %s\n", sp.ProtoName)
	out += fmt.Sprintf("  states:    %d (%d transient)\n", len(sp.States), countTransient(art))
	out += fmt.Sprintf("  messages:  %d\n", len(sp.Messages))
	out += fmt.Sprintf("  handlers:  %d\n", sp.NumHandlers())
	out += fmt.Sprintf("  suspend sites: %d (static %d, constant %d, dynamic %d, max saved %d)\n",
		st.Sites, st.Static, st.Constant, st.Dynamic, st.MaxSaved)
	out += fmt.Sprintf("  options:   %+v\n", cont.Options{Liveness: true, ConstCont: art.Protocol.Opts.ConstCont})
	return out
}

func countTransient(art *core.Artifacts) int {
	n := 0
	for _, s := range art.Sema.States {
		if s.Transient {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teapotc:", err)
	os.Exit(1)
}

package runtime_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"teapot/internal/core"
	"teapot/internal/runtime"
	"teapot/internal/vm"
)

// encodeFixture builds an engine over a protocol with suspend sites so
// continuations can be encoded.
func encodeFixture(t *testing.T) (*runtime.Engine, *runtime.Protocol) {
	t.Helper()
	art := core.MustCompile(core.Config{
		Name: "toy.tea", Source: toyProtocol, Optimize: true,
		HomeStart: "H_Idle", CacheStart: "C_Idle",
	})
	m := newTestMachine()
	e := runtime.NewEngine(art.Protocol, 1, 3, m, nullSupport{})
	m.engines = append(m.engines, nil, e)
	return e, art.Protocol
}

// randomValue generates an encodable value; depth bounds nesting.
func randomValue(rng *rand.Rand, e *runtime.Engine, depth int) vm.Value {
	switch k := rng.Intn(8); {
	case k == 0:
		return vm.IntVal(rng.Int63n(1000) - 500)
	case k == 1:
		return vm.BoolVal(rng.Intn(2) == 0)
	case k == 2:
		return vm.NodeVal(rng.Intn(8) - 1)
	case k == 3:
		return vm.IDVal(rng.Intn(3))
	case k == 4:
		return vm.MsgVal(rng.Intn(4))
	case k == 5:
		return vm.StringVal("s" + string(rune('a'+rng.Intn(26))))
	case k == 6 && depth > 0:
		sv := &vm.StateVal{State: rng.Intn(len(e.Proto.IR.Sema.States))}
		for i := 0; i < rng.Intn(3); i++ {
			sv.Args = append(sv.Args, randomValue(rng, e, depth-1))
		}
		return vm.StateValue(sv)
	case k == 7 && depth > 0 && len(e.Proto.IR.Sites) > 0:
		site := e.Proto.IR.Sites[rng.Intn(len(e.Proto.IR.Sites))]
		c := &vm.Cont{Fn: site.Func, Frag: site.FragIdx, Site: site.ID}
		for range site.Func.Frags[site.FragIdx].Saved {
			c.Saved = append(c.Saved, randomValue(rng, e, 0))
		}
		return vm.ContVal(c)
	}
	return vm.Value{}
}

// TestValueRoundTripProperty: encode∘decode is the identity on encodable
// values (up to vm.Equal and re-encoding).
func TestValueRoundTripProperty(t *testing.T) {
	e, _ := encodeFixture(t)
	block := e.Blocks[0]
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomValue(rng, e, 2)
		enc := &runtime.Encoder{}
		if err := e.EncodeValue(enc, v, nil); err != nil {
			return false
		}
		got, err := e.DecodeValue(runtime.NewDecoder(enc.Bytes()), block, nil)
		if err != nil {
			return false
		}
		// Continuations compare by re-encoding (pointer identity differs).
		enc2 := &runtime.Encoder{}
		if err := e.EncodeValue(enc2, got, nil); err != nil {
			return false
		}
		return string(enc.Bytes()) == string(enc2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStateRoundTrip: a full engine snapshot decodes to a state that
// re-encodes identically (canonical form).
func TestStateRoundTrip(t *testing.T) {
	e, p := encodeFixture(t)
	rng := rand.New(rand.NewSource(42))
	// Randomize block states, vars, and deferred queues.
	for _, b := range e.Blocks {
		sv := randomValue(rng, e, 1)
		for sv.State() == nil {
			sv = vm.StateValue(&vm.StateVal{State: rng.Intn(len(p.IR.Sema.States))})
		}
		b.State = sv.State()
		for i := range b.Vars {
			b.Vars[i] = vm.IntVal(rng.Int63n(100))
		}
		for i := 0; i < rng.Intn(3); i++ {
			b.Deferred = append(b.Deferred, &runtime.Message{
				Tag: rng.Intn(4), ID: b.ID, Src: rng.Intn(4),
			})
		}
	}
	enc := &runtime.Encoder{}
	if err := e.EncodeState(enc, nil); err != nil {
		t.Fatal(err)
	}
	// Decode into a fresh engine of the same shape.
	art := core.MustCompile(core.Config{
		Name: "toy.tea", Source: toyProtocol, Optimize: true,
		HomeStart: "H_Idle", CacheStart: "C_Idle",
	})
	m2 := newTestMachine()
	e2 := runtime.NewEngine(art.Protocol, 1, 3, m2, nullSupport{})
	if err := e2.DecodeState(runtime.NewDecoder(enc.Bytes()), nil); err != nil {
		t.Fatal(err)
	}
	enc2 := &runtime.Encoder{}
	if err := e2.EncodeState(enc2, nil); err != nil {
		t.Fatal(err)
	}
	if string(enc.Bytes()) != string(enc2.Bytes()) {
		t.Error("snapshot round trip not canonical")
	}
	// Deferred queues survive.
	for i, b := range e.Blocks {
		if len(b.Deferred) != len(e2.Blocks[i].Deferred) {
			t.Errorf("block %d deferred: %d vs %d", i, len(b.Deferred), len(e2.Blocks[i].Deferred))
		}
	}
}

func TestMessageRoundTrip(t *testing.T) {
	e, _ := encodeFixture(t)
	msg := &runtime.Message{
		Tag: 2, ID: 1, Src: 3, Data: true,
		Payload: []vm.Value{vm.IntVal(7), vm.BoolVal(true), vm.StringVal("x")},
	}
	enc := &runtime.Encoder{}
	if err := e.EncodeMessage(enc, msg, nil); err != nil {
		t.Fatal(err)
	}
	got, err := e.DecodeMessage(runtime.NewDecoder(enc.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != 2 || got.ID != 1 || got.Src != 3 || !got.Data || len(got.Payload) != 3 {
		t.Errorf("got %+v", got)
	}
	if got.Payload[0].Int != 7 || !got.Payload[1].Bool() || got.Payload[2].Str != "x" {
		t.Errorf("payload = %v", got.Payload)
	}
}

func TestEncoderPrimitives(t *testing.T) {
	enc := &runtime.Encoder{}
	enc.Int(-123456)
	enc.Str("hello")
	enc.Byte(0xAB)
	d := runtime.NewDecoder(enc.Bytes())
	if got := d.Int(); got != -123456 {
		t.Errorf("Int = %d", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Byte(); got != 0xAB {
		t.Errorf("Byte = %x", got)
	}
}

func TestAbstractValueWithoutCodecFails(t *testing.T) {
	e, _ := encodeFixture(t)
	enc := &runtime.Encoder{}
	if err := e.EncodeValue(enc, vm.AbstractVal("opaque"), nil); err == nil {
		t.Error("expected error encoding abstract value without codec")
	}
}

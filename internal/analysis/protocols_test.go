package analysis_test

import (
	"strings"
	"testing"
	"testing/quick"

	"teapot/internal/analysis"
	"teapot/internal/core"
	"teapot/internal/protocols"
)

// TestBundledProtocols runs the full suite over every bundled protocol,
// optimized and unoptimized: the shipped protocols must vet clean (no
// finding at warning level or above), and the seeded-bug Stache variant
// must produce the defer-deadlock finding that names the state and
// message behind §7's counterexample.
func TestBundledProtocols(t *testing.T) {
	for _, e := range protocols.All() {
		for _, optimize := range []bool{true, false} {
			cfg := e.Config
			cfg.Optimize = optimize
			rep := analysis.Analyze(core.MustCompile(cfg).Protocol)
			name := e.Name
			if !optimize {
				name += " (unoptimized)"
			}
			if e.Name == "stache-ft-buggy" {
				// The fuzzer's seeded fixture: a deleted invalidation
				// whose handlers all still progress, so it is invisible
				// to static analysis by design — only a faulted schedule
				// (or the model checker under a drop budget) surfaces
				// the coherence violation. It must vet clean.
				if ds := rep.Actionable(); len(ds) != 0 {
					t.Errorf("%s: want a clean report (the seeded bug is dynamic), got:\n%s", name, rep)
				}
				continue
			}
			if e.Buggy {
				ds := rep.ByCheck("defer-deadlock")
				if len(ds) != 1 {
					t.Errorf("%s: defer-deadlock findings = %d, report:\n%s", name, len(ds), rep)
					continue
				}
				for _, want := range []string{"Cache_RO_To_RW", "PUT_NO_DATA_REQ"} {
					if !strings.Contains(ds[0].Msg, want) {
						t.Errorf("%s: finding %q lacks %q", name, ds[0].Msg, want)
					}
				}
				continue
			}
			if ds := rep.Actionable(); len(ds) != 0 {
				t.Errorf("%s: want a clean report, got:\n%s", name, rep)
			}
		}
	}
}

// TestReportDeterministic is the reproducibility property: compiling and
// vetting the same protocol twice yields byte-identical reports.
func TestReportDeterministic(t *testing.T) {
	all := protocols.All()
	run := func(cfg core.Config) string {
		return analysis.Analyze(core.MustCompile(cfg).Protocol).String()
	}
	property := func(idx uint8) bool {
		e := all[int(idx)%len(all)]
		return run(e.Config) == run(e.Config)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestReportGolden pins the report line format: file:line:col, severity,
// message, and bracketed check ID, sorted by position.
func TestReportGolden(t *testing.T) {
	const src = `protocol P begin
  state A();
  state D();
  message GO;
end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Drop(); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
state P.D() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Drop(); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Drop(); end;
end;
`
	a, err := core.Compile(core.Config{
		Name: "p.tea", Source: src, Optimize: true,
		HomeStart: "A", CacheStart: "A",
	})
	if err != nil {
		t.Fatal(err)
	}
	got := analysis.Analyze(a.Protocol).String()
	want := "p.tea:6:1: warning: state A enqueues messages but no handler transitions or resumes: the deferred queue never drains [vet:queue-stuck]\n" +
		"p.tea:10:1: warning: state D is unreachable from the start states (A, A) [vet:unreachable]\n"
	if got != want {
		t.Errorf("report:\n%s\nwant:\n%s", got, want)
	}
}

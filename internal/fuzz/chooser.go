package fuzz

import (
	"teapot/internal/tempest"
)

// splitmix64, the repo's standard small PRNG.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// DefaultRate is the per-choice deviation probability: how often the
// recorder strays from the benign option. High enough that a handful of
// schedules exercises faults and reorderings, low enough that most of a
// run stays on the fast path (heavily faulted runs mostly die of budget
// exhaustion, not interesting interleavings).
const DefaultRate = 0.25

// Recorder is the fuzzing chooser: it draws each decision from a seeded
// RNG and records every non-benign pick. The same seed always produces
// the same decision sequence over the same run.
type Recorder struct {
	rng       rng
	rate      float64
	step      uint64
	decisions []Decision
}

// NewRecorder builds a recorder. rate 0 means DefaultRate.
func NewRecorder(seed uint64, rate float64) *Recorder {
	if rate == 0 {
		rate = DefaultRate
	}
	return &Recorder{rng: rng{s: seed}, rate: rate}
}

// Choose implements tempest.Chooser.
func (r *Recorder) Choose(kind tempest.ChoiceKind, n int) int {
	step := r.step
	r.step++
	pick := 0
	if r.rng.float() < r.rate {
		pick = 1 + r.rng.intn(n-1)
	}
	if pick != 0 {
		r.decisions = append(r.decisions, Decision{Step: step, Kind: kindName(kind), Pick: pick})
	}
	return pick
}

// Steps returns how many choice points the run exposed.
func (r *Recorder) Steps() uint64 { return r.step }

// Decisions returns the recorded non-benign picks, in step order.
func (r *Recorder) Decisions() []Decision { return r.decisions }

// Replayer plays a schedule's decisions back: at each recorded step the
// recorded pick, benign option 0 everywhere else. Out-of-range picks (a
// decision recorded under a wider option set — possible for shrunk
// subsets whose early decisions changed the run) fall back to 0 rather
// than failing, so every subset of a schedule is itself a valid schedule;
// delta debugging relies on that totality.
type Replayer struct {
	decisions []Decision
	next      int
	step      uint64
	applied   int
}

// NewReplayer builds a replayer over the schedule's decisions (which Save
// and the recorder keep in ascending step order).
func NewReplayer(s *Schedule) *Replayer {
	return &Replayer{decisions: s.Decisions}
}

// Choose implements tempest.Chooser.
func (r *Replayer) Choose(kind tempest.ChoiceKind, n int) int {
	step := r.step
	r.step++
	for r.next < len(r.decisions) && r.decisions[r.next].Step < step {
		r.next++
	}
	if r.next >= len(r.decisions) {
		return 0
	}
	d := r.decisions[r.next]
	if d.Step != step || d.Kind != kindName(kind) || d.Pick < 0 || d.Pick >= n {
		return 0
	}
	r.next++
	r.applied++
	return d.Pick
}

// Steps returns how many choice points the replayed run exposed.
func (r *Replayer) Steps() uint64 { return r.step }

// Applied returns how many recorded decisions actually took effect.
func (r *Replayer) Applied() int { return r.applied }

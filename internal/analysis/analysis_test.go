package analysis_test

import (
	"strings"
	"testing"

	"teapot/internal/analysis"
	"teapot/internal/core"
	"teapot/internal/runtime"
	"teapot/internal/source"
)

func compile(t *testing.T, src string, optimize bool) *runtime.Protocol {
	t.Helper()
	a, err := core.Compile(core.Config{
		Name: "p.tea", Source: src, Optimize: optimize,
		HomeStart: "A", CacheStart: "A",
	})
	if err != nil {
		t.Fatal(err)
	}
	return a.Protocol
}

func vet(t *testing.T, src string) *analysis.Report {
	t.Helper()
	return analysis.Analyze(compile(t, src, true))
}

const defaultDrop = `  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Drop(); end;
`

func TestCoverageMissing(t *testing.T) {
	rep := vet(t, `
protocol P begin state A(); message GO; message OK; end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Drop(); end;
end;
`)
	ds := rep.ByCheck("coverage")
	if len(ds) != 1 {
		t.Fatalf("coverage findings = %d, report:\n%s", len(ds), rep)
	}
	if d := ds[0]; d.Severity != source.SevError || !strings.Contains(d.Msg, "OK") {
		t.Errorf("finding = %v", d)
	}
}

func TestUnreachableState(t *testing.T) {
	rep := vet(t, `
protocol P begin state A(); state D(); message GO; end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Drop(); end;
`+defaultDrop+`end;
state P.D() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Drop(); end;
`+defaultDrop+`end;
`)
	ds := rep.ByCheck("unreachable")
	if len(ds) != 1 || !strings.Contains(ds[0].Msg, "D") {
		t.Fatalf("unreachable findings = %v, report:\n%s", ds, rep)
	}
}

func TestNoExitAndStuckContinuation(t *testing.T) {
	rep := vet(t, `
protocol P begin
  state A(); state B(C : CONT) transient;
  message GO; message OK;
end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Suspend(L, B{L}); end;
`+defaultDrop+`end;
state P.B(C : CONT) begin
  message OK (id : ID; var info : INFO; src : NODE) begin Drop(); end;
`+defaultDrop+`end;
`)
	if ds := rep.ByCheck("no-exit"); len(ds) != 1 || !strings.Contains(ds[0].Msg, "B") {
		t.Errorf("no-exit findings = %v, report:\n%s", ds, rep)
	}
	if ds := rep.ByCheck("cont-stuck"); len(ds) != 1 || !strings.Contains(ds[0].Msg, "B") {
		t.Errorf("cont-stuck findings = %v, report:\n%s", ds, rep)
	}
}

func TestContinuationLeak(t *testing.T) {
	rep := vet(t, `
protocol P begin
  state A(); state B(C : CONT) transient;
  message GO; message OK; message OK2;
end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Suspend(L, B{L}); end;
`+defaultDrop+`end;
state P.B(C : CONT) begin
  message OK (id : ID; var info : INFO; src : NODE) begin SetState(info, A{}); end;
  message OK2 (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
`+defaultDrop+`end;
`)
	ds := rep.ByCheck("cont-leak")
	if len(ds) != 1 || !strings.Contains(ds[0].Msg, "OK") {
		t.Fatalf("cont-leak findings = %v, report:\n%s", ds, rep)
	}
	if len(rep.ByCheck("cont-stuck")) != 0 {
		t.Errorf("cont-stuck should not fire (OK2 resumes), report:\n%s", rep)
	}
}

func TestQueueStuck(t *testing.T) {
	rep := vet(t, `
protocol P begin state A(); message GO; end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Send(src, GO, id); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
`)
	ds := rep.ByCheck("queue-stuck")
	if len(ds) != 1 || !strings.Contains(ds[0].Msg, "A") {
		t.Fatalf("queue-stuck findings = %v, report:\n%s", ds, rep)
	}
}

// TestDeferDeadlock builds the §7 bug shape in miniature: REQ is answered
// synchronously (with ACK) by every dedicated handler, the home suspends
// awaiting that ACK, and transient state C3 — entered from a state that
// does handle REQ — defers it via DEFAULT Enqueue.
func TestDeferDeadlock(t *testing.T) {
	src := `
protocol P begin
  state H1(); state HT(C : CONT) transient;
  state A(); state C2(); state C3(C : CONT) transient;
  message REQ; message ACK; message GRANT; message EV; message EV2;
end;
state P.H1() begin
  message EV (id : ID; var info : INFO; src : NODE)
  begin
    Send(src, REQ, id);
    Suspend(L, HT{L});
  end;
` + defaultDrop + `end;
state P.HT(C : CONT) begin
  message ACK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
state P.A() begin
  message REQ (id : ID; var info : INFO; src : NODE) begin Send(src, ACK, id); end;
  message EV (id : ID; var info : INFO; src : NODE) begin Suspend(L, C3{L}); end;
  message EV2 (id : ID; var info : INFO; src : NODE) begin SetState(info, C2{}); end;
` + defaultDrop + `end;
state P.C2() begin
  message REQ (id : ID; var info : INFO; src : NODE) begin Send(src, ACK, id); end;
` + defaultDrop + `end;
state P.C3(C : CONT) begin
  message GRANT (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
`
	a, err := core.Compile(core.Config{
		Name: "p.tea", Source: src, Optimize: true,
		HomeStart: "H1", CacheStart: "A",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := analysis.Analyze(a.Protocol)
	ds := rep.ByCheck("defer-deadlock")
	if len(ds) != 1 {
		t.Fatalf("defer-deadlock findings = %d, report:\n%s", len(ds), rep)
	}
	for _, want := range []string{"C3", "REQ", "ACK"} {
		if !strings.Contains(ds[0].Msg, want) {
			t.Errorf("finding %q lacks %q", ds[0].Msg, want)
		}
	}
}

func TestDeadStore(t *testing.T) {
	rep := vet(t, `
protocol P begin state A(); message GO; end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE)
  var x : int;
  begin
    x := 1;
  end;
`+defaultDrop+`end;
`)
	ds := rep.ByCheck("dead-store")
	if len(ds) != 1 {
		t.Fatalf("dead-store findings = %v, report:\n%s", ds, rep)
	}
}

func TestUnassignedRead(t *testing.T) {
	rep := vet(t, `
protocol P begin state A(); message GO; end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE)
  var x : int;
  begin
    if (x = 1) then Drop(); endif;
  end;
`+defaultDrop+`end;
`)
	ds := rep.ByCheck("unassigned")
	if len(ds) != 1 || !strings.Contains(ds[0].Msg, "x") {
		t.Fatalf("unassigned findings = %v, report:\n%s", ds, rep)
	}
}

func TestContAllocLint(t *testing.T) {
	src := `
protocol P begin
  state A(); state B(C : CONT) transient;
  message GO; message OK;
end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE)
  var x : int;
  begin
    x := 7;
    Suspend(L, B{L});
    if (x = 7) then Drop(); endif;
  end;
` + defaultDrop + `end;
state P.B(C : CONT) begin
  message OK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
`
	rep := analysis.Analyze(compile(t, src, false))
	ds := rep.ByCheck("cont-alloc")
	if len(ds) != 1 {
		t.Fatalf("cont-alloc findings = %v, report:\n%s", ds, rep)
	}
	if ds[0].Severity != source.SevInfo {
		t.Errorf("cont-alloc severity = %v, want info", ds[0].Severity)
	}
	for _, d := range rep.Actionable() {
		if d.Check == "vet:cont-alloc" {
			t.Error("cont-alloc must be advisory, found it in Actionable")
		}
	}
}

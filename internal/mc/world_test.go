package mc_test

import (
	"strings"
	"sync"
	"testing"

	"teapot/internal/core"
	"teapot/internal/mc"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/vm"
)

// recordingGen wraps the Stache generator and inspects the World accessors.
// The checker calls Enabled concurrently, so the recording is locked.
type recordingGen struct {
	inner mc.EventGen

	mu       sync.Mutex
	sawHome  bool
	sawVar   bool
	varSlot  int
	messages int
}

func (g *recordingGen) Enabled(w *mc.World, node, block int) []mc.Event {
	g.mu.Lock()
	if w.IsHome(node, block) {
		g.sawHome = true
	}
	if w.BlockVarInt(node, block, g.varSlot) >= 0 {
		g.sawVar = true
	}
	if w.AnyMessage(func(m *runtime.Message) bool { return true }) {
		g.messages++
	}
	g.mu.Unlock()
	if w.Nodes() != 2 {
		panic("Nodes() wrong")
	}
	return g.inner.Enabled(w, node, block)
}

func TestWorldAccessors(t *testing.T) {
	a := stache.MustCompile(true)
	slot := -1
	for _, v := range a.Sema.ProtVars {
		if v.Name == "sharers" {
			slot = v.Index
		}
	}
	g := &recordingGen{inner: stache.NewEvents(a.Protocol), varSlot: slot}
	res, err := mc.Check(mc.Config{
		Proto: a.Protocol, Support: stache.MustSupport(a.Protocol),
		Nodes: 2, Blocks: 1,
		Events: g, CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %s", res.Violation)
	}
	if !g.sawHome || !g.sawVar || g.messages == 0 {
		t.Errorf("accessors unexercised: %+v", g)
	}
}

// TestTraceStepsAreWellFormed: a violation trace contains only valid action
// descriptions ordered from the initial state.
func TestTraceStepsAreWellFormed(t *testing.T) {
	p, err := stache.CompileBuggy()
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.Check(mc.Config{
		Proto: p, Support: stache.MustSupport(p),
		Nodes: 2, Blocks: 1,
		Events: stache.NewEvents(p), CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected violation")
	}
	for i, step := range res.Violation.Trace {
		if !strings.HasPrefix(step, "deliver ") && !strings.HasPrefix(step, "event ") {
			t.Errorf("step %d malformed: %q", i, step)
		}
	}
	// The first step must be an event (the initial state has no messages).
	if !strings.HasPrefix(res.Violation.Trace[0], "event ") {
		t.Errorf("first step should be an event: %q", res.Violation.Trace[0])
	}
	// BFS traces are shortest: the seeded deadlock needs at least the
	// read, grant, two write faults, invalidation, and upgrade.
	if len(res.Violation.Trace) < 6 {
		t.Errorf("trace suspiciously short: %d steps", len(res.Violation.Trace))
	}
}

// deferGen issues a single stalling event and nothing else, to test
// deadlock detection wiring precisely.
type deferGen struct {
	tag  int
	done bool
}

func (g *deferGen) Enabled(w *mc.World, node, block int) []mc.Event {
	if node != 1 || w.Stalled(1) >= 0 || w.StateName(1, 0) != "Cache_Inv" {
		return nil
	}
	return []mc.Event{{Name: "RD_FAULT", Tag: g.tag, Stalls: true}}
}

// blackholeProto never answers a read request: the checker must report a
// deadlock, not hang.
const blackholeProto = `
protocol Hole begin
  state Cache_Inv();
  state Wait(C : CONT) transient;
  state Home();
  message RD_FAULT;
  message REQ;
end;
state Hole.Cache_Inv() begin
  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), REQ, id);
    Suspend(L, Wait{L});
    WakeUp(id);
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Drop(); end;
end;
state Hole.Wait(C : CONT) begin
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
state Hole.Home() begin
  message REQ (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Drop(); end;
end;
`

func TestDeadlockDetectionWiring(t *testing.T) {
	art, err := compileInline(blackholeProto, "Home", "Cache_Inv")
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.Check(mc.Config{
		Proto: art, Support: nullSupport{},
		Nodes: 2, Blocks: 1,
		Events: &deferGen{tag: art.MsgIndex("RD_FAULT")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Kind != "deadlock" {
		t.Fatalf("violation = %v, want deadlock", res.Violation)
	}
	if !strings.Contains(res.Violation.Msg, "node 1 stalled") {
		t.Errorf("msg = %q", res.Violation.Msg)
	}
}

// queueFloodProto enqueues forever without transitioning; the queue cap
// must flag it.
const queueFloodProto = `
protocol Flood begin
  state S();
  message PING;
end;
state Flood.S() begin
  message PING (id : ID; var info : INFO; src : NODE)
  begin
    Send(src, PING, id);
    Enqueue(MessageTag, id, info, src);
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Drop(); end;
end;
`

type pingOnce struct{ tag int }

func (g *pingOnce) Enabled(w *mc.World, node, block int) []mc.Event {
	return []mc.Event{{Name: "PING", Tag: g.tag}}
}

func TestQueueCapViolation(t *testing.T) {
	art, err := compileInline(queueFloodProto, "S", "S")
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.Check(mc.Config{
		Proto: art, Support: nullSupport{},
		Nodes: 2, Blocks: 1, QueueCap: 4, ChannelCap: 6,
		Events: &pingOnce{tag: art.MsgIndex("PING")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil || res.Violation.Kind != "invariant" {
		t.Fatalf("violation = %v, want queue/channel invariant", res.Violation)
	}
}

func compileInline(src, home, cache string) (*runtime.Protocol, error) {
	art, err := coreCompile(src, home, cache)
	if err != nil {
		return nil, err
	}
	return art, nil
}

type nullSupport struct{}

func (nullSupport) Call(ctx *runtime.Ctx, name string, args []*vm.Value) (vm.Value, error) {
	return vm.Value{}, nil
}
func (nullSupport) ModConst(ctx *runtime.Ctx, name string) vm.Value { return vm.Value{} }

func coreCompile(src, home, cache string) (*runtime.Protocol, error) {
	art, err := core.Compile(core.Config{
		Name: "inline.tea", Source: src, Optimize: true,
		HomeStart: home, CacheStart: cache,
	})
	if err != nil {
		return nil, err
	}
	return art.Protocol, nil
}

package manifest

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"teapot/internal/obs"
)

func validManifest() *Manifest {
	return &Manifest{
		ManifestVersion: Version,
		Tool:            "teapot-verify",
		Protocol:        "stache",
		Nodes:           2,
		Blocks:          1,
		Net:             "reorder=1",
		Coverage: &obs.CoverageReport{
			Dispatch:    map[string]uint64{"Home_Idle.GET_RO_REQ": 3},
			Transitions: map[string]uint64{"Home_Idle.GET_RO_REQ->Home_RS": 3},
		},
		MC: &MCStats{States: 10, Transitions: 12, MaxDepth: 4, Workers: 1},
	}
}

func TestEncodeDeterministic(t *testing.T) {
	m := validManifest()
	a, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("two encodings of the same manifest differ")
	}
	// Map keys sort and HTML escaping is off: the "->" in transition keys
	// must survive literally.
	if !strings.Contains(string(a), "Home_Idle.GET_RO_REQ->Home_RS") {
		t.Errorf("transition key mangled in:\n%s", a)
	}
	if strings.Contains(string(a), `\u003e`) {
		t.Errorf("HTML escaping leaked into:\n%s", a)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	m := validManifest()
	m.FlightRecorder = []string{"#0 @0 Send node0 blk0"}
	if err := Write(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip changed the manifest:\n%+v\nvs\n%+v", got, m)
	}
}

func TestValidate(t *testing.T) {
	bad := func(name string, mut func(*Manifest)) {
		m := validManifest()
		mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid manifest", name)
		}
	}
	bad("version", func(m *Manifest) { m.ManifestVersion = 99 })
	bad("tool", func(m *Manifest) { m.Tool = "" })
	bad("protocol", func(m *Manifest) { m.Protocol = "" })
	bad("geometry", func(m *Manifest) { m.Nodes = 0 })
	bad("no stats", func(m *Manifest) { m.MC = nil })
	bad("two stats", func(m *Manifest) { m.Sim = &SimStats{} })
	bad("litmus plus mc stats", func(m *Manifest) { m.Litmus = &LitmusStats{Tests: 1} })
	bad("coverage without dispatch", func(m *Manifest) { m.Coverage = &obs.CoverageReport{} })
	if err := validManifest().Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}
	m := validManifest()
	m.MC = nil
	m.Litmus = &LitmusStats{Corpus: "testdata/litmus", Mode: "all", Tests: 10}
	if err := m.Validate(); err != nil {
		t.Errorf("litmus-only manifest rejected: %v", err)
	}
}

// TestSchemaKeys pins the top-level JSON key set — the manifest schema
// consumers (teapot-cover, check.sh) key on.
func TestSchemaKeys(t *testing.T) {
	m := validManifest()
	m.Obs = &ObsSummary{Events: 5}
	m.Seed = 7
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"manifest_version", "tool", "protocol", "nodes", "blocks", "net", "seed", "coverage", "obs", "mc"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("encoded manifest missing key %q", key)
		}
	}
	if _, ok := raw["sim"]; ok {
		t.Error("nil sim stats should be omitted")
	}
}

func TestShape(t *testing.T) {
	m := validManifest()
	if got := m.Shape(); got != "stache 2x1 net=reorder=1" {
		t.Errorf("Shape = %q", got)
	}
	m.Net = ""
	if got := m.Shape(); got != "stache 2x1" {
		t.Errorf("Shape = %q", got)
	}
}

func TestMissingKeys(t *testing.T) {
	ref := map[string]uint64{"a": 1, "b": 2, "c": 3}
	other := map[string]uint64{"b": 9}
	if got := MissingKeys(ref, other); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("MissingKeys = %v, want [a c]", got)
	}
	if got := MissingKeys(other, ref); got != nil {
		t.Errorf("MissingKeys(other, ref) = %v, want nil", got)
	}
}

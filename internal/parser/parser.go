// Package parser implements a recursive-descent parser for the Teapot
// language (Appendix A of the PLDI '96 paper).
//
// The parser is deliberately liberal where the paper's own examples deviate
// from the appendix grammar:
//
//   - state headers may use parentheses or braces for their parameter lists
//     ("state Stache.Cache_RO_To_RW{C : CONT}" appears in Figure 8);
//   - argument lists accept "," or ";" separators;
//   - "exit" is accepted as a synonym for a bare "return" (every handler in
//     the paper ends with "exit;");
//   - keywords are case-insensitive ("Begin", "Suspend", "If ... Endif").
package parser

import (
	"fmt"

	"teapot/internal/ast"
	"teapot/internal/lexer"
	"teapot/internal/source"
	"teapot/internal/token"
)

// Parse parses a named Teapot source text into a Program. On error it
// returns a partial tree together with the accumulated diagnostics.
func Parse(name, src string) (*ast.Program, error) {
	file := source.NewFile(name, src)
	var errs source.ErrorList
	toks := lexer.ScanAll(file, &errs)
	p := &parser{file: file, toks: toks, errs: &errs}
	prog := p.parseProgram()
	prog.File = file
	errs.Sort()
	return prog, errs.Err()
}

type parser struct {
	file *source.File
	toks []lexer.Token
	pos  int
	errs *source.ErrorList

	panicking bool // suppress cascading errors until resync
}

func (p *parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *parser) peek() lexer.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) errorf(pos source.Pos, format string, args ...any) {
	if p.panicking {
		return
	}
	p.errs.Add(p.file.Name, pos, format, args...)
	p.panicking = true
}

func (p *parser) expect(k token.Kind) lexer.Token {
	if p.at(k) {
		p.panicking = false
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %q, found %q", k.String(), p.cur().String())
	return lexer.Token{Kind: k, Pos: p.cur().Pos}
}

// sync skips tokens until one of the kinds (or EOF) is current.
func (p *parser) sync(kinds ...token.Kind) {
	for !p.at(token.EOF) {
		for _, k := range kinds {
			if p.at(k) {
				p.panicking = false
				return
			}
		}
		p.next()
	}
}

func (p *parser) ident() *ast.Ident {
	t := p.expect(token.IDENT)
	return &ast.Ident{Name: t.Lit, NamePos: t.Pos}
}

// typeIdent parses a type name. Keywords are allowed here so that support
// modules can declare parameters of type STATE, MESSAGE, etc. (the paper's
// SetState prototype takes a state value).
func (p *parser) typeIdent() *ast.Ident {
	if p.cur().Kind.IsKeyword() {
		t := p.next()
		return &ast.Ident{Name: t.Lit, NamePos: t.Pos}
	}
	return p.ident()
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.at(token.MODULE) {
		prog.Modules = append(prog.Modules, p.parseModule())
	}
	if p.at(token.PROTOCOL) {
		prog.Protocol = p.parseProtocol()
	} else {
		p.errorf(p.cur().Pos, "expected protocol declaration, found %q", p.cur().String())
		p.sync(token.STATE, token.PROTOCOL)
		if p.at(token.PROTOCOL) {
			prog.Protocol = p.parseProtocol()
		}
	}
	for p.at(token.STATE) {
		prog.States = append(prog.States, p.parseState())
	}
	if !p.at(token.EOF) {
		p.errorf(p.cur().Pos, "unexpected %q after states", p.cur().String())
	}
	return prog
}

func (p *parser) parseModule() *ast.Module {
	m := &ast.Module{ModulePos: p.expect(token.MODULE).Pos}
	m.Name = p.ident()
	p.expect(token.BEGIN)
	for !p.at(token.END) && !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.TYPE:
			d := &ast.TypeDecl{TypePos: p.next().Pos, Name: p.ident()}
			p.expect(token.SEMICOLON)
			m.Decls = append(m.Decls, d)
		case token.CONST:
			d := &ast.ModConstDecl{ConstPos: p.next().Pos, Name: p.ident()}
			p.expect(token.COLON)
			d.Type = p.typeIdent()
			p.expect(token.SEMICOLON)
			m.Decls = append(m.Decls, d)
		case token.FUNCTION:
			d := &ast.SubDecl{DeclPos: p.next().Pos, Name: p.ident()}
			d.Params = p.parseParamList(token.LPAREN, token.RPAREN, false)
			p.expect(token.COLON)
			d.Result = p.typeIdent()
			p.expect(token.SEMICOLON)
			m.Decls = append(m.Decls, d)
		case token.PROCEDURE:
			d := &ast.SubDecl{DeclPos: p.next().Pos, Name: p.ident()}
			d.Params = p.parseParamList(token.LPAREN, token.RPAREN, false)
			p.expect(token.SEMICOLON)
			m.Decls = append(m.Decls, d)
		default:
			p.errorf(p.cur().Pos, "expected module declaration, found %q", p.cur().String())
			p.sync(token.TYPE, token.CONST, token.FUNCTION, token.PROCEDURE, token.END)
		}
	}
	p.expect(token.END)
	p.expect(token.SEMICOLON)
	return m
}

func (p *parser) parseProtocol() *ast.Protocol {
	pr := &ast.Protocol{ProtoPos: p.expect(token.PROTOCOL).Pos}
	pr.Name = p.ident()
	p.expect(token.BEGIN)
	for !p.at(token.END) && !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.VAR:
			d := &ast.ProtVarDecl{VarPos: p.next().Pos, Name: p.ident()}
			p.expect(token.COLON)
			d.Type = p.typeIdent()
			p.expect(token.SEMICOLON)
			pr.Decls = append(pr.Decls, d)
		case token.CONST:
			d := &ast.ProtConstDecl{ConstPos: p.next().Pos, Name: p.ident()}
			p.expect(token.ASSIGN)
			d.Value = p.parseExpr()
			p.expect(token.SEMICOLON)
			pr.Decls = append(pr.Decls, d)
		case token.STATE:
			d := &ast.StateDecl{StatePos: p.next().Pos, Name: p.ident()}
			if p.at(token.LPAREN) {
				d.Params = p.parseParamList(token.LPAREN, token.RPAREN, false)
			} else if p.at(token.LBRACE) {
				d.Params = p.parseParamList(token.LBRACE, token.RBRACE, false)
			}
			d.Transient = p.accept(token.TRANSIENT)
			p.expect(token.SEMICOLON)
			pr.Decls = append(pr.Decls, d)
		case token.MESSAGE:
			d := &ast.MessageDecl{MsgPos: p.next().Pos, Name: p.ident()}
			p.expect(token.SEMICOLON)
			pr.Decls = append(pr.Decls, d)
		default:
			p.errorf(p.cur().Pos, "expected protocol declaration, found %q", p.cur().String())
			p.sync(token.VAR, token.CONST, token.STATE, token.MESSAGE, token.END)
		}
	}
	p.expect(token.END)
	p.expect(token.SEMICOLON)
	return pr
}

// parseParamList parses "(a, b : T; var c : U)" (or the brace form). A
// missing list yields nil.
func (p *parser) parseParamList(open, close token.Kind, _ bool) []*ast.Param {
	if !p.accept(open) {
		return nil
	}
	var list []*ast.Param
	for !p.at(close) && !p.at(token.EOF) {
		g := &ast.Param{}
		if p.at(token.VAR) {
			g.VarPos = p.next().Pos
			g.ByRef = true
		}
		g.Names = append(g.Names, p.ident())
		for p.accept(token.COMMA) {
			g.Names = append(g.Names, p.ident())
		}
		p.expect(token.COLON)
		g.Type = p.typeIdent()
		list = append(list, g)
		if !p.accept(token.SEMICOLON) {
			break
		}
	}
	p.expect(close)
	return list
}

func (p *parser) parseState() *ast.State {
	s := &ast.State{StatePos: p.expect(token.STATE).Pos}
	first := p.ident()
	if p.accept(token.DOT) {
		s.Proto = first
		s.Name = p.ident()
	} else {
		s.Name = first
	}
	if p.at(token.LPAREN) {
		s.Params = p.parseParamList(token.LPAREN, token.RPAREN, false)
	} else if p.at(token.LBRACE) {
		s.Params = p.parseParamList(token.LBRACE, token.RBRACE, false)
	}
	p.expect(token.BEGIN)
	for p.at(token.MESSAGE) {
		s.Handlers = append(s.Handlers, p.parseHandler())
	}
	p.expect(token.END)
	p.expect(token.SEMICOLON)
	return s
}

func (p *parser) parseHandler() *ast.Handler {
	h := &ast.Handler{MsgPos: p.expect(token.MESSAGE).Pos}
	h.Name = p.ident()
	if p.at(token.LPAREN) {
		h.Params = p.parseParamList(token.LPAREN, token.RPAREN, true)
	}
	// Optional block-decls: var a, b : T; c : U; ... begin
	if p.at(token.VAR) {
		p.next()
		for p.at(token.IDENT) {
			g := &ast.Param{}
			g.Names = append(g.Names, p.ident())
			for p.accept(token.COMMA) {
				g.Names = append(g.Names, p.ident())
			}
			p.expect(token.COLON)
			g.Type = p.typeIdent()
			p.expect(token.SEMICOLON)
			h.Locals = append(h.Locals, g)
		}
	}
	p.expect(token.BEGIN)
	h.Body = p.parseStmts(token.END)
	p.expect(token.END)
	p.expect(token.SEMICOLON)
	return h
}

// stmtTerm reports whether the current token terminates a statement list.
func (p *parser) stmtTerm(terms ...token.Kind) bool {
	for _, t := range terms {
		if p.at(t) {
			return true
		}
	}
	return p.at(token.EOF)
}

func (p *parser) parseStmts(terms ...token.Kind) []ast.Stmt {
	var list []ast.Stmt
	for !p.stmtTerm(terms...) {
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			list = append(list, s)
		}
		// Statement separator: required between statements, tolerated
		// (optional) before a terminator.
		if !p.accept(token.SEMICOLON) && !p.stmtTerm(terms...) {
			p.errorf(p.cur().Pos, "expected \";\", found %q", p.cur().String())
			p.sync(append([]token.Kind{token.SEMICOLON}, terms...)...)
			p.accept(token.SEMICOLON)
		}
		if p.pos == before { // no progress; bail out of the list
			p.next()
		}
	}
	return list
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.IF:
		s := &ast.IfStmt{IfPos: p.next().Pos}
		p.expect(token.LPAREN)
		s.Cond = p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.THEN)
		s.Then = p.parseStmts(token.ELSE, token.ENDIF)
		if p.accept(token.ELSE) {
			s.Else = p.parseStmts(token.ENDIF)
		}
		p.expect(token.ENDIF)
		return s
	case token.WHILE:
		s := &ast.WhileStmt{WhilePos: p.next().Pos}
		p.expect(token.LPAREN)
		s.Cond = p.parseExpr()
		p.expect(token.RPAREN)
		p.expect(token.DO)
		s.Body = p.parseStmts(token.END)
		p.expect(token.END)
		return s
	case token.SUSPEND:
		s := &ast.SuspendStmt{SuspendPos: p.next().Pos}
		p.expect(token.LPAREN)
		s.Cont = p.ident()
		p.expect(token.COMMA)
		target := p.parseExpr()
		switch t := target.(type) {
		case *ast.StateExpr:
			s.Target = t
		case *ast.Name:
			// "Suspend(L, AwaitM)" without braces: a state with no args.
			s.Target = &ast.StateExpr{Name: t.Ident}
		default:
			p.errorf(target.Pos(), "suspend target must be a state constructor, found %s", ast.ExprString(target))
			s.Target = &ast.StateExpr{Name: &ast.Ident{Name: "<error>", NamePos: target.Pos()}}
		}
		p.expect(token.RPAREN)
		return s
	case token.RESUME:
		s := &ast.ResumeStmt{ResumePos: p.next().Pos}
		p.expect(token.LPAREN)
		s.Cont = p.parseExpr()
		p.expect(token.RPAREN)
		return s
	case token.RETURN:
		s := &ast.ReturnStmt{ReturnPos: p.next().Pos}
		if !p.at(token.SEMICOLON) && !p.stmtTerm(token.END, token.ELSE, token.ENDIF) {
			s.Value = p.parseExpr()
		}
		return s
	case token.PRINT:
		s := &ast.PrintStmt{PrintPos: p.next().Pos}
		p.expect(token.LPAREN)
		s.Args = p.parseExprList(token.RPAREN)
		p.expect(token.RPAREN)
		return s
	case token.IDENT:
		id := p.ident()
		if id.Name == "exit" && (p.at(token.SEMICOLON) || p.stmtTerm(token.END, token.ELSE, token.ENDIF)) {
			return &ast.ReturnStmt{ReturnPos: id.NamePos}
		}
		switch p.cur().Kind {
		case token.ASSIGN:
			p.next()
			return &ast.AssignStmt{LHS: id, RHS: p.parseExpr()}
		case token.LPAREN:
			p.next()
			args := p.parseExprList(token.RPAREN)
			p.expect(token.RPAREN)
			return &ast.CallStmt{Call: &ast.CallExpr{Func: id, Args: args}}
		}
		p.errorf(p.cur().Pos, "expected \":=\" or \"(\" after %q, found %q", id.Name, p.cur().String())
		return nil
	}
	p.errorf(p.cur().Pos, "expected statement, found %q", p.cur().String())
	p.next()
	return nil
}

// parseExprList parses a possibly empty list of expressions separated by ","
// or ";" up to (not consuming) the closing token.
func (p *parser) parseExprList(close token.Kind) []ast.Expr {
	var list []ast.Expr
	for !p.at(close) && !p.at(token.EOF) {
		list = append(list, p.parseExpr())
		if !p.accept(token.COMMA) && !p.accept(token.SEMICOLON) {
			break
		}
	}
	return list
}

func (p *parser) parseExpr() ast.Expr { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		op := p.cur().Kind
		prec := op.Precedence()
		if prec < minPrec {
			return x
		}
		opPos := p.next().Pos
		y := p.parseBin(prec + 1)
		x = &ast.BinExpr{Op: op, OpPos: opPos, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.NOT, token.KWNOT:
		t := p.next()
		return &ast.UnExpr{Op: token.KWNOT, OpPos: t.Pos, X: p.parseUnary()}
	case token.MINUS:
		t := p.next()
		return &ast.UnExpr{Op: token.MINUS, OpPos: t.Pos, X: p.parseUnary()}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.cur().Kind {
	case token.INT:
		t := p.next()
		var v int64
		if _, err := fmt.Sscanf(t.Lit, "%d", &v); err != nil {
			p.errorf(t.Pos, "bad integer literal %q", t.Lit)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.TRUE:
		return &ast.BoolLit{LitPos: p.next().Pos, Value: true}
	case token.FALSE:
		return &ast.BoolLit{LitPos: p.next().Pos, Value: false}
	case token.STRING:
		t := p.next()
		return &ast.StringLit{LitPos: t.Pos, Value: t.Lit}
	case token.LPAREN:
		t := p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.ParenExpr{LPos: t.Pos, X: x}
	case token.IDENT:
		id := p.ident()
		switch p.cur().Kind {
		case token.LPAREN:
			p.next()
			args := p.parseExprList(token.RPAREN)
			p.expect(token.RPAREN)
			return &ast.CallExpr{Func: id, Args: args}
		case token.LBRACE:
			p.next()
			args := p.parseExprList(token.RBRACE)
			p.expect(token.RBRACE)
			return &ast.StateExpr{Name: id, Args: args}
		}
		return &ast.Name{Ident: id}
	}
	t := p.cur()
	p.errorf(t.Pos, "expected expression, found %q", t.String())
	p.next()
	return &ast.IntLit{LitPos: t.Pos, Value: 0}
}

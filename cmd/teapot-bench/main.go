// Teapot-bench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	teapot-bench            # everything
//	teapot-bench -table 1   # Table 1 only
//	teapot-bench -table 3
//	teapot-bench -figures   # Figures 1/2/4 as DOT
//	teapot-bench -loc       # §6 code-size comparison
//	teapot-bench -bug       # the §7 bug-hunt reproduction
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"teapot/internal/bench"
)

func main() {
	var (
		table   = flag.Int("table", 0, "regenerate one table (1, 2, or 3); 0 = all")
		figures = flag.Bool("figures", false, "emit Figures 1/2/4 as DOT")
		loc     = flag.Bool("loc", false, "emit the code-size comparison")
		bug     = flag.Bool("bug", false, "run the seeded-bug hunt (§7)")
		nodes   = flag.Int("nodes", 32, "machine size for Tables 1-2")
		iters   = flag.Int("iters", 4, "workload iterations for Tables 1-2")
		workers = flag.Int("workers", 0, "model-checker workers for Table 3 (0 = GOMAXPROCS)")
		mcOut   = flag.String("mc-out", "BENCH_mc.json", "checker-throughput baseline written with -table 3 (\"\" = skip)")
	)
	flag.Parse()

	specific := *figures || *loc || *bug || *table != 0

	if *table == 1 || !specific {
		rows, err := bench.Table1(*nodes, *iters)
		check(err)
		fmt.Print(bench.FormatPerf(fmt.Sprintf("Table 1: Stache performance (%d nodes)", *nodes), rows))
		fmt.Println()
	}
	if *table == 2 || !specific {
		rows, err := bench.Table2(*nodes, *iters)
		check(err)
		fmt.Print(bench.FormatPerf(fmt.Sprintf("Table 2: LCM performance (%d nodes)", *nodes), rows))
		fmt.Println()
	}
	if *table == 3 || !specific {
		rows, err := bench.Table3(*workers)
		check(err)
		fmt.Print(bench.FormatVerify(rows))
		fmt.Println()
		faultRows, err := bench.FaultSweep(*workers)
		check(err)
		fmt.Print(bench.FormatFaults(faultRows))
		fmt.Println()
		if *table == 3 && *mcOut != "" {
			counts := []int{1}
			if n := runtime.GOMAXPROCS(0); n > 1 {
				counts = append(counts, n)
			}
			mcRows, err := bench.MCBench(counts)
			check(err)
			obsRows, err := bench.ObsBench(8, 3)
			check(err)
			symRows, err := bench.SymmetrySweep(*workers)
			check(err)
			fmt.Print(bench.FormatSymmetry(symRows))
			fmt.Println()
			covRows, err := bench.CoverageBench(8, 3, *workers)
			check(err)
			fmt.Print(bench.FormatCoverage(covRows))
			fmt.Println()
			data, err := json.MarshalIndent(bench.MCBaseline{
				MC: mcRows, Obs: obsRows, Faults: faultRows, Symmetry: symRows,
				Coverage: covRows}, "", "  ")
			check(err)
			check(os.WriteFile(*mcOut, append(data, '\n'), 0o644))
			fmt.Printf("checker throughput + obs baseline written to %s (workers %v)\n\n", *mcOut, counts)
		}
	}
	if *figures || !specific {
		for _, f := range bench.Figures() {
			fmt.Printf("%s: %d states, %d edges\n", f.Figure, f.States, f.Edges)
			if *figures {
				fmt.Println(f.DOT)
			}
		}
		fmt.Println()
	}
	if *loc || !specific {
		fmt.Println("Code size (§6; the paper: Stache 600 Teapot -> ~1000 C, LCM 1500 -> ~2300 C)")
		for _, r := range bench.LinesOfCode(0, 0) {
			fmt.Printf("  %-14s %5d Teapot lines -> %5d generated Go lines\n",
				r.Protocol, r.Teapot, r.Generated)
		}
		fmt.Println()
	}
	if *table == 0 && !specific || *loc {
		rows, err := bench.ProducerConsumer(*nodes, *iters)
		check(err)
		fmt.Println("Producer-consumer (§1 motivation): invalidation vs write-update")
		for _, r := range rows {
			fmt.Printf("  %-22s cycles=%-9d faults=%-6d messages=%d\n",
				r.Protocol, r.Cycles, r.Faults, r.Messages)
		}
		fmt.Println()
	}
	if *bug || !specific {
		res, err := bench.BugHunt()
		check(err)
		fmt.Println("Bug hunt (§7): seeded upgrade/invalidate race in Stache")
		if res.Violation == nil {
			fmt.Println("  unexpectedly verified clean")
			os.Exit(2)
		}
		fmt.Printf("  found after %d states:\n%s", res.States, res.Violation)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "teapot-bench:", err)
		os.Exit(1)
	}
}

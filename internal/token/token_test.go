package token

import "testing"

func TestLookupCaseInsensitive(t *testing.T) {
	cases := map[string]Kind{
		"begin":   BEGIN,
		"Begin":   BEGIN,
		"SUSPEND": SUSPEND,
		"Resume":  RESUME,
		"endif":   ENDIF,
		"EndIf":   ENDIF,
		"and":     KWAND,
		"NOT":     KWNOT,
		"foo":     IDENT,
		"Cache":   IDENT,
		"begins":  IDENT, // prefix of a keyword is not a keyword
	}
	for s, want := range cases {
		if got := Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// or < and < comparison < additive < multiplicative.
	chains := [][]Kind{
		{OR, AND, EQ, PLUS, STAR},
		{KWOR, KWAND, LT, MINUS, SLASH},
	}
	for _, chain := range chains {
		for i := 1; i < len(chain); i++ {
			if chain[i-1].Precedence() >= chain[i].Precedence() {
				t.Errorf("%v (%d) should bind looser than %v (%d)",
					chain[i-1], chain[i-1].Precedence(), chain[i], chain[i].Precedence())
			}
		}
	}
	for _, k := range []Kind{IDENT, LPAREN, BEGIN, ASSIGN, SEMICOLON} {
		if k.Precedence() != 0 {
			t.Errorf("%v should have no precedence", k)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	for _, k := range []Kind{MODULE, BEGIN, END, SUSPEND, RESUME, TRUE, FALSE} {
		if !k.IsKeyword() {
			t.Errorf("%v should be a keyword", k)
		}
	}
	for _, k := range []Kind{IDENT, INT, STRING, PLUS, EOF, ILLEGAL} {
		if k.IsKeyword() {
			t.Errorf("%v should not be a keyword", k)
		}
	}
}

func TestStrings(t *testing.T) {
	if BEGIN.String() != "begin" || ASSIGN.String() != ":=" || NEQ.String() != "<>" {
		t.Error("canonical spellings wrong")
	}
	if Kind(9999).String() != "UNKNOWN" {
		t.Error("unknown kind string")
	}
}

#!/usr/bin/env bash
# Full local check: build, go vet, tests under the race detector, and a
# teapot-vet sweep over the bundled protocols (which must stay clean).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
# The parallel checker's determinism contract and the sharded visited
# table, hammered explicitly under the race detector.
go test -race -count=1 -run 'TestWorkerEquivalence|TestBuggyTraceIdenticalAcrossWorkers|TestShardedVisitedRace' ./internal/mc/
go run ./cmd/teapot-vet ./internal/protocols/...
# Observability smoke test: a traced sim run must produce a Chrome trace
# that passes the schema check, and the checker must run with live
# progress enabled.
go vet ./internal/obs/ ./scripts/tracecheck/
tmptrace="$(mktemp -t teapot-trace.XXXXXX.json)"
trap 'rm -f "$tmptrace"' EXIT
go run ./cmd/teapot-sim -workload gauss -nodes 4 -iters 2 -trace "$tmptrace" -stats >/dev/null
go run ./scripts/tracecheck "$tmptrace"
go run ./cmd/teapot-verify -protocol stache -progress=always >/dev/null
# Fault-injection smoke matrix: the fault-tolerant Stache must verify under
# each budgeted fault the repo documents as its envelope, and the base
# Stache must demonstrably need the TIMEOUT machinery — a single dropped
# message is a reported violation (exit 2), not a pass. Built binary, not
# `go run`: go run collapses the child's exit code to 1.
verifybin="$(mktemp -t teapot-verify.XXXXXX)"
trap 'rm -f "$tmptrace" "$verifybin"' EXIT
go build -o "$verifybin" ./cmd/teapot-verify
for net in reorder=1 drop=1 dup=1 drop=1,dup=1; do
  "$verifybin" -proto stache-ft -net "$net" >/dev/null
done
# The 3-node drop envelope: held by the awaiting-mask ack guard the fuzzer
# forced (see internal/protocols/stache/ft.go) — without it the checker
# finds a 3-node SWMR violation within ~2000 states.
"$verifybin" -proto stache-ft -nodes 3 -blocks 1 -net drop=1 >/dev/null
rc=0
"$verifybin" -proto stache -net drop=1 >/dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "check.sh: stache -net drop=1 should exit 2 (violation), got $rc" >&2
  exit 1
fi
# Fuzz smoke: short fixed-seed campaigns over every judgeable bundled
# protocol must run clean, and the seeded stache-ft-buggy coherence bug
# under a one-drop budget must be found, shrunk to a <=10-decision minimal
# reproducer, and reproduce from its on-disk artifact (exit 2). Built
# binary for the same exit-code reason as teapot-verify above.
fuzzbin="$(mktemp -t teapot-fuzz.XXXXXX)"
repro="$(mktemp -t teapot-repro.XXXXXX.json)"
trap 'rm -f "$tmptrace" "$verifybin" "$fuzzbin" "$repro"' EXIT
go build -o "$fuzzbin" ./cmd/teapot-fuzz
for proto in stache stache-ft update bufwrite; do
  "$fuzzbin" -proto "$proto" -schedules 30 -seed 7 >/dev/null
done
# Fault budgets inside the verified envelope: drop at the default 3 nodes,
# duplication at 2 (an epoch-less protocol genuinely violates beyond that;
# see internal/protocols/stache/ft.go).
"$fuzzbin" -proto stache-ft -net drop=1 -schedules 200 -seed 7 >/dev/null
"$fuzzbin" -proto stache-ft -nodes 2 -net drop=1,dup=1 -schedules 200 -seed 7 >/dev/null
rc=0
fuzzout="$("$fuzzbin" -proto stache-ft-buggy -net drop=1 -seed 2 -schedules 100 -out "$repro")" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "check.sh: stache-ft-buggy -net drop=1 should exit 2 (violation), got $rc" >&2
  exit 1
fi
decisions="$(printf '%s\n' "$fuzzout" | sed -n 's/^minimal reproducer: \([0-9]*\) decision(s)$/\1/p')"
if [ -z "$decisions" ] || [ "$decisions" -gt 10 ]; then
  echo "check.sh: seeded bug should shrink to <=10 decisions, got '${decisions:-none}'" >&2
  exit 1
fi
rc=0
"$fuzzbin" -replay "$repro" >/dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "check.sh: saved reproducer should replay to exit 2, got $rc" >&2
  exit 1
fi
# The differential sim<->mc layer, explicitly under the race detector: the
# checker's counterexamples must replay step-for-step through the runtime
# engine harness, and the checker must confirm the fuzz-found bug.
go test -race -count=1 -run 'TestDiffReplayCounterexamples|TestConfirmMCAgreesWithFuzz' ./internal/fuzz/
# Symmetry: the static certificate sweep must hold for every bundled
# symmetric protocol (teapot-vet -json embeds the certificate; the python
# one-liner asserts node+block equivariance everywhere except the
# deliberately asymmetric fixture), the asymmetric fixture must be refused
# under -symmetry=on (exit 1 with a witness), reduction must not change
# any verdict (the reduced-vs-unreduced equivalence suite under the race
# detector), and a reduced run must actually reduce.
go run ./cmd/teapot-vet -json stache stache-cas stache-ft lcm lcm-mcc bufwrite update \
  | python3 -c 'import json,sys
reports = json.load(sys.stdin)
for r in reports:
    s = r["symmetry"]
    assert s["node"]["equivariant"] and s["block"]["equivariant"], r["protocol"]
print(f"symmetry certificates hold for {len(reports)} protocols")'
rc=0
"$verifybin" -proto stache-asym -symmetry=on >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
  echo "check.sh: stache-asym -symmetry=on should be refused (exit 1), got $rc" >&2
  exit 1
fi
go test -race -count=1 -short -run 'TestSymmetryEquivalence|TestCanonicalFixpoint|TestSymmetryGate' ./internal/mc/
symline="$("$verifybin" -proto stache -nodes 3 -symmetry=on)"
case "$symline" in
  *"symmetry /2"*) ;;
  *) echo "check.sh: expected 'symmetry /2' in: $symline" >&2; exit 1 ;;
esac
# Coverage & run-manifest plane: the single-source property made
# measurable. An exhaustive checker run and a seeded fuzz campaign over the
# same shape each write a -report manifest; teapot-cover diffs them
# (informational — fuzz undercoverage is expected) and cross-checks the
# checker's dynamic dispatch coverage against static reachability. The only
# tolerated gaps are the six home-side processor-fault handlers whose fault
# kind the home's own access mode precludes (see EXPERIMENTS.md); any other
# statically reachable handler the exhaustive run never entered fails the
# build. teapot-verify -json must emit the same manifest on stdout.
coverbin="$(mktemp -t teapot-cover.XXXXXX)"
mcman="$(mktemp -t teapot-mc-man.XXXXXX.json)"
fuzzman="$(mktemp -t teapot-fuzz-man.XXXXXX.json)"
trap 'rm -f "$tmptrace" "$verifybin" "$fuzzbin" "$repro" "$coverbin" "$mcman" "$fuzzman"' EXIT
go build -o "$coverbin" ./cmd/teapot-cover
"$verifybin" -proto stache -nodes 3 -net reorder=1 -report "$mcman" >/dev/null
"$fuzzbin" -proto stache -nodes 3 -blocks 1 -net reorder=1 -schedules 200 -seed 7 -report "$fuzzman" >/dev/null
python3 - "$mcman" "$fuzzman" <<'PY'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        m = json.load(f)
    assert m["manifest_version"] == 1, path
    assert m["protocol"] == "stache" and m["nodes"] == 3, path
    assert m["coverage"]["dispatch"], path
    assert ("mc" in m) != ("fuzz" in m), path
print("run manifests validate")
PY
"$coverbin" "$mcman" "$fuzzman" >/dev/null
"$coverbin" -static \
  -allow Home_Excl.WR_RO_FAULT,Home_Idle.RD_FAULT,Home_Idle.WR_FAULT,Home_Idle.WR_RO_FAULT,Home_RS.RD_FAULT,Home_RS.WR_FAULT \
  "$mcman"
"$verifybin" -proto stache -json | python3 -c 'import json,sys
m = json.load(sys.stdin)
assert m["tool"] == "teapot-verify" and m["mc"]["states"] > 0 and m["coverage"]["dispatch"]
print("teapot-verify -json manifest validates")'
# Litmus corpus: the committed scenario shapes must run clean under all
# three substrates (the sim/fuzz outcome sets must be contained in the
# exhaustive checker's), and the negative-path corpus must FAIL — exit 2
# with a named swmr violation and a deadlock, each shrunk to a
# <=10-decision reproducer that replays from its on-disk artifact. Built
# binary for the same exit-code reason as above.
litmusbin="$(mktemp -t teapot-litmus.XXXXXX)"
litrepro="$(mktemp -t teapot-lit-repro.XXXXXX.json)"
litman="$(mktemp -t teapot-lit-man.XXXXXX.json)"
trap 'rm -f "$tmptrace" "$verifybin" "$fuzzbin" "$repro" "$coverbin" "$mcman" "$fuzzman" "$litmusbin" "$litrepro" "$litman"' EXIT
go build -o "$litmusbin" ./cmd/teapot-litmus
"$litmusbin" -mode all >/dev/null
rc=0
litout="$("$litmusbin" -corpus testdata/litmus/fail -mode all -out "$litrepro")" || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "check.sh: litmus fail corpus should exit 2, got $rc" >&2
  exit 1
fi
for want in swmr deadlock; do
  case "$litout" in
    *"$want"*) ;;
    *) echo "check.sh: litmus fail-corpus output lacks '$want':" >&2
       printf '%s\n' "$litout" >&2; exit 1 ;;
  esac
done
printf '%s\n' "$litout" | sed -n 's/^ *minimal reproducer: \([0-9]*\) decision(s)$/\1/p' \
  | while read -r d; do
      if [ "$d" -gt 10 ]; then
        echo "check.sh: litmus reproducer should shrink to <=10 decisions, got $d" >&2
        exit 1
      fi
    done
rc=0
"$litmusbin" -corpus testdata/litmus/fail -replay "$litrepro" >/dev/null || rc=$?
if [ "$rc" -ne 2 ]; then
  echo "check.sh: saved litmus reproducer should replay to exit 2, got $rc" >&2
  exit 1
fi
# The litmus run manifest rides the shared schema; diffing it against the
# exhaustive verify manifest is informational (a 2-node scripted scenario
# exercises a fraction of the 3-node surface), and the static coverage
# gate above must stay green on the same teapot-cover build.
"$litmusbin" -only sb -mode all -report "$litman" >/dev/null
python3 - "$litman" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
assert m["manifest_version"] == 1 and m["tool"] == "teapot-litmus"
assert m["litmus"]["tests"] == 1 and m["litmus"]["failed"] == 0
assert m["litmus"]["mc_states"] > 0 and m["coverage"]["dispatch"]
print("litmus run manifest validates")
PY
"$coverbin" "$mcman" "$litman" >/dev/null
# Litmus + reproducer regression suites, explicitly under the race
# detector: the differential harness end-to-end and the committed
# testdata/repro artifacts (byte-identical replays, mc cross-check).
go test -race -count=1 -run 'TestRunMPAllSubstratesAgree|TestRunForbiddenReachable|TestReproCorpusReplays' \
  ./internal/litmus/ ./internal/fuzz/

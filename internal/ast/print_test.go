package ast_test

import (
	"strings"
	"testing"

	"teapot/internal/ast"
	"teapot/internal/parser"
	"teapot/internal/protocols/bufwrite"
	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
)

// TestBundledProtocolsRoundTrip: parse → print → parse → print is a fixed
// point for every bundled protocol source (formatter idempotence over the
// full language surface actually in use).
func TestBundledProtocolsRoundTrip(t *testing.T) {
	sources := map[string]string{
		"stache":     stache.Source,
		"stache-cas": stache.CASSource,
		"lcm":        lcm.Source(lcm.Base),
		"lcm-both":   lcm.Source(lcm.Both),
		"bufwrite":   bufwrite.Source,
	}
	for name, src := range sources {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			p1, err := parser.Parse(name, src)
			if err != nil {
				t.Fatalf("parse original: %v", err)
			}
			out1 := ast.Print(p1)
			p2, err := parser.Parse(name+"-rt", out1)
			if err != nil {
				t.Fatalf("parse printed: %v", err)
			}
			out2 := ast.Print(p2)
			if out1 != out2 {
				t.Errorf("print not a fixed point for %s", name)
			}
		})
	}
}

func TestExprString(t *testing.T) {
	src := `
protocol P begin
  var n : int;
  state S();
  state W(C : CONT) transient;
  message M;
end;
state P.S() begin
  message M (id : ID; var info : INFO; src : NODE)
  var x : int; b : bool;
  begin
    x := (1 + 2) * 3 - 4 / 5 % 6;
    b := not (x = 7) and x <= 8 or x <> 9;
    n := HomeNode(id) + 0;
    SetState(info, W{NoCont()});
  end;
end;
state P.W(C : CONT) begin
  message M (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
end;
`
	prog, err := parser.Parse("e.tea", src)
	if err != nil {
		t.Fatalf("parse: %v", err) // NoCont is unknown to sema, not the parser
	}
	out := ast.Print(prog)
	for _, want := range []string{
		"(1 + 2) * 3 - 4 / 5 % 6",
		"not (x = 7) and x <= 8 or x <> 9",
		"HomeNode(id) + 0",
		"W{NoCont()}",
		"suspend", // none expected; guard below flips
	} {
		if want == "suspend" {
			if strings.Contains(out, "suspend(") {
				t.Errorf("unexpected suspend in output")
			}
			continue
		}
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
}

func TestWalkCoversNestedStatements(t *testing.T) {
	src := `
protocol P begin state S(); message M; end;
state P.S() begin
  message M (id : ID; var info : INFO; src : NODE)
  var x : int;
  begin
    if (x = 0) then
      while (x < 3) do
        x := x + 1;
        if (x = 2) then
          print(x);
        endif;
      end;
    else
      x := 9;
    endif;
  end;
end;
`
	prog, err := parser.Parse("w.tea", src)
	if err != nil {
		t.Fatal(err)
	}
	var counts = map[string]int{}
	ast.Walk(prog.States[0].Handlers[0].Body, func(s ast.Stmt) {
		switch s.(type) {
		case *ast.IfStmt:
			counts["if"]++
		case *ast.WhileStmt:
			counts["while"]++
		case *ast.AssignStmt:
			counts["assign"]++
		case *ast.PrintStmt:
			counts["print"]++
		}
	})
	if counts["if"] != 2 || counts["while"] != 1 || counts["assign"] != 2 || counts["print"] != 1 {
		t.Errorf("walk counts = %v", counts)
	}
}

func TestWalkExprs(t *testing.T) {
	src := `
protocol P begin state S(); message M; end;
state P.S() begin
  message M (id : ID; var info : INFO; src : NODE)
  var x : int;
  begin
    x := (1 + 2) * HomeNode(id);
  end;
end;
`
	prog, err := parser.Parse("we.tea", src)
	if err != nil {
		t.Fatal(err)
	}
	assign := prog.States[0].Handlers[0].Body[0].(*ast.AssignStmt)
	var names, lits int
	ast.WalkExprs(assign.RHS, func(e ast.Expr) {
		switch e.(type) {
		case *ast.Name:
			names++
		case *ast.IntLit:
			lits++
		}
	})
	if names != 1 || lits != 2 {
		t.Errorf("names=%d lits=%d", names, lits)
	}
}

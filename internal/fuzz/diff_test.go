package fuzz

import (
	"testing"

	"teapot/internal/netmodel"
)

// TestDiffReplayCounterexamples checks the differential layer on every
// bundled buggy fixture: the model checker's counterexample must replay
// step-for-step through the independent runtime.Engine harness with
// canonical-state agreement after every step.
func TestDiffReplayCounterexamples(t *testing.T) {
	for _, tc := range []struct {
		proto    string
		nodes    int
		net      netmodel.Model
		wantKind string
	}{
		// The seeded SWMR bug: only reachable with a fault budget.
		{"stache-ft-buggy", 2, netmodel.Model{MaxDrops: 1}, "invariant"},
		// The seeded deadlock: reachable on a perfect network.
		{"stache-buggy", 2, netmodel.Model{}, "deadlock"},
		{"stache-buggy", 3, netmodel.Model{Reorder: 1}, "deadlock"},
	} {
		f, err := New(Config{Proto: tc.proto, Nodes: tc.nodes, Blocks: 1, Net: tc.net})
		if err != nil {
			t.Fatalf("%s: %v", tc.proto, err)
		}
		res, err := f.ConfirmMC(2_000_000)
		if err != nil {
			t.Fatalf("%s: %v", tc.proto, err)
		}
		if res.Violation == nil {
			t.Errorf("%s nodes=%d net=%s: checker found no violation in %d states",
				tc.proto, tc.nodes, tc.net, res.States)
			continue
		}
		if res.Violation.Kind != tc.wantKind {
			t.Errorf("%s nodes=%d net=%s: violation kind %q, want %q",
				tc.proto, tc.nodes, tc.net, res.Violation.Kind, tc.wantKind)
		}
		if len(res.Violation.Steps) != len(res.Violation.Trace) {
			t.Errorf("%s: %d machine-readable steps for a %d-entry trace",
				tc.proto, len(res.Violation.Steps), len(res.Violation.Trace))
		}
		if err := DiffReplay(f.Spec(), res.Violation); err != nil {
			t.Errorf("%s nodes=%d net=%s: differential replay: %v", tc.proto, tc.nodes, tc.net, err)
		}
	}
}

// TestConfirmMCAgreesWithFuzz closes the loop on the seeded bug: the fuzz
// campaign finds an oracle violation, and the checker — exploring the same
// spec exhaustively — confirms a coherence violation exists, with a
// counterexample the differential harness accepts.
func TestConfirmMCAgreesWithFuzz(t *testing.T) {
	f, _ := fuzzSeededBug(t)
	res, err := f.ConfirmMC(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("checker found no violation in %d states", res.States)
	}
	if res.Violation.Kind != "invariant" {
		t.Fatalf("checker verdict %q (%s), want a coherence invariant violation",
			res.Violation.Kind, res.Violation.Msg)
	}
	if err := DiffReplay(f.Spec(), res.Violation); err != nil {
		t.Fatal(err)
	}
	t.Logf("checker: %s in %d states, %d-step counterexample", res.Violation.Msg, res.States, len(res.Violation.Steps))
}

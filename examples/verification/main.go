// Verification: the paper's §7 story — model checking finds a deadlock in
// a Stache variant that mishandles the upgrade/invalidate race, producing
// the event trace that explains it; the fixed protocol then verifies
// clean, including on a reordering network. Before exploring any state
// space, the static analyses (teapot-vet) already name the offending
// state and message.
//
//	go run ./examples/verification
//
// (The paper: "It even uncovered an unsuspected protocol bug in a heavily
// used implementation of the Stache protocol, which could occur under a
// particular interleaving of messages in the network.")
package main

import (
	"fmt"
	"log"

	"teapot/internal/analysis"
	"teapot/internal/core"
	"teapot/internal/mc"
	"teapot/internal/protocols/stache"
)

func main() {
	fmt.Println("== 1. The buggy protocol ==")
	fmt.Println("A node waiting for an upgrade merely queues the home's")
	fmt.Println("invalidation instead of acknowledging it.")
	buggy, err := stache.CompileBuggy()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nStatic analysis (teapot-vet) flags it without exploring")
	fmt.Println("a single machine state:")
	fmt.Println()
	for _, d := range core.Vet(buggy) {
		fmt.Println("  " + analysis.Format(d))
	}

	fmt.Println("\nThe model checker confirms the hazard with a concrete")
	fmt.Println("interleaving. Exploring...")
	res, err := mc.Check(mc.Config{
		Proto: buggy, Support: stache.MustSupport(buggy),
		Nodes: 2, Blocks: 1,
		Events: stache.NewEvents(buggy), CheckCoherence: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Violation == nil {
		log.Fatal("expected a violation")
	}
	fmt.Printf("\nfound after %d states (%s):\n%s\n", res.States, res.Elapsed, res.Violation)

	fmt.Println("== 2. The fixed protocol ==")
	fixed := stache.MustCompile(true)
	if ds := core.Vet(fixed.Protocol); len(ds) == 0 {
		fmt.Println("teapot-vet: no findings.")
	} else {
		for _, d := range ds {
			fmt.Println(analysis.Format(d))
		}
	}
	for _, reorder := range []int{0, 1} {
		res, err := mc.Check(mc.Config{
			Proto: fixed.Protocol, Support: stache.MustSupport(fixed.Protocol),
			Nodes: 2, Blocks: 1, Reorder: reorder,
			Events: stache.NewEvents(fixed.Protocol), CheckCoherence: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "verified"
		if res.Violation != nil {
			status = "VIOLATION:\n" + res.Violation.String()
		}
		fmt.Printf("reorder=%d: %d states, %d transitions in %s — %s\n",
			reorder, res.States, res.Transitions, res.Elapsed, status)
	}
	fmt.Println("\nThe same compiled protocol object runs in the simulator and")
	fmt.Println("is explored by the checker — the paper's single-source claim.")
}

// Package sema performs semantic analysis of Teapot programs: name
// resolution, type checking, and the structural restrictions from §5 of the
// paper (Suspend only at statement level of a handler body; continuations
// are first-class only as CONT-typed values passed to subroutine states).
//
// The output, a *Program, is the single source consumed by every backend:
// the IR lowerer (executable protocols), the Murphi text generator, the Go
// code generator, and the DOT state-machine extractor.
package sema

import "fmt"

// TypeKind classifies Teapot types.
type TypeKind int

// Type kinds. Abstract types are declared by support modules and are opaque
// to the compiler (the paper: "Datatypes must be abstract because the Teapot
// system derives C code and Murphi code from the same protocol
// specification").
const (
	TInvalid TypeKind = iota
	TInt
	TBool
	TString
	TID     // shared-memory block identifier
	TInfo   // per-block protocol info area
	TNode   // processor/node number
	TCont   // continuation
	TMsg    // message tag
	TState  // state value
	TAccess // Tempest access-control mode
	TAbstract
)

// Type is a Teapot type. Two types are identical if their kinds match and,
// for abstract types, their names match.
type Type struct {
	Kind TypeKind
	Name string // for TAbstract; canonical spelling otherwise
}

// Builtin types, addressable as package-level values.
var (
	Invalid = Type{TInvalid, "<invalid>"}
	Int     = Type{TInt, "int"}
	Bool    = Type{TBool, "bool"}
	String  = Type{TString, "string"}
	ID      = Type{TID, "ID"}
	Info    = Type{TInfo, "INFO"}
	Node    = Type{TNode, "NODE"}
	Cont    = Type{TCont, "CONT"}
	Msg     = Type{TMsg, "MSG"}
	State   = Type{TState, "STATE"}
	Access  = Type{TAccess, "ACCESS"}
)

// Abstract constructs an abstract type.
func Abstract(name string) Type { return Type{TAbstract, name} }

func (t Type) String() string { return t.Name }

// Same reports type identity.
func (t Type) Same(u Type) bool {
	if t.Kind != u.Kind {
		return false
	}
	if t.Kind == TAbstract {
		return t.Name == u.Name
	}
	return true
}

// Scalar reports whether values of the type fit the VM's integer payload
// (ints, bools, nodes, ids, message tags, access modes).
func (t Type) Scalar() bool {
	switch t.Kind {
	case TInt, TBool, TNode, TID, TMsg, TAccess:
		return true
	}
	return false
}

// builtinTypes maps spellings to builtin types. Type names are
// case-sensitive except for the ones the paper itself spells in multiple
// cases.
var builtinTypes = map[string]Type{
	"int":    Int,
	"INT":    Int,
	"bool":   Bool,
	"BOOL":   Bool,
	"string": String,
	"STRING": String,
	"ID":     ID,
	"INFO":   Info,
	"NODE":   Node,
	"CONT":   Cont,
	"MSG":    Msg,
	"STATE":  State,
	"state":  State, // 'state' keyword allowed as a type name in prototypes
	"ACCESS": Access,
}

// Sig is a support-routine or builtin signature. Variadic signatures accept
// any arguments after the fixed prefix.
type Sig struct {
	Params   []Type
	ByRef    []bool // parallel to Params
	Result   Type   // Invalid for procedures
	Variadic bool
}

func (s *Sig) String() string {
	out := "("
	for i, p := range s.Params {
		if i > 0 {
			out += "; "
		}
		if s.ByRef[i] {
			out += "var "
		}
		out += p.String()
	}
	if s.Variadic {
		if len(s.Params) > 0 {
			out += "; "
		}
		out += "..."
	}
	out += ")"
	if s.Result.Kind != TInvalid {
		out += " : " + s.Result.String()
	}
	return out
}

// NumFixed returns the number of fixed parameters.
func (s *Sig) NumFixed() int { return len(s.Params) }

func sig(result Type, params ...Type) *Sig {
	return &Sig{Params: params, ByRef: make([]bool, len(params)), Result: result}
}

func vsig(result Type, params ...Type) *Sig {
	s := sig(result, params...)
	s.Variadic = true
	return s
}

func (s *Sig) withRef(idx int) *Sig {
	s.ByRef[idx] = true
	return s
}

var _ = fmt.Sprintf // keep fmt for debug helpers

// Package cont implements the continuation transformation and the two
// optimizations the paper describes in §5:
//
//  1. Live-variable analysis: a continuation record saves and restores only
//     registers referenced after the Suspend. Without it (an ablation mode;
//     the paper always enables it), every named parameter and local is
//     saved, as in Figure 10's "Save arg1, arg2, l1, l2 in L".
//
//  2. Constant-continuation optimization (η-contraction after Appel): when
//     exactly one Suspend site in the whole protocol targets a subroutine
//     state, every Resume of that state's CONT parameter sees a statically
//     known continuation, so the resumption is compiled as a direct
//     transfer, and if the continuation additionally saves nothing, no
//     record is ever allocated ("a continuation can be statically allocated
//     and used by all handler invocations").
package cont

import (
	"teapot/internal/ir"
	"teapot/internal/liveness"
	"teapot/internal/sema"
)

// Options selects which transformations run.
type Options struct {
	// Liveness trims continuation save sets to live registers. The paper's
	// "unoptimized" configuration still enables this; disabling it is an
	// ablation mode.
	Liveness bool
	// ConstCont enables the constant-continuation optimization.
	ConstCont bool
}

// Unoptimized mirrors the paper's "Teapot Unoptimized" column: liveness on,
// constant continuations off.
var Unoptimized = Options{Liveness: true}

// Optimized mirrors "Teapot Optimized": both analyses on.
var Optimized = Options{Liveness: true, ConstCont: true}

// Transform fills fragment save sets, MakeCont argument lists, and suspend
// site classifications, then (optionally) rewrites constant Resume sites.
// It must run exactly once on a freshly lowered program.
func Transform(p *ir.Program, opts Options) {
	for _, f := range p.Funcs {
		transformFunc(p, f, opts)
	}
	classifySites(p, opts)
}

func transformFunc(p *ir.Program, f *ir.Func, opts Options) {
	var live *liveness.Result
	if opts.Liveness {
		live = liveness.Analyze(f)
	}
	// The first two handler parameters are, by the delivery convention
	// sema enforces, the block ID and the block's info handle. Both are
	// derivable from the per-block continuation context at resume time,
	// so they are rematerialized rather than saved (the VM restores them
	// from the dispatch context). This is the refinement that lets the
	// common fill-path continuations ("nothing to save but the block
	// identity") be statically allocated, as §5 of the paper describes.
	remat := map[ir.Reg]bool{}
	if f.NumParams >= 2 {
		remat[f.ParamReg(0)] = true
		remat[f.ParamReg(1)] = true
	}
	// Compute saved sets per fragment.
	for fi := range f.Frags {
		if fi == 0 {
			continue // fragment 0 is entered by dispatch, not resume
		}
		fr := &f.Frags[fi]
		var regs []ir.Reg
		if opts.Liveness {
			regs = live.LiveAt(fr.Start).Members()
		} else {
			// Save every named register (state params, params, locals),
			// as the naive translation does.
			named := f.NumStateParams + f.NumParams + f.NumLocals
			for i := 0; i < named; i++ {
				regs = append(regs, ir.Reg(i))
			}
		}
		fr.Saved = nil
		for _, r := range regs {
			if !remat[r] {
				fr.Saved = append(fr.Saved, r)
			}
		}
	}
	// Point each MakeCont at its fragment's save set.
	for i := range f.Code {
		in := &f.Code[i]
		if in.Op == ir.OpMakeCont {
			in.Args = f.Frags[in.Idx].Saved
		}
	}
}

// classifySites marks sites as Static (empty save set) and, with ConstCont,
// Constant (unique suspend site for the target state), then rewrites Resume
// instructions that can only observe a constant continuation.
func classifySites(p *ir.Program, opts Options) {
	bySite := make(map[int]*ir.SuspendSite)
	targets := make(map[int][]*ir.SuspendSite) // state index -> sites
	for _, s := range p.Sites {
		bySite[s.ID] = s
		targets[s.TargetState] = append(targets[s.TargetState], s)
		s.Static = len(s.Func.Frags[s.FragIdx].Saved) == 0
	}
	if !opts.ConstCont {
		return
	}
	// A state value can also be constructed outside a Suspend (e.g. a
	// SetState that forwards a continuation it received); such states can
	// observe continuations from arbitrary sites, so they are not
	// constant-continuation targets.
	makeStateCount := make(map[int]int)
	for _, f := range p.Funcs {
		for i := range f.Code {
			if f.Code[i].Op == ir.OpMakeState {
				makeStateCount[f.Code[i].Idx]++
			}
		}
	}
	// Rewrite Resume(C) where C is the unique CONT parameter of a state
	// with a unique suspend site: the resumed code location is static.
	for si, st := range p.Sema.States {
		sites := targets[si]
		if len(sites) != 1 || makeStateCount[si] != 1 {
			continue
		}
		contReg := contParamReg(st)
		if contReg == ir.NoReg {
			continue
		}
		site := sites[0]
		// The continuation must be passed *directly* in the CONT parameter
		// slot at the suspend site for the rewrite to be sound.
		if !contPassedDirectly(site, int(contReg)) {
			continue
		}
		site.Constant = true
		for _, f := range p.Funcs {
			if f.StateIndex != si {
				continue
			}
			for i := range f.Code {
				in := &f.Code[i]
				if in.Op == ir.OpResume && in.A == contReg {
					in.Idx = site.ID
				}
			}
		}
	}
}

// contParamReg returns the register of the state's single CONT parameter,
// or NoReg if it has zero or several.
func contParamReg(st *sema.StateSym) ir.Reg {
	reg := ir.NoReg
	for i, prm := range st.Params {
		if prm.Type.Kind == sema.TCont {
			if reg != ir.NoReg {
				return ir.NoReg
			}
			reg = ir.Reg(i)
		}
	}
	return reg
}

// contPassedDirectly checks that the suspend site's MakeState passes the
// freshly made continuation in the given parameter slot.
func contPassedDirectly(site *ir.SuspendSite, slot int) bool {
	f := site.Func
	// Find the OpSuspend ending the fragment before site.FragIdx; the
	// MakeState feeding it is the preceding instruction, and the MakeCont
	// for this site precedes the argument evaluation.
	suspendAt := f.Frags[site.FragIdx].Start - 1
	if suspendAt < 1 || f.Code[suspendAt].Op != ir.OpSuspend {
		return false
	}
	ms := f.Code[suspendAt-1]
	if ms.Op != ir.OpMakeState || slot >= len(ms.Args) {
		return false
	}
	// Walk back to the MakeCont that created this site's continuation.
	for i := suspendAt - 2; i >= 0; i-- {
		in := f.Code[i]
		if in.Op == ir.OpMakeCont && in.Idx == site.FragIdx {
			return ms.Args[slot] == in.Dst
		}
		if in.Op == ir.OpSuspend {
			break
		}
	}
	return false
}

// Stats summarizes the transformation for reporting (§6's discussion of
// allocation counts).
type Stats struct {
	Sites    int
	Static   int
	Constant int
	Dynamic  int // heap-allocating sites
	MaxSaved int
}

// Summarize computes transformation statistics for a program.
func Summarize(p *ir.Program) Stats {
	var st Stats
	st.Sites = len(p.Sites)
	for _, s := range p.Sites {
		saved := len(s.Func.Frags[s.FragIdx].Saved)
		if saved > st.MaxSaved {
			st.MaxSaved = saved
		}
		switch {
		case s.Static:
			st.Static++
		case s.Constant:
			st.Constant++
		default:
			st.Dynamic++
		}
	}
	return st
}

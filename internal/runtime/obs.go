package runtime

import (
	"teapot/internal/obs"
	"teapot/internal/vm"
)

// Observability wiring: SetObs attaches an event sink to the engine and, in
// the same motion, installs the VM tracer that surfaces the continuation
// machinery (Suspend, Resume, MakeCont) — the control flow §2 of the paper
// says hand-written protocols hide. Everything here is dormant until SetObs
// is called; see the nil-check guards in engine.go.

// SetObs implements obs.Attacher: attach (or, with nil, detach) an event
// sink. Not safe to call while a handler is executing.
func (e *Engine) SetObs(s obs.Sink) {
	e.obs = s
	if s != nil {
		e.Exec.Tracer = (*engineTracer)(e)
	} else {
		e.Exec.Tracer = nil
	}
}

var _ obs.Attacher = (*Engine)(nil)

// engineTracer adapts the engine to vm.Tracer on a distinct type so the
// tracing methods cannot be mistaken for part of the engine's public
// surface.
type engineTracer Engine

var _ vm.Tracer = (*engineTracer)(nil)

// TraceSuspend implements vm.Tracer.
func (t *engineTracer) TraceSuspend(sv *vm.StateVal) {
	e := (*Engine)(t)
	e.obs.Emit(obs.Event{Kind: obs.KindSuspend, Node: int32(e.Node),
		Block: int32(e.cur.block.ID), State: int32(sv.State)})
}

// TraceResume implements vm.Tracer.
func (t *engineTracer) TraceResume(c *vm.Cont, direct bool) {
	e := (*Engine)(t)
	arg := int64(0)
	if direct {
		arg = 1
	}
	e.obs.Emit(obs.Event{Kind: obs.KindResume, Node: int32(e.Node),
		Block: int32(e.cur.block.ID), State: int32(e.cur.block.State.State),
		Site: int32(c.Site), Arg: arg})
}

// TraceContAlloc implements vm.Tracer.
func (t *engineTracer) TraceContAlloc(c *vm.Cont) {
	e := (*Engine)(t)
	arg := int64(0)
	if c.Heap {
		arg = 1
	}
	e.obs.Emit(obs.Event{Kind: obs.KindContAlloc, Node: int32(e.Node),
		Block: int32(e.cur.block.ID), State: int32(e.cur.block.State.State),
		Site: int32(c.Site), Arg: arg})
}

// emitSend stamps m with a fresh flow id (correlating its later Deliver)
// and emits the Send event. Called only with a sink attached.
func (e *Engine) emitSend(m *Message, dst int) {
	e.flowSeq++
	m.flow = int64(e.Node+1)<<32 | e.flowSeq
	arg := int64(0)
	if m.Data {
		arg = 1
	}
	e.obs.Emit(obs.Event{Kind: obs.KindSend, Node: int32(e.Node), Block: int32(m.ID),
		State: -1, Msg: int32(m.Tag), Peer: int32(dst), Arg: arg, Flow: m.flow})
}

// ObsNames builds the render tables trace exporters use for a compiled
// protocol.
func ObsNames(p *Protocol) obs.Names {
	sm := p.Sema()
	n := obs.Names{
		States:   make([]string, len(sm.States)),
		Messages: make([]string, len(sm.Messages)),
	}
	for i, s := range sm.States {
		n.States[i] = s.Name
	}
	for i, m := range sm.Messages {
		n.Messages[i] = m.Name
	}
	return n
}

package litmus

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"teapot/internal/core"
	"teapot/internal/fuzz"
	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/oracle"
	"teapot/internal/protocols"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// DefaultBudget is the model-checker state budget per test when the caller
// does not set one. The scripted corpus shapes are small (hundreds to tens
// of thousands of states); hitting the budget is reported as an honest
// "state-limit" failure, never silently truncated coverage.
const DefaultBudget = 300_000

// simRuns is the number of seeded simulator runs per test: seed variant 0
// is the plain run, the rest phase-shift the scripts with seeded compute
// jitter so the stochastic scheduler samples different interleavings.
const simRuns = 12

// maxRunEvents caps each simulator run (same rationale as the fuzzer's).
const maxRunEvents = 1_000_000

// Options shapes a harness run.
type Options struct {
	Mode    string // "sim" | "fuzz" | "mc" | "all" ("" = all)
	Budget  int    // mc state budget per test (0 = DefaultBudget)
	Seed    uint64 // master seed; 0 derives one from the test's run shape
	Workers int    // mc worker goroutines (0 = GOMAXPROCS)
	// Coverage, when non-nil, accumulates dispatch/transition/fault
	// coverage across every run of every substrate (manifest reporting).
	Coverage *obs.Coverage
}

func (o *Options) normalize() {
	if o.Mode == "" {
		o.Mode = "all"
	}
	if o.Budget == 0 {
		o.Budget = DefaultBudget
	}
}

func (o *Options) wants(mode string) bool { return o.Mode == "all" || o.Mode == mode }

// schedules is the fuzz campaign length, scaled to the state budget.
func (o *Options) schedules() int {
	n := o.Budget / 2000
	if n < 24 {
		n = 24
	}
	if n > 400 {
		n = 400
	}
	return n
}

// Failure is one substrate's verdict on a test.
type Failure struct {
	Mode  string // "sim" | "fuzz" | "mc"
	Class string // "violation" | "error" | "forbidden:<name>" | "state-limit"
	Msg   string

	Violation *oracle.Violation // sim/fuzz oracle verdict, when one fired
	// Schedule is the fuzz mode's shrunk reproducer (Litmus names the test;
	// replay it with teapot-litmus -replay).
	Schedule        *fuzz.Schedule
	ShrunkDecisions int
	ShrinkTries     int
	// MCViolation is the checker's counterexample: for a forbidden final
	// state, the shortest trace into it (kind "litmus"), replayable with
	// mc.ReplaySteps.
	MCViolation *mc.Violation
}

func (f *Failure) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Mode, f.Class, f.Msg)
}

// Result is one test's differential run.
type Result struct {
	Test     *Test
	Modes    []string // substrates that ran, in execution order
	MCStates int      // states the reference exploration visited

	// Outcome sets per substrate, keyed by canonical outcome key (nil when
	// the substrate did not run).
	MC, Sim, Fuzz map[string]Outcome

	// Failures collects every substrate's failure (usually zero or one;
	// a seeded-bug test fails under each substrate that catches it).
	Failures []*Failure
}

// Failure returns the primary (first) failure, nil when the test passed.
func (r *Result) Failure() *Failure {
	if len(r.Failures) == 0 {
		return nil
	}
	return r.Failures[0]
}

// MCOnly lists checker-reachable outcomes no sampling substrate saw — the
// expected coverage gap of sampling (informational; nil when no sampling
// substrate ran, since then the whole set would be a trivial "gap").
func (r *Result) MCOnly() []string {
	if r.MC == nil || (r.Sim == nil && r.Fuzz == nil) {
		return nil
	}
	var out []string
	for k := range r.MC {
		if _, ok := r.Sim[k]; ok {
			continue
		}
		if _, ok := r.Fuzz[k]; ok {
			continue
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ExtraVsMC lists outcomes the given set reached that the checker did not —
// with an exhaustive (non-budget-limited) mc run this is a harness bug.
func (r *Result) ExtraVsMC(set map[string]Outcome) []string {
	if r.MC == nil {
		return nil
	}
	var out []string
	for k := range set {
		if _, ok := r.MC[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// runner holds the per-test machinery shared by the substrates.
type runner struct {
	t    *Test
	opt  Options
	spec core.RunSpec
	prof fuzz.Profile // oracle profile (sim/fuzz modes)
	seed uint64       // master seed
}

// Run executes one test under the requested substrates and diffs the
// outcome sets. A non-nil error is a harness problem (unparseable net
// model, unknown protocol); test verdicts land in Result.Failures.
func Run(t *Test, opt Options) (*Result, error) {
	opt.normalize()
	r, err := newRunner(t, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{Test: t}

	// The checker runs first: it is the outcome reference the sampling
	// substrates are diffed against, and the substrate that turns a
	// forbidden final state into a shortest-trace counterexample.
	if opt.wants("mc") {
		res.Modes = append(res.Modes, "mc")
		if err := r.runMC(res); err != nil {
			return nil, err
		}
	}
	if opt.wants("sim") {
		res.Modes = append(res.Modes, "sim")
		r.runSim(res)
	}
	if opt.wants("fuzz") {
		res.Modes = append(res.Modes, "fuzz")
		r.runFuzz(res)
	}

	// Differential check: everything sampling reached, the exhaustive
	// reference must have reached too. An exploration that stopped early —
	// state budget, deadlock, protocol error — has only a partial outcome
	// set and cannot make that promise, so the check skips it. (A forbidden
	// final state does not stop pass 1; its set is complete.)
	if res.MC != nil && !r.mcTruncated(res) {
		for _, m := range []struct {
			name string
			set  map[string]Outcome
		}{{"sim", res.Sim}, {"fuzz", res.Fuzz}} {
			if extra := res.ExtraVsMC(m.set); len(extra) > 0 {
				res.Failures = append(res.Failures, &Failure{
					Mode:  m.name,
					Class: "error",
					Msg: fmt.Sprintf("outcome diff: %s reached %d outcome(s) the exhaustive checker never did: %s",
						m.name, len(extra), strings.Join(extra, "; ")),
				})
			}
		}
	}
	return res, nil
}

// mcTruncated reports whether the exploration stopped before enumerating
// every reachable outcome.
func (r *runner) mcTruncated(res *Result) bool {
	for _, f := range res.Failures {
		if f.Mode == "mc" && (f.Class == "state-limit" || f.Class == "error") {
			return true
		}
	}
	return false
}

func newRunner(t *Test, opt Options) (*runner, error) {
	spec, err := protocols.Spec(t.Proto, t.Nodes, len(t.Blocks))
	if err != nil {
		return nil, fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	net, err := netmodel.Parse(t.Net)
	if err != nil {
		return nil, fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	spec.Net = net
	spec.Workers = opt.Workers
	spec.Seed = opt.Seed
	r := &runner{t: t, opt: opt, spec: spec, seed: spec.EffectiveSeed()}
	if opt.wants("sim") || opt.wants("fuzz") {
		prof, err := fuzz.ProfileFor(t.Proto)
		if err != nil {
			return nil, fmt.Errorf("litmus %s: %w", t.Name, err)
		}
		r.prof = prof
	}
	return r, nil
}

// ---- simulator / fuzzer substrate ----

// runReport is one simulated run's verdict.
type runReport struct {
	viol      *oracle.Violation
	err       error
	outcome   *Outcome
	forbidden string // forbid condition the outcome satisfies
}

// class buckets the report the way schedule shrinking must preserve it.
func (rr *runReport) class() string {
	switch {
	case rr.viol != nil:
		return "violation"
	case rr.err != nil:
		return "error"
	case rr.forbidden != "":
		return "forbidden:" + rr.forbidden
	}
	return ""
}

func (rr *runReport) describe() string {
	switch {
	case rr.viol != nil:
		return rr.viol.Error()
	case rr.err != nil:
		return rr.err.Error()
	case rr.forbidden != "":
		return "forbidden final state " + rr.forbidden
	}
	return "clean"
}

// execute runs the test's script once on the tempest machine: under a
// chooser (fuzz substrate) or under seeded stochastic injection (sim
// substrate, chooser nil), with jitterSeed phase-shifting the scripts.
func (r *runner) execute(ch tempest.Chooser, seed, jitterSeed uint64) *runReport {
	checker := oracle.New(oracle.Config{
		Nodes: r.t.Nodes, Blocks: len(r.t.Blocks),
		HomeOf: r.spec.HomeOf, Inv: r.prof.Inv,
		InitMem: r.t.Init, TrackReads: true,
	})
	simCfg := r.spec.SimConfig()
	simCfg.Seed = seed
	simCfg.Program = r.trace(jitterSeed)
	sinks := []obs.Sink{checker}
	if r.opt.Coverage != nil {
		sinks = append(sinks, r.opt.Coverage)
	}
	simCfg.Obs = obs.NewTee(sinks...)
	simCfg.Sched = ch
	simCfg.ObsMemory = true
	simCfg.InitMem = r.t.Init
	simCfg.MaxEvents = maxRunEvents
	_, err := sim.Run(simCfg)
	rep := &runReport{viol: checker.Finish(), err: err}
	if rep.viol != nil || rep.err != nil {
		return rep
	}
	o, oerr := r.outcomeFromOracle(checker)
	if oerr != nil {
		rep.err = oerr
		return rep
	}
	rep.outcome = o
	rep.forbidden = r.t.ForbiddenBy(*o)
	return rep
}

// trace lowers the scripts to a tempest program. jitterSeed 0 is the plain
// program; otherwise each op gets a seeded yield prefix of up to six
// network latencies. Yields (not computes: those never release the event
// loop, so in-flight deliveries could not overtake a script) desynchronize
// the per-node scripts so stochastic and recorded schedules sample
// different interleavings of the same test.
func (r *runner) trace(jitterSeed uint64) *sim.Trace {
	ops := make([][]tempest.Op, r.t.Nodes)
	for n := 0; n < r.t.Nodes && n < len(r.t.Progs); n++ {
		var stream []tempest.Op
		for i, op := range r.t.Progs[n] {
			if jitterSeed != 0 {
				c := jitterCycles(jitterSeed, n, i)
				stream = append(stream, tempest.Op{Kind: tempest.OpYield, Cycles: c})
			}
			switch op.Kind {
			case Get:
				stream = append(stream, tempest.Op{Kind: tempest.OpRead, Addr: op.Block})
			case Put:
				stream = append(stream, tempest.Op{Kind: tempest.OpWrite, Addr: op.Block, Val: op.Val})
			case CAS:
				stream = append(stream, tempest.Op{Kind: tempest.OpCAS, Addr: op.Block, Val: op.Val, Expect: op.Expect})
			}
		}
		ops[n] = stream
	}
	return sim.NewTrace(ops)
}

// jitterCycles derives op i of node n's compute prefix from the seed: a
// quarter zero, the rest up to six network latencies
// (tempest.DefaultCost.NetLatency) — wide enough to push an op past a
// remote fault's full round trip, so sampling reaches interleavings where
// either script runs ahead of the other.
func jitterCycles(seed uint64, n, i int) int64 {
	x := splitmix(seed ^ uint64(n)*0xbf58476d1ce4e5b9 ^ uint64(i)*0x94d049bb133111eb)
	if x&3 == 0 {
		return 0
	}
	return int64((x >> 2) % uint64(6*tempest.DefaultCost.NetLatency+1))
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// outcomeFromOracle reads the register file and final block values back
// from the oracle's tracked reads — the simulator substrates' outcome.
func (r *runner) outcomeFromOracle(c *oracle.Checker) (*Outcome, error) {
	o := &Outcome{}
	for n := range r.t.Progs {
		reads := c.Reads(n)
		if len(reads) != r.t.obsCount(n) {
			return nil, fmt.Errorf("litmus %s: node %d completed %d observation(s), script has %d",
				r.t.Name, n, len(reads), r.t.obsCount(n))
		}
		for _, v := range reads {
			o.Regs = append(o.Regs, tempest.ValueOf(v))
		}
	}
	for b := range r.t.Blocks {
		o.Mem = append(o.Mem, tempest.ValueOf(c.FinalValue(b)))
	}
	return o, nil
}

// runSim samples simRuns seeded stochastic runs.
func (r *runner) runSim(res *Result) {
	res.Sim = map[string]Outcome{}
	for k := 0; k < simRuns; k++ {
		seed := subSeed(r.seed, uint64(0x510+k))
		var jitter uint64
		if k > 0 {
			jitter = subSeed(seed, 1)
		}
		rep := r.execute(nil, seed, jitter)
		if class := rep.class(); class != "" {
			res.Failures = append(res.Failures, &Failure{
				Mode: "sim", Class: class,
				Msg:       fmt.Sprintf("sim run %d (seed %d): %s", k, seed, rep.describe()),
				Violation: rep.viol,
			})
			return
		}
		res.Sim[r.t.Key(*rep.outcome)] = *rep.outcome
	}
}

// runFuzz searches recorded schedules; the first failing one is shrunk by
// delta debugging into a replayable reproducer.
func (r *runner) runFuzz(res *Result) {
	res.Fuzz = map[string]Outcome{}
	for i := 0; i < r.opt.schedules(); i++ {
		recSeed := subSeed(r.seed, uint64(0x1000+2*i))
		jitterSeed := subSeed(r.seed, uint64(0x1000+2*i+1))
		rec := fuzz.NewRecorder(recSeed, fuzz.DefaultRate)
		rep := r.execute(rec, 0, jitterSeed)
		class := rep.class()
		if class == "" {
			res.Fuzz[r.t.Key(*rep.outcome)] = *rep.outcome
			continue
		}
		s := r.schedule(rec.Decisions(), jitterSeed, recSeed, class)
		shrunk, tries := fuzz.ShrinkSchedule(s, func(cand *fuzz.Schedule) string {
			return r.execute(fuzz.NewReplayer(cand), 0, cand.WorkloadSeed).class()
		})
		res.Failures = append(res.Failures, &Failure{
			Mode: "fuzz", Class: class,
			Msg:             fmt.Sprintf("schedule %d: %s", i+1, rep.describe()),
			Violation:       rep.viol,
			Schedule:        shrunk,
			ShrunkDecisions: len(shrunk.Decisions),
			ShrinkTries:     tries,
		})
		return
	}
}

// schedule wraps a recorded decision list as a litmus schedule artifact:
// WorkloadSeed carries the jitter seed (the workload itself is the test's
// script), Litmus names the test, Expect pins the failure class.
func (r *runner) schedule(dec []fuzz.Decision, jitterSeed, recSeed uint64, class string) *fuzz.Schedule {
	return &fuzz.Schedule{
		Proto: r.t.Proto, Nodes: r.t.Nodes, Blocks: len(r.t.Blocks),
		Net:          r.t.Net,
		WorkloadSeed: jitterSeed,
		RecordSeed:   recSeed,
		Decisions:    dec,
		Litmus:       r.t.Name,
		Expect:       class,
	}
}

// Replay re-judges a litmus schedule artifact against its test: the path
// from a reproducer on disk back to a verdict. The returned class is ""
// when the schedule runs clean.
func Replay(t *Test, s *fuzz.Schedule, opt Options) (class, desc string, err error) {
	opt.Mode = "fuzz" // replay needs the oracle profile, nothing else
	opt.normalize()
	if s.Litmus != t.Name {
		return "", "", fmt.Errorf("litmus: schedule drives test %q, not %q", s.Litmus, t.Name)
	}
	if s.Proto != t.Proto || s.Nodes != t.Nodes || s.Blocks != len(t.Blocks) {
		return "", "", fmt.Errorf("litmus: schedule shape %s/%dn/%db does not match test %s (%s/%dn/%db)",
			s.Proto, s.Nodes, s.Blocks, t.Name, t.Proto, t.Nodes, len(t.Blocks))
	}
	r, err := newRunner(t, opt)
	if err != nil {
		return "", "", err
	}
	rep := r.execute(fuzz.NewReplayer(s), 0, s.WorkloadSeed)
	return rep.class(), rep.describe(), nil
}

// ---- model-checker substrate ----

// clientOps lowers the scripts to the checker's client plane.
func clientOps(t *Test) [][]mc.ClientOp {
	progs := make([][]mc.ClientOp, len(t.Progs))
	for n, prog := range t.Progs {
		for _, op := range prog {
			co := mc.ClientOp{Block: op.Block, Val: op.Val, Expect: op.Expect}
			switch op.Kind {
			case Get:
				co.Kind = mc.ClientGet
			case Put:
				co.Kind = mc.ClientPut
			case CAS:
				co.Kind = mc.ClientCAS
			}
			progs[n] = append(progs[n], co)
		}
	}
	return progs
}

// outcomeFromWorld reads a terminal world's outcome off the client plane.
func outcomeFromWorld(t *Test, w *mc.World) Outcome {
	o := Outcome{}
	regs := w.ClientRegs()
	for n := range t.Progs {
		for _, v := range regs[n] {
			o.Regs = append(o.Regs, tempest.ValueOf(v))
		}
	}
	for _, v := range w.ClientFinal() {
		o.Mem = append(o.Mem, tempest.ValueOf(v))
	}
	return o
}

// runMC explores the test exhaustively. Pass 1 collects the reachable
// outcome set (the Terminal hook approves every terminal state); when a
// forbidden outcome is reachable, pass 2 re-runs with a judging hook so
// the checker reports the shortest trace into it, and the counterexample
// is confirmed by replaying its steps with mc.ReplaySteps.
func (r *runner) runMC(res *Result) error {
	t := r.t
	client, err := mc.NewClient(r.spec.Proto, clientOps(t), t.Init)
	if err != nil {
		return fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	spec := r.spec
	spec.Events = nil // the script is the only event source
	spec.Client = client
	spec.MaxStates = r.opt.Budget

	var mu sync.Mutex
	res.MC = map[string]Outcome{}
	spec.Terminal = func(w *mc.World) string {
		o := outcomeFromWorld(t, w)
		mu.Lock()
		res.MC[t.Key(o)] = o
		mu.Unlock()
		return ""
	}
	cfg := spec.MCConfig()
	cfg.Coverage = r.opt.Coverage
	mcres, err := mc.Check(cfg)
	if err != nil {
		return fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	res.MCStates = mcres.States
	if v := mcres.Violation; v != nil {
		class := "error"
		if v.Kind == "state-limit" {
			class = "state-limit"
		}
		res.Failures = append(res.Failures, &Failure{
			Mode: "mc", Class: class,
			Msg:         fmt.Sprintf("%s: %s", v.Kind, v.Msg),
			MCViolation: v,
		})
		return nil
	}

	// Allow/expect judgments need the complete reachable set.
	for _, c := range t.Conds {
		switch c.Sense {
		case Allow:
			if !r.anySatisfies(res.MC, c) {
				res.Failures = append(res.Failures, &Failure{
					Mode: "mc", Class: "error",
					Msg: fmt.Sprintf("allowed outcome %q is unreachable: no checker outcome satisfies %s",
						c.Name, c.String(t.Blocks)),
				})
			}
		case Expect:
			for _, k := range t.SortedKeys(res.MC) {
				if !t.Satisfies(res.MC[k], c) {
					res.Failures = append(res.Failures, &Failure{
						Mode: "mc", Class: "error",
						Msg: fmt.Sprintf("expected condition %q violated by reachable outcome %s", c.Name, k),
					})
					break
				}
			}
		}
	}

	// Forbidden outcome reachable: pass 2 derives the counterexample.
	name := ""
	for _, k := range t.SortedKeys(res.MC) {
		if n := t.ForbiddenBy(res.MC[k]); n != "" {
			name = n
			break
		}
	}
	if name == "" {
		return nil
	}
	spec.Terminal = func(w *mc.World) string {
		o := outcomeFromWorld(t, w)
		if n := t.ForbiddenBy(o); n != "" {
			return fmt.Sprintf("forbidden final state %s: %s", n, t.Key(o))
		}
		return ""
	}
	jcfg := spec.MCConfig()
	jres, err := mc.Check(jcfg)
	if err != nil {
		return fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	if jres.Violation == nil {
		return fmt.Errorf("litmus %s: forbidden outcome collected in pass 1 but judging pass found none", t.Name)
	}
	confirmed, err := confirmForbidden(t, jcfg, jres.Violation)
	if err != nil {
		return fmt.Errorf("litmus %s: counterexample replay: %w", t.Name, err)
	}
	res.Failures = append(res.Failures, &Failure{
		Mode: "mc", Class: "forbidden:" + confirmed,
		Msg: fmt.Sprintf("%s (%d-step counterexample, replay-confirmed)",
			jres.Violation.Msg, len(jres.Violation.Steps)),
		MCViolation: jres.Violation,
	})
	return nil
}

func (r *runner) anySatisfies(set map[string]Outcome, c Cond) bool {
	for _, o := range set {
		if r.t.Satisfies(o, c) {
			return true
		}
	}
	return false
}

// confirmForbidden replays the judging pass's counterexample with
// mc.ReplaySteps and re-derives the forbidden condition from the final
// world — independent confirmation that the trace actually reaches the
// forbidden outcome. Returns the condition name.
func confirmForbidden(t *Test, cfg mc.Config, v *mc.Violation) (string, error) {
	if len(v.Steps) == 0 {
		return "", fmt.Errorf("counterexample carries no steps")
	}
	name := ""
	err := mc.ReplaySteps(cfg, v.Steps, func(i int, st mc.Step, ev *mc.Event, w *mc.World, applyErr error) error {
		if applyErr != nil {
			return fmt.Errorf("step %d (%v): %w", i, st, applyErr)
		}
		if i == len(v.Steps)-1 {
			if !w.ClientDone() {
				return fmt.Errorf("final replay state is not terminal: scripts still running")
			}
			o := outcomeFromWorld(t, w)
			name = t.ForbiddenBy(o)
			if name == "" {
				return fmt.Errorf("final replay outcome %s is not forbidden", t.Key(o))
			}
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	return name, nil
}

// subSeed derives the i-th stream seed from the master seed (the fuzzer's
// derivation, reimplemented here so the two packages stay decoupled).
func subSeed(seed, i uint64) uint64 {
	return splitmix(seed ^ (i+1)*0x9e3779b97f4a7c15)
}

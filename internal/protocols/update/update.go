// Package update implements a write-update coherence protocol in Teapot —
// the kind of custom protocol §1 of the paper motivates: "invalidation
// protocols perform poorly for producer-consumer sharing, since
// invalidating outstanding copies forces the consumers to re-request data,
// which requires up to four protocol messages for a small data transfer."
//
// Here writes go through the home, which applies them and multicasts
// UPDATE messages to the other sharers: a consumer receives new data in
// one message instead of invalidate → ack → re-request → response. The
// cost is that every write is a protocol event (write-through); the
// producer-consumer benchmark in the bench suite shows the crossover.
//
// The protocol is also a structural contrast to Stache: the home side
// needs *no* intermediate states at all (it never waits), so the whole
// protocol has only the two cache-side fill suspensions.
package update

import (
	"fmt"

	"teapot/internal/core"
	"teapot/internal/mc"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

// Source is the write-update protocol in Teapot.
const Source = `
module UpdateSupport begin
  procedure AddSharer(var info : INFO; n : NODE);
  procedure RemoveSharer(var info : INFO; n : NODE);
  function IsSharer(info : INFO; n : NODE) : bool;
  function NumSharers(info : INFO) : int;
  -- Multicasts UPDATE to every sharer except 'excl'; returns how many.
  function SendUpdates(var info : INFO; excl : NODE; id : ID) : int;
end;

protocol Update begin
  var sharers : int;

  state Cache_Inv();
  state Cache_RO();
  state Cache_Fill(C : CONT) transient;
  state Cache_WriteWait(C : CONT) transient;
  state Cache_WriteFill(C : CONT) transient;
  state Cache_Evicting();
  state Home();

  message RD_FAULT;
  message WR_FAULT;
  message WR_RO_FAULT;
  message EVICT;

  message GET_REQ;
  message GET_RESP;
  message WRITE_REQ;
  message WRITE_ACK;
  message UPDATE;
  message EVICT_REQ;
  message EVICT_ACK;
end;

state Update.Cache_Inv()
begin
  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_REQ, id);
    Suspend(L, Cache_Fill{L});
    WakeUp(id);
  end;

  -- A write without a copy: write through and receive a copy with the
  -- acknowledgement. Distinct from Cache_WriteWait: with no prior copy,
  -- any UPDATE that arrives here is stale and must not be installed.
  message WR_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), WRITE_REQ, id);
    Suspend(L, Cache_WriteFill{L});
    WakeUp(id);
  end;

  -- An update addressed to a copy we already evicted.
  message UPDATE (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Cache_Inv", Msg_To_Str(MessageTag));
  end;
end;

state Update.Cache_Fill(C : CONT)
begin
  message GET_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    SetState(info, Cache_RO{});
    Resume(C);
  end;

  -- An update racing our (re-)fill refreshes nothing we hold yet.
  message UPDATE (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  -- A stale eviction-handshake completion: we already re-requested.
  message EVICT_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Update.Cache_RO()
begin
  -- Writes go through the home; we keep our (refreshed) copy.
  message WR_RO_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), WRITE_REQ, id);
    Suspend(L, Cache_WriteWait{L});
    WakeUp(id);
  end;

  -- A peer's write: new data arrives in a single message (the whole
  -- point of the protocol).
  message UPDATE (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
  end;

  message EVICT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), EVICT_REQ, id);
    AccessChange(id, Blk_Invalidate);
    SetState(info, Cache_Evicting{});
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Cache_RO", Msg_To_Str(MessageTag));
  end;
end;

state Update.Cache_WriteWait(C : CONT)
begin
  message WRITE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    SetState(info, Cache_RO{});
    Resume(C);
  end;

  -- Another writer's update crossing ours: apply it (last write wins at
  -- the home; both copies converge on the home's order).
  message UPDATE (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
  end;

  -- A stale eviction-handshake completion: we already re-requested.
  message EVICT_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Update.Cache_Evicting()
begin
  message EVICT_ACK (id : ID; var info : INFO; src : NODE)
  begin
    SetState(info, Cache_Inv{});
  end;

  -- Updates keep flowing until the home processes our eviction.
  message UPDATE (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Suspend(L, Cache_Fill{L});
    WakeUp(id);
  end;

  message WR_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Suspend(L, Cache_WriteFill{L});
    WakeUp(id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

-- A write-through from a node with no prior copy: stale updates (from
-- before our WRITE_REQ was processed) must be ignored, not installed.
state Update.Cache_WriteFill(C : CONT)
begin
  message WRITE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    SetState(info, Cache_RO{});
    Resume(C);
  end;

  message UPDATE (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message EVICT_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

-- The home never waits: every request completes in one handler. (Compare
-- Stache's Figure 4 blow-up; the update protocol's "state machine" really
-- is the idealized one.)
state Update.Home()
begin
  message GET_REQ (id : ID; var info : INFO; src : NODE)
  begin
    AddSharer(info, src);
    SendData(src, GET_RESP, id);
    -- With sharers outstanding, the home's own writes must fault so they
    -- can be multicast.
    AccessChange(id, Blk_ReadOnly);
  end;

  message WRITE_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendUpdates(info, src, id);
    AddSharer(info, src);
    SendData(src, WRITE_ACK, id);
    AccessChange(id, Blk_ReadOnly);
  end;

  message EVICT_REQ (id : ID; var info : INFO; src : NODE)
  begin
    RemoveSharer(info, src);
    Send(src, EVICT_ACK, id);
    if (NumSharers(info) = 0) then
      AccessChange(id, Blk_ReadWrite);
    endif;
  end;

  -- The home processor writes the master copy and multicasts the new
  -- data; while sharers remain, the next write faults again.
  message WR_RO_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    SendUpdates(info, MyNode(), id);
    if (NumSharers(info) = 0) then
      AccessChange(id, Blk_ReadWrite);
    endif;
    WakeUp(id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Home", Msg_To_Str(MessageTag));
  end;
end;
`

// Compile compiles the update protocol.
func Compile(optimize bool) (*core.Artifacts, error) {
	return core.Compile(core.Config{
		Name:       "update.tea",
		Source:     Source,
		Optimize:   optimize,
		HomeStart:  "Home",
		CacheStart: "Cache_Inv",
	})
}

// MustCompile panics on error.
func MustCompile(optimize bool) *core.Artifacts {
	a, err := Compile(optimize)
	if err != nil {
		panic(err)
	}
	return a
}

// Support implements the UpdateSupport module over the sharers bitmask;
// SendUpdates multicasts data-carrying UPDATE messages.
type Support struct {
	sharersSlot int
	updateMsg   int
}

// NewSupport builds the support module.
func NewSupport(p *runtime.Protocol) (*Support, error) {
	s := &Support{sharersSlot: -1, updateMsg: p.MsgIndex("UPDATE")}
	for _, v := range p.Sema().ProtVars {
		if v.Name == "sharers" {
			s.sharersSlot = v.Index
		}
	}
	if s.sharersSlot < 0 || s.updateMsg < 0 {
		return nil, fmt.Errorf("update support: protocol lacks 'sharers' or UPDATE")
	}
	return s, nil
}

// MustSupport panics on error.
func MustSupport(p *runtime.Protocol) *Support {
	s, err := NewSupport(p)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Support) mask(ctx *runtime.Ctx) int64 { return ctx.Block.Vars[s.sharersSlot].Int }
func (s *Support) setMask(ctx *runtime.Ctx, m int64) {
	ctx.Block.Vars[s.sharersSlot] = vm.IntVal(m)
}

// Call implements runtime.Support.
func (s *Support) Call(ctx *runtime.Ctx, name string, args []*vm.Value) (vm.Value, error) {
	switch name {
	case "AddSharer":
		s.setMask(ctx, s.mask(ctx)|1<<uint(args[1].Int))
		return vm.Value{}, nil
	case "RemoveSharer":
		s.setMask(ctx, s.mask(ctx)&^(1<<uint(args[1].Int)))
		return vm.Value{}, nil
	case "IsSharer":
		return vm.BoolVal(s.mask(ctx)&(1<<uint(args[1].Int)) != 0), nil
	case "NumSharers":
		m := s.mask(ctx)
		n := int64(0)
		for ; m != 0; m &= m - 1 {
			n++
		}
		return vm.IntVal(n), nil
	case "SendUpdates":
		excl := args[1].Int
		id := int(args[2].Int)
		m := s.mask(ctx)
		count := int64(0)
		for n := 0; n < 64; n++ {
			if m&(1<<uint(n)) == 0 || int64(n) == excl {
				continue
			}
			ctx.Engine.Sends++
			ctx.Engine.Machine.Send(ctx.Engine.Node, n, &runtime.Message{
				Tag: s.updateMsg, ID: id, Src: ctx.Engine.Node, Data: true,
			})
			count++
		}
		return vm.IntVal(count), nil
	}
	return vm.Value{}, fmt.Errorf("update support: unknown routine %q", name)
}

// ModConst implements runtime.Support.
func (s *Support) ModConst(ctx *runtime.Ctx, name string) vm.Value { return vm.Value{} }

// Events is the verification event generator: reads, write-throughs and
// evictions in every stable state.
type Events struct {
	rd, wr, wrro, evict, update int
}

// NewEvents builds the generator.
func NewEvents(p *runtime.Protocol) *Events {
	return &Events{
		rd:     p.MsgIndex("RD_FAULT"),
		wr:     p.MsgIndex("WR_FAULT"),
		wrro:   p.MsgIndex("WR_RO_FAULT"),
		evict:  p.MsgIndex("EVICT"),
		update: p.MsgIndex("UPDATE"),
	}
}

// Enabled implements mc.EventGen.
func (g *Events) Enabled(w *mc.World, node, block int) []mc.Event {
	if w.Stalled(node) >= 0 {
		return nil
	}
	switch w.StateName(node, block) {
	case "Cache_Inv":
		return []mc.Event{
			{Name: "RD_FAULT", Tag: g.rd, Stalls: true},
			{Name: "WR_FAULT", Tag: g.wr, Stalls: true},
		}
	case "Cache_RO":
		return []mc.Event{
			{Name: "WR_RO_FAULT", Tag: g.wrro, Stalls: true},
			{Name: "EVICT", Tag: g.evict},
		}
	case "Home":
		// The home's write completes locally (it is woken in-handler), so
		// unconstrained generation would flood the channels with UPDATEs;
		// model a depth-1 store buffer: no new write while this node's
		// previous update multicast is still in flight.
		if w.IsHome(node, block) && w.Access(node, block) == sema.AccReadOnly {
			pending := w.AnyMessage(func(m *runtime.Message) bool {
				return m.Src == node && m.ID == block && m.Tag == g.update
			})
			if !pending {
				return []mc.Event{{Name: "WR_RO_FAULT", Tag: g.wrro, Stalls: true}}
			}
		}
	}
	return nil
}

// NodeMaskSlots implements runtime.SymmetryDecl: 'sharers' is a node
// bitmask.
func (s *Support) NodeMaskSlots() []int { return []int{s.sharersSlot} }

// EquivariantRoutines implements runtime.SymmetryDecl: bit tests/sets on
// the sharer mask and a multicast to its members, all
// permutation-equivariant once the mask is re-indexed.
func (s *Support) EquivariantRoutines() []string {
	return []string{"AddSharer", "RemoveSharer", "IsSharer", "NumSharers", "SendUpdates"}
}

// SymmetricEvents implements mc.EquivariantEvents: enablement reads state
// names and sharer counts only, never concrete node ids.
func (e *Events) SymmetricEvents() {}

package lcm

import (
	"fmt"
	"sync/atomic"

	"teapot/internal/core"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/vm"
)

// Compile compiles an LCM variant.
func Compile(v Variant, optimize bool) (*core.Artifacts, error) {
	return core.Compile(core.Config{
		Name:       v.String() + ".tea",
		Source:     Source(v),
		Optimize:   optimize,
		HomeStart:  "Home_Idle",
		CacheStart: "Cache_Inv",
	})
}

// MustCompile panics on error (the generated sources are tested).
func MustCompile(v Variant, optimize bool) *core.Artifacts {
	a, err := Compile(v, optimize)
	if err != nil {
		panic(err)
	}
	return a
}

// Support implements the LCMSupport module. It reuses the Stache support
// for sharer-set routines (consumers share the same bitmask — the set is
// unused during a phase) and adds phase bookkeeping.
type Support struct {
	stache *stache.Support
	nodes  int

	sharersSlot int
	holderSlot  int
	updateMsg   int

	// Merges counts reconciliations (per-run statistic). Updated
	// atomically: one Support instance serves every engine, including the
	// model checker's concurrent workers.
	Merges int64
}

// NewSupport builds the support module for a compiled LCM protocol.
func NewSupport(p *runtime.Protocol, nodes int) (*Support, error) {
	ss, err := stache.NewSupport(p)
	if err != nil {
		return nil, err
	}
	s := &Support{stache: ss, nodes: nodes, sharersSlot: -1, holderSlot: -1}
	for _, v := range p.Sema().ProtVars {
		switch v.Name {
		case "sharers":
			s.sharersSlot = v.Index
		case "holder":
			s.holderSlot = v.Index
		}
	}
	s.updateMsg = p.MsgIndex("LCM_UPDATE")
	if s.holderSlot < 0 || s.updateMsg < 0 {
		return nil, fmt.Errorf("lcm support: protocol lacks holder/LCM_UPDATE")
	}
	return s, nil
}

// MustSupport panics on error.
func MustSupport(p *runtime.Protocol, nodes int) *Support {
	s, err := NewSupport(p, nodes)
	if err != nil {
		panic(err)
	}
	return s
}

// Call implements runtime.Support.
func (s *Support) Call(ctx *runtime.Ctx, name string, args []*vm.Value) (vm.Value, error) {
	switch name {
	case "Merge":
		// Reconciliation of a PUT_ACCUM into the master copy. Data
		// movement is modeled by the Data flag; here we only account for
		// the merge work.
		atomic.AddInt64(&s.Merges, 1)
		return vm.Value{}, nil
	case "RecordConsumer":
		return s.stache.Call(ctx, "AddSharer", args)
	case "ClearConsumers":
		return s.stache.Call(ctx, "ClearSharers", args)
	case "PushUpdates":
		id := int(args[1].Int)
		mask := ctx.Block.Vars[s.sharersSlot].Int
		for n := 0; n < s.nodes; n++ {
			if mask&(1<<uint(n)) == 0 || n == ctx.Engine.Node {
				continue
			}
			ctx.Engine.Sends++
			ctx.Engine.Machine.Send(ctx.Engine.Node, n, &runtime.Message{
				Tag:  s.updateMsg,
				ID:   id,
				Src:  ctx.Engine.Node,
				Data: true,
			})
		}
		// The home never pushes to itself; drop it from the sharer set.
		ctx.Block.Vars[s.sharersSlot] = vm.IntVal(mask &^ (1 << uint(ctx.Engine.Node)))
		return vm.Value{}, nil
	case "HasHolder":
		return vm.BoolVal(ctx.Block.Vars[s.holderSlot].Int >= 0), nil
	case "ClearHolder":
		ctx.Block.Vars[s.holderSlot] = vm.NodeVal(-1)
		return vm.Value{}, nil
	}
	return s.stache.Call(ctx, name, args)
}

// ModConst implements runtime.Support.
func (s *Support) ModConst(ctx *runtime.Ctx, name string) vm.Value {
	return s.stache.ModConst(ctx, name)
}

// NodeMaskSlots implements runtime.SymmetryDecl: 'sharers' (the consumer
// set) is a node bitmask; 'holder' is NODE-typed and permutes by value.
func (s *Support) NodeMaskSlots() []int { return []int{s.sharersSlot} }

// EquivariantRoutines implements runtime.SymmetryDecl: the LCM routines
// are mask-bit bookkeeping, a mask multicast, a NODE-typed holder
// test/clear, and a global merge counter (a statistic outside the
// checker's state), plus the delegated Stache routines.
func (s *Support) EquivariantRoutines() []string {
	return append(s.stache.EquivariantRoutines(),
		"Merge", "RecordConsumer", "ClearConsumers", "PushUpdates", "HasHolder", "ClearHolder")
}

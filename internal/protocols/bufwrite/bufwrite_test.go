package bufwrite

import (
	"strings"
	"testing"
)

func TestCompiles(t *testing.T) {
	for _, opt := range []bool{false, true} {
		a, err := Compile(opt)
		if err != nil {
			t.Fatalf("optimize=%v: %v", opt, err)
		}
		// Stache's 16 states + the 4 buffered-write states, minus
		// Cache_RO_To_RW (unreachable once upgrades are buffered).
		if got := len(a.Sema.States); got != 19 {
			t.Errorf("states = %d, want 19", got)
		}
		if a.Sema.MessageByName("SYNC") == nil {
			t.Error("SYNC message missing")
		}
	}
}

func TestSourceComposition(t *testing.T) {
	// The blocking handlers must be gone and the buffering ones present.
	if strings.Contains(Source, "Suspend(L, Cache_Inv_To_RW{L})") {
		t.Error("blocking WR_FAULT handler still present")
	}
	for _, want := range []string{
		"Cache_Buf_Fill", "Cache_Buf_Upgrade", "Cache_SyncFill",
		"Cache_SyncUpgrade", "Blk_Buffered", "buffered := buffered + 1",
	} {
		if !strings.Contains(Source, want) {
			t.Errorf("source missing %q", want)
		}
	}
	// SYNC handled in all six stable states.
	if got := strings.Count(Source, "message SYNC"); got < 7 {
		t.Errorf("SYNC handlers = %d, want >= 7", got)
	}
}

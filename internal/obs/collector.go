package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Collector is the in-memory Sink: a bounded ring of recent events plus
// running counters and small histograms that survive even when the ring
// wraps. The counters are the dynamic mirror of the paper's Table 1/2
// accounting — per-handler dispatch counts and continuation allocations per
// suspend site — so traces can be cross-checked against the static
// cont-alloc lint and the cost model's Allocs columns.
type Collector struct {
	// Clock supplies virtual timestamps (simulated cycles); nil stamps
	// events with their sequence number instead. Set directly or through
	// SetClock (sim.Run wires the machine's cycle counter).
	Clock func() int64

	cap     int
	ring    []Event
	start   int // index of the oldest retained event
	seq     int64
	dropped int64

	kinds    [numKinds]int64
	dispatch map[dispatchKey]int64
	heap     map[int32]int64 // heap continuation allocs per suspend site
	static   map[int32]int64 // static continuation records per suspend site
	maxDepth int64           // deepest deferred queue observed
}

type dispatchKey struct {
	State int32
	Msg   int32
}

// DefaultRingCap bounds the retained event window when NewCollector is
// given no capacity.
const DefaultRingCap = 1 << 20

// NewCollector builds a collector retaining at most capacity events
// (<= 0 uses DefaultRingCap). Counters always cover the whole run; only
// the event window is bounded.
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Collector{
		cap:      capacity,
		dispatch: make(map[dispatchKey]int64),
		heap:     make(map[int32]int64),
		static:   make(map[int32]int64),
	}
}

// DefaultFlightRecorderCap is the event window NewFlightRecorder keeps when
// given no capacity: enough tail to see the exchange leading into a
// violation, small enough to attach to every fuzz schedule for free.
const DefaultFlightRecorderCap = 64

// NewFlightRecorder builds a Collector in flight-recorder mode: a small
// last-N-events ring (<= 0 uses DefaultFlightRecorderCap) intended for
// post-mortems without full tracing. Counters still cover the whole run —
// only the retained window is tight. Dump the tail with TailLines when an
// oracle violation or checker counterexample needs context.
func NewFlightRecorder(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultFlightRecorderCap
	}
	return NewCollector(capacity)
}

// SetClock implements ClockSetter.
func (c *Collector) SetClock(now func() int64) { c.Clock = now }

// Emit implements Sink.
func (c *Collector) Emit(ev Event) {
	ev.Seq = c.seq
	c.seq++
	if c.Clock != nil {
		ev.Time = c.Clock()
	} else {
		ev.Time = ev.Seq
	}
	if int(ev.Kind) < len(c.kinds) {
		c.kinds[ev.Kind]++
	}
	switch ev.Kind {
	case KindHandlerEnter:
		c.dispatch[dispatchKey{ev.State, ev.Msg}]++
	case KindContAlloc:
		if ev.Arg != 0 {
			c.heap[ev.Site]++
		} else {
			c.static[ev.Site]++
		}
	case KindEnqueue:
		if ev.Arg > c.maxDepth {
			c.maxDepth = ev.Arg
		}
	}
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, ev)
		return
	}
	c.ring[c.start] = ev
	c.start = (c.start + 1) % c.cap
	c.dropped++
}

// Total returns the number of events emitted (including dropped ones).
func (c *Collector) Total() int64 { return c.seq }

// Dropped returns how many events fell out of the ring window.
func (c *Collector) Dropped() int64 { return c.dropped }

// Count returns the running count of one event kind.
func (c *Collector) Count(k Kind) int64 {
	if int(k) < len(c.kinds) {
		return c.kinds[k]
	}
	return 0
}

// MaxQueueDepth returns the deepest deferred queue observed.
func (c *Collector) MaxQueueDepth() int64 { return c.maxDepth }

// KindCounts returns the nonzero per-kind counters keyed by kind name
// (the run manifest's "by_kind" block).
func (c *Collector) KindCounts() map[string]int64 {
	out := make(map[string]int64)
	for k := Kind(0); k < numKinds; k++ {
		if c.kinds[k] != 0 {
			out[k.String()] = c.kinds[k]
		}
	}
	return out
}

// Events returns the retained window in emission order.
func (c *Collector) Events() []Event {
	out := make([]Event, 0, len(c.ring))
	out = append(out, c.ring[c.start:]...)
	out = append(out, c.ring[:c.start]...)
	return out
}

// TailLines renders the last n retained events (all of them when n <= 0 or
// exceeds the window), one line per event, oldest first.
func (c *Collector) TailLines(n int, names Names) []string {
	evs := c.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = FormatEvent(ev, names)
	}
	return out
}

// FormatEvent renders one event as a single plain-text line (the flight
// recorder's dump format): sequence, virtual time, kind, location, then
// whichever kind-specific fields are set.
func FormatEvent(ev Event, names Names) string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d @%d %s node%d blk%d", ev.Seq, ev.Time, ev.Kind, ev.Node, ev.Block)
	if ev.State >= 0 {
		fmt.Fprintf(&b, " state=%s", names.State(ev.State))
	}
	if ev.Msg >= 0 {
		fmt.Fprintf(&b, " msg=%s", names.Message(ev.Msg))
	}
	if ev.Peer >= 0 {
		fmt.Fprintf(&b, " peer=node%d", ev.Peer)
	}
	if ev.Site >= 0 {
		fmt.Fprintf(&b, " site=%d", ev.Site)
	}
	if ev.Arg != 0 {
		fmt.Fprintf(&b, " arg=%d", ev.Arg)
	}
	if ev.Flow != 0 {
		fmt.Fprintf(&b, " flow=%x", ev.Flow)
	}
	return b.String()
}

// HeapContSites returns the suspend sites that heap-allocated at least one
// continuation record, ascending.
func (c *Collector) HeapContSites() []int { return sortedSites(c.heap) }

// StaticContSites returns the suspend sites that produced at least one
// statically allocated record, ascending.
func (c *Collector) StaticContSites() []int { return sortedSites(c.static) }

// SiteAllocs returns (heap, static) continuation-record counts for one
// suspend site.
func (c *Collector) SiteAllocs(site int) (heap, static int64) {
	return c.heap[int32(site)], c.static[int32(site)]
}

func sortedSites(m map[int32]int64) []int {
	out := make([]int, 0, len(m))
	for s := range m {
		out = append(out, int(s))
	}
	sort.Ints(out)
	return out
}

// DispatchCount returns how many times the (state, msg) handler ran.
func (c *Collector) DispatchCount(state, msg int) int64 {
	return c.dispatch[dispatchKey{int32(state), int32(msg)}]
}

// summaryTopHandlers bounds the per-handler table in Summary.
const summaryTopHandlers = 10

// Summary renders the counters as a plain-text table (the format is pinned
// by a golden test; teapot-sim -stats prints it verbatim).
func (c *Collector) Summary(names Names) string {
	var b strings.Builder
	fmt.Fprintf(&b, "obs summary: %d events (%d retained, %d dropped)\n",
		c.seq, len(c.ring), c.dropped)
	fmt.Fprintf(&b, "  events by kind:\n")
	for k := Kind(0); k < numKinds; k++ {
		if c.kinds[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "    %-13s %d\n", k.String(), c.kinds[k])
	}

	type hrow struct {
		name string
		n    int64
	}
	rows := make([]hrow, 0, len(c.dispatch))
	for k, n := range c.dispatch {
		rows = append(rows, hrow{names.State(k.State) + "." + names.Message(k.Msg), n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].name < rows[j].name
	})
	if len(rows) > 0 {
		fmt.Fprintf(&b, "  top handlers by dispatch count:\n")
		for i, r := range rows {
			if i == summaryTopHandlers {
				fmt.Fprintf(&b, "    ... %d more\n", len(rows)-summaryTopHandlers)
				break
			}
			fmt.Fprintf(&b, "    %-32s %d\n", r.name, r.n)
		}
	}

	heapTotal, staticTotal := int64(0), int64(0)
	for _, n := range c.heap {
		heapTotal += n
	}
	for _, n := range c.static {
		staticTotal += n
	}
	fmt.Fprintf(&b, "  continuation records: %d heap (%d sites), %d static (%d sites)\n",
		heapTotal, len(c.heap), staticTotal, len(c.static))
	fmt.Fprintf(&b, "  max deferred-queue depth: %d\n", c.maxDepth)
	return b.String()
}

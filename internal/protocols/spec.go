package protocols

import (
	"fmt"

	"teapot/internal/core"
	"teapot/internal/protocols/bufwrite"
	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
	"teapot/internal/protocols/update"
)

// Spec builds a runnable core.RunSpec for a bundled protocol: compiled
// protocol, its support module, and its event generator, wired the same
// way for every driver (teapot-verify, teapot-sim, teapot-bench). The
// caller fills the run-shape knobs (Net, Workers, Seed, Program, ...) on
// the returned spec.
//
// Not every bundled protocol is runnable — some exist only as compilation
// fixtures — so Spec covers a subset of All().
func Spec(name string, nodes, blocks int) (core.RunSpec, error) {
	spec := core.RunSpec{Nodes: nodes, Blocks: blocks, CheckCoherence: true}
	switch name {
	case "stache":
		a := stache.MustCompile(true)
		spec.Proto = a.Protocol
		spec.Support = stache.MustSupport(a.Protocol)
		spec.Events = stache.NewEvents(a.Protocol)
	case "stache-ft":
		a := stache.MustCompileFT(true)
		spec.Proto = a.Protocol
		spec.Support = stache.MustFTSupport(a.Protocol, nodes)
		spec.Events = stache.NewEvents(a.Protocol)
	case "stache-buggy":
		p, err := stache.CompileBuggy()
		if err != nil {
			return spec, err
		}
		spec.Proto = p
		spec.Support = stache.MustSupport(p)
		spec.Events = stache.NewEvents(p)
	case "stache-ft-buggy":
		a, err := stache.CompileFTBuggy()
		if err != nil {
			return spec, err
		}
		spec.Proto = a.Protocol
		spec.Support = stache.MustFTSupport(a.Protocol, nodes)
		spec.Events = stache.NewEvents(a.Protocol)
	case "stache-asym":
		a := stache.MustCompileAsym(true)
		spec.Proto = a.Protocol
		spec.Support = stache.MustSupport(a.Protocol)
		spec.Events = stache.NewEvents(a.Protocol)
	case "bufwrite":
		a := bufwrite.MustCompile(true)
		spec.Proto = a.Protocol
		spec.Support = bufwrite.MustSupport(a.Protocol)
		spec.Events = bufwrite.NewEvents(a.Protocol)
	case "lcm":
		a := lcm.MustCompile(lcm.Base, true)
		spec.Proto = a.Protocol
		spec.Support = lcm.MustSupport(a.Protocol, nodes)
		spec.Events = lcm.NewEvents(a.Protocol)
		spec.CheckCoherence = false // LCM phases are deliberately inconsistent
	case "lcm-mcc":
		a := lcm.MustCompile(lcm.MCC, true)
		spec.Proto = a.Protocol
		spec.Support = lcm.MustSupport(a.Protocol, nodes)
		spec.Events = lcm.NewEvents(a.Protocol)
		spec.CheckCoherence = false
	case "update":
		a := update.MustCompile(true)
		spec.Proto = a.Protocol
		spec.Support = update.MustSupport(a.Protocol)
		spec.Events = update.NewEvents(a.Protocol)
	default:
		return spec, fmt.Errorf("no runnable spec for protocol %q (try: stache, stache-ft, stache-buggy, stache-ft-buggy, stache-asym, bufwrite, lcm, lcm-mcc, update)", name)
	}
	return spec, nil
}

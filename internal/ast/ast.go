// Package ast defines the abstract syntax tree for Teapot programs,
// following the grammar in Appendix A of the PLDI '96 paper.
//
// A program is: a list of support modules (abstract types and prototypes of
// support routines), one protocol declaration (protocol-level variables,
// constants, state and message declarations), and the state bodies
// themselves, each containing message handlers.
package ast

import (
	"teapot/internal/source"
	"teapot/internal/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() source.Pos
}

// Ident is an identifier occurrence.
type Ident struct {
	Name    string
	NamePos source.Pos
}

func (x *Ident) Pos() source.Pos { return x.NamePos }
func (x *Ident) String() string {
	if x == nil {
		return "<nil>"
	}
	return x.Name
}

// Program is a complete Teapot compilation unit.
type Program struct {
	File     *source.File
	Modules  []*Module
	Protocol *Protocol
	States   []*State
}

func (p *Program) Pos() source.Pos {
	if len(p.Modules) > 0 {
		return p.Modules[0].Pos()
	}
	if p.Protocol != nil {
		return p.Protocol.Pos()
	}
	return source.Pos{}
}

// Module declares abstract types and support-routine prototypes. Concrete
// implementations are supplied by the embedding system (Go support modules
// here; C or Murphi support code in the paper).
type Module struct {
	ModulePos source.Pos
	Name      *Ident
	Decls     []ModDecl
}

func (m *Module) Pos() source.Pos { return m.ModulePos }

// ModDecl is a declaration inside a module.
type ModDecl interface {
	Node
	modDecl()
}

// TypeDecl declares an abstract type (e.g. "type SharerList;").
type TypeDecl struct {
	TypePos source.Pos
	Name    *Ident
}

func (d *TypeDecl) Pos() source.Pos { return d.TypePos }
func (d *TypeDecl) modDecl()        {}

// ModConstDecl declares a named constant of an abstract type
// ("const Blk_Invalidate : ACCESS;").
type ModConstDecl struct {
	ConstPos source.Pos
	Name     *Ident
	Type     *Ident
}

func (d *ModConstDecl) Pos() source.Pos { return d.ConstPos }
func (d *ModConstDecl) modDecl()        {}

// SubDecl is a function or procedure prototype.
type SubDecl struct {
	DeclPos source.Pos
	Name    *Ident
	Params  []*Param
	Result  *Ident // nil for procedures
}

func (d *SubDecl) Pos() source.Pos { return d.DeclPos }
func (d *SubDecl) modDecl()        {}

// Param is one parameter group: "var a, b : NODE" or "id : ID".
type Param struct {
	VarPos source.Pos // position of 'var' if ByRef
	Names  []*Ident
	Type   *Ident
	ByRef  bool
}

func (p *Param) Pos() source.Pos {
	if len(p.Names) > 0 {
		return p.Names[0].Pos()
	}
	return p.VarPos
}

// Protocol is the protocol header block.
type Protocol struct {
	ProtoPos source.Pos
	Name     *Ident
	Decls    []ProtDecl
}

func (p *Protocol) Pos() source.Pos { return p.ProtoPos }

// ProtDecl is a declaration inside the protocol block.
type ProtDecl interface {
	Node
	protDecl()
}

// ProtVarDecl declares a protocol-level variable ("var pending : int;").
// Protocol variables are per-block bookkeeping fields (the paper's "global
// info area available per block, which can be used to communicate values").
type ProtVarDecl struct {
	VarPos source.Pos
	Name   *Ident
	Type   *Ident
}

func (d *ProtVarDecl) Pos() source.Pos { return d.VarPos }
func (d *ProtVarDecl) protDecl()       {}

// ProtConstDecl defines a protocol constant ("const MaxSharers := 32;").
type ProtConstDecl struct {
	ConstPos source.Pos
	Name     *Ident
	Value    Expr
}

func (d *ProtConstDecl) Pos() source.Pos { return d.ConstPos }
func (d *ProtConstDecl) protDecl()       {}

// StateDecl forward-declares a state and its parameters
// ("state Cache_RO_To_RW (C : CONT) transient;").
type StateDecl struct {
	StatePos  source.Pos
	Name      *Ident
	Params    []*Param
	Transient bool
}

func (d *StateDecl) Pos() source.Pos { return d.StatePos }
func (d *StateDecl) protDecl()       {}

// MessageDecl declares a message tag ("message GET_RO_REQ;").
type MessageDecl struct {
	MsgPos source.Pos
	Name   *Ident
}

func (d *MessageDecl) Pos() source.Pos { return d.MsgPos }
func (d *MessageDecl) protDecl()       {}

// State is a state body: "state Stache.Cache_ReadOnly{...} begin ... end;".
// The paper writes parameters in braces for state values and in parentheses
// for declarations; the parser accepts both here.
type State struct {
	StatePos source.Pos
	Proto    *Ident // protocol qualifier before the dot
	Name     *Ident
	Params   []*Param
	Handlers []*Handler
}

func (s *State) Pos() source.Pos { return s.StatePos }

// DefaultName is the reserved handler name matching otherwise-unhandled
// messages.
const DefaultName = "DEFAULT"

// Handler is a message handler within a state.
type Handler struct {
	MsgPos source.Pos
	Name   *Ident // message tag, or DEFAULT
	Params []*Param
	Locals []*Param // block-decls: local variable groups
	Body   []Stmt
}

func (h *Handler) Pos() source.Pos { return h.MsgPos }

// IsDefault reports whether this is the DEFAULT handler.
func (h *Handler) IsDefault() bool { return h.Name.Name == DefaultName }

// Stmt is a statement.
type Stmt interface {
	Node
	stmt()
}

// IfStmt is "if (e) then ... [else ...] endif".
type IfStmt struct {
	IfPos source.Pos
	Cond  Expr
	Then  []Stmt
	Else  []Stmt
}

func (s *IfStmt) Pos() source.Pos { return s.IfPos }
func (s *IfStmt) stmt()           {}

// WhileStmt is "while (e) do ... end".
type WhileStmt struct {
	WhilePos source.Pos
	Cond     Expr
	Body     []Stmt
}

func (s *WhileStmt) Pos() source.Pos { return s.WhilePos }
func (s *WhileStmt) stmt()           {}

// CallStmt invokes a support procedure or builtin ("Send(home, GET_RO_REQ, id);").
type CallStmt struct {
	Call *CallExpr
}

func (s *CallStmt) Pos() source.Pos { return s.Call.Pos() }
func (s *CallStmt) stmt()           {}

// AssignStmt is "x := e".
type AssignStmt struct {
	LHS *Ident
	RHS Expr
}

func (s *AssignStmt) Pos() source.Pos { return s.LHS.Pos() }
func (s *AssignStmt) stmt()           {}

// SuspendStmt is "Suspend(L, TargetState{L, ...})": capture the current
// continuation into L, transition the block to the target subroutine state
// (whose arguments may mention L), and yield.
type SuspendStmt struct {
	SuspendPos source.Pos
	Cont       *Ident
	Target     *StateExpr
}

func (s *SuspendStmt) Pos() source.Pos { return s.SuspendPos }
func (s *SuspendStmt) stmt()           {}

// ResumeStmt is "Resume(C)": finish this handler and continue the suspended
// computation captured in C.
type ResumeStmt struct {
	ResumePos source.Pos
	Cont      Expr
}

func (s *ResumeStmt) Pos() source.Pos { return s.ResumePos }
func (s *ResumeStmt) stmt()           {}

// ReturnStmt is "return" or "return e"; in handler bodies a bare return acts
// as the paper's "exit" (finish the handler).
type ReturnStmt struct {
	ReturnPos source.Pos
	Value     Expr // may be nil
}

func (s *ReturnStmt) Pos() source.Pos { return s.ReturnPos }
func (s *ReturnStmt) stmt()           {}

// PrintStmt is "print(e, ...)", a debugging aid.
type PrintStmt struct {
	PrintPos source.Pos
	Args     []Expr
}

func (s *PrintStmt) Pos() source.Pos { return s.PrintPos }
func (s *PrintStmt) stmt()           {}

// Expr is an expression.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos source.Pos
	Value  int64
}

func (x *IntLit) Pos() source.Pos { return x.LitPos }
func (x *IntLit) expr()           {}

// BoolLit is "true" or "false".
type BoolLit struct {
	LitPos source.Pos
	Value  bool
}

func (x *BoolLit) Pos() source.Pos { return x.LitPos }
func (x *BoolLit) expr()           {}

// StringLit is a string literal (only meaningful to Error/print).
type StringLit struct {
	LitPos source.Pos
	Value  string
}

func (x *StringLit) Pos() source.Pos { return x.LitPos }
func (x *StringLit) expr()           {}

// Name is a variable, parameter, or constant reference.
type Name struct {
	Ident *Ident
}

func (x *Name) Pos() source.Pos { return x.Ident.Pos() }
func (x *Name) expr()           {}

// CallExpr is a support-function application "f(a, b)".
type CallExpr struct {
	Func *Ident
	Args []Expr
}

func (x *CallExpr) Pos() source.Pos { return x.Func.Pos() }
func (x *CallExpr) expr()           {}

// StateExpr is a state-value constructor "Cache_RW{}" or "Cache_RO_To_RW{L}".
type StateExpr struct {
	Name *Ident
	Args []Expr
}

func (x *StateExpr) Pos() source.Pos { return x.Name.Pos() }
func (x *StateExpr) expr()           {}

// BinExpr is a binary operation.
type BinExpr struct {
	Op    token.Kind
	OpPos source.Pos
	X, Y  Expr
}

func (x *BinExpr) Pos() source.Pos { return x.X.Pos() }
func (x *BinExpr) expr()           {}

// UnExpr is a unary operation (not, -).
type UnExpr struct {
	Op    token.Kind
	OpPos source.Pos
	X     Expr
}

func (x *UnExpr) Pos() source.Pos { return x.OpPos }
func (x *UnExpr) expr()           {}

// ParenExpr preserves explicit parentheses.
type ParenExpr struct {
	LPos source.Pos
	X    Expr
}

func (x *ParenExpr) Pos() source.Pos { return x.LPos }
func (x *ParenExpr) expr()           {}

// Walk calls fn for every statement in the handler body, recursing into
// nested if/while bodies. It is the shared traversal used by sema and lower.
func Walk(body []Stmt, fn func(Stmt)) {
	for _, s := range body {
		fn(s)
		switch s := s.(type) {
		case *IfStmt:
			Walk(s.Then, fn)
			Walk(s.Else, fn)
		case *WhileStmt:
			Walk(s.Body, fn)
		}
	}
}

// WalkExprs calls fn for every expression reachable from e (including e).
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *CallExpr:
		for _, a := range e.Args {
			WalkExprs(a, fn)
		}
	case *StateExpr:
		for _, a := range e.Args {
			WalkExprs(a, fn)
		}
	case *BinExpr:
		WalkExprs(e.X, fn)
		WalkExprs(e.Y, fn)
	case *UnExpr:
		WalkExprs(e.X, fn)
	case *ParenExpr:
		WalkExprs(e.X, fn)
	}
}

// StmtExprs calls fn for every expression directly contained in s (not
// recursing into nested statements).
func StmtExprs(s Stmt, fn func(Expr)) {
	switch s := s.(type) {
	case *IfStmt:
		WalkExprs(s.Cond, fn)
	case *WhileStmt:
		WalkExprs(s.Cond, fn)
	case *CallStmt:
		WalkExprs(s.Call, fn)
	case *AssignStmt:
		WalkExprs(s.RHS, fn)
	case *SuspendStmt:
		WalkExprs(s.Target, fn)
	case *ResumeStmt:
		WalkExprs(s.Cont, fn)
	case *ReturnStmt:
		WalkExprs(s.Value, fn)
	case *PrintStmt:
		for _, a := range s.Args {
			WalkExprs(a, fn)
		}
	}
}

package bench

import (
	"fmt"
	"time"

	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// CoverageRow is one record in the `coverage` series of BENCH_mc.json: the
// same deterministic run timed with the coverage sink detached (the PR 3
// fast path) and attached, so the cost of measuring dispatch coverage is a
// committed number rather than folklore. Units is events for sim rows and
// states for mc rows; both runs process the identical unit count.
type CoverageRow struct {
	Kind          string  `json:"kind"` // "sim" or "mc"
	Name          string  `json:"name"`
	Units         int64   `json:"units"`
	WallMSOff     float64 `json:"wall_ms_off"`
	WallMSOn      float64 `json:"wall_ms_on"`
	PerSecOff     float64 `json:"per_sec_off"`
	PerSecOn      float64 `json:"per_sec_on"`
	OverheadPct   float64 `json:"overhead_pct"`
	DispatchPairs int     `json:"dispatch_pairs"`
}

func coverageRate(row *CoverageRow, offWall, onWall time.Duration) {
	row.WallMSOff = float64(offWall) / float64(time.Millisecond)
	row.WallMSOn = float64(onWall) / float64(time.Millisecond)
	if s := offWall.Seconds(); s > 0 {
		row.PerSecOff = float64(row.Units) / s
	}
	if s := onWall.Seconds(); s > 0 {
		row.PerSecOn = float64(row.Units) / s
	}
	if offWall > 0 {
		row.OverheadPct = 100 * float64(onWall-offWall) / float64(offWall)
	}
}

// CoverageBench measures what coverage accounting costs on both substrates:
// each Table 1 workload runs once bare and once under an obs.Coverage sink
// (events/sec), and two checker shapes explore once with Config.Coverage
// nil and once attached (states/sec). Event and state counts are taken from
// the covered run; determinism (TestCoverageDoesNotPerturbExploration,
// seeded workloads) guarantees the bare run processed the same volume.
func CoverageBench(nodes, iters, workers int) ([]CoverageRow, error) {
	var rows []CoverageRow

	art := stache.MustCompile(true)
	tags := tempest.ResolveTags(art.Protocol)
	sup := stache.MustSupport(art.Protocol)
	for _, w := range sim.Table1Workloads(nodes, iters) {
		mk := func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(art.Protocol, nodes, w.Blocks, m, sup)
		}
		runSim := func(sink obs.Sink) (time.Duration, error) {
			w.Trace.Reset()
			start := time.Now()
			_, err := sim.Run(sim.Config{
				Nodes: nodes, Blocks: w.Blocks,
				Cost: tempest.DefaultCost, Tags: tags,
				MakeEngine: mk, Program: w.Trace, Obs: sink,
			})
			return time.Since(start), err
		}
		offWall, err := runSim(nil)
		if err != nil {
			return nil, fmt.Errorf("%s/off: %w", w.Name, err)
		}
		cov := obs.NewCoverage()
		col := obs.NewCollector(0)
		onWall, err := runSim(obs.NewTee(col, cov))
		if err != nil {
			return nil, fmt.Errorf("%s/on: %w", w.Name, err)
		}
		row := CoverageRow{Kind: "sim", Name: w.Name,
			Units: col.Total(), DispatchPairs: cov.DispatchPairs()}
		coverageRate(&row, offWall, onWall)
		rows = append(rows, row)
	}

	mcShapes := []struct {
		name string
		cfg  func() mc.Config
	}{
		{"Stache 2n/1b reorder=1", func() mc.Config {
			a := stache.MustCompile(true)
			return mc.Config{Proto: a.Protocol, Support: stache.MustSupport(a.Protocol),
				Nodes: 2, Blocks: 1, Reorder: 1,
				Events: stache.NewEvents(a.Protocol), CheckCoherence: true}
		}},
		{"Stache-FT 2n/1b drop=1", func() mc.Config {
			a := stache.MustCompileFT(true)
			return mc.Config{Proto: a.Protocol, Support: stache.MustFTSupport(a.Protocol, 2),
				Nodes: 2, Blocks: 1, Net: netmodel.Model{MaxDrops: 1},
				Events: stache.NewEvents(a.Protocol), CheckCoherence: true}
		}},
	}
	for _, shape := range mcShapes {
		runMC := func(cov *obs.Coverage) (*mc.Result, error) {
			cfg := shape.cfg()
			cfg.Workers = workers
			cfg.Coverage = cov
			return mc.Check(cfg)
		}
		off, err := runMC(nil)
		if err != nil {
			return nil, fmt.Errorf("%s/off: %w", shape.name, err)
		}
		cov := obs.NewCoverage()
		on, err := runMC(cov)
		if err != nil {
			return nil, fmt.Errorf("%s/on: %w", shape.name, err)
		}
		row := CoverageRow{Kind: "mc", Name: shape.name,
			Units: int64(on.States), DispatchPairs: cov.DispatchPairs()}
		coverageRate(&row, off.Elapsed, on.Elapsed)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatCoverage renders the coverage-cost series as a table.
func FormatCoverage(rows []CoverageRow) string {
	out := "Coverage accounting cost: same run, sink detached vs attached\n"
	out += fmt.Sprintf("%-4s %-24s %10s %12s %12s %9s %6s\n",
		"kind", "name", "units", "off/sec", "on/sec", "overhead", "pairs")
	for _, r := range rows {
		out += fmt.Sprintf("%-4s %-24s %10d %12.0f %12.0f %8.1f%% %6d\n",
			r.Kind, r.Name, r.Units, r.PerSecOff, r.PerSecOn, r.OverheadPct, r.DispatchPairs)
	}
	return out
}

package runtime_test

import (
	"fmt"
	"strings"
	"testing"

	"teapot/internal/core"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

// testMachine is a deterministic two-engine loopback substrate: messages go
// into a FIFO and are pumped explicitly by the test.
type testMachine struct {
	engines []*runtime.Engine
	queue   []delivery
	access  map[[2]int]sema.AccessMode
	woken   []int
	printed []string
	homes   func(id int) int
}

type delivery struct {
	dst int
	msg *runtime.Message
}

func newTestMachine() *testMachine {
	return &testMachine{
		access: make(map[[2]int]sema.AccessMode),
		homes:  func(id int) int { return 0 },
	}
}

func (m *testMachine) Send(from, dst int, msg *runtime.Message) {
	m.queue = append(m.queue, delivery{dst: dst, msg: msg})
}
func (m *testMachine) AccessChange(node, id int, mode sema.AccessMode) {
	m.access[[2]int{node, id}] = mode
}
func (m *testMachine) RecvData(node, id int, mode sema.AccessMode) {
	m.access[[2]int{node, id}] = mode
}
func (m *testMachine) WakeUp(node, id int) { m.woken = append(m.woken, node) }
func (m *testMachine) HomeNode(id int) int { return m.homes(id) }
func (m *testMachine) Print(node int, s string) {
	m.printed = append(m.printed, fmt.Sprintf("%d: %s", node, s))
}

// pump delivers queued messages until quiescence.
func (m *testMachine) pump(t testing.TB) {
	t.Helper()
	for steps := 0; len(m.queue) > 0; steps++ {
		if steps > 10000 {
			t.Fatal("message pump did not quiesce")
		}
		d := m.queue[0]
		m.queue = m.queue[1:]
		if err := m.engines[d.dst].Deliver(d.msg); err != nil {
			t.Fatalf("deliver: %v", err)
		}
	}
}

// nullSupport has no module routines.
type nullSupport struct{}

func (nullSupport) Call(ctx *runtime.Ctx, name string, args []*vm.Value) (vm.Value, error) {
	return vm.Value{}, fmt.Errorf("no support routine %q", name)
}
func (nullSupport) ModConst(ctx *runtime.Ctx, name string) vm.Value { return vm.Value{} }

// toyProtocol: a cache asks its home for a copy; the home replies with
// data; a PING that arrives while the cache is waiting is deferred and
// processed after the transition.
const toyProtocol = `
protocol Toy begin
  var pings : int;
  state C_Idle();
  state C_Valid();
  state C_Wait(C : CONT) transient;
  state H_Idle();
  state H_Shared();
  message RD_FAULT;
  message GET_REQ;
  message GET_RESP;
  message PING;
end;

state Toy.C_Idle() begin
  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_REQ, id);
    Suspend(L, C_Wait{L});
    WakeUp(id);
  end;
  message PING (id : ID; var info : INFO; src : NODE)
  begin
    pings := pings + 1;
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected %s in C_Idle", Msg_To_Str(MessageTag));
  end;
end;

state Toy.C_Valid() begin
  message PING (id : ID; var info : INFO; src : NODE)
  begin
    pings := pings + 1;
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected %s in C_Valid", Msg_To_Str(MessageTag));
  end;
end;

state Toy.C_Wait(C : CONT) begin
  message GET_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    SetState(info, C_Valid{});
    Resume(C);
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Toy.H_Idle() begin
  message GET_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(src, GET_RESP, id);
    SetState(info, H_Shared{});
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected %s in H_Idle", Msg_To_Str(MessageTag));
  end;
end;

state Toy.H_Shared() begin
  message GET_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(src, GET_RESP, id);
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected %s in H_Shared", Msg_To_Str(MessageTag));
  end;
end;
`

func buildToy(t testing.TB, optimize bool) (*testMachine, *runtime.Protocol) {
	t.Helper()
	art, err := core.Compile(core.Config{
		Name: "toy.tea", Source: toyProtocol,
		Optimize:   optimize,
		HomeStart:  "H_Idle",
		CacheStart: "C_Idle",
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := newTestMachine()
	for n := 0; n < 2; n++ {
		m.engines = append(m.engines, runtime.NewEngine(art.Protocol, n, 1, m, nullSupport{}))
	}
	return m, art.Protocol
}

func TestFetchRoundTrip(t *testing.T) {
	m, p := buildToy(t, true)
	cache := m.engines[1]
	if err := cache.InjectEvent(p.MsgIndex("RD_FAULT"), 0); err != nil {
		t.Fatalf("fault: %v", err)
	}
	// The cache should now be suspended waiting for the response.
	if got := cache.Blocks[0].StateName(p); got != "C_Wait" {
		t.Fatalf("cache state = %s, want C_Wait", got)
	}
	m.pump(t)
	if got := cache.Blocks[0].StateName(p); got != "C_Valid" {
		t.Errorf("cache state = %s, want C_Valid", got)
	}
	if got := m.engines[0].Blocks[0].StateName(p); got != "H_Shared" {
		t.Errorf("home state = %s, want H_Shared", got)
	}
	if m.access[[2]int{1, 0}] != sema.AccReadOnly {
		t.Errorf("cache access = %v, want ReadOnly", m.access[[2]int{1, 0}])
	}
	if len(m.woken) != 1 || m.woken[0] != 1 {
		t.Errorf("woken = %v, want [1]", m.woken)
	}
}

func TestDeferredQueueRetryAfterTransition(t *testing.T) {
	m, p := buildToy(t, true)
	cache := m.engines[1]
	if err := cache.InjectEvent(p.MsgIndex("RD_FAULT"), 0); err != nil {
		t.Fatalf("fault: %v", err)
	}
	// Deliver a PING while suspended: it must be deferred, then processed
	// after the GET_RESP transition.
	ping := &runtime.Message{Tag: p.MsgIndex("PING"), ID: 0, Src: 0}
	if err := cache.Deliver(ping); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if n := len(cache.Blocks[0].Deferred); n != 1 {
		t.Fatalf("deferred = %d, want 1", n)
	}
	if cache.QueueRecords != 1 {
		t.Errorf("queue records = %d, want 1", cache.QueueRecords)
	}
	m.pump(t)
	b := cache.Blocks[0]
	if n := len(b.Deferred); n != 0 {
		t.Errorf("deferred after pump = %d, want 0", n)
	}
	pingsSlot := slotOf(t, p, "pings")
	if got := b.Vars[pingsSlot].Int; got != 1 {
		t.Errorf("pings = %d, want 1", got)
	}
	if got := b.StateName(p); got != "C_Valid" {
		t.Errorf("state = %s", got)
	}
}

func slotOf(t *testing.T, p *runtime.Protocol, name string) int {
	t.Helper()
	for _, v := range p.IR.Sema.ProtVars {
		if v.Name == name {
			return v.Index
		}
	}
	t.Fatalf("no protocol variable %q", name)
	return -1
}

func TestUnexpectedMessageIsProtocolError(t *testing.T) {
	m, p := buildToy(t, true)
	err := m.engines[0].Deliver(&runtime.Message{Tag: p.MsgIndex("GET_RESP"), ID: 0, Src: 1, Data: true})
	if err == nil {
		t.Fatal("expected protocol error")
	}
	perr, ok := err.(*runtime.ProtocolError)
	if !ok {
		t.Fatalf("err = %T %v", err, err)
	}
	if perr.State != "H_Idle" || !strings.Contains(perr.Msg, "GET_RESP") {
		t.Errorf("perr = %+v", perr)
	}
}

func TestAllocationCountingOptVsUnopt(t *testing.T) {
	run := func(optimize bool) vm.Counters {
		m, p := buildToy(t, optimize)
		cache := m.engines[1]
		for i := 0; i < 5; i++ {
			// Re-arm: force cache back to idle between rounds by creating
			// fresh machines would be cleaner; instead fault once.
			if i == 0 {
				if err := cache.InjectEvent(p.MsgIndex("RD_FAULT"), 0); err != nil {
					t.Fatalf("fault: %v", err)
				}
				m.pump(t)
			}
		}
		return cache.Counters()
	}
	unopt := run(false)
	opt := run(true)
	if unopt.HeapConts == 0 {
		t.Errorf("unoptimized run allocated no heap continuations")
	}
	// The toy's single suspend site is unique and saves only live values
	// (id is live for WakeUp), so it is constant but not static; the
	// optimizer should avoid the heap allocation.
	if opt.HeapConts != 0 {
		t.Errorf("optimized run allocated %d heap continuations, want 0", opt.HeapConts)
	}
	if opt.StaticConts == 0 {
		t.Errorf("optimized run should count static continuations")
	}
	if opt.ConstResumes == 0 || unopt.ConstResumes != 0 {
		t.Errorf("const resumes: opt=%d unopt=%d", opt.ConstResumes, unopt.ConstResumes)
	}
}

func TestRecvDataWithoutDataIsError(t *testing.T) {
	m, p := buildToy(t, true)
	cache := m.engines[1]
	if err := cache.InjectEvent(p.MsgIndex("RD_FAULT"), 0); err != nil {
		t.Fatalf("fault: %v", err)
	}
	// Deliver GET_RESP *without* the data flag.
	err := cache.Deliver(&runtime.Message{Tag: p.MsgIndex("GET_RESP"), ID: 0, Src: 0, Data: false})
	if err == nil || !strings.Contains(err.Error(), "carries no data") {
		t.Fatalf("err = %v", err)
	}
}

func TestPerBlockIsolation(t *testing.T) {
	art := core.MustCompile(core.Config{
		Name: "toy.tea", Source: toyProtocol,
		Optimize: true, HomeStart: "H_Idle", CacheStart: "C_Idle",
	})
	m := newTestMachine()
	for n := 0; n < 2; n++ {
		m.engines = append(m.engines, runtime.NewEngine(art.Protocol, n, 3, m, nullSupport{}))
	}
	p := art.Protocol
	cache := m.engines[1]
	// Fault on block 2 only.
	if err := cache.InjectEvent(p.MsgIndex("RD_FAULT"), 2); err != nil {
		t.Fatalf("fault: %v", err)
	}
	m.pump(t)
	if got := cache.Blocks[2].StateName(p); got != "C_Valid" {
		t.Errorf("block 2 = %s", got)
	}
	for _, i := range []int{0, 1} {
		if got := cache.Blocks[i].StateName(p); got != "C_Idle" {
			t.Errorf("block %d = %s, want C_Idle", i, got)
		}
	}
}

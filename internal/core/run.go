package core

import (
	"fmt"
	"hash/fnv"

	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/obs"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// RunSpec describes one protocol run, shared by both backends: Check
// explores it exhaustively with the model checker, Simulate executes it on
// the discrete-event machine. The network fault model is a single value
// with one meaning everywhere — the checker explores its faults
// nondeterministically within the budgets, the simulator injects them
// stochastically from Seed — so "-net drop=1,dup=1" names the same network
// to every tool.
type RunSpec struct {
	Proto   *runtime.Protocol
	Support runtime.Support
	// Events generates the processor events (read/write faults) the
	// checker injects; ignored by Simulate, which drives the engine from
	// Program instead.
	Events mc.EventGen
	// Client attaches a scripted litmus workload to the checker (see
	// mc.Config.Client); ignored by Simulate, whose Program carries the
	// same script as tempest ops. Terminal is the checker's terminal-state
	// judge (requires Client).
	Client   *mc.Client
	Terminal func(*mc.World) string
	// InitMem gives blocks initial values in the simulator's data model
	// (litmus workloads); the checker takes them from Client.InitMem.
	InitMem []int64
	// Codec is only needed by protocols that snapshot abstract values.
	Codec runtime.AbstractCodec

	Nodes  int
	Blocks int
	HomeOf func(id int) int // default: id % Nodes

	// Net is the network fault model (netmodel.Parse understands the
	// "drop=1,dup=1,reorder=2" flag syntax).
	Net netmodel.Model

	// Checker knobs.
	Workers        int // BFS goroutines (0 = GOMAXPROCS)
	CheckCoherence bool
	MaxStates      int // 0 = unlimited
	// Symmetry selects certificate-gated symmetry reduction (see
	// mc.SymmetryMode; the zero value is off). Ignored by Simulate.
	Symmetry mc.SymmetryMode
	Progress func(mc.ProgressInfo)

	// Simulator knobs.
	Seed      uint64 // fault-injection RNG seed
	Program   tempest.Program
	Cost      tempest.CostModel // zero value: tempest.DefaultCost
	Obs       obs.Sink
	MaxEvents int64 // event budget for the run (0 = tempest's default)
}

// EffectiveSeed resolves the spec's RNG seed. A nonzero Seed is used
// verbatim; Seed 0 means "derive a stable seed from the run shape"
// (protocol name, machine size, network model), so "-seed 0" names the
// same deterministic run to every tool instead of conflating "unset" with
// the literal seed zero.
func (s RunSpec) EffectiveSeed() uint64 {
	if s.Seed != 0 {
		return s.Seed
	}
	h := fnv.New64a()
	name := ""
	if s.Proto != nil {
		name = s.Proto.Sema().ProtoName
	}
	fmt.Fprintf(h, "%s|%d|%d|%s", name, s.Nodes, s.Blocks, s.Net)
	seed := h.Sum64()
	if seed == 0 {
		seed = 1
	}
	return seed
}

// MCConfig lowers the spec to a checker configuration.
func (s RunSpec) MCConfig() mc.Config {
	return mc.Config{
		Proto:          s.Proto,
		Support:        s.Support,
		Codec:          s.Codec,
		Nodes:          s.Nodes,
		Blocks:         s.Blocks,
		HomeOf:         s.HomeOf,
		Net:            s.Net,
		Events:         s.Events,
		Client:         s.Client,
		Terminal:       s.Terminal,
		Workers:        s.Workers,
		CheckCoherence: s.CheckCoherence,
		MaxStates:      s.MaxStates,
		Symmetry:       s.Symmetry,
		Progress:       s.Progress,
	}
}

// SimConfig lowers the spec to a simulator configuration, building the
// engine from Proto and Support.
func (s RunSpec) SimConfig() sim.Config {
	if s.Cost == (tempest.CostModel{}) {
		s.Cost = tempest.DefaultCost
	}
	return sim.Config{
		Nodes:  s.Nodes,
		Blocks: s.Blocks,
		HomeOf: s.HomeOf,
		Cost:   s.Cost,
		Tags:   tempest.ResolveTags(s.Proto),
		MakeEngine: func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(s.Proto, s.Nodes, s.Blocks, m, s.Support)
		},
		Program:   s.Program,
		Obs:       s.Obs,
		Net:       s.Net,
		Seed:      s.EffectiveSeed(),
		InitMem:   s.InitMem,
		MaxEvents: s.MaxEvents,
	}
}

// Check model-checks the spec.
func Check(spec RunSpec) (*mc.Result, error) {
	return mc.Check(spec.MCConfig())
}

// Simulate executes the spec's workload on the discrete-event machine.
func Simulate(spec RunSpec) (*tempest.Stats, error) {
	return sim.Run(spec.SimConfig())
}

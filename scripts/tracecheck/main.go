// Tracecheck validates a Chrome trace_event JSON file against the subset
// the obs exporter emits (scripts/check.sh runs it on a teapot-sim -trace
// smoke run; it is also handy on traces mangled by hand or by filters).
//
// Usage:
//
//	tracecheck trace.json [trace2.json ...]
package main

import (
	"fmt"
	"os"

	"teapot/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [...]")
		os.Exit(1)
	}
	bad := false
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			bad = true
			continue
		}
		err = obs.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

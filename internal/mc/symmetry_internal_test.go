package mc

import (
	"testing"

	"teapot/internal/cont"
	"teapot/internal/lower"
	"teapot/internal/parser"
	"teapot/internal/runtime"
	"teapot/internal/sema"
)

// TestPermAlgebra: inverse and compose satisfy the group laws the trace
// de-permutation in buildViolation leans on.
func TestPermAlgebra(t *testing.T) {
	g := &perm{node: []int{1, 2, 0, 3}, blk: []int{1, 0}}
	h := &perm{node: []int{0, 3, 2, 1}, blk: []int{0, 1}}
	if !compose(g, g.inverse()).identity() || !compose(g.inverse(), g).identity() {
		t.Error("g∘g⁻¹ is not the identity")
	}
	hg := compose(h, g)
	// (h∘g)(n) = h(g(n)): node 0 -> g 1 -> h 3.
	if hg.node[0] != 3 {
		t.Errorf("compose order wrong: (h∘g)(0) = %d, want 3", hg.node[0])
	}
	inv := hg.inverse()
	if !compose(hg, inv).identity() {
		t.Error("(h∘g)⁻¹ is not an inverse")
	}
}

// TestEnumerateGroup pins the admissible group orders for the shapes the
// docs quote: permutations must map homes onto homes, so with one block
// every element fixes its home node and permutes only the others.
func TestEnumerateGroup(t *testing.T) {
	for _, tc := range []struct {
		nodes, blocks, want int
	}{
		{2, 1, 1}, // must fix node 0: identity only
		{3, 1, 2}, // swap nodes 1,2
		{4, 1, 6}, // S3 on nodes 1..3
		{3, 2, 2}, // swap blocks 0,1 together with homes 0,1
		{4, 2, 4}, // block swap × swap of non-home nodes 2,3
	} {
		cfg := &Config{Nodes: tc.nodes, Blocks: tc.blocks}
		cfg.HomeOf = func(id int) int { return id % cfg.Nodes }
		group := enumerateGroup(cfg)
		if len(group) != tc.want {
			t.Errorf("%dn/%db: group order %d, want %d", tc.nodes, tc.blocks, len(group), tc.want)
		}
		if !group[0].identity() {
			t.Errorf("%dn/%db: group[0] is not the identity", tc.nodes, tc.blocks)
		}
		for _, g := range group {
			for b := 0; b < tc.blocks; b++ {
				if g.node[cfg.HomeOf(b)] != cfg.HomeOf(g.blk[b]) {
					t.Fatalf("%dn/%db: inadmissible element %v", tc.nodes, tc.blocks, g)
				}
			}
		}
	}
}

// pingSource is a minimal symmetric protocol compiled inside this package
// (the bundled protocols import core, which imports mc): every non-home
// node pings the home once and the home answers.
const pingSource = `
protocol Ping begin
  state Cache_Inv();
  state Cache_Done();
  state Home();

  message PING_FAULT;
  message PING;
  message PONG;
end;

state Ping.Cache_Inv()
begin
  message PING_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PING, id);
    SetState(info, Cache_Done{});
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected msg in Cache_Inv");
  end;
end;

state Ping.Cache_Done()
begin
  message PONG (id : ID; var info : INFO; src : NODE)
  begin
    Drop();
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected msg in Cache_Done");
  end;
end;

state Ping.Home()
begin
  message PING (id : ID; var info : INFO; src : NODE)
  begin
    Send(src, PONG, id);
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("unexpected msg to Home");
  end;
end;
`

// compilePing mirrors core.Compile without importing core.
func compilePing(t *testing.T) *runtime.Protocol {
	t.Helper()
	prog, err := parser.Parse("ping.tea", pingSource)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	irp := lower.Lower(sp)
	opts := cont.Options{Liveness: true, ConstCont: true}
	cont.Transform(irp, opts)
	p := &runtime.Protocol{IR: irp, Opts: opts}
	p.HomeStart = p.StateIndex("Home")
	p.CacheStart = p.StateIndex("Cache_Inv")
	return p
}

type pingEvents struct{ tag int }

func (e *pingEvents) Enabled(w *World, node, block int) []Event {
	if node == w.cfg.HomeOf(block) || w.StateName(node, block) != "Cache_Inv" {
		return nil
	}
	return []Event{{Name: "PING_FAULT", Tag: e.tag}}
}

func (e *pingEvents) SymmetricEvents() {}

// TestCanonicalFixpoint walks the full reachable space of the ping
// protocol and checks, for every reachable world, the two properties the
// visited table relies on:
//
//   - orbit invariance: every permuted image of a world canonicalizes to
//     the same key, so an orbit can never occupy two arena slots;
//   - fixpoint: decoding a canonical key and re-canonicalizing returns the
//     key itself under the identity, so arena keys (and the shard
//     fingerprints derived from them) are stable representatives.
func TestCanonicalFixpoint(t *testing.T) {
	p := compilePing(t)
	cfg := Config{
		Proto:    p,
		Nodes:    3,
		Blocks:   1,
		Symmetry: SymmetryOn,
	}
	cfg.Events = &pingEvents{tag: p.MsgIndex("PING_FAULT")}
	cfg.normalize()
	red, note, err := buildReduction(&cfg)
	if err != nil {
		t.Fatalf("buildReduction: %v (note %q)", err, note)
	}
	if len(red.group) != 2 {
		t.Fatalf("group order %d, want 2", len(red.group))
	}

	seen := map[string]bool{}
	queue := []*World{newWorld(&cfg)}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		key, _, err := red.canonicalize(w)
		if err != nil {
			t.Fatal(err)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		if len(seen) > 500 {
			t.Fatal("ping state space exploded; protocol or reduction broken")
		}
		for gi, g := range red.group {
			k, _, err := red.canonicalize(red.permuteWorld(w, g))
			if err != nil {
				t.Fatal(err)
			}
			if k != key {
				t.Fatalf("orbit split: image under group[%d] canonicalizes to a different key", gi)
			}
		}
		cw, err := cfg.decode(key)
		if err != nil {
			t.Fatal(err)
		}
		k2, idx2, err := red.canonicalize(cw)
		if err != nil {
			t.Fatal(err)
		}
		if k2 != key || idx2 != 0 {
			t.Fatalf("canonical key is not a fixpoint (perm index %d)", idx2)
		}
		for _, a := range w.actions() {
			wa, err := w.clone()
			if err != nil {
				t.Fatal(err)
			}
			if err := wa.apply(a); err != nil {
				t.Fatalf("ping protocol error: %v", err)
			}
			queue = append(queue, wa)
		}
	}
	if len(seen) < 5 {
		t.Fatalf("only %d reachable orbits; event generator inert", len(seen))
	}
	t.Logf("%d canonical orbits, all fixpoints", len(seen))
}

package sim_test

import (
	"testing"

	"teapot/internal/core"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

// TestCompileModesBehaviorallyEquivalent: the optimizations must never
// change protocol behavior — identical traces produce identical wire
// activity and final cycle counts under a protocol-cost-free model for
// unoptimized, optimized, and no-liveness builds.
func TestCompileModesBehaviorallyEquivalent(t *testing.T) {
	build := func(optimize, noLiveness bool) *runtime.Protocol {
		art, err := core.Compile(core.Config{
			Name: "stache.tea", Source: stache.Source,
			Optimize: optimize, NoLiveness: noLiveness,
			HomeStart: "Home_Idle", CacheStart: "Cache_Inv",
		})
		if err != nil {
			t.Fatal(err)
		}
		return art.Protocol
	}
	modes := map[string]*runtime.Protocol{
		"unopt":      build(false, false),
		"opt":        build(true, false),
		"noliveness": build(false, true),
	}
	cost := tempest.CostModel{MemAccess: 1, NetLatency: 120}
	type result struct {
		cycles, faults, messages int64
	}
	var results = map[string]result{}
	for name, p := range modes {
		for _, w := range sim.Table1Workloads(8, 2) {
			w.Trace.Reset()
			stats, err := sim.Run(sim.Config{
				Nodes: 8, Blocks: w.Blocks, Cost: cost,
				Tags: tempest.ResolveTags(p),
				MakeEngine: func(m runtime.Machine) tempest.Engine {
					return tempest.NewTeapotEngine(p, 8, w.Blocks, m, stache.MustSupport(p))
				},
				Program: w.Trace,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, w.Name, err)
			}
			key := name + "/" + w.Name
			results[key] = result{stats.Cycles, stats.Faults, stats.Messages}
		}
	}
	for _, w := range []string{"gauss", "appbt", "shallow", "mp3d"} {
		base := results["unopt/"+w]
		for _, mode := range []string{"opt", "noliveness"} {
			got := results[mode+"/"+w]
			if got != base {
				t.Errorf("%s/%s = %+v, unopt = %+v (optimization changed behavior!)",
					mode, w, got, base)
			}
		}
	}
}

// Package lower translates checked Teapot handlers into the register IR.
//
// Suspend statements become fragment boundaries: an OpMakeCont capturing the
// (not-yet-computed) live set, the evaluation of the target subroutine
// state's arguments, and an OpSuspend terminating the fragment. The saved
// register sets are filled in afterwards by the continuation pass
// (internal/cont), which runs liveness analysis first.
package lower

import (
	"fmt"

	"teapot/internal/ast"
	"teapot/internal/ir"
	"teapot/internal/sema"
	"teapot/internal/token"
)

// Lower compiles every handler of a checked program. It panics on internal
// inconsistencies (sema guarantees well-formedness).
func Lower(sp *sema.Program) *ir.Program {
	p := &ir.Program{
		Sema:        sp,
		HandlerFunc: make([]map[int]*ir.Func, len(sp.States)),
		Defaults:    make([]*ir.Func, len(sp.States)),
	}
	for si, st := range sp.States {
		p.HandlerFunc[si] = make(map[int]*ir.Func)
		for _, h := range st.Handlers {
			f := lowerHandler(p, st, h)
			p.Funcs = append(p.Funcs, f)
			if h.Msg != nil {
				p.HandlerFunc[si][h.Msg.Index] = f
			} else {
				p.Defaults[si] = f
			}
		}
	}
	return p
}

type builder struct {
	p    *ir.Program
	sp   *sema.Program
	st   *sema.StateSym
	hs   *sema.HandlerSym
	f    *ir.Func
	next ir.Reg

	contName string // continuation bound by the innermost Suspend target
	contReg  ir.Reg
}

func lowerHandler(p *ir.Program, st *sema.StateSym, hs *sema.HandlerSym) *ir.Func {
	f := &ir.Func{
		Name:           st.Name + "." + hs.Name(),
		StateIndex:     st.Index,
		MsgIndex:       -1,
		NumStateParams: len(st.Params),
		NumParams:      len(hs.Params),
		NumLocals:      len(hs.Locals),
	}
	if hs.Msg != nil {
		f.MsgIndex = hs.Msg.Index
	}
	b := &builder{p: p, sp: p.Sema, st: st, hs: hs, f: f}
	b.next = ir.Reg(f.NumStateParams + f.NumParams + f.NumLocals)
	f.Frags = []ir.Fragment{{Start: 0, Site: -1}}
	b.stmts(hs.Body)
	// Always end with an explicit Return: a trailing Suspend leaves an
	// empty final fragment that needs a landing point, and a trailing
	// while-loop's exit branch targets the instruction after the body.
	b.emit(ir.Instr{Op: ir.OpReturn})
	f.NumRegs = int(b.next)
	return f
}

func (b *builder) emit(in ir.Instr) int {
	b.f.Code = append(b.f.Code, in)
	return len(b.f.Code) - 1
}

func (b *builder) newReg() ir.Reg {
	r := b.next
	b.next++
	return r
}

func (b *builder) here() int { return len(b.f.Code) }

func (b *builder) sym(id *ast.Ident) *sema.Symbol {
	s := b.sp.Uses[id]
	if s == nil {
		panic(fmt.Sprintf("lower: unresolved identifier %q at %s", id.Name, id.Pos()))
	}
	return s
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.IfStmt:
		cond := b.expr(s.Cond)
		br := b.emit(ir.Instr{Op: ir.OpBranch, A: cond, Pos: s.IfPos})
		b.f.Code[br].Idx = b.here()
		b.stmts(s.Then)
		if len(s.Else) == 0 {
			b.f.Code[br].Idx2 = b.here()
			return
		}
		jmp := b.emit(ir.Instr{Op: ir.OpJump})
		b.f.Code[br].Idx2 = b.here()
		b.stmts(s.Else)
		b.f.Code[jmp].Idx = b.here()
	case *ast.WhileStmt:
		head := b.here()
		cond := b.expr(s.Cond)
		br := b.emit(ir.Instr{Op: ir.OpBranch, A: cond, Pos: s.WhilePos})
		b.f.Code[br].Idx = b.here()
		b.stmts(s.Body)
		b.emit(ir.Instr{Op: ir.OpJump, Idx: head})
		b.f.Code[br].Idx2 = b.here()
	case *ast.CallStmt:
		b.call(s.Call, true)
	case *ast.AssignStmt:
		sym := b.sym(s.LHS)
		switch sym.Kind {
		case sema.SymLocal:
			val := b.expr(s.RHS)
			b.emit(ir.Instr{Op: ir.OpMove, Dst: b.f.LocalReg(sym.Index), A: val, Pos: s.Pos()})
		case sema.SymParam:
			val := b.expr(s.RHS)
			b.emit(ir.Instr{Op: ir.OpMove, Dst: b.f.ParamReg(sym.Index), A: val, Pos: s.Pos()})
		case sema.SymProtVar:
			val := b.expr(s.RHS)
			b.emit(ir.Instr{Op: ir.OpStoreVar, Idx: sym.Index, A: val, Pos: s.Pos()})
		default:
			panic("lower: bad assignment target kind")
		}
	case *ast.SuspendStmt:
		b.suspend(s)
	case *ast.ResumeStmt:
		c := b.expr(s.Cont)
		b.emit(ir.Instr{Op: ir.OpResume, A: c, Idx: -1, Pos: s.ResumePos})
	case *ast.ReturnStmt:
		b.emit(ir.Instr{Op: ir.OpReturn, Pos: s.ReturnPos})
	case *ast.PrintStmt:
		var args []ir.Reg
		for _, a := range s.Args {
			args = append(args, b.expr(a))
		}
		b.emit(ir.Instr{Op: ir.OpPrint, Dst: ir.NoReg, Args: args, Pos: s.PrintPos})
	default:
		panic(fmt.Sprintf("lower: unknown statement %T", s))
	}
}

func (b *builder) suspend(s *ast.SuspendStmt) {
	target := b.sp.StateByName(s.Target.Name.Name)
	fragIdx := len(b.f.Frags)
	site := &ir.SuspendSite{
		ID:          len(b.p.Sites),
		Func:        b.f,
		FragIdx:     fragIdx,
		TargetState: target.Index,
	}
	b.p.Sites = append(b.p.Sites, site)

	contReg := b.newReg()
	b.emit(ir.Instr{Op: ir.OpMakeCont, Dst: contReg, Idx: fragIdx, Pos: s.SuspendPos})

	// Bind the continuation name while evaluating the target's arguments.
	prevName, prevReg := b.contName, b.contReg
	b.contName, b.contReg = s.Cont.Name, contReg
	var args []ir.Reg
	for _, a := range s.Target.Args {
		args = append(args, b.expr(a))
	}
	b.contName, b.contReg = prevName, prevReg

	sv := b.newReg()
	b.emit(ir.Instr{Op: ir.OpMakeState, Dst: sv, Idx: target.Index, Args: args, Pos: s.Target.Pos()})
	b.emit(ir.Instr{Op: ir.OpSuspend, A: sv, Dst: ir.NoReg, Pos: s.SuspendPos})
	b.f.Frags = append(b.f.Frags, ir.Fragment{Start: b.here(), Site: site.ID})
}

func (b *builder) expr(e ast.Expr) ir.Reg {
	switch e := e.(type) {
	case *ast.IntLit:
		r := b.newReg()
		b.emit(ir.Instr{Op: ir.OpConst, Dst: r, Int: e.Value, Kind: ir.KInt, Pos: e.Pos()})
		return r
	case *ast.BoolLit:
		r := b.newReg()
		v := int64(0)
		if e.Value {
			v = 1
		}
		b.emit(ir.Instr{Op: ir.OpConst, Dst: r, Int: v, Kind: ir.KBool, Pos: e.Pos()})
		return r
	case *ast.StringLit:
		r := b.newReg()
		b.emit(ir.Instr{Op: ir.OpConstStr, Dst: r, Str: e.Value, Pos: e.Pos()})
		return r
	case *ast.Name:
		return b.name(e.Ident)
	case *ast.CallExpr:
		return b.call(e, false)
	case *ast.StateExpr:
		st := b.sp.StateByName(e.Name.Name)
		var args []ir.Reg
		for _, a := range e.Args {
			args = append(args, b.expr(a))
		}
		r := b.newReg()
		b.emit(ir.Instr{Op: ir.OpMakeState, Dst: r, Idx: st.Index, Args: args, Pos: e.Pos()})
		return r
	case *ast.BinExpr:
		x := b.expr(e.X)
		y := b.expr(e.Y)
		r := b.newReg()
		op := e.Op
		switch op {
		case token.KWAND:
			op = token.AND
		case token.KWOR:
			op = token.OR
		}
		b.emit(ir.Instr{Op: ir.OpBin, Dst: r, A: x, B: y, Tok: op, Pos: e.OpPos})
		return r
	case *ast.UnExpr:
		x := b.expr(e.X)
		r := b.newReg()
		op := e.Op
		if op == token.NOT {
			op = token.KWNOT
		}
		b.emit(ir.Instr{Op: ir.OpUn, Dst: r, A: x, Tok: op, Pos: e.OpPos})
		return r
	case *ast.ParenExpr:
		return b.expr(e.X)
	}
	panic(fmt.Sprintf("lower: unknown expression %T", e))
}

func (b *builder) name(id *ast.Ident) ir.Reg {
	sym := b.sym(id)
	switch sym.Kind {
	case sema.SymLocal:
		return b.f.LocalReg(sym.Index)
	case sema.SymParam:
		return b.f.ParamReg(sym.Index)
	case sema.SymStateParam:
		return b.f.StateParamReg(sym.Index)
	case sema.SymSuspendCont:
		if id.Name != b.contName {
			panic("lower: continuation name out of scope")
		}
		return b.contReg
	case sema.SymProtVar:
		r := b.newReg()
		b.emit(ir.Instr{Op: ir.OpLoadVar, Dst: r, Idx: sym.Index, Pos: id.Pos()})
		return r
	case sema.SymConst:
		r := b.newReg()
		cv := sym.Const
		if cv.Type.Same(sema.String) {
			b.emit(ir.Instr{Op: ir.OpConstStr, Dst: r, Str: cv.Str, Pos: id.Pos()})
			return r
		}
		kind := ir.KInt
		switch cv.Type.Kind {
		case sema.TBool:
			kind = ir.KBool
		case sema.TAccess:
			kind = ir.KAccess
		}
		b.emit(ir.Instr{Op: ir.OpConst, Dst: r, Int: cv.Int, Kind: kind, Pos: id.Pos()})
		return r
	case sema.SymModConst:
		r := b.newReg()
		b.emit(ir.Instr{Op: ir.OpModConst, Dst: r, Idx: sym.Index, Pos: id.Pos()})
		return r
	case sema.SymBuiltinVal:
		r := b.newReg()
		b.emit(ir.Instr{Op: ir.OpBuiltinVal, Dst: r, Idx: sym.Index, Pos: id.Pos()})
		return r
	case sema.SymMessage:
		r := b.newReg()
		b.emit(ir.Instr{Op: ir.OpConst, Dst: r, Int: int64(sym.Index), Kind: ir.KMsg, Pos: id.Pos()})
		return r
	case sema.SymState:
		// Bare state name as a value: a state constructor with no args.
		r := b.newReg()
		b.emit(ir.Instr{Op: ir.OpMakeState, Dst: r, Idx: sym.Index, Pos: id.Pos()})
		return r
	}
	panic(fmt.Sprintf("lower: unhandled symbol kind %d for %q", sym.Kind, id.Name))
}

// call lowers a routine application. Enqueue's arguments are not evaluated:
// the builtin re-queues the *current* message regardless of what the paper's
// convention passes.
func (b *builder) call(e *ast.CallExpr, asStmt bool) ir.Reg {
	fsym := b.sp.Funcs[e.Func.Name]
	ref := &ir.FuncRef{Name: fsym.Name, Builtin: fsym.Builtin, Sig: fsym.Sig}
	var args []ir.Reg
	type writeback struct {
		slot int
		reg  ir.Reg
	}
	var wbs []writeback
	if fsym.Builtin != sema.BEnqueue {
		for i, a := range e.Args {
			r := b.expr(a)
			args = append(args, r)
			// A protocol variable passed to a var parameter lives in the
			// block's info record, not a register: store the (possibly
			// mutated) value back after the call. Registers themselves are
			// passed by reference to the callee, and abstract types have
			// reference semantics, so only this case needs a writeback.
			if i < len(fsym.Sig.Params) && fsym.Sig.ByRef[i] {
				if n, ok := a.(*ast.Name); ok {
					if sym := b.sym(n.Ident); sym.Kind == sema.SymProtVar {
						wbs = append(wbs, writeback{slot: sym.Index, reg: r})
					}
				}
			}
		}
	}
	dst := ir.NoReg
	if fsym.Sig.Result.Kind != sema.TInvalid && !asStmt {
		dst = b.newReg()
	}
	b.emit(ir.Instr{Op: ir.OpCall, Dst: dst, Fn: ref, Args: args, Pos: e.Pos()})
	for _, wb := range wbs {
		b.emit(ir.Instr{Op: ir.OpStoreVar, Idx: wb.slot, A: wb.reg, Pos: e.Pos()})
	}
	return dst
}

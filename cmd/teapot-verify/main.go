// Teapot-verify model-checks a bundled protocol by exhaustive state-space
// exploration (§7 of the paper), reporting the number of states explored
// and, on a violation, the event trace leading to it.
//
// Usage:
//
//	teapot-verify -proto stache -nodes 2 -blocks 1 -net reorder=1
//	teapot-verify -proto stache -net drop=1       # found: lost-message stall
//	teapot-verify -proto stache-ft -net drop=1,dup=1
//	teapot-verify -proto stache-buggy             # finds the seeded deadlock
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"teapot/internal/cliflags"
	"teapot/internal/mc"
)

func main() {
	run := cliflags.AddRun(flag.CommandLine, "stache", 2, 1)
	var (
		maxState = flag.Int("max-states", 0, "abort after exploring this many states (0 = unlimited)")
		symmetry = flag.String("symmetry", "auto", "symmetry reduction: auto (reduce when the static certificate and support vouches allow) | off | on (fail unless reduction is possible)")
		progress = flag.String("progress", "auto", "live per-layer progress on stderr: auto (only when stderr is a terminal) | always | never")
		stats    = flag.Bool("stats", false, "print a final exploration stats block")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file after the run")

		// Deprecated aliases, kept one release: -protocol for -proto and
		// -reorder for -net reorder=N.
		dep = cliflags.AddDeprecated(flag.CommandLine)
	)
	flag.Parse()

	dep.Apply(run)
	// Historical default: with no network flags at all, verify under
	// "1 reordering max" (the paper's configuration).
	given := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { given[f.Name] = true })
	if !given["net"] && !given["reorder"] {
		run.Net.Model.Reorder = 1
	}

	spec, err := run.Spec()
	if err != nil {
		fmt.Fprintln(os.Stderr, "teapot-verify:", err)
		os.Exit(1)
	}
	spec.MaxStates = *maxState
	spec.Symmetry, err = mc.ParseSymmetryMode(*symmetry)
	if err != nil {
		fmt.Fprintln(os.Stderr, cliflags.BadFlag("teapot-verify", "symmetry", *symmetry, "auto, off, or on"))
		os.Exit(1)
	}

	switch *progress {
	case "always", "auto", "never":
	default:
		fmt.Fprintf(os.Stderr, "teapot-verify: -progress must be auto, always, or never (got %q)\n", *progress)
		os.Exit(1)
	}
	if *progress == "always" || (*progress == "auto" && stderrIsTerminal()) {
		pw := &mc.ProgressWriter{W: os.Stderr}
		spec.Progress = pw.Report
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
	}

	res, err := mc.Check(spec.MCConfig())
	if *cpuProf != "" {
		// Stopped explicitly: the violation path exits with a nonzero
		// status, which would skip a deferred stop.
		pprof.StopCPUProfile()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "teapot-verify:", err)
		os.Exit(1)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "teapot-verify:", err)
			os.Exit(1)
		}
		f.Close()
	}

	net := ""
	if s := spec.Net.String(); s != "" {
		net = fmt.Sprintf(", net %s", s)
	}
	sym := ""
	if res.SymmetryGroup > 1 {
		sym = fmt.Sprintf(", symmetry /%d", res.SymmetryGroup)
	}
	fmt.Printf("protocol %s: %d states, %d transitions, depth %d, %d workers%s%s, %s\n",
		*run.Proto, res.States, res.Transitions, res.MaxDepth, res.Workers, net, sym, res.Elapsed)
	if res.SymmetryNote != "" {
		fmt.Printf("  symmetry reduction off: %s\n", res.SymmetryNote)
	}
	if *stats {
		rate := 0.0
		if s := res.Elapsed.Seconds(); s > 0 {
			rate = float64(res.States) / s
		}
		dedup := 0.0
		if res.States > 0 {
			dedup = float64(res.Transitions) / float64(res.States)
		}
		fmt.Printf("  peak frontier:  %d states\n", res.PeakFrontier)
		fmt.Printf("  decodes:        %d (one per expanded state)\n", res.Decodes)
		fmt.Printf("  visited set:    %s\n", mc.FormatBytes(res.VisitedBytes))
		fmt.Printf("  rate:           %.0f states/s\n", rate)
		fmt.Printf("  dedup ratio:    %.2f transitions/state\n", dedup)
		fmt.Printf("  symmetry group: %d\n", res.SymmetryGroup)
	}
	if res.Violation == nil {
		fmt.Println("verified: no deadlock, no unexpected messages, coherence holds")
		return
	}
	fmt.Printf("VIOLATION %s\n", res.Violation)
	os.Exit(2)
}

// stderrIsTerminal reports whether stderr is attached to a character
// device. The -progress auto gate: live lines are for humans watching a
// terminal, not for logs captured by redirection or CI.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

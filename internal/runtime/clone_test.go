package runtime_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"teapot/internal/runtime"
	"teapot/internal/vm"
)

// cloneFixture randomizes an engine's protocol state (like the encode
// round-trip tests do) and returns it with its canonical encoding.
func cloneFixture(t *testing.T, seed int64) (*runtime.Engine, string) {
	t.Helper()
	e, p := encodeFixture(t)
	rng := rand.New(rand.NewSource(seed))
	for _, b := range e.Blocks {
		sv := randomValue(rng, e, 1)
		for sv.State() == nil {
			sv = vm.StateValue(&vm.StateVal{State: rng.Intn(len(p.IR.Sema.States))})
		}
		b.State = sv.State()
		for i := range b.Vars {
			b.Vars[i] = randomValue(rng, e, 1)
		}
		for i := 0; i < rng.Intn(3); i++ {
			b.Deferred = append(b.Deferred, &runtime.Message{
				Tag: rng.Intn(4), ID: b.ID, Src: rng.Intn(4),
				Payload: []vm.Value{randomValue(rng, e, 1)},
			})
		}
	}
	enc := &runtime.Encoder{}
	if err := e.EncodeState(enc, nil); err != nil {
		t.Fatal(err)
	}
	return e, string(enc.Bytes())
}

// TestClonePreservesCanonicalEncoding: for random protocol states, the
// clone's canonical encoding is identical to the original's — clone+encode
// agrees with the encode∘decode path the checker used before.
func TestClonePreservesCanonicalEncoding(t *testing.T) {
	f := func(seed int64) bool {
		e, key := cloneFixture(t, seed)
		c, err := e.Clone(newTestMachine(), nil)
		if err != nil {
			return false
		}
		enc := &runtime.Encoder{}
		if err := c.EncodeState(enc, nil); err != nil {
			return false
		}
		return string(enc.Bytes()) == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCloneIsolation: mutating the clone's variables, deferred queues, and
// state never disturbs the original's canonical encoding.
func TestCloneIsolation(t *testing.T) {
	e, key := cloneFixture(t, 7)
	c, err := e.Clone(newTestMachine(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range c.Blocks {
		b.State = &vm.StateVal{State: 0}
		for i := range b.Vars {
			b.Vars[i] = vm.IntVal(-999)
		}
		b.Deferred = append(b.Deferred, &runtime.Message{Tag: 0, ID: b.ID})
	}
	enc := &runtime.Encoder{}
	if err := e.EncodeState(enc, nil); err != nil {
		t.Fatal(err)
	}
	if string(enc.Bytes()) != key {
		t.Error("mutating the clone changed the original's encoding")
	}
}

// TestCloneRebindsInfoHandles: info handles inside variables, state args,
// and deferred payloads must refer to the clone's own blocks, exactly as
// DecodeValue rebinds them.
func TestCloneRebindsInfoHandles(t *testing.T) {
	e, _ := encodeFixture(t)
	b := e.Blocks[1]
	b.Vars[0] = vm.InfoVal(b)
	b.State = &vm.StateVal{State: b.State.State, Args: nil}
	b.Deferred = append(b.Deferred, &runtime.Message{
		Tag: 0, ID: b.ID, Payload: []vm.Value{vm.InfoVal(b)},
	})

	c, err := e.Clone(newTestMachine(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cb := c.Blocks[1]
	if cb.Vars[0].Ref != cb {
		t.Error("cloned var info handle still points at the original block")
	}
	if cb.Deferred[0].Payload[0].Ref != cb {
		t.Error("cloned deferred payload info handle not rebound")
	}
	if b.Vars[0].Ref != b {
		t.Error("original's info handle was disturbed")
	}
}

// TestCloneSharesImmutableStructure: values without block-bound leaves are
// shared, not copied — the cheapness the checker's clone-not-decode path
// relies on.
func TestCloneSharesImmutableStructure(t *testing.T) {
	e, _ := encodeFixture(t)
	b := e.Blocks[0]
	sv := &vm.StateVal{State: 1, Args: []vm.Value{vm.IntVal(3)}}
	b.State = sv
	msg := &runtime.Message{Tag: 1, ID: 0, Payload: []vm.Value{vm.IntVal(9)}}
	b.Deferred = append(b.Deferred, msg)

	c, err := e.Clone(newTestMachine(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Blocks[0].State != sv {
		t.Error("state value without info handles should be shared")
	}
	if c.Blocks[0].Deferred[0] != msg {
		t.Error("message without block-bound payload should be shared")
	}
}

// Package stache contains the Stache protocol written in Teapot (the
// paper's base protocol, §2/§4), its Go support module, a hand-written
// state-machine implementation used as the performance baseline for
// Table 1, the Compare&Swap extension of §3 (Figure 6), and a seeded-bug
// variant for the verification case study.
//
// Protocol overview (one state machine per block per node; home and cache
// sides are states of the same machine, as in the paper):
//
//	Cache side: Cache_Inv, Cache_RO, Cache_RW plus the transient states
//	Cache_Inv_To_RO, Cache_Inv_To_RW, Cache_RO_To_RW.
//	Home side: Home_Idle, Home_RS, Home_Excl plus the subroutine states
//	Home_AwaitPutData and Home_AwaitInvAcks (shared by four transitions —
//	the code-reuse benefit §3 describes).
//
// Races handled:
//   - upgrade vs. invalidate: a node waiting in Cache_RO_To_RW answers
//     PUT_NO_DATA_REQ and keeps waiting; the home then satisfies its
//     upgrade with a full GET_RW_RESP since the node is no longer a sharer;
//   - eviction vs. invalidate: invalidation acknowledgements are counted
//     per PUT_NO_DATA_REQ sent — every targeted node answers exactly once,
//     whatever state it is in when the request arrives (Cache_RO,
//     Cache_Inv after an eviction, or a transient refill state), and an
//     EVICT_RO_NOTIFY only updates the sharer set, never substitutes for
//     an acknowledgement;
//   - request passing eviction in a reordering network (the paper's
//     "seemingly gratuitous ReadRequest" scenario): a GET_RO_REQ from a
//     node that is still recorded as a sharer is queued until the
//     EVICT_RO_NOTIFY arrives and retried after that transition.
package stache

// Source is the Stache protocol in Teapot.
const Source = `
-- Stache: a simple S-COMA-style invalidation protocol (Reinhardt, Larus &
-- Wood), written in Teapot. Block data movement is abstracted by the
-- Tempest builtins SendData/RecvData; sharer bookkeeping lives in the
-- support module.

module StacheSupport begin
  procedure AddSharer(var info : INFO; n : NODE);
  procedure RemoveSharer(var info : INFO; n : NODE);
  procedure ClearSharers(var info : INFO);
  function IsSharer(info : INFO; n : NODE) : bool;
  function NumSharers(info : INFO) : int;
  -- Sends PUT_NO_DATA_REQ to every sharer except 'excl'; returns how many.
  function InvalidateSharers(var info : INFO; excl : NODE; id : ID) : int;
end;

protocol Stache begin
  var owner : NODE;     -- valid while the home side is in Home_Excl
  var sharers : int;    -- sharer bitmask, managed by the support module

  -- cache (non-home) side
  state Cache_Inv();
  state Cache_RO();
  state Cache_RW();
  state Cache_Inv_To_RO(C : CONT) transient;
  -- Poisoned fill: an invalidation overtook the grant we are waiting for
  -- (possible on a reordering network); the grant must be discarded.
  state Cache_Inv_To_RO_P(C : CONT) transient;
  state Cache_Inv_To_RW(C : CONT) transient;
  state Cache_RO_To_RW(C : CONT) transient;
  -- Acknowledged eviction handshake: the node gives up a clean copy and
  -- waits for the home to confirm before issuing new requests, so an
  -- eviction can never race with this node's own re-request.
  state Cache_RO_Evicting() transient;
  state Cache_Ev_To_RO(C : CONT) transient;
  state Cache_Ev_To_RW(C : CONT) transient;
  state Cache_P_Evicting(C : CONT) transient;

  -- home side
  state Home_Idle();
  state Home_RS();
  state Home_Excl();
  state Home_AwaitPutData(C : CONT) transient;
  state Home_AwaitInvAcks(C : CONT) transient;

  -- local protocol events (delivered by Tempest on access faults and
  -- cache management decisions)
  message RD_FAULT;
  message WR_FAULT;
  message WR_RO_FAULT;
  message EVICT;

  -- network messages
  message GET_RO_REQ;
  message GET_RO_RESP;
  message GET_RW_REQ;
  message GET_RW_RESP;
  message UPGRADE_REQ;
  message UPGRADE_ACK;
  message PUT_DATA_REQ;
  message PUT_DATA_RESP;
  message PUT_NO_DATA_REQ;
  message PUT_NO_DATA_RESP;
  message EVICT_RO_REQ;
  message EVICT_RO_ACK;
end;

----------------------------------------------------------------------
-- Cache side
----------------------------------------------------------------------

state Stache.Cache_Inv()
begin
  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RO_REQ, id);
    Suspend(L, Cache_Inv_To_RO{L});
    WakeUp(id);
  end;

  message WR_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RW_REQ, id);
    Suspend(L, Cache_Inv_To_RW{L});
    WakeUp(id);
  end;

  -- Invalidation that crossed our eviction notice: the home sent it while
  -- we were still recorded as a sharer and is counting on our answer.
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Cache_Inv", Msg_To_Str(MessageTag));
  end;
end;

state Stache.Cache_Inv_To_RO(C : CONT)
begin
  message GET_RO_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    SetState(info, Cache_RO{});
    Resume(C);
  end;

  -- Either a stale invalidation addressed to our previous (evicted)
  -- tenure, or — on a reordering network — an invalidation that overtook
  -- the grant we are waiting for. Answer it (the home counts on that),
  -- and poison the pending fill: if the incoming grant predates the
  -- invalidation we must not install it.
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
    SetState(info, Cache_Inv_To_RO_P{C});
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Stache.Cache_Inv_To_RO_P(C : CONT)
begin
  -- Discard the (possibly stale) grant, return the copy through the
  -- acknowledged handshake, and only then ask again.
  message GET_RO_RESP (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), EVICT_RO_REQ, id);
    SetState(info, Cache_P_Evicting{C});
  end;

  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Stache.Cache_P_Evicting(C : CONT)
begin
  message EVICT_RO_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RO_REQ, id);
    SetState(info, Cache_Inv_To_RO{C});
  end;

  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

-- Waiting for the home to confirm a voluntary eviction. The processor is
-- not stalled, so it may fault on the block again; those faults wait for
-- the acknowledgement and then re-issue the appropriate request.
state Stache.Cache_RO_Evicting()
begin
  message EVICT_RO_ACK (id : ID; var info : INFO; src : NODE)
  begin
    SetState(info, Cache_Inv{});
  end;

  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Suspend(L, Cache_Ev_To_RO{L});
    WakeUp(id);
  end;

  message WR_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Suspend(L, Cache_Ev_To_RW{L});
    WakeUp(id);
  end;

  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Stache.Cache_Ev_To_RO(C : CONT)
begin
  message EVICT_RO_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RO_REQ, id);
    SetState(info, Cache_Inv_To_RO{C});
  end;

  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Stache.Cache_Ev_To_RW(C : CONT)
begin
  message EVICT_RO_ACK (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), GET_RW_REQ, id);
    SetState(info, Cache_Inv_To_RW{C});
  end;

  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Stache.Cache_Inv_To_RW(C : CONT)
begin
  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadWrite);
    SetState(info, Cache_RW{});
    Resume(C);
  end;

  -- Invalidation aimed at our previous (evicted) tenure; answer it.
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Stache.Cache_RO()
begin
  message WR_RO_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), UPGRADE_REQ, id);
    Suspend(L, Cache_RO_To_RW{L});
    WakeUp(id);
  end;

  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
    SetState(info, Cache_Inv{});
    AccessChange(id, Blk_Invalidate);
  end;

  -- Voluntary eviction of a clean read-only copy (the paper's PutNoData),
  -- as an acknowledged handshake.
  message EVICT (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), EVICT_RO_REQ, id);
    SetState(info, Cache_RO_Evicting{});
    AccessChange(id, Blk_Invalidate);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Cache_RO", Msg_To_Str(MessageTag));
  end;
end;

state Stache.Cache_RO_To_RW(C : CONT)
begin
  message UPGRADE_ACK (id : ID; var info : INFO; src : NODE)
  begin
    SetState(info, Cache_RW{});
    AccessChange(id, Blk_ReadWrite);
    Resume(C);
  end;

  -- The home invalidated us before seeing our upgrade: acknowledge, lose
  -- the copy, and keep waiting — the home will answer the upgrade with a
  -- full GET_RW_RESP once it processes it (we are no longer a sharer).
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
    AccessChange(id, Blk_Invalidate);
  end;

  message GET_RW_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadWrite);
    SetState(info, Cache_RW{});
    Resume(C);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

state Stache.Cache_RW()
begin
  message PUT_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(HomeNode(id), PUT_DATA_RESP, id);
    SetState(info, Cache_Inv{});
    AccessChange(id, Blk_Invalidate);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Cache_RW", Msg_To_Str(MessageTag));
  end;
end;

----------------------------------------------------------------------
-- Home side
----------------------------------------------------------------------

state Stache.Home_Idle()
begin
  message GET_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(src, GET_RO_RESP, id);
    AddSharer(info, src);
    AccessChange(id, Blk_ReadOnly);
    SetState(info, Home_RS{});
  end;

  message GET_RW_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(src, GET_RW_RESP, id);
    owner := src;
    AccessChange(id, Blk_Invalidate);
    SetState(info, Home_Excl{});
  end;

  -- An upgrade from a node we no longer consider a sharer (its copy was
  -- lost to a race): grant a full writable copy.
  message UPGRADE_REQ (id : ID; var info : INFO; src : NODE)
  begin
    SendData(src, GET_RW_RESP, id);
    owner := src;
    AccessChange(id, Blk_Invalidate);
    SetState(info, Home_Excl{});
  end;

  -- Eviction handshake for a node we no longer track; acknowledge so the
  -- node can move on.
  message EVICT_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(src, EVICT_RO_ACK, id);
  end;

  -- Stale local faults, deferred during an intermediate state and retried
  -- here where the home already has full access: just unstall — the
  -- processor rechecks access and proceeds.
  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    WakeUp(id);
  end;

  message WR_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    WakeUp(id);
  end;

  message WR_RO_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    WakeUp(id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Home_Idle", Msg_To_Str(MessageTag));
  end;
end;

state Stache.Home_RS()
begin
  message GET_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    if (IsSharer(info, src)) then
      -- The request passed the node's eviction notice in the network
      -- (the paper's reordering scenario): hold it until the notice
      -- arrives and this state transitions.
      Enqueue(MessageTag, id, info, src);
    else
      SendData(src, GET_RO_RESP, id);
      AddSharer(info, src);
    endif;
  end;

  message UPGRADE_REQ (id : ID; var info : INFO; src : NODE)
  var pending : int;
  begin
    pending := InvalidateSharers(info, src, id);
    while (pending > 0) do
      Suspend(L, Home_AwaitInvAcks{L});
      pending := pending - 1;
    end;
    if (IsSharer(info, src)) then
      Send(src, UPGRADE_ACK, id);
    else
      SendData(src, GET_RW_RESP, id);
    endif;
    ClearSharers(info);
    owner := src;
    AccessChange(id, Blk_Invalidate);
    SetState(info, Home_Excl{});
  end;

  message GET_RW_REQ (id : ID; var info : INFO; src : NODE)
  var pending : int;
  begin
    if (IsSharer(info, src)) then
      -- Request passed the node's eviction notice; wait for the notice.
      Enqueue(MessageTag, id, info, src);
    else
      pending := InvalidateSharers(info, src, id);
      while (pending > 0) do
        Suspend(L, Home_AwaitInvAcks{L});
        pending := pending - 1;
      end;
      ClearSharers(info);
      SendData(src, GET_RW_RESP, id);
      owner := src;
      AccessChange(id, Blk_Invalidate);
      SetState(info, Home_Excl{});
    endif;
  end;

  -- The home processor itself wants to write a shared block.
  message WR_RO_FAULT (id : ID; var info : INFO; src : NODE)
  var pending : int;
  begin
    pending := InvalidateSharers(info, MyNode(), id);
    while (pending > 0) do
      Suspend(L, Home_AwaitInvAcks{L});
      pending := pending - 1;
    end;
    ClearSharers(info);
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_Idle{});
    WakeUp(id);
  end;

  -- A stale deferred write fault (raised while the block was remotely
  -- owned, retried after it came back shared): same as an upgrade.
  message WR_FAULT (id : ID; var info : INFO; src : NODE)
  var pending : int;
  begin
    pending := InvalidateSharers(info, MyNode(), id);
    while (pending > 0) do
      Suspend(L, Home_AwaitInvAcks{L});
      pending := pending - 1;
    end;
    ClearSharers(info);
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_Idle{});
    WakeUp(id);
  end;

  -- A stale deferred read fault: the home can already read a shared block.
  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    WakeUp(id);
  end;

  message EVICT_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    RemoveSharer(info, src);
    Send(src, EVICT_RO_ACK, id);
    if (NumSharers(info) = 0) then
      AccessChange(id, Blk_ReadWrite);
      SetState(info, Home_Idle{});
    else
      -- Self-transition so deferred requests from this node are retried.
      SetState(info, Home_RS{});
    endif;
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Home_RS", Msg_To_Str(MessageTag));
  end;
end;

state Stache.Home_Excl()
begin
  message GET_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(owner, PUT_DATA_REQ, id);
    Suspend(L, Home_AwaitPutData{L});
    SendData(src, GET_RO_RESP, id);
    AddSharer(info, src);
    AccessChange(id, Blk_ReadOnly);
    SetState(info, Home_RS{});
  end;

  message GET_RW_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(owner, PUT_DATA_REQ, id);
    Suspend(L, Home_AwaitPutData{L});
    SendData(src, GET_RW_RESP, id);
    owner := src;
    AccessChange(id, Blk_Invalidate);
    SetState(info, Home_Excl{});
  end;

  message UPGRADE_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(owner, PUT_DATA_REQ, id);
    Suspend(L, Home_AwaitPutData{L});
    SendData(src, GET_RW_RESP, id);
    owner := src;
    AccessChange(id, Blk_Invalidate);
    SetState(info, Home_Excl{});
  end;

  message RD_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(owner, PUT_DATA_REQ, id);
    Suspend(L, Home_AwaitPutData{L});
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_Idle{});
    WakeUp(id);
  end;

  message WR_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(owner, PUT_DATA_REQ, id);
    Suspend(L, Home_AwaitPutData{L});
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_Idle{});
    WakeUp(id);
  end;

  -- A stale deferred write-on-shared fault (the sharers were since
  -- invalidated and the block handed to a remote owner): recall it.
  message WR_RO_FAULT (id : ID; var info : INFO; src : NODE)
  begin
    Send(owner, PUT_DATA_REQ, id);
    Suspend(L, Home_AwaitPutData{L});
    AccessChange(id, Blk_ReadWrite);
    SetState(info, Home_Idle{});
    WakeUp(id);
  end;

  -- Eviction handshake left over from the previous read-shared epoch:
  -- the node is no longer a sharer; just acknowledge.
  message EVICT_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(src, EVICT_RO_ACK, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Error("invalid msg %s to Home_Excl", Msg_To_Str(MessageTag));
  end;
end;

-- Subroutine state shared by every transition that waits for the current
-- owner to give the block back (four call sites — the code reuse §3
-- highlights).
state Stache.Home_AwaitPutData(C : CONT)
begin
  message PUT_DATA_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RecvData(id, Blk_ReadOnly);
    Resume(C);
  end;

  -- Eviction handshake from an epoch that ended before we handed the
  -- block to the current owner; just acknowledge.
  message EVICT_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(src, EVICT_RO_ACK, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;

-- Subroutine state shared by every transition that collects one
-- invalidation acknowledgement. Acknowledgements are counted strictly per
-- PUT_NO_DATA_REQ sent; an eviction notice only updates the sharer set
-- (its sender will still answer the request from Cache_Inv).
state Stache.Home_AwaitInvAcks(C : CONT)
begin
  message PUT_NO_DATA_RESP (id : ID; var info : INFO; src : NODE)
  begin
    RemoveSharer(info, src);
    Resume(C);
  end;

  message EVICT_RO_REQ (id : ID; var info : INFO; src : NODE)
  begin
    RemoveSharer(info, src);
    Send(src, EVICT_RO_ACK, id);
  end;

  message DEFAULT (id : ID; var info : INFO; src : NODE)
  begin
    Enqueue(MessageTag, id, info, src);
  end;
end;
`

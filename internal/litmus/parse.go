package litmus

// The .lit grammar, line-oriented ('#' starts a comment, blank lines are
// ignored):
//
//	litmus mp                  # test name (first directive)
//	proto stache               # bundled protocol
//	nodes 2                    # optional; default = number of node scripts
//	blocks x y                 # block names; order = block index
//	net drop=1                 # optional netmodel syntax; "none"/"" = perfect
//	init x=1 y=2               # optional initial values (default 0)
//	must-fail forbidden:name   # optional negative-path marker
//
//	node 0:                    # script header; ops follow, one per line
//	  put x 1                  # store 1 to x (values 1..2^31-1)
//	  get y -> r0              # load y into register r0
//	  cas x 0 2 -> r1          # if x reads 0, store 2; observation -> r1
//
//	forbid stale: r0=1 & r1=0  # conditions over registers and blocks
//	allow fresh: r0=1
//	expect final: x=2
//
// Registers are declared at their observing op and must be unique across
// the whole test; condition clauses name registers or blocks.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// maxVal bounds store values: they must survive the 32-bit value lane of
// tempest's packed words, and 0 is reserved for "uninitialized".
const maxVal = 1<<31 - 1

// Parse parses one .lit file's contents. path is for diagnostics only.
func Parse(path string, data []byte) (*Test, error) {
	t := &Test{Path: path}
	var curNode = -1 // node script being filled, -1 = none
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	lineNo := 0
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%s:%d: %s", path, lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		key := fields[0]

		// Node script headers and bodies.
		if key == "node" {
			rest := strings.TrimSuffix(strings.Join(fields[1:], ""), ":")
			n, err := strconv.Atoi(rest)
			if err != nil || n < 0 {
				return nil, fail("bad node header %q (want e.g. \"node 0:\")", line)
			}
			for len(t.Progs) <= n {
				t.Progs = append(t.Progs, nil)
			}
			if t.Progs[n] != nil {
				return nil, fail("node %d scripted twice", n)
			}
			t.Progs[n] = []Op{}
			curNode = n
			continue
		}
		switch key {
		case "get", "put", "cas":
			if curNode < 0 {
				return nil, fail("%s outside a node script", key)
			}
			op, err := parseOp(t, fields)
			if err != nil {
				return nil, fail("%v", err)
			}
			t.Progs[curNode] = append(t.Progs[curNode], op)
			continue
		}

		// Directives end any open node script.
		curNode = -1
		switch key {
		case "litmus":
			if len(fields) != 2 {
				return nil, fail("want: litmus <name>")
			}
			t.Name = fields[1]
		case "proto":
			if len(fields) != 2 {
				return nil, fail("want: proto <protocol>")
			}
			t.Proto = fields[1]
		case "nodes":
			if len(fields) != 2 {
				return nil, fail("want: nodes <count>")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fail("bad node count %q", fields[1])
			}
			t.Nodes = n
		case "blocks":
			if len(fields) < 2 {
				return nil, fail("want: blocks <name>...")
			}
			t.Blocks = fields[1:]
		case "net":
			if len(fields) != 2 {
				return nil, fail("want: net <model>")
			}
			if fields[1] != "none" {
				t.Net = fields[1]
			}
		case "init":
			for _, f := range fields[1:] {
				name, val, err := splitAssign(f)
				if err != nil {
					return nil, fail("%v", err)
				}
				b := t.BlockIndex(name)
				if b < 0 {
					return nil, fail("init of unknown block %s", name)
				}
				if val < 1 || val > maxVal {
					return nil, fail("init %s=%d out of range 1..%d", name, val, maxVal)
				}
				for len(t.Init) < len(t.Blocks) {
					t.Init = append(t.Init, 0)
				}
				t.Init[b] = val
			}
		case "must-fail":
			if len(fields) != 2 {
				return nil, fail("want: must-fail <class>")
			}
			t.MustFail = fields[1]
		case "forbid", "allow", "expect":
			c, err := parseCond(t, key, strings.Join(fields[1:], " "))
			if err != nil {
				return nil, fail("%v", err)
			}
			t.Conds = append(t.Conds, c)
		default:
			return nil, fail("unknown directive %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.Nodes == 0 {
		t.Nodes = len(t.Progs)
	}
	if err := t.validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// parseOp parses one script operation line (already split into fields).
func parseOp(t *Test, fields []string) (Op, error) {
	bad := func() (Op, error) {
		return Op{}, fmt.Errorf("bad op %q (want \"get <blk> -> <reg>\", \"put <blk> <val>\", or \"cas <blk> <expect> <val> -> <reg>\")",
			strings.Join(fields, " "))
	}
	blockOf := func(name string) (int, error) {
		b := t.BlockIndex(name)
		if b < 0 {
			return 0, fmt.Errorf("unknown block %s (declare it on the blocks line)", name)
		}
		return b, nil
	}
	valOf := func(s string, min int64) (int64, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < min || v > maxVal {
			return 0, fmt.Errorf("value %q out of range %d..%d", s, min, maxVal)
		}
		return v, nil
	}
	switch fields[0] {
	case "get":
		if len(fields) != 4 || fields[2] != "->" {
			return bad()
		}
		b, err := blockOf(fields[1])
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: Get, Block: b, Reg: fields[3]}, nil
	case "put":
		if len(fields) != 3 {
			return bad()
		}
		b, err := blockOf(fields[1])
		if err != nil {
			return Op{}, err
		}
		v, err := valOf(fields[2], 1)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: Put, Block: b, Val: v}, nil
	case "cas":
		if len(fields) != 6 || fields[4] != "->" {
			return bad()
		}
		b, err := blockOf(fields[1])
		if err != nil {
			return Op{}, err
		}
		exp, err := valOf(fields[2], 0) // expecting 0 = "still uninitialized"
		if err != nil {
			return Op{}, err
		}
		v, err := valOf(fields[3], 1)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: CAS, Block: b, Expect: exp, Val: v, Reg: fields[5]}, nil
	}
	return bad()
}

// parseCond parses "name: a=1 & b=0" after a forbid/allow/expect keyword.
func parseCond(t *Test, sense, rest string) (Cond, error) {
	name, clauses, ok := strings.Cut(rest, ":")
	if !ok || strings.TrimSpace(name) == "" {
		return Cond{}, fmt.Errorf("want: %s <name>: <clause> & <clause>...", sense)
	}
	c := Cond{Name: strings.TrimSpace(name)}
	switch sense {
	case "forbid":
		c.Sense = Forbid
	case "allow":
		c.Sense = Allow
	case "expect":
		c.Sense = Expect
	}
	for _, part := range strings.Split(clauses, "&") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Cond{}, fmt.Errorf("empty clause in condition %s", c.Name)
		}
		ref, val, err := splitAssign(part)
		if err != nil {
			return Cond{}, err
		}
		cl := Clause{Val: val}
		if b := t.BlockIndex(ref); b >= 0 {
			cl.Block = b
		} else {
			cl.IsReg = true
			cl.Reg = ref
		}
		c.Clauses = append(c.Clauses, cl)
	}
	if len(c.Clauses) == 0 {
		return Cond{}, fmt.Errorf("condition %s has no clauses", c.Name)
	}
	return c, nil
}

// splitAssign parses "name=val".
func splitAssign(s string) (string, int64, error) {
	name, valStr, ok := strings.Cut(s, "=")
	name, valStr = strings.TrimSpace(name), strings.TrimSpace(valStr)
	if !ok || name == "" {
		return "", 0, fmt.Errorf("bad assignment %q (want name=value)", s)
	}
	v, err := strconv.ParseInt(valStr, 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value in %q", s)
	}
	return name, v, nil
}

// LoadFile parses one .lit file.
func LoadFile(path string) (*Test, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, data)
}

// LoadDir loads every .lit file directly inside dir (non-recursive, so a
// fail/ subdirectory of negative-path tests stays out of the default
// corpus), sorted by file name.
func LoadDir(dir string) ([]*Test, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.lit"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("litmus: no .lit files in %s", dir)
	}
	var tests []*Test
	names := map[string]string{}
	for _, p := range paths {
		t, err := LoadFile(p)
		if err != nil {
			return nil, err
		}
		if prev, dup := names[t.Name]; dup {
			return nil, fmt.Errorf("litmus: test %q declared in both %s and %s", t.Name, prev, p)
		}
		names[t.Name] = p
		tests = append(tests, t)
	}
	return tests, nil
}

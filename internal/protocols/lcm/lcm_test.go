package lcm_test

import (
	"testing"

	"teapot/internal/mc"
	"teapot/internal/protocols/lcm"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

// machine is an in-order loopback substrate (mirrors the stache test rig).
type machine struct {
	t       *testing.T
	engines []*runtime.Engine
	queue   []delivery
	access  map[[2]int]sema.AccessMode
}

type delivery struct {
	dst int
	msg *runtime.Message
}

func newMachine(t *testing.T, v lcm.Variant, nodes, blocks int) (*machine, *runtime.Protocol, *lcm.Support) {
	t.Helper()
	a := lcm.MustCompile(v, true)
	sup := lcm.MustSupport(a.Protocol, nodes)
	m := &machine{t: t, access: make(map[[2]int]sema.AccessMode)}
	for n := 0; n < nodes; n++ {
		m.engines = append(m.engines, runtime.NewEngine(a.Protocol, n, blocks, m, sup))
	}
	for b := 0; b < blocks; b++ {
		m.access[[2]int{0, b}] = sema.AccReadWrite
	}
	return m, a.Protocol, sup
}

func (m *machine) Send(from, dst int, msg *runtime.Message) {
	m.queue = append(m.queue, delivery{dst: dst, msg: msg})
}
func (m *machine) AccessChange(node, id int, mode sema.AccessMode) {
	m.access[[2]int{node, id}] = mode
}
func (m *machine) RecvData(node, id int, mode sema.AccessMode) {
	m.access[[2]int{node, id}] = mode
}
func (m *machine) WakeUp(node, id int)      {}
func (m *machine) HomeNode(id int) int      { return 0 }
func (m *machine) Print(node int, s string) {}

func (m *machine) pump() {
	m.t.Helper()
	for steps := 0; len(m.queue) > 0; steps++ {
		if steps > 100000 {
			m.t.Fatal("pump did not quiesce")
		}
		d := m.queue[0]
		m.queue = m.queue[1:]
		if err := m.engines[d.dst].Deliver(d.msg); err != nil {
			m.t.Fatalf("deliver: %v", err)
		}
	}
}

func (m *machine) event(node int, p *runtime.Protocol, name string, id int) {
	m.t.Helper()
	if err := m.engines[node].InjectEvent(p.MsgIndex(name), id); err != nil {
		m.t.Fatalf("event %s: %v", name, err)
	}
	m.pump()
}

func (m *machine) stateOf(p *runtime.Protocol, node, id int) string {
	return m.engines[node].Blocks[id].StateName(p)
}

// runPhase runs one full phase: nodes 1 and 2 enter, touch the block, exit.
func runPhase(t *testing.T, m *machine, p *runtime.Protocol) {
	for _, n := range []int{1, 2} {
		m.event(n, p, "BEGIN_LCM_EV", 0)
	}
	for _, n := range []int{1, 2} {
		m.event(n, p, "WR_FAULT", 0) // in-phase: served as GET_LCM
	}
	for _, n := range []int{1, 2} {
		m.event(n, p, "END_LCM_EV", 0)
	}
}

func TestBasePhaseLifecycle(t *testing.T) {
	m, p, sup := newMachine(t, lcm.Base, 3, 1)
	runPhase(t, m, p)
	if got := m.stateOf(p, 0, 0); got != "Home_Idle" {
		t.Errorf("home after phase = %s, want Home_Idle", got)
	}
	for _, n := range []int{1, 2} {
		if got := m.stateOf(p, n, 0); got != "Cache_Inv" {
			t.Errorf("node %d after phase = %s, want Cache_Inv", n, got)
		}
	}
	if sup.Merges != 2 {
		t.Errorf("merges = %d, want 2 (one per reconciled copy)", sup.Merges)
	}
	// Post-phase: a normal read works again.
	m.event(1, p, "RD_FAULT", 0)
	if got := m.stateOf(p, 1, 0); got != "Cache_RO" {
		t.Errorf("post-phase reader = %s", got)
	}
}

func TestConcurrentPrivateCopies(t *testing.T) {
	m, p, _ := newMachine(t, lcm.Base, 4, 1)
	for _, n := range []int{1, 2, 3} {
		m.event(n, p, "BEGIN_LCM_EV", 0)
	}
	for _, n := range []int{1, 2, 3} {
		m.event(n, p, "WR_FAULT", 0)
	}
	// All three hold writable private copies simultaneously — the
	// controlled inconsistency LCM is about. (Coherent protocols could
	// never allow this.)
	for _, n := range []int{1, 2, 3} {
		if got := m.stateOf(p, n, 0); got != "Cache_LCM_Dirty" {
			t.Errorf("node %d = %s, want Cache_LCM_Dirty", n, got)
		}
		if m.access[[2]int{n, 0}] != sema.AccReadWrite {
			t.Errorf("node %d access = %v", n, m.access[[2]int{n, 0}])
		}
	}
	if got := m.stateOf(p, 0, 0); got != "Home_LCM" {
		t.Errorf("home = %s, want Home_LCM", got)
	}
}

// TestUpdateVariantPushesCopies: after an LCM-Update phase, consumers get
// eager read-only copies, so their post-phase reads hit without faulting.
func TestUpdateVariantPushesCopies(t *testing.T) {
	base, pBase, _ := newMachine(t, lcm.Base, 3, 1)
	runPhase(t, base, pBase)
	upd, pUpd, _ := newMachine(t, lcm.Update, 3, 1)
	runPhase(t, upd, pUpd)

	// Base: consumers end Invalid. Update: consumers hold RO copies.
	for _, n := range []int{1, 2} {
		if got := base.stateOf(pBase, n, 0); got != "Cache_Inv" {
			t.Errorf("base node %d = %s", n, got)
		}
		if got := upd.stateOf(pUpd, n, 0); got != "Cache_RO" {
			t.Errorf("update node %d = %s, want Cache_RO (eager copy)", n, got)
		}
		if upd.access[[2]int{n, 0}] != sema.AccReadOnly {
			t.Errorf("update node %d access = %v", n, upd.access[[2]int{n, 0}])
		}
	}
	if got := upd.stateOf(pUpd, 0, 0); got != "Home_RS" {
		t.Errorf("update home = %s, want Home_RS (tracking the pushed copies)", got)
	}
}

// TestMCCForwarding: with MCC, the second phase request is served by the
// first copy-holder, not the home.
func TestMCCForwarding(t *testing.T) {
	m, p, _ := newMachine(t, lcm.MCC, 3, 1)
	for _, n := range []int{1, 2} {
		m.event(n, p, "BEGIN_LCM_EV", 0)
	}
	m.event(1, p, "WR_FAULT", 0) // node 1 becomes the holder
	// Track who serves node 2.
	var served []int
	old := m.engines[2]
	_ = old
	m.event(2, p, "WR_FAULT", 0)
	// Node 2 must have its copy; the FWD went through node 1.
	if got := m.stateOf(p, 2, 0); got != "Cache_LCM_Dirty" {
		t.Errorf("node 2 = %s", got)
	}
	// The holder variable at home should now be node 2 only if home
	// served directly; under forwarding it remains node 1's record until
	// a bounce. Either way both hold dirty copies.
	if got := m.stateOf(p, 1, 0); got != "Cache_LCM_Dirty" {
		t.Errorf("node 1 = %s", got)
	}
	_ = served
}

func TestFigure11Race(t *testing.T) {
	// The owner's reconciliation races another node's phase activity into
	// a pending home (Figure 11): exercised here via the runtime (the
	// model checker covers all interleavings).
	m, p, _ := newMachine(t, lcm.Base, 3, 1)
	// Node 1 becomes owner in normal mode.
	m.event(1, p, "WR_FAULT", 0)
	if got := m.stateOf(p, 0, 0); got != "Home_Excl" {
		t.Fatalf("home = %s", got)
	}
	// Node 1 enters the phase (PUT_ACCUM + BEGIN_LCM head for the home)
	// while node 2 concurrently read-faults (its GET_RO_REQ is the
	// figure's "two other messages" the BEGIN_LCM arrives after).
	if err := m.engines[1].InjectEvent(p.MsgIndex("BEGIN_LCM_EV"), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.engines[2].InjectEvent(p.MsgIndex("RD_FAULT"), 0); err != nil {
		t.Fatal(err)
	}
	// Deliver the PUT_ACCUM first: the home acknowledges and suspends.
	d := m.queue[0]
	m.queue = m.queue[1:]
	if err := m.engines[d.dst].Deliver(d.msg); err != nil {
		t.Fatal(err)
	}
	if got := m.stateOf(p, 0, 0); got != "Home_Await_BEGIN_LCM" {
		t.Fatalf("home = %s, want Home_Await_BEGIN_LCM (Figure 11)", got)
	}
	// Deliver node 2's GET_RO_REQ ahead of the BEGIN_LCM: it is queued.
	var reqAt int = -1
	for i, d := range m.queue {
		if d.msg.Tag == p.MsgIndex("GET_RO_REQ") {
			reqAt = i
		}
	}
	req := m.queue[reqAt]
	m.queue = append(m.queue[:reqAt], m.queue[reqAt+1:]...)
	if err := m.engines[req.dst].Deliver(req.msg); err != nil {
		t.Fatal(err)
	}
	if n := len(m.engines[0].Blocks[0].Deferred); n != 1 {
		t.Fatalf("deferred = %d, want 1", n)
	}
	m.pump() // BEGIN_LCM resumes; the deferred GET_RO_REQ is then served
	if got := m.stateOf(p, 2, 0); got != "Cache_RO" {
		t.Errorf("node 2 = %s, want Cache_RO (deferred request served)", got)
	}
}

func TestUpdateAndBothVerify(t *testing.T) {
	for _, v := range []lcm.Variant{lcm.Update, lcm.Both} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			a := lcm.MustCompile(v, true)
			res, err := mc.Check(mc.Config{
				Proto: a.Protocol, Support: lcm.MustSupport(a.Protocol, 2),
				Nodes: 2, Blocks: 1, Reorder: 0,
				Events: lcm.NewEvents(a.Protocol),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation after %d states:\n%s", res.States, res.Violation)
			}
			t.Logf("%s: states=%d", v, res.States)
		})
	}
}

var _ = vm.Value{}

// Teapot-sim runs one benchmark workload on the simulated Tempest machine
// under a chosen protocol engine and prints the run statistics.
//
// Usage:
//
//	teapot-sim -workload gauss -nodes 32 -engine opt
//	teapot-sim -workload stencil -engine hw      # hand-written LCM baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"teapot/internal/cliflags"
	"teapot/internal/core"
	"teapot/internal/manifest"
	"teapot/internal/obs"
	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

func main() {
	var (
		workload  = flag.String("workload", "gauss", "gauss | appbt | shallow | mp3d | adaptive | stencil | unstruct | prodcons")
		nodes     = flag.Int("nodes", 32, "number of nodes")
		iters     = flag.Int("iters", 4, "workload iterations")
		engine    = flag.String("engine", "opt", "hw (hand-written) | unopt | opt | ft (fault-tolerant Stache; the one to pair with -net)")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON file of the run (open in about:tracing or ui.perfetto.dev)")
		showStats = flag.Bool("stats", false, "print the observability event summary after the run")
		seed      = flag.Uint64("seed", 1, "fault-injection RNG seed (same -net and -seed: same run; 0 = derive a stable seed from the run shape, as in every other tool)")
		report    = cliflags.AddReport(flag.CommandLine)
		net       = cliflags.AddNet(flag.CommandLine)
	)
	flag.Parse()

	spec := sim.WorkloadSpec{Nodes: *nodes, Iters: *iters, Seed: 99}
	var w *sim.Workload
	isLCM := false
	switch *workload {
	case "gauss":
		w = sim.Gauss(spec)
	case "appbt":
		w = sim.Appbt(spec)
	case "shallow":
		w = sim.Shallow(spec)
	case "mp3d":
		spec.Iters *= 4
		w = sim.Mp3d(spec)
	case "prodcons":
		w = sim.ProdCons(spec)
	case "adaptive":
		w, isLCM = sim.Adaptive(spec), true
	case "stencil":
		w, isLCM = sim.Stencil(spec), true
	case "unstruct":
		w, isLCM = sim.Unstruct(spec), true
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}

	optimize := *engine != "unopt"
	var mk func(m runtime.Machine) tempest.Engine
	var tags tempest.EventTags
	var proto *runtime.Protocol
	if *engine == "ft" {
		if isLCM {
			fatal(fmt.Errorf("-engine ft is the fault-tolerant Stache; the LCM workloads have no fault-tolerant variant"))
		}
		p := stache.MustCompileFT(true).Protocol
		proto = p
		tags = tempest.ResolveTags(p)
		mk = func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(p, *nodes, w.Blocks, m, stache.MustFTSupport(p, *nodes))
		}
	} else if isLCM {
		p := lcm.MustCompile(lcm.Base, optimize).Protocol
		proto = p
		tags = tempest.ResolveTags(p)
		mk = func(m runtime.Machine) tempest.Engine {
			if *engine == "hw" {
				return lcm.NewHW(p, *nodes, w.Blocks, m)
			}
			return tempest.NewTeapotEngine(p, *nodes, w.Blocks, m, lcm.MustSupport(p, *nodes))
		}
	} else {
		p := stache.MustCompile(optimize).Protocol
		proto = p
		tags = tempest.ResolveTags(p)
		mk = func(m runtime.Machine) tempest.Engine {
			if *engine == "hw" {
				return stache.NewHW(p, *nodes, w.Blocks, m)
			}
			return tempest.NewTeapotEngine(p, *nodes, w.Blocks, m, stache.MustSupport(p))
		}
	}

	if *seed == 0 {
		*seed = core.RunSpec{Proto: proto, Nodes: *nodes, Blocks: w.Blocks, Net: net.Model}.EffectiveSeed()
	}

	var col *obs.Collector
	var cov *obs.Coverage
	if *traceOut != "" || *showStats || *report != "" {
		if *engine == "hw" {
			fatal(fmt.Errorf("-trace/-stats/-report need a Teapot engine (hand-written baselines emit no events); use -engine opt or unopt"))
		}
		col = obs.NewCollector(0)
	}
	if *report != "" {
		cov = obs.NewCoverage()
	}

	start := time.Now()
	stats, err := sim.Run(sim.Config{
		Nodes: *nodes, Blocks: w.Blocks,
		Cost: tempest.DefaultCost, Tags: tags,
		MakeEngine: mk, Program: w.Trace,
		Obs: runSinks(col, cov),
		Net: net.Model, Seed: *seed,
	})
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}

	if *report != "" {
		protoName := "stache"
		switch {
		case *engine == "ft":
			protoName = "stache-ft"
		case isLCM:
			protoName = "lcm"
		}
		ss := &manifest.SimStats{
			Cycles: stats.Cycles, Events: col.Total(),
			ElapsedSec: elapsed.Seconds(),
			Accesses:   stats.Accesses, Faults: stats.Faults,
			Messages: stats.Messages, Drops: stats.Drops,
			Dups: stats.Dups, Delays: stats.Delays, Timeouts: stats.Timeouts,
		}
		if s := elapsed.Seconds(); s > 0 {
			ss.EventsPerSec = float64(col.Total()) / s
		}
		man := &manifest.Manifest{
			ManifestVersion: manifest.Version,
			Tool:            "teapot-sim",
			Protocol:        protoName,
			Nodes:           *nodes,
			Blocks:          w.Blocks,
			Net:             net.Model.String(),
			Seed:            *seed,
			Coverage:        cov.Report(runtime.ObsNames(proto)),
			Obs: &manifest.ObsSummary{
				Events: col.Total(), ByKind: col.KindCounts(),
				MaxQueueDepth: col.MaxQueueDepth(),
			},
			Sim: ss,
		}
		if err := manifest.Write(*report, man); err != nil {
			fatal(err)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, col.Events(), runtime.ObsNames(proto)); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "teapot-sim: wrote %d events to %s\n", len(col.Events()), *traceOut)
	}
	fmt.Printf("workload %s (%d nodes, %d blocks, engine %s)\n", w.Name, *nodes, w.Blocks, *engine)
	fmt.Printf("  execution time: %d cycles\n", stats.Cycles)
	fmt.Printf("  accesses: %d   faults: %d   messages: %d\n", stats.Accesses, stats.Faults, stats.Messages)
	if net.Model.Active() {
		fmt.Printf("  network (%s, seed %d): %d dropped, %d duplicated, %d delayed; %d timeouts fired\n",
			net.Model, *seed, stats.Drops, stats.Dups, stats.Delays, stats.Timeouts)
	}
	fmt.Printf("  fault time: %d cycles (%.0f%% of node-cycles)\n", stats.FaultTime,
		100*float64(stats.FaultTime)/float64(stats.Cycles*int64(*nodes)))
	fmt.Printf("  protocol: %d handlers, %d statements, %d cycles\n",
		stats.Protocol.Handlers, stats.Protocol.Instrs, stats.ProtoTime)
	fmt.Printf("  continuations: %d heap, %d static; queue records: %d\n",
		stats.Protocol.HeapConts, stats.Protocol.StaticConts, stats.Protocol.QueueRecords)
	if *showStats {
		fmt.Print(col.Summary(runtime.ObsNames(proto)))
	}
}

// runSinks tees the optional collector and coverage sinks, avoiding the
// classic non-nil interface holding a nil pointer: sim.Run checks Obs
// against nil.
func runSinks(c *obs.Collector, cov *obs.Coverage) obs.Sink {
	var sinks []obs.Sink
	if c != nil {
		sinks = append(sinks, c)
	}
	if cov != nil {
		sinks = append(sinks, cov)
	}
	if t := obs.NewTee(sinks...); t != nil {
		return t
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "teapot-sim:", err)
	os.Exit(1)
}

package stache

import (
	"strings"

	"teapot/internal/mc"
	"teapot/internal/runtime"
)

// Events is the nondeterministic event generator for Stache verification:
// any non-stalled processor may read, write, or (on a clean remote copy)
// evict any block — the paper's "each node should process any stream of
// loads and stores to any shared addresses" (§7, ~50 lines of Murphi for
// Stache).
type Events struct {
	rd, wr, wrro, evict int
	// Evictions can be disabled to shrink the state space.
	WithEvictions bool
}

// NewEvents builds the generator for a compiled Stache-family protocol.
func NewEvents(p *runtime.Protocol) *Events {
	return &Events{
		rd:            p.MsgIndex("RD_FAULT"),
		wr:            p.MsgIndex("WR_FAULT"),
		wrro:          p.MsgIndex("WR_RO_FAULT"),
		evict:         p.MsgIndex("EVICT"),
		WithEvictions: true,
	}
}

// Enabled implements mc.EventGen.
func (g *Events) Enabled(w *mc.World, node, block int) []mc.Event {
	if w.Stalled(node) >= 0 {
		return nil // single-issue processor is blocked on a fault
	}
	switch w.StateName(node, block) {
	case "Cache_Inv":
		return []mc.Event{
			{Name: "RD_FAULT", Tag: g.rd, Stalls: true},
			{Name: "WR_FAULT", Tag: g.wr, Stalls: true},
		}
	case "Cache_RO":
		evs := []mc.Event{{Name: "WR_RO_FAULT", Tag: g.wrro, Stalls: true}}
		if g.WithEvictions {
			evs = append(evs, mc.Event{Name: "EVICT", Tag: g.evict})
		}
		return evs
	case "Cache_RO_Evicting":
		// The eviction handshake does not stall the processor, which may
		// fault on the (now inaccessible) block before the ack arrives.
		return []mc.Event{
			{Name: "RD_FAULT", Tag: g.rd, Stalls: true},
			{Name: "WR_FAULT", Tag: g.wr, Stalls: true},
		}
	case "Home_RS":
		// The home processor writing a shared block.
		return []mc.Event{{Name: "WR_RO_FAULT", Tag: g.wrro, Stalls: true}}
	case "Home_Excl":
		return []mc.Event{
			{Name: "RD_FAULT", Tag: g.rd, Stalls: true},
			{Name: "WR_FAULT", Tag: g.wr, Stalls: true},
		}
	}
	return nil
}

// buggyHandler is the race handler whose removal reintroduces a deadlock
// of the kind §7 reports Murphi finding in the heavily-used hand-written
// Stache ("a particular interleaving of messages in the network"): if a
// node waiting for an upgrade merely queues the home's invalidation, the
// home waits forever for the acknowledgement while the node waits forever
// for the upgrade response.
const buggyHandler = `  -- The home invalidated us before seeing our upgrade: acknowledge, lose
  -- the copy, and keep waiting — the home will answer the upgrade with a
  -- full GET_RW_RESP once it processes it (we are no longer a sharer).
  message PUT_NO_DATA_REQ (id : ID; var info : INFO; src : NODE)
  begin
    Send(HomeNode(id), PUT_NO_DATA_RESP, id);
    AccessChange(id, Blk_Invalidate);
  end;
`

// BuggySource is Stache with the upgrade/invalidate race handler removed;
// the model checker finds the resulting deadlock (see the verification
// example and mc tests).
var BuggySource = func() string {
	out := strings.Replace(Source, buggyHandler, "", 1)
	if out == Source {
		panic("stache: buggy handler marker not found")
	}
	return out
}()

// CompileBuggy compiles the seeded-bug variant.
func CompileBuggy() (*runtime.Protocol, error) {
	a, err := compileSource("stache-buggy.tea", BuggySource, true)
	if err != nil {
		return nil, err
	}
	return a.Protocol, nil
}

// SymmetricEvents implements mc.EquivariantEvents: enablement depends only
// on state names, stall status, and home-ness — all permutation-covariant.
func (e *Events) SymmetricEvents() {}

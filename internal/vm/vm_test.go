package vm_test

import (
	"strings"
	"testing"
	"testing/quick"

	"teapot/internal/cont"
	"teapot/internal/ir"
	"teapot/internal/lower"
	"teapot/internal/parser"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

// fakeHost records effects; every builtin is observable.
type fakeHost struct {
	vars    map[int]vm.Value
	sent    []string
	states  []int
	printed []string
	errors  []string
	woken   []int
	enq     int
	tag     int
	src     int
	calls   []string
	callFn  func(name string, args []*vm.Value) (vm.Value, error)
}

func newFakeHost() *fakeHost {
	return &fakeHost{vars: map[int]vm.Value{}, tag: 0, src: 3}
}

func (h *fakeHost) LoadVar(slot int) vm.Value     { return h.vars[slot] }
func (h *fakeHost) StoreVar(slot int, v vm.Value) { h.vars[slot] = v }
func (h *fakeHost) ModConst(slot int) vm.Value    { return vm.IntVal(int64(100 + slot)) }
func (h *fakeHost) MessageTag() vm.Value          { return vm.MsgVal(h.tag) }
func (h *fakeHost) MessageSrc() vm.Value          { return vm.NodeVal(h.src) }
func (h *fakeHost) Send(data bool, dst, tag, id vm.Value, payload []vm.Value) error {
	h.sent = append(h.sent, dst.String()+"/"+tag.String())
	return nil
}
func (h *fakeHost) SetState(sv *vm.StateVal) error                    { h.states = append(h.states, sv.State); return nil }
func (h *fakeHost) Enqueue() error                                    { h.enq++; return nil }
func (h *fakeHost) Nack() error                                       { return nil }
func (h *fakeHost) Drop() error                                       { return nil }
func (h *fakeHost) WakeUp(id vm.Value) error                          { h.woken = append(h.woken, int(id.Int)); return nil }
func (h *fakeHost) AccessChange(id vm.Value, m sema.AccessMode) error { return nil }
func (h *fakeHost) RecvData(id vm.Value, m sema.AccessMode) error     { return nil }
func (h *fakeHost) MyNode() vm.Value                                  { return vm.NodeVal(7) }
func (h *fakeHost) HomeNode(id vm.Value) vm.Value                     { return vm.NodeVal(0) }
func (h *fakeHost) BlockID() vm.Value                                 { return vm.IDVal(0) }
func (h *fakeHost) BlockInfo() vm.Value                               { return vm.InfoVal(h) }
func (h *fakeHost) CallSupport(name string, args []*vm.Value) (vm.Value, error) {
	h.calls = append(h.calls, name)
	if h.callFn != nil {
		return h.callFn(name, args)
	}
	return vm.IntVal(42), nil
}
func (h *fakeHost) ProtocolError(msg string) error {
	h.errors = append(h.errors, msg)
	return protoErr(msg)
}
func (h *fakeHost) Print(s string) { h.printed = append(h.printed, s) }

type protoErr string

func (e protoErr) Error() string { return string(e) }

// compileHandler builds a one-handler protocol around body and returns the
// compiled handler.
func compileHandler(t *testing.T, decls, body string) (*ir.Program, *ir.Func) {
	t.Helper()
	src := `
module M begin
  type KNOB;
  const Magic : KNOB;
  function Query(x : int) : int;
  procedure Act(x : int);
end;
protocol P begin
  var n : int;
  var flag : bool;
  state S();
  state W(C : CONT) transient;
  message GO;
  message ACK;
` + decls + `
end;
state P.S() begin
  message GO (id : ID; var info : INFO; src : NODE)
  var x, y : int; b : bool;
  begin
` + body + `
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
state P.W(C : CONT) begin
  message ACK (id : ID; var info : INFO; src : NODE) begin Resume(C); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
`
	prog, err := parser.Parse("t.tea", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p := lower.Lower(sp)
	cont.Transform(p, cont.Optimized)
	for _, f := range p.Funcs {
		if f.Name == "S.GO" {
			return p, f
		}
	}
	t.Fatal("S.GO not found")
	return nil, nil
}

func runGo(t *testing.T, p *ir.Program, f *ir.Func, h vm.Host) *vm.Exec {
	t.Helper()
	x := &vm.Exec{Prog: p, ConstCont: true}
	params := []vm.Value{vm.IDVal(0), vm.InfoVal(nil), vm.NodeVal(3)}
	if err := x.RunHandler(h, f, nil, params); err != nil {
		t.Fatalf("run: %v", err)
	}
	return x
}

func TestArithmeticAndVars(t *testing.T) {
	h := newFakeHost()
	p, f := compileHandler(t, "", `
    x := 6;
    y := x * 7 - 2;
    n := y / 4 + y % 5;
    flag := n >= 10 and not (n = 11);
  `)
	runGo(t, p, f, h)
	// y = 40; n = 10 + 0 = 10; flag = (10>=10) && !(10==11) = true.
	if got := h.vars[0].Int; got != 10 {
		t.Errorf("n = %d, want 10", got)
	}
	if !h.vars[1].Bool() {
		t.Errorf("flag = %v, want true", h.vars[1])
	}
}

func TestControlFlow(t *testing.T) {
	h := newFakeHost()
	p, f := compileHandler(t, "", `
    x := 0;
    y := 0;
    while (x < 5) do
      if (x % 2 = 0) then
        y := y + 10;
      else
        y := y + 1;
      endif;
      x := x + 1;
    end;
    n := y;
  `)
	runGo(t, p, f, h)
	if got := h.vars[0].Int; got != 32 {
		t.Errorf("n = %d, want 32", got)
	}
}

func TestDivisionByZeroIsProtocolError(t *testing.T) {
	h := newFakeHost()
	p, f := compileHandler(t, "", `
    x := 0;
    y := 3 / x;
  `)
	x := &vm.Exec{Prog: p}
	err := x.RunHandler(h, f, nil, []vm.Value{vm.IDVal(0), vm.InfoVal(nil), vm.NodeVal(3)})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunawayLoopGuard(t *testing.T) {
	h := newFakeHost()
	p, f := compileHandler(t, "", `
    flag := true;
    while (flag) do
      x := x + 1;
    end;
  `)
	x := &vm.Exec{Prog: p, MaxSteps: 1000}
	err := x.RunHandler(h, f, nil, []vm.Value{vm.IDVal(0), vm.InfoVal(nil), vm.NodeVal(3)})
	if err == nil || !strings.Contains(err.Error(), "runaway") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuiltinsReachHost(t *testing.T) {
	h := newFakeHost()
	p, f := compileHandler(t, "", `
    Send(src, ACK, id);
    SendData(MyNode(), GO, id);
    print(Msg_To_Str(MessageTag), MessageSrc);
    WakeUp(id);
    SetState(info, S{});
  `)
	runGo(t, p, f, h)
	if len(h.sent) != 2 {
		t.Fatalf("sent = %v", h.sent)
	}
	if h.sent[0] != "node3/msg1" || h.sent[1] != "node7/msg0" {
		t.Errorf("sent = %v", h.sent)
	}
	if len(h.printed) != 1 || h.printed[0] != "GO node3" {
		t.Errorf("printed = %v", h.printed)
	}
	if len(h.woken) != 1 || h.woken[0] != 0 {
		t.Errorf("woken = %v", h.woken)
	}
	if len(h.states) != 1 {
		t.Errorf("states = %v", h.states)
	}
}

func TestSupportCallResultAndModConst(t *testing.T) {
	h := newFakeHost()
	h.callFn = func(name string, args []*vm.Value) (vm.Value, error) {
		if name == "Query" {
			return vm.IntVal(args[0].Int * 2), nil
		}
		// Mutate the by-reference argument.
		*args[0] = vm.IntVal(999)
		return vm.Value{}, nil
	}
	p, f := compileHandler(t, "", `
    x := Query(21);
    n := x;
    Act(x);
  `)
	runGo(t, p, f, h)
	if got := h.vars[0].Int; got != 42 {
		t.Errorf("n = %d, want 42", got)
	}
	if len(h.calls) != 2 {
		t.Errorf("calls = %v", h.calls)
	}
}

func TestErrorBuiltinFormatting(t *testing.T) {
	h := newFakeHost()
	p, f := compileHandler(t, "", `
    Error("bad %s here", Msg_To_Str(MessageTag));
  `)
	x := &vm.Exec{Prog: p}
	err := x.RunHandler(h, f, nil, []vm.Value{vm.IDVal(0), vm.InfoVal(nil), vm.NodeVal(3)})
	if err == nil || !strings.Contains(err.Error(), "bad GO here") {
		t.Fatalf("err = %v", err)
	}
}

func TestCountersAccumulate(t *testing.T) {
	h := newFakeHost()
	p, f := compileHandler(t, "", `
    x := 1 + 2;
    Act(x);
  `)
	x := runGo(t, p, f, h)
	c := x.Counters
	if c.Handlers != 1 || c.Instrs == 0 || c.Calls != 1 {
		t.Errorf("counters = %+v", c)
	}
	var sum vm.Counters
	sum.Add(c)
	sum.Add(c)
	if sum.Instrs != 2*c.Instrs || sum.Handlers != 2 {
		t.Errorf("Add broken: %+v", sum)
	}
}

func TestValueEquality(t *testing.T) {
	cases := []struct {
		a, b vm.Value
		eq   bool
	}{
		{vm.IntVal(3), vm.IntVal(3), true},
		{vm.IntVal(3), vm.IntVal(4), false},
		{vm.IntVal(3), vm.NodeVal(3), false}, // kinds differ
		{vm.BoolVal(true), vm.BoolVal(true), true},
		{vm.StringVal("a"), vm.StringVal("a"), true},
		{vm.StringVal("a"), vm.StringVal("b"), false},
		{vm.StateValue(&vm.StateVal{State: 1}), vm.StateValue(&vm.StateVal{State: 1}), true},
		{vm.StateValue(&vm.StateVal{State: 1}), vm.StateValue(&vm.StateVal{State: 2}), false},
		{
			vm.StateValue(&vm.StateVal{State: 1, Args: []vm.Value{vm.IntVal(5)}}),
			vm.StateValue(&vm.StateVal{State: 1, Args: []vm.Value{vm.IntVal(5)}}),
			true,
		},
		{
			vm.StateValue(&vm.StateVal{State: 1, Args: []vm.Value{vm.IntVal(5)}}),
			vm.StateValue(&vm.StateVal{State: 1, Args: []vm.Value{vm.IntVal(6)}}),
			false,
		},
	}
	for i, c := range cases {
		if got := vm.Equal(c.a, c.b); got != c.eq {
			t.Errorf("case %d: Equal(%v, %v) = %v, want %v", i, c.a, c.b, got, c.eq)
		}
	}
}

// Property: scalar equality agrees with payload equality per kind.
func TestScalarEqualityProperty(t *testing.T) {
	f := func(a, b int64, kind uint8) bool {
		mk := func(v int64) vm.Value {
			switch kind % 5 {
			case 0:
				return vm.IntVal(v)
			case 1:
				return vm.NodeVal(int(v))
			case 2:
				return vm.IDVal(int(v))
			case 3:
				return vm.MsgVal(int(v))
			default:
				return vm.BoolVal(v != 0)
			}
		}
		va, vb := mk(a), mk(b)
		want := va.Int == vb.Int
		return vm.Equal(va, vb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueStrings(t *testing.T) {
	checks := map[string]vm.Value{
		"5":     vm.IntVal(5),
		"true":  vm.BoolVal(true),
		"node2": vm.NodeVal(2),
		"blk1":  vm.IDVal(1),
		"msg4":  vm.MsgVal(4),
		"nil":   {},
		"s":     vm.StringVal("s"),
	}
	for want, v := range checks {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

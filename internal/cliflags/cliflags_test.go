package cliflags

import (
	"flag"
	"reflect"
	"testing"

	"teapot/internal/netmodel"
	"teapot/internal/protocols"
)

// TestRunnableNamesInSync: the static help list must be exactly the set of
// registry entries protocols.Spec accepts, in registry order.
func TestRunnableNamesInSync(t *testing.T) {
	var want []string
	for _, e := range protocols.All() {
		if _, err := protocols.Spec(e.Name, 2, 1); err == nil {
			want = append(want, e.Name)
		}
	}
	if got := RunnableNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("RunnableNames() = %v, want %v", got, want)
	}
}

func TestNetFlag(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	n := AddNet(fs)
	if err := fs.Parse([]string{"-net", "drop=1,dup=2,reorder=1"}); err != nil {
		t.Fatal(err)
	}
	want := netmodel.Model{MaxDrops: 1, MaxDups: 2, Reorder: 1}
	if n.Model != want {
		t.Errorf("parsed %+v, want %+v", n.Model, want)
	}
	if err := fs.Parse([]string{"-net", "bogus=1"}); err == nil {
		t.Error("bad -net value accepted")
	}
}

func TestRunSpec(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	r := AddRun(fs, "stache", 2, 1)
	if err := fs.Parse([]string{"-proto", "stache-ft", "-net", "drop=1", "-workers", "3", "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	spec, err := r.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Proto == nil || spec.Support == nil || spec.Events == nil {
		t.Fatal("spec missing protocol wiring")
	}
	if spec.Net.MaxDrops != 1 || spec.Workers != 3 || spec.Seed != 9 {
		t.Errorf("flags not threaded: %+v", spec)
	}
	*r.Proto = "no-such-proto"
	if _, err := r.Spec(); err == nil {
		t.Error("unknown protocol accepted")
	}
}

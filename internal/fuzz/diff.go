package fuzz

import (
	"fmt"

	"teapot/internal/core"
	"teapot/internal/mc"
	"teapot/internal/obs"
	"teapot/internal/runtime"
	"teapot/internal/sema"
	"teapot/internal/vm"
)

// execMachine is an independent execution substrate for replaying model
// checker counterexamples: persistent runtime.Engines driven straight-line,
// the way the simulator drives them — no cloning, no canonical
// encode/decode round-trips, no action enumeration. Replaying a
// counterexample on both substrates and comparing canonical snapshots after
// every step cross-checks the checker's state machinery (channel splicing,
// structural clone sharing, visited-set codec) against plain execution.
type execMachine struct {
	spec     core.RunSpec
	homeOf   func(id int) int
	engines  []*runtime.Engine
	channels [][]*runtime.Message // [from*Nodes+to]
	access   []sema.AccessMode    // [node*Blocks+block]
	stalled  []int                // per node: block stalled on, or -1

	drops, dups, corrupts int

	timeoutTag, nackTag int
	sendErr             error

	obsSink obs.Sink // replay-parity stream; never part of snapshots
}

func newExecMachine(spec core.RunSpec) *execMachine {
	homeOf := spec.HomeOf
	if homeOf == nil {
		nodes := spec.Nodes
		homeOf = func(id int) int { return id % nodes }
	}
	x := &execMachine{
		spec:       spec,
		homeOf:     homeOf,
		channels:   make([][]*runtime.Message, spec.Nodes*spec.Nodes),
		access:     make([]sema.AccessMode, spec.Nodes*spec.Blocks),
		stalled:    make([]int, spec.Nodes),
		timeoutTag: spec.Proto.MsgIndex("TIMEOUT"),
		nackTag:    spec.Proto.MsgIndex("NACK"),
	}
	for n := 0; n < spec.Nodes; n++ {
		x.stalled[n] = -1
		x.engines = append(x.engines, runtime.NewEngine(spec.Proto, n, spec.Blocks, x, spec.Support))
	}
	for b := 0; b < spec.Blocks; b++ {
		x.access[homeOf(b)*spec.Blocks+b] = sema.AccReadWrite
	}
	return x
}

// setObs attaches a sink to the harness and its engines, so a replay here
// emits the same HandlerEnter/Exit/Send/Drop/Dup stream as the checker's
// own replay (mc.Config.Obs) and as a live simulator run.
func (x *execMachine) setObs(s obs.Sink) {
	x.obsSink = s
	for _, e := range x.engines {
		e.SetObs(s)
	}
}

// emitFault mirrors mc.World.emitFault (and the tempest machine's shape).
func (x *execMachine) emitFault(kind obs.Kind, from, to int, m *runtime.Message) {
	if x.obsSink == nil {
		return
	}
	x.obsSink.Emit(obs.Event{Kind: kind, Node: int32(from), Block: int32(m.ID),
		State: -1, Msg: int32(m.Tag), Peer: int32(to), Site: -1, Flow: m.Flow()})
}

// ---- runtime.Machine (mirrors mc.World's implementation) ----

func (x *execMachine) Send(from, dst int, m *runtime.Message) {
	if dst < 0 || dst >= x.spec.Nodes {
		x.sendErr = fmt.Errorf("send to invalid node %d", dst)
		return
	}
	ch := from*x.spec.Nodes + dst
	x.channels[ch] = append(x.channels[ch], m)
}

func (x *execMachine) AccessChange(node, id int, mode sema.AccessMode) {
	x.access[node*x.spec.Blocks+id] = mode
}

func (x *execMachine) RecvData(node, id int, mode sema.AccessMode) {
	x.access[node*x.spec.Blocks+id] = mode
}

func (x *execMachine) WakeUp(node, id int) {
	if x.stalled[node] == id {
		x.stalled[node] = -1
	}
}

func (x *execMachine) HomeNode(id int) int { return x.homeOf(id) }

func (x *execMachine) Print(node int, s string) {}

func (x *execMachine) removeAt(ch, idx int) (*runtime.Message, error) {
	if idx >= len(x.channels[ch]) {
		return nil, fmt.Errorf("channel %d has %d message(s), step wants index %d",
			ch, len(x.channels[ch]), idx)
	}
	m := x.channels[ch][idx]
	x.channels[ch] = append(x.channels[ch][:idx:idx], x.channels[ch][idx+1:]...)
	return m, nil
}

// apply executes one counterexample step. ev is the resolved processor
// event for Kind "event" steps (it carries the payload).
func (x *execMachine) apply(st mc.Step, ev *mc.Event) error {
	switch st.Kind {
	case "deliver":
		m, err := x.removeAt(st.From*x.spec.Nodes+st.To, st.Idx)
		if err != nil {
			return err
		}
		if err := x.engines[st.To].Deliver(m); err != nil {
			return err
		}
		return x.sendErr
	case "drop":
		m, err := x.removeAt(st.From*x.spec.Nodes+st.To, st.Idx)
		if err != nil {
			return err
		}
		x.emitFault(obs.KindDrop, st.From, st.To, m)
		x.drops++
		return nil
	case "dup":
		ch := st.From*x.spec.Nodes + st.To
		if st.Idx >= len(x.channels[ch]) {
			return fmt.Errorf("dup index %d out of range", st.Idx)
		}
		m := x.channels[ch][st.Idx]
		cm, err := x.engines[ch%x.spec.Nodes].CloneMessage(m, x.spec.Codec)
		if err != nil {
			return err
		}
		x.channels[ch] = append(x.channels[ch], nil)
		copy(x.channels[ch][st.Idx+2:], x.channels[ch][st.Idx+1:])
		x.channels[ch][st.Idx+1] = cm
		x.emitFault(obs.KindDup, st.From, st.To, m)
		x.dups++
		return nil
	case "corrupt":
		m, err := x.removeAt(st.From*x.spec.Nodes+st.To, st.Idx)
		if err != nil {
			return err
		}
		x.channels[st.To*x.spec.Nodes+st.From] = append(x.channels[st.To*x.spec.Nodes+st.From], &runtime.Message{
			Tag:     x.nackTag,
			ID:      m.ID,
			Src:     st.To,
			Payload: []vm.Value{vm.MsgVal(m.Tag)},
		})
		x.corrupts++
		return nil
	case "timeout":
		if err := x.engines[st.Node].InjectEvent(x.timeoutTag, st.Block); err != nil {
			return err
		}
		return x.sendErr
	case "event":
		if ev == nil {
			return fmt.Errorf("event step %v without resolved event", st)
		}
		if ev.Stalls {
			x.stalled[st.Node] = st.Block
		}
		if err := x.engines[st.Node].InjectEvent(ev.Tag, st.Block, ev.Payload...); err != nil {
			return err
		}
		return x.sendErr
	}
	return fmt.Errorf("unknown step kind %q", st.Kind)
}

// snapshot canonically serializes the machine, field-for-field the encoding
// mc.World uses as its visited-set key, so agreement can be asserted
// byte-for-byte.
func (x *execMachine) snapshot() (string, error) {
	enc := &runtime.Encoder{}
	for _, e := range x.engines {
		if err := e.EncodeState(enc, x.spec.Codec); err != nil {
			return "", err
		}
	}
	for ch, msgs := range x.channels {
		enc.Int(int64(len(msgs)))
		for _, m := range msgs {
			if err := x.engines[ch%x.spec.Nodes].EncodeMessage(enc, m, x.spec.Codec); err != nil {
				return "", err
			}
		}
	}
	for _, a := range x.access {
		enc.Byte(byte(a))
	}
	for _, s := range x.stalled {
		enc.Int(int64(s))
	}
	enc.Int(int64(x.drops))
	enc.Int(int64(x.dups))
	enc.Int(int64(x.corrupts))
	return string(enc.Bytes()), nil
}

// DiffReplay replays an mc counterexample step-for-step through an
// independent runtime.Engine harness alongside the checker's own replay,
// asserting canonical-state agreement after every step. A protocol-error
// counterexample must fail on both substrates at the final step with the
// same error. Returns nil when every step agrees.
func DiffReplay(spec core.RunSpec, v *mc.Violation) error {
	if v == nil {
		return fmt.Errorf("fuzz: no violation to replay")
	}
	if len(v.Steps) == 0 {
		// Deadlocks on the initial state (or a checker predating Steps)
		// have nothing to replay.
		return fmt.Errorf("fuzz: violation carries no machine-readable steps")
	}
	x := newExecMachine(spec)
	return mc.ReplaySteps(spec.MCConfig(), v.Steps, func(i int, st mc.Step, ev *mc.Event, w *mc.World, applyErr error) error {
		herr := x.apply(st, ev)
		if applyErr != nil || herr != nil {
			// Both substrates must fail here, identically, and only on the
			// final step (ReplaySteps rejects mid-trace failures itself).
			if applyErr == nil || herr == nil {
				return fmt.Errorf("fuzz: step %d (%v): checker error %v, harness error %v", i, st, applyErr, herr)
			}
			if applyErr.Error() != herr.Error() {
				return fmt.Errorf("fuzz: step %d (%v): errors disagree:\n  checker: %v\n  harness: %v", i, st, applyErr, herr)
			}
			return nil
		}
		ws, err := w.Snapshot()
		if err != nil {
			return fmt.Errorf("fuzz: step %d: checker snapshot: %w", i, err)
		}
		xs, err := x.snapshot()
		if err != nil {
			return fmt.Errorf("fuzz: step %d: harness snapshot: %w", i, err)
		}
		if ws != xs {
			return fmt.Errorf("fuzz: step %d (%v): states diverge (%d vs %d canonical bytes)", i, st, len(ws), len(xs))
		}
		return nil
	})
}

// ConfirmMC cross-checks a fuzz-found failure with the model checker: it
// exhaustively explores the fuzzer's spec (same protocol, machine size, and
// fault budgets) and returns the checker's verdict. A fuzz campaign that
// found a violation should see the checker find one too — and every
// checker counterexample must replay cleanly through the differential
// harness.
func (f *Fuzzer) ConfirmMC(maxStates int) (*mc.Result, error) {
	cfg := f.spec.MCConfig()
	cfg.MaxStates = maxStates
	return mc.Check(cfg)
}

package codegen_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"teapot/internal/codegen"
	"teapot/internal/protocols/bufwrite"
	"teapot/internal/protocols/lcm"
	"teapot/internal/protocols/stache"
)

func TestGenerateStache(t *testing.T) {
	a := stache.MustCompile(true)
	src := codegen.Generate(a.IR, "stacheproto")
	for _, want := range []string{
		"package stacheproto",
		"type Host interface",
		"MsgGET_RO_REQ",
		"StCache_Inv",
		"var Handlers = map[[2]int]func",
		"h_Cache_Inv_RD_FAULT",
		"Cont{F:",
		"h.SetState(",
		"func MsgName(i int) string",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	// Determinism.
	if src != codegen.Generate(a.IR, "stacheproto") {
		t.Error("generation is not deterministic")
	}
	lines := strings.Count(src, "\n")
	teapotLines := strings.Count(stache.Source, "\n")
	t.Logf("Teapot %d lines -> generated Go %d lines (paper: 600 -> ~1000 C)", teapotLines, lines)
	if lines < teapotLines {
		t.Errorf("generated code (%d lines) should exceed the Teapot source (%d lines)", lines, teapotLines)
	}
}

// TestGeneratedCodeCompiles builds the generated Go for every bundled
// protocol with the real toolchain.
func TestGeneratedCodeCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain")
	}
	cases := map[string]string{
		"stache":   codegen.Generate(stache.MustCompile(true).IR, "proto"),
		"lcm":      codegen.Generate(lcm.MustCompile(lcm.Base, true).IR, "proto"),
		"bufwrite": codegen.Generate(bufwrite.MustCompile(true).IR, "proto"),
		"cas": func() string {
			a, err := stache.CompileCAS(true)
			if err != nil {
				t.Fatal(err)
			}
			return codegen.Generate(a.IR, "proto")
		}(),
	}
	for name, src := range cases {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.22\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "proto.go"), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command("go", "build", "./...")
			cmd.Dir = dir
			cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=on")
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("generated code does not compile: %v\n%s\n--- source head ---\n%s",
					err, out, head(src, 60))
			}
		})
	}
}

func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

package analysis_test

import (
	"encoding/json"
	"testing"

	"teapot/internal/analysis"
	"teapot/internal/core"
)

// TestJSONReportGolden pins the machine-readable vet schema byte for byte:
// tools consuming `teapot-vet -json` (and scripts/check.sh) parse this
// shape, so schema drift must be a deliberate, test-visible change.
func TestJSONReportGolden(t *testing.T) {
	const src = `protocol P begin
  state A();
  state D();
  message GO;
end;
state P.A() begin
  message GO (id : ID; var info : INFO; src : NODE) begin Drop(); end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Enqueue(); end;
end;
state P.D() begin
  message GO (id : ID; var info : INFO; src : NODE) begin
    if (src < MyNode()) then Drop(); else Drop(); endif;
  end;
  message DEFAULT (id : ID; var info : INFO; src : NODE) begin Drop(); end;
end;
`
	a, err := core.Compile(core.Config{
		Name: "p.tea", Source: src, Optimize: true,
		HomeStart: "A", CacheStart: "A",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := analysis.Analyze(a.Protocol)
	cert := analysis.ProveSymmetry(a.Protocol)
	got, err := analysis.MarshalJSONReports([]*analysis.JSONReport{rep.JSON("p", cert)})
	if err != nil {
		t.Fatal(err)
	}
	const want = `[
  {
    "protocol": "p",
    "findings": [
      {
        "check": "vet:queue-stuck",
        "severity": "warning",
        "file": "p.tea",
        "line": 6,
        "col": 1,
        "msg": "state A enqueues messages but no handler transitions or resumes: the deferred queue never drains"
      },
      {
        "check": "vet:unreachable",
        "severity": "warning",
        "file": "p.tea",
        "line": 10,
        "col": 1,
        "msg": "state D is unreachable from the start states (A, A)"
      },
      {
        "check": "vet:symmetry",
        "severity": "info",
        "file": "p.tea",
        "line": 12,
        "col": 13,
        "msg": "handler D.GO is not node-symmetric: ordering compares node ids (instr 1: r4 := r2 < r3); symmetry reduction disabled"
      }
    ],
    "symmetry": {
      "protocol": "P",
      "node": {
        "equivariant": false,
        "witnesses": [
          {
            "handler": "D.GO",
            "index": 1,
            "instr": "r4 := r2 < r3",
            "line": 12,
            "col": 13,
            "reason": "ordering compares node ids"
          }
        ]
      },
      "block": {
        "equivariant": true
      }
    }
  }
]
`
	if string(got) != want {
		t.Errorf("json schema drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestJSONReportEmptyFindings: a clean protocol marshals findings as [],
// never null — consumers index without nil checks.
func TestJSONReportEmptyFindings(t *testing.T) {
	rep := &analysis.Report{}
	out, err := analysis.MarshalJSONReports([]*analysis.JSONReport{rep.JSON("clean", nil)})
	if err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		Protocol string            `json:"protocol"`
		Findings []json.RawMessage `json:"findings"`
		Symmetry json.RawMessage   `json:"symmetry"`
	}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded[0].Findings == nil {
		t.Error("findings marshaled as null, want []")
	}
	if decoded[0].Symmetry != nil {
		t.Error("nil cert marshaled a symmetry block")
	}
}

package sim_test

import (
	"testing"

	"teapot/internal/protocols/stache"
	"teapot/internal/runtime"
	"teapot/internal/sim"
	"teapot/internal/tempest"
)

func runStache(t *testing.T, w *sim.Workload, nodes int, flavor string) *tempest.Stats {
	return runStacheCost(t, w, nodes, flavor, tempest.DefaultCost)
}

// zeroProtoCost makes protocol processing free so engine timing is
// identical regardless of implementation — used for wire-equivalence.
var zeroProtoCost = tempest.CostModel{MemAccess: 1, NetLatency: 120}

func runStacheCost(t *testing.T, w *sim.Workload, nodes int, flavor string, cost tempest.CostModel) *tempest.Stats {
	t.Helper()
	w.Trace.Reset()
	var mk func(m runtime.Machine) tempest.Engine
	proto := stache.MustCompile(true).Protocol
	switch flavor {
	case "hw":
		mk = func(m runtime.Machine) tempest.Engine {
			return stache.NewHW(proto, nodes, w.Blocks, m)
		}
	case "unopt":
		p := stache.MustCompile(false).Protocol
		mk = func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(p, nodes, w.Blocks, m, stache.MustSupport(p))
		}
	case "opt":
		mk = func(m runtime.Machine) tempest.Engine {
			return tempest.NewTeapotEngine(proto, nodes, w.Blocks, m, stache.MustSupport(proto))
		}
	default:
		t.Fatalf("unknown flavor %s", flavor)
	}
	stats, err := sim.Run(sim.Config{
		Nodes:      nodes,
		Blocks:     w.Blocks,
		Cost:       cost,
		Tags:       tempest.ResolveTags(proto),
		MakeEngine: mk,
		Program:    w.Trace,
	})
	if err != nil {
		t.Fatalf("%s/%s: %v", w.Name, flavor, err)
	}
	return stats
}

func TestWorkloadsComplete(t *testing.T) {
	const nodes = 8
	for _, w := range sim.Table1Workloads(nodes, 3) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			stats := runStache(t, w, nodes, "opt")
			if stats.Cycles <= 0 {
				t.Fatalf("cycles = %d", stats.Cycles)
			}
			if stats.Faults == 0 || stats.Messages == 0 {
				t.Errorf("no protocol activity: faults=%d messages=%d", stats.Faults, stats.Messages)
			}
			t.Logf("%s: cycles=%d faults=%d msgs=%d faultTime=%.0f%%",
				w.Name, stats.Cycles, stats.Faults, stats.Messages,
				100*float64(stats.FaultTime)/float64(stats.Cycles*int64(nodes)))
		})
	}
}

// TestHandwrittenEquivalence replays identical traces through the
// hand-written baseline and the compiled Teapot protocol under a cost
// model where protocol processing is free (so both experience identical
// timing); both must generate the same faults and messages (wire-level
// equivalence).
func TestHandwrittenEquivalence(t *testing.T) {
	const nodes = 8
	for _, w := range sim.Table1Workloads(nodes, 2) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			hw := runStacheCost(t, w, nodes, "hw", zeroProtoCost)
			tp := runStacheCost(t, w, nodes, "opt", zeroProtoCost)
			if hw.Faults != tp.Faults {
				t.Errorf("faults differ: hw=%d teapot=%d", hw.Faults, tp.Faults)
			}
			if hw.Messages != tp.Messages {
				t.Errorf("messages differ: hw=%d teapot=%d", hw.Messages, tp.Messages)
			}
			if hw.Accesses != tp.Accesses {
				t.Errorf("accesses differ: hw=%d teapot=%d", hw.Accesses, tp.Accesses)
			}
		})
	}
}

// TestOverheadOrdering checks the Table 1 shape: hand-written ≤ optimized ≤
// unoptimized, with overheads within a plausible band.
func TestOverheadOrdering(t *testing.T) {
	const nodes = 8
	for _, w := range sim.Table1Workloads(nodes, 3) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			hw := runStache(t, w, nodes, "hw")
			opt := runStache(t, w, nodes, "opt")
			unopt := runStache(t, w, nodes, "unopt")
			if hw.Cycles > opt.Cycles {
				t.Errorf("hand-written (%d) slower than optimized Teapot (%d)", hw.Cycles, opt.Cycles)
			}
			if opt.Cycles > unopt.Cycles {
				t.Errorf("optimized (%d) slower than unoptimized (%d)", opt.Cycles, unopt.Cycles)
			}
			ovOpt := 100 * float64(opt.Cycles-hw.Cycles) / float64(hw.Cycles)
			ovUnopt := 100 * float64(unopt.Cycles-hw.Cycles) / float64(hw.Cycles)
			if ovUnopt > 40 {
				t.Errorf("unoptimized overhead %.1f%% implausibly high", ovUnopt)
			}
			t.Logf("%s: C=%d opt=%d (+%.1f%%) unopt=%d (+%.1f%%)",
				w.Name, hw.Cycles, opt.Cycles, ovOpt, unopt.Cycles, ovUnopt)
		})
	}
}

func TestDeterministicRuns(t *testing.T) {
	const nodes = 4
	w1 := sim.Gauss(sim.WorkloadSpec{Nodes: nodes, Iters: 2, Seed: 7})
	w2 := sim.Gauss(sim.WorkloadSpec{Nodes: nodes, Iters: 2, Seed: 7})
	s1 := runStache(t, w1, nodes, "opt")
	s2 := runStache(t, w2, nodes, "opt")
	if s1.Cycles != s2.Cycles || s1.Messages != s2.Messages {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", s1.Cycles, s1.Messages, s2.Cycles, s2.Messages)
	}
}

package mc_test

import (
	"testing"

	"teapot/internal/mc"
	"teapot/internal/netmodel"
	"teapot/internal/protocols/stache"
)

// TestViolationSteps: every counterexample must carry machine-readable
// steps matching its human trace one-for-one, and ReplaySteps must
// re-execute them from the initial state without divergence.
func TestViolationSteps(t *testing.T) {
	for _, tc := range []struct {
		name     string
		cfg      mc.Config
		wantKind string
	}{
		{
			name:     "deadlock (perfect network)",
			cfg:      stacheBuggyCfg(t, 2, netmodel.Model{}),
			wantKind: "deadlock",
		},
		{
			name:     "coherence invariant (drop budget)",
			cfg:      stacheFTBuggyCfg(t, 2, netmodel.Model{MaxDrops: 1}),
			wantKind: "invariant",
		},
	} {
		res, err := mc.Check(tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		v := res.Violation
		if v == nil {
			t.Fatalf("%s: no violation in %d states", tc.name, res.States)
		}
		if v.Kind != tc.wantKind {
			t.Errorf("%s: kind %q, want %q", tc.name, v.Kind, tc.wantKind)
		}
		if len(v.Steps) != len(v.Trace) {
			t.Fatalf("%s: %d steps for a %d-entry trace", tc.name, len(v.Steps), len(v.Trace))
		}
		visited := 0
		err = mc.ReplaySteps(tc.cfg, v.Steps, func(i int, st mc.Step, ev *mc.Event, w *mc.World, applyErr error) error {
			visited++
			if st.Kind == "event" && ev == nil {
				t.Errorf("%s: step %d is an event but no resolved Event was passed", tc.name, i)
			}
			return nil
		})
		if err != nil {
			t.Errorf("%s: replay: %v", tc.name, err)
		}
		if visited != len(v.Steps) {
			t.Errorf("%s: replay visited %d of %d steps", tc.name, visited, len(v.Steps))
		}
	}
}

// TestReplayStepsRejectsDiverged: a step that names a transition the
// replayed world does not enable must fail loudly, not silently skip.
func TestReplayStepsRejectsDiverged(t *testing.T) {
	cfg := stacheBuggyCfg(t, 2, netmodel.Model{})
	err := mc.ReplaySteps(cfg, []mc.Step{{Kind: "deliver", From: 0, To: 1, Idx: 0}}, nil)
	if err == nil {
		t.Fatal("delivering from an empty channel should fail")
	}
	err = mc.ReplaySteps(cfg, []mc.Step{{Kind: "timeout", Node: 0, Block: 0}}, nil)
	if err == nil {
		t.Fatal("TIMEOUT without a fault budget should not be enabled")
	}
}

func stacheBuggyCfg(t *testing.T, nodes int, net netmodel.Model) mc.Config {
	t.Helper()
	p, err := stache.CompileBuggy()
	if err != nil {
		t.Fatal(err)
	}
	return mc.Config{
		Proto: p, Support: stache.MustSupport(p), Events: stache.NewEvents(p),
		Nodes: nodes, Blocks: 1, Net: net, CheckCoherence: true,
	}
}

func stacheFTBuggyCfg(t *testing.T, nodes int, net netmodel.Model) mc.Config {
	t.Helper()
	a, err := stache.CompileFTBuggy()
	if err != nil {
		t.Fatal(err)
	}
	return mc.Config{
		Proto: a.Protocol, Support: stache.MustFTSupport(a.Protocol, nodes), Events: stache.NewEvents(a.Protocol),
		Nodes: nodes, Blocks: 1, Net: net, CheckCoherence: true,
	}
}

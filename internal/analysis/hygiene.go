package analysis

import (
	"fmt"

	"teapot/internal/ir"
	"teapot/internal/liveness"
	"teapot/internal/source"
)

// IR hygiene checks, built on internal/liveness: dead computations and
// reads of registers no path ever writes. Both usually indicate a protocol
// source bug (an assignment whose value is never consulted, a local read
// before it is set) that the compiler silently tolerates.

// pureOps are the instructions with no side effect beyond their register
// result: if the result is dead, the instruction is useless.
var pureOps = map[ir.Op]bool{
	ir.OpConst:      true,
	ir.OpConstStr:   true,
	ir.OpMove:       true,
	ir.OpBin:        true,
	ir.OpUn:         true,
	ir.OpLoadVar:    true,
	ir.OpModConst:   true,
	ir.OpBuiltinVal: true,
	ir.OpMakeState:  true,
	ir.OpMakeCont:   true,
}

// runDeadStore flags pure instructions whose destination register is dead
// immediately after the instruction (not live into any successor).
func runDeadStore(c *Ctx) {
	for _, fn := range c.IR.Funcs {
		if len(fn.Code) == 0 {
			continue
		}
		live := liveness.Analyze(fn)
		var succs []int
		for i := range fn.Code {
			in := &fn.Code[i]
			if !pureOps[in.Op] || in.Dst == ir.NoReg {
				continue
			}
			dead := true
			succs = fn.Succs(i, succs[:0])
			for _, s := range succs {
				if live.LiveAt(s).Has(in.Dst) {
					dead = false
					break
				}
			}
			if dead {
				c.Reportf(source.SevWarning, instrPos(fn, i),
					"handler %s computes a value (%s) that is never used",
					fn.Name, in.String())
			}
		}
	}
}

// runUnassigned flags registers a handler reads that no instruction and no
// parameter slot ever writes. The VM hands such reads the zero value, which
// almost always means a local was consulted before its first assignment.
func runUnassigned(c *Ctx) {
	for _, fn := range c.IR.Funcs {
		defined := make([]bool, fn.NumRegs)
		for r := 0; r < fn.NumStateParams+fn.NumParams && r < fn.NumRegs; r++ {
			defined[r] = true
		}
		for i := range fn.Code {
			if d := fn.Code[i].Def(); d != ir.NoReg && int(d) < len(defined) {
				defined[d] = true
			}
		}
		var uses []ir.Reg
		reported := make(map[ir.Reg]bool)
		for i := range fn.Code {
			in := &fn.Code[i]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if u == ir.NoReg || int(u) >= len(defined) || defined[u] || reported[u] {
					continue
				}
				reported[u] = true
				c.Reportf(source.SevWarning, instrPos(fn, i),
					"handler %s reads %s, which no path ever writes (it is always the zero value)",
					fn.Name, regName(fn, c, u))
			}
		}
	}
}

// regName renders a register with its source-level name when it maps to a
// declared local.
func regName(fn *ir.Func, c *Ctx, r ir.Reg) string {
	li := int(r) - fn.NumStateParams - fn.NumParams
	if li >= 0 {
		for _, st := range c.Sema.States {
			if st.Index != fn.StateIndex {
				continue
			}
			for _, h := range st.Handlers {
				if (h.Msg == nil && fn.MsgIndex < 0) || (h.Msg != nil && h.Msg.Index == fn.MsgIndex) {
					if li < len(h.Locals) {
						return "local " + h.Locals[li].Name
					}
				}
			}
		}
	}
	return fmt.Sprintf("r%d", int(r))
}

package runtime

import (
	"encoding/binary"
	"fmt"

	"teapot/internal/vm"
)

// State snapshot/restore support for the model checker. The encoding is
// canonical: two engines with identical logical state produce identical
// bytes. Continuations are encoded by their suspend-site ID plus saved
// values, which is exactly what makes the "same source" verification of §7
// possible over the compiled representation.

// Encoder serializes values into a canonical byte form.
type Encoder struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (e *Encoder) Bytes() []byte { return e.buf }

// Int encodes a signed integer.
func (e *Encoder) Int(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Str encodes a string.
func (e *Encoder) Str(s string) {
	e.Int(int64(len(s)))
	e.buf = append(e.buf, s...)
}

// Byte encodes one byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Decoder reads the canonical byte form.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps a buffer.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Int decodes a signed integer.
func (d *Decoder) Int() int64 {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		panic("runtime: corrupt state encoding (varint)")
	}
	d.off += n
	return v
}

// Str decodes a string.
func (d *Decoder) Str() string {
	n := int(d.Int())
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Byte decodes one byte.
func (d *Decoder) Byte() byte {
	b := d.buf[d.off]
	d.off++
	return b
}

// AbstractCodec lets a support module participate in snapshots when a
// protocol stores abstract values in block variables or continuations.
type AbstractCodec interface {
	EncodeAbstract(v any, e *Encoder) error
	DecodeAbstract(d *Decoder) (any, error)
}

// EncodeValue writes one value. The engine is needed to resolve
// continuations; codec may be nil when no abstract values occur.
func (e *Engine) EncodeValue(enc *Encoder, v vm.Value, codec AbstractCodec) error {
	enc.Byte(byte(v.Kind))
	switch v.Kind {
	case vm.KNil:
	case vm.KInt, vm.KBool, vm.KNode, vm.KID, vm.KMsg, vm.KAccess:
		enc.Int(v.Int)
	case vm.KString:
		enc.Str(v.Str)
	case vm.KState:
		sv := v.State()
		enc.Int(int64(sv.State))
		enc.Int(int64(len(sv.Args)))
		for _, a := range sv.Args {
			if err := e.EncodeValue(enc, a, codec); err != nil {
				return err
			}
		}
	case vm.KCont:
		c := v.Cont()
		enc.Int(int64(c.Site))
		enc.Int(int64(len(c.Saved)))
		for _, a := range c.Saved {
			if err := e.EncodeValue(enc, a, codec); err != nil {
				return err
			}
		}
	case vm.KInfo:
		// The info handle always refers to the enclosing block.
	case vm.KAbstract:
		if codec == nil {
			return fmt.Errorf("runtime: abstract value in state but no codec provided")
		}
		return codec.EncodeAbstract(v.Ref, enc)
	default:
		return fmt.Errorf("runtime: cannot encode value kind %d", v.Kind)
	}
	return nil
}

// DecodeValue reads one value; block is the block whose info handles are
// being reconstructed.
func (e *Engine) DecodeValue(d *Decoder, block *Block, codec AbstractCodec) (vm.Value, error) {
	kind := vm.Kind(d.Byte())
	switch kind {
	case vm.KNil:
		return vm.Value{}, nil
	case vm.KInt, vm.KBool, vm.KNode, vm.KID, vm.KMsg, vm.KAccess:
		return vm.Value{Kind: kind, Int: d.Int()}, nil
	case vm.KString:
		return vm.StringVal(d.Str()), nil
	case vm.KState:
		sv := &vm.StateVal{State: int(d.Int())}
		n := int(d.Int())
		for i := 0; i < n; i++ {
			a, err := e.DecodeValue(d, block, codec)
			if err != nil {
				return vm.Value{}, err
			}
			sv.Args = append(sv.Args, a)
		}
		return vm.StateValue(sv), nil
	case vm.KCont:
		site := int(d.Int())
		if site < 0 || site >= len(e.Proto.IR.Sites) {
			return vm.Value{}, fmt.Errorf("runtime: bad suspend site %d in encoding", site)
		}
		s := e.Proto.IR.Sites[site]
		c := &vm.Cont{Fn: s.Func, Frag: s.FragIdx, Site: site}
		n := int(d.Int())
		for i := 0; i < n; i++ {
			a, err := e.DecodeValue(d, block, codec)
			if err != nil {
				return vm.Value{}, err
			}
			c.Saved = append(c.Saved, a)
		}
		return vm.ContVal(c), nil
	case vm.KInfo:
		return vm.InfoVal(block), nil
	case vm.KAbstract:
		if codec == nil {
			return vm.Value{}, fmt.Errorf("runtime: abstract value in encoding but no codec provided")
		}
		ref, err := codec.DecodeAbstract(d)
		if err != nil {
			return vm.Value{}, err
		}
		return vm.AbstractVal(ref), nil
	}
	return vm.Value{}, fmt.Errorf("runtime: cannot decode value kind %d", kind)
}

// EncodeMessage writes a message (without its destination, which the
// channel key carries).
func (e *Engine) EncodeMessage(enc *Encoder, m *Message, codec AbstractCodec) error {
	enc.Int(int64(m.Tag))
	enc.Int(int64(m.ID))
	enc.Int(int64(m.Src))
	if m.Data {
		enc.Byte(1)
	} else {
		enc.Byte(0)
	}
	enc.Int(m.Val)
	enc.Int(int64(len(m.Payload)))
	for _, v := range m.Payload {
		if err := e.EncodeValue(enc, v, codec); err != nil {
			return err
		}
	}
	return nil
}

// DecodeMessage reads a message encoded by EncodeMessage.
func (e *Engine) DecodeMessage(d *Decoder, codec AbstractCodec) (*Message, error) {
	m := &Message{Tag: int(d.Int()), ID: int(d.Int()), Src: int(d.Int())}
	m.Data = d.Byte() == 1
	m.Val = d.Int()
	n := int(d.Int())
	block := e.Blocks[m.ID]
	for i := 0; i < n; i++ {
		v, err := e.DecodeValue(d, block, codec)
		if err != nil {
			return nil, err
		}
		m.Payload = append(m.Payload, v)
	}
	return m, nil
}

// EncodeState writes the engine's full protocol state (all blocks: state
// value, protocol variables, deferred queue).
func (e *Engine) EncodeState(enc *Encoder, codec AbstractCodec) error {
	for _, b := range e.Blocks {
		if err := e.EncodeValue(enc, vm.StateValue(b.State), codec); err != nil {
			return err
		}
		for _, v := range b.Vars {
			if err := e.EncodeValue(enc, v, codec); err != nil {
				return err
			}
		}
		enc.Int(int64(len(b.Deferred)))
		for _, m := range b.Deferred {
			if err := e.EncodeMessage(enc, m, codec); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecodeState restores the engine's protocol state from an encoding
// produced by EncodeState on an engine with the same shape.
func (e *Engine) DecodeState(d *Decoder, codec AbstractCodec) error {
	for _, b := range e.Blocks {
		sv, err := e.DecodeValue(d, b, codec)
		if err != nil {
			return err
		}
		b.State = sv.State()
		if b.State == nil {
			return fmt.Errorf("runtime: block %d decoded non-state", b.ID)
		}
		for i := range b.Vars {
			if b.Vars[i], err = e.DecodeValue(d, b, codec); err != nil {
				return err
			}
		}
		n := int(d.Int())
		b.Deferred = nil
		for i := 0; i < n; i++ {
			m, err := e.DecodeMessage(d, codec)
			if err != nil {
				return err
			}
			b.Deferred = append(b.Deferred, m)
		}
		b.transitioned = false
	}
	return nil
}

package obs

import "testing"

func TestCollectorCounters(t *testing.T) {
	c := NewCollector(0)
	c.Emit(Event{Kind: KindHandlerEnter, Node: 0, State: 2, Msg: 1, Peer: 1})
	c.Emit(Event{Kind: KindContAlloc, Node: 0, Site: 5, Arg: 1})
	c.Emit(Event{Kind: KindContAlloc, Node: 0, Site: 2, Arg: 0})
	c.Emit(Event{Kind: KindContAlloc, Node: 0, Site: 5, Arg: 1})
	c.Emit(Event{Kind: KindEnqueue, Node: 0, Msg: 3, Arg: 2})
	c.Emit(Event{Kind: KindEnqueue, Node: 0, Msg: 3, Arg: 7})
	c.Emit(Event{Kind: KindHandlerExit, Node: 0, State: 3, Msg: 1})

	if got := c.Total(); got != 7 {
		t.Errorf("Total = %d, want 7", got)
	}
	if got := c.Count(KindContAlloc); got != 3 {
		t.Errorf("Count(ContAlloc) = %d, want 3", got)
	}
	if got := c.DispatchCount(2, 1); got != 1 {
		t.Errorf("DispatchCount(2,1) = %d, want 1", got)
	}
	if got := c.MaxQueueDepth(); got != 7 {
		t.Errorf("MaxQueueDepth = %d, want 7", got)
	}
	if got := c.HeapContSites(); len(got) != 1 || got[0] != 5 {
		t.Errorf("HeapContSites = %v, want [5]", got)
	}
	if got := c.StaticContSites(); len(got) != 1 || got[0] != 2 {
		t.Errorf("StaticContSites = %v, want [2]", got)
	}
	if h, s := c.SiteAllocs(5); h != 2 || s != 0 {
		t.Errorf("SiteAllocs(5) = (%d,%d), want (2,0)", h, s)
	}
	evs := c.Events()
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Time != ev.Seq {
			t.Errorf("clockless event %d: time %d != seq %d", i, ev.Time, ev.Seq)
		}
	}
}

func TestCollectorRingWrap(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 10; i++ {
		c.Emit(Event{Kind: KindSend, Node: int32(i)})
	}
	if c.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", c.Dropped())
	}
	if c.Total() != 10 {
		t.Errorf("Total = %d, want 10", c.Total())
	}
	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Seq != want {
			t.Errorf("retained event %d has seq %d, want %d (oldest-first order)", i, ev.Seq, want)
		}
	}
	// Counters survive the wrap.
	if c.Count(KindSend) != 10 {
		t.Errorf("Count(Send) = %d, want 10", c.Count(KindSend))
	}
}

func TestCollectorClock(t *testing.T) {
	c := NewCollector(0)
	now := int64(100)
	c.SetClock(func() int64 { return now })
	c.Emit(Event{Kind: KindSend})
	now = 250
	c.Emit(Event{Kind: KindDeliver})
	evs := c.Events()
	if evs[0].Time != 100 || evs[1].Time != 250 {
		t.Errorf("times = %d,%d want 100,250", evs[0].Time, evs[1].Time)
	}
}

// TestSummaryGolden pins the text summary format (teapot-sim -stats prints
// it verbatim; scripts/check.sh relies on the first line's shape).
func TestSummaryGolden(t *testing.T) {
	names := Names{
		States:   []string{"Home_Idle", "Home_RS", "Cache_Inv"},
		Messages: []string{"GET_RO_REQ", "PUT_DATA", "NACK"},
	}
	c := NewCollector(0)
	c.Emit(Event{Kind: KindHandlerEnter, State: 1, Msg: 0, Peer: 1})
	c.Emit(Event{Kind: KindContAlloc, Site: 5, Arg: 1})
	c.Emit(Event{Kind: KindSend, Msg: 1, Peer: 1, Flow: 1})
	c.Emit(Event{Kind: KindHandlerExit, State: 1, Msg: 0})
	c.Emit(Event{Kind: KindHandlerEnter, State: 1, Msg: 0, Peer: 1})
	c.Emit(Event{Kind: KindEnqueue, Msg: 0, Arg: 1})
	c.Emit(Event{Kind: KindHandlerExit, State: 1, Msg: 0})
	c.Emit(Event{Kind: KindHandlerEnter, State: 2, Msg: 1, Peer: 0})
	c.Emit(Event{Kind: KindContAlloc, Site: 2, Arg: 0})
	c.Emit(Event{Kind: KindSuspend, State: 2})
	c.Emit(Event{Kind: KindHandlerExit, State: 2, Msg: 1})

	const want = `obs summary: 11 events (11 retained, 0 dropped)
  events by kind:
    HandlerEnter  3
    HandlerExit   3
    Suspend       1
    ContAlloc     2
    Enqueue       1
    Send          1
  top handlers by dispatch count:
    Home_RS.GET_RO_REQ               2
    Cache_Inv.PUT_DATA               1
  continuation records: 1 heap (1 sites), 1 static (1 sites)
  max deferred-queue depth: 1
`
	if got := c.Summary(names); got != want {
		t.Errorf("summary drifted from the pinned format:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestNamesFallback(t *testing.T) {
	var n Names
	if got := n.State(3); got != "state3" {
		t.Errorf("State(3) = %q", got)
	}
	if got := n.Message(-1); got != "msg-1" {
		t.Errorf("Message(-1) = %q", got)
	}
}

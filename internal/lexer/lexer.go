// Package lexer scans Teapot source text into tokens.
//
// Lexical structure follows the paper's examples: identifiers may contain
// underscores and embedded digits (Cache_RO_To_RW, GET_RO_RESP); comments are
// "--" to end of line (Modula/Murphi style, the paper's host syntax family)
// plus "//" line comments and "(* ... *)" block comments for convenience;
// string literals use double quotes; keywords are case-insensitive.
package lexer

import (
	"teapot/internal/source"
	"teapot/internal/token"
)

// Token is a scanned lexeme.
type Token struct {
	Kind token.Kind
	Lit  string // literal text for IDENT, INT, STRING (decoded), ILLEGAL
	Pos  source.Pos
}

func (t Token) String() string {
	switch t.Kind {
	case token.IDENT, token.INT, token.ILLEGAL:
		return t.Lit
	case token.STRING:
		return "\"" + t.Lit + "\""
	}
	return t.Kind.String()
}

// Lexer scans one file.
type Lexer struct {
	file *source.File
	src  string
	off  int
	errs *source.ErrorList
}

// New builds a Lexer over a file, reporting errors to errs.
func New(file *source.File, errs *source.ErrorList) *Lexer {
	return &Lexer{file: file, src: file.Text, errs: errs}
}

// ScanAll scans the entire file, always ending with an EOF token.
func ScanAll(file *source.File, errs *source.ErrorList) []Token {
	lx := New(file, errs)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) errorf(off int, format string, args ...any) {
	l.errs.Add(l.file.Name, l.file.PosFor(off), format, args...)
}

func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n < len(l.src) {
		return l.src[l.off+n]
	}
	return 0
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.off++
		case c == '-' && l.peekAt(1) == '-':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
		case c == '(' && l.peekAt(1) == '*':
			start := l.off
			l.off += 2
			depth := 1
			for l.off < len(l.src) && depth > 0 {
				if l.src[l.off] == '(' && l.peekAt(1) == '*' {
					depth++
					l.off += 2
				} else if l.src[l.off] == '*' && l.peekAt(1) == ')' {
					depth--
					l.off += 2
				} else {
					l.off++
				}
			}
			if depth > 0 {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() Token {
	l.skipSpaceAndComments()
	start := l.off
	pos := l.file.PosFor(start)
	if l.off >= len(l.src) {
		return Token{Kind: token.EOF, Pos: pos}
	}
	c := l.src[l.off]
	switch {
	case isLetter(c):
		for l.off < len(l.src) && (isLetter(l.src[l.off]) || isDigit(l.src[l.off])) {
			l.off++
		}
		lit := l.src[start:l.off]
		kind := token.Lookup(lit)
		if kind == token.IDENT {
			return Token{Kind: token.IDENT, Lit: lit, Pos: pos}
		}
		return Token{Kind: kind, Lit: lit, Pos: pos}
	case isDigit(c):
		for l.off < len(l.src) && isDigit(l.src[l.off]) {
			l.off++
		}
		return Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
	case c == '"':
		return l.scanString(pos)
	}
	l.off++
	mk := func(k token.Kind) Token { return Token{Kind: k, Pos: pos} }
	switch c {
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '{':
		return mk(token.LBRACE)
	case '}':
		return mk(token.RBRACE)
	case ';':
		return mk(token.SEMICOLON)
	case ',':
		return mk(token.COMMA)
	case '.':
		return mk(token.DOT)
	case '+':
		return mk(token.PLUS)
	case '-':
		return mk(token.MINUS)
	case '*':
		return mk(token.STAR)
	case '/':
		return mk(token.SLASH)
	case '%':
		return mk(token.PERCENT)
	case '=':
		if l.peek() == '=' { // tolerate C-style ==
			l.off++
		}
		return mk(token.EQ)
	case ':':
		if l.peek() == '=' {
			l.off++
			return mk(token.ASSIGN)
		}
		return mk(token.COLON)
	case '<':
		switch l.peek() {
		case '=':
			l.off++
			return mk(token.LE)
		case '>':
			l.off++
			return mk(token.NEQ)
		}
		return mk(token.LT)
	case '>':
		if l.peek() == '=' {
			l.off++
			return mk(token.GE)
		}
		return mk(token.GT)
	case '!':
		if l.peek() == '=' {
			l.off++
			return mk(token.NEQ)
		}
		return mk(token.NOT)
	case '&':
		if l.peek() == '&' {
			l.off++
			return mk(token.AND)
		}
	case '|':
		if l.peek() == '|' {
			l.off++
			return mk(token.OR)
		}
	}
	l.errorf(start, "illegal character %q", string(c))
	return Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) scanString(pos source.Pos) Token {
	start := l.off
	l.off++ // opening quote
	var buf []byte
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch c {
		case '"':
			l.off++
			return Token{Kind: token.STRING, Lit: string(buf), Pos: pos}
		case '\n':
			l.errorf(start, "unterminated string literal")
			return Token{Kind: token.ILLEGAL, Lit: string(buf), Pos: pos}
		case '\\':
			l.off++
			if l.off >= len(l.src) {
				break
			}
			switch l.src[l.off] {
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			case '"':
				buf = append(buf, '"')
			case '\\':
				buf = append(buf, '\\')
			default:
				l.errorf(l.off, "unknown escape \\%c", l.src[l.off])
				buf = append(buf, l.src[l.off])
			}
			l.off++
		default:
			buf = append(buf, c)
			l.off++
		}
	}
	l.errorf(start, "unterminated string literal")
	return Token{Kind: token.ILLEGAL, Lit: string(buf), Pos: pos}
}

package analysis

import (
	"sort"

	"teapot/internal/runtime"
)

// Static side of the coverage cross-check: the dispatch universe a compiled
// protocol can plausibly exercise, keyed exactly like the dynamic coverage
// plane (internal/obs.Coverage, "State.MESSAGE"). An exhaustive model-check
// run is the 100% dynamic reference; any pair in ExpectedDispatch that even
// exhaustive exploration never entered is a finding — either the handler is
// dead for this geometry and fault budget (document it) or the static
// reachability over-approximates (tighten it).

// ExpectedDispatch returns the statically-reachable dispatch pairs: every
// (state, message) with a dedicated handler, for states reachable from the
// configured start states, rendered "State.MESSAGE" and sorted. Pairs a
// DEFAULT handler absorbs are excluded — defer/nack/drop policies are
// policy, not protocol surface, and the dynamic plane tracks deferred pairs
// separately.
func ExpectedDispatch(p *runtime.Protocol) []string {
	f := computeFacts(p)
	sp := p.IR.Sema
	var out []string
	for si := range sp.States {
		if !f.reach[si] {
			continue
		}
		for mi := range sp.Messages {
			if f.policies[si][mi] == polExplicit {
				out = append(out, sp.States[si].Name+"."+sp.Messages[mi].Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// CoverageGaps returns the expected dispatch pairs absent from an observed
// coverage set (a manifest's coverage.dispatch block), sorted. Empty means
// the run's dynamic coverage saturates the static universe.
func CoverageGaps(p *runtime.Protocol, covered map[string]uint64) []string {
	var out []string
	for _, pair := range ExpectedDispatch(p) {
		if _, ok := covered[pair]; !ok {
			out = append(out, pair)
		}
	}
	return out
}

package runtime

import (
	"teapot/internal/vm"
)

// Deep-copy support for the model checker's clone-not-decode successor
// generation: expanding a state decodes it once and derives each successor
// from a structural copy instead of re-decoding the canonical encoding for
// every enabled action.
//
// The copy is shallow wherever the runtime treats structure as immutable
// after construction — messages, state values, and continuation records are
// built fresh by the VM and never mutated in place — and deep for the
// mutable containers (block variable slots, deferred queues, channel
// slices). Info handles are rebound to the clone's blocks, mirroring what
// DecodeValue does, and abstract support values are round-tripped through
// the protocol's AbstractCodec.

// Clone returns a deep copy of the engine's protocol state bound to
// machine m. The protocol, support module, and compiled program are
// shared; per-block state is copied so mutations of the clone never
// observe or disturb the original. codec may be nil when the protocol
// stores no abstract values (as for encoding).
func (e *Engine) Clone(m Machine, codec AbstractCodec) (*Engine, error) {
	c := &Engine{
		Proto:        e.Proto,
		Node:         e.Node,
		Machine:      m,
		Support:      e.Support,
		Exec:         e.Exec,
		QueueRecords: e.QueueRecords,
		Sends:        e.Sends,
	}
	c.timeoutTag = e.timeoutTag
	if c.timeoutTag >= 0 {
		c.armer, _ = m.(TimeoutArmer)
	}
	if c.armer != nil {
		c.timerFor = make([]int32, len(e.timerFor))
		copy(c.timerFor, e.timerFor)
	}
	c.dataMachine, _ = m.(DataMachine)
	// Clones never inherit observability: the tracer interface pointer in
	// the copied Exec still aims at the original engine, and the checker
	// clones concurrently while sinks are single-goroutine.
	c.Exec.Tracer = nil
	c.Blocks = make([]*Block, len(e.Blocks))
	for i, b := range e.Blocks {
		nb := &Block{ID: b.ID, transitioned: b.transitioned}
		sv, _, err := cloneValue(vm.StateValue(b.State), nb, codec)
		if err != nil {
			return nil, err
		}
		nb.State = sv.State()
		if len(b.Vars) > 0 {
			nb.Vars = make([]vm.Value, len(b.Vars))
			for j, v := range b.Vars {
				if nb.Vars[j], _, err = cloneValue(v, nb, codec); err != nil {
					return nil, err
				}
			}
		}
		if len(b.Deferred) > 0 {
			nb.Deferred = make([]*Message, len(b.Deferred))
			for j, dm := range b.Deferred {
				if nb.Deferred[j], err = cloneMessage(dm, nb, codec); err != nil {
					return nil, err
				}
			}
		}
		c.Blocks[i] = nb
	}
	return c, nil
}

// CloneMessage returns a copy of msg safe to own alongside the original.
// Messages are immutable after construction, so the same pointer is
// returned unless the payload holds block-bound values (info handles,
// abstract values), which are rebound to this engine's blocks exactly as
// DecodeMessage would.
func (e *Engine) CloneMessage(msg *Message, codec AbstractCodec) (*Message, error) {
	if msg.ID < 0 || msg.ID >= len(e.Blocks) {
		return msg, nil
	}
	return cloneMessage(msg, e.Blocks[msg.ID], codec)
}

func cloneMessage(msg *Message, block *Block, codec AbstractCodec) (*Message, error) {
	var payload []vm.Value
	for i, v := range msg.Payload {
		nv, changed, err := cloneValue(v, block, codec)
		if err != nil {
			return nil, err
		}
		if changed && payload == nil {
			payload = make([]vm.Value, len(msg.Payload))
			copy(payload, msg.Payload[:i])
		}
		if payload != nil {
			payload[i] = nv
		}
	}
	if payload == nil {
		return msg, nil
	}
	nm := *msg
	nm.Payload = payload
	return &nm, nil
}

// cloneValue copies v for a world bound to block. The returned bool
// reports whether a new value had to be built; unchanged subtrees are
// shared, so cloning a protocol state with no info handles or abstract
// values allocates nothing per value.
func cloneValue(v vm.Value, block *Block, codec AbstractCodec) (vm.Value, bool, error) {
	switch v.Kind {
	case vm.KState:
		sv := v.State()
		if sv == nil {
			return v, false, nil
		}
		args, changed, err := cloneValues(sv.Args, block, codec)
		if err != nil {
			return vm.Value{}, false, err
		}
		if !changed {
			return v, false, nil
		}
		return vm.StateValue(&vm.StateVal{State: sv.State, Args: args}), true, nil
	case vm.KCont:
		c := v.Cont()
		if c == nil {
			return v, false, nil
		}
		saved, changed, err := cloneValues(c.Saved, block, codec)
		if err != nil {
			return vm.Value{}, false, err
		}
		if !changed {
			return v, false, nil
		}
		nc := *c
		nc.Saved = saved
		return vm.ContVal(&nc), true, nil
	case vm.KInfo:
		// Info handles always denote the enclosing block (see DecodeValue).
		return vm.InfoVal(block), true, nil
	case vm.KAbstract:
		if codec == nil {
			// Without a codec the value cannot be rebuilt; share it. A
			// protocol that mutates abstract values must supply a codec —
			// the same requirement encode already imposes.
			return v, false, nil
		}
		enc := &Encoder{}
		if err := codec.EncodeAbstract(v.Ref, enc); err != nil {
			return vm.Value{}, false, err
		}
		ref, err := codec.DecodeAbstract(NewDecoder(enc.Bytes()))
		if err != nil {
			return vm.Value{}, false, err
		}
		return vm.AbstractVal(ref), true, nil
	default:
		return v, false, nil
	}
}

func cloneValues(vs []vm.Value, block *Block, codec AbstractCodec) ([]vm.Value, bool, error) {
	var out []vm.Value
	for i, v := range vs {
		nv, changed, err := cloneValue(v, block, codec)
		if err != nil {
			return nil, false, err
		}
		if changed && out == nil {
			out = make([]vm.Value, len(vs))
			copy(out, vs[:i])
		}
		if out != nil {
			out[i] = nv
		}
	}
	if out == nil {
		return vs, false, nil
	}
	return out, true, nil
}

package analysis_test

import (
	"strings"
	"testing"

	"teapot/internal/analysis"
	"teapot/internal/mc"
	"teapot/internal/protocols/stache"
)

// TestVetAgreesWithModelChecker is the acceptance test for the suite: on
// the seeded-bug Stache variant, the static defer-deadlock finding and the
// model checker's counterexample must name the same state and message.
// The vet report costs a single compile; the checker independently
// confirms the hazard with a concrete interleaving ending in a deadlock
// where the flagged state is holding the flagged message in its queue.
func TestVetAgreesWithModelChecker(t *testing.T) {
	p, err := stache.CompileBuggy()
	if err != nil {
		t.Fatal(err)
	}

	const state, msg = "Cache_RO_To_RW", "PUT_NO_DATA_REQ"

	ds := analysis.Analyze(p).ByCheck("defer-deadlock")
	if len(ds) != 1 {
		t.Fatalf("defer-deadlock findings = %v", ds)
	}
	for _, want := range []string{state, msg} {
		if !strings.Contains(ds[0].Msg, want) {
			t.Fatalf("static finding %q does not name %q", ds[0].Msg, want)
		}
	}

	res, err := mc.Check(mc.Config{
		Proto: p, Support: stache.MustSupport(p),
		Nodes: 2, Blocks: 1,
		Events: stache.NewEvents(p), CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("model checker found no violation in the seeded-bug protocol")
	}
	if res.Violation.Kind != "deadlock" {
		t.Fatalf("violation kind = %q, want deadlock", res.Violation.Kind)
	}
	trace := res.Violation.String()
	for _, want := range []string{state, msg} {
		if !strings.Contains(trace, want) {
			t.Errorf("counterexample does not mention %q (static finding does):\n%s", want, trace)
		}
	}
}
